# Empty compiler generated dependencies file for gapply_tests.
# This may be replaced when dependencies are built.
