
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_util_test.cc" "tests/CMakeFiles/gapply_tests.dir/common_util_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/common_util_test.cc.o.d"
  "/root/repo/tests/common_value_test.cc" "tests/CMakeFiles/gapply_tests.dir/common_value_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/common_value_test.cc.o.d"
  "/root/repo/tests/core_analyses_test.cc" "tests/CMakeFiles/gapply_tests.dir/core_analyses_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/core_analyses_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/gapply_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/gapply_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/exec_edge_cases_test.cc" "tests/CMakeFiles/gapply_tests.dir/exec_edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/exec_edge_cases_test.cc.o.d"
  "/root/repo/tests/exec_gapply_test.cc" "tests/CMakeFiles/gapply_tests.dir/exec_gapply_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/exec_gapply_test.cc.o.d"
  "/root/repo/tests/exec_ops_test.cc" "tests/CMakeFiles/gapply_tests.dir/exec_ops_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/exec_ops_test.cc.o.d"
  "/root/repo/tests/optimizer_property_test.cc" "tests/CMakeFiles/gapply_tests.dir/optimizer_property_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/optimizer_property_test.cc.o.d"
  "/root/repo/tests/optimizer_rules_test.cc" "tests/CMakeFiles/gapply_tests.dir/optimizer_rules_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/optimizer_rules_test.cc.o.d"
  "/root/repo/tests/plan_test.cc" "tests/CMakeFiles/gapply_tests.dir/plan_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/plan_test.cc.o.d"
  "/root/repo/tests/sql_binder_test.cc" "tests/CMakeFiles/gapply_tests.dir/sql_binder_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/sql_binder_test.cc.o.d"
  "/root/repo/tests/sql_parser_test.cc" "tests/CMakeFiles/gapply_tests.dir/sql_parser_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/sql_parser_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/gapply_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/tpch_gen_test.cc" "tests/CMakeFiles/gapply_tests.dir/tpch_gen_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/tpch_gen_test.cc.o.d"
  "/root/repo/tests/xml_test.cc" "tests/CMakeFiles/gapply_tests.dir/xml_test.cc.o" "gcc" "tests/CMakeFiles/gapply_tests.dir/xml_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gapply.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
