file(REMOVE_RECURSE
  "CMakeFiles/xml_publishing.dir/xml_publishing.cpp.o"
  "CMakeFiles/xml_publishing.dir/xml_publishing.cpp.o.d"
  "xml_publishing"
  "xml_publishing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xml_publishing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
