# Empty dependencies file for xml_publishing.
# This may be replaced when dependencies are built.
