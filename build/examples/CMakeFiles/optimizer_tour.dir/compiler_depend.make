# Empty compiler generated dependencies file for optimizer_tour.
# This may be replaced when dependencies are built.
