file(REMOVE_RECURSE
  "CMakeFiles/xquery_translation.dir/xquery_translation.cpp.o"
  "CMakeFiles/xquery_translation.dir/xquery_translation.cpp.o.d"
  "xquery_translation"
  "xquery_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
