# Empty compiler generated dependencies file for xquery_translation.
# This may be replaced when dependencies are built.
