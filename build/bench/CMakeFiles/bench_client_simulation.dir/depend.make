# Empty dependencies file for bench_client_simulation.
# This may be replaced when dependencies are built.
