file(REMOVE_RECURSE
  "CMakeFiles/bench_client_simulation.dir/bench_client_simulation.cc.o"
  "CMakeFiles/bench_client_simulation.dir/bench_client_simulation.cc.o.d"
  "bench_client_simulation"
  "bench_client_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_client_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
