# Empty dependencies file for bench_q4_rewrite.
# This may be replaced when dependencies are built.
