file(REMOVE_RECURSE
  "CMakeFiles/bench_q4_rewrite.dir/bench_q4_rewrite.cc.o"
  "CMakeFiles/bench_q4_rewrite.dir/bench_q4_rewrite.cc.o.d"
  "bench_q4_rewrite"
  "bench_q4_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_q4_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
