# Empty dependencies file for bench_partition_modes.
# This may be replaced when dependencies are built.
