file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_modes.dir/bench_partition_modes.cc.o"
  "CMakeFiles/bench_partition_modes.dir/bench_partition_modes.cc.o.d"
  "bench_partition_modes"
  "bench_partition_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
