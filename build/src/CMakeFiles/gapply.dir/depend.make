# Empty dependencies file for gapply.
# This may be replaced when dependencies are built.
