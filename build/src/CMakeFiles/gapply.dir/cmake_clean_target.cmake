file(REMOVE_RECURSE
  "libgapply.a"
)
