
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/gapply.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/gapply.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gapply.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gapply.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/gapply.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/gapply.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/gapply.dir/common/value.cc.o" "gcc" "src/CMakeFiles/gapply.dir/common/value.cc.o.d"
  "/root/repo/src/core/analyses.cc" "src/CMakeFiles/gapply.dir/core/analyses.cc.o" "gcc" "src/CMakeFiles/gapply.dir/core/analyses.cc.o.d"
  "/root/repo/src/core/gapply_to_groupby.cc" "src/CMakeFiles/gapply.dir/core/gapply_to_groupby.cc.o" "gcc" "src/CMakeFiles/gapply.dir/core/gapply_to_groupby.cc.o.d"
  "/root/repo/src/core/group_selection.cc" "src/CMakeFiles/gapply.dir/core/group_selection.cc.o" "gcc" "src/CMakeFiles/gapply.dir/core/group_selection.cc.o.d"
  "/root/repo/src/core/invariant_grouping.cc" "src/CMakeFiles/gapply.dir/core/invariant_grouping.cc.o" "gcc" "src/CMakeFiles/gapply.dir/core/invariant_grouping.cc.o.d"
  "/root/repo/src/core/outer_push_rules.cc" "src/CMakeFiles/gapply.dir/core/outer_push_rules.cc.o" "gcc" "src/CMakeFiles/gapply.dir/core/outer_push_rules.cc.o.d"
  "/root/repo/src/core/pgq_push_rules.cc" "src/CMakeFiles/gapply.dir/core/pgq_push_rules.cc.o" "gcc" "src/CMakeFiles/gapply.dir/core/pgq_push_rules.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/gapply.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/gapply.dir/engine/database.cc.o.d"
  "/root/repo/src/exec/agg_ops.cc" "src/CMakeFiles/gapply.dir/exec/agg_ops.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/agg_ops.cc.o.d"
  "/root/repo/src/exec/apply_ops.cc" "src/CMakeFiles/gapply.dir/exec/apply_ops.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/apply_ops.cc.o.d"
  "/root/repo/src/exec/filter_project_ops.cc" "src/CMakeFiles/gapply.dir/exec/filter_project_ops.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/filter_project_ops.cc.o.d"
  "/root/repo/src/exec/gapply_op.cc" "src/CMakeFiles/gapply.dir/exec/gapply_op.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/gapply_op.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/CMakeFiles/gapply.dir/exec/join_ops.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/join_ops.cc.o.d"
  "/root/repo/src/exec/lowering.cc" "src/CMakeFiles/gapply.dir/exec/lowering.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/lowering.cc.o.d"
  "/root/repo/src/exec/physical_op.cc" "src/CMakeFiles/gapply.dir/exec/physical_op.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/physical_op.cc.o.d"
  "/root/repo/src/exec/scan_ops.cc" "src/CMakeFiles/gapply.dir/exec/scan_ops.cc.o" "gcc" "src/CMakeFiles/gapply.dir/exec/scan_ops.cc.o.d"
  "/root/repo/src/expr/aggregate.cc" "src/CMakeFiles/gapply.dir/expr/aggregate.cc.o" "gcc" "src/CMakeFiles/gapply.dir/expr/aggregate.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/gapply.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/gapply.dir/expr/expr.cc.o.d"
  "/root/repo/src/optimizer/classic_rules.cc" "src/CMakeFiles/gapply.dir/optimizer/classic_rules.cc.o" "gcc" "src/CMakeFiles/gapply.dir/optimizer/classic_rules.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/gapply.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/gapply.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/gapply.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/gapply.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/plan/builder.cc" "src/CMakeFiles/gapply.dir/plan/builder.cc.o" "gcc" "src/CMakeFiles/gapply.dir/plan/builder.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/gapply.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/gapply.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/plan_utils.cc" "src/CMakeFiles/gapply.dir/plan/plan_utils.cc.o" "gcc" "src/CMakeFiles/gapply.dir/plan/plan_utils.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/gapply.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/gapply.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/gapply.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/gapply.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/gapply.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/gapply.dir/sql/parser.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/gapply.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/gapply.dir/stats/stats.cc.o.d"
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/gapply.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/gapply.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/gapply.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/gapply.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/gapply.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/gapply.dir/storage/table.cc.o.d"
  "/root/repo/src/tpch/tpch_gen.cc" "src/CMakeFiles/gapply.dir/tpch/tpch_gen.cc.o" "gcc" "src/CMakeFiles/gapply.dir/tpch/tpch_gen.cc.o.d"
  "/root/repo/src/xml/tagger.cc" "src/CMakeFiles/gapply.dir/xml/tagger.cc.o" "gcc" "src/CMakeFiles/gapply.dir/xml/tagger.cc.o.d"
  "/root/repo/src/xml/view.cc" "src/CMakeFiles/gapply.dir/xml/view.cc.o" "gcc" "src/CMakeFiles/gapply.dir/xml/view.cc.o.d"
  "/root/repo/src/xml/xquery.cc" "src/CMakeFiles/gapply.dir/xml/xquery.cc.o" "gcc" "src/CMakeFiles/gapply.dir/xml/xquery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
