// Morsel-driven parallelism sweep: Exchange-wrapped streaming segments
// feeding parallel hash aggregation, over DOP {1, 2, 4, 8}:
//
//   1. scan → filter → hash-agg over a synthetic 200k-row table
//   2. partsupp ⋈ supplier (Exchange over the probe spine, per-clone
//      build) → hash-agg by ps_suppkey — the redundant-join shape the
//      paper's view-tree plans produce
//   3. partsupp scan → hash-agg by ps_suppkey (TPC-H, no join)
//
// Every parallel run is validated element-for-element against DOP 1 —
// Exchange and the partial-aggregate merge both promise bit-for-bit
// serial-identical output. Interpret speedups against
// "hardware_concurrency" in the JSON: on a single-core container DOP > 1
// can only measure overhead, not speedup; the criterion field records the
// ≥2x-at-DOP-4 bar honestly rather than asserting it.
//
// Results go to stdout and BENCH_exchange.json.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/exec/agg_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"

namespace gapply::bench {
namespace {

constexpr size_t kDops[] = {1, 2, 4, 8};
// Smaller than ExchangeOp::kDefaultMorselRows so the ~8k-row TPC-H
// partsupp at sf 0.01 still splits into enough morsels to fan out.
constexpr size_t kMorselRows = 2048;

struct RunResult {
  double ms = 0;
  std::vector<Row> rows;
  ExecContext::Counters counters;
  size_t effective_dop = 1;
};

struct JsonRecord {
  std::string workload;
  size_t dop = 1;
  size_t effective_dop = 1;
  size_t rows = 0;
  double ms = 0;
  double speedup_vs_serial = 0;
  double partition_ms = 0;
  double merge_ms = 0;
  bool valid = false;
};

std::vector<JsonRecord> g_records;
bool g_criterion_met = true;

// A plan plus the Exchange inside it (for effective-DOP reporting).
struct Plan {
  PhysOpPtr root;
  ExchangeOp* exchange = nullptr;
};

template <typename MakeFn>
RunResult TimeRuns(const MakeFn& make, int reps) {
  RunResult result;
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    Plan plan = make();
    ExecContext ctx;
    const auto start = std::chrono::steady_clock::now();
    Result<QueryResult> r = ExecuteToVector(plan.root.get(), &ctx);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "bench plan failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (i > 0 && ms < best) best = ms;  // skip warmup
    result.rows = std::move(r->rows);
    result.counters = ctx.counters();
    result.effective_dop =
        plan.exchange == nullptr ? 1 : plan.exchange->effective_dop();
  }
  result.ms = best;
  return result;
}

template <typename MakeFn>
void RunSweep(const std::string& workload, const MakeFn& make, int reps) {
  const RunResult serial = TimeRuns([&] { return make(1); }, reps);
  std::printf("%s (%zu rows):\n", workload.c_str(), serial.rows.size());
  for (size_t dop : kDops) {
    const RunResult run =
        dop == 1 ? serial : TimeRuns([&] { return make(dop); }, reps);
    const bool valid = SameRowSequence(run.rows, serial.rows);
    if (!valid) {
      std::fprintf(stderr,
                   "BENCH INVALID: %s dop=%zu diverges from serial "
                   "(%zu vs %zu rows)\n",
                   workload.c_str(), dop, run.rows.size(),
                   serial.rows.size());
      std::exit(1);
    }
    JsonRecord rec;
    rec.workload = workload;
    rec.dop = dop;
    rec.effective_dop = run.effective_dop;
    rec.rows = run.rows.size();
    rec.ms = run.ms;
    rec.speedup_vs_serial = serial.ms / run.ms;
    rec.partition_ms =
        static_cast<double>(run.counters.exchange_partition_ns) / 1e6;
    rec.merge_ms =
        static_cast<double>(run.counters.exchange_merge_ns) / 1e6;
    rec.valid = valid;
    std::printf(
        "  dop %zu (effective %zu)  %9.3f ms  speedup %5.2fx  "
        "[partition %.3f ms, merge %.3f ms]\n",
        dop, rec.effective_dop, run.ms, rec.speedup_vs_serial,
        rec.partition_ms, rec.merge_ms);
    if (dop == 4 && rec.speedup_vs_serial < 2.0) g_criterion_met = false;
    g_records.push_back(std::move(rec));
  }
  std::printf("\n");
}

// --------------------------------------------------------------------------
// Workload 1: Exchange(scan → filter) → parallel hash-agg, synthetic table.
// --------------------------------------------------------------------------

std::unique_ptr<Table> MakeWideTable(size_t rows) {
  Schema schema({{"k", TypeId::kInt64, "t"},
                 {"v", TypeId::kInt64, "t"},
                 {"d", TypeId::kDouble, "t"}});
  auto table = std::make_unique<Table>("t", schema);
  Rng rng(123);
  for (size_t i = 0; i < rows; ++i) {
    Status st = table->Append({Value::Int(static_cast<int64_t>(i % 1000)),
                               Value::Int(rng.UniformInt(0, 1000)),
                               Value::Double(rng.UniformDouble(0, 100))});
    if (!st.ok()) std::exit(1);
  }
  return table;
}

Plan MakeScanFilterAgg(const Table* table, size_t dop) {
  auto scan = std::make_unique<TableScanOp>(table);
  const Schema s = scan->output_schema();
  PhysOpPtr spine = std::make_unique<FilterOp>(
      std::move(scan), Gt(Col(s, "v"), Lit(int64_t{250})));
  Plan plan;
  if (dop > 1) {
    auto ex = std::make_unique<ExchangeOp>(std::move(spine), dop, kMorselRows);
    plan.exchange = ex.get();
    spine = std::move(ex);
  }
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(s, "v"), "sum_v"));
  aggs.push_back(Min(Col(s, "v"), "min_v"));
  aggs.push_back(Max(Col(s, "v"), "max_v"));
  plan.root = std::make_unique<HashGroupByOp>(
      std::move(spine), std::vector<int>{0}, std::move(aggs), dop);
  return plan;
}

// --------------------------------------------------------------------------
// Workloads 2 & 3: TPC-H partsupp, with and without the supplier join.
// --------------------------------------------------------------------------

Plan MakeJoinAgg(const Table* partsupp, const Table* supplier, size_t dop) {
  auto probe = std::make_unique<TableScanOp>(partsupp);
  const Schema ps = probe->output_schema();
  auto build = std::make_unique<TableScanOp>(supplier);
  // Inside an Exchange segment each clone builds its own table, so the
  // join's own build parallelism stays 1 (mirrors lowering's demotion).
  PhysOpPtr spine = std::make_unique<HashJoinOp>(
      std::move(probe), std::move(build), std::vector<int>{1},
      std::vector<int>{0});
  Plan plan;
  if (dop > 1) {
    auto ex = std::make_unique<ExchangeOp>(std::move(spine), dop, kMorselRows);
    plan.exchange = ex.get();
    spine = std::move(ex);
  }
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(ps, "ps_availqty"), "sum_qty"));
  plan.root = std::make_unique<HashGroupByOp>(
      std::move(spine), std::vector<int>{1}, std::move(aggs), dop);
  return plan;
}

Plan MakeScanAgg(const Table* partsupp, size_t dop) {
  auto scan = std::make_unique<TableScanOp>(partsupp);
  const Schema ps = scan->output_schema();
  PhysOpPtr spine = std::move(scan);
  Plan plan;
  if (dop > 1) {
    auto ex = std::make_unique<ExchangeOp>(std::move(spine), dop, kMorselRows);
    plan.exchange = ex.get();
    spine = std::move(ex);
  }
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(ps, "ps_availqty"), "sum_qty"));
  plan.root = std::make_unique<HashGroupByOp>(
      std::move(spine), std::vector<int>{1}, std::move(aggs), dop);
  return plan;
}

void WriteJson(double sf, int reps) {
  FILE* f = std::fopen("BENCH_exchange.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_exchange.json\n");
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"exchange\",\n"
               "  \"scale_factor\": %g,\n"
               "  \"reps\": %d,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"criterion_dop4_ge_2x\": %s,\n"
               "  \"results\": [\n",
               sf, reps, ThreadPool::DefaultParallelism(),
               g_criterion_met ? "true" : "false");
  for (size_t i = 0; i < g_records.size(); ++i) {
    const JsonRecord& r = g_records[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"dop\": %zu, \"effective_dop\": %zu, "
        "\"rows\": %zu, \"ms\": %.4f, \"speedup_vs_serial\": %.4f, "
        "\"partition_ms\": %.4f, \"merge_ms\": %.4f, \"valid\": %s}%s\n",
        r.workload.c_str(), r.dop, r.effective_dop, r.rows, r.ms,
        r.speedup_vs_serial, r.partition_ms, r.merge_ms,
        r.valid ? "true" : "false", i + 1 == g_records.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n%s\n}\n", ProfilesJsonMember().c_str());
  std::fclose(f);
  std::printf("wrote BENCH_exchange.json (%zu records)\n", g_records.size());
}

void Run() {
  const double sf = ScaleFactor(0.01);
  const int reps = Reps();
  std::printf(
      "Exchange / morsel-parallelism sweep (sf=%.4g, reps=%d, "
      "hardware threads=%zu)\n\n",
      sf, reps, ThreadPool::DefaultParallelism());

  const size_t synth_rows = SmokeMode() ? 20000 : 200000;
  auto wide = MakeWideTable(synth_rows);
  RunSweep("scan_filter_agg",
           [&](size_t dop) { return MakeScanFilterAgg(wide.get(), dop); },
           reps);

  Database db;
  LoadDb(&db, sf);
  Result<Table*> partsupp = db.catalog()->GetTable("partsupp");
  Result<Table*> supplier = db.catalog()->GetTable("supplier");
  if (!partsupp.ok() || !supplier.ok()) {
    std::fprintf(stderr, "missing TPC-H tables\n");
    std::exit(1);
  }
  RunSweep("partsupp_join_supplier_agg",
           [&](size_t dop) {
             return MakeJoinAgg(*partsupp, *supplier, dop);
           },
           reps);
  RunSweep("partsupp_scan_agg",
           [&](size_t dop) { return MakeScanAgg(*partsupp, dop); }, reps);

  // Per-operator profiles for one representative of each workload, at the
  // headline DOP 4 (shows the exchange partition/merge phase breakdown).
  {
    Plan plan = MakeScanFilterAgg(wide.get(), 4);
    ExecContext ctx;
    RecordPhysProfile(plan.root.get(), &ctx, "scan_filter_agg_dop4");
  }
  {
    Plan plan = MakeJoinAgg(*partsupp, *supplier, 4);
    ExecContext ctx;
    RecordPhysProfile(plan.root.get(), &ctx,
                      "partsupp_join_supplier_agg_dop4");
  }

  WriteJson(sf, reps);
  if (!g_criterion_met) {
    std::printf(
        "note: dop-4 speedup below 2x (hardware_concurrency=%zu); see "
        "JSON for honest numbers\n",
        ThreadPool::DefaultParallelism());
  }
}

}  // namespace
}  // namespace gapply::bench

int main() {
  gapply::bench::Run();
  return 0;
}
