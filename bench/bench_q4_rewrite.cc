// Reproduces the §5.2 in-text claim: "writing query Q4 in a different but
// semantically equivalent manner yields a plan that takes orders of
// magnitude longer to execute than the plan using GApply" — the paper's
// argument for *syntactic* support: without the gapply marker, a natural
// SQL formulation ends up as a correlated per-row subquery.
//
// Here: Q4 via gapply vs Q4 written with a correlated scalar subquery that
// the engine must re-execute per outer row (it is genuinely correlated, so
// the uncorrelated-inner cache cannot help).

#include "bench/bench_util.h"

namespace gapply::bench {
namespace {

const char* kQ4GApply =
    "select gapply(select p_name, p_size, p_retailprice from g "
    "              where p_retailprice > "
    "                    (select avg(p_retailprice) from g)) "
    "from partsupp, part where ps_partkey = p_partkey and p_size = 30 "
    "group by ps_suppkey : g";

// Correlated reformulation: for each (supplier, part) of size 30, compare
// against that supplier's average over size-30 parts, recomputed per row.
const char* kQ4Correlated =
    "select ps_suppkey, p_name, p_size, p_retailprice "
    "from partsupp ps0, part "
    "where p_partkey = ps_partkey and p_size = 30 and p_retailprice > "
    "  (select avg(p_retailprice) from partsupp, part "
    "   where p_partkey = ps_partkey and ps_suppkey = ps0.ps_suppkey "
    "     and p_size = 30) "
    "order by ps_suppkey";

void Run() {
  // Deliberately small: the correlated plan is quadratic.
  const double sf = ScaleFactor(0.005);
  Database db;
  LoadDb(&db, sf);
  std::printf(
      "Q4 rewrite comparison (§5.2 'orders of magnitude' claim), "
      "sf=%.4g\n\n",
      sf);

  // Same answers?
  Result<QueryResult> a = db.Query(kQ4GApply);
  Result<QueryResult> b = db.Query(kQ4Correlated);
  if (!a.ok() || !b.ok() || !SameRowMultiset(a->rows, b->rows)) {
    std::fprintf(stderr, "formulations disagree (%zu vs %zu rows)\n",
                 a.ok() ? a->rows.size() : 0, b.ok() ? b->rows.size() : 0);
    std::exit(1);
  }

  size_t rows = 0;
  const double gapply_ms =
      TimeSqlMs(&db, kQ4GApply, QueryOptions{}, &rows, 3);
  const double correlated_ms =
      TimeSqlMs(&db, kQ4Correlated, QueryOptions{}, &rows, 1);
  std::printf("Q4 with gapply syntax:        %10.2f ms  (%zu rows)\n",
              gapply_ms, rows);
  std::printf("Q4 correlated reformulation:  %10.2f ms\n", correlated_ms);
  std::printf("slowdown without GApply:      %10.1fx\n",
              correlated_ms / gapply_ms);
  std::printf(
      "\npaper: the non-GApply plan is \"orders of magnitude\" slower — "
      "expect a ratio in the tens to thousands, growing with scale.\n");
  RecordTiming("q4_gapply", gapply_ms);
  RecordTiming("q4_correlated", correlated_ms);
  RecordSqlProfile(&db, kQ4GApply, QueryOptions{}, "q4_gapply");
  WriteBenchJson("q4_rewrite", sf, Reps());
}

}  // namespace
}  // namespace gapply::bench

int main() { gapply::bench::Run(); }
