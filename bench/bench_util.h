#ifndef GAPPLY_BENCH_BENCH_UTIL_H_
#define GAPPLY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/engine/database.h"

namespace gapply::bench {

/// Scale factor for bench databases; override with GAPPLY_SF=0.02 etc.
inline double ScaleFactor(double fallback = 0.01) {
  const char* env = std::getenv("GAPPLY_SF");
  if (env == nullptr) return fallback;
  const double sf = std::atof(env);
  return sf > 0 ? sf : fallback;
}

/// True when the run is a CI smoke test (GAPPLY_SMOKE=1): benches still
/// self-validate their results, but shrink synthetic inputs and report
/// perf-criterion misses without failing the process — a shared 1-core CI
/// runner can't meet speedup bars that need real hardware parallelism.
inline bool SmokeMode() {
  const char* env = std::getenv("GAPPLY_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Repetitions per measurement; override with GAPPLY_REPS.
inline int Reps(int fallback = 3) {
  const char* env = std::getenv("GAPPLY_REPS");
  if (env == nullptr) return fallback;
  const int reps = std::atoi(env);
  return reps > 0 ? reps : fallback;
}

inline void LoadDb(Database* db, double scale_factor) {
  tpch::TpchConfig config;
  config.scale_factor = scale_factor;
  Status st = db->LoadTpch(config);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

/// Executes `plan` `reps` times (plus one warmup) and returns the minimum
/// elapsed milliseconds. Row count (of the last run) goes to *rows.
inline double TimePlanMs(Database* db, const LogicalOp& plan,
                         const QueryOptions& options, size_t* rows,
                         int reps_override = 0) {
  const int reps = reps_override > 0 ? reps_override : Reps();
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Result<QueryResult> r = db->Execute(plan, options);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "plan failed: %s\n%s\n",
                   r.status().ToString().c_str(),
                   plan.DebugString().c_str());
      std::exit(1);
    }
    if (rows != nullptr) *rows = r->rows.size();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (i > 0 && ms < best) best = ms;  // skip warmup
  }
  return best;
}

/// Parses + binds `sql`, then times it like TimePlanMs.
inline double TimeSqlMs(Database* db, const std::string& sql,
                        const QueryOptions& options, size_t* rows,
                        int reps_override = 0) {
  Result<LogicalOpPtr> plan = db->Plan(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "bind failed: %s\nSQL: %s\n",
                 plan.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return TimePlanMs(db, **plan, options, rows, reps_override);
}

/// Asserts two plans produce the same multiset (sanity check before
/// comparing their runtimes).
inline void CheckSameResults(Database* db, const LogicalOp& a,
                             const LogicalOp& b, const char* label) {
  Result<QueryResult> ra = db->Execute(a, QueryOptions{});
  Result<QueryResult> rb = db->Execute(b, QueryOptions{});
  if (!ra.ok() || !rb.ok() ||
      !SameRowMultiset(ra->rows, rb->rows)) {
    std::fprintf(stderr,
                 "BENCH INVALID: %s plans disagree (%zu vs %zu rows)\n",
                 label, ra.ok() ? ra->rows.size() : 0,
                 rb.ok() ? rb->rows.size() : 0);
    std::exit(1);
  }
}

struct RatioStats {
  double max_benefit = 0;
  double sum_benefit = 0;
  double sum_wins = 0;
  int n = 0;
  int wins = 0;

  void Add(double ratio) {
    if (ratio > max_benefit) max_benefit = ratio;
    sum_benefit += ratio;
    ++n;
    if (ratio > 1.0) {
      sum_wins += ratio;
      ++wins;
    }
  }
  double Average() const { return n == 0 ? 0 : sum_benefit / n; }
  double AverageOverWins() const { return wins == 0 ? 0 : sum_wins / wins; }
};

}  // namespace gapply::bench

#endif  // GAPPLY_BENCH_BENCH_UTIL_H_
