#ifndef GAPPLY_BENCH_BENCH_UTIL_H_
#define GAPPLY_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/engine/database.h"
#include "src/exec/profile.h"

namespace gapply::bench {

/// Scale factor for bench databases; override with GAPPLY_SF=0.02 etc.
inline double ScaleFactor(double fallback = 0.01) {
  const char* env = std::getenv("GAPPLY_SF");
  if (env == nullptr) return fallback;
  const double sf = std::atof(env);
  return sf > 0 ? sf : fallback;
}

/// True when the run is a CI smoke test (GAPPLY_SMOKE=1): benches still
/// self-validate their results, but shrink synthetic inputs and report
/// perf-criterion misses without failing the process — a shared 1-core CI
/// runner can't meet speedup bars that need real hardware parallelism.
inline bool SmokeMode() {
  const char* env = std::getenv("GAPPLY_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Repetitions per measurement; override with GAPPLY_REPS.
inline int Reps(int fallback = 3) {
  const char* env = std::getenv("GAPPLY_REPS");
  if (env == nullptr) return fallback;
  const int reps = std::atoi(env);
  return reps > 0 ? reps : fallback;
}

inline void LoadDb(Database* db, double scale_factor) {
  tpch::TpchConfig config;
  config.scale_factor = scale_factor;
  Status st = db->LoadTpch(config);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

/// Executes `plan` `reps` times (plus one warmup) and returns the minimum
/// elapsed milliseconds. Row count (of the last run) goes to *rows.
inline double TimePlanMs(Database* db, const LogicalOp& plan,
                         const QueryOptions& options, size_t* rows,
                         int reps_override = 0) {
  const int reps = reps_override > 0 ? reps_override : Reps();
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Result<QueryResult> r = db->Execute(plan, options);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "plan failed: %s\n%s\n",
                   r.status().ToString().c_str(),
                   plan.DebugString().c_str());
      std::exit(1);
    }
    if (rows != nullptr) *rows = r->rows.size();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (i > 0 && ms < best) best = ms;  // skip warmup
  }
  return best;
}

/// Parses + binds `sql`, then times it like TimePlanMs.
inline double TimeSqlMs(Database* db, const std::string& sql,
                        const QueryOptions& options, size_t* rows,
                        int reps_override = 0) {
  Result<LogicalOpPtr> plan = db->Plan(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "bind failed: %s\nSQL: %s\n",
                 plan.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  return TimePlanMs(db, **plan, options, rows, reps_override);
}

/// Asserts two plans produce the same multiset (sanity check before
/// comparing their runtimes).
inline void CheckSameResults(Database* db, const LogicalOp& a,
                             const LogicalOp& b, const char* label) {
  Result<QueryResult> ra = db->Execute(a, QueryOptions{});
  Result<QueryResult> rb = db->Execute(b, QueryOptions{});
  if (!ra.ok() || !rb.ok() ||
      !SameRowMultiset(ra->rows, rb->rows)) {
    std::fprintf(stderr,
                 "BENCH INVALID: %s plans disagree (%zu vs %zu rows)\n",
                 label, ra.ok() ? ra->rows.size() : 0,
                 rb.ok() ? rb->rows.size() : 0);
    std::exit(1);
  }
}

/// Per-bench registry of representative per-operator profile snapshots
/// (label → the shared profile JSON schema, see ProfileToJson). Every bench
/// records one profile per key workload and embeds the registry in its
/// BENCH_*.json as a "profiles" member, so tools/bench_check and humans see
/// the same per-operator breakdown everywhere.
inline JsonValue& ProfileRegistry() {
  static JsonValue* registry = new JsonValue(JsonValue::Object());
  return *registry;
}

/// Executes `plan` once with profiling on and records its per-operator
/// profile under `label`. Failures abort the bench (same policy as
/// TimePlanMs).
inline void RecordPlanProfile(Database* db, const LogicalOp& plan,
                              QueryOptions options, const std::string& label) {
  options.profile = true;
  QueryStats stats;
  Result<QueryResult> r = db->Execute(plan, options, &stats);
  if (!r.ok() || !stats.has_profile) {
    std::fprintf(stderr, "profile run failed (%s): %s\n", label.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  ProfileRegistry().Set(label, ProfileToJson(stats.profile));
}

/// Parses + binds `sql`, then records like RecordPlanProfile.
inline void RecordSqlProfile(Database* db, const std::string& sql,
                             const QueryOptions& options,
                             const std::string& label) {
  Result<LogicalOpPtr> plan = db->Plan(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "bind failed: %s\nSQL: %s\n",
                 plan.status().ToString().c_str(), sql.c_str());
    std::exit(1);
  }
  RecordPlanProfile(db, **plan, options, label);
}

/// Executes a raw physical tree once with profiling on (restoring the
/// context's profiling flag afterwards) and records its profile. Safe on
/// trees that are also used for timed reps: profile counters accumulate
/// only while profiling is enabled.
inline void RecordPhysProfile(PhysOp* root, ExecContext* ctx,
                              const std::string& label) {
  const bool was_profiling = ctx->profiling();
  ctx->set_profiling(true);
  Result<QueryResult> r = ExecuteToVector(root, ctx);
  ctx->set_profiling(was_profiling);
  if (!r.ok()) {
    std::fprintf(stderr, "profile run failed (%s): %s\n", label.c_str(),
                 r.status().ToString().c_str());
    std::exit(1);
  }
  ProfileRegistry().Set(label, CollectProfileJson(*root));
}

/// One named timing measurement destined for BENCH_*.json. bench_check
/// gates on the "ms" leaf and uses "label" for its messages.
struct TimingRecord {
  std::string label;
  double ms = 0;
};

inline std::vector<TimingRecord>& TimingRegistry() {
  static std::vector<TimingRecord>* registry =
      new std::vector<TimingRecord>();
  return *registry;
}

inline void RecordTiming(const std::string& label, double ms) {
  TimingRegistry().push_back({label, ms});
}

/// Writes BENCH_<name>.json with the standard metadata header, every
/// RecordTiming measurement, and the profile registry — the shared shape
/// for benches without a bespoke hand-printed emitter.
inline void WriteBenchJson(const std::string& name, double sf, int reps);

/// Renders the registry as a top-level `"profiles": {...}` member (no
/// trailing comma or newline), indented to nest inside the hand-printed
/// BENCH_*.json documents.
inline std::string ProfilesJsonMember() {
  const std::string dumped = ProfileRegistry().Dump(2);
  std::string indented;
  indented.reserve(dumped.size() + dumped.size() / 8);
  for (size_t start = 0; start < dumped.size();) {
    size_t end = dumped.find('\n', start);
    if (end == std::string::npos) end = dumped.size();
    if (start > 0) indented += "\n  ";
    indented.append(dumped, start, end - start);
    start = end + 1;
  }
  return "  \"profiles\": " + indented;
}

inline void WriteBenchJson(const std::string& name, double sf, int reps) {
  const std::string path = "BENCH_" + name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"%s\",\n"
               "  \"scale_factor\": %g,\n"
               "  \"reps\": %d,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"results\": [\n",
               name.c_str(), sf, reps, ThreadPool::DefaultParallelism());
  const std::vector<TimingRecord>& timings = TimingRegistry();
  for (size_t i = 0; i < timings.size(); ++i) {
    std::fprintf(f, "    {\"label\": \"%s\", \"ms\": %.4f}%s\n",
                 JsonEscape(timings[i].label).c_str(), timings[i].ms,
                 i + 1 == timings.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n%s\n}\n", ProfilesJsonMember().c_str());
  std::fclose(f);
  std::printf("wrote %s (%zu timings, %zu profiles)\n", path.c_str(),
              timings.size(), ProfileRegistry().members().size());
}

struct RatioStats {
  double max_benefit = 0;
  double sum_benefit = 0;
  double sum_wins = 0;
  int n = 0;
  int wins = 0;

  void Add(double ratio) {
    if (ratio > max_benefit) max_benefit = ratio;
    sum_benefit += ratio;
    ++n;
    if (ratio > 1.0) {
      sum_wins += ratio;
      ++wins;
    }
  }
  double Average() const { return n == 0 ? 0 : sum_benefit / n; }
  double AverageOverWins() const { return wins == 0 ? 0 : sum_wins / wins; }
};

}  // namespace gapply::bench

#endif  // GAPPLY_BENCH_BENCH_UTIL_H_
