// Reproduces the §5.1/§5.2 methodology check: the paper could not run
// GApply natively for most queries, so it *simulated* it client-side
// (materialize the outer result, re-read it, partition it, copy each group
// into a temporary table, and run the per-group query per group with full
// per-query overhead). For the one query where SQL Server did run GApply
// natively (Q4), the simulation was ~20% slower — evidence the simulation
// is conservative.
//
// We have the real operator, so we can run both sides: the native GApplyOp
// vs a faithful client-side simulation of the same Q4-style query.

#include <unordered_map>

#include "bench/bench_util.h"
#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/scan_ops.h"
#include "src/plan/builder.h"

namespace gapply::bench {
namespace {

// The Q4-style query: per (supplier, size), parts priced above the group
// average. Native side runs it through one GApply.
LogicalOpPtr NativePlan(Database* db) {
  auto outer = PlanBuilder::Scan(*db->catalog(), "partsupp")
                   .Join(PlanBuilder::Scan(*db->catalog(), "part"),
                         {"ps_partkey"}, {"p_partkey"});
  const Schema gs = outer.schema();
  auto avg = PlanBuilder::GroupScan("g", gs).ScalarAgg(
      {{AggKind::kAvg, "p_retailprice", "avg_p", false}});
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Apply(std::move(avg))
                 .Select([](const Schema& s) {
                   return Gt(Col(s, "p_retailprice"), Col(s, "avg_p"));
                 })
                 .Project({"p_name", "p_retailprice"});
  Result<LogicalOpPtr> plan =
      std::move(outer)
          .GApply({"ps_suppkey", "p_size"}, "g", std::move(pgq))
          .Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan build failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(plan).value();
}

// Client-side simulation (§5.1): materialize the outer result into a
// temporary table; re-read and hash-partition it; for each group, copy the
// rows into a fresh temporary table and build + run a fresh per-group plan
// over it (per-query overhead, once per group).
Result<size_t> RunSimulation(Database* db) {
  // Phase 0: the outer query, materialized into tmpTable.
  auto outer = PlanBuilder::Scan(*db->catalog(), "partsupp")
                   .Join(PlanBuilder::Scan(*db->catalog(), "part"),
                         {"ps_partkey"}, {"p_partkey"});
  const Schema outer_schema = outer.schema();
  ASSIGN_OR_RETURN(LogicalOpPtr outer_plan, std::move(outer).Build());
  ASSIGN_OR_RETURN(PhysOpPtr outer_phys, LowerPlan(*outer_plan));
  ExecContext ctx;
  ASSIGN_OR_RETURN(QueryResult outer_rows,
                   ExecuteToVector(outer_phys.get(), &ctx));
  Table tmp_table("tmpTable", outer_schema);
  for (const Row& row : outer_rows.rows) {
    RETURN_NOT_OK(tmp_table.Append(row));
  }

  // Partition phase: read tmpTable back and hash on the grouping columns.
  ASSIGN_OR_RETURN(int sk, outer_schema.Resolve("ps_suppkey"));
  ASSIGN_OR_RETURN(int sz, outer_schema.Resolve("p_size"));
  ASSIGN_OR_RETURN(int price_idx, outer_schema.Resolve("p_retailprice"));
  ASSIGN_OR_RETURN(int name_idx, outer_schema.Resolve("p_name"));
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> groups;
  {
    TableScanOp scan(&tmp_table);
    RETURN_NOT_OK(scan.Open(&ctx));
    Row row;
    while (true) {
      ASSIGN_OR_RETURN(bool has, scan.Next(&ctx, &row));
      if (!has) break;
      groups[{row[static_cast<size_t>(sk)], row[static_cast<size_t>(sz)]}]
          .push_back(row);
    }
    RETURN_NOT_OK(scan.Close(&ctx));
  }

  // Execution phase: one temporary table + freshly built plan per group.
  size_t output_rows = 0;
  for (const auto& [key, rows] : groups) {
    Table group_table("tmpGroup", outer_schema);
    for (const Row& row : rows) RETURN_NOT_OK(group_table.Append(row));

    auto scan = std::make_unique<TableScanOp>(&group_table);
    std::vector<AggregateDesc> aggs;
    aggs.push_back(Avg(Col(outer_schema, price_idx), "avg_p"));
    auto avg = std::make_unique<ScalarAggOp>(
        std::make_unique<TableScanOp>(&group_table), std::move(aggs));
    auto applied = std::make_unique<ApplyOp>(std::move(scan), std::move(avg));
    const Schema applied_schema = applied->output_schema();
    auto filtered = std::make_unique<FilterOp>(
        std::move(applied),
        Gt(Col(applied_schema, price_idx),
           Col(applied_schema,
               static_cast<int>(applied_schema.num_columns()) - 1)));
    std::vector<ExprPtr> exprs;
    exprs.push_back(Col(applied_schema, name_idx));
    exprs.push_back(Col(applied_schema, price_idx));
    ASSIGN_OR_RETURN(PhysOpPtr pgq,
                     ProjectOp::Make(std::move(filtered), std::move(exprs),
                                     {"p_name", "p_retailprice"}));
    ASSIGN_OR_RETURN(QueryResult result, ExecuteToVector(pgq.get(), &ctx));
    output_rows += result.rows.size();
  }
  return output_rows;
}

void Run() {
  const double sf = ScaleFactor(0.01);
  Database db;
  LoadDb(&db, sf);
  std::printf(
      "Client-side simulation overhead (§5.1 methodology), sf=%.4g\n\n",
      sf);

  LogicalOpPtr native = NativePlan(&db);
  size_t native_rows = 0;
  const double native_ms =
      TimePlanMs(&db, *native, QueryOptions{}, &native_rows);

  const int reps = Reps();
  double sim_best = 1e300;
  size_t sim_rows = 0;
  for (int i = 0; i <= reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    Result<size_t> rows = RunSimulation(&db);
    const auto end = std::chrono::steady_clock::now();
    if (!rows.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   rows.status().ToString().c_str());
      std::exit(1);
    }
    sim_rows = *rows;
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (i > 0 && ms < sim_best) sim_best = ms;
  }
  if (sim_rows != native_rows) {
    std::fprintf(stderr, "row mismatch: native %zu vs simulation %zu\n",
                 native_rows, sim_rows);
    std::exit(1);
  }

  std::printf("native GApply operator:     %10.2f ms  (%zu rows)\n",
              native_ms, native_rows);
  std::printf("client-side simulation:     %10.2f ms\n", sim_best);
  std::printf("simulation overhead:        %+9.1f%%\n",
              100.0 * (sim_best / native_ms - 1.0));
  std::printf(
      "\npaper: the simulation of Q4 took ~20%% longer than the native "
      "server-side GApply,\nso the Figure-8 speedups (measured via the "
      "simulation) are conservative.\n");
  RecordTiming("native_gapply", native_ms);
  RecordTiming("client_simulation", sim_best);
  RecordPlanProfile(&db, *native, QueryOptions{}, "native_gapply");
  WriteBenchJson("client_simulation", sf, reps);
}

}  // namespace
}  // namespace gapply::bench

int main() { gapply::bench::Run(); }
