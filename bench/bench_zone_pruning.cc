// Zone-map pruning sweep: a clustered-key range predicate `k < N*s` over a
// multi-morsel columnar table, selectivity s from 0.001 to 1.0. For each
// selectivity the columnar scan with the predicate pushed down is timed
// against the row-store scan + Filter baseline, and the scan's
// morsels_pruned / morsels_scanned counters report how much of the table
// the zone maps let it skip.
//
// Acceptance criterion (deterministic, enforced even in smoke mode): at
// s <= 0.01 the pruned-morsel fraction must exceed 0.9 — a clustered
// predicate that selects under 1% of a morsel-aligned table must skip all
// but the first morsel.
//
// Results go to stdout and BENCH_zone_pruning.json.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/scan_ops.h"
#include "src/expr/expr.h"
#include "src/storage/columnar.h"

namespace gapply::bench {
namespace {

constexpr double kSelectivities[] = {0.001, 0.01, 0.05, 0.1, 0.5, 1.0};

struct SweepRecord {
  double selectivity = 0;
  size_t rows_out = 0;
  double ms = 0;      // columnar scan with pushdown
  double row_ms = 0;  // row-store scan + Filter baseline
  double speedup_vs_row = 0;
  uint64_t morsels_pruned = 0;
  uint64_t morsels_scanned = 0;
  double pruned_fraction = 0;
};

std::unique_ptr<Table> MakeClusteredTable(size_t rows) {
  Schema schema({{"k", TypeId::kInt64, "t"},
                 {"v", TypeId::kInt64, "t"},
                 {"d", TypeId::kDouble, "t"}});
  auto table = std::make_unique<Table>("t", schema);
  Rng rng(7);
  for (size_t i = 0; i < rows; ++i) {
    Status st = table->Append({Value::Int(static_cast<int64_t>(i)),
                               Value::Int(rng.UniformInt(0, 1000)),
                               Value::Double(rng.UniformDouble(0, 100))});
    if (!st.ok()) std::exit(1);
  }
  return table;
}

PhysOpPtr MakeColumnarPlan(const Table* table, int64_t cutoff) {
  auto scan = std::make_unique<TableScanOp>(table);
  scan->PushPredicates({{0, value_ops::CmpOp::kLt, Value::Int(cutoff)}});
  return scan;
}

PhysOpPtr MakeRowStorePlan(const Table* table, int64_t cutoff) {
  auto scan = std::make_unique<TableScanOp>(table);
  scan->set_use_columnar(false);
  const Schema s = scan->output_schema();
  return std::make_unique<FilterOp>(std::move(scan),
                                    Lt(Col(s, "k"), Lit(cutoff)));
}

struct RunResult {
  double ms = 0;
  std::vector<Row> rows;
  ExecContext::Counters counters;
};

template <typename MakeFn>
RunResult TimeRuns(const MakeFn& make, int reps) {
  RunResult result;
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    PhysOpPtr op = make();
    ExecContext ctx;
    ctx.set_batch_size(1024);
    const auto start = std::chrono::steady_clock::now();
    Result<QueryResult> r = ExecuteToVector(op.get(), &ctx);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "bench plan failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (i > 0 && ms < best) best = ms;  // skip warmup
    result.rows = std::move(r->rows);
    result.counters = ctx.counters();
  }
  result.ms = best;
  return result;
}

void WriteJson(const std::vector<SweepRecord>& records, size_t table_rows,
               int reps, bool criterion_met) {
  FILE* f = std::fopen("BENCH_zone_pruning.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_zone_pruning.json\n");
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"zone_pruning\",\n"
               "  \"table_rows\": %zu,\n"
               "  \"morsel_rows\": %zu,\n"
               "  \"reps\": %d,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"criterion_pruned_fraction_gt_0.9_at_s_le_0.01\": %s,\n"
               "  \"results\": [\n",
               table_rows, ColumnarTable::kMorselRows, reps,
               ThreadPool::DefaultParallelism(),
               criterion_met ? "true" : "false");
  for (size_t i = 0; i < records.size(); ++i) {
    const SweepRecord& r = records[i];
    std::fprintf(
        f,
        "    {\"label\": \"s=%g\", \"selectivity\": %g, \"rows_out\": %zu, "
        "\"ms\": %.4f, \"row_ms\": %.4f, \"speedup_vs_row\": %.4f, "
        "\"morsels_pruned\": %llu, \"morsels_scanned\": %llu, "
        "\"pruned_fraction\": %.4f}%s\n",
        r.selectivity, r.selectivity, r.rows_out, r.ms, r.row_ms,
        r.speedup_vs_row, static_cast<unsigned long long>(r.morsels_pruned),
        static_cast<unsigned long long>(r.morsels_scanned),
        r.pruned_fraction, i + 1 == records.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n%s\n}\n", ProfilesJsonMember().c_str());
  std::fclose(f);
  std::printf("wrote BENCH_zone_pruning.json (%zu records)\n",
              records.size());
}

void Run() {
  const int reps = Reps();
  const size_t morsels = SmokeMode() ? 16 : 64;
  const size_t rows = morsels * ColumnarTable::kMorselRows;
  std::printf("Zone-map pruning sweep (%zu rows, %zu morsels, reps=%d)\n\n",
              rows, morsels, reps);
  auto table = MakeClusteredTable(rows);

  std::vector<SweepRecord> records;
  bool criterion_met = true;
  for (double s : kSelectivities) {
    const int64_t cutoff =
        static_cast<int64_t>(static_cast<double>(rows) * s);
    const RunResult columnar =
        TimeRuns([&] { return MakeColumnarPlan(table.get(), cutoff); }, reps);
    const RunResult rowstore =
        TimeRuns([&] { return MakeRowStorePlan(table.get(), cutoff); }, reps);
    if (!SameRowSequence(columnar.rows, rowstore.rows)) {
      std::fprintf(stderr,
                   "BENCH INVALID: s=%g columnar diverges from row store "
                   "(%zu vs %zu rows)\n",
                   s, columnar.rows.size(), rowstore.rows.size());
      std::exit(1);
    }
    SweepRecord rec;
    rec.selectivity = s;
    rec.rows_out = columnar.rows.size();
    rec.ms = columnar.ms;
    rec.row_ms = rowstore.ms;
    rec.speedup_vs_row = rowstore.ms / columnar.ms;
    rec.morsels_pruned = columnar.counters.morsels_pruned;
    rec.morsels_scanned = columnar.counters.morsels_scanned;
    const uint64_t visited = rec.morsels_pruned + rec.morsels_scanned;
    rec.pruned_fraction =
        visited == 0 ? 0
                     : static_cast<double>(rec.morsels_pruned) /
                           static_cast<double>(visited);
    std::printf(
        "s=%-6g %8zu rows  columnar %8.3f ms  row %8.3f ms  "
        "speedup %5.2fx  pruned %llu/%llu (%.1f%%)\n",
        s, rec.rows_out, rec.ms, rec.row_ms, rec.speedup_vs_row,
        static_cast<unsigned long long>(rec.morsels_pruned),
        static_cast<unsigned long long>(visited),
        100.0 * rec.pruned_fraction);
    // The pruning bar is a counting argument, not a timing — enforce it
    // unconditionally.
    if (s <= 0.01 && rec.pruned_fraction <= 0.9) {
      std::fprintf(stderr,
                   "CRITERION MISSED: s=%g pruned fraction %.3f, "
                   "required > 0.9\n",
                   s, rec.pruned_fraction);
      criterion_met = false;
    }
    records.push_back(rec);
  }

  // One representative profile: the highly selective scan whose report
  // shows the morsels_pruned / morsels_scanned annotations.
  {
    PhysOpPtr op = MakeColumnarPlan(table.get(), static_cast<int64_t>(
                                                     rows / 100));
    ExecContext ctx;
    ctx.set_batch_size(1024);
    RecordPhysProfile(op.get(), &ctx, "pruned_scan_s0.01_b1024");
  }

  WriteJson(records, rows, reps, criterion_met);
  if (!criterion_met) std::exit(1);
}

}  // namespace
}  // namespace gapply::bench

int main() {
  gapply::bench::Run();
  return 0;
}
