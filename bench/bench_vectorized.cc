// Vectorized-execution sweep: batch size {1, 64, 256, 1024, 4096} against
// the row-at-a-time Volcano baseline, over three pipeline shapes:
//
//   1. scan → filter → project  (the pure interpretation-overhead case the
//      NextBatch layer targets: batch predicate/projection evaluation
//      amortizes per-row virtual dispatch and expression recursion)
//   2. hash join                (batch build + batch probe)
//   3. GApply over TPC-H partsupp (sf 0.01), both partition modes,
//      1 and 4 worker threads
//
// Every batch run is validated against the row-path output — multiset
// equality in general, element-for-element for parallel GApply (whose
// output order is promised bit-for-bit serial-identical). Results go to
// stdout and BENCH_vectorized.json.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/row_batch.h"
#include "src/common/thread_pool.h"
#include "src/exec/agg_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"

namespace gapply::bench {
namespace {

constexpr size_t kBatchSizes[] = {1, 64, 256, 1024, 4096};

struct RunResult {
  double ms = 0;
  std::vector<Row> rows;
  ExecContext::Counters counters;
};

struct JsonRecord {
  std::string workload;
  size_t batch_size = 0;  // 0 = row-at-a-time baseline
  size_t rows = 0;
  double ms = 0;
  double speedup_vs_rows = 0;
  uint64_t batches = 0;
  double avg_fill = 0;
  bool valid = false;
};

std::vector<JsonRecord> g_records;
bool g_criterion_met = true;
bool g_storage_criterion_met = true;

// Times `make()` through either executor; best of `reps` + one warmup.
template <typename MakeFn>
RunResult TimeRuns(const MakeFn& make, int reps, size_t batch_size) {
  RunResult result;
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    PhysOpPtr op = make();
    ExecContext ctx;
    if (batch_size != 0) ctx.set_batch_size(batch_size);
    const auto start = std::chrono::steady_clock::now();
    Result<QueryResult> r = batch_size == 0
                                ? ExecuteToVectorRows(op.get(), &ctx)
                                : ExecuteToVector(op.get(), &ctx);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "bench plan failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (i > 0 && ms < best) best = ms;  // skip warmup
    result.rows = std::move(r->rows);
    result.counters = ctx.counters();
  }
  result.ms = best;
  return result;
}

template <typename MakeFn>
void RunSweep(const std::string& workload, const MakeFn& make, int reps,
              bool bit_for_bit, double required_speedup_at_1024 = 0) {
  const RunResult baseline = TimeRuns(make, reps, /*batch_size=*/0);
  {
    JsonRecord rec;
    rec.workload = workload;
    rec.batch_size = 0;
    rec.rows = baseline.rows.size();
    rec.ms = baseline.ms;
    rec.speedup_vs_rows = 1.0;
    rec.valid = true;
    g_records.push_back(rec);
  }
  std::printf("%s (%zu rows):\n", workload.c_str(), baseline.rows.size());
  std::printf("  rows        %9.3f ms  (baseline)\n", baseline.ms);

  for (size_t bs : kBatchSizes) {
    const RunResult run = TimeRuns(make, reps, bs);
    const bool valid = bit_for_bit
                           ? SameRowSequence(run.rows, baseline.rows)
                           : SameRowMultiset(run.rows, baseline.rows);
    if (!valid) {
      std::fprintf(stderr,
                   "BENCH INVALID: %s batch_size=%zu diverges from the "
                   "row path (%zu vs %zu rows)\n",
                   workload.c_str(), bs, run.rows.size(),
                   baseline.rows.size());
      std::exit(1);
    }
    JsonRecord rec;
    rec.workload = workload;
    rec.batch_size = bs;
    rec.rows = run.rows.size();
    rec.ms = run.ms;
    rec.speedup_vs_rows = baseline.ms / run.ms;
    rec.batches = run.counters.batches_produced;
    rec.avg_fill = run.counters.batches_produced == 0
                       ? 0
                       : static_cast<double>(run.counters.batch_rows_produced) /
                             static_cast<double>(run.counters.batches_produced);
    rec.valid = valid;
    std::printf("  batch %-5zu %9.3f ms  speedup %5.2fx  "
                "[%llu batches, avg fill %.1f]\n",
                bs, run.ms, rec.speedup_vs_rows,
                static_cast<unsigned long long>(rec.batches), rec.avg_fill);
    if (bs == 1024 && required_speedup_at_1024 > 0 &&
        rec.speedup_vs_rows < required_speedup_at_1024) {
      std::fprintf(stderr,
                   "CRITERION MISSED: %s at batch 1024 is %.2fx, "
                   "required >= %.2fx\n",
                   workload.c_str(), rec.speedup_vs_rows,
                   required_speedup_at_1024);
      g_criterion_met = false;
    }
    g_records.push_back(std::move(rec));
  }
  std::printf("\n");
}

// --------------------------------------------------------------------------
// Workload 1: scan → filter → project over a synthetic 200k-row table.
// --------------------------------------------------------------------------

std::unique_ptr<Table> MakeWideTable(size_t rows) {
  Schema schema({{"k", TypeId::kInt64, "t"},
                 {"v", TypeId::kInt64, "t"},
                 {"d", TypeId::kDouble, "t"}});
  auto table = std::make_unique<Table>("t", schema);
  Rng rng(123);
  for (size_t i = 0; i < rows; ++i) {
    Status st = table->Append({Value::Int(static_cast<int64_t>(i % 1000)),
                               Value::Int(rng.UniformInt(0, 1000)),
                               Value::Double(rng.UniformDouble(0, 100))});
    if (!st.ok()) std::exit(1);
  }
  return table;
}

PhysOpPtr MakeScanFilterProject(const Table* table) {
  auto scan = std::make_unique<TableScanOp>(table);
  const Schema s = scan->output_schema();
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), Gt(Col(s, "v"), Lit(int64_t{250})));
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(s, "k"));
  exprs.push_back(Binary(BinaryOp::kAdd, Col(s, "v"), Lit(int64_t{7})));
  exprs.push_back(Binary(BinaryOp::kMultiply, Col(s, "d"), Lit(2.0)));
  Result<PhysOpPtr> p = ProjectOp::Make(std::move(filter), std::move(exprs),
                                        {"k", "v7", "d2"});
  if (!p.ok()) std::exit(1);
  return std::move(*p);
}

// Same scan → filter → project pipeline at 50% selectivity (v > 500), but
// the scan reads the row store (columnar path off) and the filter stays an
// explicit FilterOp — the pre-columnar engine shape, for the storage-layer
// comparison below.
PhysOpPtr MakeRowStoreScanFilterProject(const Table* table) {
  auto scan = std::make_unique<TableScanOp>(table);
  scan->set_use_columnar(false);
  const Schema s = scan->output_schema();
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), Gt(Col(s, "v"), Lit(int64_t{500})));
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(s, "k"));
  exprs.push_back(Binary(BinaryOp::kAdd, Col(s, "v"), Lit(int64_t{7})));
  exprs.push_back(Binary(BinaryOp::kMultiply, Col(s, "d"), Lit(2.0)));
  Result<PhysOpPtr> p = ProjectOp::Make(std::move(filter), std::move(exprs),
                                        {"k", "v7", "d2"});
  if (!p.ok()) std::exit(1);
  return std::move(*p);
}

// Columnar pushdown variant: the filter lives inside the scan (what
// lowering produces for this shape when the session storage is columnar).
PhysOpPtr MakeColumnarScanFilterProject(const Table* table) {
  auto scan = std::make_unique<TableScanOp>(table);
  scan->PushPredicates({{1, value_ops::CmpOp::kGt, Value::Int(500)}});
  const Schema s = scan->output_schema();
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(s, "k"));
  exprs.push_back(Binary(BinaryOp::kAdd, Col(s, "v"), Lit(int64_t{7})));
  exprs.push_back(Binary(BinaryOp::kMultiply, Col(s, "d"), Lit(2.0)));
  Result<PhysOpPtr> p = ProjectOp::Make(std::move(scan), std::move(exprs),
                                        {"k", "v7", "d2"});
  if (!p.ok()) std::exit(1);
  return std::move(*p);
}

// Columnar vs row storage at the headline batch size. The two plans are the
// same logical query; the ratio is the tentpole uplift the columnar read
// path must deliver on scan → filter → project.
void RunStorageComparison(const Table* wide, int reps) {
  const RunResult row = TimeRuns(
      [&] { return MakeRowStoreScanFilterProject(wide); }, reps, 1024);
  const RunResult col = TimeRuns(
      [&] { return MakeColumnarScanFilterProject(wide); }, reps, 1024);
  if (!SameRowSequence(col.rows, row.rows)) {
    std::fprintf(stderr,
                 "BENCH INVALID: columnar storage diverges from row store "
                 "(%zu vs %zu rows)\n",
                 col.rows.size(), row.rows.size());
    std::exit(1);
  }
  const double uplift = row.ms / col.ms;
  std::printf("storage comparison at batch 1024 (%zu rows out):\n",
              row.rows.size());
  std::printf("  row store + Filter   %9.3f ms\n", row.ms);
  std::printf("  columnar + pushdown  %9.3f ms  uplift %.2fx\n\n", col.ms,
              uplift);
  JsonRecord row_rec;
  row_rec.workload = "storage_row_filter";
  row_rec.batch_size = 1024;
  row_rec.rows = row.rows.size();
  row_rec.ms = row.ms;
  row_rec.speedup_vs_rows = 1.0;
  row_rec.valid = true;
  g_records.push_back(row_rec);
  JsonRecord col_rec;
  col_rec.workload = "storage_columnar_pushdown";
  col_rec.batch_size = 1024;
  col_rec.rows = col.rows.size();
  col_rec.ms = col.ms;
  col_rec.speedup_vs_rows = uplift;
  col_rec.valid = true;
  g_records.push_back(col_rec);
  if (uplift < 1.3) {
    std::fprintf(stderr,
                 "CRITERION MISSED: columnar vs row store at batch 1024 is "
                 "%.2fx, required >= 1.3x\n",
                 uplift);
    g_storage_criterion_met = false;
  }
}

// --------------------------------------------------------------------------
// Workload 2: hash join, 100k-row probe side against a 1000-row build side.
// --------------------------------------------------------------------------

PhysOpPtr MakeHashJoin(const Table* fact, const Table* dim) {
  auto probe = std::make_unique<TableScanOp>(fact);
  auto build = std::make_unique<TableScanOp>(dim);
  return std::make_unique<HashJoinOp>(std::move(probe), std::move(build),
                                      std::vector<int>{0},
                                      std::vector<int>{0});
}

// --------------------------------------------------------------------------
// Workload 3: GApply over TPC-H partsupp grouped by ps_partkey, PGQ =
// count/sum/avg over the group, both partition modes x threads {1, 4}.
// --------------------------------------------------------------------------

PhysOpPtr MakeGApply(const Table* partsupp, PartitionMode mode, size_t dop) {
  auto outer = std::make_unique<TableScanOp>(partsupp);
  const Schema gs = outer->output_schema();
  auto scan = std::make_unique<GroupScanOp>("g", gs);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(gs, "ps_availqty"), "sum_qty"));
  aggs.push_back(Avg(Col(gs, "ps_supplycost"), "avg_cost"));
  auto pgq = std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
  return std::make_unique<GApplyOp>(std::move(outer), std::vector<int>{0},
                                    "g", std::move(pgq), mode, dop);
}

void WriteJson(double sf, int reps) {
  FILE* f = std::fopen("BENCH_vectorized.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_vectorized.json\n");
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"vectorized\",\n"
               "  \"scale_factor\": %g,\n"
               "  \"reps\": %d,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"criterion_scan_filter_project_1024_ge_1.5x\": %s,\n"
               "  \"criterion_columnar_vs_row_1024_ge_1.3x\": %s,\n"
               "  \"results\": [\n",
               sf, reps, ThreadPool::DefaultParallelism(),
               g_criterion_met ? "true" : "false",
               g_storage_criterion_met ? "true" : "false");
  for (size_t i = 0; i < g_records.size(); ++i) {
    const JsonRecord& r = g_records[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"batch_size\": %zu, \"rows\": %zu, "
        "\"ms\": %.4f, \"speedup_vs_rows\": %.4f, \"batches\": %llu, "
        "\"avg_fill\": %.2f, \"valid\": %s}%s\n",
        r.workload.c_str(), r.batch_size, r.rows, r.ms, r.speedup_vs_rows,
        static_cast<unsigned long long>(r.batches), r.avg_fill,
        r.valid ? "true" : "false", i + 1 == g_records.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n%s\n}\n", ProfilesJsonMember().c_str());
  std::fclose(f);
  std::printf("wrote BENCH_vectorized.json (%zu records)\n",
              g_records.size());
}

void Run() {
  const double sf = ScaleFactor(0.01);
  const int reps = Reps();
  std::printf("Vectorized execution sweep (sf=%.4g, reps=%d)\n\n", sf, reps);

  auto wide = MakeWideTable(SmokeMode() ? 20000 : 200000);
  RunSweep("scan_filter_project",
           [&] { return MakeScanFilterProject(wide.get()); }, reps,
           /*bit_for_bit=*/false, /*required_speedup_at_1024=*/1.5);

  RunStorageComparison(wide.get(), reps);

  auto fact = MakeWideTable(SmokeMode() ? 10000 : 100000);
  Schema dim_schema({{"k", TypeId::kInt64, "dim"},
                     {"payload", TypeId::kInt64, "dim"}});
  auto dim = std::make_unique<Table>("dim", dim_schema);
  for (int64_t k = 0; k < 1000; ++k) {
    Status st = dim->Append({Value::Int(k), Value::Int(k * 10)});
    if (!st.ok()) std::exit(1);
  }
  RunSweep("hash_join", [&] { return MakeHashJoin(fact.get(), dim.get()); },
           reps, /*bit_for_bit=*/false);

  Database db;
  LoadDb(&db, sf);
  Result<Table*> partsupp = db.catalog()->GetTable("partsupp");
  if (!partsupp.ok()) {
    std::fprintf(stderr, "no partsupp table\n");
    std::exit(1);
  }
  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    for (size_t dop : {size_t{1}, size_t{4}}) {
      char name[64];
      std::snprintf(name, sizeof(name), "gapply_%s_t%zu",
                    PartitionModeName(mode), dop);
      RunSweep(name, [&] { return MakeGApply(*partsupp, mode, dop); }, reps,
               /*bit_for_bit=*/dop > 1);
    }
  }

  // Per-operator profiles for one representative of each pipeline shape,
  // at the headline batch size.
  {
    PhysOpPtr op = MakeScanFilterProject(wide.get());
    ExecContext ctx;
    ctx.set_batch_size(1024);
    RecordPhysProfile(op.get(), &ctx, "scan_filter_project_b1024");
  }
  {
    PhysOpPtr op = MakeHashJoin(fact.get(), dim.get());
    ExecContext ctx;
    ctx.set_batch_size(1024);
    RecordPhysProfile(op.get(), &ctx, "hash_join_b1024");
  }
  {
    PhysOpPtr op = MakeGApply(*partsupp, PartitionMode::kHash, 4);
    ExecContext ctx;
    ctx.set_batch_size(1024);
    RecordPhysProfile(op.get(), &ctx, "gapply_hash_t4_b1024");
  }

  {
    PhysOpPtr op = MakeColumnarScanFilterProject(wide.get());
    ExecContext ctx;
    ctx.set_batch_size(1024);
    RecordPhysProfile(op.get(), &ctx, "columnar_pushdown_b1024");
  }

  WriteJson(sf, reps);
  if ((!g_criterion_met || !g_storage_criterion_met) && !SmokeMode()) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace gapply::bench

int main() {
  gapply::bench::Run();
  return 0;
}
