// Reproduces Figure 8: speedup of queries Q1-Q4 with GApply over the
// classic no-GApply evaluation.
//
// The "without GApply" side is the best plan a classical engine gets from
// the paper's §2 sorted-outer-union SQL after decorrelation: the
// partsupp ⋈ part join is computed redundantly (once per union branch plus
// once per per-group aggregate) and the result is re-clustered with an
// ORDER BY. The "with GApply" side is the §3.1 gapply formulation, executed
// through the full optimizer. Both sides are checked to return identical
// row multisets before timing.
//
// Paper reference: ratios up to ~2x (Q2 about twice as fast with GApply).

#include "bench/bench_util.h"
#include "src/plan/builder.h"

namespace gapply::bench {
namespace {

PlanBuilder PartsuppPart(Database* db) {
  return PlanBuilder::Scan(*db->catalog(), "partsupp")
      .Join(PlanBuilder::Scan(*db->catalog(), "part"), {"ps_partkey"},
            {"p_partkey"});
}

LogicalOpPtr MustBuild(PlanBuilder b, const char* what) {
  Result<LogicalOpPtr> r = std::move(b).Build();
  if (!r.ok()) {
    std::fprintf(stderr, "building %s failed: %s\n", what,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

// --- Q1: per supplier, (p_name, p_retailprice) pairs + avg price ----------

const char* kQ1GApply =
    "select gapply(select p_name, p_retailprice, null from g "
    "              union all "
    "              select null, null, avg(p_retailprice) from g) "
    "from partsupp, part where ps_partkey = p_partkey "
    "group by ps_suppkey : g";

LogicalOpPtr Q1Baseline(Database* db) {
  auto detail = PartsuppPart(db).ProjectExprs(
      [](const Schema& s) {
        std::vector<ExprPtr> e;
        e.push_back(Col(s, "ps_suppkey"));
        e.push_back(Col(s, "p_name"));
        e.push_back(Col(s, "p_retailprice"));
        e.push_back(Lit(Value::Null()));
        return e;
      },
      {"ps_suppkey", "p_name", "p_retailprice", "avg_price"});
  auto averages =
      PartsuppPart(db)
          .GroupBy({"ps_suppkey"},
                   {{AggKind::kAvg, "p_retailprice", "avgp", false}})
          .ProjectExprs(
              [](const Schema& s) {
                std::vector<ExprPtr> e;
                e.push_back(Col(s, "ps_suppkey"));
                e.push_back(Lit(Value::Null()));
                e.push_back(Lit(Value::Null()));
                e.push_back(Col(s, "avgp"));
                return e;
              },
              {"ps_suppkey", "p_name", "p_retailprice", "avg_price"});
  std::vector<PlanBuilder> branches;
  branches.push_back(std::move(detail));
  branches.push_back(std::move(averages));
  return MustBuild(PlanBuilder::UnionAll(std::move(branches))
                       .OrderBy({"ps_suppkey"}),
                   "Q1 baseline");
}

// --- Q2: counts above/below the per-supplier average ----------------------

const char* kQ2GApply =
    "select gapply(select count(*), null from g "
    "              where p_retailprice >= "
    "                    (select avg(p_retailprice) from g) "
    "              union all "
    "              select null, count(*) from g "
    "              where p_retailprice < "
    "                    (select avg(p_retailprice) from g)) "
    "from partsupp, part where ps_partkey = p_partkey "
    "group by ps_suppkey : g";

PlanBuilder SupplierAverages(Database* db) {
  // Decorrelated per-supplier average, renamed to avoid later ambiguity.
  return PartsuppPart(db)
      .GroupBy({"ps_suppkey"},
               {{AggKind::kAvg, "p_retailprice", "avgp", false}})
      .ProjectExprs(
          [](const Schema& s) {
            std::vector<ExprPtr> e;
            e.push_back(Col(s, "ps_suppkey"));
            e.push_back(Col(s, "avgp"));
            return e;
          },
          {"sk_avg", "avgp"});
}

LogicalOpPtr Q2Baseline(Database* db) {
  auto branch = [&](bool above) {
    return PartsuppPart(db)
        .Join(SupplierAverages(db), {"ps_suppkey"}, {"sk_avg"})
        .Select([&](const Schema& s) {
          return above ? Ge(Col(s, "p_retailprice"), Col(s, "avgp"))
                       : Lt(Col(s, "p_retailprice"), Col(s, "avgp"));
        })
        .GroupBy({"ps_suppkey"}, {{AggKind::kCountStar, "", "c", false}})
        .ProjectExprs(
            [&](const Schema& s) {
              std::vector<ExprPtr> e;
              e.push_back(Col(s, "ps_suppkey"));
              if (above) {
                e.push_back(Col(s, "c"));
                e.push_back(Lit(Value::Null()));
              } else {
                e.push_back(Lit(Value::Null()));
                e.push_back(Col(s, "c"));
              }
              return e;
            },
            {"ps_suppkey", "count_above", "count_below"});
  };
  std::vector<PlanBuilder> branches;
  branches.push_back(branch(true));
  branches.push_back(branch(false));
  return MustBuild(PlanBuilder::UnionAll(std::move(branches))
                       .OrderBy({"ps_suppkey"}),
                   "Q2 baseline");
}

// --- Q3: high-end / low-end part prices per supplier ----------------------

const char* kQ3GApply =
    "select gapply(select p_name, p_retailprice from g "
    "              where p_retailprice >= "
    "                    (select max(p_retailprice) from g) * 0.97 "
    "              union all "
    "              select p_name, p_retailprice from g "
    "              where p_retailprice <= "
    "                    (select min(p_retailprice) from g) * 1.03) "
    "from partsupp, part where ps_partkey = p_partkey "
    "group by ps_suppkey : g";

LogicalOpPtr Q3Baseline(Database* db) {
  // Each branch re-derives the per-supplier extremes (redundant
  // computation, as the sorted-outer-union SQL would).
  auto make_extremes = [&]() {
    return PartsuppPart(db)
        .GroupBy({"ps_suppkey"},
                 {{AggKind::kMax, "p_retailprice", "maxp", false},
                  {AggKind::kMin, "p_retailprice", "minp", false}})
        .ProjectExprs(
            [](const Schema& s) {
              std::vector<ExprPtr> e;
              e.push_back(Col(s, "ps_suppkey"));
              e.push_back(Col(s, "maxp"));
              e.push_back(Col(s, "minp"));
              return e;
            },
            {"sk_mm", "maxp", "minp"});
  };
  auto make_branch = [&](bool high) {
    return PartsuppPart(db)
        .Join(make_extremes(), {"ps_suppkey"}, {"sk_mm"})
        .Select([&](const Schema& s) -> ExprPtr {
          if (high) {
            return Ge(Col(s, "p_retailprice"),
                      Binary(BinaryOp::kMultiply, Col(s, "maxp"),
                             Lit(0.97)));
          }
          return Le(Col(s, "p_retailprice"),
                    Binary(BinaryOp::kMultiply, Col(s, "minp"), Lit(1.03)));
        })
        .Project({"ps_suppkey", "p_name", "p_retailprice"});
  };
  std::vector<PlanBuilder> branches;
  branches.push_back(make_branch(true));
  branches.push_back(make_branch(false));
  return MustBuild(PlanBuilder::UnionAll(std::move(branches))
                       .OrderBy({"ps_suppkey"}),
                   "Q3 baseline");
}

// --- Q4: per (supplier, size), parts above the group average --------------

const char* kQ4GApply =
    "select gapply(select p_name, p_retailprice from g "
    "              where p_retailprice > "
    "                    (select avg(p_retailprice) from g)) "
    "from partsupp, part where ps_partkey = p_partkey "
    "group by ps_suppkey, p_size : g";

LogicalOpPtr Q4Baseline(Database* db) {
  auto averages =
      PartsuppPart(db)
          .GroupBy({"ps_suppkey", "p_size"},
                   {{AggKind::kAvg, "p_retailprice", "avgp", false}})
          .ProjectExprs(
              [](const Schema& s) {
                std::vector<ExprPtr> e;
                e.push_back(Col(s, "ps_suppkey"));
                e.push_back(Col(s, "p_size"));
                e.push_back(Col(s, "avgp"));
                return e;
              },
              {"sk_avg", "size_avg", "avgp"});
  return MustBuild(
      PartsuppPart(db)
          .Join(std::move(averages), {"ps_suppkey", "p_size"},
                {"sk_avg", "size_avg"})
          .Select([](const Schema& s) {
            return Gt(Col(s, "p_retailprice"), Col(s, "avgp"));
          })
          .ProjectExprs(
              [](const Schema& s) {
                std::vector<ExprPtr> e;
                e.push_back(Col(s, "ps_suppkey"));
                e.push_back(Col(s, "p_size"));
                e.push_back(Col(s, "p_name"));
                e.push_back(Col(s, "p_retailprice"));
                return e;
              },
              {"ps_suppkey", "p_size", "p_name", "p_retailprice"})
          .OrderBy({"ps_suppkey"}),
      "Q4 baseline");
}

void Run() {
  const double sf = ScaleFactor(0.01);
  Database db;
  LoadDb(&db, sf);
  std::printf(
      "Figure 8 reproduction: speedup with GApply (TPC-H subset, "
      "sf=%.4g: %lld partsupp rows)\n\n",
      sf, static_cast<long long>(
              db.catalog()->FindTable("partsupp")->num_rows()));
  std::printf("%-6s %14s %14s %9s   %s\n", "query", "no-GApply(ms)",
              "GApply(ms)", "ratio", "paper");

  struct Case {
    const char* name;
    const char* gapply_sql;
    LogicalOpPtr baseline;
    const char* paper;
  };
  std::vector<Case> cases;
  cases.push_back({"Q1", kQ1GApply, Q1Baseline(&db), "~1.5-2x (Fig. 8)"});
  cases.push_back({"Q2", kQ2GApply, Q2Baseline(&db), "~2x (Fig. 8, §2)"});
  cases.push_back({"Q3", kQ3GApply, Q3Baseline(&db), "~1.5-2x (Fig. 8)"});
  cases.push_back({"Q4", kQ4GApply, Q4Baseline(&db), "~1.5-2x (Fig. 8)"});

  for (Case& c : cases) {
    Result<LogicalOpPtr> gapply_plan = db.Plan(c.gapply_sql);
    if (!gapply_plan.ok()) {
      std::fprintf(stderr, "%s bind failed: %s\n", c.name,
                   gapply_plan.status().ToString().c_str());
      std::exit(1);
    }
    CheckSameResults(&db, **gapply_plan, *c.baseline, c.name);
    size_t rows = 0;
    QueryOptions opt;  // full optimizer both sides
    const double with_ms = TimePlanMs(&db, **gapply_plan, opt, &rows);
    const double without_ms = TimePlanMs(&db, *c.baseline, opt, &rows);
    std::printf("%-6s %14.2f %14.2f %8.2fx   %s\n", c.name, without_ms,
                with_ms, without_ms / with_ms, c.paper);
    RecordTiming(std::string(c.name) + "_gapply", with_ms);
    RecordTiming(std::string(c.name) + "_baseline", without_ms);
    RecordPlanProfile(&db, **gapply_plan, opt,
                      std::string(c.name) + "_gapply");
  }
  std::printf(
      "\nratio = time without GApply / time with GApply (>1 means GApply "
      "wins)\n");
  WriteBenchJson("fig8_speedup", sf, Reps());
}

}  // namespace
}  // namespace gapply::bench

int main() { gapply::bench::Run(); }
