// Parallel GApply sweep: per-group query execution fanned out over worker
// threads (threads x group count x group size x partition mode).
//
// The paper observes (§3) that no group's PGQ evaluation depends on any
// other group's, so phase 2 of GApply is embarrassingly parallel. This
// bench measures the morsel-driven implementation: serial baseline vs
// DOP ∈ {2, 4, 8}, on the TPC-H workload (partsupp grouped by ps_partkey —
// 2000 groups at sf 0.01) and on synthetic tables sweeping group count and
// group size. Every parallel run is validated element-for-element against
// the serial output (the parallel path promises bit-for-bit identical
// results) and must report the identical merged pgq_executions counter.
//
// Results go to stdout and to BENCH_parallel_gapply.json in the working
// directory. Interpret speedups against "hardware_concurrency" in the
// JSON: on a single-core container the parallel runs can only measure
// overhead, not speedup.

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/exec/agg_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"

namespace gapply::bench {
namespace {

constexpr size_t kThreads[] = {1, 2, 4, 8};

struct RunResult {
  double ms = 0;
  std::vector<Row> rows;
  ExecContext::Counters counters;
};

struct JsonRecord {
  std::string workload;
  std::string mode;
  size_t threads = 0;
  size_t groups = 0;
  size_t rows = 0;
  double ms = 0;
  double speedup = 0;
  uint64_t pgq_executions = 0;
  double partition_ms = 0;
  double pgq_exec_ms = 0;
  bool identical_output = false;
};

std::vector<JsonRecord> g_records;

// Times `make()` (a freshly configured plan per rep), returning the best of
// `reps` timed runs plus the last run's rows and counters.
template <typename MakeFn>
RunResult TimeRuns(const MakeFn& make, int reps) {
  RunResult result;
  double best = 1e300;
  for (int i = 0; i <= reps; ++i) {
    PhysOpPtr op = make();
    ExecContext ctx;
    const auto start = std::chrono::steady_clock::now();
    Result<QueryResult> r = ExecuteToVector(op.get(), &ctx);
    const auto end = std::chrono::steady_clock::now();
    if (!r.ok()) {
      std::fprintf(stderr, "bench plan failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (i > 0 && ms < best) best = ms;  // skip warmup
    result.rows = std::move(r->rows);
    result.counters = ctx.counters();
  }
  result.ms = best;
  return result;
}

void ReportSweep(const std::string& workload, const char* mode_name,
                 size_t groups, const RunResult& serial,
                 const std::vector<std::pair<size_t, RunResult>>& runs) {
  for (const auto& [threads, run] : runs) {
    const bool identical = SameRowSequence(run.rows, serial.rows);
    const bool same_counters =
        run.counters.pgq_executions == serial.counters.pgq_executions;
    if (!identical || !same_counters) {
      std::fprintf(stderr,
                   "BENCH INVALID: %s/%s threads=%zu diverges from serial "
                   "(identical_rows=%d pgq_execs %llu vs %llu)\n",
                   workload.c_str(), mode_name, threads, identical ? 1 : 0,
                   static_cast<unsigned long long>(
                       run.counters.pgq_executions),
                   static_cast<unsigned long long>(
                       serial.counters.pgq_executions));
      std::exit(1);
    }
    JsonRecord rec;
    rec.workload = workload;
    rec.mode = mode_name;
    rec.threads = threads;
    rec.groups = groups;
    rec.rows = run.rows.size();
    rec.ms = run.ms;
    rec.speedup = serial.ms / run.ms;
    rec.pgq_executions = run.counters.pgq_executions;
    rec.partition_ms = run.counters.gapply_partition_ns / 1e6;
    rec.pgq_exec_ms = run.counters.gapply_pgq_ns / 1e6;
    rec.identical_output = identical;
    g_records.push_back(rec);
    std::printf(
        "  %-7s t=%zu  %9.3f ms  speedup %5.2fx  "
        "[partition %7.3f ms | pgq exec %8.3f ms]  pgq_execs=%llu\n",
        mode_name, threads, run.ms, rec.speedup, rec.partition_ms,
        rec.pgq_exec_ms,
        static_cast<unsigned long long>(rec.pgq_executions));
  }
}

// --------------------------------------------------------------------------
// TPC-H workload: the Figure-8 Q2 shape over partsupp grouped by
// ps_partkey (2000 groups at sf 0.01), executed unoptimized so the GApply
// is guaranteed to run (the optimizer would not rewrite this PGQ anyway,
// but the bench must not depend on that).
// --------------------------------------------------------------------------

const char* kTpchSql =
    "select gapply(select count(*), null from g "
    "              where ps_supplycost >= "
    "                    (select avg(ps_supplycost) from g) "
    "              union all "
    "              select null, count(*) from g "
    "              where ps_supplycost < "
    "                    (select avg(ps_supplycost) from g)) "
    "from partsupp group by ps_partkey : g";

void RunTpchSweep(Database* db, int reps) {
  Result<LogicalOpPtr> plan = db->Plan(kTpchSql);
  if (!plan.ok()) {
    std::fprintf(stderr, "bind failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    std::vector<std::pair<size_t, RunResult>> runs;
    RunResult serial;
    size_t groups = 0;
    for (size_t threads : kThreads) {
      QueryOptions opts;
      opts.optimize = false;
      opts.lowering.force_partition_mode = mode;
      opts.lowering.gapply_parallelism = threads;
      auto timed = TimeRuns(
          [&]() -> PhysOpPtr {
            // Lower a fresh physical plan each run.
            Result<PhysOpPtr> phys = LowerPlan(**plan, opts.lowering);
            if (!phys.ok()) {
              std::fprintf(stderr, "lowering failed: %s\n",
                           phys.status().ToString().c_str());
              std::exit(1);
            }
            return std::move(*phys);
          },
          reps);
      groups = timed.counters.pgq_executions / 2;  // two UNION ALL branches
      if (threads == 1) {
        serial = timed;
      }
      runs.emplace_back(threads, std::move(timed));
    }
    std::printf("tpch_q2_partsupp (%zu groups, %s partitioning):\n", groups,
                PartitionModeName(mode));
    ReportSweep("tpch_q2_partsupp", PartitionModeName(mode), groups, serial,
                runs);
  }
}

// --------------------------------------------------------------------------
// Synthetic sweep: group count x group size, PGQ = count/sum/avg over the
// group plus a filtered rescan (two GroupScans per group, a mid-weight
// PGQ).
// --------------------------------------------------------------------------

std::unique_ptr<Table> MakeGroupedTable(size_t num_groups,
                                        size_t group_size) {
  Schema schema({{"k", TypeId::kInt64, "t"},
                 {"v", TypeId::kInt64, "t"},
                 {"d", TypeId::kDouble, "t"}});
  auto table = std::make_unique<Table>("t", schema);
  Rng rng(17 * num_groups + group_size);
  for (size_t g = 0; g < num_groups; ++g) {
    for (size_t i = 0; i < group_size; ++i) {
      Status st = table->Append({Value::Int(static_cast<int64_t>(g)),
                                 Value::Int(rng.UniformInt(0, 1000)),
                                 Value::Double(rng.UniformDouble(0, 100))});
      if (!st.ok()) std::exit(1);
    }
  }
  return table;
}

PhysOpPtr MakeSyntheticGApply(const Table* table, PartitionMode mode,
                              size_t dop) {
  auto outer = std::make_unique<TableScanOp>(table);
  const Schema gs = outer->output_schema();
  auto scan = std::make_unique<GroupScanOp>("g", gs);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(gs, "v"), "sum_v"));
  aggs.push_back(Avg(Col(gs, "d"), "avg_d"));
  auto pgq = std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
  return std::make_unique<GApplyOp>(std::move(outer), std::vector<int>{0},
                                    "g", std::move(pgq), mode, dop);
}

void RunSyntheticSweep(int reps) {
  const size_t group_counts[] = {100, 1000};
  const size_t group_sizes[] = {8, 64};
  for (size_t num_groups : group_counts) {
    for (size_t group_size : group_sizes) {
      auto table = MakeGroupedTable(num_groups, group_size);
      for (PartitionMode mode :
           {PartitionMode::kSort, PartitionMode::kHash}) {
        char workload[64];
        std::snprintf(workload, sizeof(workload), "synthetic_g%zu_n%zu",
                      num_groups, group_size);
        std::vector<std::pair<size_t, RunResult>> runs;
        RunResult serial;
        for (size_t threads : kThreads) {
          auto timed = TimeRuns(
              [&]() {
                return MakeSyntheticGApply(table.get(), mode, threads);
              },
              reps);
          if (threads == 1) serial = timed;
          runs.emplace_back(threads, std::move(timed));
        }
        std::printf("%s (%zu rows/group, %s partitioning):\n", workload,
                    group_size, PartitionModeName(mode));
        ReportSweep(workload, PartitionModeName(mode), num_groups, serial,
                    runs);
      }
    }
  }
}

void WriteJson(double sf, int reps) {
  FILE* f = std::fopen("BENCH_parallel_gapply.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_parallel_gapply.json\n");
    std::exit(1);
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"parallel_gapply\",\n"
               "  \"scale_factor\": %g,\n"
               "  \"reps\": %d,\n"
               "  \"hardware_concurrency\": %zu,\n"
               "  \"results\": [\n",
               sf, reps, ThreadPool::DefaultParallelism());
  for (size_t i = 0; i < g_records.size(); ++i) {
    const JsonRecord& r = g_records[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"partition_mode\": \"%s\", "
        "\"threads\": %zu, \"groups\": %zu, \"rows\": %zu, "
        "\"ms\": %.4f, \"speedup_vs_serial\": %.4f, "
        "\"pgq_executions\": %llu, \"partition_ms\": %.4f, "
        "\"pgq_exec_ms\": %.4f, \"identical_output\": %s}%s\n",
        r.workload.c_str(), r.mode.c_str(), r.threads, r.groups, r.rows,
        r.ms, r.speedup, static_cast<unsigned long long>(r.pgq_executions),
        r.partition_ms, r.pgq_exec_ms, r.identical_output ? "true" : "false",
        i + 1 == g_records.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n%s\n}\n", ProfilesJsonMember().c_str());
  std::fclose(f);
  std::printf("\nwrote BENCH_parallel_gapply.json (%zu records)\n",
              g_records.size());
}

void Run() {
  const double sf = ScaleFactor(0.01);
  const int reps = Reps();
  std::printf(
      "Parallel GApply sweep (sf=%.4g, reps=%d, hardware threads=%zu)\n\n",
      sf, reps, ThreadPool::DefaultParallelism());
  Database db;
  LoadDb(&db, sf);
  RunTpchSweep(&db, reps);
  RunSyntheticSweep(reps);

  // Per-operator profiles: the TPC-H sweep at DOP 4 (shows the GApply
  // partition / per_group_query phase split and per-worker merge), plus a
  // synthetic shape.
  {
    QueryOptions opts;
    opts.optimize = false;
    opts.lowering.gapply_parallelism = 4;
    Result<LogicalOpPtr> plan = db.Plan(kTpchSql);
    if (plan.ok()) {
      RecordPlanProfile(&db, **plan, opts, "tpch_q2_partsupp_t4");
    }
  }
  {
    auto table = MakeGroupedTable(1000, 64);
    PhysOpPtr op =
        MakeSyntheticGApply(table.get(), PartitionMode::kHash, 4);
    ExecContext ctx;
    RecordPhysProfile(op.get(), &ctx, "synthetic_g1000_n64_hash_t4");
  }

  WriteJson(sf, reps);
}

}  // namespace
}  // namespace gapply::bench

int main() {
  gapply::bench::Run();
  return 0;
}
