// Reproduces the §5.2 in-text observation: "the impact of GApply is
// comparable whether we perform partitioning through sorting or through
// hashing."
//
// Runs the Figure-8 gapply queries with the partition mode forced each way
// and reports both times. Expect same-ballpark numbers, with sort paying
// O(n log n) and producing key-ordered output, hash paying O(n) with
// first-appearance order.

#include "bench/bench_util.h"

namespace gapply::bench {
namespace {

const char* kQueries[][2] = {
    {"Q1",
     "select gapply(select p_name, p_retailprice, null from g "
     "              union all "
     "              select null, null, avg(p_retailprice) from g) "
     "from partsupp, part where ps_partkey = p_partkey "
     "group by ps_suppkey : g"},
    {"Q2",
     "select gapply(select count(*), null from g "
     "              where p_retailprice >= "
     "                    (select avg(p_retailprice) from g) "
     "              union all "
     "              select null, count(*) from g "
     "              where p_retailprice < "
     "                    (select avg(p_retailprice) from g)) "
     "from partsupp, part where ps_partkey = p_partkey "
     "group by ps_suppkey : g"},
    {"Q4",
     "select gapply(select p_name, p_retailprice from g "
     "              where p_retailprice > "
     "                    (select avg(p_retailprice) from g)) "
     "from partsupp, part where ps_partkey = p_partkey "
     "group by ps_suppkey, p_size : g"},
};

void Run() {
  const double sf = ScaleFactor(0.01);
  Database db;
  LoadDb(&db, sf);
  std::printf(
      "Partition-mode comparison (§5.2): sort vs hash partitioning "
      "(sf=%.4g)\n\n",
      sf);
  std::printf("%-6s %12s %12s %10s\n", "query", "sort (ms)", "hash (ms)",
              "sort/hash");
  for (const auto& q : kQueries) {
    Result<LogicalOpPtr> plan = db.Plan(q[1]);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s bind failed: %s\n", q[0],
                   plan.status().ToString().c_str());
      std::exit(1);
    }
    size_t rows = 0;
    QueryOptions sort_opt;
    sort_opt.lowering.force_partition_mode = PartitionMode::kSort;
    QueryOptions hash_opt;
    hash_opt.lowering.force_partition_mode = PartitionMode::kHash;
    const double sort_ms = TimePlanMs(&db, **plan, sort_opt, &rows);
    const double hash_ms = TimePlanMs(&db, **plan, hash_opt, &rows);
    std::printf("%-6s %12.2f %12.2f %9.2fx\n", q[0], sort_ms, hash_ms,
                sort_ms / hash_ms);
    RecordTiming(std::string(q[0]) + "_sort", sort_ms);
    RecordTiming(std::string(q[0]) + "_hash", hash_ms);
    RecordPlanProfile(&db, **plan, sort_opt,
                      std::string(q[0]) + "_sort");
    RecordPlanProfile(&db, **plan, hash_opt,
                      std::string(q[0]) + "_hash");
  }
  std::printf(
      "\npaper: \"the impact of GApply is comparable whether we perform "
      "partitioning\nthrough sorting or through hashing\" — expect ratios "
      "near 1.\n");
  WriteBenchJson("partition_modes", sf, Reps());
}

}  // namespace
}  // namespace gapply::bench

int main() { gapply::bench::Run(); }
