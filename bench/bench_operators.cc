// Google-benchmark microbenchmarks for the core physical operators:
// throughput of scan / filter / hash join / group-by, and the structural
// costs specific to GApply (partitioning, per-group subplan re-opening)
// against plain GroupBy — the overhead the GApplyToGroupBy rule removes.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/plan/builder.h"

namespace gapply::bench {
namespace {

Database* SharedDb() {
  static Database* db = [] {
    auto* d = new Database();
    LoadDb(d, ScaleFactor(0.01));
    return d;
  }();
  return db;
}

LogicalOpPtr MustBuild(PlanBuilder b) {
  Result<LogicalOpPtr> r = std::move(b).Build();
  if (!r.ok()) {
    std::fprintf(stderr, "plan build failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

void RunPlan(benchmark::State& state, const LogicalOp& plan,
             const QueryOptions& options = {}) {
  Database* db = SharedDb();
  size_t rows = 0;
  for (auto _ : state) {
    Result<QueryResult> r = db->Execute(plan, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    rows = r->rows.size();
    benchmark::DoNotOptimize(rows);
  }
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_TableScan(benchmark::State& state) {
  auto plan = MustBuild(PlanBuilder::Scan(*SharedDb()->catalog(), "partsupp"));
  RunPlan(state, *plan);
}
BENCHMARK(BM_TableScan);

void BM_FilterScan(benchmark::State& state) {
  auto plan = MustBuild(
      PlanBuilder::Scan(*SharedDb()->catalog(), "part")
          .Select([](const Schema& s) {
            return Gt(Col(s, "p_retailprice"), Lit(1500.0));
          }));
  RunPlan(state, *plan);
}
BENCHMARK(BM_FilterScan);

void BM_HashJoin(benchmark::State& state) {
  auto plan = MustBuild(
      PlanBuilder::Scan(*SharedDb()->catalog(), "partsupp")
          .Join(PlanBuilder::Scan(*SharedDb()->catalog(), "part"),
                {"ps_partkey"}, {"p_partkey"}));
  RunPlan(state, *plan);
}
BENCHMARK(BM_HashJoin);

void BM_HashGroupBy(benchmark::State& state) {
  auto plan = MustBuild(
      PlanBuilder::Scan(*SharedDb()->catalog(), "partsupp")
          .GroupBy({"ps_suppkey"},
                   {{AggKind::kAvg, "ps_supplycost", "a", false}}));
  RunPlan(state, *plan);
}
BENCHMARK(BM_HashGroupBy);

void BM_SortedGroupBy(benchmark::State& state) {
  auto plan = MustBuild(
      PlanBuilder::Scan(*SharedDb()->catalog(), "partsupp")
          .GroupBy({"ps_suppkey"},
                   {{AggKind::kAvg, "ps_supplycost", "a", false}}));
  QueryOptions options;
  options.lowering.stream_group_by = true;
  RunPlan(state, *plan, options);
}
BENCHMARK(BM_SortedGroupBy);

// GApply with an aggregate-only PGQ, optimizer off: what GApplyToGroupBy
// saves (compare with BM_HashGroupBy).
void BM_GApplyAggregatePgq(benchmark::State& state) {
  auto outer = PlanBuilder::Scan(*SharedDb()->catalog(), "partsupp");
  const Schema gs = outer.schema();
  auto plan = MustBuild(std::move(outer).GApply(
      {"ps_suppkey"}, "g",
      PlanBuilder::GroupScan("g", gs).ScalarAgg(
          {{AggKind::kAvg, "ps_supplycost", "a", false}})));
  QueryOptions options;
  options.optimizer = Optimizer::Options::AllDisabled();
  RunPlan(state, *plan, options);
}
BENCHMARK(BM_GApplyAggregatePgq);

// Identity PGQ: pure partition + re-emit cost (sort vs hash).
void BM_GApplyIdentitySort(benchmark::State& state) {
  auto outer = PlanBuilder::Scan(*SharedDb()->catalog(), "partsupp");
  const Schema gs = outer.schema();
  auto plan = MustBuild(std::move(outer).GApply(
      {"ps_suppkey"}, "g", PlanBuilder::GroupScan("g", gs),
      PartitionMode::kSort));
  QueryOptions options;
  options.optimizer = Optimizer::Options::AllDisabled();
  RunPlan(state, *plan, options);
}
BENCHMARK(BM_GApplyIdentitySort);

void BM_GApplyIdentityHash(benchmark::State& state) {
  auto outer = PlanBuilder::Scan(*SharedDb()->catalog(), "partsupp");
  const Schema gs = outer.schema();
  auto plan = MustBuild(std::move(outer).GApply(
      {"ps_suppkey"}, "g", PlanBuilder::GroupScan("g", gs),
      PartitionMode::kHash));
  QueryOptions options;
  options.optimizer = Optimizer::Options::AllDisabled();
  RunPlan(state, *plan, options);
}
BENCHMARK(BM_GApplyIdentityHash);

// Correlated Apply (per-row re-execution) vs cached uncorrelated Apply.
void BM_ApplyUncorrelatedCached(benchmark::State& state) {
  auto outer = PlanBuilder::Scan(*SharedDb()->catalog(), "supplier");
  auto inner = PlanBuilder::Scan(*SharedDb()->catalog(), "nation")
                   .ScalarAgg({{AggKind::kCountStar, "", "c", false}});
  auto plan = MustBuild(std::move(outer).Apply(std::move(inner)));
  RunPlan(state, *plan);
}
BENCHMARK(BM_ApplyUncorrelatedCached);

// Re-times the headline plans with the shared TimePlanMs harness and emits
// BENCH_operators.json (timings + per-operator profiles). Google Benchmark
// owns the console numbers; this JSON is what tools/bench_check gates on.
void EmitJson() {
  Database* db = SharedDb();
  struct NamedPlan {
    std::string label;
    LogicalOpPtr plan;
    QueryOptions options;
  };
  std::vector<NamedPlan> plans;
  plans.push_back({"table_scan",
                   MustBuild(PlanBuilder::Scan(*db->catalog(), "partsupp")),
                   {}});
  plans.push_back(
      {"hash_join",
       MustBuild(PlanBuilder::Scan(*db->catalog(), "partsupp")
                     .Join(PlanBuilder::Scan(*db->catalog(), "part"),
                           {"ps_partkey"}, {"p_partkey"})),
       {}});
  plans.push_back(
      {"hash_group_by",
       MustBuild(PlanBuilder::Scan(*db->catalog(), "partsupp")
                     .GroupBy({"ps_suppkey"},
                              {{AggKind::kAvg, "ps_supplycost", "a", false}})),
       {}});
  {
    auto outer = PlanBuilder::Scan(*db->catalog(), "partsupp");
    const Schema gs = outer.schema();
    QueryOptions options;
    options.optimizer = Optimizer::Options::AllDisabled();
    plans.push_back({"gapply_aggregate_pgq",
                     MustBuild(std::move(outer).GApply(
                         {"ps_suppkey"}, "g",
                         PlanBuilder::GroupScan("g", gs).ScalarAgg(
                             {{AggKind::kAvg, "ps_supplycost", "a", false}}))),
                     options});
  }
  for (const NamedPlan& p : plans) {
    size_t rows = 0;
    RecordTiming(p.label, TimePlanMs(db, *p.plan, p.options, &rows));
    RecordPlanProfile(db, *p.plan, p.options, p.label);
  }
  WriteBenchJson("operators", ScaleFactor(0.01), Reps());
}

}  // namespace
}  // namespace gapply::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gapply::bench::EmitJson();
  return 0;
}
