// Reproduces Table 1: the effect of each transformation rule (§4), measured
// as elapsed-time ratio without-rule / with-rule across a parameter sweep.
//
// Methodology follows §5.2: for each rule we pick a parameterized query the
// rule applies to, sweep the parameter (usually a selectivity), and compare
// executing the plan with the rule disabled vs enabled. The group-selection
// rules are force-fired (cost gate off), exactly because the paper reports
// that firing them "can have a positive or negative impact on cost" — the
// gap between "Average Benefit" and "Average over Wins" comes from the
// losses.
//
// Paper reference (Table 1):
//   Selection before GApply   max 732.94  avg 124.97  wins 124.97
//   Projection before GApply  max   5.05  avg   3.42  wins   3.42
//   GApply -> groupby         max   1.3   avg   1.19  wins   1.19
//   Group selection: exists   max  14.6   avg   1.67  wins   1.93
//   Group selection: agg      max   6.3   avg   2.08  wins   3.72
//   Invariant grouping        max   2.56  avg   1.32  wins   1.32

#include "bench/bench_util.h"
#include "src/plan/builder.h"

namespace gapply::bench {
namespace {

PlanBuilder PartsuppPart(Database* db) {
  return PlanBuilder::Scan(*db->catalog(), "partsupp")
      .Join(PlanBuilder::Scan(*db->catalog(), "part"), {"ps_partkey"},
            {"p_partkey"});
}

LogicalOpPtr MustBuild(PlanBuilder b) {
  Result<LogicalOpPtr> r = std::move(b).Build();
  if (!r.ok()) {
    std::fprintf(stderr, "plan build failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

// Times `plan` with and without `flag` (all other rules off except classic
// pushdown, which both sides get — the paper pushes the inserted selections
// down "using the traditional rules"). Returns without/with ratio. `label`
// names this sweep point in BENCH_table1_rules.json.
double RatioFor(Database* db, const LogicalOp& plan,
                bool Optimizer::Options::* flag, const std::string& label,
                bool force_fire = false) {
  QueryOptions without;
  without.optimizer = Optimizer::Options::AllDisabled();
  without.optimizer.classic_pushdown = true;
  QueryOptions with = without;
  with.optimizer.*flag = true;
  if (force_fire) with.optimizer.cost_gate = false;

  // Sanity: rule preserves semantics on this instance.
  Result<QueryResult> a = db->Execute(plan, without);
  Result<QueryResult> b = db->Execute(plan, with);
  if (!a.ok() || !b.ok() || !SameRowMultiset(a->rows, b->rows)) {
    std::fprintf(stderr, "rule changed semantics!\n%s\n",
                 plan.DebugString().c_str());
    std::exit(1);
  }

  size_t rows = 0;
  const double t_without = TimePlanMs(db, plan, without, &rows);
  const double t_with = TimePlanMs(db, plan, with, &rows);
  RecordTiming(label + "_without", t_without);
  RecordTiming(label + "_with", t_with);
  RecordPlanProfile(db, plan, with, label);
  return t_without / t_with;
}

// --- Rule 1: Placing Selection Before GApply (Theorem 1) -------------------
// Figure 3's query: per supplier, parts priced above `x` that cost more than
// the average of parts priced below 905. Covering range (>x OR <905)
// controls how much of the outer survives the pushed selection.
RatioStats SelectionRule(Database* db) {
  RatioStats stats;
  for (double x : {905.0, 1100.0, 1400.0, 1700.0, 1850.0, 1895.0}) {
    auto outer = PartsuppPart(db);
    const Schema gs = outer.schema();
    auto cheap_avg = PlanBuilder::GroupScan("g", gs)
                         .Select([&](const Schema& s) {
                           return Lt(Col(s, "p_retailprice"), Lit(905.0));
                         })
                         .ScalarAgg({{AggKind::kAvg, "p_retailprice",
                                      "avg_b", false}});
    auto pgq = PlanBuilder::GroupScan("g", gs)
                   .Select([&](const Schema& s) {
                     return Gt(Col(s, "p_retailprice"), Lit(x));
                   })
                   .Apply(std::move(cheap_avg))
                   .Select([](const Schema& s) {
                     return Gt(Col(s, "p_retailprice"), Col(s, "avg_b"));
                   })
                   .Project({"p_name", "p_retailprice"});
    LogicalOpPtr plan = MustBuild(
        std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
    stats.Add(RatioFor(db, *plan,
                       &Optimizer::Options::selection_before_gapply,
                       "selection_x" + std::to_string(static_cast<int>(x))));
  }
  return stats;
}

// --- Rule 2: Placing Projection Before GApply ------------------------------
// Aggregate-only PGQ over increasingly wide outer queries: the rule strips
// the unused (mostly string) columns before partitioning.
RatioStats ProjectionRule(Database* db) {
  RatioStats stats;
  for (int width = 0; width < 3; ++width) {
    PlanBuilder outer = PlanBuilder::Scan(*db->catalog(), "partsupp");
    if (width >= 1) {
      outer = std::move(outer).Join(PlanBuilder::Scan(*db->catalog(), "part"),
                                    {"ps_partkey"}, {"p_partkey"});
    }
    if (width >= 2) {
      outer = std::move(outer).Join(
          PlanBuilder::Scan(*db->catalog(), "supplier"), {"ps_suppkey"},
          {"s_suppkey"});
    }
    const Schema gs = outer.schema();
    auto pgq = PlanBuilder::GroupScan("g", gs).ScalarAgg(
        {{AggKind::kAvg, "ps_supplycost", "a", false},
         {AggKind::kSum, "ps_availqty", "q", false}});
    LogicalOpPtr plan = MustBuild(
        std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
    stats.Add(RatioFor(db, *plan,
                       &Optimizer::Options::projection_before_gapply,
                       "projection_w" + std::to_string(width)));
  }
  return stats;
}

// --- Rule 3: Converting GApply to groupby ----------------------------------
// Aggregate-only PGQs with varying aggregate count and group granularity.
RatioStats GroupByRule(Database* db) {
  RatioStats stats;
  const std::vector<std::string> group_cols = {"ps_suppkey", "ps_partkey"};
  for (const std::string& gcol : group_cols) {
    for (int naggs : {1, 3}) {
      auto outer = PlanBuilder::Scan(*db->catalog(), "partsupp");
      const Schema gs = outer.schema();
      std::vector<AggSpec> aggs = {
          {AggKind::kAvg, "ps_supplycost", "a", false}};
      if (naggs >= 3) {
        aggs.push_back({AggKind::kSum, "ps_availqty", "q", false});
        aggs.push_back({AggKind::kCountStar, "", "c", false});
      }
      auto pgq = PlanBuilder::GroupScan("g", gs).ScalarAgg(aggs);
      LogicalOpPtr plan =
          MustBuild(std::move(outer).GApply({gcol}, "g", std::move(pgq)));
      stats.Add(
          RatioFor(db, *plan, &Optimizer::Options::gapply_to_groupby,
                   "groupby_" + gcol + "_a" + std::to_string(naggs)));
    }
  }
  return stats;
}

// --- Rule 4: Group selection via EXISTS (§5.2's parameterized query) -------
// "Return suppliers supplying some part with p_retailprice > x", sweeping
// the selectivity of x. Force-fired: the losses at unselective x are the
// point of the "Average over Wins" column.
RatioStats ExistsRule(Database* db) {
  RatioStats stats;
  for (double x : {905.0, 1200.0, 1500.0, 1800.0, 1880.0, 1898.0}) {
    auto outer = PartsuppPart(db);
    const Schema gs = outer.schema();
    auto probe = PlanBuilder::GroupScan("g", gs)
                     .Select([&](const Schema& s) {
                       return Gt(Col(s, "p_retailprice"), Lit(x));
                     })
                     .Exists();
    auto pgq = PlanBuilder::GroupScan("g", gs).Apply(std::move(probe));
    LogicalOpPtr plan = MustBuild(
        std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
    stats.Add(RatioFor(db, *plan,
                       &Optimizer::Options::group_selection_exists,
                       "exists_x" + std::to_string(static_cast<int>(x)),
                       /*force_fire=*/true));
  }
  return stats;
}

// --- Rule 5: Group selection via aggregate condition -----------------------
// "Return suppliers whose avg part price > x."
RatioStats AggSelectionRule(Database* db) {
  RatioStats stats;
  for (double x : {1300.0, 1380.0, 1400.0, 1420.0, 1450.0, 1500.0}) {
    auto outer = PartsuppPart(db);
    const Schema gs = outer.schema();
    auto probe = PlanBuilder::GroupScan("g", gs)
                     .ScalarAgg({{AggKind::kAvg, "p_retailprice", "avg_p",
                                  false}})
                     .Select([&](const Schema& s) {
                       return Gt(Col(s, "avg_p"), Lit(x));
                     })
                     .Exists();
    auto pgq = PlanBuilder::GroupScan("g", gs).Apply(std::move(probe));
    LogicalOpPtr plan = MustBuild(
        std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
    stats.Add(RatioFor(db, *plan,
                       &Optimizer::Options::group_selection_aggregate,
                       "aggsel_x" + std::to_string(static_cast<int>(x)),
                       /*force_fire=*/true));
  }
  return stats;
}

// --- Rule 6: Invariant grouping (Figure 7) ---------------------------------
// Per supplier: the supplier's name next to its well-stocked partsupp rows.
// The FK join with supplier can move above the GApply, which then partitions
// the narrow partsupp rows only.
RatioStats InvariantRule(Database* db) {
  RatioStats stats;
  for (int64_t qty : {0, 2500, 5000, 7500}) {
    auto outer =
        PlanBuilder::Scan(*db->catalog(), "partsupp")
            .Join(PlanBuilder::Scan(*db->catalog(), "supplier"),
                  {"ps_suppkey"}, {"s_suppkey"});
    const Schema gs = outer.schema();
    auto pgq = PlanBuilder::GroupScan("g", gs)
                   .Select([&](const Schema& s) {
                     return Gt(Col(s, "ps_availqty"), Lit(qty));
                   })
                   .Project({"s_name", "ps_partkey", "ps_availqty"});
    LogicalOpPtr plan = MustBuild(
        std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
    stats.Add(
        RatioFor(db, *plan, &Optimizer::Options::invariant_grouping,
                 "invariant_q" + std::to_string(qty)));
  }
  return stats;
}

void Run() {
  const double sf = ScaleFactor(0.01);
  Database db;
  LoadDb(&db, sf);
  std::printf(
      "Table 1 reproduction: effect of transformation rules "
      "(sf=%.4g, ratio = time without rule / with rule)\n\n",
      sf);
  std::printf("%-34s %12s %12s %12s   %s\n", "rule", "max benefit",
              "avg benefit", "avg / wins", "paper (max/avg/wins)");

  struct RuleRow {
    const char* name;
    RatioStats stats;
    const char* paper;
  };
  std::vector<RuleRow> rows;
  rows.push_back({"Placing Selection before GApply", SelectionRule(&db),
                  "732.94 / 124.97 / 124.97"});
  rows.push_back({"Placing Projection before GApply", ProjectionRule(&db),
                  "5.05 / 3.42 / 3.42"});
  rows.push_back({"Converting GApply to groupby", GroupByRule(&db),
                  "1.3 / 1.19 / 1.19"});
  rows.push_back({"Group Selection: Exists", ExistsRule(&db),
                  "14.6 / 1.67 / 1.93"});
  rows.push_back({"Group Selection: Aggregate", AggSelectionRule(&db),
                  "6.3 / 2.08 / 3.72"});
  rows.push_back({"Invariant Grouping", InvariantRule(&db),
                  "2.56 / 1.32 / 1.32"});

  for (const RuleRow& row : rows) {
    std::printf("%-34s %11.2fx %11.2fx %11.2fx   %s\n", row.name,
                row.stats.max_benefit, row.stats.Average(),
                row.stats.AverageOverWins(), row.paper);
  }
  std::printf(
      "\n'avg / wins' averages only the sweep points where the rule "
      "lowered elapsed time;\na gap vs 'avg benefit' means the rule can "
      "hurt (the cost-gated group-selection pair).\n");
  WriteBenchJson("table1_rules", sf, Reps());
}

}  // namespace
}  // namespace gapply::bench

int main() { gapply::bench::Run(); }
