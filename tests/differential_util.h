#ifndef GAPPLY_TESTS_DIFFERENTIAL_UTIL_H_
#define GAPPLY_TESTS_DIFFERENTIAL_UTIL_H_

// Shared differential-testing helpers, promoted from the per-file copies
// that exec_batch_test.cc and exec_exchange_test.cc used to carry.
//
// The comparison primitives themselves (SameRowSequence / SameRowMultiset /
// SortRowsCanonical) live in the library (src/exec/physical_op.h) so the
// fuzzer's oracle runner (src/fuzz/differential.cc) and these tests share
// one definition of "equivalent results". This header adds the gtest glue
// and the config-pair matrices the hand-written differential tests sweep.
//
// The determinism contract the matrices encode:
//   - changing DOP or batch size must not change the output *sequence*
//     (bit-for-bit bar — use ExpectSameSequence);
//   - changing physical strategy (sort vs hash partitioning, row vs batch
//     drive at dop=1) must preserve the output *multiset*
//     (use ExpectSameMultiset).

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/physical_op.h"
#include "src/fuzz/differential.h"

namespace gapply::tutil {

/// Batch sizes every batch-vs-row differential sweeps: degenerate (1),
/// straddling (3, forces mid-group batch boundaries), and default (1024).
inline constexpr size_t kDiffBatchSizes[] = {1, 3, 1024};

/// The DOP x batch grid shared with the fuzzer's default oracle matrix
/// (fuzz::OracleMatrixOptions), so hand-written determinism tests and fuzz
/// oracles exercise the same configurations. Includes dop=1 rows so tests
/// that treat serial output as the baseline can anchor on the first entry
/// per batch size.
inline std::vector<std::pair<size_t, size_t>> DopBatchMatrix(
    bool include_serial = true) {
  fuzz::OracleMatrixOptions defaults;
  std::vector<std::pair<size_t, size_t>> grid;
  for (size_t dop : defaults.dops) {
    for (size_t batch : defaults.batch_sizes) {
      grid.emplace_back(dop, batch);
    }
  }
  if (include_serial) {
    std::vector<std::pair<size_t, size_t>> with_serial;
    for (size_t batch : defaults.batch_sizes) {
      with_serial.emplace_back(1, batch);
    }
    with_serial.insert(with_serial.end(), grid.begin(), grid.end());
    grid = std::move(with_serial);
  }
  return grid;
}

/// Bit-for-bit bar: same rows in the same order.
inline void ExpectSameSequence(const std::vector<Row>& got,
                               const std::vector<Row>& expected,
                               const std::string& label) {
  EXPECT_TRUE(SameRowSequence(got, expected))
      << label << ": sequence mismatch (got " << got.size()
      << " rows, expected " << expected.size() << ")";
}

/// Order-insensitive bar: same rows with the same multiplicities.
inline void ExpectSameMultiset(const std::vector<Row>& got,
                               const std::vector<Row>& expected,
                               const std::string& label) {
  EXPECT_TRUE(SameRowMultiset(got, expected))
      << label << ": multiset mismatch (got " << got.size()
      << " rows, expected " << expected.size() << ")";
}

}  // namespace gapply::tutil

#endif  // GAPPLY_TESTS_DIFFERENTIAL_UTIL_H_
