#include <gtest/gtest.h>

#include <map>

#include "src/engine/database.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

/// End-to-end SQL tests through the Database facade, validated against
/// directly-computed expectations over the generated TPC-H data.
class SqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;  // 10 suppliers, 200 parts, 800 partsupp
    ASSERT_TRUE(db_.LoadTpch(config).ok());
  }

  QueryResult Run(const std::string& sql, QueryOptions options = {}) {
    Result<QueryResult> r = db_.Query(sql, options);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Database db_;
};

TEST_F(SqlTest, SelectStarAndWhere) {
  QueryResult r = Run("select * from supplier where s_suppkey <= 3");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.schema.num_columns(), 4u);
}

TEST_F(SqlTest, ProjectionWithExpressions) {
  QueryResult r = Run(
      "select p_partkey, p_retailprice * 2 as double_price from part "
      "where p_partkey = 7");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.schema.column(1).name, "double_price");
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_val(), 2 * tpch::RetailPrice(7));
}

TEST_F(SqlTest, CommaJoinBecomesEquiJoin) {
  QueryStats stats;
  Result<QueryResult> r = db_.Query(
      "select ps_suppkey, p_name from partsupp, part "
      "where ps_partkey = p_partkey and p_size > 25",
      {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  size_t expected = 0;
  for (const Row& p : db_.catalog()->FindTable("part")->rows()) {
    if (p[4].int_val() > 25) expected += 4;  // 4 partsupp rows per part
  }
  EXPECT_EQ(r->rows.size(), expected);
}

TEST_F(SqlTest, GroupByWithHaving) {
  QueryResult r = Run(
      "select ps_partkey, count(*) as c from partsupp "
      "group by ps_partkey having count(*) >= 4");
  // Every part has exactly 4 suppliers.
  EXPECT_EQ(r.rows.size(), 200u);
  for (const Row& row : r.rows) EXPECT_EQ(row[1].int_val(), 4);
}

TEST_F(SqlTest, ScalarAggregateOverWholeTable) {
  QueryResult r = Run("select count(*), min(p_size), max(p_size) from part");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_val(), 200);
  EXPECT_GE(r.rows[0][1].int_val(), 1);
  EXPECT_LE(r.rows[0][2].int_val(), 50);
}

TEST_F(SqlTest, OrderByClusters) {
  QueryResult r = Run(
      "select s_suppkey, s_name from supplier order by s_suppkey desc");
  ASSERT_EQ(r.rows.size(), 10u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_LT(r.rows[i][0].int_val(), r.rows[i - 1][0].int_val());
  }
}

TEST_F(SqlTest, CorrelatedScalarSubquery) {
  // Suppliers of parts priced above each part's supply cost… simpler:
  // partsupp rows whose supplycost is above their supplier's average.
  QueryResult r = Run(
      "select ps_partkey, ps_suppkey from partsupp ps1 "
      "where ps_supplycost > (select avg(ps_supplycost) from partsupp "
      "                       where ps_suppkey = ps1.ps_suppkey)");
  // Direct computation.
  std::map<int64_t, std::pair<double, int>> sums;
  const auto& rows = db_.catalog()->FindTable("partsupp")->rows();
  for (const Row& row : rows) {
    sums[row[1].int_val()].first += row[3].double_val();
    sums[row[1].int_val()].second += 1;
  }
  size_t expected = 0;
  for (const Row& row : rows) {
    const auto& [sum, n] = sums[row[1].int_val()];
    if (row[3].double_val() > sum / n) ++expected;
  }
  EXPECT_EQ(r.rows.size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(SqlTest, ExistsAndNotExists) {
  QueryResult with = Run(
      "select s_suppkey from supplier where exists "
      "(select ps_suppkey from partsupp where ps_suppkey = s_suppkey)");
  EXPECT_EQ(with.rows.size(), 10u);  // every supplier supplies something

  QueryResult without = Run(
      "select s_suppkey from supplier where not exists "
      "(select ps_suppkey from partsupp where ps_suppkey = s_suppkey "
      " and ps_availqty > 99999)");
  EXPECT_EQ(without.rows.size(), 10u);  // availqty <= 9999 always
}

TEST_F(SqlTest, UnionAllWithNullPadding) {
  QueryResult r = Run(
      "select s_suppkey, null from supplier "
      "union all select null, p_partkey from part");
  EXPECT_EQ(r.rows.size(), 210u);
}

// ---------------------------------------------------------------------------
// The paper's queries in its own extended syntax (§3.1).
// ---------------------------------------------------------------------------

TEST_F(SqlTest, PaperQ1GApplySyntax) {
  QueryResult r = Run(
      "select gapply(select p_name, p_retailprice, null from tmpsupp "
      "              union all "
      "              select null, null, avg(p_retailprice) from tmpsupp) "
      "       as (p_name, p_retailprice, avg_price) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : tmpsupp");
  // 800 detail rows + 10 avg rows; clustered by supplier.
  ASSERT_EQ(r.rows.size(), 810u);
  EXPECT_EQ(r.schema.column(0).name, "ps_suppkey");
  EXPECT_EQ(r.schema.column(3).name, "avg_price");
  // Clustered: each supplier's rows are contiguous.
  std::map<int64_t, int> runs;
  int64_t prev = -1;
  for (const Row& row : r.rows) {
    const int64_t k = row[0].int_val();
    if (k != prev) {
      runs[k]++;
      prev = k;
    }
  }
  for (const auto& [k, n] : runs) EXPECT_EQ(n, 1) << "supplier " << k;
}

TEST_F(SqlTest, PaperQ2GApplySyntax) {
  QueryResult r = Run(
      "select gapply(select count(*), null from tmpsupp "
      "              where p_retailprice >= "
      "                    (select avg(p_retailprice) from tmpsupp) "
      "              union all "
      "              select null, count(*) from tmpsupp "
      "              where p_retailprice < "
      "                    (select avg(p_retailprice) from tmpsupp)) "
      "       as (count_above, count_below) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : tmpsupp");
  ASSERT_EQ(r.rows.size(), 20u);  // two rows per supplier

  // Validate per supplier against direct computation.
  std::map<int64_t, std::vector<double>> prices;
  for (const Row& ps : db_.catalog()->FindTable("partsupp")->rows()) {
    prices[ps[1].int_val()].push_back(tpch::RetailPrice(ps[0].int_val()));
  }
  std::map<int64_t, std::pair<int64_t, int64_t>> expected;
  for (const auto& [sk, v] : prices) {
    double avg = 0;
    for (double p : v) avg += p;
    avg /= static_cast<double>(v.size());
    for (double p : v) {
      if (p >= avg) {
        expected[sk].first++;
      } else {
        expected[sk].second++;
      }
    }
  }
  for (const Row& row : r.rows) {
    const int64_t sk = row[0].int_val();
    if (!row[1].is_null()) {
      EXPECT_EQ(row[1].int_val(), expected[sk].first) << "supplier " << sk;
    } else {
      EXPECT_EQ(row[2].int_val(), expected[sk].second) << "supplier " << sk;
    }
  }
}

TEST_F(SqlTest, PaperQ2NoGApplyFormulationMatches) {
  // The paper's §2 "sorted outer union" SQL (no gapply): must give the same
  // counts as the gapply formulation.
  QueryResult baseline = Run(
      "select ps_suppkey, count(*) as count_above, null as count_below "
      "from partsupp ps1, part "
      "where p_partkey = ps_partkey and p_retailprice >= "
      "  (select avg(p_retailprice) from partsupp, part "
      "   where p_partkey = ps_partkey and ps_suppkey = ps1.ps_suppkey) "
      "group by ps_suppkey "
      "union all "
      "select ps_suppkey, null, count(*) from partsupp ps2, part "
      "where p_partkey = ps_partkey and p_retailprice < "
      "  (select avg(p_retailprice) from partsupp, part "
      "   where p_partkey = ps_partkey and ps_suppkey = ps2.ps_suppkey) "
      "group by ps_suppkey "
      "order by ps_suppkey");
  QueryResult gapply_version = Run(
      "select gapply(select count(*), null from g "
      "              where p_retailprice >= "
      "                    (select avg(p_retailprice) from g) "
      "              union all "
      "              select null, count(*) from g "
      "              where p_retailprice < "
      "                    (select avg(p_retailprice) from g)) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g");
  EXPECT_TRUE(SameRowMultiset(baseline.rows, gapply_version.rows))
      << "baseline " << baseline.rows.size() << " rows vs gapply "
      << gapply_version.rows.size();
}

TEST_F(SqlTest, PaperQ4SqlFormulation) {
  // §5.2's Q4, adapted: derived-table syntax replaced by a correlated
  // subquery (our parser has no FROM-subqueries): for each (supplier, size),
  // parts priced above that group's average.
  QueryResult baseline = Run(
      "select ps_suppkey, p_name, p_size, p_retailprice "
      "from partsupp ps0, part "
      "where p_partkey = ps_partkey and p_retailprice > "
      "  (select avg(p_retailprice) from partsupp, part "
      "   where p_partkey = ps_partkey and ps_suppkey = ps0.ps_suppkey "
      "     and p_size = 30) "
      "  and p_size = 30 "
      "order by ps_suppkey");
  QueryResult gapply_version = Run(
      "select gapply(select p_name, p_size, p_retailprice from g "
      "              where p_retailprice > "
      "                    (select avg(p_retailprice) from g)) "
      "from partsupp, part "
      "where ps_partkey = p_partkey and p_size = 30 "
      "group by ps_suppkey : g");
  EXPECT_TRUE(SameRowMultiset(baseline.rows, gapply_version.rows));
  EXPECT_GT(gapply_version.rows.size(), 0u);
}

TEST_F(SqlTest, GApplyOptimizationThroughSqlPath) {
  QueryStats stats;
  QueryOptions options;
  Result<QueryResult> r = db_.Query(
      "select gapply(select avg(p_retailprice) from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g",
      options, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 10u);
  // The aggregate-only PGQ must have been converted to a plain GroupBy.
  bool converted = false;
  for (const std::string& rule : stats.fired_rules) {
    if (rule == "GApplyToGroupBy") converted = true;
  }
  EXPECT_TRUE(converted);
}

TEST_F(SqlTest, BinderErrors) {
  EXPECT_FALSE(db_.Query("select nope from part").ok());
  EXPECT_FALSE(db_.Query("select p_name from nonexistent").ok());
  EXPECT_FALSE(db_.Query("select p_name from part, partsupp "
                         "where p_partkey = ps_partkey group by p_name : g")
                   .ok());  // group var without gapply
  EXPECT_FALSE(db_.Query("select gapply(select count(*) from g) from part "
                         "group by p_brand")
                   .ok());  // gapply without group var
  EXPECT_FALSE(
      db_.Query("select p_name, count(*) from part").ok());  // mixed agg
  EXPECT_FALSE(db_.Query("select gapply(select count(*) from g) as (a, b) "
                         "from part group by p_brand : g")
                   .ok());  // wrong arity of output names
}

TEST_F(SqlTest, ExplainShowsPlansAndRules) {
  Result<std::string> e = db_.Explain(
      "select gapply(select avg(p_retailprice) from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("bound plan"), std::string::npos);
  EXPECT_NE(e->find("GApply"), std::string::npos);
  EXPECT_NE(e->find("fired rules"), std::string::npos);
  EXPECT_NE(e->find("physical plan"), std::string::npos);
}

}  // namespace
}  // namespace gapply
