#ifndef GAPPLY_TESTS_TEST_UTIL_H_
#define GAPPLY_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/exec/physical_op.h"
#include "src/storage/table.h"

namespace gapply::tutil {

/// Builds an in-memory table; aborts the test on append failure.
inline std::unique_ptr<Table> MakeTable(const std::string& name,
                                        Schema schema,
                                        std::vector<Row> rows) {
  auto table = std::make_unique<Table>(name, std::move(schema));
  for (Row& row : rows) {
    Status st = table->Append(std::move(row));
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  return table;
}

/// Executes a plan with a fresh context; fails the test on error.
inline QueryResult RunPlan(PhysOp* root) {
  ExecContext ctx;
  Result<QueryResult> r = ExecuteToVector(root, &ctx);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  return r.ok() ? std::move(r).value() : QueryResult{};
}

/// Asserts that executing `root` yields exactly `expected` as a multiset.
inline void ExpectRows(PhysOp* root, const std::vector<Row>& expected) {
  QueryResult result = RunPlan(root);
  EXPECT_TRUE(SameRowMultiset(result.rows, expected))
      << "got:\n"
      << result.ToString() << "\nexpected " << expected.size() << " rows";
}

/// Random (key, payload-int, payload-double) rows with `num_keys` distinct
/// keys — the canonical grouped workload used by property tests.
inline std::vector<Row> RandomGroupedRows(Rng* rng, int num_rows,
                                          int num_keys,
                                          double null_fraction = 0.0) {
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(num_rows));
  for (int i = 0; i < num_rows; ++i) {
    Row row;
    row.push_back(Value::Int(rng->UniformInt(1, num_keys)));
    if (rng->Bernoulli(null_fraction)) {
      row.push_back(Value::Null());
    } else {
      row.push_back(Value::Int(rng->UniformInt(0, 100)));
    }
    row.push_back(Value::Double(rng->UniformDouble(0.0, 1000.0)));
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Schema matching RandomGroupedRows.
inline Schema GroupedSchema() {
  return Schema({{"k", TypeId::kInt64, "t"},
                 {"v", TypeId::kInt64, "t"},
                 {"d", TypeId::kDouble, "t"}});
}

}  // namespace gapply::tutil

/// ASSERT-style unwrap of a Result<T> inside a test body.
#define ASSIGN_OR_FAIL(lhs, rexpr) \
  ASSIGN_OR_FAIL_IMPL(GAPPLY_CONCAT(_test_res_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_FAIL_IMPL(tmp, lhs, rexpr)        \
  auto tmp = (rexpr);                               \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString(); \
  lhs = std::move(tmp).value()

#endif  // GAPPLY_TESTS_TEST_UTIL_H_
