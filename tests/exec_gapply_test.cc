#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>

#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RandomGroupedRows;
using tutil::RunPlan;

// ---------------------------------------------------------------------------
// Naive reference implementation of GApply semantics:
//   U_{c in distinct(pi_C(outer))} ({c} x PGQ(sigma_{C=c} outer))
// computed by materializing partitions with a std::map and invoking a
// PGQ-as-function callback. Property tests compare the operator against it.
// ---------------------------------------------------------------------------
using PgqFn = std::function<std::vector<Row>(const std::vector<Row>&)>;

std::vector<Row> ReferenceGApply(const std::vector<Row>& input,
                                 const std::vector<int>& gcols,
                                 const PgqFn& pgq) {
  // Map with first-appearance ordering is not needed; output is compared as
  // a multiset.
  std::vector<Row> keys;
  std::vector<std::vector<Row>> groups;
  for (const Row& row : input) {
    Row key;
    for (int c : gcols) key.push_back(row[static_cast<size_t>(c)]);
    size_t g = keys.size();
    for (size_t i = 0; i < keys.size(); ++i) {
      if (RowsEqual(keys[i], key)) {
        g = i;
        break;
      }
    }
    if (g == keys.size()) {
      keys.push_back(key);
      groups.emplace_back();
    }
    groups[g].push_back(row);
  }
  std::vector<Row> out;
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const Row& pgq_row : pgq(groups[g])) {
      Row full = keys[g];
      full.insert(full.end(), pgq_row.begin(), pgq_row.end());
      out.push_back(std::move(full));
    }
  }
  return out;
}

// PGQ plan: scan the group, compute scalar aggregates (count(*), sum v,
// avg d).
PhysOpPtr AggPgq(const Schema& group_schema, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, group_schema);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(group_schema, "v"), "sum_v"));
  aggs.push_back(Avg(Col(group_schema, "d"), "avg_d"));
  return std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
}

TEST(GApplyTest, AggregatePerGroup) {
  auto table = MakeTable("t", GroupedSchema(),
                         {{Value::Int(1), Value::Int(10), Value::Double(2.0)},
                          {Value::Int(1), Value::Int(30), Value::Double(4.0)},
                          {Value::Int(2), Value::Int(5), Value::Double(1.0)}});
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();
  GApplyOp op(std::move(outer), {0}, "g", AggPgq(group_schema, "g"),
              PartitionMode::kHash);
  // Output: k, cnt, sum_v, avg_d.
  QueryResult r = RunPlan(&op);
  ASSERT_EQ(r.schema.num_columns(), 4u);
  EXPECT_TRUE(SameRowMultiset(
      r.rows,
      {{Value::Int(1), Value::Int(2), Value::Int(40), Value::Double(3.0)},
       {Value::Int(2), Value::Int(1), Value::Int(5), Value::Double(1.0)}}));
}

TEST(GApplyTest, SortModeClustersOutputByGroupingColumns) {
  Rng rng(3);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 200, 12));
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();

  // PGQ returns the group itself (identity scan): output is the whole input
  // with the key prefixed, clustered by key in sort mode.
  GApplyOp op(std::move(outer), {0}, "g",
              std::make_unique<GroupScanOp>("g", group_schema),
              PartitionMode::kSort);
  QueryResult r = RunPlan(&op);
  ASSERT_EQ(r.rows.size(), 200u);
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i][0].int_val(), r.rows[i - 1][0].int_val())
        << "sort-mode GApply output must be clustered and ordered by key";
  }
}

TEST(GApplyTest, HashModeClustersByGroupEvenIfUnordered) {
  Rng rng(4);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 100, 7));
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();
  GApplyOp op(std::move(outer), {0}, "g",
              std::make_unique<GroupScanOp>("g", group_schema),
              PartitionMode::kHash);
  QueryResult r = RunPlan(&op);
  ASSERT_EQ(r.rows.size(), 100u);
  // Rows of the same key must be contiguous (clustered), though key order is
  // arbitrary.
  std::map<int64_t, int> runs;
  int64_t prev = -1;
  for (const Row& row : r.rows) {
    const int64_t k = row[0].int_val();
    if (k != prev) {
      runs[k]++;
      prev = k;
    }
  }
  for (const auto& [k, n] : runs) {
    EXPECT_EQ(n, 1) << "key " << k << " appears in " << n << " runs";
  }
}

TEST(GApplyTest, EmptyInputProducesNoGroups) {
  auto table = MakeTable("t", GroupedSchema(), {});
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();
  GApplyOp op(std::move(outer), {0}, "g", AggPgq(group_schema, "g"));
  EXPECT_TRUE(RunPlan(&op).rows.empty());
}

TEST(GApplyTest, NullGroupingValuesFormTheirOwnGroup) {
  auto table = MakeTable("t", GroupedSchema(),
                         {{Value::Null(), Value::Int(1), Value::Double(1)},
                          {Value::Null(), Value::Int(2), Value::Double(2)},
                          {Value::Int(1), Value::Int(3), Value::Double(3)}});
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();
  GApplyOp op(std::move(outer), {0}, "g", AggPgq(group_schema, "g"));
  QueryResult r = RunPlan(&op);
  EXPECT_TRUE(SameRowMultiset(
      r.rows,
      {{Value::Null(), Value::Int(2), Value::Int(3), Value::Double(1.5)},
       {Value::Int(1), Value::Int(1), Value::Int(3), Value::Double(3.0)}}));
}

TEST(GApplyTest, MultiColumnGroupingKeys) {
  Schema s({{"a", TypeId::kInt64, "t"},
            {"b", TypeId::kInt64, "t"},
            {"v", TypeId::kInt64, "t"}});
  auto table = MakeTable(
      "t", s,
      {{Value::Int(1), Value::Int(1), Value::Int(10)},
       {Value::Int(1), Value::Int(2), Value::Int(20)},
       {Value::Int(1), Value::Int(1), Value::Int(30)}});
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();
  auto scan = std::make_unique<GroupScanOp>("g", group_schema);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(Sum(Col(group_schema, "v"), "s"));
  auto pgq = std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
  GApplyOp op(std::move(outer), {0, 1}, "g", std::move(pgq));
  EXPECT_TRUE(SameRowMultiset(
      RunPlan(&op).rows, {{Value::Int(1), Value::Int(1), Value::Int(40)},
                      {Value::Int(1), Value::Int(2), Value::Int(20)}}));
}

TEST(GApplyTest, PgqCountersTrackExecutions) {
  Rng rng(5);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 50, 9));
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();
  GApplyOp op(std::move(outer), {0}, "g", AggPgq(group_schema, "g"));
  ExecContext ctx;
  ASSERT_TRUE(ExecuteToVector(&op, &ctx).ok());
  EXPECT_EQ(ctx.counters().pgq_executions, 9u);
  EXPECT_EQ(ctx.counters().group_rows_scanned, 50u);
}

// Nested GApply: outer groups by a, inner GApply (inside the PGQ) groups the
// group by b. Exercises binding-stack shadowing with distinct names.
TEST(GApplyTest, NestedGApplyInsidePgq) {
  Schema s({{"a", TypeId::kInt64, "t"},
            {"b", TypeId::kInt64, "t"},
            {"v", TypeId::kInt64, "t"}});
  auto table = MakeTable(
      "t", s,
      {{Value::Int(1), Value::Int(1), Value::Int(1)},
       {Value::Int(1), Value::Int(1), Value::Int(2)},
       {Value::Int(1), Value::Int(2), Value::Int(3)},
       {Value::Int(2), Value::Int(1), Value::Int(4)}});
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema group_schema = outer->output_schema();

  // Inner PGQ (for inner GApply over $h): sum(v).
  auto inner_scan = std::make_unique<GroupScanOp>("h", group_schema);
  std::vector<AggregateDesc> inner_aggs;
  inner_aggs.push_back(Sum(Col(group_schema, "v"), "s"));
  auto inner_pgq = std::make_unique<ScalarAggOp>(std::move(inner_scan),
                                                 std::move(inner_aggs));
  // Outer PGQ: GApply over the group, grouping by b (column 1).
  auto outer_pgq = std::make_unique<GApplyOp>(
      std::make_unique<GroupScanOp>("g", group_schema), std::vector<int>{1},
      "h", std::move(inner_pgq));

  GApplyOp op(std::move(outer), {0}, "g", std::move(outer_pgq));
  // Output: a, b, s.
  EXPECT_TRUE(SameRowMultiset(
      RunPlan(&op).rows, {{Value::Int(1), Value::Int(1), Value::Int(3)},
                      {Value::Int(1), Value::Int(2), Value::Int(3)},
                      {Value::Int(2), Value::Int(1), Value::Int(4)}}));
}

// ---------------------------------------------------------------------------
// Property tests: GApply(sort) == GApply(hash) == reference, over random
// data, for three PGQ shapes.
// ---------------------------------------------------------------------------

class GApplyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GApplyPropertyTest, AggPgqMatchesReference) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int num_rows = static_cast<int>(rng.UniformInt(0, 300));
  const int num_keys = static_cast<int>(rng.UniformInt(1, 20));
  auto rows = RandomGroupedRows(&rng, num_rows, num_keys, 0.15);
  auto table = MakeTable("t", GroupedSchema(), rows);
  const Schema gs = table->schema();

  const std::vector<Row> expected = ReferenceGApply(
      table->rows(), {0}, [&](const std::vector<Row>& group) {
        int64_t cnt = 0, sum = 0;
        bool any = false;
        double dsum = 0;
        for (const Row& r : group) {
          ++cnt;
          if (!r[1].is_null()) {
            sum += r[1].int_val();
            any = true;
          }
          dsum += r[2].double_val();
        }
        Row out{Value::Int(cnt), any ? Value::Int(sum) : Value::Null(),
                Value::Double(dsum / static_cast<double>(group.size()))};
        return std::vector<Row>{out};
      });

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    GApplyOp op(std::make_unique<TableScanOp>(table.get()), {0}, "g",
                AggPgq(gs, "g"), mode);
    QueryResult r = RunPlan(&op);
    EXPECT_TRUE(SameRowMultiset(r.rows, expected))
        << "mode=" << PartitionModeName(mode) << " rows=" << num_rows
        << " keys=" << num_keys;
  }
}

TEST_P(GApplyPropertyTest, FilteredIdentityPgqMatchesReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  const int num_rows = static_cast<int>(rng.UniformInt(0, 300));
  const int num_keys = static_cast<int>(rng.UniformInt(1, 15));
  const int64_t cutoff = rng.UniformInt(0, 100);
  auto rows = RandomGroupedRows(&rng, num_rows, num_keys, 0.1);
  auto table = MakeTable("t", GroupedSchema(), rows);
  const Schema gs = table->schema();

  const std::vector<Row> expected = ReferenceGApply(
      table->rows(), {0}, [&](const std::vector<Row>& group) {
        std::vector<Row> out;
        for (const Row& r : group) {
          if (!r[1].is_null() && r[1].int_val() > cutoff) out.push_back(r);
        }
        return out;
      });

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    auto pgq = std::make_unique<FilterOp>(
        std::make_unique<GroupScanOp>("g", gs),
        Gt(Col(gs, "v"), Lit(cutoff)));
    GApplyOp op(std::make_unique<TableScanOp>(table.get()), {0}, "g",
                std::move(pgq), mode);
    EXPECT_TRUE(SameRowMultiset(RunPlan(&op).rows, expected))
        << "mode=" << PartitionModeName(mode);
  }
}

TEST_P(GApplyPropertyTest, CorrelatedSubqueryPgqMatchesReference) {
  // PGQ of paper query Q2 shape: count rows above the group average.
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729);
  const int num_rows = static_cast<int>(rng.UniformInt(1, 250));
  const int num_keys = static_cast<int>(rng.UniformInt(1, 12));
  auto rows = RandomGroupedRows(&rng, num_rows, num_keys);
  auto table = MakeTable("t", GroupedSchema(), rows);
  const Schema gs = table->schema();

  const std::vector<Row> expected = ReferenceGApply(
      table->rows(), {0}, [&](const std::vector<Row>& group) {
        double sum = 0;
        for (const Row& r : group) sum += r[2].double_val();
        const double avg = sum / static_cast<double>(group.size());
        int64_t above = 0;
        for (const Row& r : group) {
          if (r[2].double_val() >= avg) ++above;
        }
        return std::vector<Row>{{Value::Int(above)}};
      });

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    // PGQ: ScalarAgg(count(*)) over Filter(d >= (ScalarAgg(avg d) of the
    // group)). The scalar subquery is modeled with Apply: the Apply's outer
    // is the group scan, the inner is the avg; a filter over the combined
    // row compares, and a final count aggregates.
    auto group_scan = std::make_unique<GroupScanOp>("g", gs);
    std::vector<AggregateDesc> avg_aggs;
    avg_aggs.push_back(Avg(Col(gs, "d"), "avg_d"));
    auto avg_plan = std::make_unique<ScalarAggOp>(
        std::make_unique<GroupScanOp>("g", gs), std::move(avg_aggs));
    auto apply = std::make_unique<ApplyOp>(std::move(group_scan),
                                           std::move(avg_plan));
    const Schema applied = apply->output_schema();  // k, v, d, avg_d
    auto filtered = std::make_unique<FilterOp>(
        std::move(apply), Ge(Col(applied, "d"), Col(applied, "avg_d")));
    std::vector<AggregateDesc> cnt;
    cnt.push_back(CountStar("above"));
    auto pgq =
        std::make_unique<ScalarAggOp>(std::move(filtered), std::move(cnt));

    GApplyOp op(std::make_unique<TableScanOp>(table.get()), {0}, "g",
                std::move(pgq), mode);
    EXPECT_TRUE(SameRowMultiset(RunPlan(&op).rows, expected))
        << "mode=" << PartitionModeName(mode);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GApplyPropertyTest,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace gapply
