#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "src/sql/lexer.h"
#include "src/sql/parser.h"

namespace gapply::sql {
namespace {

TEST(LexerTest, TokenKinds) {
  auto tokens = Lex("SELECT p_name, 42, 3.14, 'it''s' FROM part;");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 12u);  // incl. end token
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "select");  // lowercased
  EXPECT_EQ((*tokens)[0].raw, "SELECT");
  EXPECT_EQ((*tokens)[3].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[5].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[7].type, TokenType::kString);
  EXPECT_EQ((*tokens)[7].text, "it's");
  EXPECT_EQ((*tokens)[10].text, ";");
}

TEST(LexerTest, OperatorsAndComments) {
  auto tokens = Lex("a <> b -- comment\n <= >= != < > : .");
  ASSERT_TRUE(tokens.ok());
  std::vector<std::string> symbols;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kSymbol) symbols.push_back(t.text);
  }
  EXPECT_EQ(symbols,
            (std::vector<std::string>{"<>", "<=", ">=", "<>", "<", ">", ":",
                                      "."}));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("select 'unterminated").ok());
  EXPECT_FALSE(Lex("select @").ok());
}

TEST(ParserTest, SimpleSelect) {
  auto q = Parse("select p_name, p_retailprice from part where p_size > 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ((*q)->branches.size(), 1u);
  const SelectStmt& s = *(*q)->branches[0];
  EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(s.from.size(), 1u);
  EXPECT_EQ(s.from[0].table, "part");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->kind, SqlExprKind::kBinary);
  EXPECT_EQ(s.where->binary_op, BinaryOp::kGt);
}

TEST(ParserTest, AliasesAndQualifiedRefs) {
  auto q = Parse("select ps.ps_suppkey as sk from partsupp ps, part p "
                 "where ps.ps_partkey = p.p_partkey");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SelectStmt& s = *(*q)->branches[0];
  EXPECT_EQ(s.items[0].alias, "sk");
  EXPECT_EQ(s.items[0].expr->qualifier, "ps");
  EXPECT_EQ(s.from[1].alias, "p");
}

TEST(ParserTest, UnionAllAndOrderBy) {
  auto q = Parse("select a from t union all select b from u order by a desc");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->branches.size(), 2u);
  ASSERT_EQ((*q)->order_by.size(), 1u);
  EXPECT_FALSE((*q)->order_by[0].ascending);
}

TEST(ParserTest, PlainUnionRejected) {
  EXPECT_FALSE(Parse("select a from t union select b from u").ok());
}

TEST(ParserTest, AggregatesAndGroupBy) {
  auto q = Parse("select ps_suppkey, count(*), sum(ps_availqty), "
                 "count(distinct ps_partkey) from partsupp "
                 "group by ps_suppkey having count(*) > 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SelectStmt& s = *(*q)->branches[0];
  EXPECT_TRUE(s.items[1].expr->star_arg);
  EXPECT_TRUE(s.items[3].expr->distinct_arg);
  EXPECT_EQ(s.group_by.size(), 1u);
  EXPECT_TRUE(s.group_var.empty());
  ASSERT_NE(s.having, nullptr);
}

TEST(ParserTest, GApplySyntaxExtension) {
  // The paper's §3.1 Q1 syntax, verbatim modulo whitespace.
  auto q = Parse(
      "select gapply(select p_name, p_retailprice, null from tmpsupp "
      "              union all "
      "              select null, null, avg(p_retailprice) from tmpsupp) "
      "from partsupp, part "
      "where ps_partkey = p_partkey "
      "group by ps_suppkey : tmpsupp");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SelectStmt& s = *(*q)->branches[0];
  ASSERT_NE(s.gapply_pgq, nullptr);
  EXPECT_EQ(s.gapply_pgq->branches.size(), 2u);
  EXPECT_EQ(s.group_var, "tmpsupp");
  EXPECT_EQ(s.group_by.size(), 1u);
}

TEST(ParserTest, GApplyWithColumnNames) {
  auto q = Parse(
      "select gapply(select count(*) from g) as (cnt) "
      "from partsupp group by ps_suppkey : g");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->branches[0]->gapply_names,
            (std::vector<std::string>{"cnt"}));
}

TEST(ParserTest, SubqueriesAndExists) {
  auto q = Parse(
      "select s_suppkey from supplier where "
      "exists (select ps_suppkey from partsupp where ps_suppkey = s_suppkey)"
      " and s_acctbal > (select avg(s_acctbal) from supplier)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SqlExpr& where = *(*q)->branches[0]->where;
  ASSERT_EQ(where.kind, SqlExprKind::kBinary);
  EXPECT_EQ(where.binary_op, BinaryOp::kAnd);
  EXPECT_EQ(where.left->kind, SqlExprKind::kExists);
  EXPECT_EQ(where.right->right->kind, SqlExprKind::kScalarSubquery);
}

TEST(ParserTest, NotExists) {
  auto q = Parse("select a from t where not exists (select b from u)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SqlExpr& where = *(*q)->branches[0]->where;
  EXPECT_EQ(where.kind, SqlExprKind::kExists);
  EXPECT_TRUE(where.negated);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto q = Parse("select a from t where a + 2 * b >= 10 and not c = 1 or d "
                 "is not null");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const SqlExpr& where = *(*q)->branches[0]->where;
  // Top is OR.
  EXPECT_EQ(where.binary_op, BinaryOp::kOr);
  // OR's left is AND; AND's left is >=; >='s left is a + (2*b).
  const SqlExpr& ge = *where.left->left;
  EXPECT_EQ(ge.binary_op, BinaryOp::kGe);
  EXPECT_EQ(ge.left->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(ge.left->right->binary_op, BinaryOp::kMultiply);
  // OR's right: IS NOT NULL.
  EXPECT_EQ(where.right->kind, SqlExprKind::kUnary);
  EXPECT_EQ(where.right->unary_op, UnaryOp::kIsNotNull);
}

TEST(ParserTest, ErrorMessagesCarryOffsets) {
  auto q = Parse("select from t");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
  EXPECT_FALSE(Parse("select a t").ok());          // missing FROM
  EXPECT_FALSE(Parse("select a from t where").ok());
  EXPECT_FALSE(Parse("select a from t group by").ok());
  EXPECT_FALSE(Parse("select gapply(select 1 from g from t").ok());
  EXPECT_FALSE(Parse("select a from t; extra").ok());
}

TEST(ParserTest, LiteralForms) {
  auto q = Parse("select 1, -2.5, 'x', null, true, false from t");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& items = (*q)->branches[0]->items;
  EXPECT_EQ(items[0].expr->literal.int_val(), 1);
  EXPECT_EQ(items[1].expr->kind, SqlExprKind::kUnary);  // unary minus
  EXPECT_EQ(items[3].expr->literal.type(), TypeId::kNull);
  EXPECT_EQ(items[4].expr->literal.bool_val(), true);
}

TEST(ParserTest, SetStatementValueForms) {
  // Integer value.
  auto num = TryParseSet("set parallelism = 4");
  ASSERT_TRUE(num.ok());
  ASSERT_TRUE(num->has_value());
  EXPECT_EQ((*num)->name, "parallelism");
  EXPECT_EQ((*num)->value, 4);
  EXPECT_TRUE((*num)->word.empty());

  // on/off/true/false still parse as 1/0, not as words.
  for (const auto& [text, expected] :
       {std::pair<const char*, int64_t>{"on", 1},
        {"off", 0},
        {"true", 1},
        {"false", 0}}) {
    auto r = TryParseSet(std::string("set profile = ") + text);
    ASSERT_TRUE(r.ok()) << text;
    ASSERT_TRUE(r->has_value());
    EXPECT_EQ((*r)->value, expected) << text;
    EXPECT_TRUE((*r)->word.empty()) << text;
  }

  // Any other identifier becomes a word value for the engine to validate.
  auto word = TryParseSet("SET storage = COLUMNAR");
  ASSERT_TRUE(word.ok());
  ASSERT_TRUE(word->has_value());
  EXPECT_EQ((*word)->name, "storage");
  EXPECT_EQ((*word)->word, "columnar");  // lowercased by the lexer

  // Not a SET statement at all: empty optional, no error.
  auto other = TryParseSet("select 1 from t");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->has_value());
}

}  // namespace
}  // namespace gapply::sql
