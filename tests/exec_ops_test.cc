#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::ExpectRows;
using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RunPlan;

std::unique_ptr<Table> SmallTable() {
  return MakeTable("t", GroupedSchema(),
                   {{Value::Int(1), Value::Int(10), Value::Double(1.5)},
                    {Value::Int(1), Value::Int(20), Value::Double(2.5)},
                    {Value::Int(2), Value::Int(30), Value::Double(3.5)},
                    {Value::Int(2), Value::Null(), Value::Double(4.5)},
                    {Value::Int(3), Value::Int(50), Value::Double(5.5)}});
}

TEST(TableScanTest, ScansAllRowsAndCounts) {
  auto table = SmallTable();
  TableScanOp scan(table.get());
  ExecContext ctx;
  auto result = ExecuteToVector(&scan, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(ctx.counters().rows_scanned, 5u);
  EXPECT_EQ(result->schema.column(0).FullName(), "t.k");
}

TEST(TableScanTest, AliasRequalifiesSchema) {
  auto table = SmallTable();
  TableScanOp scan(table.get(), "x");
  EXPECT_EQ(scan.output_schema().column(0).FullName(), "x.k");
}

TEST(TableScanTest, ReopenRescans) {
  auto table = SmallTable();
  TableScanOp scan(table.get());
  ExecContext ctx;
  ASSERT_TRUE(ExecuteToVector(&scan, &ctx).ok());
  auto again = ExecuteToVector(&scan, &ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->rows.size(), 5u);
}

TEST(FilterTest, KeepsMatchingRows) {
  auto table = SmallTable();
  const Schema& s = table->schema();
  FilterOp filter(std::make_unique<TableScanOp>(table.get()),
                  Gt(Col(s, "v"), Lit(int64_t{15})));
  QueryResult r = RunPlan(&filter);
  EXPECT_EQ(r.rows.size(), 3u);  // 20, 30, 50; NULL row rejected
}

TEST(FilterTest, NullPredicateRejects) {
  auto table = SmallTable();
  const Schema& s = table->schema();
  // v > NULL is UNKNOWN for every row → empty result.
  FilterOp filter(std::make_unique<TableScanOp>(table.get()),
                  Gt(Col(s, "v"), Lit(Value::Null())));
  EXPECT_TRUE(RunPlan(&filter).rows.empty());
}

TEST(FilterTest, TypeErrorSurfaces) {
  auto table = SmallTable();
  const Schema& s = table->schema();
  FilterOp filter(std::make_unique<TableScanOp>(table.get()),
                  Binary(BinaryOp::kAdd, Col(s, "v"), Lit(int64_t{1})));
  ExecContext ctx;
  auto result = ExecuteToVector(&filter, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(ProjectTest, ComputesExpressions) {
  auto table = SmallTable();
  const Schema& s = table->schema();
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(s, "k"));
  exprs.push_back(Binary(BinaryOp::kMultiply, Col(s, "d"), Lit(2.0)));
  auto project = ProjectOp::Make(std::make_unique<TableScanOp>(table.get()),
                                 std::move(exprs), {"k", "d2"});
  ASSERT_TRUE(project.ok());
  QueryResult r = RunPlan(project->get());
  ASSERT_EQ(r.schema.num_columns(), 2u);
  EXPECT_EQ(r.schema.column(1).name, "d2");
  EXPECT_EQ(r.schema.column(1).type, TypeId::kDouble);
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_val(), 3.0);
}

TEST(ProjectTest, MismatchedNamesRejected) {
  auto table = SmallTable();
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(table->schema(), "k"));
  EXPECT_FALSE(ProjectOp::Make(std::make_unique<TableScanOp>(table.get()),
                               std::move(exprs), {"a", "b"})
                   .ok());
}

TEST(SortTest, OrdersWithNullsFirst) {
  auto table = SmallTable();
  SortOp sort(std::make_unique<TableScanOp>(table.get()),
              {{1, /*ascending=*/true}});
  QueryResult r = RunPlan(&sort);
  ASSERT_EQ(r.rows.size(), 5u);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_EQ(r.rows[1][1].int_val(), 10);
  EXPECT_EQ(r.rows[4][1].int_val(), 50);
}

TEST(SortTest, DescendingAndMultiKey) {
  auto table = SmallTable();
  SortOp sort(std::make_unique<TableScanOp>(table.get()),
              {{0, false}, {1, true}});
  QueryResult r = RunPlan(&sort);
  EXPECT_EQ(r.rows[0][0].int_val(), 3);
  EXPECT_EQ(r.rows[1][0].int_val(), 2);
  EXPECT_TRUE(r.rows[1][1].is_null());  // NULL first within key 2
}

TEST(HashJoinTest, InnerEquiJoin) {
  auto left = MakeTable(
      "l", Schema({{"id", TypeId::kInt64, "l"}, {"x", TypeId::kString, "l"}}),
      {{Value::Int(1), Value::Str("a")},
       {Value::Int(2), Value::Str("b")},
       {Value::Int(2), Value::Str("c")},
       {Value::Int(9), Value::Str("z")}});
  auto right = MakeTable(
      "r", Schema({{"id", TypeId::kInt64, "r"}, {"y", TypeId::kString, "r"}}),
      {{Value::Int(1), Value::Str("p")}, {Value::Int(2), Value::Str("q")}});
  HashJoinOp join(std::make_unique<TableScanOp>(left.get()),
                  std::make_unique<TableScanOp>(right.get()), {0}, {0});
  ExpectRows(&join, {{Value::Int(1), Value::Str("a"), Value::Int(1),
                      Value::Str("p")},
                     {Value::Int(2), Value::Str("b"), Value::Int(2),
                      Value::Str("q")},
                     {Value::Int(2), Value::Str("c"), Value::Int(2),
                      Value::Str("q")}});
}

TEST(HashJoinTest, NullKeysNeverMatch) {
  Schema s({{"id", TypeId::kInt64, "t"}});
  auto left = MakeTable("l", s, {{Value::Null()}, {Value::Int(1)}});
  auto right = MakeTable("r", s, {{Value::Null()}, {Value::Int(1)}});
  HashJoinOp join(std::make_unique<TableScanOp>(left.get()),
                  std::make_unique<TableScanOp>(right.get()), {0}, {0});
  ExpectRows(&join, {{Value::Int(1), Value::Int(1)}});
}

TEST(HashJoinTest, ResidualPredicateFilters) {
  Schema s({{"id", TypeId::kInt64, "t"}, {"v", TypeId::kInt64, "t"}});
  auto left = MakeTable("l", s, {{Value::Int(1), Value::Int(10)},
                                 {Value::Int(1), Value::Int(20)}});
  auto right = MakeTable("r", s, {{Value::Int(1), Value::Int(15)}});
  auto ls = std::make_unique<TableScanOp>(left.get());
  auto rs = std::make_unique<TableScanOp>(right.get());
  Schema joined = Schema::Concat(ls->output_schema(), rs->output_schema());
  // l.v < r.v
  HashJoinOp join(std::move(ls), std::move(rs), {0}, {0},
                  Lt(Col(joined, 1), Col(joined, 3)));
  ExpectRows(&join, {{Value::Int(1), Value::Int(10), Value::Int(1),
                      Value::Int(15)}});
}

TEST(NestedLoopJoinTest, MatchesHashJoinOnEquiPredicate) {
  auto left = SmallTable();
  auto right = SmallTable();
  auto ls = std::make_unique<TableScanOp>(left.get(), "a");
  auto rs = std::make_unique<TableScanOp>(right.get(), "b");
  Schema joined = Schema::Concat(ls->output_schema(), rs->output_schema());
  NestedLoopJoinOp nlj(std::move(ls), std::move(rs),
                       Eq(Col(joined, 0), Col(joined, 3)));
  HashJoinOp hj(std::make_unique<TableScanOp>(left.get(), "a"),
                std::make_unique<TableScanOp>(right.get(), "b"), {0}, {0});
  QueryResult r1 = RunPlan(&nlj);
  QueryResult r2 = RunPlan(&hj);
  EXPECT_TRUE(SameRowMultiset(r1.rows, r2.rows));
  EXPECT_EQ(r1.rows.size(), 9u);  // 2*2 + 2*2 + 1
}

TEST(NestedLoopJoinTest, NullPredicateIsCrossProduct) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto left = MakeTable("l", s, {{Value::Int(1)}, {Value::Int(2)}});
  auto right = MakeTable("r", s, {{Value::Int(3)}, {Value::Int(4)}});
  NestedLoopJoinOp join(std::make_unique<TableScanOp>(left.get()),
                        std::make_unique<TableScanOp>(right.get()), nullptr);
  EXPECT_EQ(RunPlan(&join).rows.size(), 4u);
}

TEST(HashGroupByTest, GroupsAndAggregates) {
  auto table = SmallTable();
  const Schema& s = table->schema();
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(s, "v"), "sum_v"));
  aggs.push_back(Avg(Col(s, "d"), "avg_d"));
  HashGroupByOp gb(std::make_unique<TableScanOp>(table.get()), {0},
                   std::move(aggs));
  ExpectRows(&gb,
             {{Value::Int(1), Value::Int(2), Value::Int(30), Value::Double(2.0)},
              {Value::Int(2), Value::Int(2), Value::Int(30), Value::Double(4.0)},
              {Value::Int(3), Value::Int(1), Value::Int(50), Value::Double(5.5)}});
}

TEST(HashGroupByTest, CountIgnoresNullsCountStarDoesNot) {
  auto table = SmallTable();
  const Schema& s = table->schema();
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cstar"));
  aggs.push_back(Count(Col(s, "v"), "cv"));
  HashGroupByOp gb(std::make_unique<TableScanOp>(table.get()), {0},
                   std::move(aggs));
  ExpectRows(&gb, {{Value::Int(1), Value::Int(2), Value::Int(2)},
                   {Value::Int(2), Value::Int(2), Value::Int(1)},
                   {Value::Int(3), Value::Int(1), Value::Int(1)}});
}

TEST(StreamGroupByTest, MatchesHashGroupByOnSortedInput) {
  auto table = SmallTable();
  const Schema& s = table->schema();
  std::vector<AggregateDesc> aggs1, aggs2;
  for (auto* aggs : {&aggs1, &aggs2}) {
    aggs->push_back(Min(Col(s, "d"), "min_d"));
    aggs->push_back(Max(Col(s, "v"), "max_v"));
  }
  StreamGroupByOp stream(
      std::make_unique<SortOp>(std::make_unique<TableScanOp>(table.get()),
                               std::vector<SortKey>{{0, true}}),
      {0}, std::move(aggs1));
  HashGroupByOp hash(std::make_unique<TableScanOp>(table.get()), {0},
                     std::move(aggs2));
  EXPECT_TRUE(SameRowMultiset(RunPlan(&stream).rows, RunPlan(&hash).rows));
}

TEST(ScalarAggTest, EmptyInputYieldsOneRow) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto table = MakeTable("t", s, {});
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(s, "v"), "sum_v"));
  aggs.push_back(Avg(Col(s, "v"), "avg_v"));
  aggs.push_back(Min(Col(s, "v"), "min_v"));
  ScalarAggOp agg(std::make_unique<TableScanOp>(table.get()),
                  std::move(aggs));
  QueryResult r = RunPlan(&agg);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].int_val(), 0);     // count(*) = 0
  EXPECT_TRUE(r.rows[0][1].is_null());      // sum NULL
  EXPECT_TRUE(r.rows[0][2].is_null());      // avg NULL
  EXPECT_TRUE(r.rows[0][3].is_null());      // min NULL
}

TEST(ScalarAggTest, DistinctAggregation) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto table = MakeTable(
      "t", s, {{Value::Int(1)}, {Value::Int(1)}, {Value::Int(2)}});
  std::vector<AggregateDesc> aggs;
  aggs.push_back(Count(Col(s, "v"), "cd", /*distinct=*/true));
  aggs.push_back(Sum(Col(s, "v"), "sum_all"));
  ScalarAggOp agg(std::make_unique<TableScanOp>(table.get()),
                  std::move(aggs));
  ExpectRows(&agg, {{Value::Int(2), Value::Int(4)}});
}

TEST(DistinctTest, RemovesDuplicatesIncludingNulls) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto table = MakeTable("t", s,
                         {{Value::Int(1)},
                          {Value::Null()},
                          {Value::Int(1)},
                          {Value::Null()},
                          {Value::Int(2)}});
  DistinctOp distinct(std::make_unique<TableScanOp>(table.get()));
  ExpectRows(&distinct, {{Value::Int(1)}, {Value::Null()}, {Value::Int(2)}});
}

TEST(UnionAllTest, ConcatenatesBranches) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto t1 = MakeTable("a", s, {{Value::Int(1)}});
  auto t2 = MakeTable("b", s, {{Value::Int(2)}, {Value::Int(3)}});
  std::vector<PhysOpPtr> branches;
  branches.push_back(std::make_unique<TableScanOp>(t1.get()));
  branches.push_back(std::make_unique<TableScanOp>(t2.get()));
  auto u = UnionAllOp::Make(std::move(branches));
  ASSERT_TRUE(u.ok());
  ExpectRows(u->get(), {{Value::Int(1)}, {Value::Int(2)}, {Value::Int(3)}});
}

TEST(UnionAllTest, NullColumnsUnifyWithTyped) {
  // The sorted-outer-union pattern: one branch projects NULL where the other
  // has data.
  Schema s1({{"a", TypeId::kInt64, ""}, {"b", TypeId::kNull, ""}});
  Schema s2({{"a", TypeId::kNull, ""}, {"b", TypeId::kDouble, ""}});
  auto t1 = MakeTable("x", s1, {{Value::Int(1), Value::Null()}});
  auto t2 = MakeTable("y", s2, {{Value::Null(), Value::Double(2.5)}});
  std::vector<PhysOpPtr> branches;
  branches.push_back(std::make_unique<TableScanOp>(t1.get()));
  branches.push_back(std::make_unique<TableScanOp>(t2.get()));
  auto u = UnionAllOp::Make(std::move(branches));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->output_schema().column(0).type, TypeId::kInt64);
  EXPECT_EQ((*u)->output_schema().column(1).type, TypeId::kDouble);
  EXPECT_EQ(RunPlan(u->get()).rows.size(), 2u);
}

TEST(UnionAllTest, IncompatibleBranchesRejected) {
  auto t1 = MakeTable("x", Schema({{"a", TypeId::kInt64, ""}}),
                      {{Value::Int(1)}});
  auto t2 = MakeTable("y", Schema({{"a", TypeId::kString, ""}}),
                      {{Value::Str("s")}});
  std::vector<PhysOpPtr> branches;
  branches.push_back(std::make_unique<TableScanOp>(t1.get()));
  branches.push_back(std::make_unique<TableScanOp>(t2.get()));
  EXPECT_FALSE(UnionAllOp::Make(std::move(branches)).ok());
}

TEST(ApplyTest, CorrelatedScalarSubquery) {
  // For each row of l, compute sum(r.v) over rows of r with r.k = l.k.
  Schema s({{"k", TypeId::kInt64, "t"}, {"v", TypeId::kInt64, "t"}});
  auto l = MakeTable("l", s, {{Value::Int(1), Value::Int(0)},
                              {Value::Int(2), Value::Int(0)},
                              {Value::Int(3), Value::Int(0)}});
  auto r = MakeTable("r", s, {{Value::Int(1), Value::Int(10)},
                              {Value::Int(1), Value::Int(20)},
                              {Value::Int(2), Value::Int(5)}});

  // Inner: ScalarAgg(sum v) over Filter(r.k = outer.k, Scan(r)).
  auto r_scan = std::make_unique<TableScanOp>(r.get());
  ExprPtr corr = std::make_unique<CorrelatedColumnRefExpr>(
      0, 0, TypeId::kInt64, "l.k");
  auto filter = std::make_unique<FilterOp>(
      std::move(r_scan), Eq(Col(s, "k"), std::move(corr)));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(Sum(Col(s, "v"), "s"));
  auto inner = std::make_unique<ScalarAggOp>(std::move(filter),
                                             std::move(aggs));

  ApplyOp apply(std::make_unique<TableScanOp>(l.get()), std::move(inner));
  ExpectRows(&apply, {{Value::Int(1), Value::Int(0), Value::Int(30)},
                      {Value::Int(2), Value::Int(0), Value::Int(5)},
                      {Value::Int(3), Value::Int(0), Value::Null()}});
}

TEST(ApplyTest, ExistsSemijoin) {
  Schema s({{"k", TypeId::kInt64, "t"}});
  auto l = MakeTable("l", s, {{Value::Int(1)}, {Value::Int(2)}});
  auto r = MakeTable("r", s, {{Value::Int(2)}});

  ExprPtr corr =
      std::make_unique<CorrelatedColumnRefExpr>(0, 0, TypeId::kInt64, "l.k");
  auto inner = std::make_unique<ExistsOp>(std::make_unique<FilterOp>(
      std::make_unique<TableScanOp>(r.get()),
      Eq(Col(s, "k"), std::move(corr))));
  ApplyOp apply(std::make_unique<TableScanOp>(l.get()), std::move(inner));
  // Exists has a null schema: S x {phi} = S.
  EXPECT_EQ(apply.output_schema().num_columns(), 1u);
  ExpectRows(&apply, {{Value::Int(2)}});
}

TEST(ApplyTest, NotExistsAntijoin) {
  Schema s({{"k", TypeId::kInt64, "t"}});
  auto l = MakeTable("l", s, {{Value::Int(1)}, {Value::Int(2)}});
  auto r = MakeTable("r", s, {{Value::Int(2)}});
  ExprPtr corr =
      std::make_unique<CorrelatedColumnRefExpr>(0, 0, TypeId::kInt64, "l.k");
  auto inner = std::make_unique<ExistsOp>(
      std::make_unique<FilterOp>(std::make_unique<TableScanOp>(r.get()),
                                 Eq(Col(s, "k"), std::move(corr))),
      /*negated=*/true);
  ApplyOp apply(std::make_unique<TableScanOp>(l.get()), std::move(inner));
  ExpectRows(&apply, {{Value::Int(1)}});
}

TEST(ApplyTest, UncorrelatedInnerIsCrossProduct) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto l = MakeTable("l", s, {{Value::Int(1)}, {Value::Int(2)}});
  auto r = MakeTable("r", s, {{Value::Int(7)}, {Value::Int(8)}});
  ApplyOp apply(std::make_unique<TableScanOp>(l.get()),
                std::make_unique<TableScanOp>(r.get()));
  EXPECT_EQ(RunPlan(&apply).rows.size(), 4u);
}

}  // namespace
}  // namespace gapply
