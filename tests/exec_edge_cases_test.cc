#include <gtest/gtest.h>

#include <memory>

#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/scan_ops.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RunPlan;

TEST(ExecEdgeCases, GroupScanWithoutBindingFails) {
  GroupScanOp scan("nope", GroupedSchema());
  ExecContext ctx;
  Status st = scan.Open(&ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(ExecEdgeCases, GroupScanArityMismatchDetected) {
  GroupScanOp scan("g", GroupedSchema());
  ExecContext ctx;
  Schema narrow({{"k", TypeId::kInt64, "t"}});
  std::vector<Row> rows;
  ctx.BindGroup("g", &narrow, &rows);
  EXPECT_FALSE(scan.Open(&ctx).ok());
}

TEST(ExecEdgeCases, UnbindWithoutBindIsInternalError) {
  ExecContext ctx;
  EXPECT_FALSE(ctx.UnbindGroup("ghost").ok());
}

TEST(ExecEdgeCases, GroupBindingShadowsByName) {
  ExecContext ctx;
  Schema s = GroupedSchema();
  std::vector<Row> outer_rows{{Value::Int(1), Value::Int(1), Value::Double(1)}};
  std::vector<Row> inner_rows{{Value::Int(2), Value::Int(2), Value::Double(2)}};
  ctx.BindGroup("g", &s, &outer_rows);
  ctx.BindGroup("g", &s, &inner_rows);
  ASSERT_TRUE(ctx.GetGroup("g").ok());
  EXPECT_EQ(ctx.GetGroup("g")->second, &inner_rows);
  ASSERT_TRUE(ctx.UnbindGroup("g").ok());
  EXPECT_EQ(ctx.GetGroup("g")->second, &outer_rows);
}

TEST(ExecEdgeCases, SortOnEmptyInput) {
  auto table = MakeTable("t", GroupedSchema(), {});
  SortOp sort(std::make_unique<TableScanOp>(table.get()), {{0, true}});
  EXPECT_TRUE(RunPlan(&sort).rows.empty());
}

TEST(ExecEdgeCases, UnionAllReopens) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto t1 = MakeTable("a", s, {{Value::Int(1)}});
  auto t2 = MakeTable("b", s, {{Value::Int(2)}});
  std::vector<PhysOpPtr> branches;
  branches.push_back(std::make_unique<TableScanOp>(t1.get()));
  branches.push_back(std::make_unique<TableScanOp>(t2.get()));
  auto u = UnionAllOp::Make(std::move(branches));
  ASSERT_TRUE(u.ok());
  // Run twice through the same operator: Open must fully reset.
  EXPECT_EQ(RunPlan(u->get()).rows.size(), 2u);
  EXPECT_EQ(RunPlan(u->get()).rows.size(), 2u);
}

TEST(ExecEdgeCases, GApplyReopensCleanly) {
  Rng rng(21);
  auto table = MakeTable("t", GroupedSchema(),
                         tutil::RandomGroupedRows(&rng, 60, 6));
  auto outer = std::make_unique<TableScanOp>(table.get());
  const Schema gs = outer->output_schema();
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("c"));
  auto pgq = std::make_unique<ScalarAggOp>(
      std::make_unique<GroupScanOp>("g", gs), std::move(aggs));
  GApplyOp op(std::move(outer), {0}, "g", std::move(pgq));
  QueryResult first = RunPlan(&op);
  QueryResult second = RunPlan(&op);
  EXPECT_TRUE(SameRowMultiset(first.rows, second.rows));
  EXPECT_EQ(first.rows.size(), 6u);
}

TEST(ExecEdgeCases, GApplyAsApplyInnerReExecutesPerOuterRow) {
  // Apply whose inner is a whole GApply over a base table: the GApply must
  // re-open (re-partition) every time without state leakage.
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto l = MakeTable("l", s, {{Value::Int(10)}, {Value::Int(20)}});
  auto r = MakeTable("r", GroupedSchema(),
                     {{Value::Int(1), Value::Int(1), Value::Double(1)},
                      {Value::Int(1), Value::Int(2), Value::Double(2)},
                      {Value::Int(2), Value::Int(3), Value::Double(3)}});

  auto gapply_outer = std::make_unique<TableScanOp>(r.get());
  const Schema gs = gapply_outer->output_schema();
  std::vector<AggregateDesc> aggs;
  aggs.push_back(Sum(Col(gs, "v"), "s"));
  auto inner_gapply = std::make_unique<GApplyOp>(
      std::move(gapply_outer), std::vector<int>{0}, "g",
      std::make_unique<ScalarAggOp>(std::make_unique<GroupScanOp>("g", gs),
                                    std::move(aggs)));
  ApplyOp apply(std::make_unique<TableScanOp>(l.get()),
                std::move(inner_gapply));
  QueryResult result = RunPlan(&apply);
  // 2 outer rows × 2 groups each.
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST(ExecEdgeCases, ScalarSubqueryErrorPropagatesThroughApply) {
  // Inner plan raising a type error mid-stream must surface, not crash.
  Schema s({{"v", TypeId::kInt64, "t"}, {"w", TypeId::kString, "t"}});
  auto l = MakeTable("l", s, {{Value::Int(1), Value::Str("a")}});
  auto r = MakeTable("r", s, {{Value::Int(1), Value::Str("b")}});
  auto inner = std::make_unique<FilterOp>(
      std::make_unique<TableScanOp>(r.get()),
      Binary(BinaryOp::kAdd, Col(s, "w"), Lit(int64_t{1})));  // string + int
  ApplyOp apply(std::make_unique<TableScanOp>(l.get()), std::move(inner));
  ExecContext ctx;
  auto result = ExecuteToVector(&apply, &ctx);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTypeError);
}

TEST(ExecEdgeCases, CachedApplyRecomputesPerOpen) {
  // The uncorrelated-inner cache must be per-execution: mutate nothing, but
  // verify two runs of the same operator agree (cache cleared on Open).
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto l = MakeTable("l", s, {{Value::Int(1)}, {Value::Int(2)}});
  auto r = MakeTable("r", s, {{Value::Int(7)}});
  ApplyOp apply(std::make_unique<TableScanOp>(l.get()),
                std::make_unique<TableScanOp>(r.get()),
                /*cache_uncorrelated_inner=*/true);
  ExecContext ctx;
  auto r1 = ExecuteToVector(&apply, &ctx);
  ASSERT_TRUE(r1.ok());
  const uint64_t invocations_after_first = ctx.counters().apply_invocations;
  EXPECT_EQ(invocations_after_first, 1u);  // inner ran once, not per row
  auto r2 = ExecuteToVector(&apply, &ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(SameRowMultiset(r1->rows, r2->rows));
  EXPECT_EQ(ctx.counters().apply_invocations, 2u);  // once more per Open
}

TEST(ExecEdgeCases, DistinctOnZeroColumnRows) {
  // Exists produces zero-column rows; Distinct over them must collapse to
  // at most one row.
  Schema s({{"v", TypeId::kInt64, "t"}});
  auto t = MakeTable("t", s, {{Value::Int(1)}, {Value::Int(2)}});
  auto exists = std::make_unique<ExistsOp>(
      std::make_unique<TableScanOp>(t.get()));
  DistinctOp distinct(std::move(exists));
  EXPECT_EQ(RunPlan(&distinct).rows.size(), 1u);
}

TEST(ExecEdgeCases, QueryResultToStringTruncates) {
  Schema s({{"v", TypeId::kInt64, "t"}});
  QueryResult r;
  r.schema = s;
  for (int i = 0; i < 10; ++i) r.rows.push_back({Value::Int(i)});
  const std::string text = r.ToString(3);
  EXPECT_NE(text.find("... (7 more)"), std::string::npos);
}

}  // namespace
}  // namespace gapply
