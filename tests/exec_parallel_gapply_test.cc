#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RandomGroupedRows;
using tutil::RunPlan;

// The parallel path promises bit-for-bit the same output as serial —
// SameRowSequence (ordered, element-wise row equality), not just the same
// multiset.

// PGQ shapes used across the determinism tests.
using PgqBuilder = std::function<PhysOpPtr(const Schema&, const std::string&)>;

PhysOpPtr IdentityPgq(const Schema& gs, const std::string& var) {
  return std::make_unique<GroupScanOp>(var, gs);
}

PhysOpPtr AggPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(gs, "v"), "sum_v"));
  aggs.push_back(Avg(Col(gs, "d"), "avg_d"));
  return std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
}

PhysOpPtr FilterPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  return std::make_unique<FilterOp>(
      std::move(scan), Binary(BinaryOp::kGe, Col(gs, "v"), Lit(int64_t{50})));
}

std::unique_ptr<GApplyOp> BuildGApply(const Table* table, PartitionMode mode,
                                      size_t dop, const PgqBuilder& pgq) {
  auto outer = std::make_unique<TableScanOp>(table);
  const Schema gs = outer->output_schema();
  return std::make_unique<GApplyOp>(std::move(outer), std::vector<int>{0},
                                    "g", pgq(gs, "g"), mode, dop);
}

// ---------------------------------------------------------------------------
// Determinism: for every PGQ shape, partition mode, and thread count, the
// parallel output must equal the serial output element-for-element.
// ---------------------------------------------------------------------------

struct DeterminismCase {
  const char* name;
  PgqBuilder pgq;
};

class ParallelDeterminismTest
    : public ::testing::TestWithParam<PartitionMode> {};

TEST_P(ParallelDeterminismTest, BitForBitIdenticalToSerial) {
  const PartitionMode mode = GetParam();
  Rng rng(mode == PartitionMode::kSort ? 11 : 12);
  auto table = MakeTable("t", GroupedSchema(),
                         RandomGroupedRows(&rng, 400, 23, 0.1));
  const std::vector<DeterminismCase> cases = {
      {"identity", IdentityPgq}, {"agg", AggPgq}, {"filter", FilterPgq}};
  for (const DeterminismCase& c : cases) {
    auto serial = BuildGApply(table.get(), mode, 1, c.pgq);
    const QueryResult expected = RunPlan(serial.get());
    for (size_t threads : {1u, 2u, 8u}) {
      auto par = BuildGApply(table.get(), mode, threads, c.pgq);
      const QueryResult got = RunPlan(par.get());
      EXPECT_TRUE(SameRowSequence(got.rows, expected.rows))
          << "pgq=" << c.name << " mode=" << PartitionModeName(mode)
          << " threads=" << threads << "\nserial:\n"
          << expected.ToString() << "\nparallel:\n"
          << got.ToString();
    }
  }
}

TEST_P(ParallelDeterminismTest, MoreWorkersThanGroups) {
  const PartitionMode mode = GetParam();
  Rng rng(13);
  // 3 groups, 16 workers: the cursor must hand each group to at most one
  // worker and idle workers must exit cleanly.
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 30, 3));
  auto serial = BuildGApply(table.get(), mode, 1, AggPgq);
  auto par = BuildGApply(table.get(), mode, 16, AggPgq);
  EXPECT_TRUE(
      SameRowSequence(RunPlan(par.get()).rows, RunPlan(serial.get()).rows));
}

TEST_P(ParallelDeterminismTest, CountersMatchSerialExactly) {
  const PartitionMode mode = GetParam();
  Rng rng(14);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 250, 17));

  ExecContext serial_ctx;
  auto serial = BuildGApply(table.get(), mode, 1, AggPgq);
  ASSERT_TRUE(ExecuteToVector(serial.get(), &serial_ctx).ok());

  for (size_t threads : {2u, 8u}) {
    ExecContext par_ctx;
    auto par = BuildGApply(table.get(), mode, threads, AggPgq);
    ASSERT_TRUE(ExecuteToVector(par.get(), &par_ctx).ok());
    const auto& s = serial_ctx.counters();
    const auto& p = par_ctx.counters();
    EXPECT_EQ(p.pgq_executions, s.pgq_executions) << "threads=" << threads;
    EXPECT_EQ(p.group_rows_scanned, s.group_rows_scanned);
    EXPECT_EQ(p.rows_scanned, s.rows_scanned);
    EXPECT_EQ(p.rows_sorted, s.rows_sorted);
    EXPECT_EQ(p.rows_hash_partitioned, s.rows_hash_partitioned);
    EXPECT_EQ(p.pgq_executions, 17u);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ParallelDeterminismTest,
                         ::testing::Values(PartitionMode::kSort,
                                           PartitionMode::kHash),
                         [](const auto& info) {
                           return std::string(PartitionModeName(info.param));
                         });

// ---------------------------------------------------------------------------
// Nested GApply with the SAME variable name on both levels: the inner
// GApply's binding of "g" must shadow the outer one inside the inner PGQ,
// and that shadowing must survive per-worker context forks on both levels.
// ---------------------------------------------------------------------------

std::unique_ptr<GApplyOp> BuildNestedShadowed(const Table* table,
                                              size_t outer_dop,
                                              size_t inner_dop,
                                              PartitionMode mode) {
  auto outer = std::make_unique<TableScanOp>(table);
  const Schema gs = outer->output_schema();

  // Innermost PGQ: sum(v) over the *inner* binding of "g".
  auto inner_scan = std::make_unique<GroupScanOp>("g", gs);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(Sum(Col(gs, "v"), "s"));
  auto inner_pgq =
      std::make_unique<ScalarAggOp>(std::move(inner_scan), std::move(aggs));

  // Outer PGQ: GApply over the outer binding of "g", re-grouping by b
  // (column 1) and re-binding the same name "g".
  auto outer_pgq = std::make_unique<GApplyOp>(
      std::make_unique<GroupScanOp>("g", gs), std::vector<int>{1}, "g",
      std::move(inner_pgq), mode, inner_dop);

  return std::make_unique<GApplyOp>(std::move(outer), std::vector<int>{0},
                                    "g", std::move(outer_pgq), mode,
                                    outer_dop);
}

TEST(ParallelNestedGApplyTest, ShadowedVariableNamesAllDopCombinations) {
  Schema s({{"a", TypeId::kInt64, "t"},
            {"b", TypeId::kInt64, "t"},
            {"v", TypeId::kInt64, "t"}});
  std::vector<Row> rows;
  Rng rng(21);
  for (int i = 0; i < 120; ++i) {
    rows.push_back({Value::Int(rng.UniformInt(1, 6)),
                    Value::Int(rng.UniformInt(1, 4)),
                    Value::Int(rng.UniformInt(0, 50))});
  }
  auto table = MakeTable("t", s, rows);

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    auto serial = BuildNestedShadowed(table.get(), 1, 1, mode);
    const QueryResult expected = RunPlan(serial.get());
    ASSERT_FALSE(expected.rows.empty());
    for (size_t outer_dop : {1u, 4u}) {
      for (size_t inner_dop : {1u, 4u}) {
        auto par =
            BuildNestedShadowed(table.get(), outer_dop, inner_dop, mode);
        const QueryResult got = RunPlan(par.get());
        EXPECT_TRUE(SameRowSequence(got.rows, expected.rows))
            << "mode=" << PartitionModeName(mode) << " outer=" << outer_dop
            << " inner=" << inner_dop;
      }
    }
  }
}

TEST(ParallelNestedGApplyTest, ShadowedSmallCaseHandChecked) {
  Schema s({{"a", TypeId::kInt64, "t"},
            {"b", TypeId::kInt64, "t"},
            {"v", TypeId::kInt64, "t"}});
  auto table = MakeTable(
      "t", s,
      {{Value::Int(1), Value::Int(1), Value::Int(1)},
       {Value::Int(1), Value::Int(1), Value::Int(2)},
       {Value::Int(1), Value::Int(2), Value::Int(3)},
       {Value::Int(2), Value::Int(1), Value::Int(4)}});
  auto op = BuildNestedShadowed(table.get(), 4, 4, PartitionMode::kSort);
  EXPECT_TRUE(SameRowMultiset(
      RunPlan(op.get()).rows, {{Value::Int(1), Value::Int(1), Value::Int(3)},
                               {Value::Int(1), Value::Int(2), Value::Int(3)},
                               {Value::Int(2), Value::Int(1), Value::Int(4)}}));
}

// ---------------------------------------------------------------------------
// Error propagation from workers.
// ---------------------------------------------------------------------------

// PGQ whose predicate divides by v: any group containing v == 0 fails with
// "division by zero" mid-stream.
PhysOpPtr DivByVPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  return std::make_unique<FilterOp>(
      std::move(scan),
      Binary(BinaryOp::kGt,
             Binary(BinaryOp::kDivide, Lit(int64_t{100}), Col(gs, "v")),
             Lit(int64_t{-1000000})));
}

TEST(ParallelErrorTest, WorkerFailureMatchesSerialError) {
  // 40 groups of 3 rows; group 23 contains a poison row (v = 0).
  std::vector<Row> rows;
  for (int k = 1; k <= 40; ++k) {
    for (int j = 0; j < 3; ++j) {
      const int64_t v = (k == 23 && j == 1) ? 0 : k + j;
      rows.push_back({Value::Int(k), Value::Int(v), Value::Double(k)});
    }
  }
  auto table = MakeTable("t", GroupedSchema(), rows);

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    ExecContext serial_ctx;
    auto serial = BuildGApply(table.get(), mode, 1, DivByVPgq);
    Result<QueryResult> serial_r = ExecuteToVector(serial.get(), &serial_ctx);
    ASSERT_FALSE(serial_r.ok());
    EXPECT_NE(serial_r.status().ToString().find("division by zero"),
              std::string::npos)
        << serial_r.status().ToString();

    for (size_t threads : {2u, 8u}) {
      ExecContext ctx;
      auto par = BuildGApply(table.get(), mode, threads, DivByVPgq);
      Result<QueryResult> r = ExecuteToVector(par.get(), &ctx);
      ASSERT_FALSE(r.ok()) << "threads=" << threads;
      EXPECT_EQ(r.status().ToString(), serial_r.status().ToString())
          << "threads=" << threads
          << " mode=" << PartitionModeName(mode);
    }
  }
}

// When several groups fail, the error reported must be the one serial
// execution would hit first (smallest group index), independent of worker
// scheduling. The two poison groups fail with *different* messages so the
// test can tell which one was picked: v == -1 trips "division by zero" in
// the left conjunct, v == -2 trips "modulo by zero" in the right one.
PhysOpPtr TwoPoisonPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  ExprPtr left = Binary(
      BinaryOp::kGt,
      Binary(BinaryOp::kDivide, Lit(int64_t{100}),
             Binary(BinaryOp::kAdd, Col(gs, "v"), Lit(int64_t{1}))),
      Lit(int64_t{-1000000}));
  ExprPtr right = Binary(
      BinaryOp::kGt,
      Binary(BinaryOp::kModulo, Lit(int64_t{100}),
             Binary(BinaryOp::kAdd, Col(gs, "v"), Lit(int64_t{2}))),
      Lit(int64_t{-1000000}));
  return std::make_unique<FilterOp>(
      std::move(scan),
      Binary(BinaryOp::kAnd, std::move(left), std::move(right)));
}

TEST(ParallelErrorTest, SmallestFailingGroupWinsDeterministically) {
  // Keys appear in ascending order, so group order is the same for sort and
  // hash partitioning. Group 7 divides by zero; group 30 takes modulo by
  // zero. Serial hits group 7 first, so every parallel run must report the
  // division error even if a worker finishes group 30's failure earlier.
  std::vector<Row> rows;
  for (int k = 1; k <= 40; ++k) {
    for (int j = 0; j < 2; ++j) {
      int64_t v = 10 * k + j;
      if (k == 7 && j == 1) v = -1;
      if (k == 30 && j == 0) v = -2;
      rows.push_back({Value::Int(k), Value::Int(v), Value::Double(0)});
    }
  }
  auto table = MakeTable("t", GroupedSchema(), rows);

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    for (size_t threads : {1u, 2u, 8u}) {
      ExecContext ctx;
      auto op = BuildGApply(table.get(), mode, threads, TwoPoisonPgq);
      Result<QueryResult> r = ExecuteToVector(op.get(), &ctx);
      ASSERT_FALSE(r.ok());
      EXPECT_NE(r.status().ToString().find("division by zero"),
                std::string::npos)
          << "threads=" << threads << " mode=" << PartitionModeName(mode)
          << " got: " << r.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Interaction with enclosing operators: a parallel GApply as the inner side
// of Apply must see the enclosing Apply's correlated row from every worker
// (ForkForWorker shares the correlated-row stack).
// ---------------------------------------------------------------------------

TEST(ParallelGApplyTest, UnderCorrelatedApplySeesOuterRow) {
  Schema outer_schema({{"a", TypeId::kInt64, "o"}});
  auto outer_table = MakeTable("o", outer_schema,
                               {{Value::Int(30)}, {Value::Int(70)}});
  Rng rng(31);
  auto grouped = MakeTable("t", GroupedSchema(),
                           RandomGroupedRows(&rng, 200, 11));

  auto build = [&](size_t dop) {
    auto scan = std::make_unique<TableScanOp>(outer_table.get());
    auto inner_scan = std::make_unique<TableScanOp>(grouped.get());
    const Schema gs = inner_scan->output_schema();
    // PGQ: rows of the group whose v >= the enclosing Apply's outer a.
    auto pgq = std::make_unique<FilterOp>(
        std::make_unique<GroupScanOp>("g", gs),
        Binary(BinaryOp::kGe, Col(gs, "v"),
               std::make_unique<CorrelatedColumnRefExpr>(0, 0, TypeId::kInt64,
                                                         "a")));
    auto ga = std::make_unique<GApplyOp>(std::move(inner_scan),
                                         std::vector<int>{0}, "g",
                                         std::move(pgq), PartitionMode::kSort,
                                         dop);
    return std::make_unique<ApplyOp>(std::move(scan), std::move(ga),
                                     /*cache_uncorrelated_inner=*/false);
  };

  auto serial = build(1);
  const QueryResult expected = RunPlan(serial.get());
  ASSERT_FALSE(expected.rows.empty());
  for (size_t dop : {2u, 8u}) {
    auto par = build(dop);
    EXPECT_TRUE(SameRowSequence(RunPlan(par.get()).rows, expected.rows))
        << "dop=" << dop;
  }
}

// ---------------------------------------------------------------------------
// Clone: the parallel path leans on PhysOp::Clone for worker-private plans,
// so the deep copy must be complete and independent.
// ---------------------------------------------------------------------------

TEST(ParallelGApplyTest, CloneIsDeepAndIndependent) {
  Rng rng(41);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 150, 9));
  auto original = BuildGApply(table.get(), PartitionMode::kHash, 4, AggPgq);
  PhysOpPtr clone = original->Clone();

  EXPECT_EQ(original->DebugString(), clone->DebugString());

  // Run the original, then the clone, then the original again: a shallow
  // copy (shared PGQ or shared partition state) would corrupt one of them.
  const QueryResult first = RunPlan(original.get());
  const QueryResult cloned = RunPlan(clone.get());
  const QueryResult second = RunPlan(original.get());
  EXPECT_TRUE(SameRowSequence(cloned.rows, first.rows));
  EXPECT_TRUE(SameRowSequence(second.rows, first.rows));
}

TEST(ParallelGApplyTest, DebugNameShowsParallelism) {
  Rng rng(42);
  auto table = MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 10, 2));
  auto serial = BuildGApply(table.get(), PartitionMode::kSort, 1, AggPgq);
  auto par = BuildGApply(table.get(), PartitionMode::kSort, 6, AggPgq);
  EXPECT_EQ(serial->DebugName().find("parallelism"), std::string::npos);
  EXPECT_NE(par->DebugName().find("parallelism=6"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Counters are mergeable first-class values.
// ---------------------------------------------------------------------------

TEST(CountersTest, MergeFromSumsEveryField) {
  ExecContext::Counters a;
  a.rows_scanned = 1;
  a.group_rows_scanned = 2;
  a.pgq_executions = 3;
  a.apply_invocations = 4;
  a.rows_sorted = 5;
  a.rows_hash_partitioned = 6;
  a.gapply_partition_ns = 7;
  a.gapply_pgq_ns = 8;
  a.exchange_partition_ns = 9;
  a.exchange_merge_ns = 10;
  a.exchange_rows = 11;
  ExecContext::Counters b = a;
  b.rows_scanned = 10;
  a.MergeFrom(b);
  EXPECT_EQ(a.rows_scanned, 11u);
  EXPECT_EQ(a.group_rows_scanned, 4u);
  EXPECT_EQ(a.pgq_executions, 6u);
  EXPECT_EQ(a.apply_invocations, 8u);
  EXPECT_EQ(a.rows_sorted, 10u);
  EXPECT_EQ(a.rows_hash_partitioned, 12u);
  EXPECT_EQ(a.gapply_partition_ns, 14u);
  EXPECT_EQ(a.gapply_pgq_ns, 16u);
  EXPECT_EQ(a.exchange_partition_ns, 18u);
  EXPECT_EQ(a.exchange_merge_ns, 20u);
  EXPECT_EQ(a.exchange_rows, 22u);
}

TEST(CountersTest, ResetZeroesEveryField) {
  ExecContext::Counters a;
  a.rows_scanned = 1;
  a.gapply_pgq_ns = 9;
  a.exchange_rows = 4;
  a.Reset();
  EXPECT_EQ(a.rows_scanned, 0u);
  EXPECT_EQ(a.gapply_pgq_ns, 0u);
  EXPECT_EQ(a.exchange_rows, 0u);
}

TEST(ParallelGApplyTest, PhaseCountersAttributePartitionAndExecution) {
  Rng rng(51);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 300, 20));
  for (size_t dop : {1u, 4u}) {
    ExecContext ctx;
    auto op = BuildGApply(table.get(), PartitionMode::kSort, dop, AggPgq);
    ASSERT_TRUE(ExecuteToVector(op.get(), &ctx).ok());
    EXPECT_GT(ctx.counters().gapply_partition_ns, 0u) << "dop=" << dop;
    EXPECT_GT(ctx.counters().gapply_pgq_ns, 0u) << "dop=" << dop;
  }
}

}  // namespace
}  // namespace gapply
