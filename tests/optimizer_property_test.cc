#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/plan/builder.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

/// Randomized end-to-end property: for generated GApply queries of varying
/// shape, the fully-optimized plan (all rules, cost gate off so even the
/// "risky" rewrites fire) returns exactly the multiset of the unoptimized
/// plan, under both partition modes.
class OptimizerPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    config.seed = 1234;
    ASSERT_TRUE(db_.LoadTpch(config).ok());
  }

  Database db_;
};

// Builds a random per-group query over the partsupp⋈part group schema.
PlanBuilder RandomPgq(Rng* rng, const Schema& gs) {
  const int shape = static_cast<int>(rng->UniformInt(0, 5));
  const double cutoff = rng->UniformDouble(900.0, 1100.0);
  const int64_t size_cut = rng->UniformInt(1, 50);
  switch (shape) {
    case 0:  // filtered identity
      return PlanBuilder::GroupScan("g", gs).Select([&](const Schema& s) {
        return Gt(Col(s, "p_retailprice"), Lit(cutoff));
      });
    case 1:  // scalar aggregates
      return PlanBuilder::GroupScan("g", gs).ScalarAgg(
          {{AggKind::kAvg, "p_retailprice", "a", false},
           {AggKind::kCountStar, "", "c", false}});
    case 2:  // per-group grouping
      return PlanBuilder::GroupScan("g", gs).GroupBy(
          {"p_size"}, {{AggKind::kMin, "p_retailprice", "m", false}});
    case 3: {  // group selection by exists
      auto probe = PlanBuilder::GroupScan("g", gs)
                       .Select([&](const Schema& s) {
                         return Gt(Col(s, "p_retailprice"), Lit(cutoff));
                       })
                       .Exists();
      return PlanBuilder::GroupScan("g", gs).Apply(std::move(probe));
    }
    case 4: {  // group selection by aggregate condition
      auto probe = PlanBuilder::GroupScan("g", gs)
                       .ScalarAgg({{AggKind::kAvg, "p_retailprice", "a",
                                    false}})
                       .Select([&](const Schema& s) {
                         return Gt(Col(s, "a"), Lit(cutoff));
                       })
                       .Exists();
      return PlanBuilder::GroupScan("g", gs).Apply(std::move(probe));
    }
    default: {  // union of a projection and an aggregate branch
      auto detail = PlanBuilder::GroupScan("g", gs)
                        .Select([&](const Schema& s) {
                          return Le(Col(s, "p_size"), Lit(size_cut));
                        })
                        .ProjectExprs(
                            [](const Schema& s) {
                              std::vector<ExprPtr> e;
                              e.push_back(Col(s, "p_retailprice"));
                              e.push_back(Lit(Value::Null()));
                              return e;
                            },
                            {"price", "agg"});
      auto agg = PlanBuilder::GroupScan("g", gs)
                     .Select([&](const Schema& s) {
                       return Le(Col(s, "p_size"), Lit(size_cut));
                     })
                     .ScalarAgg({{AggKind::kMax, "p_retailprice", "m",
                                  false}})
                     .ProjectExprs(
                         [](const Schema& s) {
                           std::vector<ExprPtr> e;
                           e.push_back(Lit(Value::Null()));
                           e.push_back(Col(s, "m"));
                           return e;
                         },
                         {"price", "agg"});
      std::vector<PlanBuilder> branches;
      branches.push_back(std::move(detail));
      branches.push_back(std::move(agg));
      return PlanBuilder::UnionAll(std::move(branches));
    }
  }
}

TEST_P(OptimizerPropertyTest, FullOptimizerPreservesSemantics) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u);

  // Random outer: partsupp alone, ⋈ part, or ⋈ part ⋈ supplier.
  const int outer_shape = static_cast<int>(rng.UniformInt(0, 2));
  PlanBuilder outer = PlanBuilder::Scan(*db_.catalog(), "partsupp");
  if (outer_shape >= 1) {
    outer = std::move(outer).Join(PlanBuilder::Scan(*db_.catalog(), "part"),
                                  {"ps_partkey"}, {"p_partkey"});
  }
  if (outer_shape >= 2) {
    outer = std::move(outer).Join(
        PlanBuilder::Scan(*db_.catalog(), "supplier"), {"ps_suppkey"},
        {"s_suppkey"});
  }
  const Schema gs = outer.schema();
  // PGQ shapes referencing part columns need the part join.
  PlanBuilder pgq =
      outer_shape >= 1
          ? RandomPgq(&rng, gs)
          : PlanBuilder::GroupScan("g", gs).ScalarAgg(
                {{AggKind::kSum, "ps_availqty", "q", false}});

  const std::vector<std::string> gcols =
      rng.Bernoulli(0.5) || outer_shape == 0
          ? std::vector<std::string>{"ps_suppkey"}
          : std::vector<std::string>{"ps_suppkey", "p_size"};

  auto plan_r = std::move(outer).GApply(gcols, "g", std::move(pgq)).Build();
  ASSERT_TRUE(plan_r.ok()) << plan_r.status().ToString();
  LogicalOpPtr plan = std::move(plan_r).value();

  QueryOptions unopt;
  unopt.optimize = false;
  ASSIGN_OR_FAIL(QueryResult expected, db_.Execute(*plan, unopt));

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    QueryOptions opt;
    opt.optimizer.cost_gate = false;  // fire even the risky rewrites
    opt.lowering.force_partition_mode = mode;
    QueryStats stats;
    ASSIGN_OR_FAIL(QueryResult actual, db_.Execute(*plan, opt, &stats));
    EXPECT_TRUE(SameRowMultiset(expected.rows, actual.rows))
        << "seed=" << GetParam() << " mode=" << PartitionModeName(mode)
        << "\nplan:\n"
        << plan->DebugString() << "rows " << expected.rows.size() << " vs "
        << actual.rows.size();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerPropertyTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace gapply
