#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "src/plan/builder.h"
#include "src/xml/tagger.h"
#include "src/xml/view.h"
#include "src/xml/xquery.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

class XmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;  // 10 suppliers, 200 parts, 800 partsupp
    ASSERT_TRUE(db_.LoadTpch(config).ok());
  }

  Database db_;
};

TEST_F(XmlTest, SortedOuterUnionShape) {
  ASSIGN_OR_FAIL(xml::XmlView view,
                 xml::MakeSupplierPartsView(*db_.catalog()));
  ASSIGN_OR_FAIL(xml::SouqPlan souq, xml::BuildSortedOuterUnion(view));
  ASSERT_EQ(souq.nodes.size(), 2u);
  EXPECT_EQ(souq.nodes[0].element_name, "supplier");
  EXPECT_EQ(souq.nodes[1].element_name, "part");
  EXPECT_EQ(souq.nodes[1].parent, 0);
  EXPECT_EQ(souq.num_key_slots, 2);  // supplier key + part key

  QueryOptions options;
  ASSIGN_OR_FAIL(QueryResult result, db_.Execute(*souq.plan, options));
  // 10 supplier rows + 800 part rows.
  EXPECT_EQ(result.rows.size(), 810u);

  // Clustered: every part row follows its supplier row; supplier keys are
  // non-decreasing.
  int64_t current_supplier = -1;
  size_t suppliers_seen = 0;
  for (const Row& row : result.rows) {
    const int64_t node = row[0].int_val();
    const int64_t sk = row[1].int_val();  // depth-0 key slot
    if (node == 0) {
      EXPECT_GT(sk, current_supplier);
      current_supplier = sk;
      ++suppliers_seen;
    } else {
      EXPECT_EQ(sk, current_supplier)
          << "part row not nested under the open supplier";
    }
  }
  EXPECT_EQ(suppliers_seen, 10u);
}

TEST_F(XmlTest, ConstantSpaceTaggerProducesWellFormedXml) {
  ASSIGN_OR_FAIL(xml::XmlView view,
                 xml::MakeSupplierPartsView(*db_.catalog()));
  ASSIGN_OR_FAIL(xml::SouqPlan souq, xml::BuildSortedOuterUnion(view));
  ASSIGN_OR_FAIL(QueryResult result, db_.Execute(*souq.plan, QueryOptions{}));

  std::string doc;
  xml::Tagger tagger(souq, [&](const std::string& s) { doc += s; });
  tagger.Begin(view.root_element);
  for (const Row& row : result.rows) {
    ASSERT_TRUE(tagger.Feed(row).ok());
  }
  ASSERT_TRUE(tagger.Finish().ok());

  // Structural checks: balanced tags, right counts.
  auto count = [&](const std::string& needle) {
    size_t n = 0, pos = 0;
    while ((pos = doc.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("<suppliers>"), 1u);
  EXPECT_EQ(count("</suppliers>"), 1u);
  EXPECT_EQ(count("<supplier>"), 10u);
  EXPECT_EQ(count("</supplier>"), 10u);
  EXPECT_EQ(count("<part>"), 800u);
  EXPECT_EQ(count("</part>"), 800u);
  EXPECT_EQ(count("<p_name>"), 800u);
  EXPECT_EQ(count("<s_name>"), 10u);
  // Nesting: first part appears after first supplier.
  EXPECT_LT(doc.find("<supplier>"), doc.find("<part>"));
}

TEST_F(XmlTest, TaggerEscapesSpecialCharacters) {
  EXPECT_EQ(xml::EscapeXml("a<b>&c"), "a&lt;b&gt;&amp;c");
}

// ---------------------------------------------------------------------------
// XQuery-lite translations.
// ---------------------------------------------------------------------------

xml::FlwrViewBinding SupplierPartsBinding() {
  xml::FlwrViewBinding view;
  view.child_from = "partsupp, part";
  view.child_where = "ps_partkey = p_partkey";
  view.parent_key = "ps_suppkey";
  view.key_table = "partsupp";
  return view;
}

TEST_F(XmlTest, XQueryQ1TranslationsAgree) {
  // Paper Q1: per supplier, (p_name, p_retailprice) pairs + avg price.
  xml::FlwrQuery q1;
  {
    xml::FlwrReturnItem parts;
    parts.kind = xml::FlwrReturnItem::Kind::kChildColumns;
    parts.columns = {"p_name", "p_retailprice"};
    q1.ret.push_back(parts);
    xml::FlwrReturnItem avg;
    avg.kind = xml::FlwrReturnItem::Kind::kAggregate;
    avg.agg = AggKind::kAvg;
    avg.agg_column = "p_retailprice";
    q1.ret.push_back(avg);
  }
  ASSIGN_OR_FAIL(std::string gapply_sql,
                 xml::TranslateToGApplySql(q1, SupplierPartsBinding()));
  ASSIGN_OR_FAIL(std::string baseline_sql,
                 xml::TranslateToOuterUnionSql(q1, SupplierPartsBinding()));

  ASSIGN_OR_FAIL(QueryResult with_gapply, db_.Query(gapply_sql));
  ASSIGN_OR_FAIL(QueryResult baseline, db_.Query(baseline_sql));
  EXPECT_EQ(with_gapply.rows.size(), 810u);
  // Both translations emit (key, p_name, p_retailprice, avg) rows.
  EXPECT_TRUE(SameRowMultiset(with_gapply.rows, baseline.rows))
      << gapply_sql << "\n--vs--\n"
      << baseline_sql;
}

TEST_F(XmlTest, XQueryQ2TranslationsAgree) {
  // Paper Q2: counts above/below the per-supplier average price.
  xml::FlwrQuery q2;
  for (BinaryOp cmp : {BinaryOp::kGe, BinaryOp::kLt}) {
    xml::FlwrReturnItem item;
    item.kind = xml::FlwrReturnItem::Kind::kCountCompareAgg;
    item.agg = AggKind::kAvg;
    item.agg_column = "p_retailprice";
    item.cmp = cmp;
    q2.ret.push_back(item);
  }
  ASSIGN_OR_FAIL(std::string gapply_sql,
                 xml::TranslateToGApplySql(q2, SupplierPartsBinding()));
  ASSIGN_OR_FAIL(std::string baseline_sql,
                 xml::TranslateToOuterUnionSql(q2, SupplierPartsBinding()));
  ASSIGN_OR_FAIL(QueryResult with_gapply, db_.Query(gapply_sql));
  ASSIGN_OR_FAIL(QueryResult baseline, db_.Query(baseline_sql));
  EXPECT_EQ(with_gapply.rows.size(), 20u);
  EXPECT_TRUE(SameRowMultiset(with_gapply.rows, baseline.rows))
      << gapply_sql << "\n--vs--\n"
      << baseline_sql;
}

TEST_F(XmlTest, XQueryGroupSelectionTranslations) {
  // §4.2: suppliers supplying some part priced above a cutoff; return the
  // whole element.
  xml::FlwrQuery q;
  q.where.kind = xml::FlwrCondKind::kSomeChild;
  q.where.column = "p_retailprice";
  q.where.op = BinaryOp::kGt;
  q.where.literal = Value::Double(1099.0);  // only the most expensive part

  ASSIGN_OR_FAIL(std::string gapply_sql,
                 xml::TranslateToGApplySql(q, SupplierPartsBinding()));
  ASSIGN_OR_FAIL(std::string baseline_sql,
                 xml::TranslateToOuterUnionSql(q, SupplierPartsBinding()));
  ASSIGN_OR_FAIL(QueryResult with_gapply, db_.Query(gapply_sql));
  ASSIGN_OR_FAIL(QueryResult baseline, db_.Query(baseline_sql));
  // gapply output carries the key prefix; baseline is the bare rows — the
  // row *counts* must agree (whole qualifying groups).
  EXPECT_EQ(with_gapply.rows.size(), baseline.rows.size());
  EXPECT_GT(with_gapply.rows.size(), 0u);
  EXPECT_LT(with_gapply.rows.size(), 800u);  // predicate filters something
}

TEST_F(XmlTest, XQueryAggregateSelectionTranslations) {
  xml::FlwrQuery q;
  q.where.kind = xml::FlwrCondKind::kAggCompare;
  q.where.agg = AggKind::kAvg;
  q.where.column = "p_retailprice";
  q.where.op = BinaryOp::kGt;
  q.where.literal = Value::Double(1000.0);

  ASSIGN_OR_FAIL(std::string gapply_sql,
                 xml::TranslateToGApplySql(q, SupplierPartsBinding()));
  ASSIGN_OR_FAIL(std::string baseline_sql,
                 xml::TranslateToOuterUnionSql(q, SupplierPartsBinding()));
  ASSIGN_OR_FAIL(QueryResult with_gapply, db_.Query(gapply_sql));
  ASSIGN_OR_FAIL(QueryResult baseline, db_.Query(baseline_sql));
  EXPECT_EQ(with_gapply.rows.size(), baseline.rows.size());
}

TEST_F(XmlTest, TranslatorRejectsUnsupportedCombination) {
  xml::FlwrQuery q;
  q.where.kind = xml::FlwrCondKind::kSomeChild;
  q.where.column = "p_retailprice";
  q.where.literal = Value::Double(1.0);
  xml::FlwrReturnItem item;
  item.kind = xml::FlwrReturnItem::Kind::kChildColumns;
  item.columns = {"p_name"};
  q.ret.push_back(item);
  EXPECT_FALSE(xml::TranslateToGApplySql(q, SupplierPartsBinding()).ok());

  xml::FlwrQuery empty;
  EXPECT_FALSE(xml::TranslateToGApplySql(empty, SupplierPartsBinding()).ok());
}


TEST_F(XmlTest, ThreeLevelViewNestsCorrectly) {
  // nation → supplier → part: exercises multi-depth key slots, ancestor
  // chains, and tagger nesting beyond the paper's two-level Figure 1.
  xml::XmlView view;
  view.root_element = "nations";
  auto nation = std::make_unique<xml::ViewNode>();
  nation->element_name = "nation";
  ASSIGN_OR_FAIL(nation->query, PlanBuilder::Scan(*db_.catalog(), "nation")
                                    .Project({"n_nationkey", "n_name"})
                                    .Build());
  nation->element_keys = {"n_nationkey"};
  nation->content_columns = {"n_name"};

  auto supplier = std::make_unique<xml::ViewNode>();
  supplier->element_name = "supplier";
  ASSIGN_OR_FAIL(supplier->query,
                 PlanBuilder::Scan(*db_.catalog(), "supplier")
                     .Project({"s_suppkey", "s_nationkey", "s_name"})
                     .Build());
  supplier->parent_keys = {"n_nationkey"};
  supplier->child_keys = {"s_nationkey"};
  supplier->element_keys = {"s_suppkey"};
  supplier->content_columns = {"s_name"};

  auto part = std::make_unique<xml::ViewNode>();
  part->element_name = "part";
  ASSIGN_OR_FAIL(
      part->query,
      PlanBuilder::Scan(*db_.catalog(), "partsupp")
          .Join(PlanBuilder::Scan(*db_.catalog(), "part"), {"ps_partkey"},
                {"p_partkey"})
          .Project({"ps_suppkey", "p_partkey", "p_name"})
          .Build());
  part->parent_keys = {"s_suppkey"};
  part->child_keys = {"ps_suppkey"};
  part->element_keys = {"p_partkey"};
  part->content_columns = {"p_name"};

  supplier->children.push_back(std::move(part));
  nation->children.push_back(std::move(supplier));
  view.top = std::move(nation);

  ASSIGN_OR_FAIL(xml::SouqPlan souq, xml::BuildSortedOuterUnion(view));
  ASSERT_EQ(souq.nodes.size(), 3u);
  EXPECT_EQ(souq.num_key_slots, 3);
  EXPECT_EQ(souq.nodes[2].depth, 2);
  EXPECT_EQ(souq.nodes[2].parent, 1);

  ASSIGN_OR_FAIL(QueryResult rows, db_.Execute(*souq.plan, QueryOptions{}));
  // 25 nations + 10 suppliers + 800 parts.
  EXPECT_EQ(rows.rows.size(), 835u);

  std::string doc;
  xml::Tagger tagger(souq, [&](const std::string& t) { doc += t; });
  tagger.Begin(view.root_element);
  for (const Row& row : rows.rows) ASSERT_TRUE(tagger.Feed(row).ok());
  ASSERT_TRUE(tagger.Finish().ok());

  auto count = [&](const std::string& needle) {
    size_t n = 0, pos = 0;
    while ((pos = doc.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count("<nation>"), 25u);
  EXPECT_EQ(count("</nation>"), 25u);
  EXPECT_EQ(count("<supplier>"), 10u);
  EXPECT_EQ(count("<part>"), 800u);
  // Every supplier sits inside a nation, every part inside a supplier.
  EXPECT_LT(doc.find("<nation>"), doc.find("<supplier>"));
  EXPECT_LT(doc.find("<supplier>"), doc.find("<part>"));
}

}  // namespace
}  // namespace gapply
