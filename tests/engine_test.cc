#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/engine/database.h"
#include "src/storage/columnar.h"
#include "tests/differential_util.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    ASSERT_TRUE(db_.LoadTpch(config).ok());
  }

  Database db_;
};

TEST_F(EngineTest, QueryReportsCountersAndRules) {
  QueryStats stats;
  Result<QueryResult> r = db_.Query(
      "select gapply(select avg(p_retailprice) from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g",
      QueryOptions{}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(stats.fired_rules.empty());
  EXPECT_GT(stats.counters.rows_scanned, 0u);
}

TEST_F(EngineTest, OptimizeOffExecutesBoundPlanVerbatim) {
  const std::string sql =
      "select gapply(select count(*) from g) "
      "from partsupp group by ps_suppkey : g";
  QueryOptions off;
  off.optimize = false;
  QueryStats stats;
  Result<QueryResult> r = db_.Query(sql, off, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(stats.fired_rules.empty());
  EXPECT_EQ(stats.counters.pgq_executions, 10u);  // GApply really ran

  // With the optimizer on, GApplyToGroupBy removes the GApply entirely.
  QueryStats on_stats;
  Result<QueryResult> on = db_.Query(sql, QueryOptions{}, &on_stats);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on_stats.counters.pgq_executions, 0u);
  EXPECT_TRUE(SameRowMultiset(r->rows, on->rows));
}

TEST_F(EngineTest, PartitionModePlumbedThroughOptions) {
  const std::string sql =
      "select gapply(select p_name from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g";
  QueryOptions sort_mode;
  sort_mode.lowering.force_partition_mode = PartitionMode::kSort;
  QueryStats stats;
  Result<QueryResult> r = db_.Query(sql, sort_mode, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.counters.rows_sorted, 0u);
  EXPECT_EQ(stats.counters.rows_hash_partitioned, 0u);

  QueryOptions hash_mode;
  hash_mode.lowering.force_partition_mode = PartitionMode::kHash;
  QueryStats hash_stats;
  Result<QueryResult> h = db_.Query(sql, hash_mode, &hash_stats);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(hash_stats.counters.rows_hash_partitioned, 0u);
  EXPECT_TRUE(SameRowMultiset(r->rows, h->rows));
}

TEST_F(EngineTest, RuleTogglesIsolateIndividualRules) {
  const std::string sql =
      "select gapply(select avg(p_retailprice) from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g";
  QueryOptions only_projection;
  only_projection.optimizer = Optimizer::Options::AllDisabled();
  only_projection.optimizer.projection_before_gapply = true;
  QueryStats stats;
  ASSERT_TRUE(db_.Query(sql, only_projection, &stats).ok());
  ASSERT_EQ(stats.fired_rules.size(), 1u);
  EXPECT_EQ(stats.fired_rules[0], "ProjectionBeforeGApply");
}

TEST_F(EngineTest, ErrorsPropagateWithContext) {
  Result<QueryResult> parse_err = db_.Query("selec nonsense");
  ASSERT_FALSE(parse_err.ok());
  Result<QueryResult> bind_err = db_.Query("select zzz from part");
  ASSERT_FALSE(bind_err.ok());
  EXPECT_EQ(bind_err.status().code(), StatusCode::kNotFound);
  // Runtime type error: adding a string column to an int.
  Result<QueryResult> run_err =
      db_.Query("select p_name + 1 from part");
  ASSERT_FALSE(run_err.ok());
  EXPECT_EQ(run_err.status().code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, AnalyzeRefreshesStats) {
  // Add a table after the initial ANALYZE; stats appear after re-analyze.
  Schema schema({{"v", TypeId::kInt64, "extra"}});
  auto table = std::make_unique<Table>("extra", schema);
  ASSERT_TRUE(table->Append({Value::Int(1)}).ok());
  ASSERT_TRUE(db_.catalog()->AddTable(std::move(table)).ok());
  EXPECT_EQ(db_.stats()->Get("extra"), nullptr);
  ASSERT_TRUE(db_.Analyze().ok());
  ASSERT_NE(db_.stats()->Get("extra"), nullptr);
  EXPECT_EQ(db_.stats()->Get("extra")->row_count, 1);
}

TEST_F(EngineTest, RepeatedQueriesAreIndependent) {
  const std::string sql = "select count(*) from partsupp";
  for (int i = 0; i < 3; ++i) {
    Result<QueryResult> r = db_.Query(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_val(), 800);
  }
}

TEST_F(EngineTest, SetParallelismPersistsForTheSession) {
  EXPECT_EQ(db_.default_gapply_parallelism(), 1u);
  Result<QueryResult> set_r = db_.Query("set parallelism = 4");
  ASSERT_TRUE(set_r.ok()) << set_r.status().ToString();
  EXPECT_TRUE(set_r->rows.empty());  // SET produces no rows
  EXPECT_EQ(db_.default_gapply_parallelism(), 4u);

  // The session default reaches GApply: identical results to a query that
  // explicitly forces serial execution, and the plan advertises the DOP.
  const std::string sql =
      "select gapply(select p_name from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g";
  QueryStats par_stats;
  Result<QueryResult> par = db_.Query(sql, QueryOptions{}, &par_stats);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  QueryOptions serial;
  serial.lowering.gapply_parallelism = 1;  // overrides the session default
  QueryStats serial_stats;
  Result<QueryResult> ser = db_.Query(sql, serial, &serial_stats);
  ASSERT_TRUE(ser.ok());
  ASSERT_EQ(par->rows.size(), ser->rows.size());
  for (size_t i = 0; i < par->rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(par->rows[i], ser->rows[i])) << "row " << i;
  }
  EXPECT_EQ(par_stats.counters.pgq_executions,
            serial_stats.counters.pgq_executions);

  Result<std::string> explain = db_.Explain(sql);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("parallelism=4"), std::string::npos) << *explain;
}

TEST_F(EngineTest, SetParallelismZeroMeansAllHardwareThreads) {
  ASSERT_TRUE(db_.Query("set parallelism = 0").ok());
  EXPECT_GE(db_.default_gapply_parallelism(), 1u);
}

TEST_F(EngineTest, SetStorageSwitchesScanPathAndKeepsResults) {
  const std::string sql =
      "select ps_partkey, ps_availqty from partsupp where ps_availqty > 100";
  // Columnar (the default): the WHERE is pushed into the scan, so the
  // physical plan shows the pushdown and loses the Filter.
  ASSIGN_OR_FAIL(std::string columnar_plan, db_.Explain(sql));
  EXPECT_NE(columnar_plan.find("pushdown: ps_availqty > 100"),
            std::string::npos)
      << columnar_plan;
  ASSIGN_OR_FAIL(QueryResult columnar, db_.Query(sql));

  ASSERT_TRUE(db_.Query("set storage = row").ok());
  EXPECT_FALSE(db_.default_columnar_storage());
  ASSIGN_OR_FAIL(std::string row_plan, db_.Explain(sql));
  EXPECT_EQ(row_plan.find("pushdown"), std::string::npos) << row_plan;
  ASSIGN_OR_FAIL(QueryResult row, db_.Query(sql));
  tutil::ExpectSameSequence(row.rows, columnar.rows, "storage=row");

  ASSERT_TRUE(db_.Query("set storage = columnar").ok());
  EXPECT_TRUE(db_.default_columnar_storage());
}

TEST_F(EngineTest, SetStorageRejectsBadValues) {
  for (const char* bad : {"set storage = 1", "set storage = fast",
                          "set storage = on"}) {
    Result<QueryResult> r = db_.Query(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << bad;
  }
  EXPECT_TRUE(db_.default_columnar_storage());  // unchanged by failures
  // Word values are rejected by the numeric knobs.
  Result<QueryResult> r = db_.Query("set parallelism = columnar");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, PushdownAccumulatesAcrossStackedSelects) {
  // Fuzzer regression (seed 147): with the optimizer off, `a AND b` binds
  // as two stacked Selects over the scan; lowering absorbs them one at a
  // time, and the second PushPredicates call must add to — not replace —
  // the conjuncts the first one pushed. The row (v0=13) violates the first
  // conjunct, so a dropped conjunct shows up as count 1 instead of 0.
  auto t0 = std::make_unique<Table>(
      "t0", Schema({{"v0", TypeId::kInt64, "t0"},
                    {"s1", TypeId::kString, "t0"}}));
  ASSERT_TRUE(t0->Append({Value::Int(13), Value::Str("vdkou")}).ok());
  ASSERT_TRUE(db_.catalog()->AddTable(std::move(t0)).ok());

  const std::string sql =
      "select count(s1) from t0 where v0 <= 0 and s1 <> 'nzocmy'";
  QueryOptions off;
  off.optimize = false;
  ASSIGN_OR_FAIL(QueryResult unopt, db_.Query(sql, off));
  EXPECT_EQ(unopt.rows[0][0].int_val(), 0);
  ASSIGN_OR_FAIL(QueryResult opt, db_.Query(sql));
  EXPECT_EQ(opt.rows[0][0].int_val(), 0);
}

TEST_F(EngineTest, ExplainAnalyzeSurfacesMorselCounters) {
  // A clustered two-morsel table: `k < 10` lives entirely in morsel 0, so
  // the scan must prune morsel 1 and say so in the report.
  auto big = std::make_unique<Table>(
      "big", Schema({{"k", TypeId::kInt64, "big"}}));
  for (size_t i = 0; i < 2 * ColumnarTable::kMorselRows; ++i) {
    ASSERT_TRUE(big->Append({Value::Int(static_cast<int64_t>(i))}).ok());
  }
  ASSERT_TRUE(db_.catalog()->AddTable(std::move(big)).ok());

  ASSIGN_OR_FAIL(std::string report,
                 db_.ExplainAnalyze("select k from big where k < 10"));
  EXPECT_NE(report.find("morsels_pruned=1"), std::string::npos) << report;
  EXPECT_NE(report.find("morsels_scanned=1"), std::string::npos) << report;

  ASSIGN_OR_FAIL(
      JsonValue json,
      db_.ExplainAnalyzeJson("select k from big where k < 10"));
  const std::string dump = json.Dump(2);
  EXPECT_NE(dump.find("morsels_pruned"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"result_rows\": 10"), std::string::npos) << dump;
}

TEST_F(EngineTest, SetStatementErrors) {
  // Unknown option.
  Result<QueryResult> unknown = db_.Query("set no_such_option = 1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // Negative DOP.
  Result<QueryResult> negative = db_.Query("set parallelism = -2");
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
  // Malformed: missing '='.
  Result<QueryResult> malformed = db_.Query("set parallelism 4");
  ASSERT_FALSE(malformed.ok());
  // Failed SETs leave the session default untouched.
  EXPECT_EQ(db_.default_gapply_parallelism(), 1u);
}

}  // namespace
}  // namespace gapply
