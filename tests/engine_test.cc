#include <gtest/gtest.h>

#include "src/engine/database.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    ASSERT_TRUE(db_.LoadTpch(config).ok());
  }

  Database db_;
};

TEST_F(EngineTest, QueryReportsCountersAndRules) {
  QueryStats stats;
  Result<QueryResult> r = db_.Query(
      "select gapply(select avg(p_retailprice) from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g",
      QueryOptions{}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(stats.fired_rules.empty());
  EXPECT_GT(stats.counters.rows_scanned, 0u);
}

TEST_F(EngineTest, OptimizeOffExecutesBoundPlanVerbatim) {
  const std::string sql =
      "select gapply(select count(*) from g) "
      "from partsupp group by ps_suppkey : g";
  QueryOptions off;
  off.optimize = false;
  QueryStats stats;
  Result<QueryResult> r = db_.Query(sql, off, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(stats.fired_rules.empty());
  EXPECT_EQ(stats.counters.pgq_executions, 10u);  // GApply really ran

  // With the optimizer on, GApplyToGroupBy removes the GApply entirely.
  QueryStats on_stats;
  Result<QueryResult> on = db_.Query(sql, QueryOptions{}, &on_stats);
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on_stats.counters.pgq_executions, 0u);
  EXPECT_TRUE(SameRowMultiset(r->rows, on->rows));
}

TEST_F(EngineTest, PartitionModePlumbedThroughOptions) {
  const std::string sql =
      "select gapply(select p_name from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g";
  QueryOptions sort_mode;
  sort_mode.lowering.force_partition_mode = PartitionMode::kSort;
  QueryStats stats;
  Result<QueryResult> r = db_.Query(sql, sort_mode, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(stats.counters.rows_sorted, 0u);
  EXPECT_EQ(stats.counters.rows_hash_partitioned, 0u);

  QueryOptions hash_mode;
  hash_mode.lowering.force_partition_mode = PartitionMode::kHash;
  QueryStats hash_stats;
  Result<QueryResult> h = db_.Query(sql, hash_mode, &hash_stats);
  ASSERT_TRUE(h.ok());
  EXPECT_GT(hash_stats.counters.rows_hash_partitioned, 0u);
  EXPECT_TRUE(SameRowMultiset(r->rows, h->rows));
}

TEST_F(EngineTest, RuleTogglesIsolateIndividualRules) {
  const std::string sql =
      "select gapply(select avg(p_retailprice) from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g";
  QueryOptions only_projection;
  only_projection.optimizer = Optimizer::Options::AllDisabled();
  only_projection.optimizer.projection_before_gapply = true;
  QueryStats stats;
  ASSERT_TRUE(db_.Query(sql, only_projection, &stats).ok());
  ASSERT_EQ(stats.fired_rules.size(), 1u);
  EXPECT_EQ(stats.fired_rules[0], "ProjectionBeforeGApply");
}

TEST_F(EngineTest, ErrorsPropagateWithContext) {
  Result<QueryResult> parse_err = db_.Query("selec nonsense");
  ASSERT_FALSE(parse_err.ok());
  Result<QueryResult> bind_err = db_.Query("select zzz from part");
  ASSERT_FALSE(bind_err.ok());
  EXPECT_EQ(bind_err.status().code(), StatusCode::kNotFound);
  // Runtime type error: adding a string column to an int.
  Result<QueryResult> run_err =
      db_.Query("select p_name + 1 from part");
  ASSERT_FALSE(run_err.ok());
  EXPECT_EQ(run_err.status().code(), StatusCode::kTypeError);
}

TEST_F(EngineTest, AnalyzeRefreshesStats) {
  // Add a table after the initial ANALYZE; stats appear after re-analyze.
  Schema schema({{"v", TypeId::kInt64, "extra"}});
  auto table = std::make_unique<Table>("extra", schema);
  ASSERT_TRUE(table->Append({Value::Int(1)}).ok());
  ASSERT_TRUE(db_.catalog()->AddTable(std::move(table)).ok());
  EXPECT_EQ(db_.stats()->Get("extra"), nullptr);
  ASSERT_TRUE(db_.Analyze().ok());
  ASSERT_NE(db_.stats()->Get("extra"), nullptr);
  EXPECT_EQ(db_.stats()->Get("extra")->row_count, 1);
}

TEST_F(EngineTest, RepeatedQueriesAreIndependent) {
  const std::string sql = "select count(*) from partsupp";
  for (int i = 0; i < 3; ++i) {
    Result<QueryResult> r = db_.Query(sql);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0].int_val(), 800);
  }
}

TEST_F(EngineTest, SetParallelismPersistsForTheSession) {
  EXPECT_EQ(db_.default_gapply_parallelism(), 1u);
  Result<QueryResult> set_r = db_.Query("set parallelism = 4");
  ASSERT_TRUE(set_r.ok()) << set_r.status().ToString();
  EXPECT_TRUE(set_r->rows.empty());  // SET produces no rows
  EXPECT_EQ(db_.default_gapply_parallelism(), 4u);

  // The session default reaches GApply: identical results to a query that
  // explicitly forces serial execution, and the plan advertises the DOP.
  const std::string sql =
      "select gapply(select p_name from g) "
      "from partsupp, part where ps_partkey = p_partkey "
      "group by ps_suppkey : g";
  QueryStats par_stats;
  Result<QueryResult> par = db_.Query(sql, QueryOptions{}, &par_stats);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  QueryOptions serial;
  serial.lowering.gapply_parallelism = 1;  // overrides the session default
  QueryStats serial_stats;
  Result<QueryResult> ser = db_.Query(sql, serial, &serial_stats);
  ASSERT_TRUE(ser.ok());
  ASSERT_EQ(par->rows.size(), ser->rows.size());
  for (size_t i = 0; i < par->rows.size(); ++i) {
    EXPECT_TRUE(RowsEqual(par->rows[i], ser->rows[i])) << "row " << i;
  }
  EXPECT_EQ(par_stats.counters.pgq_executions,
            serial_stats.counters.pgq_executions);

  Result<std::string> explain = db_.Explain(sql);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("parallelism=4"), std::string::npos) << *explain;
}

TEST_F(EngineTest, SetParallelismZeroMeansAllHardwareThreads) {
  ASSERT_TRUE(db_.Query("set parallelism = 0").ok());
  EXPECT_GE(db_.default_gapply_parallelism(), 1u);
}

TEST_F(EngineTest, SetStatementErrors) {
  // Unknown option.
  Result<QueryResult> unknown = db_.Query("set no_such_option = 1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // Negative DOP.
  Result<QueryResult> negative = db_.Query("set parallelism = -2");
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
  // Malformed: missing '='.
  Result<QueryResult> malformed = db_.Query("set parallelism 4");
  ASSERT_FALSE(malformed.ok());
  // Failed SETs leave the session default untouched.
  EXPECT_EQ(db_.default_gapply_parallelism(), 1u);
}

}  // namespace
}  // namespace gapply
