// Round-trip tests for the minimal JSON model, including the shared
// per-operator profile schema: the JSON a profiled execution emits must
// parse back with every field intact — the same schema the benches write
// into BENCH_*.json and tools/bench_check walks.

#include <string>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/exec/agg_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/profile.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

TEST(JsonTest, ScalarsRoundTrip) {
  ASSIGN_OR_FAIL(JsonValue null_v, ParseJson("null"));
  EXPECT_TRUE(null_v.is_null());
  ASSIGN_OR_FAIL(JsonValue true_v, ParseJson("true"));
  EXPECT_TRUE(true_v.bool_value());
  ASSIGN_OR_FAIL(JsonValue int_v, ParseJson("-42"));
  EXPECT_EQ(int_v.type(), JsonValue::Type::kInt);
  EXPECT_EQ(int_v.int_value(), -42);
  ASSIGN_OR_FAIL(JsonValue dbl_v, ParseJson("3.5e2"));
  EXPECT_EQ(dbl_v.type(), JsonValue::Type::kDouble);
  EXPECT_DOUBLE_EQ(dbl_v.number_value(), 350.0);
  ASSIGN_OR_FAIL(JsonValue str_v, ParseJson("\"a\\\"b\\n\""));
  EXPECT_EQ(str_v.string_value(), "a\"b\n");
}

TEST(JsonTest, IntsSurviveExactly) {
  // Counters are int64; they must not detour through double.
  const int64_t big = (int64_t{1} << 53) + 1;
  JsonValue v = JsonValue::Int(big);
  ASSIGN_OR_FAIL(JsonValue back, ParseJson(v.Dump()));
  EXPECT_EQ(back.int_value(), big);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Int(1));
  obj.Set("alpha", JsonValue::Int(2));
  obj.Set("zebra", JsonValue::Int(3));  // overwrite keeps first position
  EXPECT_EQ(obj.Dump(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(JsonTest, NestedDocumentRoundTrips) {
  const std::string text =
      "{\"a\": [1, 2.5, \"x\", null, true], \"b\": {\"c\": []}}";
  ASSIGN_OR_FAIL(JsonValue v, ParseJson(text));
  ASSIGN_OR_FAIL(JsonValue again, ParseJson(v.Dump()));
  EXPECT_EQ(v.Dump(), again.Dump());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->items().size(), 5u);
}

TEST(JsonTest, PrettyDumpParsesBack) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue::Str("x"));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Int(2));
  obj.Set("values", std::move(arr));
  ASSIGN_OR_FAIL(JsonValue back, ParseJson(obj.Dump(2)));
  EXPECT_EQ(back.Dump(), obj.Dump());
}

TEST(JsonTest, EscapeHandlesControlCharacters) {
  const std::string escaped = JsonEscape("tab\there \"quote\" back\\slash");
  ASSIGN_OR_FAIL(JsonValue v, ParseJson("\"" + escaped + "\""));
  EXPECT_EQ(v.string_value(), "tab\there \"quote\" back\\slash");
}

TEST(JsonTest, ParseErrorsAreStatuses) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("nope").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
}

// The shared per-operator schema: profile -> JSON -> parse -> same fields.
TEST(JsonTest, ProfileSchemaRoundTrips) {
  auto table = tutil::MakeTable(
      "t", tutil::GroupedSchema(),
      {{Value::Int(1), Value::Int(10), Value::Double(1.0)},
       {Value::Int(2), Value::Int(80), Value::Double(2.0)}});
  auto scan = std::make_unique<TableScanOp>(table.get());
  const Schema s = scan->output_schema();
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), Gt(Col(s, "v"), Lit(int64_t{50})));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  auto root =
      std::make_unique<ScalarAggOp>(std::move(filter), std::move(aggs));

  ExecContext ctx;
  ctx.set_profiling(true);
  Result<QueryResult> r = ExecuteToVector(root.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const JsonValue emitted = CollectProfileJson(*root);
  ASSIGN_OR_FAIL(JsonValue parsed, ParseJson(emitted.Dump(2)));
  EXPECT_EQ(parsed.Dump(), emitted.Dump());

  // Walk the parsed tree: every node carries the full schema.
  const JsonValue* node = &parsed;
  int depth = 0;
  while (node != nullptr) {
    for (const char* key :
         {"op", "dop", "rows_out", "rows_in", "batches_out", "opens",
          "next_calls", "batch_calls", "workers_merged", "total_ns",
          "self_ns", "open_ns", "next_ns", "close_ns", "phases",
          "children"}) {
      EXPECT_NE(node->Find(key), nullptr)
          << "missing " << key << " at depth " << depth;
    }
    const JsonValue* children = node->Find("children");
    ASSERT_NE(children, nullptr);
    node = children->items().empty() ? nullptr : &children->items()[0];
    ++depth;
  }
  EXPECT_EQ(depth, 3);  // ScalarAgg -> Filter -> TableScan

  // And the row counts survived the trip.
  EXPECT_EQ(parsed.Find("rows_out")->int_value(), 1);
  EXPECT_EQ(parsed.Find("rows_in")->int_value(), 1);
}

}  // namespace
}  // namespace gapply
