#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/storage/catalog.h"
#include "src/storage/columnar.h"
#include "src/storage/schema.h"
#include "src/storage/table.h"

namespace gapply {
namespace {

Schema TwoColSchema() {
  return Schema({{"id", TypeId::kInt64, "t"}, {"name", TypeId::kString, "t"}});
}

TEST(SchemaTest, ResolveByNameAndQualifier) {
  Schema s({{"id", TypeId::kInt64, "a"},
            {"id", TypeId::kInt64, "b"},
            {"x", TypeId::kDouble, "a"}});
  EXPECT_EQ(*s.Resolve("x"), 2);
  EXPECT_EQ(*s.Resolve("id", "a"), 0);
  EXPECT_EQ(*s.Resolve("id", "b"), 1);
  // Unqualified "id" is ambiguous.
  Result<int> r = s.Resolve("id");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Missing column.
  EXPECT_EQ(s.Resolve("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ResolveIsCaseInsensitive) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.Resolve("ID"), 0);
  EXPECT_EQ(*s.Resolve("Name", "T"), 1);
}

TEST(SchemaTest, ConcatAndRequalify) {
  Schema left({{"a", TypeId::kInt64, "l"}});
  Schema right({{"b", TypeId::kString, "r"}});
  Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.num_columns(), 2u);
  EXPECT_EQ(joined.column(0).name, "a");
  EXPECT_EQ(joined.column(1).qualifier, "r");

  Schema aliased = joined.WithQualifier("sub");
  EXPECT_EQ(aliased.column(0).qualifier, "sub");
  EXPECT_EQ(aliased.column(1).qualifier, "sub");
}

TEST(SchemaTest, EquivalentToIgnoresQualifiers) {
  Schema a({{"x", TypeId::kInt64, "t1"}});
  Schema b({{"X", TypeId::kInt64, "t2"}});
  Schema c({{"x", TypeId::kDouble, "t1"}});
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_FALSE(a.EquivalentTo(c));
}

TEST(TableTest, AppendChecksArity) {
  Table t("t", TwoColSchema());
  EXPECT_TRUE(t.Append({Value::Int(1), Value::Str("a")}).ok());
  EXPECT_FALSE(t.Append({Value::Int(1)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, AppendChecksTypesAndWidensInts) {
  Table t("t", Schema({{"v", TypeId::kDouble, "t"}}));
  EXPECT_TRUE(t.Append({Value::Int(3)}).ok());
  EXPECT_EQ(t.rows()[0][0].type(), TypeId::kDouble);
  EXPECT_TRUE(t.Append({Value::Null()}).ok());
  EXPECT_FALSE(t.Append({Value::Str("x")}).ok());
}

TEST(TableTest, AppendAllIsAtomic) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value::Int(1), Value::Str("a")}).ok());

  // A bad row mid-batch must leave the table exactly as it was: no partial
  // commit into either the row store or the columnar view.
  std::vector<Row> batch;
  batch.push_back({Value::Int(2), Value::Str("b")});
  batch.push_back({Value::Str("oops"), Value::Str("c")});  // type error
  batch.push_back({Value::Int(3), Value::Str("d")});
  EXPECT_FALSE(t.AppendAll(std::move(batch)).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows().size(), 1u);
  EXPECT_EQ(t.columnar().num_rows(), 1u);

  // A fully valid batch commits every row.
  std::vector<Row> good;
  good.push_back({Value::Int(2), Value::Str("b")});
  good.push_back({Value::Null(), Value::Null()});
  EXPECT_TRUE(t.AppendAll(std::move(good)).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.columnar().num_rows(), 3u);
}

TEST(TableTest, AppendAllWidensIntsLikeAppend) {
  Table t("t", Schema({{"v", TypeId::kDouble, "t"}}));
  std::vector<Row> batch;
  batch.push_back({Value::Int(3)});
  batch.push_back({Value::Double(0.5)});
  ASSERT_TRUE(t.AppendAll(std::move(batch)).ok());
  EXPECT_EQ(t.rows()[0][0].type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(t.columnar().column(0).doubles()[0], 3.0);
}

TEST(ColumnarTest, MirrorsRowStoreValueForValue) {
  Table t("t", TwoColSchema());
  ASSERT_TRUE(t.Append({Value::Int(7), Value::Str("x")}).ok());
  ASSERT_TRUE(t.Append({Value::Null(), Value::Str("y")}).ok());
  ASSERT_TRUE(t.Append({Value::Int(-2), Value::Null()}).ok());
  const ColumnarTable& ct = t.columnar();
  ASSERT_EQ(ct.num_rows(), 3u);
  for (size_t i = 0; i < ct.num_rows(); ++i) {
    Row row;
    ct.MaterializeRow(i, &row);
    EXPECT_TRUE(RowsEqual(row, t.rows()[i])) << "row " << i;
  }
}

TEST(ColumnarTest, DictionaryEncodesStrings) {
  Table t("t", Schema({{"s", TypeId::kString, "t"}}));
  const char* words[] = {"red", "green", "red", "blue", "green", "red"};
  for (const char* w : words) {
    ASSERT_TRUE(t.Append({Value::Str(w)}).ok());
  }
  const ColumnVector& cv = t.columnar().column(0);
  EXPECT_EQ(cv.dict_size(), 3u);  // exact NDV: red, green, blue
  // Equal strings share a code; distinct strings get distinct codes.
  EXPECT_EQ(cv.codes()[0], cv.codes()[2]);
  EXPECT_EQ(cv.codes()[0], cv.codes()[5]);
  EXPECT_NE(cv.codes()[0], cv.codes()[1]);
  EXPECT_NE(cv.codes()[1], cv.codes()[3]);
  // FindCode round-trips present values and rejects absent ones.
  const int64_t red = cv.FindCode("red");
  ASSERT_GE(red, 0);
  EXPECT_EQ(static_cast<uint32_t>(red), cv.codes()[0]);
  EXPECT_EQ(cv.FindCode("mauve"), -1);
}

TEST(ColumnarTest, ZoneMapsTrackMinMaxAndNullsPerMorsel) {
  Table t("t", Schema({{"v", TypeId::kInt64, "t"}}));
  // Two full morsels plus a partial third, with a known per-morsel layout:
  // morsel 0 holds [0, kMorselRows), morsel 1 is all NULL, morsel 2 holds
  // descending negatives.
  const size_t m = ColumnarTable::kMorselRows;
  for (size_t i = 0; i < m; ++i) {
    ASSERT_TRUE(t.Append({Value::Int(static_cast<int64_t>(i))}).ok());
  }
  for (size_t i = 0; i < m; ++i) {
    ASSERT_TRUE(t.Append({Value::Null()}).ok());
  }
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Append({Value::Int(-i)}).ok());
  }
  const ColumnarTable& ct = t.columnar();
  ASSERT_EQ(ct.num_morsels(), 3u);

  const ZoneMap& z0 = ct.zone(0, 0);
  EXPECT_EQ(z0.min.int_val(), 0);
  EXPECT_EQ(z0.max.int_val(), static_cast<int64_t>(m) - 1);
  EXPECT_EQ(z0.null_count, 0u);

  const ZoneMap& z1 = ct.zone(0, 1);
  EXPECT_TRUE(z1.min.is_null());  // no non-NULL values in the morsel
  EXPECT_EQ(z1.null_count, m);

  const ZoneMap& z2 = ct.zone(0, 2);
  EXPECT_EQ(z2.min.int_val(), -99);
  EXPECT_EQ(z2.max.int_val(), 0);
}

TEST(ColumnarTest, CanPruneMorselRefutesOutOfRangePredicates) {
  Table t("t", Schema({{"v", TypeId::kInt64, "t"}}));
  const size_t m = ColumnarTable::kMorselRows;
  // Morsel 0: values in [0, 100]; morsel 1: all NULL.
  for (size_t i = 0; i < m; ++i) {
    ASSERT_TRUE(t.Append({Value::Int(static_cast<int64_t>(i % 101))}).ok());
  }
  for (size_t i = 0; i < m; ++i) {
    ASSERT_TRUE(t.Append({Value::Null()}).ok());
  }
  const ColumnarTable& ct = t.columnar();
  using value_ops::CmpOp;
  auto pred = [](CmpOp op, int64_t lit) {
    return std::vector<ScanPredicate>{{0, op, Value::Int(lit)}};
  };
  // Refuted: literal outside [0, 100].
  EXPECT_TRUE(ct.CanPruneMorsel(0, pred(CmpOp::kEq, 500)));
  EXPECT_TRUE(ct.CanPruneMorsel(0, pred(CmpOp::kGt, 100)));
  EXPECT_TRUE(ct.CanPruneMorsel(0, pred(CmpOp::kLt, 0)));
  EXPECT_TRUE(ct.CanPruneMorsel(0, pred(CmpOp::kLe, -1)));
  EXPECT_TRUE(ct.CanPruneMorsel(0, pred(CmpOp::kGe, 101)));
  // Not refuted: literal inside the range (or kNe with a spread).
  EXPECT_FALSE(ct.CanPruneMorsel(0, pred(CmpOp::kEq, 50)));
  EXPECT_FALSE(ct.CanPruneMorsel(0, pred(CmpOp::kGe, 100)));
  EXPECT_FALSE(ct.CanPruneMorsel(0, pred(CmpOp::kNe, 50)));
  // An all-NULL morsel never satisfies any comparison (SQL 3VL): prunable
  // under every predicate.
  EXPECT_TRUE(ct.CanPruneMorsel(1, pred(CmpOp::kEq, 0)));
  EXPECT_TRUE(ct.CanPruneMorsel(1, pred(CmpOp::kNe, 0)));
  // No predicates -> nothing to refute.
  EXPECT_FALSE(ct.CanPruneMorsel(0, {}));
}

TEST(ColumnarTest, CanPruneConstantMorselWithNe) {
  Table t("t", Schema({{"v", TypeId::kInt64, "t"}}));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Append({Value::Int(42)}).ok());
  }
  const ColumnarTable& ct = t.columnar();
  std::vector<ScanPredicate> ne42 = {
      {0, value_ops::CmpOp::kNe, Value::Int(42)}};
  EXPECT_TRUE(ct.CanPruneMorsel(0, ne42));
  std::vector<ScanPredicate> ne41 = {
      {0, value_ops::CmpOp::kNe, Value::Int(41)}};
  EXPECT_FALSE(ct.CanPruneMorsel(0, ne41));
}

TEST(ColumnarTest, FilterRangeAgreesWithRowMatches) {
  Table t("t", Schema({{"v", TypeId::kInt64, "t"},
                       {"d", TypeId::kDouble, "t"},
                       {"s", TypeId::kString, "t"}}));
  const char* words[] = {"a", "b", "c"};
  for (int i = 0; i < 300; ++i) {
    Row row;
    row.push_back(i % 7 == 0 ? Value::Null() : Value::Int(i % 50));
    row.push_back(Value::Double(i * 0.5));
    row.push_back(i % 11 == 0 ? Value::Null() : Value::Str(words[i % 3]));
    ASSERT_TRUE(t.Append(std::move(row)).ok());
  }
  const ColumnarTable& ct = t.columnar();
  using value_ops::CmpOp;
  const std::vector<std::vector<ScanPredicate>> pred_sets = {
      {{0, CmpOp::kGe, Value::Int(10)}},
      {{0, CmpOp::kGe, Value::Int(10)}, {0, CmpOp::kLt, Value::Int(30)}},
      {{1, CmpOp::kLe, Value::Double(70.0)}},
      {{2, CmpOp::kEq, Value::Str("b")}},
      {{2, CmpOp::kNe, Value::Str("b")}},
      {{0, CmpOp::kGt, Value::Int(5)}, {2, CmpOp::kEq, Value::Str("a")}},
      {},  // empty set selects everything
  };
  for (size_t p = 0; p < pred_sets.size(); ++p) {
    const auto& preds = pred_sets[p];
    const std::vector<CompiledPredicate> compiled =
        ct.CompilePredicates(preds);
    std::vector<uint32_t> selection;
    ct.FilterRange(0, ct.num_rows(), compiled, &selection);
    std::vector<uint32_t> expected;
    for (size_t i = 0; i < ct.num_rows(); ++i) {
      if (ct.RowMatches(i, compiled)) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    EXPECT_EQ(selection, expected) << "pred set " << p;
    if (!preds.empty()) {
      // NULLs never match a pushed comparison.
      for (uint32_t i : selection) {
        for (const ScanPredicate& pr : preds) {
          EXPECT_FALSE(ct.column(pr.column).IsNull(i))
              << "pred set " << p << " row " << i;
        }
      }
    } else {
      EXPECT_EQ(selection.size(), ct.num_rows());
    }
  }
}

TEST(ColumnarTest, PredicateToStringNamesColumnAndQuotesStrings) {
  Schema s({{"v", TypeId::kInt64, "t"}, {"name", TypeId::kString, "t"}});
  ScanPredicate p1{0, value_ops::CmpOp::kGe, Value::Int(10)};
  EXPECT_EQ(p1.ToString(s), "v >= 10");
  ScanPredicate p2{1, value_ops::CmpOp::kEq, Value::Str("bob")};
  EXPECT_EQ(p2.ToString(s), "name = 'bob'");
}

TEST(CatalogTest, AddAndLookupTables) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable(std::make_unique<Table>("T1", TwoColSchema())).ok());
  EXPECT_NE(catalog.FindTable("t1"), nullptr);  // case-insensitive
  EXPECT_EQ(catalog.FindTable("t2"), nullptr);
  EXPECT_FALSE(
      catalog.AddTable(std::make_unique<Table>("t1", TwoColSchema())).ok());
  ASSERT_TRUE(catalog.GetTable("T1").ok());
  EXPECT_EQ(catalog.GetTable("zzz").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "parent", Schema({{"pk", TypeId::kInt64, "parent"}})))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "child", Schema({{"fk", TypeId::kInt64, "child"}})))
                  .ok());
  ASSERT_TRUE(catalog.SetPrimaryKey("parent", {"pk"}).ok());
  EXPECT_TRUE(
      catalog.AddForeignKey({"child", {"fk"}, "parent", {"pk"}}).ok());
  // Bad column.
  EXPECT_FALSE(
      catalog.AddForeignKey({"child", {"bad"}, "parent", {"pk"}}).ok());
  // Mismatched lengths.
  EXPECT_FALSE(
      catalog.AddForeignKey({"child", {"fk"}, "parent", {}}).ok());
}

TEST(CatalogTest, IsForeignKeyJoinRequiresParentPrimaryKey) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "parent", Schema({{"pk", TypeId::kInt64, "parent"},
                                        {"other", TypeId::kInt64, "parent"}})))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "child", Schema({{"fk", TypeId::kInt64, "child"}})))
                  .ok());
  ASSERT_TRUE(catalog.SetPrimaryKey("parent", {"pk"}).ok());
  ASSERT_TRUE(
      catalog.AddForeignKey({"child", {"fk"}, "parent", {"pk"}}).ok());

  EXPECT_TRUE(catalog.IsForeignKeyJoin("child", {"fk"}, "parent", {"pk"}));
  // Joining on a non-key parent column is not a foreign-key join.
  EXPECT_FALSE(
      catalog.IsForeignKeyJoin("child", {"fk"}, "parent", {"other"}));
  // No declared FK in this direction.
  EXPECT_FALSE(catalog.IsForeignKeyJoin("parent", {"pk"}, "child", {"fk"}));
}

}  // namespace
}  // namespace gapply
