#include <gtest/gtest.h>

#include <memory>

#include "src/storage/catalog.h"
#include "src/storage/schema.h"
#include "src/storage/table.h"

namespace gapply {
namespace {

Schema TwoColSchema() {
  return Schema({{"id", TypeId::kInt64, "t"}, {"name", TypeId::kString, "t"}});
}

TEST(SchemaTest, ResolveByNameAndQualifier) {
  Schema s({{"id", TypeId::kInt64, "a"},
            {"id", TypeId::kInt64, "b"},
            {"x", TypeId::kDouble, "a"}});
  EXPECT_EQ(*s.Resolve("x"), 2);
  EXPECT_EQ(*s.Resolve("id", "a"), 0);
  EXPECT_EQ(*s.Resolve("id", "b"), 1);
  // Unqualified "id" is ambiguous.
  Result<int> r = s.Resolve("id");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Missing column.
  EXPECT_EQ(s.Resolve("nope").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ResolveIsCaseInsensitive) {
  Schema s = TwoColSchema();
  EXPECT_EQ(*s.Resolve("ID"), 0);
  EXPECT_EQ(*s.Resolve("Name", "T"), 1);
}

TEST(SchemaTest, ConcatAndRequalify) {
  Schema left({{"a", TypeId::kInt64, "l"}});
  Schema right({{"b", TypeId::kString, "r"}});
  Schema joined = Schema::Concat(left, right);
  ASSERT_EQ(joined.num_columns(), 2u);
  EXPECT_EQ(joined.column(0).name, "a");
  EXPECT_EQ(joined.column(1).qualifier, "r");

  Schema aliased = joined.WithQualifier("sub");
  EXPECT_EQ(aliased.column(0).qualifier, "sub");
  EXPECT_EQ(aliased.column(1).qualifier, "sub");
}

TEST(SchemaTest, EquivalentToIgnoresQualifiers) {
  Schema a({{"x", TypeId::kInt64, "t1"}});
  Schema b({{"X", TypeId::kInt64, "t2"}});
  Schema c({{"x", TypeId::kDouble, "t1"}});
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_FALSE(a.EquivalentTo(c));
}

TEST(TableTest, AppendChecksArity) {
  Table t("t", TwoColSchema());
  EXPECT_TRUE(t.Append({Value::Int(1), Value::Str("a")}).ok());
  EXPECT_FALSE(t.Append({Value::Int(1)}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, AppendChecksTypesAndWidensInts) {
  Table t("t", Schema({{"v", TypeId::kDouble, "t"}}));
  EXPECT_TRUE(t.Append({Value::Int(3)}).ok());
  EXPECT_EQ(t.rows()[0][0].type(), TypeId::kDouble);
  EXPECT_TRUE(t.Append({Value::Null()}).ok());
  EXPECT_FALSE(t.Append({Value::Str("x")}).ok());
}

TEST(CatalogTest, AddAndLookupTables) {
  Catalog catalog;
  ASSERT_TRUE(
      catalog.AddTable(std::make_unique<Table>("T1", TwoColSchema())).ok());
  EXPECT_NE(catalog.FindTable("t1"), nullptr);  // case-insensitive
  EXPECT_EQ(catalog.FindTable("t2"), nullptr);
  EXPECT_FALSE(
      catalog.AddTable(std::make_unique<Table>("t1", TwoColSchema())).ok());
  ASSERT_TRUE(catalog.GetTable("T1").ok());
  EXPECT_EQ(catalog.GetTable("zzz").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, ForeignKeyValidation) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "parent", Schema({{"pk", TypeId::kInt64, "parent"}})))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "child", Schema({{"fk", TypeId::kInt64, "child"}})))
                  .ok());
  ASSERT_TRUE(catalog.SetPrimaryKey("parent", {"pk"}).ok());
  EXPECT_TRUE(
      catalog.AddForeignKey({"child", {"fk"}, "parent", {"pk"}}).ok());
  // Bad column.
  EXPECT_FALSE(
      catalog.AddForeignKey({"child", {"bad"}, "parent", {"pk"}}).ok());
  // Mismatched lengths.
  EXPECT_FALSE(
      catalog.AddForeignKey({"child", {"fk"}, "parent", {}}).ok());
}

TEST(CatalogTest, IsForeignKeyJoinRequiresParentPrimaryKey) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "parent", Schema({{"pk", TypeId::kInt64, "parent"},
                                        {"other", TypeId::kInt64, "parent"}})))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddTable(std::make_unique<Table>(
                      "child", Schema({{"fk", TypeId::kInt64, "child"}})))
                  .ok());
  ASSERT_TRUE(catalog.SetPrimaryKey("parent", {"pk"}).ok());
  ASSERT_TRUE(
      catalog.AddForeignKey({"child", {"fk"}, "parent", {"pk"}}).ok());

  EXPECT_TRUE(catalog.IsForeignKeyJoin("child", {"fk"}, "parent", {"pk"}));
  // Joining on a non-key parent column is not a foreign-key join.
  EXPECT_FALSE(
      catalog.IsForeignKeyJoin("child", {"fk"}, "parent", {"other"}));
  // No declared FK in this direction.
  EXPECT_FALSE(catalog.IsForeignKeyJoin("parent", {"pk"}, "child", {"fk"}));
}

}  // namespace
}  // namespace gapply
