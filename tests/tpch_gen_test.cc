#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "src/tpch/tpch_gen.h"

namespace gapply {
namespace {

TEST(TpchGenTest, BuildsAllTablesWithExpectedCounts) {
  Catalog catalog;
  tpch::TpchConfig config;
  config.scale_factor = 0.002;  // 20 suppliers, 400 parts, 1600 partsupp
  ASSERT_TRUE(tpch::Generate(config, &catalog).ok());

  EXPECT_EQ(catalog.FindTable("region")->num_rows(), 5u);
  EXPECT_EQ(catalog.FindTable("nation")->num_rows(), 25u);
  EXPECT_EQ(catalog.FindTable("supplier")->num_rows(), 20u);
  EXPECT_EQ(catalog.FindTable("part")->num_rows(), 400u);
  EXPECT_EQ(catalog.FindTable("partsupp")->num_rows(), 1600u);
}

TEST(TpchGenTest, DeterministicInSeed) {
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  Catalog a, b;
  ASSERT_TRUE(tpch::Generate(config, &a).ok());
  ASSERT_TRUE(tpch::Generate(config, &b).ok());
  const auto& rows_a = a.FindTable("part")->rows();
  const auto& rows_b = b.FindTable("part")->rows();
  ASSERT_EQ(rows_a.size(), rows_b.size());
  for (size_t i = 0; i < rows_a.size(); ++i) {
    EXPECT_TRUE(RowsEqual(rows_a[i], rows_b[i]));
  }
}

TEST(TpchGenTest, PartsuppReferentialIntegrityAndUniqueness) {
  Catalog catalog;
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  ASSERT_TRUE(tpch::Generate(config, &catalog).ok());

  const int64_t num_suppliers = config.NumSuppliers();
  const int64_t num_parts = config.NumParts();
  std::set<std::pair<int64_t, int64_t>> seen;
  for (const Row& row : catalog.FindTable("partsupp")->rows()) {
    const int64_t pk = row[0].int_val();
    const int64_t sk = row[1].int_val();
    EXPECT_GE(pk, 1);
    EXPECT_LE(pk, num_parts);
    EXPECT_GE(sk, 1);
    EXPECT_LE(sk, num_suppliers);
    EXPECT_TRUE(seen.insert({pk, sk}).second)
        << "duplicate (partkey, suppkey): " << pk << "," << sk;
  }
}

TEST(TpchGenTest, RetailPriceFollowsFormula) {
  Catalog catalog;
  tpch::TpchConfig config;
  config.scale_factor = 0.001;
  ASSERT_TRUE(tpch::Generate(config, &catalog).ok());
  for (const Row& row : catalog.FindTable("part")->rows()) {
    EXPECT_DOUBLE_EQ(row[5].double_val(),
                     tpch::RetailPrice(row[0].int_val()));
  }
}

TEST(TpchGenTest, ForeignKeysRegistered) {
  Catalog catalog;
  ASSERT_TRUE(tpch::Generate(tpch::TpchConfig{0.001, 7}, &catalog).ok());
  EXPECT_TRUE(catalog.IsForeignKeyJoin("partsupp", {"ps_partkey"}, "part",
                                       {"p_partkey"}));
  EXPECT_TRUE(catalog.IsForeignKeyJoin("partsupp", {"ps_suppkey"}, "supplier",
                                       {"s_suppkey"}));
  EXPECT_TRUE(catalog.IsForeignKeyJoin("supplier", {"s_nationkey"}, "nation",
                                       {"n_nationkey"}));
  EXPECT_FALSE(catalog.IsForeignKeyJoin("part", {"p_partkey"}, "partsupp",
                                        {"ps_partkey"}));
}

TEST(TpchGenTest, BrandDomainAndSizes) {
  Catalog catalog;
  ASSERT_TRUE(tpch::Generate(tpch::TpchConfig{0.001, 7}, &catalog).ok());
  for (const Row& row : catalog.FindTable("part")->rows()) {
    const std::string& brand = row[3].str_val();
    ASSERT_EQ(brand.substr(0, 6), "Brand#");
    const int v = std::stoi(brand.substr(6));
    EXPECT_GE(v, 11);
    EXPECT_LE(v, 55);
    const int64_t size = row[4].int_val();
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 50);
  }
}

}  // namespace
}  // namespace gapply
