// Differential tests for the vectorized execution layer: every operator
// with a native NextBatch must produce, for every batch size, exactly what
// the row-at-a-time Next path produces — the same multiset always, and the
// same sequence where the operator promises an order (Sort, StreamGroupBy,
// parallel GApply's bit-for-bit guarantee).

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/row_batch.h"
#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"
#include "src/storage/columnar.h"
#include "tests/differential_util.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RandomGroupedRows;
using tutil::kDiffBatchSizes;

std::vector<Row> RunRowPath(PhysOp* root) {
  ExecContext ctx;
  Result<QueryResult> r = ExecuteToVectorRows(root, &ctx);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  return r.ok() ? std::move(r)->rows : std::vector<Row>{};
}

std::vector<Row> RunBatchPath(PhysOp* root, size_t batch_size,
                              ExecContext::Counters* counters = nullptr) {
  ExecContext ctx;
  ctx.set_batch_size(batch_size);
  Result<QueryResult> r = ExecuteToVector(root, &ctx);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  if (counters != nullptr) *counters = ctx.counters();
  return r.ok() ? std::move(r)->rows : std::vector<Row>{};
}

using PlanBuilder = std::function<PhysOpPtr()>;

// Executes fresh plans from `build` through both paths and compares. A
// fresh plan per run keeps operator state strictly per-execution, so the
// row run can never leak buffered batches into the batch run.
void ExpectBatchMatchesRows(const PlanBuilder& build,
                            bool ordered = false) {
  PhysOpPtr row_plan = build();
  const std::vector<Row> expected = RunRowPath(row_plan.get());
  for (size_t bs : kDiffBatchSizes) {
    PhysOpPtr batch_plan = build();
    const std::vector<Row> got = RunBatchPath(batch_plan.get(), bs);
    const std::string label = "batch_size=" + std::to_string(bs);
    if (ordered) {
      tutil::ExpectSameSequence(got, expected, label);
    } else {
      tutil::ExpectSameMultiset(got, expected, label);
    }
  }
}

class BatchDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    table_ = MakeTable("t", GroupedSchema(),
                       RandomGroupedRows(&rng, 500, 17, /*null_fraction=*/0.1));
    Rng rng2(43);
    dim_ = MakeTable("dim", GroupedSchema(), RandomGroupedRows(&rng2, 60, 17));
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<Table> dim_;
};

TEST_F(BatchDifferentialTest, TableScan) {
  ExpectBatchMatchesRows([this] {
    return std::make_unique<TableScanOp>(table_.get());
  });
}

TEST_F(BatchDifferentialTest, Filter) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    return std::make_unique<FilterOp>(
        std::move(scan), Gt(Col(s, "v"), Lit(int64_t{50})));
  });
}

TEST_F(BatchDifferentialTest, Project) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    std::vector<ExprPtr> exprs;
    exprs.push_back(Col(s, "k"));
    exprs.push_back(Binary(BinaryOp::kAdd, Col(s, "v"), Lit(int64_t{7})));
    exprs.push_back(Binary(BinaryOp::kMultiply, Col(s, "d"), Lit(2.0)));
    Result<PhysOpPtr> p =
        ProjectOp::Make(std::move(scan), std::move(exprs), {"k", "v7", "d2"});
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  });
}

TEST_F(BatchDifferentialTest, FilterThenProject) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    auto filter = std::make_unique<FilterOp>(
        std::move(scan), Le(Col(s, "v"), Lit(int64_t{80})));
    std::vector<ExprPtr> exprs;
    exprs.push_back(Binary(BinaryOp::kSubtract, Col(s, "v"), Col(s, "k")));
    Result<PhysOpPtr> p =
        ProjectOp::Make(std::move(filter), std::move(exprs), {"vk"});
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  });
}

TEST_F(BatchDifferentialTest, SortIsOrderPreserving) {
  ExpectBatchMatchesRows(
      [this]() -> PhysOpPtr {
        auto scan = std::make_unique<TableScanOp>(table_.get());
        return std::make_unique<SortOp>(
            std::move(scan),
            std::vector<SortKey>{{0, true}, {1, false}});
      },
      /*ordered=*/true);
}

TEST_F(BatchDifferentialTest, HashJoin) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto probe = std::make_unique<TableScanOp>(table_.get());
    auto build = std::make_unique<TableScanOp>(dim_.get());
    return std::make_unique<HashJoinOp>(std::move(probe), std::move(build),
                                        std::vector<int>{0},
                                        std::vector<int>{0});
  });
}

TEST_F(BatchDifferentialTest, HashJoinWithResidual) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto probe = std::make_unique<TableScanOp>(table_.get());
    auto build = std::make_unique<TableScanOp>(dim_.get());
    const Schema joined =
        Schema::Concat(probe->output_schema(), build->output_schema());
    return std::make_unique<HashJoinOp>(
        std::move(probe), std::move(build), std::vector<int>{0},
        std::vector<int>{0}, Lt(Col(joined, 1), Col(joined, 4)));
  });
}

TEST_F(BatchDifferentialTest, HashGroupBy) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    std::vector<AggregateDesc> aggs;
    aggs.push_back(CountStar("cnt"));
    aggs.push_back(Sum(Col(s, "v"), "sum_v"));
    aggs.push_back(Avg(Col(s, "d"), "avg_d"));
    return std::make_unique<HashGroupByOp>(std::move(scan),
                                           std::vector<int>{0},
                                           std::move(aggs));
  });
}

TEST_F(BatchDifferentialTest, StreamGroupByOverSortedInput) {
  ExpectBatchMatchesRows(
      [this]() -> PhysOpPtr {
        auto scan = std::make_unique<TableScanOp>(table_.get());
        const Schema s = scan->output_schema();
        auto sort = std::make_unique<SortOp>(
            std::move(scan), std::vector<SortKey>{{0, true}});
        std::vector<AggregateDesc> aggs;
        aggs.push_back(CountStar("cnt"));
        aggs.push_back(Sum(Col(s, "v"), "sum_v"));
        return std::make_unique<StreamGroupByOp>(
            std::move(sort), std::vector<int>{0}, std::move(aggs));
      },
      /*ordered=*/true);
}

TEST_F(BatchDifferentialTest, ScalarAgg) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    std::vector<AggregateDesc> aggs;
    aggs.push_back(CountStar("cnt"));
    aggs.push_back(Sum(Col(s, "v"), "sum_v"));
    return std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
  });
}

TEST_F(BatchDifferentialTest, Distinct) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    // Project to (k, v) so duplicates actually occur.
    std::vector<ExprPtr> exprs;
    exprs.push_back(Col(s, "k"));
    exprs.push_back(Col(s, "v"));
    Result<PhysOpPtr> p =
        ProjectOp::Make(std::move(scan), std::move(exprs), {"k", "v"});
    EXPECT_TRUE(p.ok());
    return std::make_unique<DistinctOp>(std::move(p).value());
  });
}

TEST_F(BatchDifferentialTest, UnionAll) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    std::vector<PhysOpPtr> branches;
    branches.push_back(std::make_unique<TableScanOp>(table_.get()));
    branches.push_back(std::make_unique<TableScanOp>(dim_.get()));
    branches.push_back(std::make_unique<TableScanOp>(table_.get()));
    Result<PhysOpPtr> u = UnionAllOp::Make(std::move(branches));
    EXPECT_TRUE(u.ok());
    return std::move(u).value();
  });
}

// ---------------------------------------------------------------------------
// GApply: both partition modes x parallelism {1, 4}, identity / agg /
// filter PGQs. Parallel output must additionally be bit-for-bit identical
// between the row and batch drive paths.
// ---------------------------------------------------------------------------

PhysOpPtr IdentityPgq(const Schema& gs, const std::string& var) {
  return std::make_unique<GroupScanOp>(var, gs);
}

PhysOpPtr AggPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(gs, "v"), "sum_v"));
  aggs.push_back(Avg(Col(gs, "d"), "avg_d"));
  return std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
}

PhysOpPtr FilterPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  return std::make_unique<FilterOp>(
      std::move(scan), Ge(Col(gs, "v"), Lit(int64_t{50})));
}

class GApplyBatchTest
    : public ::testing::TestWithParam<std::tuple<PartitionMode, size_t>> {};

TEST_P(GApplyBatchTest, BatchMatchesRowsForAllPgqShapes) {
  const auto [mode, dop] = GetParam();
  Rng rng(7);
  auto table = MakeTable("t", GroupedSchema(),
                         RandomGroupedRows(&rng, 400, 23, 0.05));

  using PgqBuilder =
      std::function<PhysOpPtr(const Schema&, const std::string&)>;
  const PgqBuilder pgqs[] = {IdentityPgq, AggPgq, FilterPgq};
  for (const PgqBuilder& pgq : pgqs) {
    const auto build = [&]() -> PhysOpPtr {
      auto outer = std::make_unique<TableScanOp>(table.get());
      const Schema gs = outer->output_schema();
      return std::make_unique<GApplyOp>(std::move(outer),
                                        std::vector<int>{0}, "g",
                                        pgq(gs, "g"), mode, dop);
    };
    PhysOpPtr row_plan = build();
    const std::vector<Row> expected = RunRowPath(row_plan.get());
    for (size_t bs : kDiffBatchSizes) {
      PhysOpPtr batch_plan = build();
      const std::vector<Row> got = RunBatchPath(batch_plan.get(), bs);
      const std::string label = std::string(PartitionModeName(mode)) +
                                " dop=" + std::to_string(dop) +
                                " batch_size=" + std::to_string(bs);
      if (dop > 1) {
        // The parallel path promises bit-for-bit serial-identical output,
        // and the batch drive must not disturb that.
        tutil::ExpectSameSequence(got, expected, label);
      } else {
        tutil::ExpectSameMultiset(got, expected, label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndThreads, GApplyBatchTest,
    ::testing::Combine(::testing::Values(PartitionMode::kSort,
                                         PartitionMode::kHash),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const ::testing::TestParamInfo<GApplyBatchTest::ParamType>& info) {
      return std::string(PartitionModeName(std::get<0>(info.param))) +
             "_dop" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Batch plumbing details.
// ---------------------------------------------------------------------------

TEST(RowBatchTest, CapacityContract) {
  RowBatch b(4);
  EXPECT_EQ(b.capacity(), 4u);
  EXPECT_TRUE(b.empty());
  for (int i = 0; i < 4; ++i) b.Add({Value::Int(i)});
  EXPECT_TRUE(b.full());
  // Soft capacity: Add past capacity() is allowed (indivisible chunks).
  b.Add({Value::Int(4)});
  EXPECT_EQ(b.size(), 5u);
  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 4u);
  // Zero clamps to 1 so full() can ever become true.
  RowBatch one(0);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(BatchCountersTest, BatchesProducedAndFillTracked) {
  Rng rng(9);
  auto t2 = MakeTable("t2", GroupedSchema(), RandomGroupedRows(&rng, 100, 5));
  TableScanOp scan(t2.get());
  ExecContext::Counters counters;
  const std::vector<Row> got = RunBatchPath(&scan, 32, &counters);
  EXPECT_EQ(got.size(), 100u);
  // 100 rows at batch 32 → 4 batches (32+32+32+4).
  EXPECT_EQ(counters.batches_produced, 4u);
  EXPECT_EQ(counters.batch_rows_produced, 100u);
  EXPECT_EQ(scan.batch_stats().batches, 4u);
  EXPECT_EQ(scan.batch_stats().rows, 100u);
  EXPECT_NEAR(scan.batch_stats().AverageFill(), 25.0, 1e-9);
}

TEST(BatchExprTest, EvalBatchMatchesEvalForFastAndSlowPaths) {
  Schema s({{"a", TypeId::kInt64, "t"}, {"b", TypeId::kDouble, "t"}});
  RowBatch batch(8);
  batch.Add({Value::Int(1), Value::Double(0.5)});
  batch.Add({Value::Int(-3), Value::Double(2.5)});
  batch.Add({Value::Null(), Value::Double(1.0)});
  batch.Add({Value::Int(7), Value::Double(-4.0)});

  // leaf ⊕ leaf (fast path), and a nested expression (recursive fallback).
  std::vector<ExprPtr> exprs;
  exprs.push_back(Binary(BinaryOp::kAdd, Col(s, "a"), Lit(int64_t{10})));
  exprs.push_back(Gt(Col(s, "b"), Lit(1.0)));
  exprs.push_back(Binary(BinaryOp::kMultiply,
                         Binary(BinaryOp::kAdd, Col(s, "a"), Col(s, "a")),
                         Lit(int64_t{2})));
  exprs.push_back(Lit(int64_t{99}));

  EvalContext ev;
  for (const ExprPtr& e : exprs) {
    std::vector<Value> out;
    Status st = e->EvalBatch(batch, ev, &out);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(out.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSIGN_OR_FAIL(Value expected, e->Eval(batch[i], ev));
      EXPECT_TRUE(out[i].Equals(expected))
          << e->ToString() << " row " << i << ": " << out[i].ToString()
          << " vs " << expected.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Columnar vs row storage. The columnar read path — dense arrays, pushed
// predicates, zone-map pruning — must reproduce the row-store stream
// bit-for-bit (both layouts preserve insertion order) across
// DOP {1, 8} x batch {1, 1024} x predicate shapes.
// ---------------------------------------------------------------------------

BinaryOp ToBinaryOp(value_ops::CmpOp op) {
  switch (op) {
    case value_ops::CmpOp::kEq: return BinaryOp::kEq;
    case value_ops::CmpOp::kNe: return BinaryOp::kNe;
    case value_ops::CmpOp::kLt: return BinaryOp::kLt;
    case value_ops::CmpOp::kLe: return BinaryOp::kLe;
    case value_ops::CmpOp::kGt: return BinaryOp::kGt;
    case value_ops::CmpOp::kGe: return BinaryOp::kGe;
  }
  return BinaryOp::kEq;
}

/// The same conjunction as an ordinary filter expression, for the row-store
/// baseline plan.
ExprPtr PredsToExpr(const Schema& s, const std::vector<ScanPredicate>& preds) {
  ExprPtr out;
  for (const ScanPredicate& p : preds) {
    ExprPtr leaf =
        Binary(ToBinaryOp(p.op), Col(s, p.column), Lit(p.literal));
    out = out == nullptr
              ? std::move(leaf)
              : Binary(BinaryOp::kAnd, std::move(out), std::move(leaf));
  }
  return out;
}

Schema MixedSchema() {
  return Schema({{"k", TypeId::kInt64, "t"},
                 {"v", TypeId::kInt64, "t"},
                 {"d", TypeId::kDouble, "t"},
                 {"s", TypeId::kString, "t"},
                 {"b", TypeId::kBool, "t"}});
}

std::vector<Row> MixedRows(Rng* rng, int n, double null_fraction) {
  const char* words[] = {"ada", "byron", "curie", "darwin", "euler"};
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto maybe_null = [&](Value v) {
      return rng->Bernoulli(null_fraction) ? Value::Null() : std::move(v);
    };
    Row row;
    row.push_back(Value::Int(i));  // clustered key
    row.push_back(maybe_null(Value::Int(rng->UniformInt(0, 100))));
    row.push_back(maybe_null(Value::Double(rng->UniformDouble(0.0, 1.0))));
    row.push_back(maybe_null(Value::Str(words[i % 5])));
    row.push_back(maybe_null(Value::Bool(i % 3 == 0)));
    rows.push_back(std::move(row));
  }
  return rows;
}

class ColumnarStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(77);
    table_ = MakeTable("t", MixedSchema(), MixedRows(&rng, 2000, 0.1));
  }

  /// Row-store baseline: scan with the columnar path off, predicates (if
  /// any) evaluated by an ordinary FilterOp above it.
  PhysOpPtr RowStorePlan(const std::vector<ScanPredicate>& preds) {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    scan->set_use_columnar(false);
    if (preds.empty()) return scan;
    ExprPtr pred = PredsToExpr(scan->output_schema(), preds);
    return std::make_unique<FilterOp>(std::move(scan), std::move(pred));
  }

  /// Columnar candidate: predicates pushed into the scan itself.
  PhysOpPtr ColumnarPlan(std::vector<ScanPredicate> preds) {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    scan->PushPredicates(std::move(preds));
    return scan;
  }

  void ExpectStorageEquivalence(const std::vector<ScanPredicate>& preds,
                                const std::string& label) {
    PhysOpPtr baseline = RowStorePlan(preds);
    const std::vector<Row> expected = RunBatchPath(baseline.get(), 1024);
    for (size_t dop : {size_t{1}, size_t{8}}) {
      for (size_t batch : {size_t{1}, size_t{1024}}) {
        PhysOpPtr plan = ColumnarPlan(preds);
        if (dop > 1) {
          plan = std::make_unique<ExchangeOp>(std::move(plan), dop,
                                              /*morsel_rows=*/256);
        }
        const std::vector<Row> got = RunBatchPath(plan.get(), batch);
        tutil::ExpectSameSequence(
            got, expected,
            label + " dop=" + std::to_string(dop) +
                " batch=" + std::to_string(batch));
        // The row path over the same columnar plan must agree too.
        if (dop == 1) {
          PhysOpPtr row_drive = ColumnarPlan(preds);
          tutil::ExpectSameSequence(RunRowPath(row_drive.get()), expected,
                                    label + " row-drive");
        }
      }
    }
  }

  std::unique_ptr<Table> table_;
};

TEST_F(ColumnarStorageTest, ScanWithoutPredicates) {
  ExpectStorageEquivalence({}, "no-preds");
}

TEST_F(ColumnarStorageTest, IntEquality) {
  ExpectStorageEquivalence({{1, value_ops::CmpOp::kEq, Value::Int(42)}},
                           "v=42");
}

TEST_F(ColumnarStorageTest, IntRangeConjunction) {
  ExpectStorageEquivalence({{1, value_ops::CmpOp::kGe, Value::Int(20)},
                            {1, value_ops::CmpOp::kLt, Value::Int(60)}},
                           "20<=v<60");
}

TEST_F(ColumnarStorageTest, ClusteredKeyRangePrunes) {
  // k is clustered (k = row index), so zone maps refute whole morsels.
  ExpectStorageEquivalence({{0, value_ops::CmpOp::kLt, Value::Int(100)}},
                           "k<100");
  ExpectStorageEquivalence({{0, value_ops::CmpOp::kGe, Value::Int(1990)}},
                           "k>=1990");
  // Empty result: every morsel pruned.
  ExpectStorageEquivalence({{0, value_ops::CmpOp::kLt, Value::Int(0)}},
                           "k<0");
}

TEST_F(ColumnarStorageTest, DoublePredicate) {
  ExpectStorageEquivalence({{2, value_ops::CmpOp::kLe, Value::Double(0.25)}},
                           "d<=0.25");
}

TEST_F(ColumnarStorageTest, IntColumnVsDoubleLiteral) {
  ExpectStorageEquivalence({{1, value_ops::CmpOp::kGt, Value::Double(49.5)}},
                           "v>49.5");
}

TEST_F(ColumnarStorageTest, StringEqualityAndInequality) {
  ExpectStorageEquivalence({{3, value_ops::CmpOp::kEq, Value::Str("curie")}},
                           "s='curie'");
  ExpectStorageEquivalence({{3, value_ops::CmpOp::kNe, Value::Str("ada")}},
                           "s<>'ada'");
  ExpectStorageEquivalence({{3, value_ops::CmpOp::kEq, Value::Str("nobody")}},
                           "s='nobody'");
}

TEST_F(ColumnarStorageTest, BoolPredicate) {
  ExpectStorageEquivalence({{4, value_ops::CmpOp::kEq, Value::Bool(true)}},
                           "b=true");
}

TEST_F(ColumnarStorageTest, MultiColumnConjunction) {
  ExpectStorageEquivalence({{1, value_ops::CmpOp::kGe, Value::Int(10)},
                            {3, value_ops::CmpOp::kEq, Value::Str("euler")},
                            {2, value_ops::CmpOp::kLt, Value::Double(0.8)}},
                           "v>=10 and s='euler' and d<0.8");
}

TEST_F(ColumnarStorageTest, PushedPredicatesUnderResidualFilter) {
  // Mixed shape lowering produces: pushable conjuncts in the scan, the
  // non-pushable remainder in a FilterOp above it.
  const std::vector<ScanPredicate> pushed = {
      {1, value_ops::CmpOp::kGe, Value::Int(5)}};
  auto residual = [&](const Schema& s) {
    // v + k is not `col <op> const`, so it stays a residual.
    return Gt(Binary(BinaryOp::kAdd, Col(s, "v"), Col(s, "k")),
              Lit(int64_t{500}));
  };

  auto row_scan = std::make_unique<TableScanOp>(table_.get());
  row_scan->set_use_columnar(false);
  const Schema s = row_scan->output_schema();
  auto baseline = std::make_unique<FilterOp>(
      std::move(row_scan),
      Binary(BinaryOp::kAnd, PredsToExpr(s, pushed), residual(s)));
  const std::vector<Row> expected = RunBatchPath(baseline.get(), 1024);

  for (size_t batch : {size_t{1}, size_t{1024}}) {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    scan->PushPredicates(pushed);
    auto candidate =
        std::make_unique<FilterOp>(std::move(scan), residual(s));
    tutil::ExpectSameSequence(RunBatchPath(candidate.get(), batch), expected,
                              "residual batch=" + std::to_string(batch));
  }
}

TEST(ColumnarStorageEdgeTest, NullHeavyTable) {
  Rng rng(78);
  auto table = MakeTable("t", MixedSchema(), MixedRows(&rng, 1500, 0.9));
  const std::vector<std::vector<ScanPredicate>> pred_sets = {
      {{1, value_ops::CmpOp::kGe, Value::Int(0)}},
      {{3, value_ops::CmpOp::kEq, Value::Str("ada")}},
      {{4, value_ops::CmpOp::kEq, Value::Bool(false)}},
  };
  for (const auto& preds : pred_sets) {
    auto row_scan = std::make_unique<TableScanOp>(table.get());
    row_scan->set_use_columnar(false);
    auto baseline = std::make_unique<FilterOp>(
        std::move(row_scan), PredsToExpr(table->schema(), preds));
    const std::vector<Row> expected = RunBatchPath(baseline.get(), 1024);
    auto scan = std::make_unique<TableScanOp>(table.get());
    scan->PushPredicates(preds);
    tutil::ExpectSameSequence(RunBatchPath(scan.get(), 1024), expected,
                              "null-heavy " + preds[0].ToString(
                                  table->schema()));
  }
}

TEST(ColumnarStorageEdgeTest, AllStringTable) {
  Schema schema({{"a", TypeId::kString, "t"}, {"b", TypeId::kString, "t"}});
  std::vector<Row> rows;
  const char* names[] = {"x", "y", "z", "w"};
  for (int i = 0; i < 500; ++i) {
    rows.push_back({i % 13 == 0 ? Value::Null() : Value::Str(names[i % 4]),
                    Value::Str(names[(i / 4) % 4])});
  }
  auto table = MakeTable("t", schema, std::move(rows));
  const std::vector<ScanPredicate> preds = {
      {0, value_ops::CmpOp::kGe, Value::Str("y")},
      {1, value_ops::CmpOp::kNe, Value::Str("w")}};
  auto row_scan = std::make_unique<TableScanOp>(table.get());
  row_scan->set_use_columnar(false);
  auto baseline = std::make_unique<FilterOp>(std::move(row_scan),
                                             PredsToExpr(schema, preds));
  const std::vector<Row> expected = RunBatchPath(baseline.get(), 1024);
  ASSERT_FALSE(expected.empty());
  auto scan = std::make_unique<TableScanOp>(table.get());
  scan->PushPredicates(preds);
  tutil::ExpectSameSequence(RunBatchPath(scan.get(), 1024), expected,
                            "all-string");
}

TEST(ColumnarStorageEdgeTest, PruningCountersBookMorselSkips) {
  // Clustered key over 5 storage morsels; k < 100 lives entirely in the
  // first, so the scan must visit 1 morsel and prune 4.
  Schema schema({{"k", TypeId::kInt64, "t"}});
  std::vector<Row> rows;
  const size_t n = 5 * ColumnarTable::kMorselRows;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i))});
  }
  auto table = MakeTable("t", schema, std::move(rows));
  TableScanOp scan(table.get());
  scan.PushPredicates({{0, value_ops::CmpOp::kLt, Value::Int(100)}});
  ExecContext::Counters counters;
  const std::vector<Row> got = RunBatchPath(&scan, 1024, &counters);
  EXPECT_EQ(got.size(), 100u);
  EXPECT_EQ(counters.morsels_scanned, 1u);
  EXPECT_EQ(counters.morsels_pruned, 4u);
}

TEST(ColumnarStorageEdgeTest, PruningInsideExchangeMorselDriver) {
  // Exchange morsels (odd-sized, smaller than storage morsels) intersect
  // storage morsels; pruning still fires and results stay bit-for-bit.
  Schema schema({{"k", TypeId::kInt64, "t"}, {"v", TypeId::kInt64, "t"}});
  std::vector<Row> rows;
  const size_t n = 3 * ColumnarTable::kMorselRows + 17;
  for (size_t i = 0; i < n; ++i) {
    rows.push_back({Value::Int(static_cast<int64_t>(i)),
                    Value::Int(static_cast<int64_t>(i % 91))});
  }
  auto table = MakeTable("t", schema, std::move(rows));
  const std::vector<ScanPredicate> preds = {
      {0, value_ops::CmpOp::kGe,
       Value::Int(static_cast<int64_t>(n) - 50)}};

  auto row_scan = std::make_unique<TableScanOp>(table.get());
  row_scan->set_use_columnar(false);
  auto baseline = std::make_unique<FilterOp>(std::move(row_scan),
                                             PredsToExpr(schema, preds));
  const std::vector<Row> expected = RunBatchPath(baseline.get(), 1024);
  ASSERT_EQ(expected.size(), 50u);

  auto scan = std::make_unique<TableScanOp>(table.get());
  scan->PushPredicates(preds);
  ExchangeOp ex(std::move(scan), /*parallelism=*/8, /*morsel_rows=*/997);
  ExecContext ctx;
  ctx.set_batch_size(1024);
  Result<QueryResult> r = ExecuteToVector(&ex, &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  tutil::ExpectSameSequence(r->rows, expected, "exchange-pruning");
  EXPECT_GT(ctx.counters().morsels_pruned, 0u);
}

// ---------------------------------------------------------------------------
// SetMorsel edge cases.
// ---------------------------------------------------------------------------

std::vector<Row> DrainScan(TableScanOp* scan, ExecContext* ctx) {
  std::vector<Row> rows;
  while (true) {
    Row row;
    Result<bool> more = scan->Next(ctx, &row);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(TableScanMorselTest, RejectsInvertedRange) {
  Rng rng(5);
  auto table = MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 50, 3));
  TableScanOp scan(table.get());
  scan.EnableMorselMode();
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  ASSERT_TRUE(scan.SetMorsel(10, 20).ok());
  Status st = scan.SetMorsel(20, 10);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("inverted"), std::string::npos);
  // The previously armed range survives the rejected call.
  EXPECT_EQ(DrainScan(&scan, &ctx).size(), 10u);
  ASSERT_TRUE(scan.Close(&ctx).ok());
}

TEST(TableScanMorselTest, EmptyTableYieldsNothing) {
  auto table = std::make_unique<Table>("t", GroupedSchema());
  TableScanOp scan(table.get());
  scan.EnableMorselMode();
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  ASSERT_TRUE(scan.SetMorsel(0, 64).ok());  // clamped to the empty table
  EXPECT_TRUE(DrainScan(&scan, &ctx).empty());
  ASSERT_TRUE(scan.Close(&ctx).ok());
}

TEST(TableScanMorselTest, MorselPastEndClampsToNothing) {
  Rng rng(6);
  auto table = MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 50, 3));
  TableScanOp scan(table.get());
  scan.EnableMorselMode();
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  ASSERT_TRUE(scan.SetMorsel(1000, 1064).ok());
  EXPECT_TRUE(DrainScan(&scan, &ctx).empty());
  // A morsel straddling the end clamps to the tail.
  ASSERT_TRUE(scan.SetMorsel(45, 1000).ok());
  EXPECT_EQ(DrainScan(&scan, &ctx).size(), 5u);
  ASSERT_TRUE(scan.Close(&ctx).ok());
}

TEST(TableScanMorselTest, ZeroWidthMorselYieldsNothingAndRearms) {
  Rng rng(7);
  auto table = MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 50, 3));
  TableScanOp scan(table.get());
  scan.EnableMorselMode();
  ExecContext ctx;
  ASSERT_TRUE(scan.Open(&ctx).ok());
  ASSERT_TRUE(scan.SetMorsel(5, 5).ok());
  EXPECT_TRUE(DrainScan(&scan, &ctx).empty());
  // Re-arming after a zero-width morsel still works.
  ASSERT_TRUE(scan.SetMorsel(0, 50).ok());
  EXPECT_EQ(DrainScan(&scan, &ctx).size(), 50u);
  ASSERT_TRUE(scan.Close(&ctx).ok());
}

TEST(BatchExprTest, EvalPredicateBatchRejectsNonBool) {
  Schema s({{"a", TypeId::kInt64, "t"}});
  RowBatch batch(2);
  batch.Add({Value::Int(1)});
  std::vector<char> keep;
  EvalContext ev;
  ExprPtr not_a_predicate = Col(s, "a");
  Status st = EvalPredicateBatch(*not_a_predicate, batch, ev, &keep);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace gapply
