// Differential tests for the vectorized execution layer: every operator
// with a native NextBatch must produce, for every batch size, exactly what
// the row-at-a-time Next path produces — the same multiset always, and the
// same sequence where the operator promises an order (Sort, StreamGroupBy,
// parallel GApply's bit-for-bit guarantee).

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/row_batch.h"
#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"
#include "tests/differential_util.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RandomGroupedRows;
using tutil::kDiffBatchSizes;

std::vector<Row> RunRowPath(PhysOp* root) {
  ExecContext ctx;
  Result<QueryResult> r = ExecuteToVectorRows(root, &ctx);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  return r.ok() ? std::move(r)->rows : std::vector<Row>{};
}

std::vector<Row> RunBatchPath(PhysOp* root, size_t batch_size,
                              ExecContext::Counters* counters = nullptr) {
  ExecContext ctx;
  ctx.set_batch_size(batch_size);
  Result<QueryResult> r = ExecuteToVector(root, &ctx);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.status().ToString());
  if (counters != nullptr) *counters = ctx.counters();
  return r.ok() ? std::move(r)->rows : std::vector<Row>{};
}

using PlanBuilder = std::function<PhysOpPtr()>;

// Executes fresh plans from `build` through both paths and compares. A
// fresh plan per run keeps operator state strictly per-execution, so the
// row run can never leak buffered batches into the batch run.
void ExpectBatchMatchesRows(const PlanBuilder& build,
                            bool ordered = false) {
  PhysOpPtr row_plan = build();
  const std::vector<Row> expected = RunRowPath(row_plan.get());
  for (size_t bs : kDiffBatchSizes) {
    PhysOpPtr batch_plan = build();
    const std::vector<Row> got = RunBatchPath(batch_plan.get(), bs);
    const std::string label = "batch_size=" + std::to_string(bs);
    if (ordered) {
      tutil::ExpectSameSequence(got, expected, label);
    } else {
      tutil::ExpectSameMultiset(got, expected, label);
    }
  }
}

class BatchDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(42);
    table_ = MakeTable("t", GroupedSchema(),
                       RandomGroupedRows(&rng, 500, 17, /*null_fraction=*/0.1));
    Rng rng2(43);
    dim_ = MakeTable("dim", GroupedSchema(), RandomGroupedRows(&rng2, 60, 17));
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<Table> dim_;
};

TEST_F(BatchDifferentialTest, TableScan) {
  ExpectBatchMatchesRows([this] {
    return std::make_unique<TableScanOp>(table_.get());
  });
}

TEST_F(BatchDifferentialTest, Filter) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    return std::make_unique<FilterOp>(
        std::move(scan), Gt(Col(s, "v"), Lit(int64_t{50})));
  });
}

TEST_F(BatchDifferentialTest, Project) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    std::vector<ExprPtr> exprs;
    exprs.push_back(Col(s, "k"));
    exprs.push_back(Binary(BinaryOp::kAdd, Col(s, "v"), Lit(int64_t{7})));
    exprs.push_back(Binary(BinaryOp::kMultiply, Col(s, "d"), Lit(2.0)));
    Result<PhysOpPtr> p =
        ProjectOp::Make(std::move(scan), std::move(exprs), {"k", "v7", "d2"});
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  });
}

TEST_F(BatchDifferentialTest, FilterThenProject) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    auto filter = std::make_unique<FilterOp>(
        std::move(scan), Le(Col(s, "v"), Lit(int64_t{80})));
    std::vector<ExprPtr> exprs;
    exprs.push_back(Binary(BinaryOp::kSubtract, Col(s, "v"), Col(s, "k")));
    Result<PhysOpPtr> p =
        ProjectOp::Make(std::move(filter), std::move(exprs), {"vk"});
    EXPECT_TRUE(p.ok());
    return std::move(p).value();
  });
}

TEST_F(BatchDifferentialTest, SortIsOrderPreserving) {
  ExpectBatchMatchesRows(
      [this]() -> PhysOpPtr {
        auto scan = std::make_unique<TableScanOp>(table_.get());
        return std::make_unique<SortOp>(
            std::move(scan),
            std::vector<SortKey>{{0, true}, {1, false}});
      },
      /*ordered=*/true);
}

TEST_F(BatchDifferentialTest, HashJoin) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto probe = std::make_unique<TableScanOp>(table_.get());
    auto build = std::make_unique<TableScanOp>(dim_.get());
    return std::make_unique<HashJoinOp>(std::move(probe), std::move(build),
                                        std::vector<int>{0},
                                        std::vector<int>{0});
  });
}

TEST_F(BatchDifferentialTest, HashJoinWithResidual) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto probe = std::make_unique<TableScanOp>(table_.get());
    auto build = std::make_unique<TableScanOp>(dim_.get());
    const Schema joined =
        Schema::Concat(probe->output_schema(), build->output_schema());
    return std::make_unique<HashJoinOp>(
        std::move(probe), std::move(build), std::vector<int>{0},
        std::vector<int>{0}, Lt(Col(joined, 1), Col(joined, 4)));
  });
}

TEST_F(BatchDifferentialTest, HashGroupBy) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    std::vector<AggregateDesc> aggs;
    aggs.push_back(CountStar("cnt"));
    aggs.push_back(Sum(Col(s, "v"), "sum_v"));
    aggs.push_back(Avg(Col(s, "d"), "avg_d"));
    return std::make_unique<HashGroupByOp>(std::move(scan),
                                           std::vector<int>{0},
                                           std::move(aggs));
  });
}

TEST_F(BatchDifferentialTest, StreamGroupByOverSortedInput) {
  ExpectBatchMatchesRows(
      [this]() -> PhysOpPtr {
        auto scan = std::make_unique<TableScanOp>(table_.get());
        const Schema s = scan->output_schema();
        auto sort = std::make_unique<SortOp>(
            std::move(scan), std::vector<SortKey>{{0, true}});
        std::vector<AggregateDesc> aggs;
        aggs.push_back(CountStar("cnt"));
        aggs.push_back(Sum(Col(s, "v"), "sum_v"));
        return std::make_unique<StreamGroupByOp>(
            std::move(sort), std::vector<int>{0}, std::move(aggs));
      },
      /*ordered=*/true);
}

TEST_F(BatchDifferentialTest, ScalarAgg) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    std::vector<AggregateDesc> aggs;
    aggs.push_back(CountStar("cnt"));
    aggs.push_back(Sum(Col(s, "v"), "sum_v"));
    return std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
  });
}

TEST_F(BatchDifferentialTest, Distinct) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    auto scan = std::make_unique<TableScanOp>(table_.get());
    const Schema s = scan->output_schema();
    // Project to (k, v) so duplicates actually occur.
    std::vector<ExprPtr> exprs;
    exprs.push_back(Col(s, "k"));
    exprs.push_back(Col(s, "v"));
    Result<PhysOpPtr> p =
        ProjectOp::Make(std::move(scan), std::move(exprs), {"k", "v"});
    EXPECT_TRUE(p.ok());
    return std::make_unique<DistinctOp>(std::move(p).value());
  });
}

TEST_F(BatchDifferentialTest, UnionAll) {
  ExpectBatchMatchesRows([this]() -> PhysOpPtr {
    std::vector<PhysOpPtr> branches;
    branches.push_back(std::make_unique<TableScanOp>(table_.get()));
    branches.push_back(std::make_unique<TableScanOp>(dim_.get()));
    branches.push_back(std::make_unique<TableScanOp>(table_.get()));
    Result<PhysOpPtr> u = UnionAllOp::Make(std::move(branches));
    EXPECT_TRUE(u.ok());
    return std::move(u).value();
  });
}

// ---------------------------------------------------------------------------
// GApply: both partition modes x parallelism {1, 4}, identity / agg /
// filter PGQs. Parallel output must additionally be bit-for-bit identical
// between the row and batch drive paths.
// ---------------------------------------------------------------------------

PhysOpPtr IdentityPgq(const Schema& gs, const std::string& var) {
  return std::make_unique<GroupScanOp>(var, gs);
}

PhysOpPtr AggPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(gs, "v"), "sum_v"));
  aggs.push_back(Avg(Col(gs, "d"), "avg_d"));
  return std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
}

PhysOpPtr FilterPgq(const Schema& gs, const std::string& var) {
  auto scan = std::make_unique<GroupScanOp>(var, gs);
  return std::make_unique<FilterOp>(
      std::move(scan), Ge(Col(gs, "v"), Lit(int64_t{50})));
}

class GApplyBatchTest
    : public ::testing::TestWithParam<std::tuple<PartitionMode, size_t>> {};

TEST_P(GApplyBatchTest, BatchMatchesRowsForAllPgqShapes) {
  const auto [mode, dop] = GetParam();
  Rng rng(7);
  auto table = MakeTable("t", GroupedSchema(),
                         RandomGroupedRows(&rng, 400, 23, 0.05));

  using PgqBuilder =
      std::function<PhysOpPtr(const Schema&, const std::string&)>;
  const PgqBuilder pgqs[] = {IdentityPgq, AggPgq, FilterPgq};
  for (const PgqBuilder& pgq : pgqs) {
    const auto build = [&]() -> PhysOpPtr {
      auto outer = std::make_unique<TableScanOp>(table.get());
      const Schema gs = outer->output_schema();
      return std::make_unique<GApplyOp>(std::move(outer),
                                        std::vector<int>{0}, "g",
                                        pgq(gs, "g"), mode, dop);
    };
    PhysOpPtr row_plan = build();
    const std::vector<Row> expected = RunRowPath(row_plan.get());
    for (size_t bs : kDiffBatchSizes) {
      PhysOpPtr batch_plan = build();
      const std::vector<Row> got = RunBatchPath(batch_plan.get(), bs);
      const std::string label = std::string(PartitionModeName(mode)) +
                                " dop=" + std::to_string(dop) +
                                " batch_size=" + std::to_string(bs);
      if (dop > 1) {
        // The parallel path promises bit-for-bit serial-identical output,
        // and the batch drive must not disturb that.
        tutil::ExpectSameSequence(got, expected, label);
      } else {
        tutil::ExpectSameMultiset(got, expected, label);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndThreads, GApplyBatchTest,
    ::testing::Combine(::testing::Values(PartitionMode::kSort,
                                         PartitionMode::kHash),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const ::testing::TestParamInfo<GApplyBatchTest::ParamType>& info) {
      return std::string(PartitionModeName(std::get<0>(info.param))) +
             "_dop" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Batch plumbing details.
// ---------------------------------------------------------------------------

TEST(RowBatchTest, CapacityContract) {
  RowBatch b(4);
  EXPECT_EQ(b.capacity(), 4u);
  EXPECT_TRUE(b.empty());
  for (int i = 0; i < 4; ++i) b.Add({Value::Int(i)});
  EXPECT_TRUE(b.full());
  // Soft capacity: Add past capacity() is allowed (indivisible chunks).
  b.Add({Value::Int(4)});
  EXPECT_EQ(b.size(), 5u);
  b.Clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.capacity(), 4u);
  // Zero clamps to 1 so full() can ever become true.
  RowBatch one(0);
  EXPECT_EQ(one.capacity(), 1u);
}

TEST(BatchCountersTest, BatchesProducedAndFillTracked) {
  Rng rng(9);
  auto t2 = MakeTable("t2", GroupedSchema(), RandomGroupedRows(&rng, 100, 5));
  TableScanOp scan(t2.get());
  ExecContext::Counters counters;
  const std::vector<Row> got = RunBatchPath(&scan, 32, &counters);
  EXPECT_EQ(got.size(), 100u);
  // 100 rows at batch 32 → 4 batches (32+32+32+4).
  EXPECT_EQ(counters.batches_produced, 4u);
  EXPECT_EQ(counters.batch_rows_produced, 100u);
  EXPECT_EQ(scan.batch_stats().batches, 4u);
  EXPECT_EQ(scan.batch_stats().rows, 100u);
  EXPECT_NEAR(scan.batch_stats().AverageFill(), 25.0, 1e-9);
}

TEST(BatchExprTest, EvalBatchMatchesEvalForFastAndSlowPaths) {
  Schema s({{"a", TypeId::kInt64, "t"}, {"b", TypeId::kDouble, "t"}});
  RowBatch batch(8);
  batch.Add({Value::Int(1), Value::Double(0.5)});
  batch.Add({Value::Int(-3), Value::Double(2.5)});
  batch.Add({Value::Null(), Value::Double(1.0)});
  batch.Add({Value::Int(7), Value::Double(-4.0)});

  // leaf ⊕ leaf (fast path), and a nested expression (recursive fallback).
  std::vector<ExprPtr> exprs;
  exprs.push_back(Binary(BinaryOp::kAdd, Col(s, "a"), Lit(int64_t{10})));
  exprs.push_back(Gt(Col(s, "b"), Lit(1.0)));
  exprs.push_back(Binary(BinaryOp::kMultiply,
                         Binary(BinaryOp::kAdd, Col(s, "a"), Col(s, "a")),
                         Lit(int64_t{2})));
  exprs.push_back(Lit(int64_t{99}));

  EvalContext ev;
  for (const ExprPtr& e : exprs) {
    std::vector<Value> out;
    Status st = e->EvalBatch(batch, ev, &out);
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_EQ(out.size(), batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      ASSIGN_OR_FAIL(Value expected, e->Eval(batch[i], ev));
      EXPECT_TRUE(out[i].Equals(expected))
          << e->ToString() << " row " << i << ": " << out[i].ToString()
          << " vs " << expected.ToString();
    }
  }
}

TEST(BatchExprTest, EvalPredicateBatchRejectsNonBool) {
  Schema s({{"a", TypeId::kInt64, "t"}});
  RowBatch batch(2);
  batch.Add({Value::Int(1)});
  std::vector<char> keep;
  EvalContext ev;
  ExprPtr not_a_predicate = Col(s, "a");
  Status st = EvalPredicateBatch(*not_a_predicate, batch, ev, &keep);
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace gapply
