#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/value.h"

namespace gapply {
namespace {

using value_ops::CmpOp;

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::TypeError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

Result<int> Doubled(Result<int> in) {
  ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("x")).ok());
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), TypeId::kBool);
  EXPECT_EQ(Value::Int(5).int_val(), 5);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_val(), 2.5);
  EXPECT_EQ(Value::Str("abc").str_val(), "abc");
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-3).ToString(), "-3");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Str("hi").ToString(), "hi");
}

TEST(ValueTest, CompareNumericCrossType) {
  EXPECT_EQ(*Value::Compare(Value::Int(2), Value::Double(2.5)), -1);
  EXPECT_EQ(*Value::Compare(Value::Double(3.0), Value::Int(3)), 0);
  EXPECT_EQ(*Value::Compare(Value::Int(4), Value::Int(3)), 1);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(*Value::Compare(Value::Str("a"), Value::Str("b")), -1);
  EXPECT_EQ(*Value::Compare(Value::Str("b"), Value::Str("b")), 0);
}

TEST(ValueTest, CompareIncompatibleTypesFails) {
  EXPECT_FALSE(Value::Compare(Value::Str("a"), Value::Int(1)).ok());
  EXPECT_FALSE(Value::Compare(Value::Null(), Value::Int(1)).ok());
}

TEST(ValueTest, GroupingEqualityTreatsNullAsEqual) {
  EXPECT_TRUE(Value::Null().Equals(Value::Null()));
  EXPECT_FALSE(Value::Null().Equals(Value::Int(0)));
  EXPECT_TRUE(Value::Int(2).Equals(Value::Double(2.0)));
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
}

TEST(ValueTest, ThreeValuedComparison) {
  Result<Value> r =
      value_ops::CompareOp(CmpOp::kLt, Value::Null(), Value::Int(1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
  EXPECT_TRUE(
      value_ops::CompareOp(CmpOp::kGe, Value::Int(2), Value::Int(2))->bool_val());
  EXPECT_FALSE(
      value_ops::CompareOp(CmpOp::kNe, Value::Int(2), Value::Double(2.0))
          ->bool_val());
}

TEST(ValueTest, KleeneAndOr) {
  const Value t = Value::Bool(true);
  const Value f = Value::Bool(false);
  const Value n = Value::Null();
  // AND: false dominates NULL.
  EXPECT_FALSE(value_ops::And(f, n)->bool_val());
  EXPECT_TRUE(value_ops::And(t, t)->bool_val());
  EXPECT_TRUE(value_ops::And(t, n)->is_null());
  // OR: true dominates NULL.
  EXPECT_TRUE(value_ops::Or(t, n)->bool_val());
  EXPECT_TRUE(value_ops::Or(f, n)->is_null());
  EXPECT_FALSE(value_ops::Or(f, f)->bool_val());
  // NOT NULL is NULL.
  EXPECT_TRUE(value_ops::Not(n)->is_null());
  EXPECT_FALSE(value_ops::Not(t)->bool_val());
}

TEST(ValueTest, BooleanOpsRejectNonBool) {
  EXPECT_FALSE(value_ops::And(Value::Int(1), Value::Bool(true)).ok());
  EXPECT_FALSE(value_ops::Not(Value::Str("x")).ok());
}

TEST(ValueTest, ArithmeticPromotionAndNulls) {
  EXPECT_EQ(value_ops::Add(Value::Int(2), Value::Int(3))->int_val(), 5);
  EXPECT_DOUBLE_EQ(
      value_ops::Add(Value::Int(2), Value::Double(0.5))->double_val(), 2.5);
  EXPECT_TRUE(value_ops::Multiply(Value::Null(), Value::Int(3))->is_null());
  EXPECT_EQ(value_ops::Subtract(Value::Int(2), Value::Int(5))->int_val(), -3);
  EXPECT_EQ(value_ops::Modulo(Value::Int(7), Value::Int(3))->int_val(), 1);
  EXPECT_EQ(value_ops::Negate(Value::Int(7))->int_val(), -7);
}

TEST(ValueTest, DivisionByZeroIsError) {
  EXPECT_FALSE(value_ops::Divide(Value::Int(1), Value::Int(0)).ok());
  EXPECT_FALSE(value_ops::Divide(Value::Double(1), Value::Double(0)).ok());
  EXPECT_FALSE(value_ops::Modulo(Value::Int(1), Value::Int(0)).ok());
}

TEST(ValueTest, ArithmeticTypeErrors) {
  EXPECT_FALSE(value_ops::Add(Value::Str("a"), Value::Int(1)).ok());
  EXPECT_FALSE(value_ops::Negate(Value::Str("a")).ok());
}

TEST(RowTest, RowEqualityAndHash) {
  Row a = {Value::Int(1), Value::Null(), Value::Str("x")};
  Row b = {Value::Int(1), Value::Null(), Value::Str("x")};
  Row c = {Value::Int(1), Value::Int(0), Value::Str("x")};
  EXPECT_TRUE(RowsEqual(a, b));
  EXPECT_FALSE(RowsEqual(a, c));
  EXPECT_EQ(RowHash()(a), RowHash()(b));
  EXPECT_TRUE(RowEq()(a, b));
  EXPECT_EQ(RowToString(a), "(1, NULL, x)");
}

TEST(RowTest, HashCombineSpreadsAdjacentIntKeys) {
  // The multiply-then-xor combiner this replaced collapsed adjacent
  // single-int keys into few distinct hashes once masked down to a small
  // bucket count. Golden-ratio hash-combine must keep collisions near the
  // birthday bound: 4096 adjacent keys over 1<<16 buckets.
  constexpr int kKeys = 4096;
  constexpr size_t kMask = (1u << 16) - 1;
  std::unordered_set<size_t> buckets;
  for (int i = 0; i < kKeys; ++i) {
    buckets.insert(RowHash()(Row{Value::Int(i)}) & kMask);
  }
  // Expected distinct buckets ~ m(1 - e^{-n/m}) ≈ 3969; demand at least 90%.
  EXPECT_GE(buckets.size(), static_cast<size_t>(kKeys * 9 / 10));

  // Two-column keys (k, v) with small adjacent ranges must not collide
  // pairwise-symmetrically: (a, b) and (b, a) hash differently in general.
  EXPECT_NE(RowHash()(Row{Value::Int(1), Value::Int(2)}),
            RowHash()(Row{Value::Int(2), Value::Int(1)}));
}

TEST(RowTest, HashRowColumnsMatchesRowHashOfExtractedKey) {
  Row row = {Value::Int(7), Value::Str("x"), Value::Double(1.5)};
  const std::vector<int> cols = {0, 2};
  Row key = {row[0], row[2]};
  EXPECT_EQ(HashRowColumns(row, cols), RowHash()(key));
}

}  // namespace
}  // namespace gapply
