#include <gtest/gtest.h>

#include "src/core/analyses.h"
#include "src/exec/lowering.h"
#include "src/plan/builder.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using core::AnalyzePgq;
using core::PgqInfo;
using core::RemapPgq;
using tutil::GroupedSchema;
using tutil::MakeTable;

// Group schema used throughout: (k int, v int, d double).
class AnalysesTest : public ::testing::Test {
 protected:
  Schema gs_ = GroupedSchema();

  LogicalOpPtr Pgq(PlanBuilder b) {
    auto r = std::move(b).Build();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return std::move(r).value();
  }

  PgqInfo Analyze(const LogicalOp& pgq) {
    auto r = AnalyzePgq(pgq, "g", 3);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : PgqInfo{};
  }
};

TEST_F(AnalysesTest, IdentityScanIsEmptyOnEmptyWithTrueRange) {
  LogicalOpPtr pgq = Pgq(PlanBuilder::GroupScan("g", gs_));
  PgqInfo info = Analyze(*pgq);
  EXPECT_TRUE(info.empty_on_empty);
  EXPECT_EQ(info.covering_range, nullptr);  // TRUE
  EXPECT_TRUE(info.eval_columns.empty());
  // Identity output: all columns flow out → all used.
  EXPECT_EQ(info.used_columns.size(), 3u);
  EXPECT_EQ(info.pure_source, (std::vector<int>{0, 1, 2}));
}

TEST_F(AnalysesTest, ScalarAggIsNotEmptyOnEmpty) {
  LogicalOpPtr pgq = Pgq(PlanBuilder::GroupScan("g", gs_).ScalarAgg(
      {{AggKind::kCountStar, "", "cnt", false}}));
  PgqInfo info = Analyze(*pgq);
  EXPECT_FALSE(info.empty_on_empty);  // count(*) of empty group is a row
  EXPECT_TRUE(info.blocking);
}

TEST_F(AnalysesTest, SelectContributesToRangeAndEval) {
  LogicalOpPtr pgq = Pgq(PlanBuilder::GroupScan("g", gs_).Select(
      [](const Schema& s) { return Gt(Col(s, "v"), Lit(int64_t{5})); }));
  PgqInfo info = Analyze(*pgq);
  EXPECT_TRUE(info.empty_on_empty);
  ASSERT_NE(info.covering_range, nullptr);
  EXPECT_EQ(info.covering_range->ToString(), "(v > 5)");
  EXPECT_EQ(info.eval_columns, (std::set<int>{1}));
}

TEST_F(AnalysesTest, SelectAboveAggregateDoesNotContributeToRange) {
  // σ(cnt > 1, ScalarAgg(count(*))): the select has an aggregate
  // descendant, so the covering range stays TRUE (§4.1).
  LogicalOpPtr pgq = Pgq(
      PlanBuilder::GroupScan("g", gs_)
          .ScalarAgg({{AggKind::kCountStar, "", "cnt", false}})
          .Select([](const Schema& s) {
            return Gt(Col(s, "cnt"), Lit(int64_t{1}));
          }));
  PgqInfo info = Analyze(*pgq);
  EXPECT_EQ(info.covering_range, nullptr);
  EXPECT_FALSE(info.empty_on_empty);
}

TEST_F(AnalysesTest, UnionOrsRangesAndAndsEmptyOnEmpty) {
  auto branch = [&](int64_t cutoff) {
    return PlanBuilder::GroupScan("g", gs_).Select([&](const Schema& s) {
      return Gt(Col(s, "v"), Lit(cutoff));
    });
  };
  std::vector<PlanBuilder> branches;
  branches.push_back(branch(5));
  branches.push_back(branch(10));
  LogicalOpPtr pgq = Pgq(PlanBuilder::UnionAll(std::move(branches)));
  PgqInfo info = Analyze(*pgq);
  EXPECT_TRUE(info.empty_on_empty);
  ASSERT_NE(info.covering_range, nullptr);
  EXPECT_EQ(info.covering_range->ToString(), "((v > 5) or (v > 10))");

  // Adding an aggregate branch kills emptyOnEmpty and widens the range to
  // TRUE (the aggregate branch needs the whole group).
  std::vector<PlanBuilder> branches2;
  branches2.push_back(branch(5));
  branches2.push_back(
      PlanBuilder::GroupScan("g", gs_)
          .ScalarAgg({{AggKind::kCount, "v", "cv", false}})
          .ProjectExprs(
              [](const Schema& s) {
                std::vector<ExprPtr> e;
                e.push_back(Col(s, "cv"));
                e.push_back(Lit(Value::Null()));
                e.push_back(Lit(Value::Null()));
                return e;
              },
              {"k", "v", "d"}));
  // Make branch 1 schema compatible (3 cols each).
  LogicalOpPtr pgq2 = Pgq(PlanBuilder::UnionAll(std::move(branches2)));
  PgqInfo info2 = Analyze(*pgq2);
  EXPECT_FALSE(info2.empty_on_empty);
  EXPECT_EQ(info2.covering_range, nullptr);  // TRUE
}

TEST_F(AnalysesTest, ApplyTakesOuterEmptyOnEmptyAndOrsRanges) {
  // Figure 3 shape: Apply(σ_v>5(g), ScalarAgg(avg d over σ_v<2(g))).
  auto inner = PlanBuilder::GroupScan("g", gs_)
                   .Select([](const Schema& s) {
                     return Lt(Col(s, "v"), Lit(int64_t{2}));
                   })
                   .ScalarAgg({{AggKind::kAvg, "d", "avg_d", false}});
  LogicalOpPtr pgq = Pgq(PlanBuilder::GroupScan("g", gs_)
                             .Select([](const Schema& s) {
                               return Gt(Col(s, "v"), Lit(int64_t{5}));
                             })
                             .Apply(std::move(inner)));
  PgqInfo info = Analyze(*pgq);
  EXPECT_TRUE(info.empty_on_empty);  // outer child is a filtered scan
  ASSERT_NE(info.covering_range, nullptr);
  EXPECT_EQ(info.covering_range->ToString(), "((v > 5) or (v < 2))");
  EXPECT_TRUE(info.blocking);
  EXPECT_EQ(info.eval_columns, (std::set<int>{1, 2}));
}

TEST_F(AnalysesTest, ProjectionTracksPurePassThroughAndUsedColumns) {
  LogicalOpPtr pgq = Pgq(PlanBuilder::GroupScan("g", gs_).ProjectExprs(
      [](const Schema& s) {
        std::vector<ExprPtr> e;
        e.push_back(Col(s, "k"));
        e.push_back(Binary(BinaryOp::kMultiply, Col(s, "d"), Lit(2.0)));
        return e;
      },
      {"k", "d2"}));
  PgqInfo info = Analyze(*pgq);
  // k is pure pass-through of group column 0; d2 is computed.
  EXPECT_EQ(info.pure_source, (std::vector<int>{0, -1}));
  // Projected columns are not gp-eval (§4.3: they can be re-attached
  // later), but they are "used".
  EXPECT_TRUE(info.eval_columns.empty());
  EXPECT_EQ(info.used_columns, (std::set<int>{0, 2}));
}

TEST_F(AnalysesTest, DistinctForcesItsColumnsIntoEval) {
  LogicalOpPtr pgq =
      Pgq(PlanBuilder::GroupScan("g", gs_).Project({"v"}).Distinct());
  PgqInfo info = Analyze(*pgq);
  EXPECT_EQ(info.eval_columns, (std::set<int>{1}));
}

TEST_F(AnalysesTest, CorrelatedConditionExcludedFromRange) {
  // Q2 shape: Filter(d >= avg) above Apply — condition references the
  // Apply output, fine; but a select with a correlated ref must not narrow
  // the range.
  auto inner = PlanBuilder::GroupScan("g", gs_).Select([](const Schema&) {
    // d < outer.d (correlated at depth 0, column 2)
    return Lt(std::make_unique<CorrelatedColumnRefExpr>(0, 2,
                                                        TypeId::kDouble, "d"),
              Lit(1e18));
  });
  LogicalOpPtr pgq =
      Pgq(PlanBuilder::GroupScan("g", gs_).Apply(std::move(inner)));
  PgqInfo info = Analyze(*pgq);
  EXPECT_EQ(info.covering_range, nullptr);  // widened to TRUE
  // The correlated reference contributes the outer column to eval.
  EXPECT_TRUE(info.eval_columns.count(2) > 0);
}

TEST_F(AnalysesTest, RemapPgqPrunesAndPreservesSemantics) {
  // PGQ uses only k and d; drop v from the group schema and verify the
  // rewritten PGQ computes the same result.
  auto pgq_builder = [&](const Schema& group_schema) {
    return PlanBuilder::GroupScan("g", group_schema)
        .Select([](const Schema& s) {
          return Gt(Col(s, "d"), Lit(100.0));
        })
        .ScalarAgg({{AggKind::kCount, "d", "c", false}});
  };
  LogicalOpPtr pgq = Pgq(pgq_builder(gs_));

  Schema pruned({{"k", TypeId::kInt64, "t"}, {"d", TypeId::kDouble, "t"}});
  auto remapped = RemapPgq(*pgq, "g", pruned, {0, -1, 1},
                           /*allow_dropping_passthrough=*/false);
  ASSERT_TRUE(remapped.ok()) << remapped.status().ToString();
  EXPECT_EQ(remapped->output_mapping, (std::vector<int>{0}));

  // Execute both against equivalent bindings.
  Rng rng(11);
  auto rows3 = tutil::RandomGroupedRows(&rng, 80, 5);
  std::vector<Row> rows2;
  for (const Row& r : rows3) rows2.push_back({r[0], r[2]});

  LoweringOptions opts;
  ASSIGN_OR_FAIL(PhysOpPtr p3, LowerPlan(*pgq, opts));
  ASSIGN_OR_FAIL(PhysOpPtr p2, LowerPlan(*remapped->plan, opts));

  ExecContext ctx;
  ctx.BindGroup("g", &gs_, &rows3);
  auto r3 = ExecuteToVector(p3.get(), &ctx);
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(ctx.UnbindGroup("g").ok());
  ctx.BindGroup("g", &pruned, &rows2);
  auto r2 = ExecuteToVector(p2.get(), &ctx);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(SameRowMultiset(r3->rows, r2->rows));
}

TEST_F(AnalysesTest, RemapPgqRejectsPruningEvalColumn) {
  LogicalOpPtr pgq = Pgq(PlanBuilder::GroupScan("g", gs_).Select(
      [](const Schema& s) { return Gt(Col(s, "v"), Lit(int64_t{5})); }));
  Schema pruned({{"k", TypeId::kInt64, "t"}, {"d", TypeId::kDouble, "t"}});
  auto remapped = RemapPgq(*pgq, "g", pruned, {0, -1, 1},
                           /*allow_dropping_passthrough=*/true);
  EXPECT_FALSE(remapped.ok());
}

TEST_F(AnalysesTest, RemapPgqDropsPassthroughProjectionWhenAllowed) {
  LogicalOpPtr pgq = Pgq(PlanBuilder::GroupScan("g", gs_).Project(
      {"k", "v", "d"}));
  Schema pruned({{"k", TypeId::kInt64, "t"}, {"d", TypeId::kDouble, "t"}});
  auto remapped = RemapPgq(*pgq, "g", pruned, {0, -1, 1},
                           /*allow_dropping_passthrough=*/true);
  ASSERT_TRUE(remapped.ok()) << remapped.status().ToString();
  EXPECT_EQ(remapped->output_mapping, (std::vector<int>{0, -1, 1}));
  EXPECT_EQ(remapped->dropped_group_source[1], 1);  // passed through old v
}

TEST_F(AnalysesTest, RemapPgqRefusesDroppingUnderDistinct) {
  LogicalOpPtr pgq = Pgq(
      PlanBuilder::GroupScan("g", gs_).Project({"k", "v"}).Distinct());
  Schema pruned({{"k", TypeId::kInt64, "t"}, {"d", TypeId::kDouble, "t"}});
  auto remapped = RemapPgq(*pgq, "g", pruned, {0, -1, 1},
                           /*allow_dropping_passthrough=*/true);
  EXPECT_FALSE(remapped.ok());
}

}  // namespace
}  // namespace gapply
