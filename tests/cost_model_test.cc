#include <gtest/gtest.h>

#include "src/optimizer/cost_model.h"
#include "src/plan/builder.h"
#include "src/tpch/tpch_gen.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;  // 10 suppliers, 200 parts, 800 partsupp
    ASSERT_TRUE(tpch::Generate(config, &catalog_).ok());
    ASSERT_TRUE(stats_.AnalyzeAll(catalog_).ok());
  }

  PlanEstimate Estimate(const LogicalOp& plan) {
    CostModel model(&catalog_, &stats_);
    Result<PlanEstimate> r = model.Estimate(plan);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : PlanEstimate{};
  }

  LogicalOpPtr Build(PlanBuilder b) {
    auto r = std::move(b).Build();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  Catalog catalog_;
  StatsManager stats_;
};

TEST_F(CostModelTest, ScanCardinalityFromStats) {
  auto plan = Build(PlanBuilder::Scan(catalog_, "partsupp"));
  PlanEstimate est = Estimate(*plan);
  EXPECT_DOUBLE_EQ(est.rows, 800);
  // NDV of ps_suppkey is the supplier count.
  EXPECT_DOUBLE_EQ(est.column_ndv[1], 10);
  EXPECT_NE(est.column_stats[1], nullptr);
}

TEST_F(CostModelTest, EqualitySelectivityUsesNdv) {
  auto plan = Build(PlanBuilder::Scan(catalog_, "partsupp")
                        .Select([](const Schema& s) {
                          return Eq(Col(s, "ps_suppkey"), Lit(int64_t{3}));
                        }));
  PlanEstimate est = Estimate(*plan);
  EXPECT_NEAR(est.rows, 800.0 / 10.0, 1.0);
}

TEST_F(CostModelTest, RangeSelectivityUsesHistogram) {
  // Prices at this scale run ~901..1100 roughly uniformly; a cutoff at the
  // three-quarter point should keep about a quarter of the rows.
  auto plan = Build(PlanBuilder::Scan(catalog_, "part")
                        .Select([](const Schema& s) {
                          return Gt(Col(s, "p_retailprice"), Lit(1050.0));
                        }));
  PlanEstimate est = Estimate(*plan);
  EXPECT_GT(est.rows, 200 * 0.15);
  EXPECT_LT(est.rows, 200 * 0.35);

  // Monotonicity: stricter cutoffs estimate fewer rows.
  double prev = 1e18;
  for (double cutoff : {950.0, 1000.0, 1050.0, 1090.0}) {
    auto p = Build(PlanBuilder::Scan(catalog_, "part")
                       .Select([&](const Schema& s) {
                         return Gt(Col(s, "p_retailprice"), Lit(cutoff));
                       }));
    const double rows = Estimate(*p).rows;
    EXPECT_LT(rows, prev) << "cutoff " << cutoff;
    prev = rows;
  }
}

TEST_F(CostModelTest, FkJoinCardinality) {
  auto plan = Build(PlanBuilder::Scan(catalog_, "partsupp")
                        .Join(PlanBuilder::Scan(catalog_, "part"),
                              {"ps_partkey"}, {"p_partkey"}));
  PlanEstimate est = Estimate(*plan);
  // |partsupp ⋈ part| = 800 (FK join): 800*200/max(200,200).
  EXPECT_NEAR(est.rows, 800, 1);
}

TEST_F(CostModelTest, GroupByCardinalityIsKeyNdv) {
  auto plan = Build(PlanBuilder::Scan(catalog_, "partsupp")
                        .GroupBy({"ps_suppkey"},
                                 {{AggKind::kCountStar, "", "c", false}}));
  EXPECT_NEAR(Estimate(*plan).rows, 10, 0.5);
}

TEST_F(CostModelTest, GApplyCostFollowsPaperFormula) {
  // cost(GApply) = cost(outer) + partition + #groups * cost(PGQ on one
  // average group): §4.4. #groups = NDV(gcols) = 10.
  auto outer = PlanBuilder::Scan(catalog_, "partsupp");
  const Schema gs = outer.schema();
  auto plan = Build(std::move(outer).GApply(
      {"ps_suppkey"}, "g",
      PlanBuilder::GroupScan("g", gs).ScalarAgg(
          {{AggKind::kAvg, "ps_supplycost", "a", false}})));
  PlanEstimate est = Estimate(*plan);
  // One row per group.
  EXPECT_NEAR(est.rows, 10, 0.5);
  // Cost must cover: outer scan (800) + partition (800) + 10 groups * ~160
  // (scan group of 80 rows + aggregate pass).
  EXPECT_GT(est.cost, 800 + 800);
  EXPECT_LT(est.cost, 800 + 800 + 10 * 400);
}

TEST_F(CostModelTest, UncorrelatedApplyCheaperThanCorrelated) {
  // Correlated: inner re-executed per outer row; uncorrelated: cached.
  auto uncorrelated = Build(PlanBuilder::Scan(catalog_, "supplier")
                                .Apply(PlanBuilder::Scan(catalog_, "nation")
                                           .ScalarAgg({{AggKind::kCountStar,
                                                        "", "c", false}})));

  auto nation = PlanBuilder::Scan(catalog_, "nation").Select(
      [](const Schema& s) {
        return Eq(Col(s, "n_nationkey"),
                  ExprPtr(std::make_unique<CorrelatedColumnRefExpr>(
                      0, 2, TypeId::kInt64, "s_nationkey")));
      });
  auto correlated = Build(
      PlanBuilder::Scan(catalog_, "supplier")
          .Apply(std::move(nation).ScalarAgg(
              {{AggKind::kCountStar, "", "c", false}})));

  EXPECT_LT(Estimate(*uncorrelated).cost, Estimate(*correlated).cost);
}

TEST_F(CostModelTest, SortMoreExpensiveThanScan) {
  auto scan = Build(PlanBuilder::Scan(catalog_, "partsupp"));
  auto sorted = Build(
      PlanBuilder::Scan(catalog_, "partsupp").OrderBy({"ps_suppkey"}));
  EXPECT_GT(Estimate(*sorted).cost, Estimate(*scan).cost);
}

TEST_F(CostModelTest, WorksWithoutStats) {
  CostModel model(&catalog_, nullptr);
  auto plan = Build(PlanBuilder::Scan(catalog_, "partsupp"));
  Result<PlanEstimate> est = model.Estimate(*plan);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->rows, 800);  // falls back to actual row count
}

TEST_F(CostModelTest, HistogramFractionBelow) {
  const TableStats* ts = stats_.Get("part");
  ASSERT_NE(ts, nullptr);
  const ColumnStats& price = ts->columns[5];
  EXPECT_DOUBLE_EQ(price.FractionBelow(0.0), 0.0);
  EXPECT_DOUBLE_EQ(price.FractionBelow(1e9), 1.0);
  const double mid = price.FractionBelow(1000.0);
  EXPECT_GT(mid, 0.3);
  EXPECT_LT(mid, 0.7);
  // Monotone.
  EXPECT_LE(price.FractionBelow(950.0), price.FractionBelow(1050.0));
}

}  // namespace
}  // namespace gapply
