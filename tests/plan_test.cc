#include <gtest/gtest.h>

#include <map>

#include "src/exec/lowering.h"
#include "src/plan/builder.h"
#include "src/plan/logical_plan.h"
#include "src/tpch/tpch_gen.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;  // 10 suppliers, 200 parts, 800 partsupp
    ASSERT_TRUE(tpch::Generate(config, &catalog_).ok());
  }

  QueryResult Execute(const LogicalOp& plan,
                      const LoweringOptions& opts = {}) {
    Result<PhysOpPtr> phys = LowerPlan(plan, opts);
    EXPECT_TRUE(phys.ok()) << phys.status().ToString();
    ExecContext ctx;
    Result<QueryResult> r = ExecuteToVector(phys->get(), &ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  Catalog catalog_;
};

TEST_F(PlanTest, ScanSelectProjectRoundTrip) {
  auto plan = PlanBuilder::Scan(catalog_, "part")
                  .Select([](const Schema& s) {
                    return Gt(Col(s, "p_retailprice"), Lit(1000.0));
                  })
                  .Project({"p_partkey", "p_name"})
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->output_schema().num_columns(), 2u);

  QueryResult r = Execute(**plan);
  size_t expected = 0;
  for (const Row& row : catalog_.FindTable("part")->rows()) {
    if (row[5].double_val() > 1000.0) ++expected;
  }
  EXPECT_GT(expected, 0u);
  EXPECT_EQ(r.rows.size(), expected);
}

TEST_F(PlanTest, BuilderLatchesFirstError) {
  auto plan = PlanBuilder::Scan(catalog_, "part")
                  .Project({"no_such_column"})
                  .Distinct()
                  .Build();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);

  auto plan2 = PlanBuilder::Scan(catalog_, "no_such_table").Build();
  EXPECT_FALSE(plan2.ok());
}

TEST_F(PlanTest, JoinMatchesManualCount) {
  auto plan = PlanBuilder::Scan(catalog_, "partsupp")
                  .Join(PlanBuilder::Scan(catalog_, "part"), {"ps_partkey"},
                        {"p_partkey"})
                  .Build();
  ASSERT_TRUE(plan.ok());
  QueryResult r = Execute(**plan);
  // Every partsupp row matches exactly one part.
  EXPECT_EQ(r.rows.size(), catalog_.FindTable("partsupp")->num_rows());
}

TEST_F(PlanTest, GroupByAggregates) {
  auto plan =
      PlanBuilder::Scan(catalog_, "partsupp")
          .GroupBy({"ps_suppkey"},
                   {{AggKind::kCountStar, "", "cnt", false},
                    {AggKind::kSum, "ps_availqty", "total_qty", false}})
          .Build();
  ASSERT_TRUE(plan.ok());
  QueryResult r = Execute(**plan);
  EXPECT_EQ(r.rows.size(), 10u);  // 10 suppliers, each supplies something
  int64_t total = 0;
  for (const Row& row : r.rows) total += row[1].int_val();
  EXPECT_EQ(total, 800);  // count(*) across groups covers every partsupp row
}

// The paper's query Q1 (§2) as a logical plan:
//   For each supplier: all (p_name, p_retailprice) pairs, plus the average
//   retail price, via a union-all per-group query under GApply.
TEST_F(PlanTest, PaperQ1ViaGApply) {
  auto outer = PlanBuilder::Scan(catalog_, "partsupp")
                   .Join(PlanBuilder::Scan(catalog_, "part"), {"ps_partkey"},
                         {"p_partkey"});
  const Schema group_schema = outer.schema();

  auto branch1 = PlanBuilder::GroupScan("g", group_schema)
                     .ProjectExprs(
                         [](const Schema& s) {
                           std::vector<ExprPtr> e;
                           e.push_back(Col(s, "p_name"));
                           e.push_back(Col(s, "p_retailprice"));
                           e.push_back(Lit(Value::Null()));
                           return e;
                         },
                         {"p_name", "p_retailprice", "avg_price"});
  auto branch2 =
      PlanBuilder::GroupScan("g", group_schema)
          .ScalarAgg({{AggKind::kAvg, "p_retailprice", "a", false}})
          .ProjectExprs(
              [](const Schema& s) {
                std::vector<ExprPtr> e;
                e.push_back(Lit(Value::Null()));
                e.push_back(Lit(Value::Null()));
                e.push_back(Col(s, "a"));
                return e;
              },
              {"p_name", "p_retailprice", "avg_price"});

  std::vector<PlanBuilder> branches;
  branches.push_back(std::move(branch1));
  branches.push_back(std::move(branch2));
  auto pgq = PlanBuilder::UnionAll(std::move(branches));

  auto plan = std::move(outer)
                  .GApply({"ps_suppkey"}, "g", std::move(pgq))
                  .Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  QueryResult r = Execute(**plan);
  // 800 partsupp rows + one avg row per supplier (10 suppliers).
  EXPECT_EQ(r.rows.size(), 810u);

  // Validate one supplier's average against direct computation.
  std::map<int64_t, std::pair<double, int>> sums;
  {
    const Table* partsupp = catalog_.FindTable("partsupp");
    for (const Row& ps : partsupp->rows()) {
      const int64_t sk = ps[1].int_val();
      const double price = tpch::RetailPrice(ps[0].int_val());
      sums[sk].first += price;
      sums[sk].second += 1;
    }
  }
  for (const Row& row : r.rows) {
    if (!row[3].is_null()) {  // the avg row for this supplier
      const int64_t sk = row[0].int_val();
      const double expect = sums[sk].first / sums[sk].second;
      EXPECT_NEAR(row[3].double_val(), expect, 1e-9) << "supplier " << sk;
    }
  }
}

TEST_F(PlanTest, CloneProducesEquivalentPlan) {
  auto outer = PlanBuilder::Scan(catalog_, "partsupp")
                   .Join(PlanBuilder::Scan(catalog_, "part"), {"ps_partkey"},
                         {"p_partkey"});
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs).ScalarAgg(
      {{AggKind::kAvg, "p_retailprice", "a", false}});
  auto plan =
      std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)).Build();
  ASSERT_TRUE(plan.ok());

  LogicalOpPtr clone = (*plan)->Clone();
  EXPECT_EQ(clone->DebugString(), (*plan)->DebugString());
  QueryResult r1 = Execute(**plan);
  QueryResult r2 = Execute(*clone);
  EXPECT_TRUE(SameRowMultiset(r1.rows, r2.rows));
}

TEST_F(PlanTest, DebugStringShowsPgqSection) {
  auto outer = PlanBuilder::Scan(catalog_, "partsupp");
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs).ScalarAgg(
      {{AggKind::kCountStar, "", "cnt", false}});
  auto plan =
      std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)).Build();
  ASSERT_TRUE(plan.ok());
  const std::string s = (*plan)->DebugString();
  EXPECT_NE(s.find("GApply"), std::string::npos);
  EXPECT_NE(s.find("[per-group query]"), std::string::npos);
  EXPECT_NE(s.find("GroupScan($g)"), std::string::npos);
}

TEST_F(PlanTest, LoweringHonorsForcedPartitionMode) {
  auto outer = PlanBuilder::Scan(catalog_, "partsupp");
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs).ScalarAgg(
      {{AggKind::kCountStar, "", "cnt", false}});
  auto plan = std::move(outer)
                  .GApply({"ps_suppkey"}, "g", std::move(pgq),
                          PartitionMode::kHash)
                  .Build();
  ASSERT_TRUE(plan.ok());
  LoweringOptions opts;
  opts.force_partition_mode = PartitionMode::kSort;
  Result<PhysOpPtr> phys = LowerPlan(**plan, opts);
  ASSERT_TRUE(phys.ok());
  EXPECT_NE((*phys)->DebugName().find("partition=sort"), std::string::npos);
}

TEST_F(PlanTest, StreamGroupByLoweringMatchesHash) {
  auto make_plan = [&]() {
    return PlanBuilder::Scan(catalog_, "partsupp")
        .GroupBy({"ps_suppkey"},
                 {{AggKind::kMax, "ps_supplycost", "m", false}})
        .Build();
  };
  auto p1 = make_plan();
  ASSERT_TRUE(p1.ok());
  LoweringOptions stream;
  stream.stream_group_by = true;
  QueryResult hash_result = Execute(**p1);
  QueryResult stream_result = Execute(**p1, stream);
  EXPECT_TRUE(SameRowMultiset(hash_result.rows, stream_result.rows));
}

}  // namespace
}  // namespace gapply
