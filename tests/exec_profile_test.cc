// Tests for the structured query profiler (DESIGN.md §12): golden rendering
// of the stable (non-timing) fields, the profile counter invariants that
// gapply_fuzz also asserts, the profile-on == profile-off differential, the
// zero-claim-worker counter-merge regression, and the EXPLAIN ANALYZE SQL
// surface.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/engine/database.h"
#include "src/exec/agg_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/profile.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RandomGroupedRows;

// scan -> filter -> scalar agg over a fixed 4-row table: every stable field
// of the rendering (names, row counts, structure) is deterministic.
std::unique_ptr<Table> SmallTable() {
  return MakeTable("t", GroupedSchema(),
                   {{Value::Int(1), Value::Int(10), Value::Double(1.0)},
                    {Value::Int(1), Value::Int(60), Value::Double(2.0)},
                    {Value::Int(2), Value::Int(70), Value::Double(3.0)},
                    {Value::Int(2), Value::Int(40), Value::Double(4.0)}});
}

PhysOpPtr SmallPlan(const Table* table) {
  auto scan = std::make_unique<TableScanOp>(table);
  const Schema s = scan->output_schema();
  auto filter = std::make_unique<FilterOp>(
      std::move(scan), Gt(Col(s, "v"), Lit(int64_t{50})));
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  return std::make_unique<ScalarAggOp>(std::move(filter), std::move(aggs));
}

TEST(ProfileRenderTest, GoldenStableFields) {
  auto table = SmallTable();
  PhysOpPtr plan = SmallPlan(table.get());
  ExecContext ctx;
  ctx.set_profiling(true);
  Result<QueryResult> result = ExecuteToVector(plan.get(), &ctx);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);

  ProfileRenderOptions options;
  options.show_timings = false;
  const std::string got = RenderProfileText(CollectProfile(*plan), options);
  const std::string golden =
      "ScalarAgg(count(*)) rows=1\n"
      "  Filter((v > 50)) rows=2\n"
      "    TableScan(t) rows=4\n";
  EXPECT_EQ(got, golden);
}

TEST(ProfileRenderTest, TimingsRenderedWhenRequested) {
  auto table = SmallTable();
  PhysOpPtr plan = SmallPlan(table.get());
  ExecContext ctx;
  ctx.set_profiling(true);
  Result<QueryResult> r = ExecuteToVector(plan.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const std::string text = RenderProfileText(CollectProfile(*plan));
  EXPECT_NE(text.find("[total="), std::string::npos);
  EXPECT_NE(text.find("self="), std::string::npos);
  EXPECT_NE(text.find("rows_in="), std::string::npos);
}

TEST(ProfileRenderTest, ProfilingOffLeavesCountersZero) {
  auto table = SmallTable();
  PhysOpPtr plan = SmallPlan(table.get());
  ExecContext ctx;  // profiling off
  Result<QueryResult> r = ExecuteToVector(plan.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ProfileNode node = CollectProfile(*plan);
  EXPECT_EQ(node.profile.rows_out, 0u);
  EXPECT_EQ(node.profile.opens, 0u);
  EXPECT_EQ(node.profile.cumulative_ns(), 0u);
}

TEST(ProfileInvariantTest, ValidatePassesOnRealExecution) {
  auto table = SmallTable();
  PhysOpPtr plan = SmallPlan(table.get());
  ExecContext ctx;
  ctx.set_profiling(true);
  Result<QueryResult> r = ExecuteToVector(plan.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ProfileNode node = CollectProfile(*plan);
  Status st = ValidateProfile(node);
  EXPECT_TRUE(st.ok()) << st.ToString();
  // rows_in is credited by the child's wrapper, independently of rows_out.
  ASSERT_EQ(node.children.size(), 1u);
  EXPECT_EQ(node.profile.rows_in, node.children[0].profile.rows_out);
}

TEST(ProfileInvariantTest, ValidateDetectsCorruptedRowsIn) {
  auto table = SmallTable();
  PhysOpPtr plan = SmallPlan(table.get());
  ExecContext ctx;
  ctx.set_profiling(true);
  Result<QueryResult> r = ExecuteToVector(plan.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ProfileNode node = CollectProfile(*plan);
  node.profile.rows_in += 7;  // simulate a lost/duplicated credit
  EXPECT_FALSE(ValidateProfile(node).ok());
}

// --------------------------------------------------------------------------
// Differential: profiling must never change results. DOP {1, 8} x batch
// size {1, 1024}, parallel GApply (bit-for-bit serial-identical output).
// Suite name intentionally matches the tsan test filter (GApply).
// --------------------------------------------------------------------------

PhysOpPtr GroupedGApply(const Table* table, size_t dop) {
  auto outer = std::make_unique<TableScanOp>(table);
  const Schema gs = outer->output_schema();
  auto scan = std::make_unique<GroupScanOp>("g", gs);
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  aggs.push_back(Sum(Col(gs, "v"), "sum_v"));
  aggs.push_back(Avg(Col(gs, "d"), "avg_d"));
  auto pgq = std::make_unique<ScalarAggOp>(std::move(scan), std::move(aggs));
  return std::make_unique<GApplyOp>(std::move(outer), std::vector<int>{0},
                                    "g", std::move(pgq),
                                    PartitionMode::kHash, dop);
}

TEST(GApplyProfileDifferentialTest, ProfileOnIsBitForBitIdentical) {
  Rng rng(42);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 600, 37));
  for (size_t dop : {size_t{1}, size_t{8}}) {
    for (size_t batch : {size_t{1}, size_t{1024}}) {
      PhysOpPtr off_plan = GroupedGApply(table.get(), dop);
      ExecContext off_ctx;
      off_ctx.set_batch_size(batch);
      Result<QueryResult> off = ExecuteToVector(off_plan.get(), &off_ctx);
      ASSERT_TRUE(off.ok()) << off.status().ToString();

      PhysOpPtr on_plan = GroupedGApply(table.get(), dop);
      ExecContext on_ctx;
      on_ctx.set_batch_size(batch);
      on_ctx.set_profiling(true);
      Result<QueryResult> on = ExecuteToVector(on_plan.get(), &on_ctx);
      ASSERT_TRUE(on.ok()) << on.status().ToString();

      EXPECT_TRUE(SameRowSequence(on->rows, off->rows))
          << "profiling changed output at dop=" << dop
          << " batch=" << batch;
      ProfileNode node = CollectProfile(*on_plan);
      Status st = ValidateProfile(node);
      EXPECT_TRUE(st.ok())
          << "dop=" << dop << " batch=" << batch << ": " << st.ToString();
      EXPECT_EQ(node.profile.rows_out, on->rows.size());
    }
  }
}

TEST(GApplyProfileDifferentialTest, PhaseAttributionRecorded) {
  Rng rng(7);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 200, 11));
  PhysOpPtr plan = GroupedGApply(table.get(), 4);
  ExecContext ctx;
  ctx.set_profiling(true);
  Result<QueryResult> r = ExecuteToVector(plan.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ProfileNode node = CollectProfile(*plan);
  bool saw_partition = false, saw_pgq = false;
  for (const auto& phase : node.profile.phases) {
    if (phase.first == "partition") saw_partition = true;
    if (phase.first == "per_group_query") saw_pgq = true;
  }
  EXPECT_TRUE(saw_partition);
  EXPECT_TRUE(saw_pgq);
  EXPECT_EQ(node.dop, 4u);
}

TEST(ExchangeProfileTest, MergedWorkersRelaxTimeNesting) {
  Rng rng(99);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 5000, 50));
  auto scan = std::make_unique<TableScanOp>(table.get());
  const Schema s = scan->output_schema();
  PhysOpPtr spine = std::make_unique<FilterOp>(
      std::move(scan), Gt(Col(s, "v"), Lit(int64_t{25})));
  auto exchange =
      std::make_unique<ExchangeOp>(std::move(spine), 4, /*morsel_rows=*/512);
  ExecContext ctx;
  ctx.set_profiling(true);
  Result<QueryResult> r = ExecuteToVector(exchange.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ProfileNode node = CollectProfile(*exchange);
  Status st = ValidateProfile(node);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(node.profile.rows_out, r->rows.size());
  // The segment template folded in per-worker clones.
  ASSERT_EQ(node.children.size(), 1u);
  EXPECT_GT(node.children[0].profile.workers_merged, 0u);
}

// --------------------------------------------------------------------------
// Regression: merging a worker that claimed zero groups must not erase the
// per-worker busy-time attribution (min would collapse to 0).
// --------------------------------------------------------------------------

TEST(CountersMergeTest, ZeroClaimWorkerIsSkipped) {
  ExecContext::Counters acc;
  ExecContext::Counters worker1;
  worker1.gapply_workers = 1;
  worker1.gapply_worker_busy_ns = 500;
  worker1.gapply_worker_busy_min_ns = 500;
  worker1.gapply_worker_busy_max_ns = 500;
  acc.MergeFrom(worker1);

  // A worker that raced to the group cursor and claimed nothing: all its
  // worker counters are zero. Folding it in naively would drag min to 0.
  ExecContext::Counters idle;
  acc.MergeFrom(idle);

  ExecContext::Counters worker2;
  worker2.gapply_workers = 1;
  worker2.gapply_worker_busy_ns = 900;
  worker2.gapply_worker_busy_min_ns = 900;
  worker2.gapply_worker_busy_max_ns = 900;
  acc.MergeFrom(worker2);

  EXPECT_EQ(acc.gapply_workers, 2u);
  EXPECT_EQ(acc.gapply_worker_busy_ns, 1400u);
  EXPECT_EQ(acc.gapply_worker_busy_min_ns, 500u);
  EXPECT_EQ(acc.gapply_worker_busy_max_ns, 900u);
}

TEST(CountersMergeTest, ParallelGApplyWithMoreWorkersThanGroups) {
  // End-to-end shape of the same bug: dop far above the group count, so
  // several workers finish with zero groups claimed.
  Rng rng(3);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 40, 2));
  PhysOpPtr plan = GroupedGApply(table.get(), 8);
  ExecContext ctx;
  Result<QueryResult> r = ExecuteToVector(plan.get(), &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& c = ctx.counters();
  ASSERT_GT(c.gapply_workers, 0u);
  EXPECT_LE(c.gapply_workers, 2u);  // only claiming workers report
  EXPECT_GT(c.gapply_worker_busy_min_ns, 0u);
  EXPECT_GE(c.gapply_worker_busy_max_ns, c.gapply_worker_busy_min_ns);
  EXPECT_GE(c.gapply_worker_busy_ns, c.gapply_worker_busy_max_ns);
}

// --------------------------------------------------------------------------
// EXPLAIN ANALYZE SQL surface.
// --------------------------------------------------------------------------

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;
    ASSERT_TRUE(db_.LoadTpch(config).ok());
  }

  static std::string Joined(const QueryResult& r) {
    std::string out;
    for (const Row& row : r.rows) {
      out += row[0].str_val();
      out += "\n";
    }
    return out;
  }

  Database db_;
};

const char* kGApplySql =
    "select gapply(select avg(p_retailprice) from g) "
    "from partsupp, part where ps_partkey = p_partkey "
    "group by ps_suppkey : g";

TEST_F(ExplainAnalyzeTest, TextTreeWithRuleTrace) {
  Result<QueryResult> r =
      db_.Query(std::string("explain analyze ") + kGApplySql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string text = Joined(*r);
  EXPECT_NE(text.find("rows="), std::string::npos);
  EXPECT_NE(text.find("[total="), std::string::npos);
  EXPECT_NE(text.find("rule trace"), std::string::npos);
  EXPECT_NE(text.find("result rows:"), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, JsonFormatRoundTrips) {
  Result<QueryResult> r = db_.Query(
      std::string("explain (analyze, format json) ") + kGApplySql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<JsonValue> json = ParseJson(Joined(*r));
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  const JsonValue* plan = json->Find("plan");
  ASSERT_NE(plan, nullptr);
  EXPECT_NE(plan->Find("op"), nullptr);
  EXPECT_NE(plan->Find("rows_out"), nullptr);
  EXPECT_NE(plan->Find("children"), nullptr);
  EXPECT_NE(json->Find("rules"), nullptr);
  const JsonValue* counters = json->Find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->Find("result_rows"), nullptr);
}

TEST_F(ExplainAnalyzeTest, PlainExplainStillWorks) {
  Result<QueryResult> r = db_.Query(std::string("explain ") + kGApplySql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->rows.empty());
  // No execution happened, so no timing block.
  EXPECT_EQ(Joined(*r).find("[total="), std::string::npos);
}

TEST_F(ExplainAnalyzeTest, JsonWithoutAnalyzeRejected) {
  Result<QueryResult> r =
      db_.Query(std::string("explain (format json) ") + kGApplySql);
  EXPECT_FALSE(r.ok());
}

TEST_F(ExplainAnalyzeTest, SetProfilePopulatesQueryStats) {
  ASSERT_TRUE(db_.Query("set profile = on").ok());
  QueryStats stats;
  Result<QueryResult> r = db_.Query(kGApplySql, QueryOptions{}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(stats.has_profile);
  EXPECT_EQ(stats.profile.profile.rows_out, r->rows.size());
  Status st = ValidateProfile(stats.profile);
  EXPECT_TRUE(st.ok()) << st.ToString();

  ASSERT_TRUE(db_.Query("set profile = off").ok());
  QueryStats off_stats;
  ASSERT_TRUE(db_.Query(kGApplySql, QueryOptions{}, &off_stats).ok());
  EXPECT_FALSE(off_stats.has_profile);
}

TEST_F(ExplainAnalyzeTest, ExplainAnalyzeMatchesPlainExecution) {
  Result<QueryResult> plain = db_.Query(kGApplySql);
  ASSERT_TRUE(plain.ok());
  Result<QueryResult> analyzed =
      db_.Query(std::string("explain analyze ") + kGApplySql);
  ASSERT_TRUE(analyzed.ok());
  const std::string text = Joined(*analyzed);
  const std::string want =
      "result rows: " + std::to_string(plain->rows.size());
  EXPECT_NE(text.find(want), std::string::npos) << text;
}

}  // namespace
}  // namespace gapply
