#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/expr/expr.h"

namespace gapply {
namespace {

TEST(StringUtilTest, ToLowerAndEqualsIgnoreCase) {
  EXPECT_EQ(ToLower("PartSupp_1"), "partsupp_1");
  EXPECT_TRUE(EqualsIgnoreCase("GApply", "gapply"));
  EXPECT_FALSE(EqualsIgnoreCase("gapply", "gappl"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringUtilTest, JoinAndRepeat) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("x", 0), "");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) {
    if (a2.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntInRangeAndCoversDomain) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.UniformInt(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(RngTest, UniformDoubleAndBernoulli) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.UniformDouble(1.0, 2.0);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 2.0);
  }
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 1000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_GT(hits, 200);
  EXPECT_LT(hits, 400);
}

TEST(RngTest, RandomWordShapeAndLength) {
  Rng rng(5);
  const std::string w = rng.RandomWord(12);
  ASSERT_EQ(w.size(), 12u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(ExprUtilTest, SplitAndCombineConjuncts) {
  Schema s({{"a", TypeId::kInt64, "t"}, {"b", TypeId::kInt64, "t"}});
  ExprPtr pred = And(And(Gt(Col(s, "a"), Lit(int64_t{1})),
                         Lt(Col(s, "b"), Lit(int64_t{5}))),
                     Eq(Col(s, "a"), Col(s, "b")));
  std::vector<ExprPtr> conjuncts = SplitConjuncts(std::move(pred));
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[0]->ToString(), "(a > 1)");
  EXPECT_EQ(conjuncts[2]->ToString(), "(a = b)");

  ExprPtr combined = CombineConjuncts(std::move(conjuncts));
  ASSERT_NE(combined, nullptr);
  EXPECT_EQ(combined->ToString(), "(((a > 1) and (b < 5)) and (a = b))");
  EXPECT_EQ(CombineConjuncts({}), nullptr);
}

TEST(ExprUtilTest, RemapColumnsRewritesIndexes) {
  Schema s({{"a", TypeId::kInt64, "t"},
            {"b", TypeId::kInt64, "t"},
            {"c", TypeId::kInt64, "t"}});
  ExprPtr e = Gt(Col(s, "c"), Col(s, "a"));
  // Drop column b: c moves from 2 to 1.
  ASSERT_TRUE(e->RemapColumns({0, -1, 1}).ok());
  std::set<int> used;
  e->CollectColumns(&used);
  EXPECT_EQ(used, (std::set<int>{0, 1}));
  // Remapping an expression that references the dropped column fails.
  ExprPtr bad = Col(s, "b");
  EXPECT_FALSE(bad->RemapColumns({0, -1, 1}).ok());
}

TEST(ExprUtilTest, StructuralEqualityDistinguishesLiterals) {
  Schema s({{"a", TypeId::kInt64, "t"}});
  ExprPtr e1 = Gt(Col(s, "a"), Lit(int64_t{5}));
  ExprPtr e2 = Gt(Col(s, "a"), Lit(int64_t{5}));
  ExprPtr e3 = Gt(Col(s, "a"), Lit(int64_t{6}));
  ExprPtr e4 = Ge(Col(s, "a"), Lit(int64_t{5}));
  EXPECT_TRUE(e1->StructurallyEquals(*e2));
  EXPECT_FALSE(e1->StructurallyEquals(*e3));
  EXPECT_FALSE(e1->StructurallyEquals(*e4));
}

}  // namespace
}  // namespace gapply
