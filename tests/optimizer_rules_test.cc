#include <gtest/gtest.h>

#include <algorithm>

#include "src/exec/lowering.h"
#include "src/optimizer/optimizer.h"
#include "src/plan/builder.h"
#include "src/tpch/tpch_gen.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

/// Fixture providing TPC-H data + helpers to run a plan before/after a
/// single rule and assert semantic equivalence.
class RuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.001;  // 10 suppliers, 200 parts, 800 partsupp
    ASSERT_TRUE(tpch::Generate(config, &catalog_).ok());
    ASSERT_TRUE(stats_.AnalyzeAll(catalog_).ok());
  }

  QueryResult Execute(const LogicalOp& plan) {
    Result<PhysOpPtr> phys = LowerPlan(plan);
    EXPECT_TRUE(phys.ok()) << phys.status().ToString();
    ExecContext ctx;
    Result<QueryResult> r = ExecuteToVector(phys->get(), &ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : QueryResult{};
  }

  /// Optimizes a clone of `plan` with `options`; asserts the result is
  /// multiset-equal to the original; returns the optimized plan.
  LogicalOpPtr CheckEquivalent(const LogicalOp& plan,
                               Optimizer::Options options,
                               std::vector<std::string>* fired = nullptr) {
    Optimizer optimizer(&catalog_, &stats_, options);
    Result<LogicalOpPtr> optimized = optimizer.Optimize(plan.Clone());
    EXPECT_TRUE(optimized.ok()) << optimized.status().ToString();
    if (!optimized.ok()) return nullptr;
    if (fired != nullptr) *fired = optimizer.fired_rules();
    QueryResult before = Execute(plan);
    QueryResult after = Execute(**optimized);
    EXPECT_TRUE(SameRowMultiset(before.rows, after.rows))
        << "rule broke semantics.\nBefore:\n"
        << plan.DebugString() << "After:\n"
        << (*optimized)->DebugString();
    return std::move(*optimized);
  }

  /// The Q2-style outer query: partsupp ⋈ part.
  PlanBuilder PartsuppPart() {
    return PlanBuilder::Scan(catalog_, "partsupp")
        .Join(PlanBuilder::Scan(catalog_, "part"), {"ps_partkey"},
              {"p_partkey"});
  }

  LogicalOpPtr Build(PlanBuilder b) {
    auto r = std::move(b).Build();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  static bool Fired(const std::vector<std::string>& fired,
                    const std::string& rule) {
    return std::find(fired.begin(), fired.end(), rule) != fired.end();
  }

  Catalog catalog_;
  StatsManager stats_;
};

Optimizer::Options Only(bool Optimizer::Options::* flag) {
  Optimizer::Options o = Optimizer::Options::AllDisabled();
  o.*flag = true;
  return o;
}

TEST_F(RuleTest, PushSelectIntoPgq) {
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto plan = Build(
      std::move(outer)
          .GApply({"ps_suppkey"}, "g",
                  PlanBuilder::GroupScan("g", gs).ScalarAgg(
                      {{AggKind::kAvg, "p_retailprice", "avg_p", false},
                       {AggKind::kCountStar, "", "cnt", false}}))
          // Predicate on a PGQ output column (avg_p), not on the gcol.
          .Select([](const Schema& s) {
            return Gt(Col(s, "avg_p"), Lit(950.0));
          }));
  ASSERT_NE(plan, nullptr);

  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::push_select_into_pgq), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "PushSelectIntoPGQ")) << optimized->DebugString();
  // The Select should now live inside the per-group query.
  EXPECT_EQ(optimized->type(), LogicalOpType::kGApply);
}

TEST_F(RuleTest, PushSelectIntoPgqDoesNotFireOnGroupingColumnPredicate) {
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto plan = Build(std::move(outer)
                        .GApply({"ps_suppkey"}, "g",
                                PlanBuilder::GroupScan("g", gs).ScalarAgg(
                                    {{AggKind::kCountStar, "", "c", false}}))
                        .Select([](const Schema& s) {
                          return Gt(Col(s, "ps_suppkey"), Lit(int64_t{5}));
                        }));
  std::vector<std::string> fired;
  CheckEquivalent(*plan, Only(&Optimizer::Options::push_select_into_pgq),
                  &fired);
  EXPECT_FALSE(Fired(fired, "PushSelectIntoPGQ"));
}

TEST_F(RuleTest, PushProjectIntoPgq) {
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  // PGQ returns the whole group; the outer projection keeps the gcol plus
  // two group columns → the projection moves inside. (Column 0 is the
  // grouping-column copy; an unqualified name would be ambiguous with the
  // PGQ's pass-through of the same column.)
  auto plan = Build(std::move(outer)
                        .GApply({"ps_suppkey"}, "g",
                                PlanBuilder::GroupScan("g", gs))
                        .ProjectExprs(
                            [](const Schema& s) {
                              std::vector<ExprPtr> e;
                              e.push_back(Col(s, 0));
                              e.push_back(Col(s, "p_name"));
                              e.push_back(Col(s, "p_retailprice"));
                              return e;
                            },
                            {"ps_suppkey", "p_name", "p_retailprice"}));
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::push_project_into_pgq), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "PushProjectIntoPGQ"));
}

TEST_F(RuleTest, ProjectionBeforeGApplyPrunesOuterColumns) {
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();  // 10 columns
  // PGQ touches only p_retailprice; gcol is ps_suppkey → 8 columns prunable.
  auto plan = Build(
      std::move(outer).GApply(
          {"ps_suppkey"}, "g",
          PlanBuilder::GroupScan("g", gs).ScalarAgg(
              {{AggKind::kAvg, "p_retailprice", "avg_p", false}})));
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::projection_before_gapply), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "ProjectionBeforeGApply"));
  ASSERT_EQ(optimized->type(), LogicalOpType::kGApply);
  const auto* ga = static_cast<const LogicalGApply*>(optimized.get());
  EXPECT_EQ(ga->outer()->output_schema().num_columns(), 2u)
      << optimized->DebugString();
  EXPECT_EQ(ga->outer()->type(), LogicalOpType::kProject);
}

TEST_F(RuleTest, SelectionBeforeGApplyPushesCoveringRange) {
  // Figure 3: for each supplier, parts of brand A priced above the average
  // price of parts of brand B. Covering range: brand=A OR brand=B.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();

  auto avg_b = PlanBuilder::GroupScan("g", gs)
                   .Select([](const Schema& s) {
                     return Eq(Col(s, "p_brand"), Lit("Brand#22"));
                   })
                   .ScalarAgg({{AggKind::kAvg, "p_retailprice", "avg_b",
                                false}});
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Select([](const Schema& s) {
                   return Eq(Col(s, "p_brand"), Lit("Brand#11"));
                 })
                 .Apply(std::move(avg_b))
                 .Select([](const Schema& s) {
                   return Gt(Col(s, "p_retailprice"), Col(s, "avg_b"));
                 })
                 .Project({"p_name", "p_retailprice"});
  auto plan =
      Build(std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
  ASSERT_NE(plan, nullptr);

  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::selection_before_gapply), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "SelectionBeforeGApply"))
      << optimized->DebugString();
  // The outer side must now contain the disjunctive brand filter.
  const std::string s = optimized->DebugString();
  EXPECT_NE(s.find("Brand#11"), std::string::npos);
  EXPECT_NE(s.find("or"), std::string::npos);
}

TEST_F(RuleTest, SelectionBeforeGApplyBlockedWithoutEmptyOnEmpty) {
  // PGQ = count over brand-A rows: not emptyOnEmpty (count of an empty
  // group is a row), so Theorem 1 does not license the push.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Select([](const Schema& s) {
                   return Eq(Col(s, "p_brand"), Lit("Brand#11"));
                 })
                 .ScalarAgg({{AggKind::kCountStar, "", "c", false}});
  auto plan =
      Build(std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
  std::vector<std::string> fired;
  CheckEquivalent(*plan, Only(&Optimizer::Options::selection_before_gapply),
                  &fired);
  EXPECT_FALSE(Fired(fired, "SelectionBeforeGApply"));
}

TEST_F(RuleTest, SelectionEliminatedFromPgqAfterPush) {
  // Single-branch case: PGQ = σ_brandA(g) (identity otherwise). After the
  // push the per-group selection is gone and the outer has it.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs).Select([](const Schema& s) {
    return Eq(Col(s, "p_brand"), Lit("Brand#11"));
  });
  auto plan =
      Build(std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::selection_before_gapply), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "SelectionBeforeGApply"));
  ASSERT_EQ(optimized->type(), LogicalOpType::kGApply);
  const auto* ga = static_cast<const LogicalGApply*>(optimized.get());
  // PGQ reduced to the bare group scan; outer gained the selection.
  EXPECT_EQ(ga->pgq()->type(), LogicalOpType::kGroupScan)
      << optimized->DebugString();
  EXPECT_EQ(ga->outer()->type(), LogicalOpType::kSelect);
}

TEST_F(RuleTest, GApplyToGroupByAggregateVariant) {
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto plan = Build(std::move(outer).GApply(
      {"ps_suppkey"}, "g",
      PlanBuilder::GroupScan("g", gs).ScalarAgg(
          {{AggKind::kAvg, "p_retailprice", "avg_p", false},
           {AggKind::kMax, "p_size", "max_size", false}})));
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::gapply_to_groupby), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "GApplyToGroupBy"));
  EXPECT_EQ(optimized->type(), LogicalOpType::kGroupBy);
}

TEST_F(RuleTest, GApplyToGroupByGroupbyVariant) {
  // PGQ groups the group by p_size: GApply(C) + GroupBy(B) = GroupBy(C∪B).
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto plan = Build(std::move(outer).GApply(
      {"ps_suppkey"}, "g",
      PlanBuilder::GroupScan("g", gs).GroupBy(
          {"p_size"}, {{AggKind::kAvg, "p_retailprice", "a", false}})));
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::gapply_to_groupby), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "GApplyToGroupBy"));
  ASSERT_EQ(optimized->type(), LogicalOpType::kGroupBy);
  EXPECT_EQ(static_cast<const LogicalGroupBy*>(optimized.get())
                ->keys()
                .size(),
            2u);
}

// Builds the paper's §4.2 exists query: suppliers supplying some part with
// p_retailprice > cutoff, returning whole groups.
LogicalOpPtr ExistsSelectionPlan(RuleTest* t, PlanBuilder outer,
                                 double cutoff) {
  const Schema gs = outer.schema();
  auto probe = PlanBuilder::GroupScan("g", gs)
                   .Select([&](const Schema& s) {
                     return Gt(Col(s, "p_retailprice"), Lit(cutoff));
                   })
                   .Exists();
  auto pgq = PlanBuilder::GroupScan("g", gs).Apply(std::move(probe));
  auto r = std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq))
               .Build();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST_F(RuleTest, GroupSelectionExistsFiresWhenForced) {
  auto plan = ExistsSelectionPlan(this, PartsuppPart(), 1090.0);
  ASSERT_NE(plan, nullptr);
  Optimizer::Options o = Only(&Optimizer::Options::group_selection_exists);
  o.cost_gate = false;
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(*plan, o, &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "GroupSelectionExists"));
  // Rewrite shape: Project(Join(Distinct(π(σ(T))), T)).
  ASSERT_EQ(optimized->type(), LogicalOpType::kProject)
      << optimized->DebugString();
  EXPECT_EQ(optimized->child(0)->type(), LogicalOpType::kJoin);
}

TEST_F(RuleTest, GroupSelectionExistsCostGateRejectsUnselectivePredicate) {
  // Nearly every supplier has a part above 900 (min retail price ≈ 901):
  // reconstructing groups via an extra join cannot win.
  auto plan = ExistsSelectionPlan(this, PartsuppPart(), 100.0);
  ASSERT_NE(plan, nullptr);
  Optimizer::Options o = Only(&Optimizer::Options::group_selection_exists);
  o.cost_gate = true;
  std::vector<std::string> fired;
  CheckEquivalent(*plan, o, &fired);
  EXPECT_FALSE(Fired(fired, "GroupSelectionExists"));
}

TEST_F(RuleTest, GroupSelectionAggregate) {
  // §4.2: suppliers whose avg part price exceeds a cutoff, returning whole
  // groups.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto probe = PlanBuilder::GroupScan("g", gs)
                   .ScalarAgg({{AggKind::kAvg, "p_retailprice", "avg_p",
                                false}})
                   .Select([](const Schema& s) {
                     return Gt(Col(s, "avg_p"), Lit(1000.0));
                   })
                   .Exists();
  auto pgq = PlanBuilder::GroupScan("g", gs).Apply(std::move(probe));
  auto plan =
      Build(std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
  ASSERT_NE(plan, nullptr);

  Optimizer::Options o =
      Only(&Optimizer::Options::group_selection_aggregate);
  o.cost_gate = false;
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(*plan, o, &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "GroupSelectionAggregate"));
  const std::string s = optimized->DebugString();
  EXPECT_NE(s.find("GroupBy"), std::string::npos);
  EXPECT_EQ(s.find("GApply"), std::string::npos);
}

TEST_F(RuleTest, InvariantGroupingPushesGApplyBelowFkJoin) {
  // Figure 7: group over partsupp ⋈ supplier (FK join on ps_suppkey); the
  // PGQ needs only partsupp columns plus a pass-through of s_name.
  auto outer =
      PlanBuilder::Scan(catalog_, "partsupp")
          .Join(PlanBuilder::Scan(catalog_, "supplier"), {"ps_suppkey"},
                {"s_suppkey"});
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Select([](const Schema& s) {
                   return Gt(Col(s, "ps_availqty"), Lit(int64_t{5000}));
                 })
                 .Project({"s_name", "ps_availqty"});
  auto plan =
      Build(std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
  ASSERT_NE(plan, nullptr);

  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::invariant_grouping), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "InvariantGrouping")) << plan->DebugString();
  // Shape: Project(Join(GApply(partsupp, ...), supplier)).
  ASSERT_EQ(optimized->type(), LogicalOpType::kProject);
  const LogicalOp* join = optimized->child(0);
  ASSERT_EQ(join->type(), LogicalOpType::kJoin);
  EXPECT_EQ(join->child(0)->type(), LogicalOpType::kGApply);
}

TEST_F(RuleTest, InvariantGroupingRequiresForeignKeyJoin) {
  // Join on a non-key column pair: no FK, rule must not fire.
  auto outer = PlanBuilder::Scan(catalog_, "partsupp")
                   .Join(PlanBuilder::Scan(catalog_, "part"),
                         {"ps_availqty"}, {"p_size"});
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Select([](const Schema& s) {
                   return Gt(Col(s, "ps_supplycost"), Lit(10.0));
                 })
                 .Project({"ps_partkey"});
  auto plan =
      Build(std::move(outer).GApply({"ps_availqty"}, "g", std::move(pgq)));
  std::vector<std::string> fired;
  CheckEquivalent(*plan, Only(&Optimizer::Options::invariant_grouping),
                  &fired);
  EXPECT_FALSE(Fired(fired, "InvariantGrouping"));
}

TEST_F(RuleTest, InvariantGroupingRequiresEvalColumnsOnLeft) {
  // The PGQ filters on s_acctbal (right side): gp-eval not at n → no push.
  auto outer =
      PlanBuilder::Scan(catalog_, "partsupp")
          .Join(PlanBuilder::Scan(catalog_, "supplier"), {"ps_suppkey"},
                {"s_suppkey"});
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Select([](const Schema& s) {
                   return Gt(Col(s, "s_acctbal"), Lit(0.0));
                 })
                 .Project({"ps_availqty"});
  auto plan =
      Build(std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
  std::vector<std::string> fired;
  CheckEquivalent(*plan, Only(&Optimizer::Options::invariant_grouping),
                  &fired);
  EXPECT_FALSE(Fired(fired, "InvariantGrouping"));
}

TEST_F(RuleTest, FullOptimizerPreservesSemanticsOnPaperQ2) {
  // Q2: per supplier, count parts priced above/below the group average.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto make_branch = [&](bool above) {
    auto avg = PlanBuilder::GroupScan("g", gs).ScalarAgg(
        {{AggKind::kAvg, "p_retailprice", "avg_p", false}});
    return PlanBuilder::GroupScan("g", gs)
        .Apply(std::move(avg))
        .Select([&](const Schema& s) {
          return above ? Ge(Col(s, "p_retailprice"), Col(s, "avg_p"))
                       : Lt(Col(s, "p_retailprice"), Col(s, "avg_p"));
        })
        .ScalarAgg({{AggKind::kCountStar, "", "c", false}})
        .ProjectExprs(
            [&](const Schema& s) {
              std::vector<ExprPtr> e;
              if (above) {
                e.push_back(Col(s, "c"));
                e.push_back(Lit(Value::Null()));
              } else {
                e.push_back(Lit(Value::Null()));
                e.push_back(Col(s, "c"));
              }
              return e;
            },
            {"count_above", "count_below"});
  };
  std::vector<PlanBuilder> branches;
  branches.push_back(make_branch(true));
  branches.push_back(make_branch(false));
  auto plan = Build(std::move(outer).GApply(
      {"ps_suppkey"}, "g", PlanBuilder::UnionAll(std::move(branches))));
  ASSERT_NE(plan, nullptr);

  Optimizer::Options all;  // everything on, cost-gated
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(*plan, all, &fired);
  ASSERT_NE(optimized, nullptr);
  // The projection rule should fire (Q2 touches few of the 10 columns).
  EXPECT_TRUE(Fired(fired, "ProjectionBeforeGApply")) << plan->DebugString();
}

TEST_F(RuleTest, OptimizerTerminatesOnAllTestPlans) {
  // Degenerate: optimize an already-optimized plan again; no rule may fire.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto plan = Build(std::move(outer).GApply(
      {"ps_suppkey"}, "g",
      PlanBuilder::GroupScan("g", gs).ScalarAgg(
          {{AggKind::kAvg, "p_retailprice", "a", false}})));
  Optimizer::Options all;
  Optimizer first(&catalog_, &stats_, all);
  ASSIGN_OR_FAIL(LogicalOpPtr optimized, first.Optimize(plan->Clone()));
  Optimizer second(&catalog_, &stats_, all);
  ASSIGN_OR_FAIL(LogicalOpPtr again, second.Optimize(optimized->Clone()));
  EXPECT_TRUE(second.fired_rules().empty())
      << "rules refired on a fixed point: " << again->DebugString();
}

TEST_F(RuleTest, ClassicPushdownMovesSelectionBelowJoin) {
  auto plan = Build(PartsuppPart().Select([](const Schema& s) {
    return Gt(Col(s, "p_retailprice"), Lit(1000.0));
  }));
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(
      *plan, Only(&Optimizer::Options::classic_pushdown), &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "PushSelectBelowJoin"));
  ASSERT_EQ(optimized->type(), LogicalOpType::kJoin);
  EXPECT_EQ(optimized->child(1)->type(), LogicalOpType::kSelect);
}

// ---------------------------------------------------------------------------
// Rule composition. Rules never fire in isolation in a real optimization:
// each rewrite hands the next rule a plan it did not anticipate, and the
// precondition analyses (empty-on-empty, gp-strong, FK metadata) must be
// recomputed against that rewritten plan, not remembered from the original.
// These tests stack rules pairwise and assert both semantics and the
// fire/no-fire decisions the re-checked preconditions imply.
// ---------------------------------------------------------------------------

class RuleCompositionTest : public RuleTest {
 protected:
  /// A Figure-3-flavored plan that gives most rules something to chew on:
  /// selective PGQ branches (SelectionBeforeGApply / PushSelectIntoPGQ),
  /// narrow column use over a 10-column outer (ProjectionBeforeGApply),
  /// a join under the GApply (classic pushdown, InvariantGrouping
  /// candidates), and a post-GApply selection.
  LogicalOpPtr RichPlan() {
    auto outer = PartsuppPart();
    const Schema gs = outer.schema();
    auto avg_b = PlanBuilder::GroupScan("g", gs)
                     .Select([](const Schema& s) {
                       return Eq(Col(s, "p_brand"), Lit("Brand#22"));
                     })
                     .ScalarAgg(
                         {{AggKind::kAvg, "p_retailprice", "avg_b", false}});
    auto pgq = PlanBuilder::GroupScan("g", gs)
                   .Select([](const Schema& s) {
                     return Eq(Col(s, "p_brand"), Lit("Brand#11"));
                   })
                   .Apply(std::move(avg_b))
                   .Select([](const Schema& s) {
                     return Gt(Col(s, "p_retailprice"), Col(s, "avg_b"));
                   })
                   .Project({"p_name", "p_retailprice"});
    return Build(std::move(outer)
                     .GApply({"ps_suppkey"}, "g", std::move(pgq))
                     .Select([](const Schema& s) {
                       return Gt(Col(s, "p_retailprice"), Lit(905.0));
                     }));
  }

  static Optimizer::Options OnlyToggle(
      const Optimizer::Options::Toggle& toggle) {
    Optimizer::Options o = Optimizer::Options::AllDisabled();
    o.*(toggle.flag) = true;
    o.cost_gate = false;  // composition coverage, not cost policy
    return o;
  }
};

TEST_F(RuleCompositionTest, EveryOrderedRulePairPreservesSemantics) {
  // Apply rule A to a fixpoint, then rule B to A's output — every ordered
  // pair. B runs on plans A rewrote, so B's preconditions are exercised
  // against shapes the original plan never had.
  auto plan = RichPlan();
  ASSERT_NE(plan, nullptr);
  const QueryResult expected = Execute(*plan);
  ASSERT_FALSE(expected.rows.empty());

  const auto& toggles = Optimizer::Options::RuleToggles();
  ASSERT_GE(toggles.size(), 9u);
  for (const auto& a : toggles) {
    Optimizer first(&catalog_, &stats_, OnlyToggle(a));
    ASSIGN_OR_FAIL(LogicalOpPtr after_a, first.Optimize(plan->Clone()));
    for (const auto& b : toggles) {
      Optimizer second(&catalog_, &stats_, OnlyToggle(b));
      ASSIGN_OR_FAIL(LogicalOpPtr after_ab,
                     second.Optimize(after_a->Clone()));
      const QueryResult got = Execute(*after_ab);
      EXPECT_TRUE(SameRowMultiset(got.rows, expected.rows))
          << a.name << " then " << b.name << " broke semantics.\nAfter "
          << a.name << ":\n" << after_a->DebugString() << "After " << b.name
          << ":\n" << after_ab->DebugString();
    }
  }
}

TEST_F(RuleCompositionTest, EveryRulePairTogetherPreservesSemantics) {
  // Both rules enabled in one optimizer: the rule loop interleaves them to
  // a joint fixpoint, re-running the analyses between firings.
  auto plan = RichPlan();
  ASSERT_NE(plan, nullptr);
  const QueryResult expected = Execute(*plan);

  const auto& toggles = Optimizer::Options::RuleToggles();
  for (size_t i = 0; i < toggles.size(); ++i) {
    for (size_t j = i + 1; j < toggles.size(); ++j) {
      Optimizer::Options o = OnlyToggle(toggles[i]);
      o.*(toggles[j].flag) = true;
      Optimizer optimizer(&catalog_, &stats_, o);
      ASSIGN_OR_FAIL(LogicalOpPtr optimized,
                     optimizer.Optimize(plan->Clone()));
      const QueryResult got = Execute(*optimized);
      EXPECT_TRUE(SameRowMultiset(got.rows, expected.rows))
          << toggles[i].name << " + " << toggles[j].name
          << " broke semantics.\nResult:\n" << optimized->DebugString();
    }
  }
}

TEST_F(RuleCompositionTest, SelectionThenGApplyToGroupByStacks) {
  // The PGQ is σ_brand(GroupBy): empty-on-empty, so SelectionBeforeGApply
  // may hoist the brand filter; the residual GApply(GroupBy) then collapses
  // via GApplyToGroupBy. The second rewrite is only licensed because
  // gp-strong/eval analyses are recomputed on the hoisted plan.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Select([](const Schema& s) {
                   return Eq(Col(s, "p_brand"), Lit("Brand#11"));
                 })
                 .GroupBy({"p_size"},
                          {{AggKind::kAvg, "p_retailprice", "a", false}});
  auto plan =
      Build(std::move(outer).GApply({"ps_suppkey"}, "g", std::move(pgq)));
  ASSERT_NE(plan, nullptr);

  Optimizer::Options o = Optimizer::Options::AllDisabled();
  o.selection_before_gapply = true;
  o.gapply_to_groupby = true;
  o.cost_gate = false;
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(*plan, o, &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "SelectionBeforeGApply"))
      << optimized->DebugString();
  EXPECT_TRUE(Fired(fired, "GApplyToGroupBy")) << optimized->DebugString();
  EXPECT_EQ(optimized->DebugString().find("GApply"), std::string::npos)
      << optimized->DebugString();
}

TEST_F(RuleCompositionTest, PushSelectThenSelectionBlockedByEmptyOnEmpty) {
  // PushSelectIntoPGQ moves σ_{c>0} inside, so the PGQ becomes
  // Select(ScalarAgg(...)): a leading selection SelectionBeforeGApply would
  // love to hoist — but the re-checked Theorem-1 precondition sees the
  // count underneath (a row on empty groups) and must keep blocking it.
  auto outer = PartsuppPart();
  const Schema gs = outer.schema();
  auto pgq = PlanBuilder::GroupScan("g", gs)
                 .Select([](const Schema& s) {
                   return Eq(Col(s, "p_brand"), Lit("Brand#11"));
                 })
                 .ScalarAgg({{AggKind::kCountStar, "", "c", false}});
  auto plan = Build(std::move(outer)
                        .GApply({"ps_suppkey"}, "g", std::move(pgq))
                        .Select([](const Schema& s) {
                          return Gt(Col(s, "c"), Lit(int64_t{0}));
                        }));
  ASSERT_NE(plan, nullptr);

  Optimizer::Options o = Optimizer::Options::AllDisabled();
  o.push_select_into_pgq = true;
  o.selection_before_gapply = true;
  o.cost_gate = false;
  std::vector<std::string> fired;
  LogicalOpPtr optimized = CheckEquivalent(*plan, o, &fired);
  ASSERT_NE(optimized, nullptr);
  EXPECT_TRUE(Fired(fired, "PushSelectIntoPGQ")) << optimized->DebugString();
  EXPECT_FALSE(Fired(fired, "SelectionBeforeGApply"))
      << optimized->DebugString();
}

}  // namespace
}  // namespace gapply
