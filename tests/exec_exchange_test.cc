#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/engine/database.h"
#include "src/exec/agg_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"
#include "tests/differential_util.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

using tutil::GroupedSchema;
using tutil::MakeTable;
using tutil::RandomGroupedRows;

// The parallel paths promise bit-for-bit the same output as serial:
// tutil::ExpectSameSequence (ordered, element-wise row equality), not just
// the same multiset.

Result<QueryResult> RunWithBatch(PhysOp* root, size_t batch_size) {
  ExecContext ctx;
  ctx.set_batch_size(batch_size);
  return ExecuteToVector(root, &ctx);
}

// ---------------------------------------------------------------------------
// Streaming-segment shapes driven through ExchangeOp directly.
// ---------------------------------------------------------------------------

using SpineBuilder = std::function<PhysOpPtr(const Table*, const Table*)>;

PhysOpPtr ScanSpine(const Table* big, const Table* /*dim*/) {
  return std::make_unique<TableScanOp>(big);
}

PhysOpPtr FilterProjectSpine(const Table* big, const Table* /*dim*/) {
  auto scan = std::make_unique<TableScanOp>(big);
  const Schema s = scan->output_schema();
  auto filter = std::make_unique<FilterOp>(
      std::move(scan),
      Binary(BinaryOp::kGe, Col(s, "v"), Lit(int64_t{25})));
  std::vector<ExprPtr> exprs;
  exprs.push_back(Col(s, "k"));
  exprs.push_back(Binary(BinaryOp::kMultiply, Col(s, "v"), Lit(int64_t{3})));
  auto proj = ProjectOp::Make(std::move(filter), std::move(exprs),
                              std::vector<std::string>{"k", "v3"});
  EXPECT_TRUE(proj.ok());
  return std::move(proj).value();
}

PhysOpPtr JoinSpine(const Table* big, const Table* dim) {
  // Probe = morsel-driven big-table scan; build = dim, rebuilt per clone.
  auto probe = std::make_unique<TableScanOp>(big);
  auto build = std::make_unique<TableScanOp>(dim);
  return std::make_unique<HashJoinOp>(std::move(probe), std::move(build),
                                      std::vector<int>{0},
                                      std::vector<int>{0});
}

class ExchangeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    big_ = MakeTable("t", GroupedSchema(),
                     RandomGroupedRows(&rng, 1000, 23, 0.05));
    Schema ds({{"dk", TypeId::kInt64, "d"}, {"dv", TypeId::kInt64, "d"}});
    std::vector<Row> drows;
    for (int i = 1; i <= 23; ++i) {
      drows.push_back({Value::Int(i), Value::Int(i * 100)});
    }
    dim_ = MakeTable("d", std::move(ds), std::move(drows));
  }

  std::unique_ptr<Table> big_;
  std::unique_ptr<Table> dim_;
};

TEST_F(ExchangeDeterminismTest, BitForBitIdenticalAcrossDopAndBatch) {
  const std::vector<std::pair<const char*, SpineBuilder>> spines = {
      {"scan", ScanSpine},
      {"filter+project", FilterProjectSpine},
      {"join", JoinSpine}};
  for (const auto& [name, spine] : spines) {
    PhysOpPtr serial = spine(big_.get(), dim_.get());
    ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(serial.get(), 1024));
    ASSERT_FALSE(expected.rows.empty());
    for (const auto& [dop, batch] : tutil::DopBatchMatrix()) {
      ExchangeOp ex(spine(big_.get(), dim_.get()), dop,
                    /*morsel_rows=*/64);
      ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(&ex, batch));
      tutil::ExpectSameSequence(
          got.rows, expected.rows,
          std::string("spine=") + name + " dop=" + std::to_string(dop) +
              " batch=" + std::to_string(batch));
    }
  }
}

TEST_F(ExchangeDeterminismTest, SingleMorselDegeneratesToPassthrough) {
  // The whole table fits in one morsel: no clones, no buffering, and the
  // child streams through untouched.
  PhysOpPtr serial = ScanSpine(big_.get(), dim_.get());
  ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(serial.get(), 1024));
  ExchangeOp ex(ScanSpine(big_.get(), dim_.get()), /*parallelism=*/8,
                /*morsel_rows=*/100000);
  ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(&ex, 1024));
  tutil::ExpectSameSequence(got.rows, expected.rows, "single-morsel");
  EXPECT_EQ(ex.effective_dop(), 1u);
}

TEST_F(ExchangeDeterminismTest, WorkerRowsAccountForEveryRow) {
  ExchangeOp ex(ScanSpine(big_.get(), dim_.get()), /*parallelism=*/4,
                /*morsel_rows=*/64);
  ExecContext ctx;
  ASSIGN_OR_FAIL(QueryResult got, ExecuteToVector(&ex, &ctx));
  EXPECT_EQ(got.rows.size(), big_->num_rows());
  uint64_t attributed = 0;
  for (uint64_t r : ex.worker_rows()) attributed += r;
  EXPECT_EQ(attributed, big_->num_rows());
  EXPECT_EQ(ctx.counters().exchange_rows, big_->num_rows());
  EXPECT_GT(ctx.counters().exchange_partition_ns, 0u);
}

TEST_F(ExchangeDeterminismTest, RejectsBlockingSegment) {
  // An aggregation is a pipeline breaker: it would consume the scan's
  // initial (empty) morsel range at Open, so Exchange must refuse it.
  auto scan = std::make_unique<TableScanOp>(big_.get());
  std::vector<AggregateDesc> aggs;
  aggs.push_back(CountStar("cnt"));
  auto agg = std::make_unique<HashGroupByOp>(
      std::move(scan), std::vector<int>{0}, std::move(aggs));
  EXPECT_EQ(FindExchangeMorselSource(agg.get()), nullptr);
  ExchangeOp ex(std::move(agg), /*parallelism=*/4, /*morsel_rows=*/64);
  ExecContext ctx;
  Status st = ex.Open(&ctx);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("streaming segment"), std::string::npos);
}

TEST_F(ExchangeDeterminismTest, DebugNameShowsDopAndMorsel) {
  ExchangeOp ex(ScanSpine(big_.get(), dim_.get()), 4, 512);
  EXPECT_NE(ex.DebugName().find("dop=4"), std::string::npos);
  EXPECT_NE(ex.DebugName().find("morsel=512"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Error propagation: a failing worker must surface the same error serial
// execution hits first, at any DOP, and leave no thread behind.
// ---------------------------------------------------------------------------

TEST(ExchangeErrorTest, FailingWorkerPropagatesSerialError) {
  // Rows whose v == 0 poison the projection 100 / v. Poisons sit in
  // distinct morsels (morsel_rows = 64): row 200 (morsel 3) and row 700
  // (morsel 10); the surfaced error must be morsel 3's — the one serial
  // execution hits first.
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = (i == 200 || i == 700) ? 0 : (i % 90) + 1;
    rows.push_back({Value::Int(i % 23), Value::Int(v), Value::Double(0.5)});
  }
  auto table = MakeTable("t", GroupedSchema(), std::move(rows));

  auto make_plan = [&] {
    auto scan = std::make_unique<TableScanOp>(table.get());
    const Schema s = scan->output_schema();
    std::vector<ExprPtr> exprs;
    exprs.push_back(
        Binary(BinaryOp::kDivide, Lit(int64_t{100}), Col(s, "v")));
    auto proj = ProjectOp::Make(std::move(scan), std::move(exprs),
                                std::vector<std::string>{"q"});
    EXPECT_TRUE(proj.ok());
    return std::move(proj).value();
  };

  PhysOpPtr serial = make_plan();
  Result<QueryResult> serial_r = RunWithBatch(serial.get(), 1024);
  ASSERT_FALSE(serial_r.ok());
  const std::string expected_error = serial_r.status().ToString();
  EXPECT_NE(expected_error.find("division by zero"), std::string::npos);

  for (size_t dop : {2u, 8u}) {
    for (size_t batch : {1u, 1024u}) {
      ExchangeOp ex(make_plan(), dop, /*morsel_rows=*/64);
      Result<QueryResult> r = RunWithBatch(&ex, batch);
      ASSERT_FALSE(r.ok()) << "dop=" << dop << " batch=" << batch;
      EXPECT_EQ(r.status().ToString(), expected_error)
          << "dop=" << dop << " batch=" << batch;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel hash-join build: shard-partitioned build must be invisible —
// identical probe results at every DOP and batch size.
// ---------------------------------------------------------------------------

TEST(ParallelJoinBuildTest, BitForBitIdenticalAcrossDop) {
  Rng rng(41);
  // Build side above kParallelBuildMinRows, with duplicate keys so
  // equal_range enumeration order matters.
  auto build_tbl = MakeTable(
      "b", GroupedSchema(),
      RandomGroupedRows(&rng, HashJoinOp::kParallelBuildMinRows + 1000, 37));
  auto probe_tbl =
      MakeTable("p", GroupedSchema(), RandomGroupedRows(&rng, 500, 37));

  auto make_join = [&](size_t dop) {
    auto probe = std::make_unique<TableScanOp>(probe_tbl.get());
    auto build = std::make_unique<TableScanOp>(build_tbl.get());
    return std::make_unique<HashJoinOp>(std::move(probe), std::move(build),
                                        std::vector<int>{0},
                                        std::vector<int>{0}, nullptr, dop);
  };

  auto serial = make_join(1);
  ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(serial.get(), 1024));
  ASSERT_FALSE(expected.rows.empty());
  for (const auto& [dop, batch] : tutil::DopBatchMatrix(false)) {
    auto par = make_join(dop);
    ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(par.get(), batch));
    tutil::ExpectSameSequence(got.rows, expected.rows,
                              "dop=" + std::to_string(dop) +
                                  " batch=" + std::to_string(batch));
  }
}

TEST(ParallelJoinBuildTest, SmallBuildSideStaysSerial) {
  Rng rng(42);
  auto build_tbl =
      MakeTable("b", GroupedSchema(), RandomGroupedRows(&rng, 100, 7));
  auto probe_tbl =
      MakeTable("p", GroupedSchema(), RandomGroupedRows(&rng, 100, 7));
  auto probe = std::make_unique<TableScanOp>(probe_tbl.get());
  auto build = std::make_unique<TableScanOp>(build_tbl.get());
  HashJoinOp join(std::move(probe), std::move(build), {0}, {0}, nullptr, 8);
  auto probe2 = std::make_unique<TableScanOp>(probe_tbl.get());
  auto build2 = std::make_unique<TableScanOp>(build_tbl.get());
  HashJoinOp ser(std::move(probe2), std::move(build2), {0}, {0});
  ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(&ser, 1024));
  ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(&join, 1024));
  tutil::ExpectSameSequence(got.rows, expected.rows, "small-build-side");
}

TEST(ParallelJoinBuildTest, DebugNameShowsDop) {
  Rng rng(43);
  auto t = MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 10, 3));
  auto probe = std::make_unique<TableScanOp>(t.get());
  auto build = std::make_unique<TableScanOp>(t.get());
  HashJoinOp join(std::move(probe), std::move(build), {0}, {0}, nullptr, 6);
  EXPECT_NE(join.DebugName().find("dop=6"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Parallel hash aggregation: partial tables merged in first-appearance
// order must be indistinguishable from the serial streaming path.
// ---------------------------------------------------------------------------

TEST(ParallelHashAggTest, ExactAggsBitForBitIdenticalAcrossDop) {
  Rng rng(51);
  auto table = MakeTable(
      "t", GroupedSchema(),
      RandomGroupedRows(&rng, HashGroupByOp::kParallelAggMinRows + 2000, 61,
                        0.1));

  auto make_agg = [&](size_t dop) {
    auto scan = std::make_unique<TableScanOp>(table.get());
    const Schema s = scan->output_schema();
    std::vector<AggregateDesc> aggs;
    aggs.push_back(CountStar("cnt"));
    aggs.push_back(Count(Col(s, "v"), "cnt_v"));
    aggs.push_back(Sum(Col(s, "v"), "sum_v"));
    aggs.push_back(Min(Col(s, "v"), "min_v"));
    aggs.push_back(Max(Col(s, "d"), "max_d"));
    return std::make_unique<HashGroupByOp>(
        std::move(scan), std::vector<int>{0}, std::move(aggs), dop);
  };

  auto serial = make_agg(1);
  ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(serial.get(), 1024));
  ASSERT_EQ(expected.rows.size(), 61u);
  for (const auto& [dop, batch] : tutil::DopBatchMatrix(false)) {
    auto par = make_agg(dop);
    ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(par.get(), batch));
    tutil::ExpectSameSequence(got.rows, expected.rows,
                              "dop=" + std::to_string(dop) +
                                  " batch=" + std::to_string(batch));
  }
}

TEST(ParallelHashAggTest, InexactAggsFallBackToSerialAndMatch) {
  // AVG partials re-associate float addition, so the exactness gate must
  // route this plan down the serial path — same results, any knob.
  Rng rng(52);
  auto table = MakeTable(
      "t", GroupedSchema(),
      RandomGroupedRows(&rng, HashGroupByOp::kParallelAggMinRows + 500, 19));
  auto make_agg = [&](size_t dop) {
    auto scan = std::make_unique<TableScanOp>(table.get());
    const Schema s = scan->output_schema();
    std::vector<AggregateDesc> aggs;
    aggs.push_back(Avg(Col(s, "d"), "avg_d"));
    aggs.push_back(Sum(Col(s, "d"), "sum_d"));  // double sum: also inexact
    return std::make_unique<HashGroupByOp>(
        std::move(scan), std::vector<int>{0}, std::move(aggs), dop);
  };
  auto serial = make_agg(1);
  ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(serial.get(), 1024));
  auto par = make_agg(8);
  ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(par.get(), 1024));
  tutil::ExpectSameSequence(got.rows, expected.rows, "inexact-aggs");
}

TEST(ParallelHashAggTest, SmallInputStaysSerial) {
  Rng rng(53);
  auto table =
      MakeTable("t", GroupedSchema(), RandomGroupedRows(&rng, 200, 7));
  auto make_agg = [&](size_t dop) {
    auto scan = std::make_unique<TableScanOp>(table.get());
    const Schema s = scan->output_schema();
    std::vector<AggregateDesc> aggs;
    aggs.push_back(Sum(Col(s, "v"), "sum_v"));
    return std::make_unique<HashGroupByOp>(
        std::move(scan), std::vector<int>{0}, std::move(aggs), dop);
  };
  auto serial = make_agg(1);
  auto par = make_agg(8);
  ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(serial.get(), 1024));
  ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(par.get(), 1024));
  tutil::ExpectSameSequence(got.rows, expected.rows, "small-input");
}

// ---------------------------------------------------------------------------
// Exchange nested under parallel GApply: both levels draw from task groups
// (transient pools here; the shared engine pool at the Database level) and
// the composition must stay deterministic.
// ---------------------------------------------------------------------------

TEST(ExchangeNestingTest, ExchangeFeedingParallelGApply) {
  Rng rng(61);
  auto table = MakeTable("t", GroupedSchema(),
                         RandomGroupedRows(&rng, 800, 13, 0.05));

  auto make_plan = [&](size_t exchange_dop, size_t gapply_dop) {
    auto scan = std::make_unique<TableScanOp>(table.get());
    const Schema gs = scan->output_schema();
    PhysOpPtr outer = std::move(scan);
    if (exchange_dop > 1) {
      outer = std::make_unique<ExchangeOp>(std::move(outer), exchange_dop,
                                           /*morsel_rows=*/64);
    }
    auto group_scan = std::make_unique<GroupScanOp>("g", gs);
    std::vector<AggregateDesc> aggs;
    aggs.push_back(CountStar("cnt"));
    aggs.push_back(Sum(Col(gs, "v"), "sum_v"));
    auto pgq = std::make_unique<ScalarAggOp>(std::move(group_scan),
                                             std::move(aggs));
    return std::make_unique<GApplyOp>(std::move(outer), std::vector<int>{0},
                                      "g", std::move(pgq),
                                      PartitionMode::kHash, gapply_dop);
  };

  auto serial = make_plan(1, 1);
  ASSIGN_OR_FAIL(QueryResult expected, RunWithBatch(serial.get(), 1024));
  ASSERT_EQ(expected.rows.size(), 13u);
  for (size_t ex_dop : {2u, 4u}) {
    for (size_t ga_dop : {2u, 4u}) {
      auto par = make_plan(ex_dop, ga_dop);
      ASSIGN_OR_FAIL(QueryResult got, RunWithBatch(par.get(), 1024));
      tutil::ExpectSameSequence(got.rows, expected.rows,
                                "exchange_dop=" + std::to_string(ex_dop) +
                                    " gapply_dop=" + std::to_string(ga_dop));
    }
  }
}

// ---------------------------------------------------------------------------
// End to end through the Database: SET parallelism drives Exchange
// insertion, the shared engine pool, and parallel join/agg — and the
// results must not move.
// ---------------------------------------------------------------------------

class ExchangeEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(db_.LoadTpch(config).ok());
  }

  // Lowers the insertion gates so the ~0.005-scale tables morselize.
  QueryOptions ExchangeFriendly() {
    QueryOptions options;
    options.lowering.exchange_min_rows = 16;
    options.lowering.exchange_morsel_rows = 64;
    return options;
  }

  Database db_;
};

TEST_F(ExchangeEngineTest, SetParallelismKeepsResultsBitForBit) {
  const std::vector<std::string> queries = {
      "select ps_suppkey, count(*), sum(ps_availqty) from partsupp "
      "group by ps_suppkey",
      "select p_name, ps_availqty from partsupp, part "
      "where ps_partkey = p_partkey and ps_availqty > 100",
      "select gapply(select count(*) from g) "
      "from partsupp group by ps_suppkey : g",
  };
  for (const std::string& sql : queries) {
    ASSERT_TRUE(db_.Query("set parallelism = 1").ok());
    ASSIGN_OR_FAIL(QueryResult expected,
                   db_.Query(sql, ExchangeFriendly()));
    for (int dop : {2, 8}) {
      ASSERT_TRUE(
          db_.Query("set parallelism = " + std::to_string(dop)).ok());
      QueryStats stats;
      ASSIGN_OR_FAIL(QueryResult got,
                     db_.Query(sql, ExchangeFriendly(), &stats));
      tutil::ExpectSameSequence(got.rows, expected.rows,
                                "sql=" + sql + " dop=" + std::to_string(dop));
    }
  }
}

TEST_F(ExchangeEngineTest, ParallelPlanCountsExchangeRows) {
  ASSERT_TRUE(db_.Query("set parallelism = 4").ok());
  QueryStats stats;
  ASSIGN_OR_FAIL(
      QueryResult r,
      db_.Query("select ps_suppkey, sum(ps_availqty) from partsupp "
                "group by ps_suppkey",
                ExchangeFriendly(), &stats));
  ASSERT_FALSE(r.rows.empty());
  EXPECT_GT(stats.counters.exchange_rows, 0u);
  EXPECT_GT(stats.counters.exchange_partition_ns, 0u);
}

TEST_F(ExchangeEngineTest, ExplainShowsExchangeAndPerOperatorDop) {
  ASSERT_TRUE(db_.Query("set parallelism = 4").ok());
  ASSIGN_OR_FAIL(
      std::string plan,
      db_.Explain("select ps_suppkey, sum(ps_availqty) from partsupp "
                  "group by ps_suppkey",
                  ExchangeFriendly()));
  EXPECT_NE(plan.find("Exchange(dop=4"), std::string::npos) << plan;
  // The aggregation above the Exchange advertises its own DOP too.
  size_t dop_mentions = 0;
  for (size_t pos = plan.find("dop=4"); pos != std::string::npos;
       pos = plan.find("dop=4", pos + 1)) {
    ++dop_mentions;
  }
  EXPECT_GE(dop_mentions, 2u) << plan;
}

TEST_F(ExchangeEngineTest, SerialSessionNeverInsertsExchange) {
  ASSERT_TRUE(db_.Query("set parallelism = 1").ok());
  ASSIGN_OR_FAIL(
      std::string plan,
      db_.Explain("select ps_suppkey, sum(ps_availqty) from partsupp "
                  "group by ps_suppkey",
                  ExchangeFriendly()));
  EXPECT_EQ(plan.find("Exchange"), std::string::npos) << plan;
}

}  // namespace
}  // namespace gapply
