// Pinned-seed regression corpus for the differential fuzzer (gapply_fuzz).
//
// Each seed below deterministically regenerates its dataset + query and runs
// the full oracle matrix under ctest, so the interesting cases the fuzzer
// has surfaced keep running on every commit without shipping any data files.
// Replay any of them interactively with:
//   build/tools/gapply_fuzz --seed=N --cases=1 --verbose

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/data_gen.h"
#include "src/fuzz/differential.h"
#include "src/fuzz/fuzzer.h"
#include "src/fuzz/minimizer.h"
#include "src/sql/parser.h"
#include "src/sql/printer.h"
#include "tests/test_util.h"

namespace gapply {
namespace {

struct PinnedSeed {
  uint64_t seed;
  /// Feature tags the seed was pinned for; the coverage test asserts the
  /// generator still produces them, so corpus value cannot silently decay.
  std::vector<std::string> expect_features;
};

// Chosen to cover the generator's edge-case vocabulary: empty groups,
// all-NULL grouping keys, single-row tables, FK joins, nested GApply, deep
// PGQ shapes (union / exists / aggregated exists / scalar subquery), and
// duplicate rows. The last two seeds each minimized a real optimizer bug
// found by a 10k-case sweep and are pinned so the fixes stay fixed:
//   6555 — GroupSelectionExists reconstructed groups with a plain equi-join
//          and silently dropped every NULL-keyed group (now a null-safe
//          join, IS NOT DISTINCT FROM).
//   7631 — GroupSelectionExists fired on a GApply nested inside another
//          GApply's per-group query, introducing a Join that cannot lower
//          (the PGQ operator set has none; now guarded by
//          OptimizerContext::in_pgq).
const std::vector<PinnedSeed>& PinnedSeeds() {
  static const std::vector<PinnedSeed> seeds = {
      {1, {"join", "pgq-groupby"}},
      {2, {"single-row-fact", "pgq-star", "pgq-subquery"}},
      {4, {"single-row-fact", "union-top", "null-keys"}},
      {5, {"join", "distinct-agg", "plain-agg"}},
      {11, {"pgq-agg-exists", "dup-rows"}},
      {12, {"having", "pgq-groupby"}},
      {18, {"all-null-key", "pgq-union", "union-top"}},
      {20, {"pgq-exists", "order-by"}},
      {21, {"empty-fact", "all-null-key", "pgq-subquery"}},
      {43, {"empty-fact", "gapply"}},
      {45, {"nested-gapply", "join", "dup-rows"}},
      {82, {"nested-gapply", "pgq-exists", "order-by"}},
      {6555, {"null-keys", "pgq-exists", "pgq-star"}},
      {7631, {"nested-gapply", "pgq-exists", "dup-rows"}},
  };
  return seeds;
}

TEST(FuzzRegressionTest, PinnedSeedsAgreeOnAllOracles) {
  const fuzz::OracleMatrixOptions matrix;
  for (const PinnedSeed& pinned : PinnedSeeds()) {
    const fuzz::CaseResult r = fuzz::RunOneCase(pinned.seed, matrix);
    EXPECT_TRUE(r.generator_error.empty())
        << "seed " << pinned.seed << ": " << r.generator_error;
    for (const fuzz::Mismatch& m : r.mismatches) {
      ADD_FAILURE() << "seed " << pinned.seed << " oracle " << m.oracle
                    << ": " << m.detail << "\nsql: " << r.sql
                    << "\nreplay: gapply_fuzz --seed=" << pinned.seed
                    << " --cases=1";
    }
  }
}

TEST(FuzzRegressionTest, PinnedSeedsStillCoverTheirFeatures) {
  const fuzz::OracleMatrixOptions matrix;
  for (const PinnedSeed& pinned : PinnedSeeds()) {
    const fuzz::CaseResult r = fuzz::RunOneCase(pinned.seed, matrix);
    ASSERT_TRUE(r.generator_error.empty())
        << "seed " << pinned.seed << ": " << r.generator_error;
    for (const std::string& feature : pinned.expect_features) {
      EXPECT_NE(std::find(r.features.begin(), r.features.end(), feature),
                r.features.end())
          << "seed " << pinned.seed << " no longer produces feature '"
          << feature << "' — the generator changed; repin this seed.\nsql: "
          << r.sql;
    }
  }
}

TEST(FuzzRegressionTest, PrintedSqlIsAPrintParseFixpoint) {
  // ToSql(Parse(ToSql(ast))) == ToSql(ast): the printed SQL is the single
  // source of truth per case, so printing must be stable under reparsing.
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const fuzz::FuzzDataset data = fuzz::GenerateDataset(&rng);
    const fuzz::GeneratedQuery q = fuzz::GenerateQuery(data, &rng);
    ASSIGN_OR_FAIL(sql::QueryPtr reparsed, sql::Parse(q.sql));
    EXPECT_EQ(sql::ToSql(*reparsed), q.sql) << "seed " << seed;
  }
}

// The acceptance gate for the whole fuzz subsystem: a deliberately unsound
// rule variant (SelectionBeforeGApply without the Theorem-1 empty-on-empty
// check) must be caught by the differential oracles and shrink to a tiny
// repro. Seed 30's PGQ is a per-group scalar aggregate — exactly the shape
// the precondition exists to protect.
TEST(FuzzRegressionTest, InjectedPreconditionBugIsCaughtAndMinimized) {
  fuzz::OracleMatrixOptions matrix;
  matrix.inject_precondition_bug = true;
  constexpr uint64_t kSeed = 30;

  const fuzz::CaseResult r = fuzz::RunOneCase(kSeed, matrix);
  ASSERT_TRUE(r.generator_error.empty()) << r.generator_error;
  ASSERT_FALSE(r.mismatches.empty())
      << "injected unsound rule was not detected; sql: " << r.sql;
  for (const fuzz::Mismatch& m : r.mismatches) {
    // Only the deliberately broken oracle may fire — anything else would be
    // a real bug hiding behind the self-test.
    EXPECT_NE(m.oracle.find("[injected]"), std::string::npos)
        << m.oracle << ": " << m.detail;
  }

  Rng rng(kSeed);
  const fuzz::FuzzDataset data = fuzz::GenerateDataset(&rng);
  bool minimized = false;
  for (const fuzz::OraclePair& oracle : fuzz::BuildOracleMatrix(matrix)) {
    if (oracle.name != r.mismatches.front().oracle) continue;
    ASSIGN_OR_FAIL(fuzz::MinimizeResult m,
                   fuzz::MinimizeCase(data, r.sql, oracle));
    EXPECT_LE(m.plan_ops, 5) << "repro did not shrink enough: " << m.sql;
    EXPECT_FALSE(m.sql.empty());
    // The shrunken case must still replay through a fresh bind + run.
    EXPECT_NE(m.mismatch.oracle.find("[injected]"), std::string::npos);
    minimized = true;
    break;
  }
  EXPECT_TRUE(minimized) << "failing oracle " << r.mismatches.front().oracle
                         << " not found in the rebuilt matrix";
}

TEST(FuzzRegressionTest, MinimizerRefusesNonFailingCase) {
  // Without the injected bug nothing mismatches, so the minimizer must
  // report that the input does not reproduce instead of "shrinking" it.
  const fuzz::OracleMatrixOptions matrix;
  constexpr uint64_t kSeed = 30;
  const fuzz::CaseResult r = fuzz::RunOneCase(kSeed, matrix);
  ASSERT_TRUE(r.mismatches.empty());

  Rng rng(kSeed);
  const fuzz::FuzzDataset data = fuzz::GenerateDataset(&rng);
  const std::vector<fuzz::OraclePair> oracles =
      fuzz::BuildOracleMatrix(matrix);
  ASSERT_FALSE(oracles.empty());
  Result<fuzz::MinimizeResult> m =
      fuzz::MinimizeCase(data, r.sql, oracles.front());
  EXPECT_FALSE(m.ok());
}

}  // namespace
}  // namespace gapply
