#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace gapply {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ReusableAfterWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), 50 * (round + 1));
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SingleThreadRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.WaitIdle();  // nothing submitted — must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, DefaultParallelismIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1u);
}

TEST(ThreadPoolTest, RunGroupRunsEveryTaskWithCallerHelp) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunGroup(std::move(tasks));  // returns only once all 100 ran
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, RunGroupEmptyAndSingleton) {
  ThreadPool pool(2);
  pool.RunGroup({});  // must not hang
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> one;
  one.push_back([&counter] { counter.fetch_add(1); });
  pool.RunGroup(std::move(one));
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, RunGroupOnSaturatedPoolStillCompletes) {
  // Every pool thread is parked; the caller must drain its group alone.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release] {
      while (!release.load()) std::this_thread::yield();
    });
  }
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunGroup(std::move(tasks));
  EXPECT_EQ(counter.load(), 10);
  release.store(true);
  pool.WaitIdle();
}

TEST(ThreadPoolTest, NestedRunGroupOnSamePoolDoesNotDeadlock) {
  // Mirrors Exchange nested under parallel GApply on the shared engine
  // pool: a group task starts its own group on the same pool.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 4; ++i) {
    outer.push_back([&pool, &counter] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 8; ++j) {
        inner.push_back([&counter] { counter.fetch_add(1); });
      }
      pool.RunGroup(std::move(inner));
    });
  }
  pool.RunGroup(std::move(outer));
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, RunTaskGroupFallsBackToTransientPool) {
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  RunTaskGroup(/*pool=*/nullptr, std::move(tasks));
  EXPECT_EQ(counter.load(), 12);
}

TEST(ThreadPoolTest, NestedPoolsDoNotDeadlock) {
  // Mirrors nested parallel GApply: a pool task spins up its own pool.
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&counter] {
      ThreadPool inner(2);
      for (int j = 0; j < 8; ++j) {
        inner.Submit([&counter] { counter.fetch_add(1); });
      }
      inner.WaitIdle();
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 64);
}

}  // namespace
}  // namespace gapply
