// Differential query fuzzer driver. See DESIGN.md §11 for the contract.
//
// Typical invocations:
//   gapply_fuzz --cases=1000                 # fuzz seeds 1..1000
//   gapply_fuzz --cases=200 --time-budget-s=60   # CI smoke budget
//   gapply_fuzz --seed=1234 --cases=1        # replay one failing case
//   gapply_fuzz --inject-precondition-bug    # self-test: must mismatch
//
// Exit status: 0 = every oracle agreed on every case; 1 = at least one
// mismatch or generator error (repro + seed printed); 2 = bad usage.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/fuzz/fuzzer.h"

namespace {

void PrintUsage() {
  std::cerr
      << "usage: gapply_fuzz [options]\n"
         "  --cases=N                  number of cases (default 1000)\n"
         "  --seed=N                   first seed (default 1); with\n"
         "                             --cases=1 this replays one case\n"
         "  --time-budget-s=S          stop after S seconds (default: none)\n"
         "  --keep-going               continue past failures\n"
         "  --no-minimize              skip shrinking failing cases\n"
         "  --inject-precondition-bug  enable the deliberately unsound\n"
         "                             SelectionBeforeGApply variant; the\n"
         "                             run SHOULD report mismatches\n"
         "  --verbose                  print every case's SQL\n";
}

bool ParseValue(const char* arg, const char* name, std::string* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  gapply::fuzz::FuzzOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    if (ParseValue(arg, "--cases", &value)) {
      options.cases = std::atoi(value.c_str());
    } else if (ParseValue(arg, "--seed", &value)) {
      options.base_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseValue(arg, "--time-budget-s", &value)) {
      options.time_budget_s = std::atof(value.c_str());
    } else if (std::strcmp(arg, "--keep-going") == 0) {
      options.keep_going = true;
    } else if (std::strcmp(arg, "--no-minimize") == 0) {
      options.minimize = false;
    } else if (std::strcmp(arg, "--inject-precondition-bug") == 0) {
      options.matrix.inject_precondition_bug = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      PrintUsage();
      return 0;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      PrintUsage();
      return 2;
    }
  }
  if (options.cases <= 0) {
    std::cerr << "--cases must be positive\n";
    return 2;
  }

  gapply::fuzz::FuzzReport report =
      gapply::fuzz::RunFuzz(options, &std::cout);
  return report.ok() ? 0 : 1;
}
