// bench_check: CI perf-regression gate over the benches' BENCH_*.json
// emissions.
//
// Compares every baseline file in --baseline-dir against the same-named
// file in --current-dir, walking the two JSON documents structurally and
// comparing each timing leaf (a number under a key named "ms" or ending in
// "_ms"; lower is better). A leaf regresses when BOTH
//   current > baseline * threshold   (ratio gate), and
//   current - baseline > floor_ms    (noise floor: micro-timings jitter)
// hold. Speedup/ratio fields are derived (higher-better or dimensionless)
// and are skipped, as are per-operator profile times in ns (too noisy to
// gate on; they are carried for inspection, not for gating).
//
// The gate is hardware-aware: when the two files disagree on
// "hardware_concurrency" the run is on different iron than the baseline,
// so the ratio threshold is doubled and the mismatch reported.
//
// --inject-slowdown=F multiplies every current timing by F first — the
// self-test CI uses to prove the gate actually trips (a 2x injected
// slowdown must fail against a fresh baseline).
//
// Exit codes: 0 = pass, 1 = regression detected, 2 = usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/json.h"

namespace gapply {
namespace {

struct Options {
  std::string baseline_dir = "bench/baselines";
  std::string current_dir = ".";
  double threshold = 1.25;
  double floor_ms = 5.0;
  double inject_slowdown = 1.0;
};

struct CheckState {
  const Options* opts = nullptr;
  double threshold = 1.25;  // after any hardware-mismatch relaxation
  int compared = 0;
  int regressions = 0;
  std::vector<std::string> messages;
};

bool IsTimingKey(const std::string& key) {
  if (key.find("speedup") != std::string::npos) return false;
  if (key.find("ratio") != std::string::npos) return false;
  return key == "ms" || (key.size() > 3 &&
                         key.compare(key.size() - 3, 3, "_ms") == 0);
}

/// Identifying string for a record object, for readable messages.
std::string RecordLabel(const JsonValue& obj) {
  for (const char* key : {"workload", "label", "name", "query", "mode"}) {
    const JsonValue* v = obj.Find(key);
    if (v != nullptr && v->type() == JsonValue::Type::kString) {
      return v->string_value();
    }
  }
  return "";
}

void Walk(const JsonValue& base, const JsonValue& cur, const std::string& path,
          CheckState* state) {
  if (base.type() == JsonValue::Type::kObject &&
      cur.type() == JsonValue::Type::kObject) {
    const std::string label = RecordLabel(base);
    const std::string here =
        label.empty() ? path : path + "(" + label + ")";
    for (const auto& member : base.members()) {
      const JsonValue* cv = cur.Find(member.first);
      if (cv == nullptr) continue;  // field dropped: not a perf regression
      Walk(member.second, *cv, here + "." + member.first, state);
    }
    return;
  }
  if (base.type() == JsonValue::Type::kArray &&
      cur.type() == JsonValue::Type::kArray) {
    const size_t n = std::min(base.items().size(), cur.items().size());
    for (size_t i = 0; i < n; ++i) {
      Walk(base.items()[i], cur.items()[i],
           path + "[" + std::to_string(i) + "]", state);
    }
    return;
  }
  if (!base.is_number() || !cur.is_number()) return;
  // The timing-ness of a leaf is decided by the last key on its path.
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos) return;
  std::string key = path.substr(dot + 1);
  const size_t bracket = key.find('[');
  if (bracket != std::string::npos) key.resize(bracket);
  if (!IsTimingKey(key)) return;

  const double base_ms = base.number_value();
  double cur_ms = cur.number_value() * state->opts->inject_slowdown;
  state->compared++;
  if (cur_ms > base_ms * state->threshold &&
      cur_ms - base_ms > state->opts->floor_ms) {
    state->regressions++;
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  REGRESSION %s: %.3fms -> %.3fms (%.2fx > %.2fx "
                  "threshold, delta %.3fms > %.3fms floor)",
                  path.c_str(), base_ms, cur_ms,
                  base_ms > 0 ? cur_ms / base_ms : 0.0, state->threshold,
                  cur_ms - base_ms, state->opts->floor_ms);
    state->messages.push_back(buf);
  }
}

Result<JsonValue> LoadJsonFile(const std::string& file_path) {
  std::ifstream in(file_path);
  if (!in) return Status::InvalidArgument("cannot open " + file_path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseJson(buf.str());
}

int64_t HardwareConcurrency(const JsonValue& doc) {
  if (doc.type() != JsonValue::Type::kObject) return -1;
  const JsonValue* v = doc.Find("hardware_concurrency");
  if (v == nullptr || !v->is_number()) return -1;
  return static_cast<int64_t>(v->number_value());
}

/// Returns 0 (pass), 1 (regression), 2 (I/O error).
int CheckFile(const Options& opts, const std::string& name) {
  Result<JsonValue> base = LoadJsonFile(opts.baseline_dir + "/" + name);
  if (!base.ok()) {
    std::fprintf(stderr, "bench_check: %s\n",
                 base.status().ToString().c_str());
    return 2;
  }
  const std::string current_path = opts.current_dir + "/" + name;
  Result<JsonValue> cur = LoadJsonFile(current_path);
  if (!cur.ok()) {
    // A bench that did not run is a CI wiring problem, not a perf
    // regression; fail loudly either way.
    std::fprintf(stderr, "bench_check: missing current file %s (%s)\n",
                 current_path.c_str(), cur.status().ToString().c_str());
    return 2;
  }

  CheckState state;
  state.opts = &opts;
  state.threshold = opts.threshold;
  const int64_t base_hw = HardwareConcurrency(*base);
  const int64_t cur_hw = HardwareConcurrency(*cur);
  bool relaxed = false;
  if (base_hw > 0 && cur_hw > 0 && base_hw != cur_hw) {
    state.threshold = opts.threshold * 2.0;
    relaxed = true;
  }
  Walk(*base, *cur, name, &state);

  std::printf("%-32s %3d timings, threshold %.2fx%s: %s\n", name.c_str(),
              state.compared, state.threshold,
              relaxed ? " (hw mismatch, relaxed)" : "",
              state.regressions == 0 ? "OK" : "REGRESSED");
  for (const std::string& msg : state.messages) {
    std::printf("%s\n", msg.c_str());
  }
  return state.regressions == 0 ? 0 : 1;
}

int Run(const Options& opts) {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(opts.baseline_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  if (ec) {
    std::fprintf(stderr, "bench_check: cannot list %s: %s\n",
                 opts.baseline_dir.c_str(), ec.message().c_str());
    return 2;
  }
  if (names.empty()) {
    std::fprintf(stderr, "bench_check: no baselines in %s\n",
                 opts.baseline_dir.c_str());
    return 2;
  }
  std::sort(names.begin(), names.end());
  if (opts.inject_slowdown != 1.0) {
    std::printf("(self-test: injecting %.2fx slowdown into current "
                "timings)\n",
                opts.inject_slowdown);
  }
  int rc = 0;
  for (const std::string& name : names) {
    rc = std::max(rc, CheckFile(opts, name));
  }
  std::printf("bench_check: %s\n", rc == 0 ? "PASS" : "FAIL");
  return rc;
}

}  // namespace
}  // namespace gapply

int main(int argc, char** argv) {
  gapply::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--baseline-dir=")) {
      opts.baseline_dir = v;
    } else if (const char* v = value("--current-dir=")) {
      opts.current_dir = v;
    } else if (const char* v = value("--threshold=")) {
      opts.threshold = std::atof(v);
    } else if (const char* v = value("--floor-ms=")) {
      opts.floor_ms = std::atof(v);
    } else if (const char* v = value("--inject-slowdown=")) {
      opts.inject_slowdown = std::atof(v);
    } else {
      std::fprintf(stderr,
                   "usage: bench_check [--baseline-dir=DIR] "
                   "[--current-dir=DIR] [--threshold=R] [--floor-ms=MS] "
                   "[--inject-slowdown=F]\n");
      return 2;
    }
  }
  if (opts.threshold <= 1.0 || opts.inject_slowdown <= 0) {
    std::fprintf(stderr,
                 "bench_check: threshold must be > 1 and inject-slowdown "
                 "> 0\n");
    return 2;
  }
  return gapply::Run(opts);
}
