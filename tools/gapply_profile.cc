// gapply_profile: command-line EXPLAIN ANALYZE driver.
//
// Loads the synthetic TPC-H subset, then profiles each SQL statement given
// on the command line (or read from stdin, one per line, when none is
// given). Statements may carry their own EXPLAIN prefix; bare queries are
// treated as EXPLAIN ANALYZE.
//
//   gapply_profile [--sf=0.01] [--parallelism=N] [--batch-size=N] [--json]
//                  [SQL ...]
//
// Examples:
//   gapply_profile "select gapply(select count(*) from g) \
//                   from partsupp group by ps_suppkey : g"
//   gapply_profile --json --parallelism=8 "select * from region"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/sql/parser.h"

namespace gapply {
namespace {

struct Options {
  double scale_factor = 0.01;
  size_t parallelism = 1;
  size_t batch_size = 0;
  bool json = false;
};

int ProfileOne(Database* db, const Options& opts, const std::string& sql) {
  // Accept an explicit EXPLAIN prefix; default bare statements to
  // EXPLAIN ANALYZE in the requested format.
  std::string query = sql;
  bool json = opts.json;
  // Session knobs (SET storage / parallelism / profile / ...) go straight
  // to the engine — they produce no rows and nothing to profile.
  Result<std::optional<sql::SetStatement>> set_stmt = sql::TryParseSet(sql);
  if (!set_stmt.ok()) {
    std::fprintf(stderr, "error: %s\n", set_stmt.status().ToString().c_str());
    return 1;
  }
  if (set_stmt->has_value()) {
    std::printf("-- %s\n", sql.c_str());
    Result<QueryResult> r = db->Query(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
      return 1;
    }
    return 0;
  }
  Result<std::optional<sql::ExplainStatement>> explain_stmt =
      sql::TryParseExplain(sql);
  if (!explain_stmt.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 explain_stmt.status().ToString().c_str());
    return 1;
  }
  if (explain_stmt->has_value()) {
    query = (*explain_stmt)->query;
    json = json || (*explain_stmt)->json;
  }
  std::printf("-- %s\n", query.c_str());
  if (json) {
    Result<JsonValue> out = db->ExplainAnalyzeJson(query);
    if (!out.ok()) {
      std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", out->Dump(2).c_str());
  } else {
    Result<std::string> out = db->ExplainAnalyze(query);
    if (!out.ok()) {
      std::fprintf(stderr, "error: %s\n", out.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", out->c_str());
  }
  return 0;
}

int Run(const Options& opts, const std::vector<std::string>& statements) {
  Database db;
  tpch::TpchConfig config;
  config.scale_factor = opts.scale_factor;
  Status st = db.LoadTpch(config);
  if (!st.ok()) {
    std::fprintf(stderr, "TPC-H load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  db.set_default_gapply_parallelism(opts.parallelism);
  if (opts.batch_size > 0) db.set_default_batch_size(opts.batch_size);

  int rc = 0;
  if (!statements.empty()) {
    for (const std::string& sql : statements) {
      rc |= ProfileOne(&db, opts, sql);
    }
    return rc;
  }
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    rc |= ProfileOne(&db, opts, line);
  }
  return rc;
}

}  // namespace
}  // namespace gapply

int main(int argc, char** argv) {
  gapply::Options opts;
  std::vector<std::string> statements;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--sf=")) {
      opts.scale_factor = std::atof(v);
    } else if (const char* v = value("--parallelism=")) {
      opts.parallelism = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--batch-size=")) {
      opts.batch_size = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: gapply_profile [--sf=F] [--parallelism=N] "
                   "[--batch-size=N] [--json] [SQL ...]\n");
      return 2;
    } else {
      statements.push_back(arg);
    }
  }
  return gapply::Run(opts, statements);
}
