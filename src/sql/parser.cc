#include "src/sql/parser.h"

#include <set>

#include "src/sql/lexer.h"

namespace gapply::sql {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string>* kw = new std::set<std::string>{
      "select", "from",  "where",    "group", "by",   "having", "order",
      "union",  "all",   "as",       "and",   "or",   "not",    "is",
      "null",   "true",  "false",    "exists", "asc", "desc",   "distinct",
      "gapply", "count", "sum",      "avg",   "min",  "max",    "on",
  };
  return *kw;
}

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QueryPtr> ParseStatement() {
    ASSIGN_OR_RETURN(QueryPtr q, ParseQuery());
    if (PeekSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return q;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const std::string& kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && t.text == kw;
  }
  bool AcceptKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const std::string& kw) {
    if (!AcceptKeyword(kw)) {
      return Error("expected '" + kw + "'");
    }
    return Status::OK();
  }
  bool PeekSymbol(const std::string& sym, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kSymbol && t.text == sym;
  }
  bool AcceptSymbol(const std::string& sym) {
    if (!PeekSymbol(sym)) return false;
    Advance();
    return true;
  }
  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) return Error("expected '" + sym + "'");
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    std::string got = t.type == TokenType::kEnd ? "end of input"
                                                : "'" + t.raw + "'";
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(t.position) + " (" + got +
                                   "): " + message);
  }

  /// Identifier that is not a reserved keyword.
  Result<std::string> ExpectIdentifier(const char* what) {
    const Token& t = Peek();
    if (t.type != TokenType::kIdentifier || Keywords().count(t.text) > 0) {
      return Error(std::string("expected ") + what);
    }
    Advance();
    return t.text;
  }

  // --- grammar ------------------------------------------------------------

  Result<QueryPtr> ParseQuery() {
    auto query = std::make_unique<Query>();
    ASSIGN_OR_RETURN(auto first, ParseSelect());
    query->branches.push_back(std::move(first));
    while (PeekKeyword("union")) {
      Advance();
      RETURN_NOT_OK(ExpectKeyword("all"));  // multiset semantics only
      ASSIGN_OR_RETURN(auto branch, ParseSelect());
      query->branches.push_back(std::move(branch));
    }
    if (AcceptKeyword("order")) {
      RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        OrderItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("desc")) {
          item.ascending = false;
        } else {
          AcceptKeyword("asc");
        }
        query->order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    return query;
  }

  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    RETURN_NOT_OK(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStmt>();

    if (AcceptKeyword("gapply")) {
      RETURN_NOT_OK(ExpectSymbol("("));
      ASSIGN_OR_RETURN(stmt->gapply_pgq, ParseQuery());
      RETURN_NOT_OK(ExpectSymbol(")"));
      if (AcceptKeyword("as")) {
        RETURN_NOT_OK(ExpectSymbol("("));
        while (true) {
          ASSIGN_OR_RETURN(std::string name,
                           ExpectIdentifier("output column name"));
          stmt->gapply_names.push_back(name);
          if (!AcceptSymbol(",")) break;
        }
        RETURN_NOT_OK(ExpectSymbol(")"));
      }
    } else if (PeekSymbol("*")) {
      Advance();
      stmt->select_star = true;
    } else {
      while (true) {
        SelectItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("as")) {
          ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("column alias"));
        } else if (Peek().type == TokenType::kIdentifier &&
                   Keywords().count(Peek().text) == 0) {
          item.alias = Advance().text;
        }
        stmt->items.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }

    RETURN_NOT_OK(ExpectKeyword("from"));
    while (true) {
      TableRef ref;
      ASSIGN_OR_RETURN(ref.table, ExpectIdentifier("table name"));
      ref.alias = ref.table;
      if (AcceptKeyword("as")) {
        ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
      } else if (Peek().type == TokenType::kIdentifier &&
                 Keywords().count(Peek().text) == 0) {
        ref.alias = Advance().text;
      }
      stmt->from.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }

    if (AcceptKeyword("where")) {
      ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (AcceptKeyword("group")) {
      RETURN_NOT_OK(ExpectKeyword("by"));
      while (true) {
        ASSIGN_OR_RETURN(SqlExprPtr col, ParseExpr());
        stmt->group_by.push_back(std::move(col));
        if (!AcceptSymbol(",")) break;
      }
      // The paper's §3.1 extension: "group by cols : var".
      if (AcceptSymbol(":")) {
        ASSIGN_OR_RETURN(stmt->group_var,
                         ExpectIdentifier("group variable name"));
      }
    }
    if (AcceptKeyword("having")) {
      ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  // Precedence climbing: or > and > not > comparison/is > add > mul > unary.
  Result<SqlExprPtr> ParseExpr() { return ParseOr(); }

  Result<SqlExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(SqlExprPtr left, ParseAnd());
    while (AcceptKeyword("or")) {
      ASSIGN_OR_RETURN(SqlExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(SqlExprPtr left, ParseNot());
    while (AcceptKeyword("and")) {
      ASSIGN_OR_RETURN(SqlExprPtr right, ParseNot());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<SqlExprPtr> ParseNot() {
    if (AcceptKeyword("not")) {
      // `not exists (...)` folds into the exists node.
      if (PeekKeyword("exists")) {
        ASSIGN_OR_RETURN(SqlExprPtr e, ParseComparison());
        if (e->kind == SqlExprKind::kExists) {
          e->negated = !e->negated;
          return e;
        }
        return MakeUnary(UnaryOp::kNot, std::move(e));
      }
      ASSIGN_OR_RETURN(SqlExprPtr child, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(child));
    }
    return ParseComparison();
  }

  Result<SqlExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(SqlExprPtr left, ParseAdditive());
    // IS [NOT] NULL.
    if (AcceptKeyword("is")) {
      const bool negated = AcceptKeyword("not");
      RETURN_NOT_OK(ExpectKeyword("null"));
      return MakeUnary(negated ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                       std::move(left));
    }
    struct CmpMap {
      const char* sym;
      BinaryOp op;
    };
    static constexpr CmpMap kCmps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const CmpMap& cmp : kCmps) {
      if (AcceptSymbol(cmp.sym)) {
        ASSIGN_OR_RETURN(SqlExprPtr right, ParseAdditive());
        return MakeBinary(cmp.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<SqlExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(SqlExprPtr left, ParseMultiplicative());
    while (true) {
      if (AcceptSymbol("+")) {
        ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kAdd, std::move(left), std::move(right));
      } else if (AcceptSymbol("-")) {
        ASSIGN_OR_RETURN(SqlExprPtr right, ParseMultiplicative());
        left = MakeBinary(BinaryOp::kSubtract, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<SqlExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(SqlExprPtr left, ParseUnary());
    while (true) {
      if (AcceptSymbol("*")) {
        ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
        left = MakeBinary(BinaryOp::kMultiply, std::move(left),
                          std::move(right));
      } else if (AcceptSymbol("/")) {
        ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
        left = MakeBinary(BinaryOp::kDivide, std::move(left),
                          std::move(right));
      } else if (AcceptSymbol("%")) {
        ASSIGN_OR_RETURN(SqlExprPtr right, ParseUnary());
        left = MakeBinary(BinaryOp::kModulo, std::move(left),
                          std::move(right));
      } else {
        return left;
      }
    }
  }

  Result<SqlExprPtr> ParseUnary() {
    if (AcceptSymbol("-")) {
      ASSIGN_OR_RETURN(SqlExprPtr child, ParseUnary());
      return MakeUnary(UnaryOp::kNegate, std::move(child));
    }
    return ParsePrimary();
  }

  Result<SqlExprPtr> ParsePrimary() {
    const Token& t = Peek();

    if (t.type == TokenType::kInteger) {
      Advance();
      return MakeLiteral(Value::Int(std::stoll(t.text)));
    }
    if (t.type == TokenType::kFloat) {
      Advance();
      return MakeLiteral(Value::Double(std::stod(t.text)));
    }
    if (t.type == TokenType::kString) {
      Advance();
      return MakeLiteral(Value::Str(t.text));
    }
    if (AcceptKeyword("null")) return MakeLiteral(Value::Null());
    if (AcceptKeyword("true")) return MakeLiteral(Value::Bool(true));
    if (AcceptKeyword("false")) return MakeLiteral(Value::Bool(false));

    if (PeekKeyword("exists")) {
      Advance();
      RETURN_NOT_OK(ExpectSymbol("("));
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kExists;
      ASSIGN_OR_RETURN(e->subquery, ParseQuery());
      RETURN_NOT_OK(ExpectSymbol(")"));
      return e;
    }

    if (PeekSymbol("(")) {
      Advance();
      if (PeekKeyword("select")) {
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kScalarSubquery;
        ASSIGN_OR_RETURN(e->subquery, ParseQuery());
        RETURN_NOT_OK(ExpectSymbol(")"));
        return e;
      }
      ASSIGN_OR_RETURN(SqlExprPtr inner, ParseExpr());
      RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }

    if (t.type == TokenType::kIdentifier) {
      // Aggregate / function call.
      if (IsAggregateName(t.text) && PeekSymbol("(", 1)) {
        Advance();  // name
        Advance();  // (
        auto e = std::make_unique<SqlExpr>();
        e->kind = SqlExprKind::kFuncCall;
        e->func = t.text;
        if (PeekSymbol("*")) {
          Advance();
          e->star_arg = true;
        } else {
          if (AcceptKeyword("distinct")) e->distinct_arg = true;
          ASSIGN_OR_RETURN(SqlExprPtr arg, ParseExpr());
          e->args.push_back(std::move(arg));
        }
        RETURN_NOT_OK(ExpectSymbol(")"));
        return e;
      }
      if (Keywords().count(t.text) > 0) {
        return Error("unexpected keyword in expression");
      }
      Advance();
      auto e = std::make_unique<SqlExpr>();
      e->kind = SqlExprKind::kColumnRef;
      if (AcceptSymbol(".")) {
        e->qualifier = t.text;
        ASSIGN_OR_RETURN(e->name, ExpectIdentifier("column name"));
      } else {
        e->name = t.text;
      }
      return e;
    }
    return Error("expected an expression");
  }

  // --- node helpers -------------------------------------------------------

  static SqlExprPtr MakeLiteral(Value v) {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kLiteral;
    e->literal = std::move(v);
    return e;
  }
  static SqlExprPtr MakeUnary(UnaryOp op, SqlExprPtr child) {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kUnary;
    e->unary_op = op;
    e->left = std::move(child);
    return e;
  }
  static SqlExprPtr MakeBinary(BinaryOp op, SqlExprPtr l, SqlExprPtr r) {
    auto e = std::make_unique<SqlExpr>();
    e->kind = SqlExprKind::kBinary;
    e->binary_op = op;
    e->left = std::move(l);
    e->right = std::move(r);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QueryPtr> Parse(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<std::optional<SetStatement>> TryParseSet(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  // Grammar: SET <identifier> = <integer> [';'] — anything not starting
  // with the SET keyword is left for Parse.
  if (tokens.empty() || tokens[0].type != TokenType::kIdentifier ||
      tokens[0].text != "set") {
    return std::optional<SetStatement>();
  }
  size_t i = 1;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(
        "parse error in SET statement at position " +
        std::to_string(i < tokens.size() ? tokens[i].position : sql.size()) +
        ": " + msg);
  };
  if (i >= tokens.size() || tokens[i].type != TokenType::kIdentifier) {
    return error("expected option name");
  }
  SetStatement stmt;
  stmt.name = tokens[i++].text;
  if (i >= tokens.size() || tokens[i].type != TokenType::kSymbol ||
      tokens[i].text != "=") {
    return error("expected '='");
  }
  ++i;
  bool negative = false;
  if (i < tokens.size() && tokens[i].type == TokenType::kSymbol &&
      tokens[i].text == "-") {
    negative = true;
    ++i;
  }
  if (!negative && i < tokens.size() &&
      tokens[i].type == TokenType::kIdentifier) {
    // Boolean spellings for on/off knobs (`SET profile = on`); any other
    // identifier is a word value for the engine to validate
    // (`SET storage = columnar`).
    const std::string& word = tokens[i].text;
    if (word == "on" || word == "true") {
      stmt.value = 1;
    } else if (word == "off" || word == "false") {
      stmt.value = 0;
    } else {
      stmt.word = word;
    }
    ++i;
  } else {
    if (i >= tokens.size() || tokens[i].type != TokenType::kInteger) {
      return error("expected integer value");
    }
    stmt.value = std::stoll(tokens[i++].text);
    if (negative) stmt.value = -stmt.value;
  }
  if (i < tokens.size() && tokens[i].type == TokenType::kSymbol &&
      tokens[i].text == ";") {
    ++i;
  }
  if (i < tokens.size() && tokens[i].type != TokenType::kEnd) {
    return error("unexpected trailing input");
  }
  return std::optional<SetStatement>(std::move(stmt));
}

Result<std::optional<ExplainStatement>> TryParseExplain(
    const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(sql));
  if (tokens.empty() || tokens[0].type != TokenType::kIdentifier ||
      tokens[0].text != "explain") {
    return std::optional<ExplainStatement>();
  }
  size_t i = 1;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(
        "parse error in EXPLAIN statement at position " +
        std::to_string(i < tokens.size() ? tokens[i].position : sql.size()) +
        ": " + msg);
  };
  auto is_word = [&](const char* word) {
    return i < tokens.size() && tokens[i].type == TokenType::kIdentifier &&
           tokens[i].text == word;
  };
  ExplainStatement stmt;
  if (i < tokens.size() && tokens[i].type == TokenType::kSymbol &&
      tokens[i].text == "(") {
    // Parenthesized option list: (ANALYZE[, FORMAT JSON|TEXT]).
    ++i;
    while (true) {
      if (is_word("analyze")) {
        stmt.analyze = true;
        ++i;
      } else if (is_word("format")) {
        ++i;
        if (is_word("json")) {
          stmt.json = true;
        } else if (is_word("text")) {
          stmt.json = false;
        } else {
          return error("expected JSON or TEXT after FORMAT");
        }
        ++i;
      } else {
        return error("expected EXPLAIN option (ANALYZE, FORMAT)");
      }
      if (i < tokens.size() && tokens[i].type == TokenType::kSymbol &&
          tokens[i].text == ",") {
        ++i;
        continue;
      }
      break;
    }
    if (i >= tokens.size() || tokens[i].type != TokenType::kSymbol ||
        tokens[i].text != ")") {
      return error("expected ')' closing the EXPLAIN option list");
    }
    ++i;
  } else if (is_word("analyze")) {
    stmt.analyze = true;
    ++i;
  }
  if (i >= tokens.size() || tokens[i].type == TokenType::kEnd) {
    return error("expected a statement after EXPLAIN");
  }
  stmt.query = sql.substr(tokens[i].position);
  return std::optional<ExplainStatement>(std::move(stmt));
}

}  // namespace gapply::sql
