#include "src/sql/lexer.h"

#include <cctype>

#include "src/common/string_util.h"

namespace gapply::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;

    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(input[i])) ++i;
      const std::string raw = input.substr(start, i - start);
      tokens.push_back({TokenType::kIdentifier, ToLower(raw), raw, start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (input[i] == '+' || input[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      const std::string raw = input.substr(start, i - start);
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        raw, raw, start});
      continue;
    }
    if (c == '\'') {
      std::string value;
      ++i;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // escaped quote
            value.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value.push_back(input[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument(
            "unterminated string literal at offset " +
            std::to_string(start));
      }
      tokens.push_back({TokenType::kString, value,
                        input.substr(start, i - start), start});
      continue;
    }

    // Multi-char operators first.
    auto symbol = [&](const std::string& sym) {
      tokens.push_back({TokenType::kSymbol, sym, sym, start});
      i += sym.size();
    };
    if (c == '<' && i + 1 < n && input[i + 1] == '>') {
      symbol("<>");
      continue;
    }
    if (c == '!' && i + 1 < n && input[i + 1] == '=') {
      tokens.push_back({TokenType::kSymbol, "<>", "!=", start});
      i += 2;
      continue;
    }
    if (c == '<' && i + 1 < n && input[i + 1] == '=') {
      symbol("<=");
      continue;
    }
    if (c == '>' && i + 1 < n && input[i + 1] == '=') {
      symbol(">=");
      continue;
    }
    switch (c) {
      case '(':
      case ')':
      case ',':
      case '.':
      case ';':
      case ':':
      case '*':
      case '+':
      case '-':
      case '/':
      case '%':
      case '=':
      case '<':
      case '>':
        symbol(std::string(1, c));
        continue;
      default:
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(start));
    }
  }
  tokens.push_back({TokenType::kEnd, "", "", n});
  return tokens;
}

}  // namespace gapply::sql
