#ifndef GAPPLY_SQL_PARSER_H_
#define GAPPLY_SQL_PARSER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/result.h"
#include "src/sql/ast.h"

namespace gapply::sql {

/// Parses one SQL statement (an optional trailing ';' is allowed) into an
/// AST. Grammar (case-insensitive keywords):
///
///   query       := select (UNION ALL select)* [ORDER BY order_list]
///   select      := SELECT select_list FROM table_list
///                  [WHERE expr]
///                  [GROUP BY column_list [':' ident]]
///                  [HAVING expr]
///   select_list := '*' | gapply_item | item (',' item)*
///   gapply_item := GAPPLY '(' query ')' [AS '(' ident_list ')']
///   item        := expr [[AS] ident]
///   table_list  := ident [ident] (',' ident [ident])*
///
/// Expressions support literals (integers, floats, strings, NULL, TRUE,
/// FALSE), qualified column references, arithmetic, comparisons,
/// AND/OR/NOT, IS [NOT] NULL, aggregate calls (COUNT/SUM/AVG/MIN/MAX with
/// optional DISTINCT and COUNT(*)), scalar subqueries `(SELECT ...)`, and
/// [NOT] EXISTS (SELECT ...).
Result<QueryPtr> Parse(const std::string& sql);

/// A session option assignment: `SET <name> = <value>` where value is an
/// integer, one of the boolean spellings ON/OFF/TRUE/FALSE (mapped to
/// 1/0), or a bare identifier for word-valued knobs, e.g.
/// `SET parallelism = 4`, `SET profile = on`, `SET storage = columnar`.
/// Option names are lowercased; which names (and which words) are valid is
/// decided by the engine, not the parser.
struct SetStatement {
  std::string name;
  int64_t value = 0;
  /// Non-empty for word-valued assignments (`SET storage = columnar`):
  /// the lowercased identifier. The boolean spellings ON/OFF/TRUE/FALSE
  /// keep mapping to `value` 1/0 and leave this empty, as do integers.
  std::string word;
};

/// If `sql` is a SET statement, parses and returns it; returns nullopt when
/// the input does not start with the SET keyword (callers then hand the
/// string to Parse). A malformed SET statement is an InvalidArgument error.
Result<std::optional<SetStatement>> TryParseSet(const std::string& sql);

/// An EXPLAIN request wrapping an ordinary statement:
///
///   EXPLAIN <query>                      (plan only)
///   EXPLAIN ANALYZE <query>              (execute + annotated plan tree)
///   EXPLAIN (ANALYZE) <query>
///   EXPLAIN (ANALYZE, FORMAT JSON) <query>
///   EXPLAIN (ANALYZE, FORMAT TEXT) <query>
///
/// `query` is the raw SQL following the EXPLAIN prefix, ready to hand back
/// to Parse/Query.
struct ExplainStatement {
  bool analyze = false;
  bool json = false;
  std::string query;
};

/// If `sql` is an EXPLAIN statement, parses the prefix and returns it;
/// returns nullopt when the input does not start with the EXPLAIN keyword.
/// A malformed EXPLAIN prefix is an InvalidArgument error.
Result<std::optional<ExplainStatement>> TryParseExplain(const std::string& sql);

}  // namespace gapply::sql

#endif  // GAPPLY_SQL_PARSER_H_
