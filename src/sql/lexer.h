#ifndef GAPPLY_SQL_LEXER_H_
#define GAPPLY_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace gapply::sql {

enum class TokenType {
  kIdentifier,  // table / column / function names (case-insensitive)
  kInteger,
  kFloat,
  kString,    // '...' literal, quotes stripped, '' unescaped
  kSymbol,    // punctuation / operators, text holds the exact symbol
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier lowercased; symbols verbatim
  std::string raw;    // original spelling (for error messages)
  size_t position = 0;  // byte offset in the input
};

/// Splits `input` into tokens. Symbols recognized:
///   ( ) , . ; : * + - / % = <> != < <= > >=
/// Comments: `-- ...` to end of line. Errors: unterminated strings,
/// unexpected characters.
Result<std::vector<Token>> Lex(const std::string& input);

}  // namespace gapply::sql

#endif  // GAPPLY_SQL_LEXER_H_
