#ifndef GAPPLY_SQL_BINDER_H_
#define GAPPLY_SQL_BINDER_H_

#include <string>
#include <vector>

#include "src/plan/logical_plan.h"
#include "src/sql/ast.h"
#include "src/storage/catalog.h"

namespace gapply::sql {

/// \brief Semantic analysis: resolves a parsed Query against a catalog and
/// produces a bound logical plan.
///
/// Notable translations:
///  - Comma joins + WHERE equi-conjuncts become left-deep annotated join
///    trees (the §4 representation); remaining conjuncts become selections.
///  - Scalar subqueries become Apply operators whose appended column
///    replaces the subquery in the predicate; `[NOT] EXISTS (...)` becomes
///    Apply + Exists. Column references that resolve in an enclosing scope
///    become correlated references (depth = number of intervening Applys).
///  - `select gapply(PGQ(x)) … group by cols : x` becomes LogicalGApply;
///    inside the PGQ, `from x` scans the relation-valued variable, which
///    carries *all* columns of the outer query (§3.1).
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  Result<LogicalOpPtr> Bind(const Query& query);

 private:
  struct Scope {
    const Schema* schema;
  };

  /// Group variables visible to FROM clauses (name → group schema).
  struct GroupVar {
    std::string name;
    const Schema* schema;
  };

  Result<LogicalOpPtr> BindQuery(const Query& query,
                                 std::vector<Scope>* scopes);
  Result<LogicalOpPtr> BindSelect(const SelectStmt& stmt,
                                  std::vector<Scope>* scopes);
  Result<LogicalOpPtr> BindGApplySelect(const SelectStmt& stmt,
                                        LogicalOpPtr input,
                                        std::vector<Scope>* scopes);

  /// FROM list (+ join-key extraction from WHERE conjuncts) → plan; the
  /// conjuncts consumed as join keys are removed from `conjuncts`.
  Result<LogicalOpPtr> BindFrom(const SelectStmt& stmt,
                                std::vector<const SqlExpr*>* conjuncts,
                                std::vector<Scope>* scopes);

  /// Rewrites subqueries in `expr` into Applys around `*plan`; returns the
  /// bound expression (which may reference appended columns), or nullptr
  /// for a consumed top-level EXISTS conjunct.
  Result<ExprPtr> BindPredicate(const SqlExpr& expr, LogicalOpPtr* plan,
                                std::vector<Scope>* scopes);

  /// Pure expression binding (no subqueries allowed).
  Result<ExprPtr> BindExpr(const SqlExpr& expr, std::vector<Scope>* scopes);

  Result<LogicalOpPtr> BindScanRef(const TableRef& ref);

  const Catalog* catalog_;
  std::vector<GroupVar> group_vars_;
};

/// Convenience: parse + bind.
Result<LogicalOpPtr> ParseAndBind(const Catalog& catalog,
                                  const std::string& sql);

}  // namespace gapply::sql

#endif  // GAPPLY_SQL_BINDER_H_
