#include "src/sql/binder.h"

#include <map>

#include "src/common/string_util.h"
#include "src/sql/parser.h"

namespace gapply::sql {

namespace {

// Splits an AND tree into conjunct pointers (AST is not modified).
void SplitSqlConjuncts(const SqlExpr* expr,
                       std::vector<const SqlExpr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == SqlExprKind::kBinary &&
      expr->binary_op == BinaryOp::kAnd) {
    SplitSqlConjuncts(expr->left.get(), out);
    SplitSqlConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

bool ContainsAggregate(const SqlExpr& expr) {
  switch (expr.kind) {
    case SqlExprKind::kFuncCall:
      return true;
    case SqlExprKind::kUnary:
      return expr.left != nullptr && ContainsAggregate(*expr.left);
    case SqlExprKind::kBinary:
      return (expr.left != nullptr && ContainsAggregate(*expr.left)) ||
             (expr.right != nullptr && ContainsAggregate(*expr.right));
    default:
      return false;  // subqueries are separate scopes
  }
}

Result<AggKind> AggKindFromName(const std::string& name, bool star) {
  if (name == "count") return star ? AggKind::kCountStar : AggKind::kCount;
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  if (name == "max") return AggKind::kMax;
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

std::string ItemName(const SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == SqlExprKind::kColumnRef) return item.expr->name;
  if (item.expr->kind == SqlExprKind::kFuncCall) return item.expr->func;
  return "col" + std::to_string(index);
}

}  // namespace

Result<LogicalOpPtr> Binder::Bind(const Query& query) {
  std::vector<Scope> scopes;
  return BindQuery(query, &scopes);
}

Result<LogicalOpPtr> Binder::BindQuery(const Query& query,
                                       std::vector<Scope>* scopes) {
  if (query.branches.empty()) {
    return Status::InvalidArgument("query with no select branches");
  }
  std::vector<LogicalOpPtr> branches;
  for (const auto& stmt : query.branches) {
    ASSIGN_OR_RETURN(LogicalOpPtr branch, BindSelect(*stmt, scopes));
    branches.push_back(std::move(branch));
  }
  LogicalOpPtr plan;
  if (branches.size() == 1) {
    plan = std::move(branches[0]);
  } else {
    ASSIGN_OR_RETURN(plan, LogicalUnionAll::Make(std::move(branches)));
  }
  if (!query.order_by.empty()) {
    std::vector<SortKey> keys;
    std::vector<Scope> local{{&plan->output_schema()}};
    for (const OrderItem& item : query.order_by) {
      ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*item.expr, &local));
      if (e->kind() != ExprKind::kColumnRef) {
        return Status::NotImplemented(
            "ORDER BY supports only column references");
      }
      keys.push_back({static_cast<const ColumnRefExpr*>(e.get())->index(),
                      item.ascending});
    }
    plan = std::make_unique<LogicalOrderBy>(std::move(plan), std::move(keys));
  }
  return plan;
}

Result<LogicalOpPtr> Binder::BindScanRef(const TableRef& ref) {
  // Group variables shadow tables (innermost binding last).
  for (auto it = group_vars_.rbegin(); it != group_vars_.rend(); ++it) {
    if (EqualsIgnoreCase(it->name, ref.table)) {
      Schema schema = *it->schema;
      if (!EqualsIgnoreCase(ref.alias, ref.table)) {
        schema = schema.WithQualifier(ref.alias);
      }
      return LogicalOpPtr(
          std::make_unique<LogicalGroupScan>(it->name, std::move(schema)));
    }
  }
  ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(ref.table));
  return LogicalOpPtr(std::make_unique<LogicalScan>(table, ref.alias));
}

Result<LogicalOpPtr> Binder::BindFrom(const SelectStmt& stmt,
                                      std::vector<const SqlExpr*>* conjuncts,
                                      std::vector<Scope>* scopes) {
  (void)scopes;
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM clause is required");
  }
  ASSIGN_OR_RETURN(LogicalOpPtr plan, BindScanRef(stmt.from[0]));

  for (size_t i = 1; i < stmt.from.size(); ++i) {
    ASSIGN_OR_RETURN(LogicalOpPtr right, BindScanRef(stmt.from[i]));
    const Schema& ls = plan->output_schema();
    const Schema& rs = right->output_schema();

    // Pull equality conjuncts that bridge the accumulated plan and the new
    // table; they become the join's key annotation (§4's annotated joins).
    std::vector<int> left_keys;
    std::vector<int> right_keys;
    for (auto it = conjuncts->begin(); it != conjuncts->end();) {
      const SqlExpr* c = *it;
      bool consumed = false;
      if (c->kind == SqlExprKind::kBinary &&
          c->binary_op == BinaryOp::kEq &&
          c->left->kind == SqlExprKind::kColumnRef &&
          c->right->kind == SqlExprKind::kColumnRef) {
        const auto resolve = [](const Schema& s, const SqlExpr& e) {
          return s.TryResolve(e.name, e.qualifier);
        };
        int li = resolve(ls, *c->left);
        int ri = resolve(rs, *c->right);
        if (li < 0 || ri < 0) {
          li = resolve(ls, *c->right);
          ri = resolve(rs, *c->left);
        }
        if (li >= 0 && ri >= 0) {
          left_keys.push_back(li);
          right_keys.push_back(ri);
          consumed = true;
        }
      }
      it = consumed ? conjuncts->erase(it) : it + 1;
    }
    plan = std::make_unique<LogicalJoin>(std::move(plan), std::move(right),
                                         std::move(left_keys),
                                         std::move(right_keys));
  }
  return plan;
}

Result<ExprPtr> Binder::BindExpr(const SqlExpr& expr,
                                 std::vector<Scope>* scopes) {
  switch (expr.kind) {
    case SqlExprKind::kLiteral:
      return Lit(expr.literal);
    case SqlExprKind::kColumnRef: {
      // Innermost scope → plain reference; enclosing scopes → correlated.
      for (size_t up = 0; up < scopes->size(); ++up) {
        const Schema& schema = *(*scopes)[scopes->size() - 1 - up].schema;
        const int idx = schema.TryResolve(expr.name, expr.qualifier);
        if (idx < 0) continue;
        const Column& col = schema.column(static_cast<size_t>(idx));
        if (up == 0) {
          return ExprPtr(
              std::make_unique<ColumnRefExpr>(idx, col.type, col.name));
        }
        return ExprPtr(std::make_unique<CorrelatedColumnRefExpr>(
            static_cast<int>(up) - 1, idx, col.type, col.name));
      }
      return Status::NotFound(
          "column not found: " +
          (expr.qualifier.empty() ? expr.name
                                  : expr.qualifier + "." + expr.name));
    }
    case SqlExprKind::kUnary: {
      ASSIGN_OR_RETURN(ExprPtr child, BindExpr(*expr.left, scopes));
      return Unary(expr.unary_op, std::move(child));
    }
    case SqlExprKind::kBinary: {
      ASSIGN_OR_RETURN(ExprPtr l, BindExpr(*expr.left, scopes));
      ASSIGN_OR_RETURN(ExprPtr r, BindExpr(*expr.right, scopes));
      return Binary(expr.binary_op, std::move(l), std::move(r));
    }
    case SqlExprKind::kFuncCall:
      return Status::InvalidArgument(
          "aggregate '" + expr.func + "' is not allowed in this context");
    case SqlExprKind::kScalarSubquery:
    case SqlExprKind::kExists:
      return Status::InvalidArgument(
          "subquery is not allowed in this context");
  }
  return Status::Internal("unknown SQL expression kind");
}

Result<ExprPtr> Binder::BindPredicate(const SqlExpr& expr, LogicalOpPtr* plan,
                                      std::vector<Scope>* scopes) {
  // Top-level [NOT] EXISTS conjunct: becomes Apply + Exists, filtering by
  // construction; nothing remains to evaluate.
  if (expr.kind == SqlExprKind::kExists) {
    const Schema outer_schema = (*plan)->output_schema();
    scopes->push_back({&outer_schema});
    Result<LogicalOpPtr> sub = BindQuery(*expr.subquery, scopes);
    scopes->pop_back();
    RETURN_NOT_OK(sub.status());
    auto exists = std::make_unique<LogicalExists>(std::move(*sub),
                                                  expr.negated);
    *plan = std::make_unique<LogicalApply>(std::move(*plan),
                                           std::move(exists));
    return ExprPtr(nullptr);
  }

  // General expression: recursively replace scalar subqueries by Apply
  // output columns, then bind the rest normally.
  struct Rewriter {
    Binder* binder;
    LogicalOpPtr* plan;
    std::vector<Scope>* scopes;

    Result<ExprPtr> Rewrite(const SqlExpr& e) {
      switch (e.kind) {
        case SqlExprKind::kScalarSubquery: {
          const Schema outer_schema = (*plan)->output_schema();
          scopes->push_back({&outer_schema});
          Result<LogicalOpPtr> sub = binder->BindQuery(*e.subquery, scopes);
          scopes->pop_back();
          RETURN_NOT_OK(sub.status());
          if ((*sub)->output_schema().num_columns() != 1) {
            return Status::InvalidArgument(
                "scalar subquery must return exactly one column");
          }
          const int idx =
              static_cast<int>((*plan)->output_schema().num_columns());
          const Column col = (*sub)->output_schema().column(0);
          *plan = std::make_unique<LogicalApply>(std::move(*plan),
                                                 std::move(*sub));
          return ExprPtr(
              std::make_unique<ColumnRefExpr>(idx, col.type, col.name));
        }
        case SqlExprKind::kExists:
          return Status::NotImplemented(
              "EXISTS must be a top-level WHERE conjunct");
        case SqlExprKind::kUnary: {
          ASSIGN_OR_RETURN(ExprPtr child, Rewrite(*e.left));
          return Unary(e.unary_op, std::move(child));
        }
        case SqlExprKind::kBinary: {
          ASSIGN_OR_RETURN(ExprPtr l, Rewrite(*e.left));
          ASSIGN_OR_RETURN(ExprPtr r, Rewrite(*e.right));
          return Binary(e.binary_op, std::move(l), std::move(r));
        }
        default: {
          // Plain leaf: bind against the current plan plus outer scopes.
          std::vector<Scope> local = *scopes;
          local.push_back({&(*plan)->output_schema()});
          return binder->BindExpr(e, &local);
        }
      }
    }
  };
  Rewriter rewriter{this, plan, scopes};
  return rewriter.Rewrite(expr);
}

Result<LogicalOpPtr> Binder::BindGApplySelect(const SelectStmt& stmt,
                                              LogicalOpPtr input,
                                              std::vector<Scope>* scopes) {
  if (stmt.group_var.empty()) {
    return Status::InvalidArgument(
        "select gapply(...) requires 'group by <cols> : <var>'");
  }
  if (stmt.group_by.empty()) {
    return Status::InvalidArgument(
        "select gapply(...) requires grouping columns");
  }
  const Schema group_schema = input->output_schema();
  std::vector<int> gcols;
  {
    std::vector<Scope> local{{&group_schema}};
    for (const SqlExprPtr& g : stmt.group_by) {
      ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*g, &local));
      if (e->kind() != ExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "grouping expressions must be column references");
      }
      gcols.push_back(static_cast<const ColumnRefExpr*>(e.get())->index());
    }
  }

  group_vars_.push_back({stmt.group_var, &group_schema});
  Result<LogicalOpPtr> pgq = BindQuery(*stmt.gapply_pgq, scopes);
  group_vars_.pop_back();
  RETURN_NOT_OK(pgq.status());

  LogicalOpPtr pgq_plan = std::move(*pgq);
  if (!stmt.gapply_names.empty()) {
    const Schema& ps = pgq_plan->output_schema();
    if (stmt.gapply_names.size() != ps.num_columns()) {
      return Status::InvalidArgument(
          "gapply 'as (...)' names a different number of columns than the "
          "per-group query returns");
    }
    std::vector<ExprPtr> exprs;
    for (size_t i = 0; i < ps.num_columns(); ++i) {
      exprs.push_back(Col(ps, static_cast<int>(i)));
    }
    pgq_plan = std::make_unique<LogicalProject>(
        std::move(pgq_plan), std::move(exprs), stmt.gapply_names);
  }
  return LogicalOpPtr(std::make_unique<LogicalGApply>(
      std::move(input), std::move(gcols), stmt.group_var,
      std::move(pgq_plan)));
}

Result<LogicalOpPtr> Binder::BindSelect(const SelectStmt& stmt,
                                        std::vector<Scope>* scopes) {
  if (stmt.gapply_pgq == nullptr && !stmt.group_var.empty()) {
    return Status::InvalidArgument(
        "'group by ... : var' requires a gapply select list");
  }

  std::vector<const SqlExpr*> conjuncts;
  SplitSqlConjuncts(stmt.where.get(), &conjuncts);

  ASSIGN_OR_RETURN(LogicalOpPtr plan, BindFrom(stmt, &conjuncts, scopes));
  const size_t base_width = plan->output_schema().num_columns();

  // Remaining WHERE conjuncts (selections, scalar subqueries, EXISTS).
  for (const SqlExpr* c : conjuncts) {
    ASSIGN_OR_RETURN(ExprPtr pred, BindPredicate(*c, &plan, scopes));
    if (pred != nullptr) {
      plan = std::make_unique<LogicalSelect>(std::move(plan),
                                             std::move(pred));
    }
  }
  // Subquery Applys appended columns: restore the FROM-visible schema so
  // later phases (grouping, gapply variable binding) see only real columns.
  if (plan->output_schema().num_columns() > base_width) {
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (size_t i = 0; i < base_width; ++i) {
      exprs.push_back(Col(plan->output_schema(), static_cast<int>(i)));
      names.push_back(plan->output_schema().column(i).name);
    }
    plan = std::make_unique<LogicalProject>(std::move(plan),
                                            std::move(exprs),
                                            std::move(names));
  }

  if (stmt.gapply_pgq != nullptr) {
    return BindGApplySelect(stmt, std::move(plan), scopes);
  }

  // Classic aggregation paths.
  bool has_agg = stmt.having != nullptr && ContainsAggregate(*stmt.having);
  for (const SelectItem& item : stmt.items) {
    has_agg = has_agg || ContainsAggregate(*item.expr);
  }

  if (stmt.group_by.empty() && !has_agg) {
    if (stmt.having != nullptr) {
      return Status::InvalidArgument("HAVING requires aggregation");
    }
    if (stmt.select_star) return plan;
    // Plain projection, allowing scalar subqueries in the select list.
    std::vector<ExprPtr> exprs;
    std::vector<std::string> names;
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      ASSIGN_OR_RETURN(ExprPtr e,
                       BindPredicate(*stmt.items[i].expr, &plan, scopes));
      if (e == nullptr) {
        return Status::InvalidArgument(
            "EXISTS is not allowed in the select list");
      }
      exprs.push_back(std::move(e));
      names.push_back(ItemName(stmt.items[i], i));
    }
    return LogicalOpPtr(std::make_unique<LogicalProject>(
        std::move(plan), std::move(exprs), std::move(names)));
  }

  if (stmt.select_star) {
    return Status::InvalidArgument("SELECT * cannot be combined with "
                                   "aggregation");
  }

  // Collect aggregates from the select list and HAVING, bound against the
  // pre-aggregation schema.
  std::vector<AggregateDesc> aggs;
  std::map<const SqlExpr*, int> agg_slot;  // AST node → agg output ordinal
  {
    std::vector<Scope> local = *scopes;
    local.push_back({&plan->output_schema()});
    struct Collector {
      Binder* binder;
      std::vector<Scope>* local;
      std::vector<AggregateDesc>* aggs;
      std::map<const SqlExpr*, int>* slots;

      Status Collect(const SqlExpr& e) {
        if (e.kind == SqlExprKind::kFuncCall) {
          ASSIGN_OR_RETURN(AggKind kind,
                           AggKindFromName(e.func, e.star_arg));
          ExprPtr arg;
          if (!e.star_arg) {
            if (e.args.size() != 1) {
              return Status::InvalidArgument("aggregate takes one argument");
            }
            ASSIGN_OR_RETURN(arg, binder->BindExpr(*e.args[0], local));
          }
          (*slots)[&e] = static_cast<int>(aggs->size());
          aggs->emplace_back(kind, std::move(arg),
                             e.func + std::to_string(aggs->size()),
                             e.distinct_arg);
          return Status::OK();
        }
        if (e.kind == SqlExprKind::kUnary && e.left != nullptr) {
          return Collect(*e.left);
        }
        if (e.kind == SqlExprKind::kBinary) {
          RETURN_NOT_OK(Collect(*e.left));
          return Collect(*e.right);
        }
        if (e.kind == SqlExprKind::kScalarSubquery ||
            e.kind == SqlExprKind::kExists) {
          return Status::NotImplemented(
              "subqueries are not supported in aggregated select lists");
        }
        return Status::OK();
      }
    };
    Collector collector{this, &local, &aggs, &agg_slot};
    for (const SelectItem& item : stmt.items) {
      RETURN_NOT_OK(collector.Collect(*item.expr));
    }
    if (stmt.having != nullptr) {
      RETURN_NOT_OK(collector.Collect(*stmt.having));
    }
  }

  // Resolve grouping keys and build the aggregation operator.
  size_t num_keys = 0;
  if (!stmt.group_by.empty()) {
    std::vector<int> keys;
    std::vector<Scope> local{{&plan->output_schema()}};
    for (const SqlExprPtr& g : stmt.group_by) {
      ASSIGN_OR_RETURN(ExprPtr e, BindExpr(*g, &local));
      if (e->kind() != ExprKind::kColumnRef) {
        return Status::InvalidArgument(
            "GROUP BY expressions must be column references");
      }
      keys.push_back(static_cast<const ColumnRefExpr*>(e.get())->index());
    }
    num_keys = keys.size();
    plan = std::make_unique<LogicalGroupBy>(std::move(plan),
                                            std::move(keys),
                                            std::move(aggs));
  } else {
    plan = std::make_unique<LogicalScalarAgg>(std::move(plan),
                                              std::move(aggs));
  }

  // Re-bind the select items / HAVING against the post-aggregation schema:
  // aggregate calls become references to their output slots.
  const Schema& post = plan->output_schema();
  struct PostBinder {
    Binder* binder;
    const Schema* post;
    const std::map<const SqlExpr*, int>* slots;
    size_t num_keys;
    std::vector<Scope>* scopes;

    Result<ExprPtr> Rebind(const SqlExpr& e) {
      if (e.kind == SqlExprKind::kFuncCall) {
        const int slot = slots->at(&e);
        const int idx = static_cast<int>(num_keys) + slot;
        const Column& col = post->column(static_cast<size_t>(idx));
        return ExprPtr(
            std::make_unique<ColumnRefExpr>(idx, col.type, col.name));
      }
      if (e.kind == SqlExprKind::kUnary) {
        ASSIGN_OR_RETURN(ExprPtr child, Rebind(*e.left));
        return Unary(e.unary_op, std::move(child));
      }
      if (e.kind == SqlExprKind::kBinary) {
        ASSIGN_OR_RETURN(ExprPtr l, Rebind(*e.left));
        ASSIGN_OR_RETURN(ExprPtr r, Rebind(*e.right));
        return Binary(e.binary_op, std::move(l), std::move(r));
      }
      // Column references must name grouping columns (resolved against the
      // post-agg schema, whose first num_keys columns are the keys).
      std::vector<Scope> local = *scopes;
      local.push_back({post});
      ASSIGN_OR_RETURN(ExprPtr bound, binder->BindExpr(e, &local));
      if (bound->kind() == ExprKind::kColumnRef &&
          static_cast<const ColumnRefExpr*>(bound.get())->index() >=
              static_cast<int>(num_keys)) {
        return Status::InvalidArgument(
            "select list column is neither grouped nor aggregated");
      }
      return bound;
    }
  };
  PostBinder post_binder{this, &post, &agg_slot, num_keys, scopes};

  if (stmt.having != nullptr) {
    ASSIGN_OR_RETURN(ExprPtr having, post_binder.Rebind(*stmt.having));
    plan = std::make_unique<LogicalSelect>(std::move(plan),
                                           std::move(having));
  }

  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    ASSIGN_OR_RETURN(ExprPtr e, post_binder.Rebind(*stmt.items[i].expr));
    exprs.push_back(std::move(e));
    names.push_back(ItemName(stmt.items[i], i));
  }
  return LogicalOpPtr(std::make_unique<LogicalProject>(
      std::move(plan), std::move(exprs), std::move(names)));
}

Result<LogicalOpPtr> ParseAndBind(const Catalog& catalog,
                                  const std::string& sql) {
  ASSIGN_OR_RETURN(QueryPtr query, Parse(sql));
  Binder binder(&catalog);
  return binder.Bind(*query);
}

}  // namespace gapply::sql
