#ifndef GAPPLY_SQL_PRINTER_H_
#define GAPPLY_SQL_PRINTER_H_

#include <string>

#include "src/sql/ast.h"

namespace gapply::sql {

/// Renders an AST (parsed or synthesized) back to SQL text that round-trips
/// through the front end: `Parse(ToSql(q))` yields a semantically identical
/// query. Expressions are aggressively parenthesized so precedence never has
/// to be reconstructed, string literals escape embedded quotes, and double
/// literals are printed with shortest-round-trip precision.
///
/// The fuzzer (src/fuzz/) leans on this: every generated case is an AST that
/// is printed, re-parsed, and bound, so each random plan also exercises the
/// lexer→parser→binder pipeline, and the printed text IS the replayable
/// repro.
std::string ToSql(const Query& query);
std::string ToSql(const SelectStmt& stmt);
std::string ToSql(const SqlExpr& expr);

}  // namespace gapply::sql

#endif  // GAPPLY_SQL_PRINTER_H_
