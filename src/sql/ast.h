#ifndef GAPPLY_SQL_AST_H_
#define GAPPLY_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/expr/expr.h"  // UnaryOp / BinaryOp enums

namespace gapply::sql {

struct Query;

enum class SqlExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kFuncCall,        // aggregate or scalar function
  kScalarSubquery,  // (select ...)
  kExists,          // [not] exists (select ...)
};

/// Unresolved expression tree produced by the parser. The binder turns it
/// into a bound `Expr` (and subqueries into Apply operators).
struct SqlExpr {
  SqlExprKind kind = SqlExprKind::kLiteral;

  Value literal;                     // kLiteral

  std::string qualifier;             // kColumnRef: "t" in t.c (may be empty)
  std::string name;                  // kColumnRef column name (lowercased)

  UnaryOp unary_op = UnaryOp::kNot;  // kUnary (operand in `left`)
  BinaryOp binary_op = BinaryOp::kEq;
  std::unique_ptr<SqlExpr> left;
  std::unique_ptr<SqlExpr> right;

  std::string func;                  // kFuncCall name (lowercased)
  std::vector<std::unique_ptr<SqlExpr>> args;
  bool star_arg = false;             // count(*)
  bool distinct_arg = false;         // count(distinct x)

  std::unique_ptr<Query> subquery;   // kScalarSubquery / kExists
  bool negated = false;              // not exists
};

using SqlExprPtr = std::unique_ptr<SqlExpr>;

struct SelectItem {
  SqlExprPtr expr;
  std::string alias;  // empty = derived from the expression
};

struct TableRef {
  std::string table;  // lowercased
  std::string alias;  // defaults to the table name
};

struct OrderItem {
  SqlExprPtr expr;  // typically a column reference
  bool ascending = true;
};

/// One SELECT block. Either the classic form (`items`) or the paper's §3.1
/// groupwise form: `select gapply(<query>) [as (names)] from ... group by
/// cols : var`.
struct SelectStmt {
  // Classic form.
  std::vector<SelectItem> items;
  bool select_star = false;

  // gapply form.
  std::unique_ptr<Query> gapply_pgq;       // non-null ⇒ groupwise select
  std::vector<std::string> gapply_names;   // optional "as (a, b, c)"

  std::vector<TableRef> from;
  SqlExprPtr where;
  std::vector<SqlExprPtr> group_by;        // grouping column references
  std::string group_var;                   // "x" in `group by cols : x`
  SqlExprPtr having;
};

/// Full query: UNION ALL chain plus an optional trailing ORDER BY.
struct Query {
  std::vector<std::unique_ptr<SelectStmt>> branches;
  std::vector<OrderItem> order_by;
};

using QueryPtr = std::unique_ptr<Query>;

}  // namespace gapply::sql

#endif  // GAPPLY_SQL_AST_H_
