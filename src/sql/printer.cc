#include "src/sql/printer.h"

#include <charconv>
#include <string>

namespace gapply::sql {

namespace {

std::string PrintLiteral(const Value& v) {
  switch (v.type()) {
    case TypeId::kNull:
      return "null";
    case TypeId::kBool:
      return v.bool_val() ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(v.int_val());
    case TypeId::kDouble: {
      // Shortest representation that round-trips through strtod. If it
      // looks like an integer ("5", "-3") force a trailing ".0" so the
      // lexer still sees a float token.
      char buf[64];
      auto [end, ec] =
          std::to_chars(buf, buf + sizeof(buf), v.double_val());
      std::string s(buf, end);
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case TypeId::kString: {
      std::string out = "'";
      for (char c : v.str_val()) {
        if (c == '\'') out += "''";  // SQL quote escaping
        out += c;
      }
      out += "'";
      return out;
    }
  }
  return "null";
}

const char* BinaryOpToken(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSubtract:
      return "-";
    case BinaryOp::kMultiply:
      return "*";
    case BinaryOp::kDivide:
      return "/";
    case BinaryOp::kModulo:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

void PrintExpr(const SqlExpr& e, std::string* out);
void PrintQuery(const Query& q, std::string* out);

void PrintExpr(const SqlExpr& e, std::string* out) {
  switch (e.kind) {
    case SqlExprKind::kLiteral:
      *out += PrintLiteral(e.literal);
      return;
    case SqlExprKind::kColumnRef:
      if (!e.qualifier.empty()) {
        *out += e.qualifier;
        *out += '.';
      }
      *out += e.name;
      return;
    case SqlExprKind::kUnary:
      switch (e.unary_op) {
        case UnaryOp::kNot:
          *out += "(not ";
          PrintExpr(*e.left, out);
          *out += ')';
          return;
        case UnaryOp::kNegate:
          *out += "(- ";
          PrintExpr(*e.left, out);
          *out += ')';
          return;
        case UnaryOp::kIsNull:
          *out += '(';
          PrintExpr(*e.left, out);
          *out += " is null)";
          return;
        case UnaryOp::kIsNotNull:
          *out += '(';
          PrintExpr(*e.left, out);
          *out += " is not null)";
          return;
      }
      return;
    case SqlExprKind::kBinary:
      *out += '(';
      PrintExpr(*e.left, out);
      *out += ' ';
      *out += BinaryOpToken(e.binary_op);
      *out += ' ';
      PrintExpr(*e.right, out);
      *out += ')';
      return;
    case SqlExprKind::kFuncCall:
      *out += e.func;
      *out += '(';
      if (e.star_arg) {
        *out += '*';
      } else {
        if (e.distinct_arg) *out += "distinct ";
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) *out += ", ";
          PrintExpr(*e.args[i], out);
        }
      }
      *out += ')';
      return;
    case SqlExprKind::kScalarSubquery:
      *out += '(';
      PrintQuery(*e.subquery, out);
      *out += ')';
      return;
    case SqlExprKind::kExists:
      if (e.negated) *out += "not ";
      *out += "exists (";
      PrintQuery(*e.subquery, out);
      *out += ')';
      return;
  }
}

void PrintSelect(const SelectStmt& s, std::string* out) {
  *out += "select ";
  if (s.gapply_pgq != nullptr) {
    *out += "gapply(";
    PrintQuery(*s.gapply_pgq, out);
    *out += ')';
    if (!s.gapply_names.empty()) {
      *out += " as (";
      for (size_t i = 0; i < s.gapply_names.size(); ++i) {
        if (i > 0) *out += ", ";
        *out += s.gapply_names[i];
      }
      *out += ')';
    }
  } else if (s.select_star) {
    *out += '*';
  } else {
    for (size_t i = 0; i < s.items.size(); ++i) {
      if (i > 0) *out += ", ";
      PrintExpr(*s.items[i].expr, out);
      if (!s.items[i].alias.empty()) {
        *out += " as ";
        *out += s.items[i].alias;
      }
    }
  }
  *out += " from ";
  for (size_t i = 0; i < s.from.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += s.from[i].table;
    if (!s.from[i].alias.empty() && s.from[i].alias != s.from[i].table) {
      *out += " as ";
      *out += s.from[i].alias;
    }
  }
  if (s.where != nullptr) {
    *out += " where ";
    PrintExpr(*s.where, out);
  }
  if (!s.group_by.empty()) {
    *out += " group by ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) *out += ", ";
      PrintExpr(*s.group_by[i], out);
    }
    if (!s.group_var.empty()) {
      *out += " : ";
      *out += s.group_var;
    }
  }
  if (s.having != nullptr) {
    *out += " having ";
    PrintExpr(*s.having, out);
  }
}

void PrintQuery(const Query& q, std::string* out) {
  for (size_t i = 0; i < q.branches.size(); ++i) {
    if (i > 0) *out += " union all ";
    PrintSelect(*q.branches[i], out);
  }
  for (size_t i = 0; i < q.order_by.size(); ++i) {
    *out += i == 0 ? " order by " : ", ";
    PrintExpr(*q.order_by[i].expr, out);
    if (!q.order_by[i].ascending) *out += " desc";
  }
}

}  // namespace

std::string ToSql(const Query& query) {
  std::string out;
  PrintQuery(query, &out);
  return out;
}

std::string ToSql(const SelectStmt& stmt) {
  std::string out;
  PrintSelect(stmt, &out);
  return out;
}

std::string ToSql(const SqlExpr& expr) {
  std::string out;
  PrintExpr(expr, &out);
  return out;
}

}  // namespace gapply::sql
