#ifndef GAPPLY_ENGINE_DATABASE_H_
#define GAPPLY_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "src/common/json.h"
#include "src/common/thread_pool.h"

#include "src/exec/lowering.h"
#include "src/exec/physical_op.h"
#include "src/exec/profile.h"
#include "src/optimizer/optimizer.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"
#include "src/stats/stats.h"
#include "src/storage/catalog.h"
#include "src/tpch/tpch_gen.h"

namespace gapply {

/// Per-query knobs (see Database::Query).
struct QueryOptions {
  /// Run the rule optimizer (disable to execute the bound plan as-is —
  /// the benches' no-GApply baselines do this).
  bool optimize = true;
  Optimizer::Options optimizer;
  LoweringOptions lowering;
  /// Rows per RowBatch in the vectorized execution pipeline. 0 = the
  /// session default (`SET batch_size = N`, initially
  /// RowBatch::kDefaultCapacity).
  size_t batch_size = 0;
  /// Collect a per-operator runtime profile (scoped timers in the PhysOp
  /// entry points) for this query. Also enabled by the session knob
  /// `SET profile = on` and implicitly by EXPLAIN ANALYZE.
  bool profile = false;
};

/// Execution counters + fired-rule log for one query.
struct QueryStats {
  ExecContext::Counters counters;
  std::vector<std::string> fired_rules;
  /// Per-firing optimizer trace: rule name plus estimated cardinality of
  /// the rewritten subtree before/after (see Optimizer::RuleFiring).
  std::vector<Optimizer::RuleFiring> rule_trace;
  /// Per-operator runtime profile snapshot; populated only when the query
  /// ran with profiling on (QueryOptions::profile / SET profile = on /
  /// EXPLAIN ANALYZE).
  bool has_profile = false;
  ProfileNode profile;
};

/// \brief Top-level facade: catalog + statistics + SQL front end +
/// optimizer + executor.
///
/// Typical use:
///   Database db;
///   db.LoadTpch({.scale_factor = 0.01});
///   auto result = db.Query(
///       "select gapply(select count(*) from g) "
///       "from partsupp group by ps_suppkey : g");
///
/// Session options: `Query` also accepts `SET parallelism = N` (N workers
/// for GApply's per-group phase AND for plan-wide morsel parallelism —
/// Exchange fan-out, parallel hash-join build, parallel hash aggregation;
/// 1 = serial, 0 = all hardware threads) and `SET batch_size = N` (rows per
/// RowBatch in the vectorized pipeline; 1 degenerates to row-at-a-time)
/// and `SET profile = on|off` (collect per-operator runtime profiles for
/// every query; surfaced via QueryStats::profile and EXPLAIN ANALYZE)
/// and `SET storage = columnar|row` (TableScan read path; columnar — the
/// default — evaluates pushed-down `col <op> const` WHERE conjuncts over
/// dense per-column arrays and skips whole morsels via zone maps).
/// All persist for the session and apply to every subsequent query whose
/// QueryOptions do not override them.
///
/// `Query` also understands EXPLAIN prefixes: `EXPLAIN <q>` (plans only),
/// `EXPLAIN ANALYZE <q>` (execute + annotated profile tree), and
/// `EXPLAIN (ANALYZE, FORMAT JSON) <q>`; the report comes back as rows of
/// a single string column.
///
/// Parallel execution draws workers from a single Database-owned ThreadPool
/// shared by every query and every operator (Exchange, GApply, parallel
/// builds), instead of spinning a pool per execution.
class Database {
 public:
  Database() = default;

  /// Populates the catalog with the synthetic TPC-H subset and gathers
  /// statistics.
  Status LoadTpch(const tpch::TpchConfig& config);

  Catalog* catalog() { return &catalog_; }
  const Catalog& catalog() const { return catalog_; }
  StatsManager* stats() { return &stats_; }

  /// (Re)computes statistics for every table.
  Status Analyze() { return stats_.AnalyzeAll(catalog_); }

  /// Parses, binds, optimizes, and executes `sql`. `stats_out` (optional)
  /// receives execution counters and the fired-rule log.
  Result<QueryResult> Query(const std::string& sql,
                            const QueryOptions& options = {},
                            QueryStats* stats_out = nullptr);

  /// Executes an already-built logical plan.
  Result<QueryResult> Execute(const LogicalOp& plan,
                              const QueryOptions& options = {},
                              QueryStats* stats_out = nullptr);

  /// Parses + binds without optimizing (tests, EXPLAIN).
  Result<LogicalOpPtr> Plan(const std::string& sql) const;

  /// Multi-line report: bound plan, optimized plan, fired rules.
  Result<std::string> Explain(const std::string& sql,
                              const QueryOptions& options = {});

  /// EXPLAIN ANALYZE: executes `sql` (a plain query, no EXPLAIN prefix)
  /// with profiling on and renders the annotated physical plan tree —
  /// per-operator wall time (self vs. cumulative), rows/batches in and out,
  /// DOP, per-phase attribution (GApply partition vs. per-group-query,
  /// Exchange partition vs. merge) — followed by the optimizer rule trace.
  /// The query's result rows are discarded.
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     const QueryOptions& options = {});

  /// EXPLAIN (ANALYZE, FORMAT JSON): same execution, but returns the shared
  /// per-operator JSON schema (see ProfileToJson) under "plan", the rule
  /// trace under "rules", and headline counters under "counters".
  Result<JsonValue> ExplainAnalyzeJson(const std::string& sql,
                                       const QueryOptions& options = {});

  /// Session default for GApply's degree of parallelism, applied to every
  /// query whose QueryOptions leave `lowering.gapply_parallelism` at 0.
  size_t default_gapply_parallelism() const {
    return default_gapply_parallelism_;
  }
  void set_default_gapply_parallelism(size_t dop);

  /// Session default for the vectorized pipeline's batch size, applied to
  /// every query whose QueryOptions leave `batch_size` at 0.
  size_t default_batch_size() const { return default_batch_size_; }
  void set_default_batch_size(size_t n) {
    default_batch_size_ = n == 0 ? RowBatch::kDefaultCapacity : n;
  }

  /// Session default for runtime profiling (`SET profile = on`), applied to
  /// every query whose QueryOptions leave `profile` false.
  bool default_profile() const { return default_profile_; }
  void set_default_profile(bool on) { default_profile_ = on; }

  /// Session default for the TableScan storage path
  /// (`SET storage = columnar|row`), applied to every query whose
  /// QueryOptions leave `lowering.columnar_storage` unset. Columnar (the
  /// default) also enables predicate pushdown + zone-map pruning.
  bool default_columnar_storage() const { return default_columnar_storage_; }
  void set_default_columnar_storage(bool on) {
    default_columnar_storage_ = on;
  }

 private:
  /// Applies a parsed `SET name = value` statement to the session.
  Status ApplySetStatement(const sql::SetStatement& stmt);

  /// Returns the shared engine pool, (re)created lazily so that the pool's
  /// runner count (pool threads + the helping caller) covers `max_dop`
  /// workers. Never shrinks an existing pool.
  ThreadPool* shared_thread_pool(size_t max_dop);

  Catalog catalog_;
  StatsManager stats_;
  size_t default_gapply_parallelism_ = 1;
  size_t default_batch_size_ = RowBatch::kDefaultCapacity;
  bool default_profile_ = false;
  bool default_columnar_storage_ = true;
  std::unique_ptr<ThreadPool> thread_pool_;
};

}  // namespace gapply

#endif  // GAPPLY_ENGINE_DATABASE_H_
