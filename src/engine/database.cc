#include "src/engine/database.h"

namespace gapply {

Status Database::LoadTpch(const tpch::TpchConfig& config) {
  RETURN_NOT_OK(tpch::Generate(config, &catalog_));
  return stats_.AnalyzeAll(catalog_);
}

Result<LogicalOpPtr> Database::Plan(const std::string& sql) const {
  return sql::ParseAndBind(catalog_, sql);
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const QueryOptions& options,
                                    QueryStats* stats_out) {
  ASSIGN_OR_RETURN(LogicalOpPtr plan, Plan(sql));
  return Execute(*plan, options, stats_out);
}

Result<QueryResult> Database::Execute(const LogicalOp& plan,
                                      const QueryOptions& options,
                                      QueryStats* stats_out) {
  LogicalOpPtr working = plan.Clone();
  if (options.optimize) {
    Optimizer optimizer(&catalog_, &stats_, options.optimizer);
    ASSIGN_OR_RETURN(working, optimizer.Optimize(std::move(working)));
    if (stats_out != nullptr) {
      stats_out->fired_rules = optimizer.fired_rules();
    }
  }
  ASSIGN_OR_RETURN(PhysOpPtr phys, LowerPlan(*working, options.lowering));
  ExecContext ctx;
  ASSIGN_OR_RETURN(QueryResult result, ExecuteToVector(phys.get(), &ctx));
  if (stats_out != nullptr) stats_out->counters = ctx.counters();
  return result;
}

Result<std::string> Database::Explain(const std::string& sql,
                                      const QueryOptions& options) {
  ASSIGN_OR_RETURN(LogicalOpPtr plan, Plan(sql));
  std::string out = "=== bound plan ===\n" + plan->DebugString();
  if (options.optimize) {
    Optimizer optimizer(&catalog_, &stats_, options.optimizer);
    ASSIGN_OR_RETURN(LogicalOpPtr optimized,
                     optimizer.Optimize(std::move(plan)));
    out += "=== optimized plan ===\n" + optimized->DebugString();
    out += "=== fired rules ===\n";
    if (optimizer.fired_rules().empty()) {
      out += "(none)\n";
    } else {
      for (const std::string& r : optimizer.fired_rules()) {
        out += r + "\n";
      }
    }
    ASSIGN_OR_RETURN(PhysOpPtr phys, LowerPlan(*optimized, options.lowering));
    out += "=== physical plan ===\n" + phys->DebugString();
  }
  return out;
}

}  // namespace gapply
