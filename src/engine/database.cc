#include "src/engine/database.h"

#include <algorithm>
#include <cstdio>

#include "src/common/thread_pool.h"

namespace gapply {

namespace {

std::string FormatRows(double rows) {
  if (rows < 0) return "?";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", rows);
  return buf;
}

/// One string column, one row per line of `text` — how EXPLAIN output is
/// surfaced through the ordinary Query result channel.
QueryResult TextResult(const std::string& text) {
  QueryResult result;
  result.schema = Schema({Column("explain", TypeId::kString)});
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    result.rows.push_back(Row{Value::Str(text.substr(start, end - start))});
    start = end + 1;
  }
  return result;
}

}  // namespace

Status Database::LoadTpch(const tpch::TpchConfig& config) {
  RETURN_NOT_OK(tpch::Generate(config, &catalog_));
  return stats_.AnalyzeAll(catalog_);
}

Result<LogicalOpPtr> Database::Plan(const std::string& sql) const {
  return sql::ParseAndBind(catalog_, sql);
}

void Database::set_default_gapply_parallelism(size_t dop) {
  // 0 = "all the hardware", mirroring SQL Server's MAXDOP 0.
  default_gapply_parallelism_ =
      dop == 0 ? ThreadPool::DefaultParallelism() : dop;
}

ThreadPool* Database::shared_thread_pool(size_t max_dop) {
  // The caller helps drain task groups (ThreadPool::RunGroup), so a pool of
  // N threads serves N + 1 concurrent workers. Size for the larger of the
  // hardware and the requested DOP; recreate only when too small so the
  // pool is warm across queries.
  const size_t want = std::max(ThreadPool::DefaultParallelism(), max_dop);
  const size_t threads = want > 1 ? want - 1 : 1;
  if (thread_pool_ == nullptr || thread_pool_->size() < threads) {
    thread_pool_ = std::make_unique<ThreadPool>(threads);
  }
  return thread_pool_.get();
}

Status Database::ApplySetStatement(const sql::SetStatement& stmt) {
  if (stmt.name == "storage") {
    if (stmt.word == "columnar") {
      set_default_columnar_storage(true);
      return Status::OK();
    }
    if (stmt.word == "row") {
      set_default_columnar_storage(false);
      return Status::OK();
    }
    return Status::InvalidArgument(
        "SET storage: value must be columnar or row, got " +
        (stmt.word.empty() ? std::to_string(stmt.value) : stmt.word));
  }
  if (!stmt.word.empty()) {
    // Every remaining knob takes an integer or on/off value.
    return Status::InvalidArgument("SET " + stmt.name +
                                   ": unexpected value " + stmt.word);
  }
  if (stmt.name == "parallelism" || stmt.name == "gapply_parallelism") {
    if (stmt.value < 0) {
      return Status::InvalidArgument(
          "SET " + stmt.name + ": value must be >= 0, got " +
          std::to_string(stmt.value));
    }
    set_default_gapply_parallelism(static_cast<size_t>(stmt.value));
    return Status::OK();
  }
  if (stmt.name == "batch_size") {
    if (stmt.value < 0) {
      return Status::InvalidArgument(
          "SET batch_size: value must be >= 0, got " +
          std::to_string(stmt.value));
    }
    set_default_batch_size(static_cast<size_t>(stmt.value));
    return Status::OK();
  }
  if (stmt.name == "profile") {
    if (stmt.value != 0 && stmt.value != 1) {
      return Status::InvalidArgument(
          "SET profile: value must be on/off (1/0), got " +
          std::to_string(stmt.value));
    }
    set_default_profile(stmt.value != 0);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown session option: " + stmt.name);
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const QueryOptions& options,
                                    QueryStats* stats_out) {
  ASSIGN_OR_RETURN(std::optional<sql::SetStatement> set_stmt,
                   sql::TryParseSet(sql));
  if (set_stmt.has_value()) {
    RETURN_NOT_OK(ApplySetStatement(*set_stmt));
    return QueryResult{};
  }
  ASSIGN_OR_RETURN(std::optional<sql::ExplainStatement> explain_stmt,
                   sql::TryParseExplain(sql));
  if (explain_stmt.has_value()) {
    if (!explain_stmt->analyze) {
      if (explain_stmt->json) {
        return Status::InvalidArgument(
            "EXPLAIN (FORMAT JSON) requires ANALYZE");
      }
      ASSIGN_OR_RETURN(std::string text,
                       Explain(explain_stmt->query, options));
      return TextResult(text);
    }
    if (explain_stmt->json) {
      ASSIGN_OR_RETURN(JsonValue json,
                       ExplainAnalyzeJson(explain_stmt->query, options));
      return TextResult(json.Dump(2));
    }
    ASSIGN_OR_RETURN(std::string text,
                     ExplainAnalyze(explain_stmt->query, options));
    return TextResult(text);
  }
  ASSIGN_OR_RETURN(LogicalOpPtr plan, Plan(sql));
  return Execute(*plan, options, stats_out);
}

Result<QueryResult> Database::Execute(const LogicalOp& plan,
                                      const QueryOptions& options,
                                      QueryStats* stats_out) {
  LogicalOpPtr working = plan.Clone();
  if (options.optimize) {
    Optimizer optimizer(&catalog_, &stats_, options.optimizer);
    ASSIGN_OR_RETURN(working, optimizer.Optimize(std::move(working)));
    if (stats_out != nullptr) {
      stats_out->fired_rules = optimizer.fired_rules();
      stats_out->rule_trace = optimizer.rule_trace();
    }
  }
  const bool profile = options.profile || default_profile_;
  LoweringOptions lowering = options.lowering;
  if (lowering.gapply_parallelism == 0) {
    lowering.gapply_parallelism = default_gapply_parallelism_;
  }
  if (lowering.exchange_parallelism == 0) {
    lowering.exchange_parallelism = default_gapply_parallelism_;
  }
  if (!lowering.columnar_storage.has_value()) {
    lowering.columnar_storage = default_columnar_storage_;
  }
  CostModel cost_model(&catalog_, &stats_);
  if (profile && lowering.cost_model == nullptr) {
    // Stamp estimated cardinalities so the profile can report estimated
    // vs. actual rows per operator.
    lowering.cost_model = &cost_model;
  }
  ASSIGN_OR_RETURN(PhysOpPtr phys, LowerPlan(*working, lowering));
  ExecContext ctx;
  ctx.set_profiling(profile);
  ctx.set_batch_size(options.batch_size == 0 ? default_batch_size_
                                             : options.batch_size);
  const size_t max_dop =
      std::max(lowering.gapply_parallelism, lowering.exchange_parallelism);
  if (max_dop > 1) ctx.set_thread_pool(shared_thread_pool(max_dop));
  ASSIGN_OR_RETURN(QueryResult result, ExecuteToVector(phys.get(), &ctx));
  if (stats_out != nullptr) {
    stats_out->counters = ctx.counters();
    if (profile) {
      stats_out->has_profile = true;
      stats_out->profile = CollectProfile(*phys);
    }
  }
  return result;
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql,
                                             const QueryOptions& options) {
  QueryOptions opts = options;
  opts.profile = true;
  QueryStats stats;
  ASSIGN_OR_RETURN(LogicalOpPtr plan, Plan(sql));
  ASSIGN_OR_RETURN(QueryResult result, Execute(*plan, opts, &stats));
  std::string out = RenderProfileText(stats.profile);
  out += "result rows: " + std::to_string(result.rows.size()) + "\n";
  if (!stats.rule_trace.empty()) {
    out += "=== rule trace ===\n";
    for (const Optimizer::RuleFiring& firing : stats.rule_trace) {
      out += firing.rule + "  (est rows " + FormatRows(firing.rows_before) +
             " -> " + FormatRows(firing.rows_after) + ")\n";
    }
  }
  return out;
}

Result<JsonValue> Database::ExplainAnalyzeJson(const std::string& sql,
                                               const QueryOptions& options) {
  QueryOptions opts = options;
  opts.profile = true;
  QueryStats stats;
  ASSIGN_OR_RETURN(LogicalOpPtr plan, Plan(sql));
  ASSIGN_OR_RETURN(QueryResult result, Execute(*plan, opts, &stats));
  JsonValue out = JsonValue::Object();
  out.Set("plan", ProfileToJson(stats.profile));
  JsonValue rules = JsonValue::Array();
  for (const Optimizer::RuleFiring& firing : stats.rule_trace) {
    JsonValue rule = JsonValue::Object();
    rule.Set("rule", JsonValue::Str(firing.rule));
    if (firing.rows_before >= 0) {
      rule.Set("estimated_rows_before", JsonValue::Double(firing.rows_before));
    }
    if (firing.rows_after >= 0) {
      rule.Set("estimated_rows_after", JsonValue::Double(firing.rows_after));
    }
    rules.Append(std::move(rule));
  }
  out.Set("rules", std::move(rules));
  JsonValue counters = JsonValue::Object();
  counters.Set("result_rows",
               JsonValue::Int(static_cast<int64_t>(result.rows.size())));
  counters.Set("gapply_workers",
               JsonValue::Int(static_cast<int64_t>(
                   stats.counters.gapply_workers)));
  counters.Set("gapply_worker_busy_ns",
               JsonValue::Int(static_cast<int64_t>(
                   stats.counters.gapply_worker_busy_ns)));
  counters.Set("morsels_pruned",
               JsonValue::Int(static_cast<int64_t>(
                   stats.counters.morsels_pruned)));
  counters.Set("morsels_scanned",
               JsonValue::Int(static_cast<int64_t>(
                   stats.counters.morsels_scanned)));
  out.Set("counters", std::move(counters));
  return out;
}

Result<std::string> Database::Explain(const std::string& sql,
                                      const QueryOptions& options) {
  ASSIGN_OR_RETURN(LogicalOpPtr plan, Plan(sql));
  std::string out = "=== bound plan ===\n" + plan->DebugString();
  if (options.optimize) {
    Optimizer optimizer(&catalog_, &stats_, options.optimizer);
    ASSIGN_OR_RETURN(LogicalOpPtr optimized,
                     optimizer.Optimize(std::move(plan)));
    out += "=== optimized plan ===\n" + optimized->DebugString();
    out += "=== fired rules ===\n";
    if (optimizer.fired_rules().empty()) {
      out += "(none)\n";
    } else {
      for (const std::string& r : optimizer.fired_rules()) {
        out += r + "\n";
      }
    }
    LoweringOptions lowering = options.lowering;
    if (lowering.gapply_parallelism == 0) {
      lowering.gapply_parallelism = default_gapply_parallelism_;
    }
    if (lowering.exchange_parallelism == 0) {
      lowering.exchange_parallelism = default_gapply_parallelism_;
    }
    if (!lowering.columnar_storage.has_value()) {
      lowering.columnar_storage = default_columnar_storage_;
    }
    ASSIGN_OR_RETURN(PhysOpPtr phys, LowerPlan(*optimized, lowering));
    out += "=== physical plan ===\n" + phys->DebugString();
  }
  return out;
}

}  // namespace gapply
