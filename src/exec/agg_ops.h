#ifndef GAPPLY_EXEC_AGG_OPS_H_
#define GAPPLY_EXEC_AGG_OPS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/physical_op.h"
#include "src/expr/aggregate.h"

namespace gapply {

/// \brief Hash-based GROUP BY: output one row per distinct key combination,
/// key columns first, then one column per aggregate.
///
/// Output group order is first-appearance order in the input (deterministic
/// for a deterministic child).
///
/// With `parallelism` > 1, an input of at least `kParallelAggMinRows` rows,
/// and aggregates whose partial merge is exact (`AggregateMergeIsExact`),
/// the input is buffered and aggregated by workers into per-worker partial
/// tables over row morsels; partials are merged with `AggAccumulator::Merge`
/// and the merged groups are emitted sorted by their global
/// first-appearance row position — bit-for-bit the serial output. Inexact
/// aggregates (AVG, SUM over doubles, DISTINCT) fall back to the serial
/// path regardless of the knob.
class HashGroupByOp : public PhysOp {
 public:
  /// Inputs smaller than this aggregate serially even when a parallelism
  /// knob is set.
  static constexpr size_t kParallelAggMinRows = 4096;

  HashGroupByOp(PhysOpPtr child, std::vector<int> key_columns,
                std::vector<AggregateDesc> aggs, size_t parallelism = 1);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

  size_t parallelism() const { return parallelism_; }
  size_t profile_dop() const override { return parallelism_; }
  void set_parallelism(size_t dop) { parallelism_ = dop == 0 ? 1 : dop; }

  /// Shared with StreamGroupByOp: keys' columns followed by agg outputs.
  static Schema MakeOutputSchema(const Schema& input,
                                 const std::vector<int>& key_columns,
                                 const std::vector<AggregateDesc>& aggs);

 private:
  /// Serial aggregation of buffered rows (parallel path fallback for small
  /// inputs, keeping group order identical to the streaming path).
  Status AggregateBuffered(ExecContext* ctx, const std::vector<Row>& input);
  /// Morsel-parallel partial aggregation + deterministic merge.
  Status AggregateParallel(ExecContext* ctx, const std::vector<Row>& input);

  PhysOpPtr child_;
  std::vector<int> key_columns_;
  std::vector<AggregateDesc> aggs_;
  size_t parallelism_ = 1;

  std::vector<Row> output_;
  size_t pos_ = 0;
};

/// \brief Streaming GROUP BY over input already clustered on the key columns
/// (e.g. below a Sort). Emits each group's row as soon as the group ends —
/// the non-blocking alternative the paper contrasts with GApply's blocking
/// behaviour (§5.2, "GApply is blocked ... the conversion to groupby
/// helps").
class StreamGroupByOp : public PhysOp {
 public:
  StreamGroupByOp(PhysOpPtr child, std::vector<int> key_columns,
                  std::vector<AggregateDesc> aggs);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

 private:
  Status StartGroup(const Row& row);
  Status Accumulate(ExecContext* ctx, const Row& row);
  Row FinishGroup();
  /// True iff `row`'s key columns equal current_key_ — compared in place,
  /// with no key-row materialization.
  bool SameKeyAsCurrent(const Row& row) const;

  PhysOpPtr child_;
  std::vector<int> key_columns_;
  std::vector<AggregateDesc> aggs_;

  std::vector<std::unique_ptr<AggAccumulator>> accs_;
  Row current_key_;
  bool in_group_ = false;
  bool child_done_ = false;
  Row pending_;  // first row of the next group, buffered across Next calls
  bool have_pending_ = false;

  // Native batch path scratch: buffered child batch and the read cursor
  // into it (batch analogue of `pending_`).
  RowBatch child_batch_;
  size_t child_pos_ = 0;
};

/// \brief Aggregation without grouping: exactly one output row, even on
/// empty input (COUNT → 0, others → NULL). This "not empty on empty" SQL
/// behaviour is what forces the emptyOnEmpty check in the paper's
/// selection-pushing rule (§4.1).
class ScalarAggOp : public PhysOp {
 public:
  ScalarAggOp(PhysOpPtr child, std::vector<AggregateDesc> aggs);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

 private:
  PhysOpPtr child_;
  std::vector<AggregateDesc> aggs_;
  bool emitted_ = false;
};

/// Duplicate elimination over whole rows (multiset → set), streaming first
/// occurrences.
class DistinctOp : public PhysOp {
 public:
  explicit DistinctOp(PhysOpPtr child);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

 private:
  PhysOpPtr child_;
  std::unordered_map<Row, bool, RowHash, RowEq> seen_;
  RowBatch child_batch_;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_AGG_OPS_H_
