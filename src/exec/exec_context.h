#ifndef GAPPLY_EXEC_EXEC_CONTEXT_H_
#define GAPPLY_EXEC_EXEC_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/row_batch.h"
#include "src/expr/expr.h"
#include "src/storage/schema.h"

namespace gapply {

class PhysOp;
class ThreadPool;

/// \brief Per-execution mutable state shared by all operators in a plan.
///
/// Holds the two kinds of parameter bindings the paper's algebra needs:
///  - the outer-row stack for `Apply` (single-tuple parameters), living in
///    the embedded EvalContext used by expression evaluation, and
///  - named *relation-valued* bindings for `GApply` (the paper's core
///    addition, §3): GApply binds each group in succession under its
///    variable name; `GroupScan` leaves read it. Bindings are stacks so
///    nested GApply over the same variable name shadows correctly.
///
/// Also exposes execution counters the benches use to verify plan-structure
/// claims (e.g., that a rule actually reduced scanned rows).
///
/// A context is owned by exactly one thread. Parallel operators (the
/// parallel GApply path) give each worker a private context created with
/// `ForkForWorker` and fold the workers' counters back into the parent with
/// `Counters::MergeFrom` after the workers have been joined.
class ExecContext {
 public:
  struct Counters {
    uint64_t rows_scanned = 0;       // base-table rows produced by TableScan
    uint64_t group_rows_scanned = 0; // rows produced by GroupScan

    // Zone-map pruning (columnar scans with pushed-down predicates only;
    // scans without pushed predicates leave both at zero). A morsel is
    // either pruned (skipped wholesale off its zone maps) or scanned.
    uint64_t morsels_scanned = 0;
    uint64_t morsels_pruned = 0;
    uint64_t pgq_executions = 0;     // per-group query invocations
    uint64_t apply_invocations = 0;  // inner re-executions by Apply
    uint64_t rows_sorted = 0;
    uint64_t rows_hash_partitioned = 0;

    // Vectorized execution: number of (non-empty) batches produced across
    // all operators, and the rows they carried. batch_rows_produced /
    // batches_produced is the pipeline-wide average batch fill; per-operator
    // fill lives in PhysOp::batch_stats().
    uint64_t batches_produced = 0;
    uint64_t batch_rows_produced = 0;

    // Per-phase GApply attribution (nanoseconds): time spent partitioning
    // the outer input vs. executing per-group queries. For the parallel
    // path, gapply_pgq_ns is the wall-clock time of the parallel section
    // (not the sum of worker busy time).
    uint64_t gapply_partition_ns = 0;
    uint64_t gapply_pgq_ns = 0;

    // Per-phase Exchange attribution: wall-clock time of the parallel
    // morsel fan-out (partition phase, during Open) and of streaming the
    // per-morsel buffers back out in morsel order (merge phase, during
    // Next/NextBatch), plus the total rows the exchanges produced.
    uint64_t exchange_partition_ns = 0;
    uint64_t exchange_merge_ns = 0;
    uint64_t exchange_rows = 0;

    // Per-worker GApply attribution. A parallel GApply worker that claimed
    // at least one group reports itself as one worker with its busy wall
    // time; a worker that raced to the cursor and found no group left
    // reports nothing. gapply_worker_busy_min_ns / _max_ns therefore range
    // over *participating* workers only — see MergeFrom.
    uint64_t gapply_workers = 0;
    uint64_t gapply_worker_busy_ns = 0;      // summed busy time
    uint64_t gapply_worker_busy_min_ns = 0;  // over participating workers
    uint64_t gapply_worker_busy_max_ns = 0;

    void Reset() { *this = Counters(); }

    /// Accumulates `other` into this set of counters. Used to fold
    /// per-worker counters into the query's context so global counters stay
    /// exact under parallel execution.
    void MergeFrom(const Counters& other) {
      rows_scanned += other.rows_scanned;
      group_rows_scanned += other.group_rows_scanned;
      morsels_scanned += other.morsels_scanned;
      morsels_pruned += other.morsels_pruned;
      pgq_executions += other.pgq_executions;
      apply_invocations += other.apply_invocations;
      rows_sorted += other.rows_sorted;
      rows_hash_partitioned += other.rows_hash_partitioned;
      batches_produced += other.batches_produced;
      batch_rows_produced += other.batch_rows_produced;
      gapply_partition_ns += other.gapply_partition_ns;
      gapply_pgq_ns += other.gapply_pgq_ns;
      exchange_partition_ns += other.exchange_partition_ns;
      exchange_merge_ns += other.exchange_merge_ns;
      exchange_rows += other.exchange_rows;
      // A side with no participating GApply workers must be *skipped*, not
      // folded in as zeros: naively taking min(min, 0) would erase the
      // per-phase attribution whenever one worker finished with zero groups
      // claimed (dop > number of groups), showing a zero minimum busy time
      // for a worker that never ran a per-group query.
      if (other.gapply_workers > 0) {
        gapply_worker_busy_min_ns =
            gapply_workers == 0
                ? other.gapply_worker_busy_min_ns
                : std::min(gapply_worker_busy_min_ns,
                           other.gapply_worker_busy_min_ns);
        gapply_worker_busy_max_ns =
            std::max(gapply_worker_busy_max_ns, other.gapply_worker_busy_max_ns);
        gapply_workers += other.gapply_workers;
        gapply_worker_busy_ns += other.gapply_worker_busy_ns;
      }
    }
  };

  EvalContext* eval() { return &eval_; }
  const EvalContext& eval() const { return eval_; }

  Counters& counters() { return counters_; }

  /// Target rows per batch for `PhysOp::NextBatch` (a scheduling hint, see
  /// RowBatch). 1 degenerates to row-at-a-time through the batch API.
  size_t batch_size() const { return batch_size_; }
  void set_batch_size(size_t n) { batch_size_ = n == 0 ? 1 : n; }

  /// Per-operator profiling (EXPLAIN ANALYZE / `SET profile = on`). Off by
  /// default; the PhysOp entry points check this one flag and fall straight
  /// through to the operator implementation when it is off, so a disabled
  /// profiler costs one predictable branch per call (DESIGN.md §12).
  bool profiling() const { return profiling_; }
  void set_profiling(bool on) { profiling_ = on; }

  /// Profiler-only stack of operators currently inside their Open/Next/
  /// NextBatch/Close entry point. The top entry below `this` is the
  /// operator that pulled, which is how each operator's rows_in is credited
  /// independently of its children's rows_out (the fuzzer asserts the two
  /// agree). Only touched when profiling() is on.
  std::vector<PhysOp*>& profiler_consumers() { return profiler_consumers_; }

  /// Shared engine worker pool for parallel operators (GApply phase 2,
  /// Exchange, parallel join build / aggregation), owned by the Database
  /// for the session. nullptr (standalone plans built in tests) makes
  /// `RunTaskGroup` fall back to a transient pool per parallel section.
  ThreadPool* thread_pool() const { return thread_pool_; }
  void set_thread_pool(ThreadPool* pool) { thread_pool_ = pool; }

  /// Pushes a group binding for `var`. `schema` and `rows` must outlive the
  /// binding.
  void BindGroup(const std::string& var, const Schema* schema,
                 const std::vector<Row>* rows) {
    groups_[var].push_back({schema, rows});
  }

  /// Pops the innermost binding for `var`.
  Status UnbindGroup(const std::string& var) {
    auto it = groups_.find(var);
    if (it == groups_.end() || it->second.empty()) {
      return Status::Internal("unbind of unbound group variable: " + var);
    }
    it->second.pop_back();
    if (it->second.empty()) groups_.erase(it);
    return Status::OK();
  }

  /// Innermost binding for `var`.
  Result<std::pair<const Schema*, const std::vector<Row>*>> GetGroup(
      const std::string& var) const {
    auto it = groups_.find(var);
    if (it == groups_.end() || it->second.empty()) {
      return Status::Internal("group variable not bound: " + var);
    }
    return it->second.back();
  }

  /// Snapshot for a parallel worker: copies the group-binding stacks and
  /// the correlated-row stack (both hold non-owning pointers the parent
  /// must keep alive for the worker's lifetime) and starts with zeroed
  /// counters. The worker mutates only its own copy, so enclosing Apply /
  /// GApply bindings stay visible while per-worker bindings stay private.
  ExecContext ForkForWorker() const {
    ExecContext child;
    child.eval_ = eval_;
    child.groups_ = groups_;
    child.batch_size_ = batch_size_;
    child.thread_pool_ = thread_pool_;
    // The profiling flag is inherited; the consumer stack is not — a worker
    // starts at the root of its own cloned subplan.
    child.profiling_ = profiling_;
    return child;
  }

 private:
  EvalContext eval_;
  std::map<std::string,
           std::vector<std::pair<const Schema*, const std::vector<Row>*>>>
      groups_;
  Counters counters_;
  size_t batch_size_ = RowBatch::kDefaultCapacity;
  ThreadPool* thread_pool_ = nullptr;
  bool profiling_ = false;
  std::vector<PhysOp*> profiler_consumers_;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_EXEC_CONTEXT_H_
