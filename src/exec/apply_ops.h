#ifndef GAPPLY_EXEC_APPLY_OPS_H_
#define GAPPLY_EXEC_APPLY_OPS_H_

#include <string>
#include <vector>

#include "src/exec/physical_op.h"

namespace gapply {

/// \brief The paper's `apply` operator (§4): R A E = ⋃_{r∈R} ({r} × E(r)).
///
/// For each outer row r, the inner subplan is re-opened with r pushed onto
/// the correlated-row stack; every inner row is emitted concatenated after
/// r. Scalar subqueries appear as an inner ScalarAgg (exactly one row);
/// EXISTS subqueries appear as an inner Exists (zero columns), making the
/// output schema collapse to the outer schema (S × {φ} = S).
class ApplyOp : public PhysOp {
 public:
  /// `cache_uncorrelated_inner`: when the inner subplan does not reference
  /// THIS Apply's outer row (e.g. the paper's group-selection EXISTS probes
  /// that range over the whole group), its result is identical for every
  /// outer row; setting this evaluates it once per Open and replays the
  /// materialized rows. The lowering pass decides via
  /// ApplyInnerIsCorrelated.
  ApplyOp(PhysOpPtr outer, PhysOpPtr inner,
          bool cache_uncorrelated_inner = false);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override {
    return {outer_.get(), inner_.get()};
  }

 private:
  Status CloseInner(ExecContext* ctx);

  PhysOpPtr outer_;
  PhysOpPtr inner_;
  bool cache_inner_;
  Row current_outer_;
  bool inner_open_ = false;
  bool cache_valid_ = false;
  std::vector<Row> cache_;
  size_t cache_pos_ = 0;
};

/// \brief The paper's `exists` operator: {φ} (one zero-column tuple) if the
/// input is nonempty, φ otherwise. Only meaningful as the inner child of
/// Apply.
class ExistsOp : public PhysOp {
 public:
  explicit ExistsOp(PhysOpPtr child, bool negated = false);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

 private:
  PhysOpPtr child_;
  bool negated_;
  bool done_ = false;
};

/// Concatenation of children's outputs (SQL UNION ALL). Schemas must be
/// union-compatible; the output schema is the unified one computed by
/// `UnifySchemas`.
class UnionAllOp : public PhysOp {
 public:
  static Result<PhysOpPtr> Make(std::vector<PhysOpPtr> children);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override;

 private:
  UnionAllOp(Schema schema, std::vector<PhysOpPtr> children);

  std::vector<PhysOpPtr> children_;
  size_t current_ = 0;
};

/// Column-wise unification of union branches: equal types pass through,
/// kNull unifies with anything, {int64, double} unify to double; otherwise
/// TypeError. Column names come from the first branch.
Result<Schema> UnifySchemas(const std::vector<const Schema*>& schemas);

}  // namespace gapply

#endif  // GAPPLY_EXEC_APPLY_OPS_H_
