#include "src/exec/physical_op.h"

#include <unordered_map>

#include "src/common/string_util.h"

namespace gapply {

std::string PhysOp::DebugString(int indent) const {
  std::string out = Repeat("  ", indent) + DebugName() + "\n";
  for (const PhysOp* child : children()) {
    out += child->DebugString(indent + 1);
  }
  return out;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += " | ";
    out += schema.column(i).name;
  }
  out += "\n";
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) + " more)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Result<bool> PhysOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  Row row;
  while (!out->full()) {
    auto next = Next(ctx, &row);
    if (!next.ok()) return next.status();
    if (!*next) break;
    out->Add(std::move(row));
  }
  if (out->empty()) return false;
  RecordBatch(ctx, out->size());
  return true;
}

Result<QueryResult> ExecuteToVector(PhysOp* root, ExecContext* ctx) {
  QueryResult result;
  result.schema = root->output_schema();
  RETURN_NOT_OK(root->Open(ctx));
  RowBatch batch(ctx->batch_size());
  while (true) {
    auto next = root->NextBatch(ctx, &batch);
    if (!next.ok()) {
      // Best effort close; surface the execution error.
      (void)root->Close(ctx);
      return next.status();
    }
    if (!*next) break;
    for (Row& row : batch.rows()) {
      result.rows.push_back(std::move(row));
    }
  }
  RETURN_NOT_OK(root->Close(ctx));
  return result;
}

Result<QueryResult> ExecuteToVectorRows(PhysOp* root, ExecContext* ctx) {
  QueryResult result;
  result.schema = root->output_schema();
  RETURN_NOT_OK(root->Open(ctx));
  Row row;
  while (true) {
    auto next = root->Next(ctx, &row);
    if (!next.ok()) {
      (void)root->Close(ctx);
      return next.status();
    }
    if (!*next) break;
    result.rows.push_back(row);
  }
  RETURN_NOT_OK(root->Close(ctx));
  return result;
}

bool SameRowMultiset(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<Row, int, RowHash, RowEq> counts;
  for (const Row& row : a) counts[row]++;
  for (const Row& row : b) {
    auto it = counts.find(row);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

}  // namespace gapply
