#include "src/exec/physical_op.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "src/common/string_util.h"

namespace gapply {

std::string PhysOp::DebugString(int indent) const {
  std::string out = Repeat("  ", indent) + DebugName() + "\n";
  for (const PhysOp* child : children()) {
    out += child->DebugString(indent + 1);
  }
  return out;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += " | ";
    out += schema.column(i).name;
  }
  out += "\n";
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) + " more)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Result<bool> PhysOp::NextBatch(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  Row row;
  while (!out->full()) {
    auto next = Next(ctx, &row);
    if (!next.ok()) return next.status();
    if (!*next) break;
    out->Add(std::move(row));
  }
  if (out->empty()) return false;
  RecordBatch(ctx, out->size());
  return true;
}

Result<QueryResult> ExecuteToVector(PhysOp* root, ExecContext* ctx) {
  QueryResult result;
  result.schema = root->output_schema();
  RETURN_NOT_OK(root->Open(ctx));
  RowBatch batch(ctx->batch_size());
  while (true) {
    auto next = root->NextBatch(ctx, &batch);
    if (!next.ok()) {
      // Best effort close; surface the execution error.
      (void)root->Close(ctx);
      return next.status();
    }
    if (!*next) break;
    for (Row& row : batch.rows()) {
      result.rows.push_back(std::move(row));
    }
  }
  RETURN_NOT_OK(root->Close(ctx));
  return result;
}

Result<QueryResult> ExecuteToVectorRows(PhysOp* root, ExecContext* ctx) {
  QueryResult result;
  result.schema = root->output_schema();
  RETURN_NOT_OK(root->Open(ctx));
  Row row;
  while (true) {
    auto next = root->Next(ctx, &row);
    if (!next.ok()) {
      (void)root->Close(ctx);
      return next.status();
    }
    if (!*next) break;
    result.rows.push_back(row);
  }
  RETURN_NOT_OK(root->Close(ctx));
  return result;
}

bool SameRowMultiset(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<Row, int, RowHash, RowEq> counts;
  for (const Row& row : a) counts[row]++;
  for (const Row& row : b) {
    auto it = counts.find(row);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool SameRowSequence(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsEqual(a[i], b[i])) return false;
  }
  return true;
}

namespace {

int TypeRank(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 2;  // numerics share a rank so 2 and 2.0 sort adjacently
    case TypeId::kString:
      return 3;
  }
  return 4;
}

// Total order over arbitrary values: NULL first, then by type family, then
// by value (Value::Compare within a family). Any deterministic total order
// works here; it only has to agree with grouping equality.
bool ValueCanonicalLess(const Value& a, const Value& b) {
  const int ra = TypeRank(a.type());
  const int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb;
  if (a.is_null()) return false;  // both NULL
  if (a.type() == TypeId::kBool && b.type() == TypeId::kBool) {
    return !a.bool_val() && b.bool_val();
  }
  Result<int> cmp = Value::Compare(a, b);
  if (!cmp.ok()) return false;
  return *cmp < 0;
}

}  // namespace

void SortRowsCanonical(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (ValueCanonicalLess(a[i], b[i])) return true;
      if (ValueCanonicalLess(b[i], a[i])) return false;
    }
    return a.size() < b.size();
  });
}

}  // namespace gapply
