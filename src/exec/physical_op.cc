#include "src/exec/physical_op.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <unordered_map>

#include "src/common/string_util.h"

namespace gapply {

namespace {

uint64_t ProfileNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void OpRuntimeProfile::AddPhaseNs(const std::string& name, uint64_t ns) {
  for (auto& phase : phases) {
    if (phase.first == name) {
      phase.second += ns;
      return;
    }
  }
  phases.emplace_back(name, ns);
}

void OpRuntimeProfile::MergeFrom(const OpRuntimeProfile& other) {
  opens += other.opens;
  next_calls += other.next_calls;
  batch_calls += other.batch_calls;
  rows_out += other.rows_out;
  batches_out += other.batches_out;
  rows_in += other.rows_in;
  open_ns += other.open_ns;
  next_ns += other.next_ns;
  close_ns += other.close_ns;
  morsels_pruned += other.morsels_pruned;
  morsels_scanned += other.morsels_scanned;
  workers_merged += other.workers_merged == 0 ? 1 : other.workers_merged;
  for (const auto& phase : other.phases) {
    AddPhaseNs(phase.first, phase.second);
  }
}

void PhysOp::MergeTreeProfileFrom(const PhysOp& other) {
  profile_.MergeFrom(other.profile_);
  const std::vector<const PhysOp*> mine = children();
  const std::vector<const PhysOp*> theirs = other.children();
  const size_t n = std::min(mine.size(), theirs.size());
  for (size_t i = 0; i < n; ++i) {
    // children() hands out const views of operators this node owns and
    // mutates freely elsewhere; shedding constness on our own children to
    // fold the clone's numbers in is safe.
    const_cast<PhysOp*>(mine[i])->MergeTreeProfileFrom(*theirs[i]);
  }
}

Status PhysOp::ProfiledOpen(ExecContext* ctx) {
  profile_.opens++;
  std::vector<PhysOp*>& consumers = ctx->profiler_consumers();
  consumers.push_back(this);
  const uint64_t t0 = ProfileNowNs();
  Status st = OpenImpl(ctx);
  profile_.open_ns += ProfileNowNs() - t0;
  consumers.pop_back();
  return st;
}

Result<bool> PhysOp::ProfiledNext(ExecContext* ctx, Row* out) {
  profile_.next_calls++;
  std::vector<PhysOp*>& consumers = ctx->profiler_consumers();
  PhysOp* consumer = consumers.empty() ? nullptr : consumers.back();
  consumers.push_back(this);
  const uint64_t t0 = ProfileNowNs();
  Result<bool> produced = NextImpl(ctx, out);
  profile_.next_ns += ProfileNowNs() - t0;
  ctx->profiler_consumers().pop_back();
  if (produced.ok() && *produced) {
    profile_.rows_out++;
    if (consumer != nullptr) consumer->profile_.rows_in++;
  }
  return produced;
}

Result<bool> PhysOp::ProfiledNextBatch(ExecContext* ctx, RowBatch* out) {
  profile_.batch_calls++;
  std::vector<PhysOp*>& consumers = ctx->profiler_consumers();
  PhysOp* consumer = consumers.empty() ? nullptr : consumers.back();
  consumers.push_back(this);
  const uint64_t t0 = ProfileNowNs();
  Result<bool> produced = NextBatchImpl(ctx, out);
  profile_.next_ns += ProfileNowNs() - t0;
  ctx->profiler_consumers().pop_back();
  if (produced.ok() && *produced) {
    profile_.rows_out += out->size();
    profile_.batches_out++;
    if (consumer != nullptr) consumer->profile_.rows_in += out->size();
  }
  return produced;
}

Status PhysOp::ProfiledClose(ExecContext* ctx) {
  std::vector<PhysOp*>& consumers = ctx->profiler_consumers();
  consumers.push_back(this);
  const uint64_t t0 = ProfileNowNs();
  Status st = CloseImpl(ctx);
  profile_.close_ns += ProfileNowNs() - t0;
  consumers.pop_back();
  return st;
}

std::string PhysOp::DebugString(int indent) const {
  std::string out = Repeat("  ", indent) + DebugName() + "\n";
  for (const PhysOp* child : children()) {
    out += child->DebugString(indent + 1);
  }
  return out;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out += " | ";
    out += schema.column(i).name;
  }
  out += "\n";
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) + " more)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += " | ";
      out += row[i].ToString();
    }
    out += "\n";
  }
  return out;
}

Result<bool> PhysOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  Row row;
  while (!out->full()) {
    // Calls NextImpl directly (not the Next entry point) so the adapter's
    // rows are not double-counted by the profiler.
    auto next = NextImpl(ctx, &row);
    if (!next.ok()) return next.status();
    if (!*next) break;
    out->Add(std::move(row));
  }
  if (out->empty()) return false;
  RecordBatch(ctx, out->size());
  return true;
}

Result<QueryResult> ExecuteToVector(PhysOp* root, ExecContext* ctx) {
  QueryResult result;
  result.schema = root->output_schema();
  RETURN_NOT_OK(root->Open(ctx));
  RowBatch batch(ctx->batch_size());
  while (true) {
    auto next = root->NextBatch(ctx, &batch);
    if (!next.ok()) {
      // Best effort close; surface the execution error.
      (void)root->Close(ctx);
      return next.status();
    }
    if (!*next) break;
    for (Row& row : batch.rows()) {
      result.rows.push_back(std::move(row));
    }
  }
  RETURN_NOT_OK(root->Close(ctx));
  return result;
}

Result<QueryResult> ExecuteToVectorRows(PhysOp* root, ExecContext* ctx) {
  QueryResult result;
  result.schema = root->output_schema();
  RETURN_NOT_OK(root->Open(ctx));
  Row row;
  while (true) {
    auto next = root->Next(ctx, &row);
    if (!next.ok()) {
      (void)root->Close(ctx);
      return next.status();
    }
    if (!*next) break;
    result.rows.push_back(row);
  }
  RETURN_NOT_OK(root->Close(ctx));
  return result;
}

bool SameRowMultiset(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  std::unordered_map<Row, int, RowHash, RowEq> counts;
  for (const Row& row : a) counts[row]++;
  for (const Row& row : b) {
    auto it = counts.find(row);
    if (it == counts.end() || it->second == 0) return false;
    --it->second;
  }
  return true;
}

bool SameRowSequence(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!RowsEqual(a[i], b[i])) return false;
  }
  return true;
}

namespace {

int TypeRank(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt64:
    case TypeId::kDouble:
      return 2;  // numerics share a rank so 2 and 2.0 sort adjacently
    case TypeId::kString:
      return 3;
  }
  return 4;
}

// Total order over arbitrary values: NULL first, then by type family, then
// by value (Value::Compare within a family). Any deterministic total order
// works here; it only has to agree with grouping equality.
bool ValueCanonicalLess(const Value& a, const Value& b) {
  const int ra = TypeRank(a.type());
  const int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb;
  if (a.is_null()) return false;  // both NULL
  if (a.type() == TypeId::kBool && b.type() == TypeId::kBool) {
    return !a.bool_val() && b.bool_val();
  }
  Result<int> cmp = Value::Compare(a, b);
  if (!cmp.ok()) return false;
  return *cmp < 0;
}

}  // namespace

void SortRowsCanonical(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      if (ValueCanonicalLess(a[i], b[i])) return true;
      if (ValueCanonicalLess(b[i], a[i])) return false;
    }
    return a.size() < b.size();
  });
}

}  // namespace gapply
