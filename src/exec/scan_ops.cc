#include "src/exec/scan_ops.h"

#include <algorithm>

namespace gapply {

namespace {

// Shared native batch path of the three scans: range-copy `rows[*pos..end)`
// into `out`, up to its capacity.
bool ScanIntoBatch(const std::vector<Row>& rows, size_t* pos, size_t end,
                   RowBatch* out) {
  out->Clear();
  end = std::min(end, rows.size());
  if (*pos >= end) return false;
  const size_t n = std::min(out->capacity(), end - *pos);
  for (size_t i = 0; i < n; ++i) {
    out->Add(rows[*pos + i]);
  }
  *pos += n;
  return true;
}

}  // namespace

TableScanOp::TableScanOp(const Table* table, std::string alias)
    : PhysOp(alias.empty() ? table->schema()
                           : table->schema().WithQualifier(alias)),
      table_(table),
      alias_(std::move(alias)) {}

Status TableScanOp::OpenImpl(ExecContext*) {
  pos_ = 0;
  end_ = morsel_mode_ ? 0 : table_->num_rows();
  chunk_end_ = 0;
  compiled_ = preds_.empty()
                  ? std::vector<CompiledPredicate>{}
                  : table_->columnar().CompilePredicates(preds_);
  return Status::OK();
}

Status TableScanOp::SetMorsel(size_t begin, size_t end) {
  if (begin > end) {
    return Status::InvalidArgument(
        "SetMorsel range is inverted: begin " + std::to_string(begin) +
        " > end " + std::to_string(end));
  }
  pos_ = std::min(begin, table_->num_rows());
  end_ = std::min(end, table_->num_rows());
  chunk_end_ = pos_;  // force the zone-map check for the new range
  return Status::OK();
}

void TableScanOp::SkipPrunedChunks(ExecContext* ctx, size_t end) {
  const ColumnarTable& ct = table_->columnar();
  while (pos_ < end) {
    if (pos_ < chunk_end_) return;  // already inside a checked chunk
    const size_t m = pos_ / ColumnarTable::kMorselRows;
    chunk_end_ = std::min(end, (m + 1) * ColumnarTable::kMorselRows);
    if (preds_.empty()) return;  // nothing to prune on
    if (ct.CanPruneMorsel(m, preds_)) {
      ctx->counters().morsels_pruned++;
      if (ctx->profiling()) profile_.morsels_pruned++;
      pos_ = chunk_end_;
      continue;
    }
    ctx->counters().morsels_scanned++;
    if (ctx->profiling()) profile_.morsels_scanned++;
    return;
  }
}

Result<bool> TableScanOp::NextImpl(ExecContext* ctx, Row* out) {
  // No pushed predicates: the dense arrays buy nothing over the row store
  // (the streams are bit-for-bit identical), so both storage modes take the
  // row-store copy and never force the columnar mirror to materialize.
  if (preds_.empty()) {
    if (pos_ >= end_) return false;
    *out = table_->rows()[pos_++];
    ctx->counters().rows_scanned++;
    return true;
  }
  const ColumnarTable& ct = table_->columnar();
  const size_t end = std::min(end_, ct.num_rows());
  while (pos_ < end) {
    SkipPrunedChunks(ctx, end);
    if (pos_ >= end) break;
    const size_t i = pos_++;
    if (compiled_.empty() || ct.RowMatches(i, compiled_)) {
      ct.MaterializeRow(i, out);
      ctx->counters().rows_scanned++;
      return true;
    }
  }
  return false;
}

Result<bool> TableScanOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  // Same predicate-free fast path as NextImpl.
  if (preds_.empty()) {
    if (!ScanIntoBatch(table_->rows(), &pos_, end_, out)) return false;
    ctx->counters().rows_scanned += out->size();
    RecordBatch(ctx, out->size());
    return true;
  }
  out->Clear();
  const ColumnarTable& ct = table_->columnar();
  const size_t end = std::min(end_, ct.num_rows());
  while (out->size() < out->capacity() && pos_ < end) {
    SkipPrunedChunks(ctx, end);
    if (pos_ >= end) break;
    // Scan at most the remaining capacity's worth of input per round so
    // unselective predicates still produce ~full, never overshooting
    // batches; selective ones just loop within the call.
    const size_t stop =
        std::min(chunk_end_, pos_ + (out->capacity() - out->size()));
    if (compiled_.empty()) {
      for (size_t i = pos_; i < stop; ++i) {
        Row row;
        ct.MaterializeRow(i, &row);
        out->Add(std::move(row));
      }
    } else {
      selection_.clear();
      ct.FilterRange(pos_, stop, compiled_, &selection_);
      for (const uint32_t i : selection_) {
        Row row;
        ct.MaterializeRow(i, &row);
        out->Add(std::move(row));
      }
    }
    pos_ = stop;
  }
  if (out->empty()) return false;
  ctx->counters().rows_scanned += out->size();
  RecordBatch(ctx, out->size());
  return true;
}

Status TableScanOp::CloseImpl(ExecContext*) { return Status::OK(); }

std::string TableScanOp::DebugName() const {
  std::string out = "TableScan(" + table_->name();
  if (!alias_.empty() && alias_ != table_->name()) out += " as " + alias_;
  if (!preds_.empty()) {
    out += ", pushdown: ";
    for (size_t i = 0; i < preds_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += preds_[i].ToString(schema_);
    }
  }
  out += ")";
  return out;
}

PhysOpPtr TableScanOp::Clone() const {
  auto clone = std::make_unique<TableScanOp>(table_, alias_);
  clone->preds_ = preds_;
  clone->use_columnar_ = use_columnar_;
  return clone;
}

GroupScanOp::GroupScanOp(std::string var_name, Schema schema)
    : PhysOp(std::move(schema)), var_name_(std::move(var_name)) {}

Status GroupScanOp::OpenImpl(ExecContext* ctx) {
  ASSIGN_OR_RETURN(auto binding, ctx->GetGroup(var_name_));
  const Schema* bound_schema = binding.first;
  if (bound_schema->num_columns() != schema_.num_columns()) {
    return Status::Internal(
        "group variable " + var_name_ + " bound with arity " +
        std::to_string(bound_schema->num_columns()) + ", plan expects " +
        std::to_string(schema_.num_columns()));
  }
  rows_ = binding.second;
  pos_ = 0;
  return Status::OK();
}

Result<bool> GroupScanOp::NextImpl(ExecContext* ctx, Row* out) {
  if (rows_ == nullptr) return Status::Internal("GroupScan not opened");
  if (pos_ >= rows_->size()) return false;
  *out = (*rows_)[pos_++];
  ctx->counters().group_rows_scanned++;
  return true;
}

Result<bool> GroupScanOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (rows_ == nullptr) return Status::Internal("GroupScan not opened");
  if (!ScanIntoBatch(*rows_, &pos_, rows_->size(), out)) return false;
  ctx->counters().group_rows_scanned += out->size();
  RecordBatch(ctx, out->size());
  return true;
}

Status GroupScanOp::CloseImpl(ExecContext*) {
  rows_ = nullptr;
  return Status::OK();
}

std::string GroupScanOp::DebugName() const {
  return "GroupScan($" + var_name_ + ")";
}

PhysOpPtr GroupScanOp::Clone() const {
  return std::make_unique<GroupScanOp>(var_name_, schema_);
}

ValuesOp::ValuesOp(Schema schema, std::vector<Row> rows)
    : PhysOp(std::move(schema)), rows_(std::move(rows)) {}

Status ValuesOp::OpenImpl(ExecContext*) {
  pos_ = 0;
  return Status::OK();
}

Result<bool> ValuesOp::NextImpl(ExecContext*, Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Result<bool> ValuesOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (!ScanIntoBatch(rows_, &pos_, rows_.size(), out)) return false;
  RecordBatch(ctx, out->size());
  return true;
}

Status ValuesOp::CloseImpl(ExecContext*) { return Status::OK(); }

std::string ValuesOp::DebugName() const {
  return "Values(" + std::to_string(rows_.size()) + " rows)";
}

PhysOpPtr ValuesOp::Clone() const {
  return std::make_unique<ValuesOp>(schema_, rows_);
}

}  // namespace gapply
