#include "src/exec/scan_ops.h"

#include <algorithm>

namespace gapply {

namespace {

// Shared native batch path of the three scans: range-copy `rows[*pos..end)`
// into `out`, up to its capacity.
bool ScanIntoBatch(const std::vector<Row>& rows, size_t* pos, size_t end,
                   RowBatch* out) {
  out->Clear();
  end = std::min(end, rows.size());
  if (*pos >= end) return false;
  const size_t n = std::min(out->capacity(), end - *pos);
  for (size_t i = 0; i < n; ++i) {
    out->Add(rows[*pos + i]);
  }
  *pos += n;
  return true;
}

}  // namespace

TableScanOp::TableScanOp(const Table* table, std::string alias)
    : PhysOp(alias.empty() ? table->schema()
                           : table->schema().WithQualifier(alias)),
      table_(table),
      alias_(std::move(alias)) {}

Status TableScanOp::OpenImpl(ExecContext*) {
  pos_ = 0;
  end_ = morsel_mode_ ? 0 : table_->num_rows();
  return Status::OK();
}

void TableScanOp::SetMorsel(size_t begin, size_t end) {
  pos_ = std::min(begin, table_->num_rows());
  end_ = std::min(end, table_->num_rows());
}

Result<bool> TableScanOp::NextImpl(ExecContext* ctx, Row* out) {
  if (pos_ >= end_) return false;
  *out = table_->rows()[pos_++];
  ctx->counters().rows_scanned++;
  return true;
}

Result<bool> TableScanOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (!ScanIntoBatch(table_->rows(), &pos_, end_, out)) return false;
  ctx->counters().rows_scanned += out->size();
  RecordBatch(ctx, out->size());
  return true;
}

Status TableScanOp::CloseImpl(ExecContext*) { return Status::OK(); }

std::string TableScanOp::DebugName() const {
  std::string out = "TableScan(" + table_->name();
  if (!alias_.empty() && alias_ != table_->name()) out += " as " + alias_;
  out += ")";
  return out;
}

PhysOpPtr TableScanOp::Clone() const {
  return std::make_unique<TableScanOp>(table_, alias_);
}

GroupScanOp::GroupScanOp(std::string var_name, Schema schema)
    : PhysOp(std::move(schema)), var_name_(std::move(var_name)) {}

Status GroupScanOp::OpenImpl(ExecContext* ctx) {
  ASSIGN_OR_RETURN(auto binding, ctx->GetGroup(var_name_));
  const Schema* bound_schema = binding.first;
  if (bound_schema->num_columns() != schema_.num_columns()) {
    return Status::Internal(
        "group variable " + var_name_ + " bound with arity " +
        std::to_string(bound_schema->num_columns()) + ", plan expects " +
        std::to_string(schema_.num_columns()));
  }
  rows_ = binding.second;
  pos_ = 0;
  return Status::OK();
}

Result<bool> GroupScanOp::NextImpl(ExecContext* ctx, Row* out) {
  if (rows_ == nullptr) return Status::Internal("GroupScan not opened");
  if (pos_ >= rows_->size()) return false;
  *out = (*rows_)[pos_++];
  ctx->counters().group_rows_scanned++;
  return true;
}

Result<bool> GroupScanOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (rows_ == nullptr) return Status::Internal("GroupScan not opened");
  if (!ScanIntoBatch(*rows_, &pos_, rows_->size(), out)) return false;
  ctx->counters().group_rows_scanned += out->size();
  RecordBatch(ctx, out->size());
  return true;
}

Status GroupScanOp::CloseImpl(ExecContext*) {
  rows_ = nullptr;
  return Status::OK();
}

std::string GroupScanOp::DebugName() const {
  return "GroupScan($" + var_name_ + ")";
}

PhysOpPtr GroupScanOp::Clone() const {
  return std::make_unique<GroupScanOp>(var_name_, schema_);
}

ValuesOp::ValuesOp(Schema schema, std::vector<Row> rows)
    : PhysOp(std::move(schema)), rows_(std::move(rows)) {}

Status ValuesOp::OpenImpl(ExecContext*) {
  pos_ = 0;
  return Status::OK();
}

Result<bool> ValuesOp::NextImpl(ExecContext*, Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Result<bool> ValuesOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (!ScanIntoBatch(rows_, &pos_, rows_.size(), out)) return false;
  RecordBatch(ctx, out->size());
  return true;
}

Status ValuesOp::CloseImpl(ExecContext*) { return Status::OK(); }

std::string ValuesOp::DebugName() const {
  return "Values(" + std::to_string(rows_.size()) + " rows)";
}

PhysOpPtr ValuesOp::Clone() const {
  return std::make_unique<ValuesOp>(schema_, rows_);
}

}  // namespace gapply
