#ifndef GAPPLY_EXEC_GAPPLY_OP_H_
#define GAPPLY_EXEC_GAPPLY_OP_H_

#include <string>
#include <vector>

#include "src/exec/physical_op.h"

namespace gapply {

/// Partitioning strategy for GApply's first phase (paper §3: "implemented
/// either through sorting or through hashing").
enum class PartitionMode { kSort, kHash };

const char* PartitionModeName(PartitionMode mode);

/// \brief The paper's core contribution: GApply(GCols, PGQ).
///
/// Phase 1 (Partition): the outer input is partitioned on the grouping
/// columns — by sorting (output then comes out clustered by group, in
/// grouping-column order) or by hashing (first-appearance group order).
///
/// Phase 2 (Execute): for each group, the group's rows are bound to the
/// relation-valued variable `var_name`, the per-group query subplan `pgq`
/// (whose GroupScan leaves read that binding) is re-opened and drained, and
/// each per-group output row is emitted prefixed by the grouping-column
/// values — implementing
///   ⋃_{c ∈ distinct(π_C(outer))} ({c} × PGQ(σ_{C=c}(outer))).
///
/// Output schema: grouping columns (as named in the outer schema) followed
/// by the PGQ output schema.
class GApplyOp : public PhysOp {
 public:
  GApplyOp(PhysOpPtr outer, std::vector<int> grouping_columns,
           std::string var_name, PhysOpPtr pgq,
           PartitionMode mode = PartitionMode::kHash);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Status Close(ExecContext* ctx) override;
  std::string DebugName() const override;
  std::vector<const PhysOp*> children() const override {
    return {outer_.get(), pgq_.get()};
  }

 private:
  Status Partition(ExecContext* ctx);
  Status OpenGroup(ExecContext* ctx);
  Status CloseGroup(ExecContext* ctx);

  PhysOpPtr outer_;
  std::vector<int> grouping_columns_;
  std::string var_name_;
  PhysOpPtr pgq_;
  PartitionMode mode_;

  // Materialized partitions: parallel vectors of key and member rows.
  std::vector<Row> group_keys_;
  std::vector<std::vector<Row>> groups_;
  size_t current_group_ = 0;
  bool group_open_ = false;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_GAPPLY_OP_H_
