#ifndef GAPPLY_EXEC_GAPPLY_OP_H_
#define GAPPLY_EXEC_GAPPLY_OP_H_

#include <string>
#include <vector>

#include "src/exec/physical_op.h"

namespace gapply {

/// Partitioning strategy for GApply's first phase (paper §3: "implemented
/// either through sorting or through hashing").
enum class PartitionMode { kSort, kHash };

const char* PartitionModeName(PartitionMode mode);

/// \brief The paper's core contribution: GApply(GCols, PGQ).
///
/// Phase 1 (Partition): the outer input is partitioned on the grouping
/// columns — by sorting (output then comes out clustered by group, in
/// grouping-column order) or by hashing (first-appearance group order).
///
/// Phase 2 (Execute): for each group, the group's rows are bound to the
/// relation-valued variable `var_name`, the per-group query subplan `pgq`
/// (whose GroupScan leaves read that binding) is re-opened and drained, and
/// each per-group output row is emitted prefixed by the grouping-column
/// values — implementing
///   ⋃_{c ∈ distinct(π_C(outer))} ({c} × PGQ(σ_{C=c}(outer))).
///
/// Output schema: grouping columns (as named in the outer schema) followed
/// by the PGQ output schema.
///
/// Parallel execution (the paper's §3 observation that no group's evaluation
/// depends on another's, made operational): with `parallelism` > 1, phase 2
/// fans the groups out over a worker pool. Each worker owns a deep Clone of
/// the PGQ subplan and a private ExecContext forked from the caller's (so
/// enclosing Apply/GApply bindings remain visible but per-group bindings and
/// counters stay private), and claims groups through a shared atomic cursor.
/// Per-group outputs are buffered per group index and emitted in exactly the
/// order the serial path would produce, so parallel output is bit-for-bit
/// identical to serial output; worker counters are merged back into the
/// caller's context, so global counters stay exact. If any group's PGQ
/// fails, the error of the smallest failing group index is reported
/// (again matching what serial execution would surface first).
class GApplyOp : public PhysOp {
 public:
  GApplyOp(PhysOpPtr outer, std::vector<int> grouping_columns,
           std::string var_name, PhysOpPtr pgq,
           PartitionMode mode = PartitionMode::kHash, size_t parallelism = 1);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override {
    return {outer_.get(), pgq_.get()};
  }

  size_t parallelism() const { return parallelism_; }
  size_t profile_dop() const override { return parallelism_; }

 private:
  Status Partition(ExecContext* ctx);
  Status OpenGroup(ExecContext* ctx);
  Status CloseGroup(ExecContext* ctx);

  /// Runs `pgq` over group `g` with bindings in `ctx`, appending key-prefixed
  /// output rows to `*out`. Thread-safe w.r.t. other groups: reads only the
  /// materialized partitions, mutates only `ctx` and `*out`.
  Status ExecuteOneGroup(PhysOp* pgq, ExecContext* ctx, size_t g,
                         std::vector<Row>* out);

  /// Phase-2 fan-out: executes every group on a worker pool, filling
  /// group_outputs_, and merges worker counters into `ctx`.
  Status ExecuteGroupsParallel(ExecContext* ctx);

  PhysOpPtr outer_;
  std::vector<int> grouping_columns_;
  std::string var_name_;
  PhysOpPtr pgq_;
  PartitionMode mode_;
  size_t parallelism_;

  // Materialized partitions: parallel vectors of key and member rows.
  std::vector<Row> group_keys_;
  std::vector<std::vector<Row>> groups_;
  size_t current_group_ = 0;
  bool group_open_ = false;
  uint64_t group_open_ns_ = 0;  // steady_clock stamp of the OpenGroup call

  // Parallel-path state: per-group output buffers, streamed by Next.
  bool parallel_exec_ = false;
  std::vector<std::vector<Row>> group_outputs_;
  size_t output_pos_ = 0;

  // Native batch path scratch (serial phase 2): one PGQ batch per pull.
  RowBatch pgq_batch_;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_GAPPLY_OP_H_
