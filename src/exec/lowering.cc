#include "src/exec/lowering.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/exec/agg_ops.h"
#include "src/exec/apply_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/gapply_op.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "src/plan/plan_utils.h"

namespace gapply {

namespace {

/// Demotes every HashJoin on the streaming spine under `op` to a serial
/// build: inside an Exchange segment each worker clone builds its own hash
/// table, so a nested parallel build would only add partitioning overhead.
void DemoteSpineJoinBuilds(PhysOp* op) {
  if (auto* join = dynamic_cast<HashJoinOp*>(op)) join->set_parallelism(1);
  if (dynamic_cast<FilterOp*>(op) == nullptr &&
      dynamic_cast<ProjectOp*>(op) == nullptr &&
      dynamic_cast<HashJoinOp*>(op) == nullptr) {
    return;
  }
  std::vector<const PhysOp*> kids = op->children();
  if (!kids.empty()) DemoteSpineJoinBuilds(const_cast<PhysOp*>(kids[0]));
}

/// Wraps `op` in an Exchange when it is a morsel-drivable streaming segment
/// over a base table large enough to amortize the fan-out. Called at
/// pipeline-breaker boundaries (aggregation/sort/distinct inputs, GApply's
/// outer, the plan root).
PhysOpPtr MaybeWrapExchange(PhysOpPtr op, const LoweringOptions& opts,
                            size_t dop) {
  if (dop <= 1) return op;
  TableScanOp* scan = FindExchangeMorselSource(op.get());
  if (scan == nullptr) return op;
  if (scan->num_rows() < opts.exchange_min_rows) return op;
  DemoteSpineJoinBuilds(op.get());
  return std::make_unique<ExchangeOp>(std::move(op), dop,
                                      opts.exchange_morsel_rows);
}

bool CmpOpFromBinary(BinaryOp op, value_ops::CmpOp* out) {
  switch (op) {
    case BinaryOp::kEq: *out = value_ops::CmpOp::kEq; return true;
    case BinaryOp::kNe: *out = value_ops::CmpOp::kNe; return true;
    case BinaryOp::kLt: *out = value_ops::CmpOp::kLt; return true;
    case BinaryOp::kLe: *out = value_ops::CmpOp::kLe; return true;
    case BinaryOp::kGt: *out = value_ops::CmpOp::kGt; return true;
    case BinaryOp::kGe: *out = value_ops::CmpOp::kGe; return true;
    default: return false;
  }
}

/// Mirror of `a <op> b` ≡ `b <flip(op)> a` for normalizing literal-first
/// comparisons to column-first.
value_ops::CmpOp FlipCmp(value_ops::CmpOp op) {
  switch (op) {
    case value_ops::CmpOp::kLt: return value_ops::CmpOp::kGt;
    case value_ops::CmpOp::kLe: return value_ops::CmpOp::kGe;
    case value_ops::CmpOp::kGt: return value_ops::CmpOp::kLt;
    case value_ops::CmpOp::kGe: return value_ops::CmpOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

/// Column/literal pairings Value::Compare handles without a type error —
/// the bar a conjunct must meet to be evaluated inside the scan.
bool TypeSoundForPushdown(TypeId col, TypeId lit) {
  const auto numeric = [](TypeId t) {
    return t == TypeId::kInt64 || t == TypeId::kDouble;
  };
  if (numeric(col) && numeric(lit)) return true;
  if (col == TypeId::kString && lit == TypeId::kString) return true;
  if (col == TypeId::kBool && lit == TypeId::kBool) return true;
  return false;
}

/// Tries to view `e` as `col <op> literal` (either orientation) with a
/// non-NULL, type-sound literal — the shape TableScanOp can evaluate over
/// its dense arrays and prune morsels with.
bool ExtractScanPredicate(const Expr& e, const Schema& schema,
                          ScanPredicate* out) {
  const auto* bin = dynamic_cast<const BinaryExpr*>(&e);
  if (bin == nullptr) return false;
  value_ops::CmpOp op;
  if (!CmpOpFromBinary(bin->op(), &op)) return false;
  const auto* col = dynamic_cast<const ColumnRefExpr*>(&bin->left());
  const auto* lit = dynamic_cast<const LiteralExpr*>(&bin->right());
  if (col == nullptr || lit == nullptr) {
    col = dynamic_cast<const ColumnRefExpr*>(&bin->right());
    lit = dynamic_cast<const LiteralExpr*>(&bin->left());
    if (col == nullptr || lit == nullptr) return false;
    op = FlipCmp(op);
  }
  if (lit->value().is_null()) return false;
  if (col->index() < 0 ||
      static_cast<size_t>(col->index()) >= schema.num_columns()) {
    return false;
  }
  const TypeId col_type = schema.column(static_cast<size_t>(col->index())).type;
  if (!TypeSoundForPushdown(col_type, lit->value().type())) return false;
  out->column = col->index();
  out->op = op;
  out->literal = lit->value();
  return true;
}

Result<PhysOpPtr> Lower(const LogicalOp& node, const LoweringOptions& opts,
                        size_t exchange_dop);

/// `exchange_dop` is the morsel-parallelism budget of the current plan
/// region: the caller's knob at the top, forced to 1 inside subplans that
/// are re-opened per row or per group (Apply inner, Exists input, GApply
/// PGQ), where a per-open parallel fan-out would thrash.
Result<PhysOpPtr> LowerNode(const LogicalOp& node, const LoweringOptions& opts,
                            size_t exchange_dop) {
  switch (node.type()) {
    case LogicalOpType::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      auto op = std::make_unique<TableScanOp>(scan.table(), scan.alias());
      op->set_use_columnar(opts.columnar_storage.value_or(true));
      return PhysOpPtr(std::move(op));
    }
    case LogicalOpType::kGroupScan: {
      const auto& scan = static_cast<const LogicalGroupScan&>(node);
      return PhysOpPtr(
          std::make_unique<GroupScanOp>(scan.var(), scan.output_schema()));
    }
    case LogicalOpType::kSelect: {
      const auto& sel = static_cast<const LogicalSelect&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr child, Lower(*sel.child(0), opts, exchange_dop));
      // Columnar storage: peel `col <op> const` conjuncts off a Filter
      // sitting directly on a TableScan and evaluate them inside the scan
      // (dense arrays + zone-map pruning). Sound conjunct by conjunct: a row
      // passes WHERE iff every conjunct evaluates to true, and the scan
      // applies the same NULL-rejects semantics the Filter would.
      if (opts.columnar_storage.value_or(true)) {
        if (auto* scan = dynamic_cast<TableScanOp*>(child.get())) {
          std::vector<ExprPtr> conjuncts =
              SplitConjuncts(sel.predicate().Clone());
          std::vector<ScanPredicate> pushed;
          std::vector<ExprPtr> residual;
          for (ExprPtr& c : conjuncts) {
            ScanPredicate p;
            if (ExtractScanPredicate(*c, scan->output_schema(), &p)) {
              pushed.push_back(std::move(p));
            } else {
              residual.push_back(std::move(c));
            }
          }
          if (!pushed.empty()) {
            scan->PushPredicates(std::move(pushed));
            if (residual.empty()) return child;  // Filter fully absorbed
            return PhysOpPtr(std::make_unique<FilterOp>(
                std::move(child), CombineConjuncts(std::move(residual))));
          }
        }
      }
      return PhysOpPtr(std::make_unique<FilterOp>(std::move(child),
                                                  sel.predicate().Clone()));
    }
    case LogicalOpType::kProject: {
      const auto& proj = static_cast<const LogicalProject&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr child, Lower(*proj.child(0), opts, exchange_dop));
      std::vector<ExprPtr> exprs;
      exprs.reserve(proj.exprs().size());
      for (const ExprPtr& e : proj.exprs()) exprs.push_back(e->Clone());
      return ProjectOp::Make(std::move(child), std::move(exprs),
                             proj.names());
    }
    case LogicalOpType::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr left, Lower(*join.child(0), opts, exchange_dop));
      ASSIGN_OR_RETURN(PhysOpPtr right, Lower(*join.child(1), opts, exchange_dop));
      ExprPtr residual = join.residual() == nullptr
                             ? nullptr
                             : join.residual()->Clone();
      if (join.left_keys().empty()) {
        return PhysOpPtr(std::make_unique<NestedLoopJoinOp>(
            std::move(left), std::move(right), std::move(residual)));
      }
      return PhysOpPtr(std::make_unique<HashJoinOp>(
          std::move(left), std::move(right), join.left_keys(),
          join.right_keys(), std::move(residual), exchange_dop,
          join.null_safe()));
    }
    case LogicalOpType::kGroupBy: {
      const auto& gb = static_cast<const LogicalGroupBy&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr child, Lower(*gb.child(0), opts, exchange_dop));
      child = MaybeWrapExchange(std::move(child), opts, exchange_dop);
      if (opts.stream_group_by) {
        std::vector<SortKey> keys;
        keys.reserve(gb.keys().size());
        for (int k : gb.keys()) keys.push_back({k, true});
        auto sorted =
            std::make_unique<SortOp>(std::move(child), std::move(keys));
        return PhysOpPtr(std::make_unique<StreamGroupByOp>(
            std::move(sorted), gb.keys(), CloneAggregates(gb.aggs())));
      }
      return PhysOpPtr(std::make_unique<HashGroupByOp>(
          std::move(child), gb.keys(), CloneAggregates(gb.aggs()),
          exchange_dop));
    }
    case LogicalOpType::kScalarAgg: {
      const auto& agg = static_cast<const LogicalScalarAgg&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr child, Lower(*agg.child(0), opts, exchange_dop));
      child = MaybeWrapExchange(std::move(child), opts, exchange_dop);
      return PhysOpPtr(std::make_unique<ScalarAggOp>(std::move(child),
                                                     CloneAggregates(agg.aggs())));
    }
    case LogicalOpType::kDistinct: {
      ASSIGN_OR_RETURN(PhysOpPtr child, Lower(*node.child(0), opts, exchange_dop));
      child = MaybeWrapExchange(std::move(child), opts, exchange_dop);
      return PhysOpPtr(std::make_unique<DistinctOp>(std::move(child)));
    }
    case LogicalOpType::kUnionAll: {
      std::vector<PhysOpPtr> branches;
      branches.reserve(node.num_children());
      for (size_t i = 0; i < node.num_children(); ++i) {
        ASSIGN_OR_RETURN(PhysOpPtr branch, Lower(*node.child(i), opts, exchange_dop));
        branches.push_back(std::move(branch));
      }
      return UnionAllOp::Make(std::move(branches));
    }
    case LogicalOpType::kApply: {
      const auto& apply = static_cast<const LogicalApply&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr outer, Lower(*apply.outer(), opts, exchange_dop));
      ASSIGN_OR_RETURN(PhysOpPtr inner, Lower(*apply.inner(), opts, 1));
      const bool cache = !ApplyInnerIsCorrelated(*apply.inner());
      return PhysOpPtr(std::make_unique<ApplyOp>(std::move(outer),
                                                 std::move(inner), cache));
    }
    case LogicalOpType::kExists: {
      const auto& exists = static_cast<const LogicalExists&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr child, Lower(*exists.child(0), opts, 1));
      return PhysOpPtr(
          std::make_unique<ExistsOp>(std::move(child), exists.negated()));
    }
    case LogicalOpType::kOrderBy: {
      const auto& order = static_cast<const LogicalOrderBy&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr child, Lower(*order.child(0), opts, exchange_dop));
      child = MaybeWrapExchange(std::move(child), opts, exchange_dop);
      return PhysOpPtr(
          std::make_unique<SortOp>(std::move(child), order.keys()));
    }
    case LogicalOpType::kGApply: {
      const auto& ga = static_cast<const LogicalGApply&>(node);
      ASSIGN_OR_RETURN(PhysOpPtr outer, Lower(*ga.outer(), opts, exchange_dop));
      outer = MaybeWrapExchange(std::move(outer), opts, exchange_dop);
      ASSIGN_OR_RETURN(PhysOpPtr pgq, Lower(*ga.pgq(), opts, 1));
      const PartitionMode mode =
          opts.force_partition_mode.value_or(ga.mode());
      const size_t dop = std::max<size_t>(1, opts.gapply_parallelism);
      return PhysOpPtr(std::make_unique<GApplyOp>(
          std::move(outer), ga.grouping_columns(), ga.var(), std::move(pgq),
          mode, dop));
    }
  }
  return Status::Internal("unknown logical operator in lowering");
}

Result<PhysOpPtr> Lower(const LogicalOp& node, const LoweringOptions& opts,
                        size_t exchange_dop) {
  ASSIGN_OR_RETURN(PhysOpPtr op, LowerNode(node, opts, exchange_dop));
  if (opts.cost_model != nullptr) {
    // Best-effort: estimation failures (unpriceable subtrees) simply leave
    // the operator unstamped; they must not fail the lowering.
    Result<PlanEstimate> est = opts.cost_model->Estimate(node);
    if (est.ok()) op->set_estimated_rows(est->rows);
  }
  return op;
}

}  // namespace

Result<PhysOpPtr> LowerPlan(const LogicalOp& plan,
                            const LoweringOptions& options) {
  const size_t dop = std::max<size_t>(1, options.exchange_parallelism);
  ASSIGN_OR_RETURN(PhysOpPtr root, Lower(plan, options, dop));
  return MaybeWrapExchange(std::move(root), options, dop);
}

}  // namespace gapply
