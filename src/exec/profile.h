#ifndef GAPPLY_EXEC_PROFILE_H_
#define GAPPLY_EXEC_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/json.h"
#include "src/common/result.h"
#include "src/exec/physical_op.h"

namespace gapply {

/// \brief Immutable snapshot of one operator's runtime profile, taken after
/// execution with `ExecContext::profiling()` on.
///
/// `profile` holds the raw counters accumulated by the PhysOp entry points
/// (all time fields *cumulative*, i.e. inclusive of children). `self_ns` is
/// derived here as cumulative minus the children's cumulative, clamped at
/// zero: a subtree that merged parallel worker clones reports summed worker
/// busy time, which can legitimately exceed the parent's wall-clock span.
struct ProfileNode {
  std::string name;            // PhysOp::DebugName()
  size_t dop = 1;              // PhysOp::profile_dop()
  double estimated_rows = -1;  // optimizer estimate; negative = unknown
  OpRuntimeProfile profile;
  uint64_t self_ns = 0;
  std::vector<ProfileNode> children;
};

/// Walks the (already executed) operator tree and snapshots every node's
/// runtime profile, deriving per-node self time.
ProfileNode CollectProfile(const PhysOp& root);

struct ProfileRenderOptions {
  /// When false, every wall-clock-derived field (times, phases, worker
  /// counts, call counts) is suppressed and only the deterministic fields
  /// (operator name, rows, estimates, DOP) are printed — the stable subset
  /// golden-file tests pin down.
  bool show_timings = true;
};

/// Renders the snapshot as an indented annotated plan tree, e.g.
///   GApply(...) rows=120 est=100 dop=8  [total=12.345ms self=1.204ms ...]
///     phases: partition=2.101ms per_group_query=9.870ms
std::string RenderProfileText(const ProfileNode& node,
                              const ProfileRenderOptions& options = {});

/// Converts the snapshot to the shared per-operator JSON schema used by
/// EXPLAIN (ANALYZE, FORMAT JSON), tools/gapply_profile, and every bench's
/// BENCH_*.json "profiles" section:
///   {"op": ..., "dop": ..., "estimated_rows": ...?, "rows_out": ...,
///    "rows_in": ..., "batches_out": ..., "opens": ..., "next_calls": ...,
///    "batch_calls": ..., "workers_merged": ..., "total_ns": ...,
///    "self_ns": ..., "open_ns": ..., "next_ns": ..., "close_ns": ...,
///    "phases": {...}, "children": [...]}
JsonValue ProfileToJson(const ProfileNode& node);

/// CollectProfile + ProfileToJson in one call, for bench emission.
JsonValue CollectProfileJson(const PhysOp& root);

/// Checks the structural counter invariants a correct profile must satisfy
/// after a *successful* execution:
///   - every node's rows_in equals the sum of its children's rows_out (the
///     two are measured independently: rows_out in the child's own wrapper,
///     rows_in credited by the child to the consumer on the profiler stack);
///   - cumulative time >= derived self time;
///   - cumulative time >= the children's summed cumulative time, unless the
///     node or a child folded in parallel worker clones (workers_merged > 0),
///     whose summed busy time may exceed the parent's wall-clock span.
/// Used by tests and as a gapply_fuzz oracle on every profiled case.
Status ValidateProfile(const ProfileNode& root);

}  // namespace gapply

#endif  // GAPPLY_EXEC_PROFILE_H_
