#include "src/exec/exchange_op.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/exec/filter_project_ops.h"
#include "src/exec/join_ops.h"

namespace gapply {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TableScanOp* FindExchangeMorselSource(PhysOp* op) {
  if (auto* scan = dynamic_cast<TableScanOp*>(op)) return scan;
  // Only the order-preserving streaming operators qualify for the spine:
  // they never latch end-of-stream, so the segment can be re-pulled after
  // the scan is re-armed with the next morsel, and their output order is a
  // function of input order, so per-morsel buffers concatenate to exactly
  // the serial stream. A blocking operator (Sort, aggregation) would
  // consume the scan's initial — empty — morsel range at Open instead.
  if (dynamic_cast<FilterOp*>(op) == nullptr &&
      dynamic_cast<ProjectOp*>(op) == nullptr &&
      dynamic_cast<HashJoinOp*>(op) == nullptr) {
    return nullptr;
  }
  std::vector<const PhysOp*> kids = op->children();
  if (kids.empty()) return nullptr;
  // children()[0] is Filter/Project's input and HashJoin's probe side; a
  // HashJoin's build side is drained wholesale at Open and may be any
  // subplan. The walk only ever descends into operators this Exchange
  // owns, so shedding constness is safe.
  return FindExchangeMorselSource(const_cast<PhysOp*>(kids[0]));
}

ExchangeOp::ExchangeOp(PhysOpPtr child, size_t parallelism,
                       size_t morsel_rows)
    : PhysOp(child->output_schema()),
      child_(std::move(child)),
      parallelism_(std::max<size_t>(1, parallelism)),
      morsel_rows_(std::max<size_t>(1, morsel_rows)) {}

Status ExchangeOp::OpenImpl(ExecContext* ctx) {
  passthrough_ = true;
  effective_dop_ = 1;
  worker_rows_.clear();
  slots_.clear();
  current_slot_ = 0;
  slot_pos_ = 0;

  TableScanOp* scan = FindExchangeMorselSource(child_.get());
  if (scan == nullptr) {
    return Status::Internal(
        "Exchange child is not a streaming segment over a table scan: " +
        child_->DebugName());
  }
  const size_t num_morsels =
      (scan->num_rows() + morsel_rows_ - 1) / morsel_rows_;
  if (parallelism_ <= 1 || num_morsels <= 1) {
    // Degenerate: stream the child directly, no clones, no buffering.
    return child_->Open(ctx);
  }
  passthrough_ = false;
  return OpenParallel(ctx, scan);
}

Status ExchangeOp::OpenParallel(ExecContext* ctx, TableScanOp* scan) {
  const uint64_t t0 = NowNs();
  const size_t num_morsels =
      (scan->num_rows() + morsel_rows_ - 1) / morsel_rows_;
  const size_t dop = std::min(parallelism_, num_morsels);
  effective_dop_ = dop;
  slots_.assign(num_morsels, {});
  worker_rows_.assign(dop, 0);

  struct WorkerState {
    PhysOpPtr segment;
    TableScanOp* scan = nullptr;
    ExecContext ctx;
    Status error = Status::OK();
    // Deterministic error ordering: 0 = segment Open failed (serially that
    // precedes all morsel work), m + 1 = error while draining morsel m,
    // UINT64_MAX = Close failed.
    uint64_t error_rank = 0;
    bool failed = false;
  };
  std::vector<WorkerState> workers(dop);
  for (WorkerState& w : workers) {
    w.segment = child_->Clone();
    w.scan = FindExchangeMorselSource(w.segment.get());
    w.ctx = ctx->ForkForWorker();
  }

  // Workers claim morsel indices through a monotone cursor and abort only
  // *between* morsels, so every morsel below any claimed index runs to
  // completion — the invariant that makes smallest-failing-morsel error
  // selection reproduce the error serial execution hits first.
  std::atomic<size_t> next_morsel{0};
  std::atomic<bool> abort{false};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(dop);
  for (size_t wi = 0; wi < dop; ++wi) {
    tasks.push_back([this, &workers, &next_morsel, &abort, num_morsels, wi] {
      WorkerState& w = workers[wi];
      w.scan->EnableMorselMode();
      // Open runs inside the task so per-clone build work (a HashJoin build
      // side on the spine) is itself spread across the workers.
      Status st = w.segment->Open(&w.ctx);
      if (!st.ok()) {
        w.error = std::move(st);
        w.error_rank = 0;
        w.failed = true;
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      RowBatch batch(w.ctx.batch_size());
      while (!abort.load(std::memory_order_relaxed)) {
        const size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
        if (m >= num_morsels) break;
        Status arm = w.scan->SetMorsel(m * morsel_rows_, (m + 1) * morsel_rows_);
        if (!arm.ok()) {
          w.error = std::move(arm);
          w.error_rank = m + 1;
          w.failed = true;
          abort.store(true, std::memory_order_relaxed);
          break;
        }
        std::vector<Row>& slot = slots_[m];
        while (true) {
          auto has = w.segment->NextBatch(&w.ctx, &batch);
          if (!has.ok()) {
            w.error = has.status();
            w.error_rank = m + 1;
            w.failed = true;
            abort.store(true, std::memory_order_relaxed);
            break;
          }
          if (!*has) break;
          for (Row& row : batch.rows()) slot.push_back(std::move(row));
        }
        if (w.failed) break;
        worker_rows_[wi] += slot.size();
      }
      Status close = w.segment->Close(&w.ctx);
      if (!close.ok() && !w.failed) {
        w.error = std::move(close);
        w.error_rank = UINT64_MAX;
        w.failed = true;
        abort.store(true, std::memory_order_relaxed);
      }
    });
  }
  RunTaskGroup(ctx->thread_pool(), std::move(tasks));

  for (WorkerState& w : workers) {
    ctx->counters().MergeFrom(w.ctx.counters());
  }
  const uint64_t partition_ns = NowNs() - t0;
  ctx->counters().exchange_partition_ns += partition_ns;
  if (ctx->profiling()) {
    profile_.AddPhaseNs("partition", partition_ns);
    uint64_t buffered_rows = 0;
    for (const std::vector<Row>& slot : slots_) buffered_rows += slot.size();
    // The worker clones were drained from bare contexts (no profiled
    // consumer); credit their output to this Exchange so rows_in matches
    // the merged segment's rows_out.
    profile_.rows_in += buffered_rows;
    for (const WorkerState& w : workers) {
      child_->MergeTreeProfileFrom(*w.segment);
    }
  }

  const WorkerState* first_failure = nullptr;
  for (const WorkerState& w : workers) {
    if (w.failed && (first_failure == nullptr ||
                     w.error_rank < first_failure->error_rank)) {
      first_failure = &w;
    }
  }
  if (first_failure != nullptr) return first_failure->error;
  return Status::OK();
}

Result<bool> ExchangeOp::NextImpl(ExecContext* ctx, Row* out) {
  if (passthrough_) {
    ASSIGN_OR_RETURN(bool has, child_->Next(ctx, out));
    if (!has) return false;
    ctx->counters().exchange_rows++;
    return true;
  }
  const uint64_t t0 = NowNs();
  const auto book_merge_ns = [&] {
    const uint64_t merge_ns = NowNs() - t0;
    ctx->counters().exchange_merge_ns += merge_ns;
    if (ctx->profiling()) profile_.AddPhaseNs("merge", merge_ns);
  };
  while (current_slot_ < slots_.size()) {
    std::vector<Row>& rows = slots_[current_slot_];
    if (slot_pos_ < rows.size()) {
      *out = std::move(rows[slot_pos_++]);
      ctx->counters().exchange_rows++;
      book_merge_ns();
      return true;
    }
    rows.clear();
    rows.shrink_to_fit();
    ++current_slot_;
    slot_pos_ = 0;
  }
  book_merge_ns();
  return false;
}

Result<bool> ExchangeOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  if (passthrough_) {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, out));
    if (!has) return false;
    ctx->counters().exchange_rows += out->size();
    RecordBatch(ctx, out->size());
    return true;
  }
  const uint64_t t0 = NowNs();
  out->Clear();
  // Slice ranges straight out of the per-morsel buffers, preserving the
  // serial emission order (same slot-streaming shape as parallel GApply).
  while (current_slot_ < slots_.size() && !out->full()) {
    std::vector<Row>& rows = slots_[current_slot_];
    const size_t n =
        std::min(out->capacity() - out->size(), rows.size() - slot_pos_);
    for (size_t i = 0; i < n; ++i) {
      out->Add(std::move(rows[slot_pos_ + i]));
    }
    slot_pos_ += n;
    if (slot_pos_ >= rows.size()) {
      rows.clear();
      rows.shrink_to_fit();
      ++current_slot_;
      slot_pos_ = 0;
    }
  }
  const uint64_t merge_ns = NowNs() - t0;
  ctx->counters().exchange_merge_ns += merge_ns;
  if (ctx->profiling()) profile_.AddPhaseNs("merge", merge_ns);
  if (out->empty()) return false;
  ctx->counters().exchange_rows += out->size();
  RecordBatch(ctx, out->size());
  return true;
}

Status ExchangeOp::CloseImpl(ExecContext* ctx) {
  slots_.clear();
  if (passthrough_) return child_->Close(ctx);
  return Status::OK();
}

std::string ExchangeOp::DebugName() const {
  return "Exchange(dop=" + std::to_string(parallelism_) +
         ", morsel=" + std::to_string(morsel_rows_) + ")";
}

PhysOpPtr ExchangeOp::Clone() const {
  return std::make_unique<ExchangeOp>(child_->Clone(), parallelism_,
                                      morsel_rows_);
}

}  // namespace gapply
