#ifndef GAPPLY_EXEC_FILTER_PROJECT_OPS_H_
#define GAPPLY_EXEC_FILTER_PROJECT_OPS_H_

#include <string>
#include <vector>

#include "src/exec/physical_op.h"
#include "src/expr/expr.h"

namespace gapply {

/// Emits input rows whose predicate evaluates to TRUE (NULL rejects).
class FilterOp : public PhysOp {
 public:
  FilterOp(PhysOpPtr child, ExprPtr predicate);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

 private:
  PhysOpPtr child_;
  ExprPtr predicate_;

  // Native batch path scratch: the current child batch and its selection
  // flags, reused across NextBatch calls.
  RowBatch child_batch_;
  std::vector<char> keep_;
};

/// Computes one output column per expression.
class ProjectOp : public PhysOp {
 public:
  /// Builds the output schema from the expressions' static types and
  /// `names` (same length as `exprs`).
  static Result<PhysOpPtr> Make(PhysOpPtr child, std::vector<ExprPtr> exprs,
                                std::vector<std::string> names);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

 private:
  ProjectOp(Schema schema, PhysOpPtr child, std::vector<ExprPtr> exprs);

  PhysOpPtr child_;
  std::vector<ExprPtr> exprs_;

  // Native batch path scratch: child batch + one evaluated column per
  // projection expression.
  RowBatch child_batch_;
  std::vector<std::vector<Value>> columns_;
};

/// Sort key: column index + direction. NULLs order first.
struct SortKey {
  int column = 0;
  bool ascending = true;
};

/// Total-order comparison used by Sort and by group-boundary detection:
/// NULL sorts before every non-NULL value; incomparable types fall back to
/// TypeId ordering so sorting never fails.
int CompareForSort(const Value& a, const Value& b);

/// Full in-memory sort (the Partition phase of sort-mode GApply reuses it).
class SortOp : public PhysOp {
 public:
  SortOp(PhysOpPtr child, std::vector<SortKey> keys);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override { return {child_.get()}; }

 private:
  PhysOpPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_FILTER_PROJECT_OPS_H_
