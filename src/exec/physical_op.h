#ifndef GAPPLY_EXEC_PHYSICAL_OP_H_
#define GAPPLY_EXEC_PHYSICAL_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/row_batch.h"
#include "src/exec/exec_context.h"
#include "src/storage/schema.h"

namespace gapply {

/// Per-operator runtime profile, collected by the non-virtual PhysOp entry
/// points while `ExecContext::profiling()` is on. All time fields are
/// *cumulative* (inclusive of children): the scoped timer around OpenImpl /
/// NextImpl / NextBatchImpl / CloseImpl also covers the child pulls those
/// implementations issue. Self time is derived at snapshot time
/// (profile.h) as cumulative minus the children's cumulative.
///
/// Parallel operators execute deep clones of a subtree on workers; their
/// clones' profiles are folded back into the template subtree with
/// PhysOp::MergeTreeProfileFrom, bumping workers_merged. A merged subtree's
/// cumulative time is summed worker *busy* time and may legitimately exceed
/// its parent's wall-clock time.
struct OpRuntimeProfile {
  uint64_t opens = 0;
  uint64_t next_calls = 0;
  uint64_t batch_calls = 0;
  uint64_t rows_out = 0;
  uint64_t batches_out = 0;
  /// Rows this operator pulled from its children (credited by the child's
  /// entry point to the operator that called it, so it is measured
  /// independently of the children's rows_out).
  uint64_t rows_in = 0;
  uint64_t open_ns = 0;
  uint64_t next_ns = 0;  // Next and NextBatch combined
  uint64_t close_ns = 0;
  /// Number of worker-clone profiles folded into this node (0 = executed
  /// in place, serially).
  uint64_t workers_merged = 0;
  /// Zone-map pruning (TableScan with pushed-down predicates only): morsels
  /// skipped off their zone maps vs. morsels actually read.
  uint64_t morsels_pruned = 0;
  uint64_t morsels_scanned = 0;
  /// Named per-phase attribution (e.g. GApply "partition" /
  /// "per_group_query", Exchange "partition" / "merge"), in nanoseconds.
  std::vector<std::pair<std::string, uint64_t>> phases;

  uint64_t cumulative_ns() const { return open_ns + next_ns + close_ns; }

  void AddPhaseNs(const std::string& name, uint64_t ns);
  void MergeFrom(const OpRuntimeProfile& other);
};

/// \brief Base class for Volcano-style physical operators.
///
/// Contract:
///  - `Open` prepares the operator; it must be callable again after `Close`
///    (Apply and GApply re-open their inner subplans once per outer row /
///    per group).
///  - `Next` returns true and fills `*out` when a row is produced, false at
///    end of stream.
///  - `NextBatch` is the vectorized form: it clears `*out`, appends rows,
///    and returns true iff any were appended; false is end of stream. A
///    non-empty batch may be *partial* (fewer than `out->capacity()` rows)
///    at any time, and may overshoot the capacity when output comes in
///    indivisible chunks (see RowBatch). Between one Open/Close pair a
///    caller must drive an operator through either Next or NextBatch,
///    never both: native batch implementations buffer child rows that the
///    row-at-a-time path would not see.
///  - `Close` releases per-execution state.
class PhysOp {
 public:
  /// Per-operator batch accounting: how many batches this operator emitted
  /// through NextBatch and how full they were. Cumulative across re-opens
  /// (a PGQ operator re-opened per group accumulates its fill over all
  /// groups).
  struct BatchStats {
    uint64_t batches = 0;
    uint64_t rows = 0;

    double AverageFill() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(rows) /
                                static_cast<double>(batches);
    }
  };

  explicit PhysOp(Schema schema) : schema_(std::move(schema)) {}
  virtual ~PhysOp() = default;

  PhysOp(const PhysOp&) = delete;
  PhysOp& operator=(const PhysOp&) = delete;

  /// The four execution entry points are non-virtual: they dispatch to the
  /// protected *Impl virtuals, and when `ctx->profiling()` is on they wrap
  /// the call in a scoped timer plus row accounting (see OpRuntimeProfile).
  /// With profiling off the wrapper is a single branch.
  Status Open(ExecContext* ctx) {
    if (!ctx->profiling()) return OpenImpl(ctx);
    return ProfiledOpen(ctx);
  }
  Result<bool> Next(ExecContext* ctx, Row* out) {
    if (!ctx->profiling()) return NextImpl(ctx, out);
    return ProfiledNext(ctx, out);
  }
  /// Fills `*out` with the next batch of rows; see the class contract.
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) {
    if (!ctx->profiling()) return NextBatchImpl(ctx, out);
    return ProfiledNextBatch(ctx, out);
  }
  Status Close(ExecContext* ctx) {
    if (!ctx->profiling()) return CloseImpl(ctx);
    return ProfiledClose(ctx);
  }

  const BatchStats& batch_stats() const { return batch_stats_; }

  const OpRuntimeProfile& runtime_profile() const { return profile_; }
  OpRuntimeProfile* mutable_runtime_profile() { return &profile_; }

  /// Folds the runtime profile of `other` — a structurally identical Clone
  /// of this operator tree that a parallel worker executed — into this
  /// tree, node by node. Called after the workers have been joined, so no
  /// synchronization is needed.
  void MergeTreeProfileFrom(const PhysOp& other);

  /// Optimizer cardinality estimate for this operator's output, stamped
  /// during lowering when a cost model is supplied (negative = unknown).
  /// EXPLAIN ANALYZE prints it next to the actual row count.
  double estimated_rows() const { return estimated_rows_; }
  void set_estimated_rows(double rows) { estimated_rows_ = rows; }

  /// Degree of parallelism this operator was configured with (1 for serial
  /// operators). Surfaced per node by the profiler.
  virtual size_t profile_dop() const { return 1; }

  /// Deep copy of the operator tree in its *pre-Open* configuration:
  /// children and expressions are cloned, runtime state (cursors, hash
  /// tables, materialized rows other than Values literals) is not. The
  /// clone shares only immutable inputs (base tables) with the original,
  /// so original and clone can be executed concurrently from different
  /// ExecContexts — the foundation of the parallel GApply path.
  virtual std::unique_ptr<PhysOp> Clone() const = 0;

  const Schema& output_schema() const { return schema_; }

  /// Operator name plus salient arguments, e.g. "HashJoin(l=[0], r=[1])".
  virtual std::string DebugName() const = 0;

  /// Child operators for plan printing (non-owning).
  virtual std::vector<const PhysOp*> children() const { return {}; }

  /// Indented multi-line plan rendering.
  std::string DebugString(int indent = 0) const;

 protected:
  virtual Status OpenImpl(ExecContext* ctx) = 0;
  virtual Result<bool> NextImpl(ExecContext* ctx, Row* out) = 0;
  virtual Status CloseImpl(ExecContext* ctx) = 0;

  /// The base implementation adapts `NextImpl` (correct for every
  /// operator); hot operators override it with native batch paths.
  virtual Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out);

  /// Books a produced batch into the context counters and this operator's
  /// stats. Every NextBatch implementation calls it before returning true.
  void RecordBatch(ExecContext* ctx, size_t rows) {
    ctx->counters().batches_produced++;
    ctx->counters().batch_rows_produced += rows;
    batch_stats_.batches++;
    batch_stats_.rows += rows;
  }

  Schema schema_;
  BatchStats batch_stats_;
  OpRuntimeProfile profile_;

 private:
  Status ProfiledOpen(ExecContext* ctx);
  Result<bool> ProfiledNext(ExecContext* ctx, Row* out);
  Result<bool> ProfiledNextBatch(ExecContext* ctx, RowBatch* out);
  Status ProfiledClose(ExecContext* ctx);

  double estimated_rows_ = -1.0;
};

using PhysOpPtr = std::unique_ptr<PhysOp>;

/// \brief Materialized result of executing a plan to completion.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;

  /// Tabular rendering (header + up to max_rows rows).
  std::string ToString(size_t max_rows = 50) const;
};

/// Runs root->Open / NextBatch* / Close and materializes all output rows.
/// Batches are sized by `ctx->batch_size()`.
Result<QueryResult> ExecuteToVector(PhysOp* root, ExecContext* ctx);

/// Row-at-a-time variant driving the root through `Next` — the pre-batch
/// execution loop, kept as the baseline the vectorized path is validated
/// and benchmarked against.
Result<QueryResult> ExecuteToVectorRows(PhysOp* root, ExecContext* ctx);

/// True iff the two row collections are equal as multisets (grouping
/// equality per value). Used pervasively by tests: the engine promises
/// multiset semantics, never order, unless an OrderBy/Sort is at the root.
bool SameRowMultiset(const std::vector<Row>& a, const std::vector<Row>& b);

/// True iff the two row collections are identical element by element —
/// same length, same order, grouping equality per value. This is the
/// bit-for-bit bar the engine's determinism guarantees are held to
/// (e.g. DOP N output must equal DOP 1 output exactly).
bool SameRowSequence(const std::vector<Row>& a, const std::vector<Row>& b);

/// Sorts rows into a canonical total order (by type rank, then value;
/// NULL first) so two equal multisets align row-for-row. Differential
/// harnesses use this to render the first divergent rows of a mismatch.
void SortRowsCanonical(std::vector<Row>* rows);

}  // namespace gapply

#endif  // GAPPLY_EXEC_PHYSICAL_OP_H_
