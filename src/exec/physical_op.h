#ifndef GAPPLY_EXEC_PHYSICAL_OP_H_
#define GAPPLY_EXEC_PHYSICAL_OP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/exec/exec_context.h"
#include "src/storage/schema.h"

namespace gapply {

/// \brief Base class for Volcano-style physical operators.
///
/// Contract:
///  - `Open` prepares the operator; it must be callable again after `Close`
///    (Apply and GApply re-open their inner subplans once per outer row /
///    per group).
///  - `Next` returns true and fills `*out` when a row is produced, false at
///    end of stream.
///  - `Close` releases per-execution state.
class PhysOp {
 public:
  explicit PhysOp(Schema schema) : schema_(std::move(schema)) {}
  virtual ~PhysOp() = default;

  PhysOp(const PhysOp&) = delete;
  PhysOp& operator=(const PhysOp&) = delete;

  virtual Status Open(ExecContext* ctx) = 0;
  virtual Result<bool> Next(ExecContext* ctx, Row* out) = 0;
  virtual Status Close(ExecContext* ctx) = 0;

  /// Deep copy of the operator tree in its *pre-Open* configuration:
  /// children and expressions are cloned, runtime state (cursors, hash
  /// tables, materialized rows other than Values literals) is not. The
  /// clone shares only immutable inputs (base tables) with the original,
  /// so original and clone can be executed concurrently from different
  /// ExecContexts — the foundation of the parallel GApply path.
  virtual std::unique_ptr<PhysOp> Clone() const = 0;

  const Schema& output_schema() const { return schema_; }

  /// Operator name plus salient arguments, e.g. "HashJoin(l=[0], r=[1])".
  virtual std::string DebugName() const = 0;

  /// Child operators for plan printing (non-owning).
  virtual std::vector<const PhysOp*> children() const { return {}; }

  /// Indented multi-line plan rendering.
  std::string DebugString(int indent = 0) const;

 protected:
  Schema schema_;
};

using PhysOpPtr = std::unique_ptr<PhysOp>;

/// \brief Materialized result of executing a plan to completion.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;

  /// Tabular rendering (header + up to max_rows rows).
  std::string ToString(size_t max_rows = 50) const;
};

/// Runs root->Open/Next*/Close and materializes all output rows.
Result<QueryResult> ExecuteToVector(PhysOp* root, ExecContext* ctx);

/// True iff the two row collections are equal as multisets (grouping
/// equality per value). Used pervasively by tests: the engine promises
/// multiset semantics, never order, unless an OrderBy/Sort is at the root.
bool SameRowMultiset(const std::vector<Row>& a, const std::vector<Row>& b);

}  // namespace gapply

#endif  // GAPPLY_EXEC_PHYSICAL_OP_H_
