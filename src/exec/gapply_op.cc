#include "src/exec/gapply_op.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <unordered_map>

#include "src/common/thread_pool.h"
#include "src/exec/filter_project_ops.h"

namespace gapply {

namespace {

Schema MakeGApplySchema(const Schema& outer,
                        const std::vector<int>& grouping_columns,
                        const Schema& pgq) {
  Schema out;
  for (int c : grouping_columns) {
    out.AddColumn(outer.column(static_cast<size_t>(c)));
  }
  return Schema::Concat(out, pgq);
}

Row ExtractKey(const Row& row, const std::vector<int>& cols) {
  Row key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendPrefixed(const Row& key, const Row& suffix, Row* out) {
  out->clear();
  out->reserve(key.size() + suffix.size());
  out->insert(out->end(), key.begin(), key.end());
  out->insert(out->end(), suffix.begin(), suffix.end());
}

}  // namespace

const char* PartitionModeName(PartitionMode mode) {
  return mode == PartitionMode::kSort ? "sort" : "hash";
}

GApplyOp::GApplyOp(PhysOpPtr outer, std::vector<int> grouping_columns,
                   std::string var_name, PhysOpPtr pgq, PartitionMode mode,
                   size_t parallelism)
    : PhysOp(MakeGApplySchema(outer->output_schema(), grouping_columns,
                              pgq->output_schema())),
      outer_(std::move(outer)),
      grouping_columns_(std::move(grouping_columns)),
      var_name_(std::move(var_name)),
      pgq_(std::move(pgq)),
      mode_(mode),
      parallelism_(std::max<size_t>(1, parallelism)) {}

Status GApplyOp::Partition(ExecContext* ctx) {
  group_keys_.clear();
  groups_.clear();

  RETURN_NOT_OK(outer_->Open(ctx));
  RowBatch batch(ctx->batch_size());

  if (mode_ == PartitionMode::kHash) {
    // Hash mode partitions batch-at-a-time, straight off the outer child:
    // each batch's key hashes are precomputed in one pass, then rows are
    // routed into their groups. Group keys are materialized exactly once
    // per distinct group (on first appearance) — a row belonging to an
    // existing group is matched by comparing its grouping columns in place
    // against the stored key, with no per-row key row built.
    std::unordered_map<size_t, std::vector<size_t>> index;  // hash → gids
    std::vector<size_t> hashes;
    const auto row_matches_key = [this](const Row& row, const Row& key) {
      for (size_t i = 0; i < grouping_columns_.size(); ++i) {
        const size_t c = static_cast<size_t>(grouping_columns_[i]);
        if (!row[c].Equals(key[i])) return false;
      }
      return true;
    };
    while (true) {
      ASSIGN_OR_RETURN(bool has, outer_->NextBatch(ctx, &batch));
      if (!has) break;
      ctx->counters().rows_hash_partitioned += batch.size();
      hashes.resize(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        hashes[i] = HashRowColumns(batch[i], grouping_columns_);
      }
      index.reserve(index.size() + batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        Row& r = batch[i];
        std::vector<size_t>& bucket = index[hashes[i]];
        size_t gid = groups_.size();
        for (size_t cand : bucket) {
          if (row_matches_key(r, group_keys_[cand])) {
            gid = cand;
            break;
          }
        }
        if (gid == groups_.size()) {
          bucket.push_back(gid);
          group_keys_.push_back(ExtractKey(r, grouping_columns_));
          groups_.emplace_back();
        }
        groups_[gid].push_back(std::move(r));
      }
    }
    return outer_->Close(ctx);
  }

  std::vector<Row> input;
  while (true) {
    ASSIGN_OR_RETURN(bool has, outer_->NextBatch(ctx, &batch));
    if (!has) break;
    for (Row& row : batch.rows()) input.push_back(std::move(row));
  }
  RETURN_NOT_OK(outer_->Close(ctx));

  {
    ctx->counters().rows_sorted += input.size();
    std::stable_sort(input.begin(), input.end(),
                     [this](const Row& a, const Row& b) {
                       for (int c : grouping_columns_) {
                         const int cmp =
                             CompareForSort(a[static_cast<size_t>(c)],
                                            b[static_cast<size_t>(c)]);
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
    // After sorting, equal keys are adjacent, so a group boundary is a row
    // that differs from its predecessor on some grouping column — compared
    // on the raw row, with no per-row key materialization. A first pass
    // finds the run lengths so every vector can be reserved exactly; keys
    // are extracted once per group, not once per row.
    const auto same_group = [this](const Row& a, const Row& b) {
      for (int c : grouping_columns_) {
        if (!a[static_cast<size_t>(c)].Equals(b[static_cast<size_t>(c)])) {
          return false;
        }
      }
      return true;
    };
    std::vector<size_t> run_lengths;
    for (size_t i = 0; i < input.size(); ++i) {
      if (i == 0 || !same_group(input[i - 1], input[i])) {
        run_lengths.push_back(0);
      }
      ++run_lengths.back();
    }
    group_keys_.reserve(run_lengths.size());
    groups_.reserve(run_lengths.size());
    size_t pos = 0;
    for (size_t len : run_lengths) {
      group_keys_.push_back(ExtractKey(input[pos], grouping_columns_));
      groups_.emplace_back();
      groups_.back().reserve(len);
      for (size_t j = 0; j < len; ++j) {
        groups_.back().push_back(std::move(input[pos++]));
      }
    }
  }
  return Status::OK();
}

Status GApplyOp::OpenGroup(ExecContext* ctx) {
  ctx->BindGroup(var_name_, &outer_->output_schema(),
                 &groups_[current_group_]);
  Status st = pgq_->Open(ctx);
  if (!st.ok()) {
    (void)ctx->UnbindGroup(var_name_);
    return st;
  }
  group_open_ = true;
  group_open_ns_ = NowNs();
  ctx->counters().pgq_executions++;
  return Status::OK();
}

Status GApplyOp::CloseGroup(ExecContext* ctx) {
  const uint64_t group_ns = NowNs() - group_open_ns_;
  ctx->counters().gapply_pgq_ns += group_ns;
  if (ctx->profiling()) profile_.AddPhaseNs("per_group_query", group_ns);
  RETURN_NOT_OK(pgq_->Close(ctx));
  RETURN_NOT_OK(ctx->UnbindGroup(var_name_));
  group_open_ = false;
  return Status::OK();
}

Status GApplyOp::ExecuteOneGroup(PhysOp* pgq, ExecContext* ctx, size_t g,
                                 std::vector<Row>* out) {
  ctx->BindGroup(var_name_, &outer_->output_schema(), &groups_[g]);
  Status st = pgq->Open(ctx);
  if (!st.ok()) {
    (void)ctx->UnbindGroup(var_name_);
    return st;
  }
  ctx->counters().pgq_executions++;
  const Row& key = group_keys_[g];
  RowBatch batch(ctx->batch_size());
  while (true) {
    auto next = pgq->NextBatch(ctx, &batch);
    if (!next.ok()) {
      (void)pgq->Close(ctx);
      (void)ctx->UnbindGroup(var_name_);
      return next.status();
    }
    if (!*next) break;
    for (const Row& pgq_row : batch.rows()) {
      Row full;
      AppendPrefixed(key, pgq_row, &full);
      out->push_back(std::move(full));
    }
  }
  st = pgq->Close(ctx);
  Status unbind = ctx->UnbindGroup(var_name_);
  RETURN_NOT_OK(st);
  return unbind;
}

Status GApplyOp::ExecuteGroupsParallel(ExecContext* ctx) {
  const size_t dop = std::min(parallelism_, groups_.size());
  group_outputs_.assign(groups_.size(), {});

  struct WorkerState {
    PhysOpPtr pgq;
    ExecContext ctx;
    Status error = Status::OK();
    size_t error_group = 0;
    bool failed = false;
    size_t groups_claimed = 0;
  };
  std::vector<WorkerState> workers(dop);
  for (WorkerState& w : workers) {
    w.pgq = pgq_->Clone();
    w.ctx = ctx->ForkForWorker();
  }

  // Morsel-driven scheduling: workers claim the next unprocessed group
  // through a shared cursor. Each group's output goes to its own slot in
  // group_outputs_, so no two workers ever write the same element and the
  // final stream order is independent of scheduling. The worker loops run
  // as one task group on the shared engine pool (with the calling thread
  // helping), falling back to a transient pool for standalone plans — no
  // per-execution thread spawn/join when a Database pool is present.
  std::atomic<size_t> next_group{0};
  std::atomic<bool> abort{false};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(dop);
  for (size_t w = 0; w < dop; ++w) {
    tasks.push_back([this, &workers, &next_group, &abort, w] {
      WorkerState& ws = workers[w];
      const uint64_t busy_start = NowNs();
      while (!abort.load(std::memory_order_relaxed)) {
        const size_t g = next_group.fetch_add(1, std::memory_order_relaxed);
        if (g >= groups_.size()) break;
        ws.groups_claimed++;
        Status st = ExecuteOneGroup(ws.pgq.get(), &ws.ctx, g,
                                    &group_outputs_[g]);
        if (!st.ok()) {
          ws.error = std::move(st);
          ws.error_group = g;
          ws.failed = true;
          abort.store(true, std::memory_order_relaxed);
          break;
        }
      }
      // Per-worker attribution: only a worker that actually claimed a
      // group reports itself. A worker that lost every race to the group
      // cursor must be skipped entirely — folding it in as a zero would
      // collapse the min-busy attribution to 0 (see Counters::MergeFrom).
      if (ws.groups_claimed > 0) {
        ExecContext::Counters busy;
        busy.gapply_workers = 1;
        busy.gapply_worker_busy_ns = NowNs() - busy_start;
        busy.gapply_worker_busy_min_ns = busy.gapply_worker_busy_ns;
        busy.gapply_worker_busy_max_ns = busy.gapply_worker_busy_ns;
        ws.ctx.counters().MergeFrom(busy);
      }
    });
  }
  RunTaskGroup(ctx->thread_pool(), std::move(tasks));

  for (WorkerState& w : workers) {
    ctx->counters().MergeFrom(w.ctx.counters());
  }
  if (ctx->profiling()) {
    uint64_t pgq_rows = 0;
    for (const std::vector<Row>& rows : group_outputs_) {
      pgq_rows += rows.size();
    }
    // The clones' output had no profiled consumer (workers drain them from
    // a bare context); credit it to this operator so rows_in stays equal to
    // the children's merged rows_out.
    profile_.rows_in += pgq_rows;
    for (const WorkerState& w : workers) {
      if (w.groups_claimed > 0) pgq_->MergeTreeProfileFrom(*w.pgq);
    }
  }

  // Deterministic error selection: among the workers that failed, surface
  // the smallest group index — the error serial execution would hit first.
  const WorkerState* first_failure = nullptr;
  for (const WorkerState& w : workers) {
    if (w.failed && (first_failure == nullptr ||
                     w.error_group < first_failure->error_group)) {
      first_failure = &w;
    }
  }
  if (first_failure != nullptr) return first_failure->error;
  return Status::OK();
}

Status GApplyOp::OpenImpl(ExecContext* ctx) {
  current_group_ = 0;
  output_pos_ = 0;
  group_open_ = false;
  parallel_exec_ = false;
  group_outputs_.clear();
  pgq_batch_.Clear();

  const uint64_t t0 = NowNs();
  RETURN_NOT_OK(Partition(ctx));
  const uint64_t partition_ns = NowNs() - t0;
  ctx->counters().gapply_partition_ns += partition_ns;
  if (ctx->profiling()) profile_.AddPhaseNs("partition", partition_ns);

  if (parallelism_ > 1 && groups_.size() > 1) {
    parallel_exec_ = true;
    const uint64_t t1 = NowNs();
    Status st = ExecuteGroupsParallel(ctx);
    const uint64_t pgq_ns = NowNs() - t1;
    ctx->counters().gapply_pgq_ns += pgq_ns;
    if (ctx->profiling()) profile_.AddPhaseNs("per_group_query", pgq_ns);
    RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Result<bool> GApplyOp::NextImpl(ExecContext* ctx, Row* out) {
  if (parallel_exec_) {
    while (current_group_ < group_outputs_.size()) {
      std::vector<Row>& rows = group_outputs_[current_group_];
      if (output_pos_ < rows.size()) {
        *out = std::move(rows[output_pos_++]);
        return true;
      }
      // Release each group's buffer as soon as it is drained.
      rows.clear();
      rows.shrink_to_fit();
      ++current_group_;
      output_pos_ = 0;
    }
    return false;
  }

  while (current_group_ < groups_.size()) {
    if (!group_open_) RETURN_NOT_OK(OpenGroup(ctx));
    Row pgq_row;
    auto next = pgq_->Next(ctx, &pgq_row);
    if (!next.ok()) {
      (void)CloseGroup(ctx);
      return next.status();
    }
    if (*next) {
      AppendPrefixed(group_keys_[current_group_], pgq_row, out);
      return true;
    }
    RETURN_NOT_OK(CloseGroup(ctx));
    ++current_group_;
  }
  return false;
}

Result<bool> GApplyOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();

  if (parallel_exec_) {
    // Slice ranges straight out of the per-group buffers, preserving the
    // serial emission order.
    while (current_group_ < group_outputs_.size() && !out->full()) {
      std::vector<Row>& rows = group_outputs_[current_group_];
      const size_t n = std::min(out->capacity() - out->size(),
                                rows.size() - output_pos_);
      for (size_t i = 0; i < n; ++i) {
        out->Add(std::move(rows[output_pos_ + i]));
      }
      output_pos_ += n;
      if (output_pos_ >= rows.size()) {
        rows.clear();
        rows.shrink_to_fit();
        ++current_group_;
        output_pos_ = 0;
      }
    }
    if (out->empty()) return false;
    RecordBatch(ctx, out->size());
    return true;
  }

  // Serial phase 2: pull PGQ batches for the open group and emit them
  // key-prefixed, rolling over group boundaries until the batch fills.
  if (pgq_batch_.capacity() != out->capacity()) {
    pgq_batch_ = RowBatch(out->capacity());
  }
  while (current_group_ < groups_.size() && !out->full()) {
    if (!group_open_) RETURN_NOT_OK(OpenGroup(ctx));
    auto next = pgq_->NextBatch(ctx, &pgq_batch_);
    if (!next.ok()) {
      (void)CloseGroup(ctx);
      return next.status();
    }
    if (!*next) {
      RETURN_NOT_OK(CloseGroup(ctx));
      ++current_group_;
      continue;
    }
    const Row& key = group_keys_[current_group_];
    for (const Row& pgq_row : pgq_batch_.rows()) {
      Row full;
      AppendPrefixed(key, pgq_row, &full);
      out->Add(std::move(full));
    }
  }
  if (out->empty()) return false;
  RecordBatch(ctx, out->size());
  return true;
}

Status GApplyOp::CloseImpl(ExecContext* ctx) {
  if (group_open_) RETURN_NOT_OK(CloseGroup(ctx));
  group_keys_.clear();
  groups_.clear();
  group_outputs_.clear();
  return Status::OK();
}

std::string GApplyOp::DebugName() const {
  std::string cols;
  for (size_t i = 0; i < grouping_columns_.size(); ++i) {
    if (i > 0) cols += ",";
    cols += outer_->output_schema()
                .column(static_cast<size_t>(grouping_columns_[i]))
                .name;
  }
  std::string out = "GApply(gcols=[" + cols + "], var=$" + var_name_ +
                    ", partition=" + PartitionModeName(mode_);
  if (parallelism_ > 1) {
    out += ", parallelism=" + std::to_string(parallelism_);
  }
  return out + ")";
}

PhysOpPtr GApplyOp::Clone() const {
  return std::make_unique<GApplyOp>(outer_->Clone(), grouping_columns_,
                                    var_name_, pgq_->Clone(), mode_,
                                    parallelism_);
}

}  // namespace gapply
