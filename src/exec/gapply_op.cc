#include "src/exec/gapply_op.h"

#include <algorithm>
#include <unordered_map>

#include "src/exec/filter_project_ops.h"

namespace gapply {

namespace {

Schema MakeGApplySchema(const Schema& outer,
                        const std::vector<int>& grouping_columns,
                        const Schema& pgq) {
  Schema out;
  for (int c : grouping_columns) {
    out.AddColumn(outer.column(static_cast<size_t>(c)));
  }
  return Schema::Concat(out, pgq);
}

Row ExtractKey(const Row& row, const std::vector<int>& cols) {
  Row key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

}  // namespace

const char* PartitionModeName(PartitionMode mode) {
  return mode == PartitionMode::kSort ? "sort" : "hash";
}

GApplyOp::GApplyOp(PhysOpPtr outer, std::vector<int> grouping_columns,
                   std::string var_name, PhysOpPtr pgq, PartitionMode mode)
    : PhysOp(MakeGApplySchema(outer->output_schema(), grouping_columns,
                              pgq->output_schema())),
      outer_(std::move(outer)),
      grouping_columns_(std::move(grouping_columns)),
      var_name_(std::move(var_name)),
      pgq_(std::move(pgq)),
      mode_(mode) {}

Status GApplyOp::Partition(ExecContext* ctx) {
  group_keys_.clear();
  groups_.clear();

  RETURN_NOT_OK(outer_->Open(ctx));
  std::vector<Row> input;
  Row row;
  while (true) {
    ASSIGN_OR_RETURN(bool has, outer_->Next(ctx, &row));
    if (!has) break;
    input.push_back(std::move(row));
  }
  RETURN_NOT_OK(outer_->Close(ctx));

  if (mode_ == PartitionMode::kSort) {
    ctx->counters().rows_sorted += input.size();
    std::stable_sort(input.begin(), input.end(),
                     [this](const Row& a, const Row& b) {
                       for (int c : grouping_columns_) {
                         const int cmp =
                             CompareForSort(a[static_cast<size_t>(c)],
                                            b[static_cast<size_t>(c)]);
                         if (cmp != 0) return cmp < 0;
                       }
                       return false;
                     });
    for (Row& r : input) {
      Row key = ExtractKey(r, grouping_columns_);
      if (group_keys_.empty() || !RowsEqual(group_keys_.back(), key)) {
        group_keys_.push_back(std::move(key));
        groups_.emplace_back();
      }
      groups_.back().push_back(std::move(r));
    }
  } else {
    ctx->counters().rows_hash_partitioned += input.size();
    std::unordered_map<Row, size_t, RowHash, RowEq> index;
    for (Row& r : input) {
      Row key = ExtractKey(r, grouping_columns_);
      auto [it, inserted] = index.try_emplace(key, groups_.size());
      if (inserted) {
        group_keys_.push_back(std::move(key));
        groups_.emplace_back();
      }
      groups_[it->second].push_back(std::move(r));
    }
  }
  return Status::OK();
}

Status GApplyOp::OpenGroup(ExecContext* ctx) {
  ctx->BindGroup(var_name_, &outer_->output_schema(),
                 &groups_[current_group_]);
  Status st = pgq_->Open(ctx);
  if (!st.ok()) {
    (void)ctx->UnbindGroup(var_name_);
    return st;
  }
  group_open_ = true;
  ctx->counters().pgq_executions++;
  return Status::OK();
}

Status GApplyOp::CloseGroup(ExecContext* ctx) {
  RETURN_NOT_OK(pgq_->Close(ctx));
  RETURN_NOT_OK(ctx->UnbindGroup(var_name_));
  group_open_ = false;
  return Status::OK();
}

Status GApplyOp::Open(ExecContext* ctx) {
  current_group_ = 0;
  group_open_ = false;
  return Partition(ctx);
}

Result<bool> GApplyOp::Next(ExecContext* ctx, Row* out) {
  while (current_group_ < groups_.size()) {
    if (!group_open_) RETURN_NOT_OK(OpenGroup(ctx));
    Row pgq_row;
    auto next = pgq_->Next(ctx, &pgq_row);
    if (!next.ok()) {
      (void)CloseGroup(ctx);
      return next.status();
    }
    if (*next) {
      const Row& key = group_keys_[current_group_];
      out->clear();
      out->reserve(key.size() + pgq_row.size());
      out->insert(out->end(), key.begin(), key.end());
      out->insert(out->end(), pgq_row.begin(), pgq_row.end());
      return true;
    }
    RETURN_NOT_OK(CloseGroup(ctx));
    ++current_group_;
  }
  return false;
}

Status GApplyOp::Close(ExecContext* ctx) {
  if (group_open_) RETURN_NOT_OK(CloseGroup(ctx));
  group_keys_.clear();
  groups_.clear();
  return Status::OK();
}

std::string GApplyOp::DebugName() const {
  std::string cols;
  for (size_t i = 0; i < grouping_columns_.size(); ++i) {
    if (i > 0) cols += ",";
    cols += outer_->output_schema()
                .column(static_cast<size_t>(grouping_columns_[i]))
                .name;
  }
  return "GApply(gcols=[" + cols + "], var=$" + var_name_ + ", partition=" +
         PartitionModeName(mode_) + ")";
}

}  // namespace gapply
