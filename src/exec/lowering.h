#ifndef GAPPLY_EXEC_LOWERING_H_
#define GAPPLY_EXEC_LOWERING_H_

#include <optional>

#include "src/exec/physical_op.h"
#include "src/optimizer/cost_model.h"
#include "src/plan/logical_plan.h"

namespace gapply {

/// Knobs for logical→physical translation.
struct LoweringOptions {
  /// Overrides the partition mode of every GApply (benches use this to
  /// compare sort- vs hash-partitioning on identical plans).
  std::optional<PartitionMode> force_partition_mode;

  /// Lower GroupBy as Sort + StreamGroupBy instead of HashGroupBy.
  bool stream_group_by = false;

  /// Degree of parallelism for every GApply's per-group execution phase.
  /// 0 means "engine default" (Database substitutes its session setting,
  /// `SET parallelism = N`); 1 is serial; N > 1 runs groups on N workers.
  size_t gapply_parallelism = 0;

  /// Degree of parallelism for plan-wide morsel-driven execution: Exchange
  /// operators inserted over streaming scan segments, parallel hash-join
  /// build, and parallel hash aggregation. 0 means "engine default" (the
  /// same `SET parallelism = N` session setting); 1 disables all three.
  size_t exchange_parallelism = 0;

  /// Cardinality gate for Exchange insertion: segments whose base table has
  /// fewer rows than this stay serial (fan-out overhead dominates on small
  /// scans). The base-table row count is the one cardinality lowering knows
  /// exactly, so the gate needs no estimator.
  size_t exchange_min_rows = 8192;

  /// Rows per morsel for inserted Exchanges
  /// (ExchangeOp::kDefaultMorselRows).
  size_t exchange_morsel_rows = 8192;

  /// Storage read path for TableScan: columnar (dense arrays, zone-map
  /// morsel pruning, and pushdown of `col <op> const` Filter conjuncts into
  /// the scan) vs. the row store. Unset means "engine default" (Database
  /// substitutes its session setting, `SET storage = columnar|row`);
  /// standalone LowerPlan calls resolve unset to columnar.
  std::optional<bool> columnar_storage;

  /// When set, every lowered operator is stamped with the cost model's
  /// cardinality estimate for its logical source node
  /// (PhysOp::set_estimated_rows), so EXPLAIN ANALYZE can print estimated
  /// vs. actual rows. Nodes the estimator cannot price (e.g. a GroupScan
  /// outside its group environment) are left unstamped. Non-owning; must
  /// outlive the LowerPlan call.
  const CostModel* cost_model = nullptr;
};

/// Translates a logical plan into an executable physical plan. The logical
/// plan retains ownership of its expressions (they are cloned), so it can be
/// lowered repeatedly.
Result<PhysOpPtr> LowerPlan(const LogicalOp& plan,
                            const LoweringOptions& options = {});

}  // namespace gapply

#endif  // GAPPLY_EXEC_LOWERING_H_
