#include "src/exec/filter_project_ops.h"

#include <algorithm>

namespace gapply {

FilterOp::FilterOp(PhysOpPtr child, ExprPtr predicate)
    : PhysOp(child->output_schema()),
      child_(std::move(child)),
      predicate_(std::move(predicate)) {}

Status FilterOp::OpenImpl(ExecContext* ctx) {
  child_batch_.Clear();
  return child_->Open(ctx);
}

Result<bool> FilterOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool has, child_->Next(ctx, out));
    if (!has) return false;
    ASSIGN_OR_RETURN(bool pass, EvalPredicate(*predicate_, *out, *ctx->eval()));
    if (pass) return true;
  }
}

Result<bool> FilterOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  if (child_batch_.capacity() != out->capacity()) {
    child_batch_ = RowBatch(out->capacity());
  }
  // Pull child batches until some row survives the predicate (or EOS). The
  // batch predicate evaluation plus the selection pass replace one virtual
  // Next and one recursive Eval per input row.
  while (out->empty()) {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &child_batch_));
    if (!has) return false;
    RETURN_NOT_OK(EvalPredicateBatch(*predicate_, child_batch_, *ctx->eval(),
                                     &keep_));
    for (size_t i = 0; i < child_batch_.size(); ++i) {
      if (keep_[i]) out->Add(std::move(child_batch_[i]));
    }
  }
  RecordBatch(ctx, out->size());
  return true;
}

Status FilterOp::CloseImpl(ExecContext* ctx) { return child_->Close(ctx); }

std::string FilterOp::DebugName() const {
  return "Filter(" + predicate_->ToString() + ")";
}

PhysOpPtr FilterOp::Clone() const {
  return std::make_unique<FilterOp>(child_->Clone(), predicate_->Clone());
}

ProjectOp::ProjectOp(Schema schema, PhysOpPtr child,
                     std::vector<ExprPtr> exprs)
    : PhysOp(std::move(schema)),
      child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Result<PhysOpPtr> ProjectOp::Make(PhysOpPtr child, std::vector<ExprPtr> exprs,
                                  std::vector<std::string> names) {
  if (exprs.size() != names.size()) {
    return Status::InvalidArgument("Project: exprs/names size mismatch");
  }
  Schema schema;
  for (size_t i = 0; i < exprs.size(); ++i) {
    schema.AddColumn(Column(names[i], exprs[i]->type(), ""));
  }
  return PhysOpPtr(
      new ProjectOp(std::move(schema), std::move(child), std::move(exprs)));
}

Status ProjectOp::OpenImpl(ExecContext* ctx) {
  child_batch_.Clear();
  return child_->Open(ctx);
}

Result<bool> ProjectOp::NextImpl(ExecContext* ctx, Row* out) {
  Row in;
  ASSIGN_OR_RETURN(bool has, child_->Next(ctx, &in));
  if (!has) return false;
  out->clear();
  out->reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    ASSIGN_OR_RETURN(Value v, e->Eval(in, *ctx->eval()));
    out->push_back(std::move(v));
  }
  return true;
}

Result<bool> ProjectOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  if (child_batch_.capacity() != out->capacity()) {
    child_batch_ = RowBatch(out->capacity());
  }
  ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &child_batch_));
  if (!has) return false;
  // Evaluate expression-at-a-time over the batch, then zip the columns
  // back into rows.
  columns_.resize(exprs_.size());
  for (size_t e = 0; e < exprs_.size(); ++e) {
    RETURN_NOT_OK(exprs_[e]->EvalBatch(child_batch_, *ctx->eval(),
                                       &columns_[e]));
  }
  for (size_t i = 0; i < child_batch_.size(); ++i) {
    Row row;
    row.reserve(exprs_.size());
    for (size_t e = 0; e < exprs_.size(); ++e) {
      row.push_back(std::move(columns_[e][i]));
    }
    out->Add(std::move(row));
  }
  RecordBatch(ctx, out->size());
  return true;
}

Status ProjectOp::CloseImpl(ExecContext* ctx) { return child_->Close(ctx); }

std::string ProjectOp::DebugName() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
  }
  out += ")";
  return out;
}

PhysOpPtr ProjectOp::Clone() const {
  std::vector<ExprPtr> exprs;
  exprs.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) exprs.push_back(e->Clone());
  return PhysOpPtr(
      new ProjectOp(schema_, child_->Clone(), std::move(exprs)));
}

int CompareForSort(const Value& a, const Value& b) {
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;
  Result<int> c = Value::Compare(a, b);
  if (c.ok()) return *c;
  // Incomparable types: order by type tag for a stable total order.
  const int ta = static_cast<int>(a.type());
  const int tb = static_cast<int>(b.type());
  return ta < tb ? -1 : (ta > tb ? 1 : 0);
}

SortOp::SortOp(PhysOpPtr child, std::vector<SortKey> keys)
    : PhysOp(child->output_schema()),
      child_(std::move(child)),
      keys_(std::move(keys)) {}

Status SortOp::OpenImpl(ExecContext* ctx) {
  rows_.clear();
  pos_ = 0;
  RETURN_NOT_OK(child_->Open(ctx));
  RowBatch batch(ctx->batch_size());
  while (true) {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &batch));
    if (!has) break;
    for (Row& row : batch.rows()) rows_.push_back(std::move(row));
  }
  RETURN_NOT_OK(child_->Close(ctx));
  ctx->counters().rows_sorted += rows_.size();
  std::stable_sort(rows_.begin(), rows_.end(),
                   [this](const Row& a, const Row& b) {
                     for (const SortKey& k : keys_) {
                       const int c =
                           CompareForSort(a[static_cast<size_t>(k.column)],
                                          b[static_cast<size_t>(k.column)]);
                       if (c != 0) return k.ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  return Status::OK();
}

Result<bool> SortOp::NextImpl(ExecContext*, Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Result<bool> SortOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  if (pos_ >= rows_.size()) return false;
  const size_t n = std::min(out->capacity(), rows_.size() - pos_);
  for (size_t i = 0; i < n; ++i) {
    out->Add(std::move(rows_[pos_ + i]));
  }
  pos_ += n;
  RecordBatch(ctx, n);
  return true;
}

Status SortOp::CloseImpl(ExecContext*) {
  rows_.clear();
  return Status::OK();
}

std::string SortOp::DebugName() const {
  std::string out = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.column(static_cast<size_t>(keys_[i].column)).name;
    if (!keys_[i].ascending) out += " desc";
  }
  out += ")";
  return out;
}

PhysOpPtr SortOp::Clone() const {
  return std::make_unique<SortOp>(child_->Clone(), keys_);
}

}  // namespace gapply
