#include "src/exec/apply_ops.h"

namespace gapply {

ApplyOp::ApplyOp(PhysOpPtr outer, PhysOpPtr inner,
                 bool cache_uncorrelated_inner)
    : PhysOp(Schema::Concat(outer->output_schema(), inner->output_schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      cache_inner_(cache_uncorrelated_inner) {}

Status ApplyOp::OpenImpl(ExecContext* ctx) {
  inner_open_ = false;
  cache_valid_ = false;
  cache_.clear();
  return outer_->Open(ctx);
}

Status ApplyOp::CloseInner(ExecContext* ctx) {
  RETURN_NOT_OK(inner_->Close(ctx));
  ctx->eval()->outer_rows.pop_back();
  inner_open_ = false;
  return Status::OK();
}

Result<bool> ApplyOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    if (!inner_open_) {
      ASSIGN_OR_RETURN(bool has, outer_->Next(ctx, &current_outer_));
      if (!has) return false;
      ctx->eval()->outer_rows.push_back(&current_outer_);
      if (cache_inner_ && !cache_valid_) {
        // The inner does not depend on the outer row: evaluate once and
        // replay for every subsequent outer row of this execution.
        Status st = inner_->Open(ctx);
        if (!st.ok()) {
          ctx->eval()->outer_rows.pop_back();
          return st;
        }
        ctx->counters().apply_invocations++;
        Row row;
        while (true) {
          auto next = inner_->Next(ctx, &row);
          if (!next.ok()) {
            (void)inner_->Close(ctx);
            ctx->eval()->outer_rows.pop_back();
            return next.status();
          }
          if (!*next) break;
          cache_.push_back(row);
        }
        Status close = inner_->Close(ctx);
        if (!close.ok()) {
          ctx->eval()->outer_rows.pop_back();
          return close;
        }
        cache_valid_ = true;
      } else if (!cache_inner_) {
        Status st = inner_->Open(ctx);
        if (!st.ok()) {
          ctx->eval()->outer_rows.pop_back();
          return st;
        }
        ctx->counters().apply_invocations++;
      }
      inner_open_ = true;
      cache_pos_ = 0;
    }

    if (cache_inner_) {
      if (cache_pos_ < cache_.size()) {
        const Row& inner_row = cache_[cache_pos_++];
        out->clear();
        out->reserve(current_outer_.size() + inner_row.size());
        out->insert(out->end(), current_outer_.begin(), current_outer_.end());
        out->insert(out->end(), inner_row.begin(), inner_row.end());
        return true;
      }
      ctx->eval()->outer_rows.pop_back();
      inner_open_ = false;
      continue;
    }

    Row inner_row;
    auto next = inner_->Next(ctx, &inner_row);
    if (!next.ok()) {
      (void)CloseInner(ctx);
      return next.status();
    }
    if (*next) {
      out->clear();
      out->reserve(current_outer_.size() + inner_row.size());
      out->insert(out->end(), current_outer_.begin(), current_outer_.end());
      out->insert(out->end(), inner_row.begin(), inner_row.end());
      return true;
    }
    RETURN_NOT_OK(CloseInner(ctx));
  }
}

Status ApplyOp::CloseImpl(ExecContext* ctx) {
  if (inner_open_) {
    if (cache_inner_) {
      ctx->eval()->outer_rows.pop_back();
      inner_open_ = false;
    } else {
      RETURN_NOT_OK(CloseInner(ctx));
    }
  }
  cache_.clear();
  cache_valid_ = false;
  return outer_->Close(ctx);
}

std::string ApplyOp::DebugName() const {
  return cache_inner_ ? "Apply(cached inner)" : "Apply";
}

PhysOpPtr ApplyOp::Clone() const {
  return std::make_unique<ApplyOp>(outer_->Clone(), inner_->Clone(),
                                   cache_inner_);
}

ExistsOp::ExistsOp(PhysOpPtr child, bool negated)
    : PhysOp(Schema()), child_(std::move(child)), negated_(negated) {}

Status ExistsOp::OpenImpl(ExecContext* ctx) {
  done_ = false;
  return child_->Open(ctx);
}

Result<bool> ExistsOp::NextImpl(ExecContext* ctx, Row* out) {
  if (done_) return false;
  done_ = true;
  Row row;
  ASSIGN_OR_RETURN(bool has, child_->Next(ctx, &row));
  out->clear();
  return negated_ ? !has : has;
}

Status ExistsOp::CloseImpl(ExecContext* ctx) { return child_->Close(ctx); }

std::string ExistsOp::DebugName() const {
  return negated_ ? "NotExists" : "Exists";
}

PhysOpPtr ExistsOp::Clone() const {
  return std::make_unique<ExistsOp>(child_->Clone(), negated_);
}

Result<Schema> UnifySchemas(const std::vector<const Schema*>& schemas) {
  if (schemas.empty()) {
    return Status::InvalidArgument("union of zero branches");
  }
  const size_t arity = schemas[0]->num_columns();
  Schema out;
  for (size_t c = 0; c < arity; ++c) {
    TypeId unified = schemas[0]->column(c).type;
    for (size_t b = 1; b < schemas.size(); ++b) {
      if (schemas[b]->num_columns() != arity) {
        return Status::TypeError("union branches have different arity");
      }
      const TypeId t = schemas[b]->column(c).type;
      if (t == unified || t == TypeId::kNull) continue;
      if (unified == TypeId::kNull) {
        unified = t;
      } else if (IsNumeric(t) && IsNumeric(unified)) {
        unified = TypeId::kDouble;
      } else {
        return Status::TypeError(
            "union branch column " + std::to_string(c) +
            " has incompatible type " + TypeName(t) + " vs " +
            TypeName(unified));
      }
    }
    out.AddColumn(Column(schemas[0]->column(c).name, unified, ""));
  }
  return out;
}

UnionAllOp::UnionAllOp(Schema schema, std::vector<PhysOpPtr> children)
    : PhysOp(std::move(schema)), children_(std::move(children)) {}

Result<PhysOpPtr> UnionAllOp::Make(std::vector<PhysOpPtr> children) {
  std::vector<const Schema*> schemas;
  schemas.reserve(children.size());
  for (const PhysOpPtr& c : children) schemas.push_back(&c->output_schema());
  ASSIGN_OR_RETURN(Schema schema, UnifySchemas(schemas));
  return PhysOpPtr(new UnionAllOp(std::move(schema), std::move(children)));
}

Status UnionAllOp::OpenImpl(ExecContext* ctx) {
  current_ = 0;
  if (!children_.empty()) RETURN_NOT_OK(children_[0]->Open(ctx));
  return Status::OK();
}

Result<bool> UnionAllOp::NextImpl(ExecContext* ctx, Row* out) {
  while (current_ < children_.size()) {
    ASSIGN_OR_RETURN(bool has, children_[current_]->Next(ctx, out));
    if (has) return true;
    RETURN_NOT_OK(children_[current_]->Close(ctx));
    ++current_;
    if (current_ < children_.size()) {
      RETURN_NOT_OK(children_[current_]->Open(ctx));
    }
  }
  return false;
}

Result<bool> UnionAllOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  // Forward the current branch's batches untouched; advance on EOS.
  while (current_ < children_.size()) {
    ASSIGN_OR_RETURN(bool has, children_[current_]->NextBatch(ctx, out));
    if (has) {
      RecordBatch(ctx, out->size());
      return true;
    }
    RETURN_NOT_OK(children_[current_]->Close(ctx));
    ++current_;
    if (current_ < children_.size()) {
      RETURN_NOT_OK(children_[current_]->Open(ctx));
    }
  }
  return false;
}

Status UnionAllOp::CloseImpl(ExecContext* ctx) {
  // Children at indexes < current_ are already closed by Next.
  if (current_ < children_.size()) {
    RETURN_NOT_OK(children_[current_]->Close(ctx));
    current_ = children_.size();
  }
  return Status::OK();
}

std::string UnionAllOp::DebugName() const {
  return "UnionAll(" + std::to_string(children_.size()) + " branches)";
}

PhysOpPtr UnionAllOp::Clone() const {
  std::vector<PhysOpPtr> branches;
  branches.reserve(children_.size());
  for (const PhysOpPtr& c : children_) branches.push_back(c->Clone());
  return PhysOpPtr(new UnionAllOp(schema_, std::move(branches)));
}

std::vector<const PhysOp*> UnionAllOp::children() const {
  std::vector<const PhysOp*> out;
  out.reserve(children_.size());
  for (const PhysOpPtr& c : children_) out.push_back(c.get());
  return out;
}

}  // namespace gapply
