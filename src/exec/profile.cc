#include "src/exec/profile.h"

#include <cinttypes>
#include <cstdio>

#include "src/common/string_util.h"

namespace gapply {

namespace {

std::string FormatMs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatEstRows(double est) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", est);
  return buf;
}

void RenderTo(const ProfileNode& node, const ProfileRenderOptions& options,
              int indent, std::string* out) {
  *out += Repeat("  ", indent) + node.name;
  *out += " rows=" + std::to_string(node.profile.rows_out);
  if (node.estimated_rows >= 0) {
    *out += " est=" + FormatEstRows(node.estimated_rows);
  }
  if (node.dop > 1) *out += " dop=" + std::to_string(node.dop);
  // Deterministic (not timing-derived), so printed regardless of
  // show_timings; scans without pushed predicates keep both at zero and
  // print nothing.
  if (node.profile.morsels_pruned > 0 || node.profile.morsels_scanned > 0) {
    *out += " morsels_pruned=" + std::to_string(node.profile.morsels_pruned) +
            " morsels_scanned=" + std::to_string(node.profile.morsels_scanned);
  }
  if (options.show_timings) {
    *out += "  [total=" + FormatMs(node.profile.cumulative_ns()) +
            " self=" + FormatMs(node.self_ns) +
            " open=" + FormatMs(node.profile.open_ns) +
            " next=" + FormatMs(node.profile.next_ns) +
            " close=" + FormatMs(node.profile.close_ns);
    *out += " rows_in=" + std::to_string(node.profile.rows_in);
    if (node.profile.batches_out > 0) {
      *out += " batches=" + std::to_string(node.profile.batches_out);
    }
    *out += " calls=" +
            std::to_string(node.profile.next_calls + node.profile.batch_calls);
    if (node.profile.workers_merged > 0) {
      *out += " workers=" + std::to_string(node.profile.workers_merged);
    }
    *out += "]";
    if (!node.profile.phases.empty()) {
      *out += "\n" + Repeat("  ", indent) + "  phases:";
      for (const auto& phase : node.profile.phases) {
        *out += " " + phase.first + "=" + FormatMs(phase.second);
      }
    }
  }
  *out += "\n";
  for (const ProfileNode& child : node.children) {
    RenderTo(child, options, indent + 1, out);
  }
}

}  // namespace

ProfileNode CollectProfile(const PhysOp& root) {
  ProfileNode node;
  node.name = root.DebugName();
  node.dop = root.profile_dop();
  node.estimated_rows = root.estimated_rows();
  node.profile = root.runtime_profile();
  uint64_t children_cumulative = 0;
  for (const PhysOp* child : root.children()) {
    node.children.push_back(CollectProfile(*child));
    children_cumulative += node.children.back().profile.cumulative_ns();
  }
  const uint64_t cumulative = node.profile.cumulative_ns();
  node.self_ns =
      cumulative > children_cumulative ? cumulative - children_cumulative : 0;
  return node;
}

std::string RenderProfileText(const ProfileNode& node,
                              const ProfileRenderOptions& options) {
  std::string out;
  RenderTo(node, options, 0, &out);
  return out;
}

JsonValue ProfileToJson(const ProfileNode& node) {
  JsonValue obj = JsonValue::Object();
  obj.Set("op", JsonValue::Str(node.name));
  obj.Set("dop", JsonValue::Int(static_cast<int64_t>(node.dop)));
  if (node.estimated_rows >= 0) {
    obj.Set("estimated_rows", JsonValue::Double(node.estimated_rows));
  }
  obj.Set("rows_out", JsonValue::Int(static_cast<int64_t>(node.profile.rows_out)));
  obj.Set("rows_in", JsonValue::Int(static_cast<int64_t>(node.profile.rows_in)));
  obj.Set("batches_out",
          JsonValue::Int(static_cast<int64_t>(node.profile.batches_out)));
  obj.Set("opens", JsonValue::Int(static_cast<int64_t>(node.profile.opens)));
  obj.Set("next_calls",
          JsonValue::Int(static_cast<int64_t>(node.profile.next_calls)));
  obj.Set("batch_calls",
          JsonValue::Int(static_cast<int64_t>(node.profile.batch_calls)));
  obj.Set("workers_merged",
          JsonValue::Int(static_cast<int64_t>(node.profile.workers_merged)));
  obj.Set("morsels_pruned",
          JsonValue::Int(static_cast<int64_t>(node.profile.morsels_pruned)));
  obj.Set("morsels_scanned",
          JsonValue::Int(static_cast<int64_t>(node.profile.morsels_scanned)));
  obj.Set("total_ns",
          JsonValue::Int(static_cast<int64_t>(node.profile.cumulative_ns())));
  obj.Set("self_ns", JsonValue::Int(static_cast<int64_t>(node.self_ns)));
  obj.Set("open_ns", JsonValue::Int(static_cast<int64_t>(node.profile.open_ns)));
  obj.Set("next_ns", JsonValue::Int(static_cast<int64_t>(node.profile.next_ns)));
  obj.Set("close_ns",
          JsonValue::Int(static_cast<int64_t>(node.profile.close_ns)));
  JsonValue phases = JsonValue::Object();
  for (const auto& phase : node.profile.phases) {
    phases.Set(phase.first, JsonValue::Int(static_cast<int64_t>(phase.second)));
  }
  obj.Set("phases", std::move(phases));
  JsonValue children = JsonValue::Array();
  for (const ProfileNode& child : node.children) {
    children.Append(ProfileToJson(child));
  }
  obj.Set("children", std::move(children));
  return obj;
}

JsonValue CollectProfileJson(const PhysOp& root) {
  return ProfileToJson(CollectProfile(root));
}

namespace {

bool SubtreeMergedWorkers(const ProfileNode& node) {
  if (node.profile.workers_merged > 0) return true;
  for (const ProfileNode& child : node.children) {
    if (SubtreeMergedWorkers(child)) return true;
  }
  return false;
}

Status ValidateNode(const ProfileNode& node) {
  uint64_t children_rows_out = 0;
  uint64_t children_cumulative = 0;
  bool children_merged = node.profile.workers_merged > 0;
  for (const ProfileNode& child : node.children) {
    children_rows_out += child.profile.rows_out;
    children_cumulative += child.profile.cumulative_ns();
    if (SubtreeMergedWorkers(child)) children_merged = true;
  }
  if (!node.children.empty() && node.profile.rows_in != children_rows_out) {
    return Status::Internal(
        "profile invariant violated at " + node.name + ": rows_in=" +
        std::to_string(node.profile.rows_in) +
        " != sum of children rows_out=" + std::to_string(children_rows_out));
  }
  if (node.profile.cumulative_ns() < node.self_ns) {
    return Status::Internal("profile invariant violated at " + node.name +
                            ": cumulative < self time");
  }
  // Worker-clone merges book summed busy time into the merged subtree,
  // which may exceed the enclosing node's wall-clock span — only enforce
  // time nesting on purely serial subtrees.
  if (!children_merged &&
      node.profile.cumulative_ns() < children_cumulative) {
    return Status::Internal(
        "profile invariant violated at " + node.name + ": cumulative=" +
        std::to_string(node.profile.cumulative_ns()) +
        "ns < children cumulative=" + std::to_string(children_cumulative) +
        "ns");
  }
  for (const ProfileNode& child : node.children) {
    RETURN_NOT_OK(ValidateNode(child));
  }
  return Status::OK();
}

}  // namespace

Status ValidateProfile(const ProfileNode& root) { return ValidateNode(root); }

}  // namespace gapply
