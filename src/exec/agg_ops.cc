#include "src/exec/agg_ops.h"

#include <algorithm>
#include <atomic>
#include <functional>

#include "src/common/thread_pool.h"

namespace gapply {

namespace {

Row ExtractKey(const Row& row, const std::vector<int>& cols) {
  Row key;
  key.reserve(cols.size());
  for (int c : cols) key.push_back(row[static_cast<size_t>(c)]);
  return key;
}

Status AddRowToAccumulators(
    const std::vector<AggregateDesc>& aggs,
    const std::vector<std::unique_ptr<AggAccumulator>>& accs, const Row& row,
    const EvalContext& eval) {
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].kind == AggKind::kCountStar) {
      RETURN_NOT_OK(accs[i]->Add(Value::Bool(true)));
    } else {
      ASSIGN_OR_RETURN(Value v, aggs[i].arg->Eval(row, eval));
      RETURN_NOT_OK(accs[i]->Add(v));
    }
  }
  return Status::OK();
}

std::vector<std::unique_ptr<AggAccumulator>> MakeAccumulators(
    const std::vector<AggregateDesc>& aggs) {
  std::vector<std::unique_ptr<AggAccumulator>> accs;
  accs.reserve(aggs.size());
  for (const AggregateDesc& a : aggs) {
    accs.push_back(CreateAccumulator(a.kind, a.distinct));
  }
  return accs;
}

std::string AggList(const std::vector<AggregateDesc>& aggs) {
  std::string out;
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs[i].ToString();
  }
  return out;
}

}  // namespace

Schema HashGroupByOp::MakeOutputSchema(const Schema& input,
                                       const std::vector<int>& key_columns,
                                       const std::vector<AggregateDesc>& aggs) {
  Schema out;
  for (int c : key_columns) out.AddColumn(input.column(static_cast<size_t>(c)));
  for (const AggregateDesc& a : aggs) {
    out.AddColumn(Column(a.output_name, a.OutputType(), ""));
  }
  return out;
}

HashGroupByOp::HashGroupByOp(PhysOpPtr child, std::vector<int> key_columns,
                             std::vector<AggregateDesc> aggs,
                             size_t parallelism)
    : PhysOp(MakeOutputSchema(child->output_schema(), key_columns, aggs)),
      child_(std::move(child)),
      key_columns_(std::move(key_columns)),
      aggs_(std::move(aggs)),
      parallelism_(std::max<size_t>(1, parallelism)) {}

Status HashGroupByOp::OpenImpl(ExecContext* ctx) {
  output_.clear();
  pos_ = 0;
  RETURN_NOT_OK(child_->Open(ctx));

  if (parallelism_ > 1 && AggregateMergeIsExact(aggs_)) {
    // Candidate for parallel partial aggregation: buffer the input first
    // (the aggregate is a full pipeline breaker anyway), then pick the
    // parallel or serial path purely on input size — never on the DOP — so
    // the path choice is identical across DOPs for the same input.
    std::vector<Row> input;
    RowBatch batch(ctx->batch_size());
    while (true) {
      ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &batch));
      if (!has) break;
      for (Row& row : batch.rows()) input.push_back(std::move(row));
    }
    RETURN_NOT_OK(child_->Close(ctx));
    if (input.size() >= kParallelAggMinRows) {
      return AggregateParallel(ctx, input);
    }
    return AggregateBuffered(ctx, input);
  }

  // Key → accumulator set; groups_order keeps first-appearance order.
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  std::vector<Row> keys;
  std::vector<std::vector<std::unique_ptr<AggAccumulator>>> groups;

  RowBatch batch(ctx->batch_size());
  while (true) {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &batch));
    if (!has) break;
    for (const Row& row : batch.rows()) {
      Row key = ExtractKey(row, key_columns_);
      auto [it, inserted] = index.try_emplace(key, groups.size());
      if (inserted) {
        keys.push_back(std::move(key));
        groups.push_back(MakeAccumulators(aggs_));
      }
      RETURN_NOT_OK(
          AddRowToAccumulators(aggs_, groups[it->second], row, *ctx->eval()));
    }
  }
  RETURN_NOT_OK(child_->Close(ctx));

  output_.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    Row out = keys[g];
    for (const auto& acc : groups[g]) out.push_back(acc->Finish());
    output_.push_back(std::move(out));
  }
  return Status::OK();
}

Status HashGroupByOp::AggregateBuffered(ExecContext* ctx,
                                        const std::vector<Row>& input) {
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  std::vector<Row> keys;
  std::vector<std::vector<std::unique_ptr<AggAccumulator>>> groups;
  for (const Row& row : input) {
    Row key = ExtractKey(row, key_columns_);
    auto [it, inserted] = index.try_emplace(key, groups.size());
    if (inserted) {
      keys.push_back(std::move(key));
      groups.push_back(MakeAccumulators(aggs_));
    }
    RETURN_NOT_OK(
        AddRowToAccumulators(aggs_, groups[it->second], row, *ctx->eval()));
  }
  output_.reserve(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    Row out = keys[g];
    for (const auto& acc : groups[g]) out.push_back(acc->Finish());
    output_.push_back(std::move(out));
  }
  return Status::OK();
}

Status HashGroupByOp::AggregateParallel(ExecContext* ctx,
                                        const std::vector<Row>& input) {
  constexpr size_t kMorselRows = 4096;
  const size_t n = input.size();
  const size_t num_morsels = (n + kMorselRows - 1) / kMorselRows;
  const size_t dop = std::min(parallelism_, num_morsels);

  // Per-worker partial state. Each worker clones the aggregate descriptors
  // (their argument expressions are evaluated concurrently) and records,
  // per group, the global row index of its first appearance in that
  // worker's morsels.
  struct Partial {
    std::unordered_map<Row, size_t, RowHash, RowEq> index;
    std::vector<Row> keys;
    std::vector<std::vector<std::unique_ptr<AggAccumulator>>> groups;
    std::vector<uint64_t> first_pos;
    std::vector<AggregateDesc> aggs;
    ExecContext wctx;
    Status error = Status::OK();
    uint64_t error_pos = 0;
    bool failed = false;
  };
  std::vector<Partial> partials(dop);
  for (Partial& p : partials) {
    p.aggs = CloneAggregates(aggs_);
    p.wctx = ctx->ForkForWorker();
  }

  // Workers claim morsels through a monotone shared cursor and abort only
  // between morsels, so every morsel before any claimed one runs to
  // completion — which makes "smallest failing row index" the error serial
  // execution would hit first.
  std::atomic<size_t> next_morsel{0};
  std::atomic<bool> abort{false};
  std::vector<std::function<void()>> tasks;
  tasks.reserve(dop);
  for (size_t w = 0; w < dop; ++w) {
    tasks.push_back([&, w] {
      Partial& p = partials[w];
      while (!abort.load(std::memory_order_relaxed)) {
        const size_t m = next_morsel.fetch_add(1, std::memory_order_relaxed);
        if (m >= num_morsels) break;
        const size_t begin = m * kMorselRows;
        const size_t end = std::min(n, begin + kMorselRows);
        for (size_t i = begin; i < end; ++i) {
          const Row& row = input[i];
          Row key = ExtractKey(row, key_columns_);
          auto [it, inserted] = p.index.try_emplace(key, p.groups.size());
          if (inserted) {
            p.keys.push_back(std::move(key));
            p.groups.push_back(MakeAccumulators(p.aggs));
            p.first_pos.push_back(i);
          }
          Status st = AddRowToAccumulators(p.aggs, p.groups[it->second], row,
                                           *p.wctx.eval());
          if (!st.ok()) {
            p.error = std::move(st);
            p.error_pos = i;
            p.failed = true;
            abort.store(true, std::memory_order_relaxed);
            return;
          }
        }
      }
    });
  }
  RunTaskGroup(ctx->thread_pool(), std::move(tasks));

  for (Partial& p : partials) {
    ctx->counters().MergeFrom(p.wctx.counters());
  }
  const Partial* first_failure = nullptr;
  for (const Partial& p : partials) {
    if (p.failed && (first_failure == nullptr ||
                     p.error_pos < first_failure->error_pos)) {
      first_failure = &p;
    }
  }
  if (first_failure != nullptr) return first_failure->error;

  // Merge the partials (exact, so merge order is irrelevant), keeping the
  // minimum global first-appearance position per group, then emit in that
  // order — exactly the serial first-appearance group order.
  struct Merged {
    size_t partial;
    size_t group;
    uint64_t first_pos;
  };
  std::unordered_map<Row, size_t, RowHash, RowEq> index;
  std::vector<Merged> merged;
  for (size_t w = 0; w < partials.size(); ++w) {
    Partial& p = partials[w];
    for (size_t g = 0; g < p.keys.size(); ++g) {
      auto [it, inserted] = index.try_emplace(p.keys[g], merged.size());
      if (inserted) {
        merged.push_back({w, g, p.first_pos[g]});
        continue;
      }
      Merged& m = merged[it->second];
      Partial& owner = partials[m.partial];
      for (size_t a = 0; a < aggs_.size(); ++a) {
        RETURN_NOT_OK(owner.groups[m.group][a]->Merge(*p.groups[g][a]));
      }
      m.first_pos = std::min(m.first_pos, p.first_pos[g]);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const Merged& a, const Merged& b) {
              return a.first_pos < b.first_pos;
            });
  output_.reserve(merged.size());
  for (const Merged& m : merged) {
    Partial& p = partials[m.partial];
    Row out = std::move(p.keys[m.group]);
    for (const auto& acc : p.groups[m.group]) out.push_back(acc->Finish());
    output_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashGroupByOp::NextImpl(ExecContext*, Row* out) {
  if (pos_ >= output_.size()) return false;
  *out = output_[pos_++];
  return true;
}

Result<bool> HashGroupByOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  if (pos_ >= output_.size()) return false;
  const size_t n = std::min(out->capacity(), output_.size() - pos_);
  for (size_t i = 0; i < n; ++i) {
    out->Add(std::move(output_[pos_ + i]));
  }
  pos_ += n;
  RecordBatch(ctx, n);
  return true;
}

Status HashGroupByOp::CloseImpl(ExecContext*) {
  output_.clear();
  return Status::OK();
}

std::string HashGroupByOp::DebugName() const {
  std::string keys;
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (i > 0) keys += ",";
    keys += child_->output_schema()
                .column(static_cast<size_t>(key_columns_[i]))
                .name;
  }
  std::string out = "HashGroupBy(keys=[" + keys + "], aggs=[" +
                    AggList(aggs_) + "]";
  if (parallelism_ > 1) out += ", dop=" + std::to_string(parallelism_);
  return out + ")";
}

StreamGroupByOp::StreamGroupByOp(PhysOpPtr child, std::vector<int> key_columns,
                                 std::vector<AggregateDesc> aggs)
    : PhysOp(HashGroupByOp::MakeOutputSchema(child->output_schema(),
                                             key_columns, aggs)),
      child_(std::move(child)),
      key_columns_(std::move(key_columns)),
      aggs_(std::move(aggs)) {}

Status StreamGroupByOp::OpenImpl(ExecContext* ctx) {
  in_group_ = false;
  child_done_ = false;
  have_pending_ = false;
  child_batch_.Clear();
  child_pos_ = 0;
  return child_->Open(ctx);
}

Status StreamGroupByOp::StartGroup(const Row& row) {
  accs_ = MakeAccumulators(aggs_);
  current_key_ = ExtractKey(row, key_columns_);
  in_group_ = true;
  return Status::OK();
}

Status StreamGroupByOp::Accumulate(ExecContext* ctx, const Row& row) {
  return AddRowToAccumulators(aggs_, accs_, row, *ctx->eval());
}

Row StreamGroupByOp::FinishGroup() {
  Row out = current_key_;
  for (const auto& acc : accs_) out.push_back(acc->Finish());
  in_group_ = false;
  return out;
}

bool StreamGroupByOp::SameKeyAsCurrent(const Row& row) const {
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (!row[static_cast<size_t>(key_columns_[i])].Equals(current_key_[i])) {
      return false;
    }
  }
  return true;
}

Result<bool> StreamGroupByOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    Row row;
    bool has = false;
    if (have_pending_) {
      row = std::move(pending_);
      have_pending_ = false;
      has = true;
    } else if (!child_done_) {
      ASSIGN_OR_RETURN(has, child_->Next(ctx, &row));
      if (!has) child_done_ = true;
    }

    if (!has) {
      if (in_group_) {
        *out = FinishGroup();
        return true;
      }
      return false;
    }

    if (!in_group_) {
      RETURN_NOT_OK(StartGroup(row));
      RETURN_NOT_OK(Accumulate(ctx, row));
      continue;
    }
    if (SameKeyAsCurrent(row)) {
      RETURN_NOT_OK(Accumulate(ctx, row));
      continue;
    }
    // Row belongs to the next group: emit the finished group and buffer it.
    pending_ = std::move(row);
    have_pending_ = true;
    *out = FinishGroup();
    return true;
  }
}

Result<bool> StreamGroupByOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  while (!out->full()) {
    if (child_pos_ >= child_batch_.size()) {
      // Current buffered batch drained — refill (re-allocating the buffer
      // only when empty, so no buffered rows are lost on a capacity change).
      if (child_done_) break;
      if (child_batch_.capacity() != out->capacity()) {
        child_batch_ = RowBatch(out->capacity());
      }
      ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &child_batch_));
      child_pos_ = 0;
      if (!has) {
        child_done_ = true;
        break;
      }
    }
    const Row& row = child_batch_[child_pos_++];
    if (!in_group_) {
      RETURN_NOT_OK(StartGroup(row));
      RETURN_NOT_OK(Accumulate(ctx, row));
    } else if (SameKeyAsCurrent(row)) {
      RETURN_NOT_OK(Accumulate(ctx, row));
    } else {
      // Group boundary: emit the finished group, then start the new one.
      out->Add(FinishGroup());
      RETURN_NOT_OK(StartGroup(row));
      RETURN_NOT_OK(Accumulate(ctx, row));
    }
  }
  if (in_group_ && !out->full() && child_done_ &&
      child_pos_ >= child_batch_.size()) {
    out->Add(FinishGroup());
  }
  if (out->empty()) return false;
  RecordBatch(ctx, out->size());
  return true;
}

Status StreamGroupByOp::CloseImpl(ExecContext* ctx) {
  accs_.clear();
  return child_->Close(ctx);
}

PhysOpPtr HashGroupByOp::Clone() const {
  return std::make_unique<HashGroupByOp>(child_->Clone(), key_columns_,
                                         CloneAggregates(aggs_), parallelism_);
}

std::string StreamGroupByOp::DebugName() const {
  return "StreamGroupBy(aggs=[" + AggList(aggs_) + "])";
}

ScalarAggOp::ScalarAggOp(PhysOpPtr child, std::vector<AggregateDesc> aggs)
    : PhysOp(HashGroupByOp::MakeOutputSchema(child->output_schema(), {},
                                             aggs)),
      child_(std::move(child)),
      aggs_(std::move(aggs)) {}

Status ScalarAggOp::OpenImpl(ExecContext* ctx) {
  emitted_ = false;
  return child_->Open(ctx);
}

Result<bool> ScalarAggOp::NextImpl(ExecContext* ctx, Row* out) {
  if (emitted_) return false;
  auto accs = MakeAccumulators(aggs_);
  RowBatch batch(ctx->batch_size());
  while (true) {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &batch));
    if (!has) break;
    for (const Row& row : batch.rows()) {
      RETURN_NOT_OK(AddRowToAccumulators(aggs_, accs, row, *ctx->eval()));
    }
  }
  out->clear();
  for (const auto& acc : accs) out->push_back(acc->Finish());
  emitted_ = true;
  return true;
}

Status ScalarAggOp::CloseImpl(ExecContext* ctx) { return child_->Close(ctx); }

PhysOpPtr StreamGroupByOp::Clone() const {
  return std::make_unique<StreamGroupByOp>(child_->Clone(), key_columns_,
                                           CloneAggregates(aggs_));
}

std::string ScalarAggOp::DebugName() const {
  return "ScalarAgg(" + AggList(aggs_) + ")";
}

DistinctOp::DistinctOp(PhysOpPtr child)
    : PhysOp(child->output_schema()), child_(std::move(child)) {}

Status DistinctOp::OpenImpl(ExecContext* ctx) {
  seen_.clear();
  child_batch_.Clear();
  return child_->Open(ctx);
}

Result<bool> DistinctOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    ASSIGN_OR_RETURN(bool has, child_->Next(ctx, out));
    if (!has) return false;
    if (seen_.try_emplace(*out, true).second) return true;
  }
}

Result<bool> DistinctOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  if (child_batch_.capacity() != out->capacity()) {
    child_batch_ = RowBatch(out->capacity());
  }
  while (out->empty()) {
    ASSIGN_OR_RETURN(bool has, child_->NextBatch(ctx, &child_batch_));
    if (!has) return false;
    for (Row& row : child_batch_.rows()) {
      // try_emplace copies the row into the key slot, so moving the
      // original afterwards is safe.
      if (seen_.try_emplace(row, true).second) out->Add(std::move(row));
    }
  }
  RecordBatch(ctx, out->size());
  return true;
}

Status DistinctOp::CloseImpl(ExecContext* ctx) {
  seen_.clear();
  return child_->Close(ctx);
}

PhysOpPtr ScalarAggOp::Clone() const {
  return std::make_unique<ScalarAggOp>(child_->Clone(),
                                       CloneAggregates(aggs_));
}

std::string DistinctOp::DebugName() const { return "Distinct"; }

PhysOpPtr DistinctOp::Clone() const {
  return std::make_unique<DistinctOp>(child_->Clone());
}

}  // namespace gapply
