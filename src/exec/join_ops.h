#ifndef GAPPLY_EXEC_JOIN_OPS_H_
#define GAPPLY_EXEC_JOIN_OPS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/physical_op.h"
#include "src/expr/expr.h"

namespace gapply {

/// \brief Inner hash equi-join. Builds on the right child, probes with the
/// left — matching the paper's left-deep trees where the right child of
/// every internal node is a base-table leaf.
///
/// `left_keys[i]` must equal `right_keys[i]` for a match. By default this is
/// SQL equi-join equality: a NULL key never matches, so NULL-keyed rows are
/// dropped on both sides. With `null_safe` set the comparison is
/// IS NOT DISTINCT FROM — NULL matches NULL — which is what the
/// group-selection rewrites need to reconstruct GROUP-BY-style groups whose
/// keys may be NULL. An optional residual predicate over the concatenated
/// row filters matches further.
///
/// With `parallelism` > 1 and a build side of at least
/// `kParallelBuildMinRows` rows, the build phase is parallel and
/// hash-partitioned: build rows are split into chunks, workers route each
/// chunk's rows to key-hash shards, then one worker per shard inserts its
/// shard's rows in global chunk order. Because the per-key insertion
/// sequence equals the serial build's, `equal_range` enumerates matches in
/// the same order, so probe output stays bit-for-bit identical to DOP 1.
class HashJoinOp : public PhysOp {
 public:
  /// Build sides smaller than this are built serially even when a
  /// parallelism knob is set — sharding overhead dominates below it.
  static constexpr size_t kParallelBuildMinRows = 4096;

  HashJoinOp(PhysOpPtr left, PhysOpPtr right, std::vector<int> left_keys,
             std::vector<int> right_keys, ExprPtr residual = nullptr,
             size_t parallelism = 1, bool null_safe = false);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override {
    return {left_.get(), right_.get()};
  }

  size_t parallelism() const { return parallelism_; }
  size_t profile_dop() const override { return parallelism_; }
  /// Lowering demotes the build to serial when this join ends up inside an
  /// Exchange segment (each worker clone already builds its own table).
  void set_parallelism(size_t dop) { parallelism_ = dop == 0 ? 1 : dop; }

 private:
  using HashTable = std::unordered_multimap<Row, const Row*, RowHash, RowEq>;

  /// Hash-partitioned parallel build over build_rows_ into shard_tables_.
  void BuildParallel(ExecContext* ctx);
  /// The table holding `key`: the single serial table, or the key's shard.
  const HashTable& TableFor(const Row& key) const;

  PhysOpPtr left_;
  PhysOpPtr right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  ExprPtr residual_;
  size_t parallelism_ = 1;
  bool null_safe_ = false;

  HashTable table_;
  std::vector<HashTable> shard_tables_;  // non-empty iff built in parallel
  std::vector<Row> build_rows_;
  Row current_left_;
  bool have_left_ = false;
  std::pair<HashTable::const_iterator, HashTable::const_iterator> matches_;

  // Native batch path scratch: one probe-side batch per pull.
  RowBatch probe_batch_;
};

/// Inner nested-loops join with an arbitrary predicate (used when no
/// equi-key is extractable). Materializes the right side.
class NestedLoopJoinOp : public PhysOp {
 public:
  NestedLoopJoinOp(PhysOpPtr left, PhysOpPtr right, ExprPtr predicate);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  ExprPtr predicate_;  // may be nullptr (cross product)

  std::vector<Row> right_rows_;
  Row current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_JOIN_OPS_H_
