#ifndef GAPPLY_EXEC_JOIN_OPS_H_
#define GAPPLY_EXEC_JOIN_OPS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/physical_op.h"
#include "src/expr/expr.h"

namespace gapply {

/// \brief Inner hash equi-join. Builds on the right child, probes with the
/// left — matching the paper's left-deep trees where the right child of
/// every internal node is a base-table leaf.
///
/// `left_keys[i]` must equal `right_keys[i]` for a match (grouping equality,
/// so NULL keys never match — enforced separately). An optional residual
/// predicate over the concatenated row filters matches further.
class HashJoinOp : public PhysOp {
 public:
  HashJoinOp(PhysOpPtr left, PhysOpPtr right, std::vector<int> left_keys,
             std::vector<int> right_keys, ExprPtr residual = nullptr);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  Status Close(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  ExprPtr residual_;

  std::unordered_multimap<Row, const Row*, RowHash, RowEq> table_;
  std::vector<Row> build_rows_;
  Row current_left_;
  bool have_left_ = false;
  std::pair<decltype(table_)::const_iterator, decltype(table_)::const_iterator>
      matches_;

  // Native batch path scratch: one probe-side batch per pull.
  RowBatch probe_batch_;
};

/// Inner nested-loops join with an arbitrary predicate (used when no
/// equi-key is extractable). Materializes the right side.
class NestedLoopJoinOp : public PhysOp {
 public:
  NestedLoopJoinOp(PhysOpPtr left, PhysOpPtr right, ExprPtr predicate);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Status Close(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;
  std::vector<const PhysOp*> children() const override {
    return {left_.get(), right_.get()};
  }

 private:
  PhysOpPtr left_;
  PhysOpPtr right_;
  ExprPtr predicate_;  // may be nullptr (cross product)

  std::vector<Row> right_rows_;
  Row current_left_;
  bool have_left_ = false;
  size_t right_pos_ = 0;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_JOIN_OPS_H_
