#include "src/exec/join_ops.h"

#include <algorithm>
#include <atomic>

#include "src/common/thread_pool.h"

namespace gapply {

namespace {

// Concatenates left ++ right into out.
void ConcatRows(const Row& left, const Row& right, Row* out) {
  out->clear();
  out->reserve(left.size() + right.size());
  out->insert(out->end(), left.begin(), left.end());
  out->insert(out->end(), right.begin(), right.end());
}

// Extracts the key columns from a row. Under SQL equi-join semantics
// (null_safe = false) returns false if any key is NULL — NULL never
// matches. Under IS NOT DISTINCT FROM semantics (null_safe = true) NULL
// keys are kept; Value::Hash/Equals already treat NULL == NULL as equal,
// so the hash table matches them without further work.
bool ExtractKey(const Row& row, const std::vector<int>& cols, bool null_safe,
                Row* key) {
  key->clear();
  key->reserve(cols.size());
  for (int c : cols) {
    const Value& v = row[static_cast<size_t>(c)];
    if (v.is_null() && !null_safe) return false;
    key->push_back(v);
  }
  return true;
}

std::string KeyList(const Schema& schema, const std::vector<int>& cols) {
  std::string out = "[";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.column(static_cast<size_t>(cols[i])).name;
  }
  out += "]";
  return out;
}

}  // namespace

HashJoinOp::HashJoinOp(PhysOpPtr left, PhysOpPtr right,
                       std::vector<int> left_keys, std::vector<int> right_keys,
                       ExprPtr residual, size_t parallelism, bool null_safe)
    : PhysOp(Schema::Concat(left->output_schema(), right->output_schema())),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      parallelism_(std::max<size_t>(1, parallelism)),
      null_safe_(null_safe) {}

void HashJoinOp::BuildParallel(ExecContext* ctx) {
  // Phase 1: workers claim fixed-size chunks of the build rows and route
  // each row (by key hash) into a per-(chunk, shard) index list. Storing
  // the lists per chunk keeps a shard's rows in global build order once the
  // chunks are walked in order.
  constexpr size_t kChunkRows = 8192;
  const size_t n = build_rows_.size();
  const size_t num_chunks = (n + kChunkRows - 1) / kChunkRows;
  const size_t nshards = parallelism_;
  std::vector<std::vector<std::vector<uint32_t>>> routed(
      num_chunks, std::vector<std::vector<uint32_t>>(nshards));

  std::atomic<size_t> next_chunk{0};
  const auto route_chunks = [&] {
    Row key;
    while (true) {
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const size_t begin = c * kChunkRows;
      const size_t end = std::min(n, begin + kChunkRows);
      for (size_t i = begin; i < end; ++i) {
        if (!ExtractKey(build_rows_[i], right_keys_, null_safe_, &key)) {
          continue;
        }
        routed[c][RowHash{}(key) % nshards].push_back(
            static_cast<uint32_t>(i));
      }
    }
  };

  const size_t dop = std::min(parallelism_, num_chunks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(dop);
  for (size_t w = 0; w < dop; ++w) tasks.push_back(route_chunks);
  RunTaskGroup(ctx->thread_pool(), std::move(tasks));

  // Phase 2: one worker per shard inserts that shard's rows in chunk order,
  // reproducing the serial per-key insertion sequence.
  shard_tables_.resize(nshards);
  std::atomic<size_t> next_shard{0};
  const auto build_shards = [&] {
    Row key;
    while (true) {
      const size_t s = next_shard.fetch_add(1, std::memory_order_relaxed);
      if (s >= nshards) return;
      HashTable& shard = shard_tables_[s];
      size_t rows = 0;
      for (size_t c = 0; c < num_chunks; ++c) rows += routed[c][s].size();
      shard.reserve(rows);
      for (size_t c = 0; c < num_chunks; ++c) {
        for (uint32_t i : routed[c][s]) {
          ExtractKey(build_rows_[i], right_keys_, null_safe_, &key);
          shard.emplace(key, &build_rows_[i]);
        }
      }
    }
  };
  tasks.clear();
  for (size_t w = 0; w < std::min(parallelism_, nshards); ++w) {
    tasks.push_back(build_shards);
  }
  RunTaskGroup(ctx->thread_pool(), std::move(tasks));
}

const HashJoinOp::HashTable& HashJoinOp::TableFor(const Row& key) const {
  if (shard_tables_.empty()) return table_;
  return shard_tables_[RowHash{}(key) % shard_tables_.size()];
}

Status HashJoinOp::OpenImpl(ExecContext* ctx) {
  table_.clear();
  shard_tables_.clear();
  build_rows_.clear();
  have_left_ = false;
  probe_batch_.Clear();

  // Build phase over the right child, pulled batch-at-a-time.
  RETURN_NOT_OK(right_->Open(ctx));
  RowBatch batch(ctx->batch_size());
  while (true) {
    ASSIGN_OR_RETURN(bool has, right_->NextBatch(ctx, &batch));
    if (!has) break;
    for (Row& row : batch.rows()) {
      build_rows_.push_back(std::move(row));
    }
  }
  RETURN_NOT_OK(right_->Close(ctx));
  // Stable addresses now that build_rows_ stopped growing? vector may have
  // reallocated during the loop, so index after the fact.
  if (parallelism_ > 1 && build_rows_.size() >= kParallelBuildMinRows) {
    BuildParallel(ctx);
  } else {
    table_.reserve(build_rows_.size());
    Row key;
    for (const Row& build_row : build_rows_) {
      if (!ExtractKey(build_row, right_keys_, null_safe_, &key)) continue;
      table_.emplace(key, &build_row);
    }
  }
  return left_->Open(ctx);
}

Result<bool> HashJoinOp::NextImpl(ExecContext* ctx, Row* out) {
  Row key;
  while (true) {
    if (!have_left_) {
      ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &current_left_));
      if (!has) return false;
      if (!ExtractKey(current_left_, left_keys_, null_safe_, &key)) continue;
      matches_ = TableFor(key).equal_range(key);
      if (matches_.first == matches_.second) continue;
      have_left_ = true;
    }
    while (matches_.first != matches_.second) {
      const Row* right_row = matches_.first->second;
      ++matches_.first;
      ConcatRows(current_left_, *right_row, out);
      if (residual_ != nullptr) {
        ASSIGN_OR_RETURN(bool pass,
                         EvalPredicate(*residual_, *out, *ctx->eval()));
        if (!pass) continue;
      }
      if (matches_.first == matches_.second) have_left_ = false;
      return true;
    }
    have_left_ = false;
  }
}

Result<bool> HashJoinOp::NextBatchImpl(ExecContext* ctx, RowBatch* out) {
  out->Clear();
  if (probe_batch_.capacity() != out->capacity()) {
    probe_batch_ = RowBatch(out->capacity());
  }
  // Probe one left batch at a time, emitting every match; a probe row's
  // matches are an indivisible chunk, so the output batch may overshoot
  // its capacity (RowBatch contract).
  Row key;
  Row joined;
  while (out->empty()) {
    ASSIGN_OR_RETURN(bool has, left_->NextBatch(ctx, &probe_batch_));
    if (!has) return false;
    for (const Row& left_row : probe_batch_.rows()) {
      if (!ExtractKey(left_row, left_keys_, null_safe_, &key)) continue;
      auto [it, end] = TableFor(key).equal_range(key);
      for (; it != end; ++it) {
        ConcatRows(left_row, *it->second, &joined);
        if (residual_ != nullptr) {
          ASSIGN_OR_RETURN(bool pass,
                           EvalPredicate(*residual_, joined, *ctx->eval()));
          if (!pass) continue;
        }
        out->Add(std::move(joined));
      }
    }
  }
  RecordBatch(ctx, out->size());
  return true;
}

Status HashJoinOp::CloseImpl(ExecContext* ctx) {
  table_.clear();
  shard_tables_.clear();
  build_rows_.clear();
  return left_->Close(ctx);
}

std::string HashJoinOp::DebugName() const {
  std::string out = "HashJoin(l=" +
                    KeyList(left_->output_schema(), left_keys_) +
                    ", r=" + KeyList(right_->output_schema(), right_keys_);
  if (residual_ != nullptr) out += ", residual=" + residual_->ToString();
  if (parallelism_ > 1) out += ", dop=" + std::to_string(parallelism_);
  if (null_safe_) out += ", null-safe";
  out += ")";
  return out;
}

NestedLoopJoinOp::NestedLoopJoinOp(PhysOpPtr left, PhysOpPtr right,
                                   ExprPtr predicate)
    : PhysOp(Schema::Concat(left->output_schema(), right->output_schema())),
      left_(std::move(left)),
      right_(std::move(right)),
      predicate_(std::move(predicate)) {}

Status NestedLoopJoinOp::OpenImpl(ExecContext* ctx) {
  right_rows_.clear();
  have_left_ = false;
  right_pos_ = 0;
  RETURN_NOT_OK(right_->Open(ctx));
  RowBatch batch(ctx->batch_size());
  while (true) {
    ASSIGN_OR_RETURN(bool has, right_->NextBatch(ctx, &batch));
    if (!has) break;
    for (Row& row : batch.rows()) {
      right_rows_.push_back(std::move(row));
    }
  }
  RETURN_NOT_OK(right_->Close(ctx));
  return left_->Open(ctx);
}

Result<bool> NestedLoopJoinOp::NextImpl(ExecContext* ctx, Row* out) {
  while (true) {
    if (!have_left_) {
      ASSIGN_OR_RETURN(bool has, left_->Next(ctx, &current_left_));
      if (!has) return false;
      have_left_ = true;
      right_pos_ = 0;
    }
    while (right_pos_ < right_rows_.size()) {
      ConcatRows(current_left_, right_rows_[right_pos_++], out);
      if (predicate_ != nullptr) {
        ASSIGN_OR_RETURN(bool pass,
                         EvalPredicate(*predicate_, *out, *ctx->eval()));
        if (!pass) continue;
      }
      return true;
    }
    have_left_ = false;
  }
}

Status NestedLoopJoinOp::CloseImpl(ExecContext* ctx) {
  right_rows_.clear();
  return left_->Close(ctx);
}

PhysOpPtr HashJoinOp::Clone() const {
  return std::make_unique<HashJoinOp>(
      left_->Clone(), right_->Clone(), left_keys_, right_keys_,
      residual_ == nullptr ? nullptr : residual_->Clone(), parallelism_,
      null_safe_);
}

std::string NestedLoopJoinOp::DebugName() const {
  return "NestedLoopJoin(" +
         (predicate_ == nullptr ? std::string("true")
                                : predicate_->ToString()) +
         ")";
}

PhysOpPtr NestedLoopJoinOp::Clone() const {
  return std::make_unique<NestedLoopJoinOp>(
      left_->Clone(), right_->Clone(),
      predicate_ == nullptr ? nullptr : predicate_->Clone());
}

}  // namespace gapply
