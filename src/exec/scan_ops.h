#ifndef GAPPLY_EXEC_SCAN_OPS_H_
#define GAPPLY_EXEC_SCAN_OPS_H_

#include <string>
#include <vector>

#include "src/exec/physical_op.h"
#include "src/storage/table.h"

namespace gapply {

/// \brief Full scan over a base table. The table must outlive the operator.
///
/// Morsel mode (used by ExchangeOp): after `EnableMorselMode`, Open starts
/// with an *empty* row range, and the scan emits only rows of the range set
/// by the most recent `SetMorsel`. End-of-stream then means "current morsel
/// drained", and the driver may re-arm the scan with another SetMorsel and
/// pull the pipeline above it again without re-opening it — the pipeline
/// contract relaxation the exchange/morsel design relies on (DESIGN.md §9).
class TableScanOp : public PhysOp {
 public:
  explicit TableScanOp(const Table* table, std::string alias = "");

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

  const Table* table() const { return table_; }
  size_t num_rows() const { return table_->num_rows(); }

  void EnableMorselMode() { morsel_mode_ = true; }
  bool morsel_mode() const { return morsel_mode_; }

  /// Restricts the scan to rows [begin, end) of the table (clamped to the
  /// table size) and rewinds its cursor to `begin`. Only legal in morsel
  /// mode, between Open and Close.
  void SetMorsel(size_t begin, size_t end);

 private:
  const Table* table_;
  std::string alias_;
  size_t pos_ = 0;
  size_t end_ = 0;
  bool morsel_mode_ = false;
};

/// \brief Scan over the relation-valued variable bound by an enclosing
/// GApply — the paper's "leaf scan operator [that] receives the
/// relation-valued parameter ... and reads from it" (§3).
class GroupScanOp : public PhysOp {
 public:
  /// `schema` is the group's schema as known at plan time (GApply's outer
  /// schema, possibly pruned by the projection rule).
  GroupScanOp(std::string var_name, Schema schema);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

  const std::string& var_name() const { return var_name_; }

 private:
  std::string var_name_;
  const std::vector<Row>* rows_ = nullptr;
  size_t pos_ = 0;
};

/// In-memory literal relation (tests and VALUES-style plans).
class ValuesOp : public PhysOp {
 public:
  ValuesOp(Schema schema, std::vector<Row> rows);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_SCAN_OPS_H_
