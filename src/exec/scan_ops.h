#ifndef GAPPLY_EXEC_SCAN_OPS_H_
#define GAPPLY_EXEC_SCAN_OPS_H_

#include <string>
#include <vector>

#include "src/exec/physical_op.h"
#include "src/storage/table.h"

namespace gapply {

/// \brief Full scan over a base table. The table must outlive the operator.
///
/// Two read paths over the same rows (selected per session via
/// `SET storage`, see DESIGN.md §13):
///  - row store: range-copies out of `Table::rows()`, the seed behavior.
///    Taken whenever no predicates are pushed — with nothing to evaluate
///    or prune, the dense arrays buy nothing, so predicate-free scans stay
///    on the row store in both storage modes and never force the table's
///    lazy columnar mirror to materialize;
///  - columnar: engaged by pushdown (`PushPredicates`, filled in by
///    lowering from the Filter above the scan when the session storage
///    mode is columnar). The scan then (a) skips whole storage morsels
///    whose zone maps refute a conjunct — booked in the `morsels_pruned` /
///    `morsels_scanned` counters — and (b) evaluates the surviving
///    conjuncts over the dense arrays, emitting only matching rows.
/// Both paths produce bit-for-bit the same stream for the same (possibly
/// empty) predicate set.
///
/// Morsel mode (used by ExchangeOp): after `EnableMorselMode`, Open starts
/// with an *empty* row range, and the scan emits only rows of the range set
/// by the most recent `SetMorsel`. End-of-stream then means "current morsel
/// drained", and the driver may re-arm the scan with another SetMorsel and
/// pull the pipeline above it again without re-opening it — the pipeline
/// contract relaxation the exchange/morsel design relies on (DESIGN.md §9).
class TableScanOp : public PhysOp {
 public:
  explicit TableScanOp(const Table* table, std::string alias = "");

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

  const Table* table() const { return table_; }
  size_t num_rows() const { return table_->num_rows(); }

  /// Conjuncts this scan evaluates itself (columnar path only; lowering
  /// pushes them only when the session storage mode is columnar). Compiled
  /// onto the dense representation at Open. Accumulates — an unoptimized
  /// plan lowers stacked Selects one at a time, and each absorbed Filter
  /// must add its conjuncts to the ones already pushed, never replace them.
  void PushPredicates(std::vector<ScanPredicate> preds) {
    for (ScanPredicate& p : preds) preds_.push_back(std::move(p));
  }
  const std::vector<ScanPredicate>& pushed_predicates() const {
    return preds_;
  }

  /// Records the session's storage choice on the operator (lowering gates
  /// predicate extraction on it). Execution-wise the read path follows the
  /// predicates alone: pushed predicates take the columnar path (the row
  /// store cannot evaluate them), an empty set takes the row store.
  void set_use_columnar(bool on) { use_columnar_ = on; }
  bool use_columnar() const { return use_columnar_; }

  void EnableMorselMode() { morsel_mode_ = true; }
  bool morsel_mode() const { return morsel_mode_; }

  /// Restricts the scan to rows [begin, end) of the table (each clamped to
  /// the table size) and rewinds its cursor to `begin`. An inverted range
  /// (`begin > end`) is rejected with InvalidArgument and leaves the scan's
  /// range unchanged. Only legal in morsel mode, between Open and Close.
  Status SetMorsel(size_t begin, size_t end);

 private:
  /// Advances `pos_` past consecutive zone-map-pruned storage morsels and
  /// establishes `chunk_end_` for the chunk `pos_` lands in, booking the
  /// pruned/scanned counters once per chunk visit. On return either
  /// `pos_ >= end` or `pos_` sits inside a checked, scannable chunk.
  void SkipPrunedChunks(ExecContext* ctx, size_t end);

  const Table* table_;
  std::string alias_;
  std::vector<ScanPredicate> preds_;
  std::vector<CompiledPredicate> compiled_;  // built at Open from preds_
  std::vector<uint32_t> selection_;          // scratch for FilterRange
  size_t pos_ = 0;
  size_t end_ = 0;
  /// End of the storage-morsel chunk the cursor currently sits in;
  /// `pos_ >= chunk_end_` means the next chunk still needs its zone-map
  /// check. Reset by Open/SetMorsel.
  size_t chunk_end_ = 0;
  bool use_columnar_ = true;
  bool morsel_mode_ = false;
};

/// \brief Scan over the relation-valued variable bound by an enclosing
/// GApply — the paper's "leaf scan operator [that] receives the
/// relation-valued parameter ... and reads from it" (§3).
class GroupScanOp : public PhysOp {
 public:
  /// `schema` is the group's schema as known at plan time (GApply's outer
  /// schema, possibly pruned by the projection rule).
  GroupScanOp(std::string var_name, Schema schema);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

  const std::string& var_name() const { return var_name_; }

 private:
  std::string var_name_;
  const std::vector<Row>* rows_ = nullptr;
  size_t pos_ = 0;
};

/// In-memory literal relation (tests and VALUES-style plans).
class ValuesOp : public PhysOp {
 public:
  ValuesOp(Schema schema, std::vector<Row> rows);

  Status OpenImpl(ExecContext* ctx) override;
  Result<bool> NextImpl(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatchImpl(ExecContext* ctx, RowBatch* out) override;
  Status CloseImpl(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_SCAN_OPS_H_
