#ifndef GAPPLY_EXEC_SCAN_OPS_H_
#define GAPPLY_EXEC_SCAN_OPS_H_

#include <string>
#include <vector>

#include "src/exec/physical_op.h"
#include "src/storage/table.h"

namespace gapply {

/// Full scan over a base table. The table must outlive the operator.
class TableScanOp : public PhysOp {
 public:
  explicit TableScanOp(const Table* table, std::string alias = "");

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  Status Close(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

 private:
  const Table* table_;
  std::string alias_;
  size_t pos_ = 0;
};

/// \brief Scan over the relation-valued variable bound by an enclosing
/// GApply — the paper's "leaf scan operator [that] receives the
/// relation-valued parameter ... and reads from it" (§3).
class GroupScanOp : public PhysOp {
 public:
  /// `schema` is the group's schema as known at plan time (GApply's outer
  /// schema, possibly pruned by the projection rule).
  GroupScanOp(std::string var_name, Schema schema);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  Status Close(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

  const std::string& var_name() const { return var_name_; }

 private:
  std::string var_name_;
  const std::vector<Row>* rows_ = nullptr;
  size_t pos_ = 0;
};

/// In-memory literal relation (tests and VALUES-style plans).
class ValuesOp : public PhysOp {
 public:
  ValuesOp(Schema schema, std::vector<Row> rows);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(ExecContext* ctx, Row* out) override;
  Result<bool> NextBatch(ExecContext* ctx, RowBatch* out) override;
  Status Close(ExecContext* ctx) override;
  std::string DebugName() const override;
  PhysOpPtr Clone() const override;

 private:
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

}  // namespace gapply

#endif  // GAPPLY_EXEC_SCAN_OPS_H_
