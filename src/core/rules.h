#ifndef GAPPLY_CORE_RULES_H_
#define GAPPLY_CORE_RULES_H_

#include "src/optimizer/optimizer.h"

namespace gapply::core {

/// σ(RE1 GA_C RE2) = RE1 GA_C σ(RE2) when σ references only columns
/// returned by the per-group query (paper §4, "rules that do not need the
/// per-group query to be traversed").
class PushSelectIntoPgqRule : public Rule {
 public:
  const char* name() const override { return "PushSelectIntoPGQ"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// π_{C∪B}(RE1 GA_C RE2) = RE1 GA_C π_B(RE2): a projection above GApply
/// that keeps the grouping columns moves into the per-group query.
class PushProjectIntoPgqRule : public Rule {
 public:
  const char* name() const override { return "PushProjectIntoPGQ"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Placing Projections Before GApply (§4.1): only grouping columns and
/// columns referenced somewhere in the PGQ need flow into GApply; prune the
/// rest with a projection on the outer query.
class ProjectionBeforeGApplyRule : public Rule {
 public:
  const char* name() const override { return "ProjectionBeforeGApply"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Placing Selections Before GApply (§4.1, Theorem 1): when the PGQ is
/// emptyOnEmpty, its covering range can be applied to the outer query, and
/// per-group selections equivalent to the range are eliminated.
class SelectionBeforeGApplyRule : public Rule {
 public:
  const char* name() const override { return "SelectionBeforeGApply"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Converting GApply to groupby (§4.1): an aggregate-only per-group query
/// becomes a plain GroupBy on the grouping columns; a groupby-only PGQ
/// merges its keys into the grouping columns.
class GApplyToGroupByRule : public Rule {
 public:
  const char* name() const override { return "GApplyToGroupBy"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Group selection via EXISTS (§4.2, Figs. 5-6): a PGQ that returns the
/// whole group iff some tuple satisfies S becomes
///   Join_C(Distinct(π_C(σ_S(T))), T).
/// Cost-gated: wins only when S is selective.
class GroupSelectionExistsRule : public Rule {
 public:
  const char* name() const override { return "GroupSelectionExists"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Group selection via an aggregate condition (§4.2): a PGQ returning the
/// whole group iff an aggregate of the group satisfies P becomes
///   Join_C(π_C(σ_P(GroupBy_{C,aggs}(T))), T).
class GroupSelectionAggregateRule : public Rule {
 public:
  const char* name() const override { return "GroupSelectionAggregate"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

/// Invariant grouping (§4.3, Theorem 2): pushes GApply below a foreign-key
/// join when the grouping and gp-eval columns live on the join's outer side
/// and the join columns are grouping columns; per-group project lists are
/// adapted, and the dropped columns are re-attached above the join.
class InvariantGroupingRule : public Rule {
 public:
  const char* name() const override { return "InvariantGrouping"; }
  Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) override;
};

}  // namespace gapply::core

#endif  // GAPPLY_CORE_RULES_H_
