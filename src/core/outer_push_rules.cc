#include <set>

#include "src/core/analyses.h"
#include "src/core/rules.h"

namespace gapply::core {

namespace {

// True if `op` (or a chain of selects below it) contains a Select whose
// predicate matches `pred`. Used to keep SelectionBeforeGApply from
// re-inserting the same covering-range selection forever. Matching is by
// rendered form, not structural equality: classic pushdown remaps column
// *indexes* when the selection moves below a join, but column names (and
// hence the rendering) survive.
bool HasEquivalentSelectBelow(const LogicalOp& op, const Expr& pred) {
  const std::string pred_text = pred.ToString();
  const LogicalOp* cur = &op;
  while (true) {
    if (cur->type() == LogicalOpType::kSelect) {
      const auto& sel = static_cast<const LogicalSelect&>(*cur);
      // Substring containment also covers the case where MergeSelects
      // folded the pushed range into a larger conjunction.
      if (sel.predicate().StructurallyEquals(pred) ||
          sel.predicate().ToString().find(pred_text) != std::string::npos) {
        return true;
      }
      cur = cur->child(0);
      continue;
    }
    if (cur->type() == LogicalOpType::kProject ||
        cur->type() == LogicalOpType::kDistinct ||
        cur->type() == LogicalOpType::kOrderBy) {
      cur = cur->child(0);
      continue;
    }
    if (cur->type() == LogicalOpType::kJoin) {
      // The pushed selection may have moved into either join input.
      return HasEquivalentSelectBelow(*cur->child(0), pred) ||
             HasEquivalentSelectBelow(*cur->child(1), pred);
    }
    return false;
  }
}

// Removes selects directly above GroupScan($var) whose predicate
// structurally equals `range` (the "any selection ... logically equivalent
// to the covering range of the root can then be eliminated" step). Returns
// true if anything was removed.
bool EliminateRangeSelects(LogicalOpPtr* node, const std::string& var,
                           const Expr& range) {
  bool changed = false;
  LogicalOp* op = node->get();
  if (op->type() == LogicalOpType::kSelect) {
    auto* sel = static_cast<LogicalSelect*>(op);
    if (sel->child(0)->type() == LogicalOpType::kGroupScan) {
      const auto* scan =
          static_cast<const LogicalGroupScan*>(sel->child(0));
      if (scan->var() == var && sel->predicate().StructurallyEquals(range)) {
        *node = sel->TakeChild(0);
        return true;
      }
    }
  }
  // Recurse into children and (for GApply) not into nested PGQs — a nested
  // GApply re-binds a different group variable.
  op = node->get();
  for (size_t i = 0; i < op->num_children(); ++i) {
    LogicalOpPtr child = op->TakeChild(i);
    changed = EliminateRangeSelects(&child, var, range) || changed;
    op->SetChild(i, std::move(child));
  }
  return changed;
}

}  // namespace

Result<bool> ProjectionBeforeGApplyRule::Apply(LogicalOpPtr* node,
                                               OptimizerContext*) {
  if ((*node)->type() != LogicalOpType::kGApply) return false;
  auto* gapply = static_cast<LogicalGApply*>(node->get());

  const Schema& outer_schema = gapply->outer()->output_schema();
  const int width = static_cast<int>(outer_schema.num_columns());

  ASSIGN_OR_RETURN(PgqInfo info,
                   AnalyzePgq(*gapply->pgq(), gapply->var(), width));

  std::set<int> needed(info.used_columns.begin(), info.used_columns.end());
  for (int g : gapply->grouping_columns()) needed.insert(g);
  if (static_cast<int>(needed.size()) >= width) return false;  // no pruning

  // Build the pruning projection (kept columns in original order) and the
  // old→new group-column mapping.
  std::vector<int> old_to_new(static_cast<size_t>(width), -1);
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  Schema pruned;
  int next = 0;
  for (int c = 0; c < width; ++c) {
    if (needed.count(c) == 0) continue;
    old_to_new[static_cast<size_t>(c)] = next++;
    exprs.push_back(Col(outer_schema, c));
    names.push_back(outer_schema.column(static_cast<size_t>(c)).name);
    pruned.AddColumn(outer_schema.column(static_cast<size_t>(c)));
  }

  ASSIGN_OR_RETURN(
      RemappedPgq remapped,
      RemapPgq(*gapply->pgq(), gapply->var(), pruned, old_to_new,
               /*allow_dropping_passthrough=*/false));
  // `used_columns` covers every root output's sources, so the PGQ output
  // must be unchanged.
  for (int m : remapped.output_mapping) {
    if (m < 0) {
      return Status::Internal(
          "projection-before-GApply pruned a column that flows out of the "
          "per-group query");
    }
  }

  std::vector<int> new_gcols;
  for (int g : gapply->grouping_columns()) {
    new_gcols.push_back(old_to_new[static_cast<size_t>(g)]);
  }

  LogicalOpPtr pruned_outer = std::make_unique<LogicalProject>(
      gapply->TakeChild(0), std::move(exprs), std::move(names));
  *node = std::make_unique<LogicalGApply>(
      std::move(pruned_outer), std::move(new_gcols), gapply->var(),
      std::move(remapped.plan), gapply->mode());
  return true;
}

Result<bool> SelectionBeforeGApplyRule::Apply(LogicalOpPtr* node,
                                              OptimizerContext* ctx) {
  if ((*node)->type() != LogicalOpType::kGApply) return false;
  auto* gapply = static_cast<LogicalGApply*>(node->get());

  const int width =
      static_cast<int>(gapply->outer()->output_schema().num_columns());
  ASSIGN_OR_RETURN(PgqInfo info,
                   AnalyzePgq(*gapply->pgq(), gapply->var(), width));

  // Theorem 1 precondition: PGQ(φ) = φ. The unsafe escape hatch exists so
  // the fuzzer can inject this known-unsound rewrite and prove its oracles
  // catch it (OptimizerContext::unsafe_skip_rule_preconditions).
  const bool skip_preconditions =
      ctx != nullptr && ctx->unsafe_skip_rule_preconditions;
  if (!info.empty_on_empty && !skip_preconditions) return false;
  // TRUE range: nothing to push.
  if (info.covering_range == nullptr) return false;

  // The covering range is expressed over the group schema, which is exactly
  // the outer query's output schema.
  if (HasEquivalentSelectBelow(*gapply->outer(), *info.covering_range)) {
    return false;  // already pushed in an earlier pass
  }

  // Eliminate per-group selections the pushed range makes redundant.
  LogicalOpPtr pgq = gapply->TakePgq();
  EliminateRangeSelects(&pgq, gapply->var(), *info.covering_range);

  LogicalOpPtr filtered_outer = std::make_unique<LogicalSelect>(
      gapply->TakeChild(0), info.covering_range->Clone());
  *node = std::make_unique<LogicalGApply>(
      std::move(filtered_outer), gapply->grouping_columns(), gapply->var(),
      std::move(pgq), gapply->mode());
  return true;
}

}  // namespace gapply::core
