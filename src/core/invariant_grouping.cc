#include <set>
#include <string>

#include "src/common/string_util.h"
#include "src/core/analyses.h"
#include "src/core/rules.h"

namespace gapply::core {

namespace {

// Finds the base table scanned under alias `qualifier` within `op` (left
// subtree of the join). Returns nullptr if absent or ambiguous.
const LogicalScan* FindScanByAlias(const LogicalOp& op,
                                   const std::string& qualifier) {
  if (op.type() == LogicalOpType::kScan) {
    const auto& scan = static_cast<const LogicalScan&>(op);
    const std::string& alias =
        scan.alias().empty() ? scan.table_name() : scan.alias();
    return EqualsIgnoreCase(alias, qualifier) ? &scan : nullptr;
  }
  const LogicalScan* found = nullptr;
  for (size_t i = 0; i < op.num_children(); ++i) {
    const LogicalScan* s = FindScanByAlias(*op.child(i), qualifier);
    if (s != nullptr) {
      if (found != nullptr) return nullptr;  // ambiguous alias
      found = s;
    }
  }
  return found;
}

bool IsExpectedBail(const Status& st) {
  return st.code() == StatusCode::kInvalidArgument ||
         st.code() == StatusCode::kNotImplemented;
}

}  // namespace

Result<bool> InvariantGroupingRule::Apply(LogicalOpPtr* node,
                                          OptimizerContext* ctx) {
  if (ctx->catalog == nullptr) return false;
  if ((*node)->type() != LogicalOpType::kGApply) return false;
  auto* gapply = static_cast<LogicalGApply*>(node->get());

  // Outer must be an annotated FK equi-join whose right child is a leaf
  // scan (the left-deep join trees of §4).
  if (gapply->outer()->type() != LogicalOpType::kJoin) return false;
  auto* join = static_cast<LogicalJoin*>(gapply->outer());
  if (join->residual() != nullptr) return false;
  if (join->left_keys().empty()) return false;
  if (join->child(1)->type() != LogicalOpType::kScan) return false;
  const auto* right = static_cast<const LogicalScan*>(join->child(1));

  const Schema& left_schema = join->child(0)->output_schema();
  const int left_width = static_cast<int>(left_schema.num_columns());
  const Schema& outer_schema = join->output_schema();
  const int outer_width = static_cast<int>(outer_schema.num_columns());

  // Definition 2, condition 1a: grouping columns present at n (= left).
  const std::vector<int>& gcols = gapply->grouping_columns();
  std::set<int> gcol_set(gcols.begin(), gcols.end());
  for (int g : gcols) {
    if (g >= left_width) return false;
  }

  // Condition 2: every join column of n is a grouping column.
  for (int lk : join->left_keys()) {
    if (gcol_set.count(lk) == 0) return false;
  }

  // Condition 1b: gp-eval columns present at n.
  Result<PgqInfo> info_r = AnalyzePgq(*gapply->pgq(), gapply->var(),
                                      outer_width);
  if (!info_r.ok()) {
    if (IsExpectedBail(info_r.status())) return false;
    return info_r.status();
  }
  for (int c : info_r->eval_columns) {
    if (c >= left_width) return false;
  }

  // Condition 3: the join is a foreign-key join — left key columns form a
  // declared FK (from a single base table) onto the right leaf's primary
  // key.
  std::string child_alias;
  std::vector<std::string> child_columns;
  for (int lk : join->left_keys()) {
    const Column& col = left_schema.column(static_cast<size_t>(lk));
    if (col.qualifier.empty()) return false;
    if (child_alias.empty()) {
      child_alias = col.qualifier;
    } else if (!EqualsIgnoreCase(child_alias, col.qualifier)) {
      return false;  // composite FK split across tables: not an FK join
    }
    child_columns.push_back(col.name);
  }
  const LogicalScan* child_scan = FindScanByAlias(*join->child(0),
                                                  child_alias);
  if (child_scan == nullptr) return false;
  std::vector<std::string> parent_columns;
  for (int rk : join->right_keys()) {
    parent_columns.push_back(
        right->output_schema().column(static_cast<size_t>(rk)).name);
  }
  if (!ctx->catalog->IsForeignKeyJoin(child_scan->table_name(),
                                      child_columns, right->table_name(),
                                      parent_columns)) {
    return false;
  }

  // Adapt the per-group query to the narrower group schema (§4.3): project
  // lists drop right-side columns; they are re-attached by the join above.
  std::vector<int> old_to_new(static_cast<size_t>(outer_width), -1);
  for (int i = 0; i < left_width; ++i) old_to_new[static_cast<size_t>(i)] = i;
  Result<RemappedPgq> adapted_r =
      RemapPgq(*gapply->pgq(), gapply->var(), left_schema, old_to_new,
               /*allow_dropping_passthrough=*/true);
  if (!adapted_r.ok()) {
    if (IsExpectedBail(adapted_r.status())) return false;
    return adapted_r.status();
  }
  RemappedPgq adapted = std::move(adapted_r).value();

  // Assemble: Project_restore(Join(GApply(L, C, adapted-PGQ), R)).
  const size_t ngc = gcols.size();
  auto new_gapply = std::make_unique<LogicalGApply>(
      join->TakeChild(0), gcols, gapply->var(), std::move(adapted.plan),
      gapply->mode());
  const int gapply_width =
      static_cast<int>(new_gapply->output_schema().num_columns());

  // Join keys: the grouping columns sit at the front of GApply output.
  std::vector<int> new_left_keys;
  for (int lk : join->left_keys()) {
    for (size_t i = 0; i < ngc; ++i) {
      if (gcols[i] == lk) {
        new_left_keys.push_back(static_cast<int>(i));
        break;
      }
    }
  }
  if (new_left_keys.size() != join->left_keys().size()) {
    return Status::Internal("invariant grouping: lost a join key");
  }
  auto new_join = std::make_unique<LogicalJoin>(
      std::move(new_gapply), join->TakeChild(1), std::move(new_left_keys),
      join->right_keys(), nullptr, join->null_safe());

  // Restore the original output schema: grouping columns, then the PGQ
  // outputs — surviving ones from the GApply side, dropped pass-throughs
  // from the re-attached right side.
  const Schema& original = (*node)->output_schema();
  const Schema& joined = new_join->output_schema();
  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  for (size_t j = 0; j < original.num_columns(); ++j) {
    int pos;
    if (j < ngc) {
      pos = static_cast<int>(j);
    } else {
      const size_t p = j - ngc;
      if (adapted.output_mapping[p] >= 0) {
        pos = static_cast<int>(ngc) + adapted.output_mapping[p];
      } else {
        const int src = adapted.dropped_group_source[p];
        if (src < left_width) {
          return Status::Internal(
              "invariant grouping: dropped column does not come from the "
              "right side");
        }
        pos = gapply_width + (src - left_width);
      }
    }
    out_exprs.push_back(Col(joined, pos));
    out_names.push_back(original.column(j).name);
  }
  *node = std::make_unique<LogicalProject>(
      std::move(new_join), std::move(out_exprs), std::move(out_names));
  return true;
}

}  // namespace gapply::core
