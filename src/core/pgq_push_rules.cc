#include <set>

#include "src/core/analyses.h"
#include "src/core/rules.h"

namespace gapply::core {

Result<bool> PushSelectIntoPgqRule::Apply(LogicalOpPtr* node,
                                          OptimizerContext*) {
  if ((*node)->type() != LogicalOpType::kSelect) return false;
  auto* select = static_cast<LogicalSelect*>(node->get());
  if (select->child(0)->type() != LogicalOpType::kGApply) return false;
  auto* gapply = static_cast<LogicalGApply*>(select->child(0));

  // GApply output = grouping columns ++ PGQ output. The predicate must only
  // reference the PGQ part.
  const size_t num_gcols = gapply->grouping_columns().size();
  std::set<int> used;
  select->predicate().CollectColumns(&used);
  for (int c : used) {
    if (c < static_cast<int>(num_gcols)) return false;
  }

  // Shift predicate indexes from GApply-output space to PGQ-output space.
  const size_t out_width = (*node)->output_schema().num_columns();
  std::vector<int> shift(out_width, -1);
  for (size_t i = num_gcols; i < out_width; ++i) {
    shift[i] = static_cast<int>(i - num_gcols);
  }
  ASSIGN_OR_RETURN(ExprPtr pred,
                   RemapExprTree(select->predicate(), shift, {}));

  LogicalOpPtr ga = select->TakeChild(0);
  auto* ga_ptr = static_cast<LogicalGApply*>(ga.get());
  LogicalOpPtr new_pgq = std::make_unique<LogicalSelect>(ga_ptr->TakePgq(),
                                                         std::move(pred));
  *node = std::make_unique<LogicalGApply>(
      ga_ptr->TakeChild(0), ga_ptr->grouping_columns(), ga_ptr->var(),
      std::move(new_pgq), ga_ptr->mode());
  return true;
}

Result<bool> PushProjectIntoPgqRule::Apply(LogicalOpPtr* node,
                                           OptimizerContext*) {
  if ((*node)->type() != LogicalOpType::kProject) return false;
  auto* project = static_cast<LogicalProject*>(node->get());
  if (project->child(0)->type() != LogicalOpType::kGApply) return false;
  auto* gapply = static_cast<LogicalGApply*>(project->child(0));

  const size_t num_gcols = gapply->grouping_columns().size();
  const size_t pgq_width = gapply->pgq()->output_schema().num_columns();

  // The projection must keep every grouping column (the paper's rule is
  // π_{C∪B}) and be a pure column selection.
  std::set<int> kept_gcols;
  std::vector<int> kept_pgq_cols;  // in projection order
  for (const ExprPtr& e : project->exprs()) {
    if (e->kind() != ExprKind::kColumnRef) return false;
    const int idx = static_cast<const ColumnRefExpr&>(*e).index();
    if (idx < static_cast<int>(num_gcols)) {
      kept_gcols.insert(idx);
    } else {
      kept_pgq_cols.push_back(idx - static_cast<int>(num_gcols));
    }
  }
  if (kept_gcols.size() != num_gcols) return false;
  // Only profitable (and guaranteed-terminating) if the PGQ output actually
  // shrinks.
  if (kept_pgq_cols.size() >= pgq_width) return false;

  // New PGQ: project the kept per-group columns (in projection order).
  const Schema& pgq_schema = gapply->pgq()->output_schema();
  std::vector<ExprPtr> pgq_exprs;
  std::vector<std::string> pgq_names;
  for (int c : kept_pgq_cols) {
    pgq_exprs.push_back(Col(pgq_schema, c));
    pgq_names.push_back(pgq_schema.column(static_cast<size_t>(c)).name);
  }
  LogicalOpPtr ga = project->TakeChild(0);
  auto* ga_ptr = static_cast<LogicalGApply*>(ga.get());
  LogicalOpPtr new_pgq = std::make_unique<LogicalProject>(
      ga_ptr->TakePgq(), std::move(pgq_exprs), std::move(pgq_names));
  auto new_ga = std::make_unique<LogicalGApply>(
      ga_ptr->TakeChild(0), ga_ptr->grouping_columns(), ga_ptr->var(),
      std::move(new_pgq), ga_ptr->mode());

  // Rebuild the outer projection to reproduce the original output order
  // against the new GApply output (gcols, then kept pgq cols in order).
  const Schema& new_schema = new_ga->output_schema();
  std::vector<ExprPtr> out_exprs;
  size_t next_pgq = 0;
  for (size_t i = 0; i < project->exprs().size(); ++i) {
    const int idx =
        static_cast<const ColumnRefExpr&>(*project->exprs()[i]).index();
    if (idx < static_cast<int>(num_gcols)) {
      out_exprs.push_back(Col(new_schema, idx));
    } else {
      out_exprs.push_back(
          Col(new_schema, static_cast<int>(num_gcols + next_pgq++)));
    }
  }
  *node = std::make_unique<LogicalProject>(
      std::move(new_ga), std::move(out_exprs), project->names());
  return true;
}

}  // namespace gapply::core
