#ifndef GAPPLY_CORE_ANALYSES_H_
#define GAPPLY_CORE_ANALYSES_H_

#include <set>
#include <string>
#include <vector>

#include "src/plan/logical_plan.h"

namespace gapply::core {

/// \brief Static properties of a per-group query, computed in one bottom-up
/// pass (paper §4.1 and §4.3).
struct PgqInfo {
  /// emptyOnEmpty: does the subtree produce empty output on an empty group?
  /// (§4.1: true for scan; false for aggregate; apply takes the outer
  /// child's; union-all requires all children.) Precondition of Theorem 1's
  /// selection-pushing rule.
  bool empty_on_empty = true;

  /// The covering range (§4.1): a predicate over the *group schema* such
  /// that PGQ(group) == PGQ(σ_range(group)). nullptr means TRUE (the whole
  /// group); a literal FALSE means the subtree reads no group tuples at all.
  /// Conditions that cannot be expressed over group columns (computed
  /// columns, correlated references) are conservatively widened to TRUE.
  ExprPtr covering_range;

  /// gp-eval columns (§4.3): group-schema columns needed to *evaluate* the
  /// per-group query — selection/grouping/aggregation/ordering inputs, but
  /// not pass-through projections (those can be re-attached by later joins).
  std::set<int> eval_columns;

  /// Group-schema columns consumed anywhere, including pass-through
  /// projection outputs. Drives the projection-before-GApply rule.
  std::set<int> used_columns;

  /// Per output column: the group-schema column it is a pure pass-through
  /// of, or -1 for computed/aggregated columns.
  std::vector<int> pure_source;

  /// Per output column: group-schema columns its value depends on.
  std::vector<std::set<int>> provenance;

  /// True when the subtree contains apply / groupby / aggregate — a select
  /// above such a subtree must not contribute its condition to the covering
  /// range (§4.1's covering-range table).
  bool blocking = false;
};

/// Analyzes `pgq` as the per-group query of a GApply binding variable `var`
/// whose group schema has `group_width` columns.
Result<PgqInfo> AnalyzePgq(const LogicalOp& pgq, const std::string& var,
                           int group_width);

/// \brief Result of rewriting a PGQ against a pruned/changed group schema.
struct RemappedPgq {
  LogicalOpPtr plan;
  /// Per original PGQ output column: its new index, or -1 if dropped.
  std::vector<int> output_mapping;
  /// For dropped output columns: the *old* group-schema column whose value
  /// they passed through (-1 where not dropped). Invariant grouping uses
  /// this to re-attach the column via the join above.
  std::vector<int> dropped_group_source;
};

/// Rebuilds `pgq` so its GroupScan($var) leaves read a group with schema
/// `new_group_schema`, where old group column i maps to
/// `group_old_to_new[i]` (-1 = dropped).
///
/// Columns referenced by selections, aggregations, groupings or orderings
/// must survive the mapping (callers guarantee this via `eval_columns`).
/// When `allow_dropping_passthrough` is set, projection outputs that are
/// pure references to dropped columns are removed (the invariant-grouping
/// adaptation, §4.3); otherwise any reference to a dropped column is an
/// error. Dropping is refused under Distinct and inside UnionAll branches
/// that would drop differently (semantics would change).
Result<RemappedPgq> RemapPgq(const LogicalOp& pgq, const std::string& var,
                             const Schema& new_group_schema,
                             const std::vector<int>& group_old_to_new,
                             bool allow_dropping_passthrough);

/// Clones `expr`, rewriting own-level column references through `mapping`
/// and depth-d correlated references through `outer_mappings` (innermost
/// last; nullptr entries mean identity). Fails if a referenced column is
/// dropped (-1).
Result<ExprPtr> RemapExprTree(
    const Expr& expr, const std::vector<int>& mapping,
    const std::vector<const std::vector<int>*>& outer_mappings);

}  // namespace gapply::core

#endif  // GAPPLY_CORE_ANALYSES_H_
