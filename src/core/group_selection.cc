#include "src/core/analyses.h"
#include "src/core/rules.h"

namespace gapply::core {

namespace {

bool IsGroupScanOf(const LogicalOp& op, const std::string& var) {
  return op.type() == LogicalOpType::kGroupScan &&
         static_cast<const LogicalGroupScan&>(op).var() == var;
}

bool HasCorrelated(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kCorrelatedColumnRef:
      return true;
    case ExprKind::kUnary:
      return HasCorrelated(static_cast<const UnaryExpr&>(e).child());
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      return HasCorrelated(bin.left()) || HasCorrelated(bin.right());
    }
    default:
      return false;
  }
}

// Walks down a [Project | Select]* chain to `GroupScan($var)`, collecting
// the conjunction of the Select predicates found *below every Project* (so
// they are expressed over the group schema). Selects above a Project (whose
// predicates would reference projected columns) fail the match. Projections
// are transparent for existence tests. Returns false on mismatch.
bool MatchExistsProbe(const LogicalOp* op, const std::string& var,
                      ExprPtr* combined) {
  bool seen_project = false;
  while (true) {
    if (op->type() == LogicalOpType::kProject) {
      seen_project = true;
      op = op->child(0);
      continue;
    }
    if (op->type() == LogicalOpType::kSelect) {
      const auto* sel = static_cast<const LogicalSelect*>(op);
      if (HasCorrelated(sel->predicate())) return false;
      // A Select above a Project references projected columns; only the
      // below-Project selects are group-schema predicates. The binder
      // always produces Project(Select(GroupScan)), so require that order.
      ExprPtr pred = sel->predicate().Clone();
      *combined = *combined == nullptr
                      ? std::move(pred)
                      : And(std::move(*combined), std::move(pred));
      op = op->child(0);
      // Selects must not appear above a projection of the scan; they would
      // be over projected columns. Once below, further selects are fine.
      continue;
    }
    break;
  }
  (void)seen_project;
  return IsGroupScanOf(*op, var) && *combined != nullptr;
}

// Matches inner = [Project]* ScalarAgg(GroupScan($var)). On success fills
// `agg` and `inner_out_to_agg`: inner output column -> aggregate ordinal
// (identity when no projection; -1 for computed projection outputs).
bool MatchScalarAggProbe(const LogicalOp* op, const std::string& var,
                         const LogicalScalarAgg** agg,
                         std::vector<int>* inner_out_to_agg) {
  std::vector<const LogicalProject*> projects;
  while (op->type() == LogicalOpType::kProject) {
    projects.push_back(static_cast<const LogicalProject*>(op));
    op = op->child(0);
  }
  if (op->type() != LogicalOpType::kScalarAgg) return false;
  const auto* scalar = static_cast<const LogicalScalarAgg*>(op);
  if (!IsGroupScanOf(*scalar->child(0), var)) return false;

  // Compose the projection chain bottom-up into output→aggregate mapping.
  std::vector<int> mapping(scalar->aggs().size());
  for (size_t i = 0; i < mapping.size(); ++i) mapping[i] = static_cast<int>(i);
  for (auto it = projects.rbegin(); it != projects.rend(); ++it) {
    std::vector<int> next;
    for (const ExprPtr& e : (*it)->exprs()) {
      if (e->kind() == ExprKind::kColumnRef) {
        const int idx = static_cast<const ColumnRefExpr&>(*e).index();
        next.push_back(mapping[static_cast<size_t>(idx)]);
      } else {
        next.push_back(-1);
      }
    }
    mapping = std::move(next);
  }
  *agg = scalar;
  *inner_out_to_agg = std::move(mapping);
  return true;
}

Result<bool> RewriteIsCheaper(const LogicalOp& original,
                              const LogicalOp& rewrite,
                              OptimizerContext* ctx) {
  if (!ctx->cost_gate || ctx->cost_model == nullptr) return true;
  ASSIGN_OR_RETURN(PlanEstimate before, ctx->cost_model->Estimate(original));
  ASSIGN_OR_RETURN(PlanEstimate after, ctx->cost_model->Estimate(rewrite));
  return after.cost < before.cost;
}

// Join(T, qualifying_keys) on the grouping columns: reconstructs the
// qualifying groups. The key set goes on the right so the hash join builds
// on the (usually tiny) set of qualifying group ids and streams T past it —
// the cheap direction the paper's two-phase plan implies.
//
// The join must be null-safe (IS NOT DISTINCT FROM): GApply partitions like
// GROUP BY, where NULL grouping keys compare equal and form a real group. A
// plain SQL equi-join silently drops every NULL-keyed group — a bug the
// differential fuzzer caught (gapply_fuzz --seed=6555: a NULL-keyed group
// vanished from the rewritten side under rule:GroupSelectionExists).
LogicalOpPtr ReconstructGroups(LogicalOpPtr keys, LogicalOpPtr t,
                               const std::vector<int>& gcols) {
  std::vector<int> rk;
  for (size_t i = 0; i < gcols.size(); ++i) rk.push_back(static_cast<int>(i));
  return std::make_unique<LogicalJoin>(std::move(t), std::move(keys), gcols,
                                       rk, /*residual=*/nullptr,
                                       /*null_safe=*/true);
}

// Matches the optional outer wrapper the SQL binder puts around the whole
// PGQ: a Project whose every expression is a pure reference to a group
// column (index < group_width). Returns the node below and the referenced
// group columns in output order (empty mapping when there is no wrapper).
const LogicalOp* StripRestoreProject(const LogicalOp* pgq, int group_width,
                                     std::vector<int>* out_cols,
                                     bool* matched) {
  *matched = false;
  if (pgq->type() != LogicalOpType::kProject) return pgq;
  const auto* proj = static_cast<const LogicalProject*>(pgq);
  std::vector<int> cols;
  for (const ExprPtr& e : proj->exprs()) {
    if (e->kind() != ExprKind::kColumnRef) return pgq;
    const int idx = static_cast<const ColumnRefExpr&>(*e).index();
    if (idx >= group_width) return pgq;
    cols.push_back(idx);
  }
  *out_cols = std::move(cols);
  *matched = true;
  return pgq->child(0);
}

}  // namespace

Result<bool> GroupSelectionExistsRule::Apply(LogicalOpPtr* node,
                                             OptimizerContext* ctx) {
  if ((*node)->type() != LogicalOpType::kGApply) return false;
  // The rewrite introduces a Join; the paper's PGQ operator set has none,
  // so firing on a GApply nested inside another GApply's per-group query
  // produces an unlowerable plan (found by the differential fuzzer,
  // gapply_fuzz --seed=7631).
  if (ctx->in_pgq) return false;
  auto* gapply = static_cast<LogicalGApply*>(node->get());
  const int group_width = static_cast<int>(
      gapply->outer()->output_schema().num_columns());

  // Shape: [restore-Project] Apply(GroupScan($g), Exists(probe)).
  std::vector<int> restore;
  bool has_restore = false;
  const LogicalOp* body = StripRestoreProject(gapply->pgq(), group_width,
                                              &restore, &has_restore);
  if (body->type() != LogicalOpType::kApply) return false;
  const auto* apply = static_cast<const LogicalApply*>(body);
  if (!IsGroupScanOf(*apply->outer(), gapply->var())) return false;
  if (apply->inner()->type() != LogicalOpType::kExists) return false;
  const auto* exists = static_cast<const LogicalExists*>(apply->inner());
  if (exists->negated()) return false;

  ExprPtr selection;
  if (!MatchExistsProbe(exists->child(0), gapply->var(), &selection)) {
    return false;
  }

  // Rewrite: Join_C(Distinct(π_C(σ_S(T))), T) [+ restore projection].
  const LogicalOp& t = *gapply->outer();
  const Schema& t_schema = t.output_schema();
  const std::vector<int>& gcols = gapply->grouping_columns();
  std::vector<ExprPtr> key_exprs;
  std::vector<std::string> key_names;
  for (int g : gcols) {
    key_exprs.push_back(Col(t_schema, g));
    key_names.push_back(t_schema.column(static_cast<size_t>(g)).name);
  }
  LogicalOpPtr qualifying = std::make_unique<LogicalDistinct>(
      std::make_unique<LogicalProject>(
          std::make_unique<LogicalSelect>(t.Clone(), std::move(selection)),
          std::move(key_exprs), std::move(key_names)));
  LogicalOpPtr rewrite =
      ReconstructGroups(std::move(qualifying), t.Clone(), gcols);

  // Restore the original output schema: gcols from the join's left side,
  // then the PGQ outputs from the re-joined T columns.
  // The join output is T's columns followed by the key columns; everything
  // the original GApply output needs lives in the T prefix.
  const Schema& original = (*node)->output_schema();
  const size_t ngc = gcols.size();
  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  const Schema& joined = rewrite->output_schema();
  for (size_t j = 0; j < original.num_columns(); ++j) {
    int pos;
    if (j < ngc) {
      pos = gcols[j];
    } else if (has_restore) {
      pos = restore[j - ngc];
    } else {
      pos = static_cast<int>(j - ngc);  // pgq output == group columns
    }
    out_exprs.push_back(Col(joined, pos));
    out_names.push_back(original.column(j).name);
  }
  rewrite = std::make_unique<LogicalProject>(
      std::move(rewrite), std::move(out_exprs), std::move(out_names));

  ASSIGN_OR_RETURN(bool cheaper, RewriteIsCheaper(**node, *rewrite, ctx));
  if (!cheaper) return false;
  *node = std::move(rewrite);
  return true;
}

Result<bool> GroupSelectionAggregateRule::Apply(LogicalOpPtr* node,
                                                OptimizerContext* ctx) {
  if ((*node)->type() != LogicalOpType::kGApply) return false;
  // Same PGQ guard as GroupSelectionExistsRule: no Join inside a PGQ.
  if (ctx->in_pgq) return false;
  auto* gapply = static_cast<LogicalGApply*>(node->get());
  const int group_width = static_cast<int>(
      gapply->outer()->output_schema().num_columns());
  const std::vector<int>& gcols = gapply->grouping_columns();
  const size_t ngc = gcols.size();

  // Two accepted shapes:
  //  (1) algebraic:  Apply(GroupScan, Exists(σ_P(ScalarAgg-probe)))
  //  (2) SQL binder: [restore-Project] σ_P(Apply(GroupScan,
  //                  ScalarAgg-probe)) where P references only appended
  //                  aggregate columns.
  const LogicalScalarAgg* agg = nullptr;
  std::vector<int> inner_out_to_agg;
  ExprPtr condition;            // over the aggregate outputs (remapped)
  std::vector<int> restore;     // restore projection (shape 2)
  bool has_restore = false;

  const LogicalOp* body = StripRestoreProject(gapply->pgq(), group_width,
                                              &restore, &has_restore);
  if (body->type() == LogicalOpType::kApply) {
    // Shape 1.
    const auto* apply = static_cast<const LogicalApply*>(body);
    if (!IsGroupScanOf(*apply->outer(), gapply->var())) return false;
    if (apply->inner()->type() != LogicalOpType::kExists) return false;
    const auto* exists = static_cast<const LogicalExists*>(apply->inner());
    if (exists->negated()) return false;
    // Exists child: Select chain over the ScalarAgg probe.
    const LogicalOp* probe = exists->child(0);
    ExprPtr combined;
    while (probe->type() == LogicalOpType::kSelect) {
      const auto* sel = static_cast<const LogicalSelect*>(probe);
      if (HasCorrelated(sel->predicate())) return false;
      ExprPtr pred = sel->predicate().Clone();
      combined = combined == nullptr
                     ? std::move(pred)
                     : And(std::move(combined), std::move(pred));
      probe = probe->child(0);
    }
    if (combined == nullptr) return false;
    if (!MatchScalarAggProbe(probe, gapply->var(), &agg,
                             &inner_out_to_agg)) {
      return false;
    }
    // Condition references the probe's outputs directly.
    std::vector<int> to_agg = inner_out_to_agg;
    Result<ExprPtr> remapped = RemapExprTree(*combined, to_agg, {});
    if (!remapped.ok()) return false;
    condition = std::move(*remapped);
  } else if (body->type() == LogicalOpType::kSelect) {
    // Shape 2.
    ExprPtr combined;
    const LogicalOp* below = body;
    while (below->type() == LogicalOpType::kSelect) {
      const auto* sel = static_cast<const LogicalSelect*>(below);
      if (HasCorrelated(sel->predicate())) return false;
      ExprPtr pred = sel->predicate().Clone();
      combined = combined == nullptr
                     ? std::move(pred)
                     : And(std::move(combined), std::move(pred));
      below = below->child(0);
    }
    if (below->type() != LogicalOpType::kApply) return false;
    const auto* apply = static_cast<const LogicalApply*>(below);
    if (!IsGroupScanOf(*apply->outer(), gapply->var())) return false;
    if (!MatchScalarAggProbe(apply->inner(), gapply->var(), &agg,
                             &inner_out_to_agg)) {
      return false;
    }
    if (!has_restore) return false;  // aggregate columns would leak out
    // The condition is over Apply output (group cols ++ probe output);
    // remap probe columns to aggregate ordinals, reject group-column refs
    // (those would be per-row, not per-group, conditions).
    std::vector<int> to_agg(static_cast<size_t>(group_width), -1);
    for (int m : inner_out_to_agg) to_agg.push_back(m);
    Result<ExprPtr> remapped = RemapExprTree(*combined, to_agg, {});
    if (!remapped.ok()) return false;
    condition = std::move(*remapped);
  } else {
    return false;
  }

  // Rewrite: π_C(σ_P'(GroupBy_{C,aggs}(T))) ⋈_C T [+ restore projection],
  // where P' shifts aggregate ordinals past the key columns.
  std::vector<AggregateDesc> aggs;
  for (const AggregateDesc& a : agg->aggs()) aggs.push_back(a.Clone());
  const LogicalOp& t = *gapply->outer();
  LogicalOpPtr grouped = std::make_unique<LogicalGroupBy>(t.Clone(), gcols,
                                                          std::move(aggs));
  std::vector<int> shift(agg->aggs().size());
  for (size_t i = 0; i < shift.size(); ++i) {
    shift[i] = static_cast<int>(ngc + i);
  }
  ASSIGN_OR_RETURN(ExprPtr shifted, RemapExprTree(*condition, shift, {}));
  LogicalOpPtr filtered = std::make_unique<LogicalSelect>(std::move(grouped),
                                                          std::move(shifted));
  const Schema& f_schema = filtered->output_schema();
  std::vector<ExprPtr> key_exprs;
  std::vector<std::string> key_names;
  for (size_t i = 0; i < ngc; ++i) {
    key_exprs.push_back(Col(f_schema, static_cast<int>(i)));
    key_names.push_back(f_schema.column(i).name);
  }
  LogicalOpPtr keys = std::make_unique<LogicalProject>(
      std::move(filtered), std::move(key_exprs), std::move(key_names));
  LogicalOpPtr rewrite = ReconstructGroups(std::move(keys), t.Clone(), gcols);

  // Join output = T's columns ++ key columns (see ReconstructGroups).
  const Schema& original = (*node)->output_schema();
  const Schema& joined = rewrite->output_schema();
  std::vector<ExprPtr> out_exprs;
  std::vector<std::string> out_names;
  for (size_t j = 0; j < original.num_columns(); ++j) {
    int pos;
    if (j < ngc) {
      pos = gcols[j];
    } else if (has_restore) {
      pos = restore[j - ngc];
    } else {
      pos = static_cast<int>(j - ngc);
    }
    out_exprs.push_back(Col(joined, pos));
    out_names.push_back(original.column(j).name);
  }
  rewrite = std::make_unique<LogicalProject>(
      std::move(rewrite), std::move(out_exprs), std::move(out_names));

  ASSIGN_OR_RETURN(bool cheaper, RewriteIsCheaper(**node, *rewrite, ctx));
  if (!cheaper) return false;
  *node = std::move(rewrite);
  return true;
}

}  // namespace gapply::core
