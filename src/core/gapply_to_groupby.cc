#include "src/core/analyses.h"
#include "src/core/rules.h"

namespace gapply::core {

namespace {

bool IsGroupScanOf(const LogicalOp& op, const std::string& var) {
  return op.type() == LogicalOpType::kGroupScan &&
         static_cast<const LogicalGroupScan&>(op).var() == var;
}

std::vector<AggregateDesc> CloneAggs(const std::vector<AggregateDesc>& aggs) {
  std::vector<AggregateDesc> out;
  out.reserve(aggs.size());
  for (const AggregateDesc& a : aggs) out.push_back(a.Clone());
  return out;
}

}  // namespace

Result<bool> GApplyToGroupByRule::Apply(LogicalOpPtr* node,
                                        OptimizerContext*) {
  if ((*node)->type() != LogicalOpType::kGApply) return false;
  auto* gapply = static_cast<LogicalGApply*>(node->get());

  // Match PGQ = [Project] (ScalarAgg | GroupBy) (GroupScan($var)).
  const LogicalOp* pgq = gapply->pgq();
  const LogicalProject* top_project = nullptr;
  const LogicalOp* agg_node = pgq;
  if (pgq->type() == LogicalOpType::kProject) {
    top_project = static_cast<const LogicalProject*>(pgq);
    agg_node = pgq->child(0);
  }
  const bool is_scalar = agg_node->type() == LogicalOpType::kScalarAgg;
  const bool is_groupby = agg_node->type() == LogicalOpType::kGroupBy;
  if (!is_scalar && !is_groupby) return false;
  if (!IsGroupScanOf(*agg_node->child(0), gapply->var())) return false;

  const size_t ngc = gapply->grouping_columns().size();

  // Build the merged GroupBy over the outer query. The PGQ's aggregate
  // arguments and per-group keys are expressed over the group schema, which
  // equals the outer schema, so they transfer unchanged.
  //   Variant (a), aggregate-only PGQ: GroupBy(outer, C, aggs)   (§4.1)
  //   Variant (b), groupby PGQ:        GroupBy(outer, C ∪ B, aggs)
  std::vector<int> keys = gapply->grouping_columns();
  std::vector<AggregateDesc> aggs;
  if (is_scalar) {
    aggs = CloneAggs(static_cast<const LogicalScalarAgg*>(agg_node)->aggs());
  } else {
    const auto* gb = static_cast<const LogicalGroupBy*>(agg_node);
    for (int k : gb->keys()) keys.push_back(k);
    aggs = CloneAggs(gb->aggs());
  }
  const size_t agg_out_width =
      agg_node->output_schema().num_columns();  // B ++ aggs (or just aggs)
  auto grouped = std::make_unique<LogicalGroupBy>(gapply->TakeChild(0),
                                                  std::move(keys),
                                                  std::move(aggs));

  if (top_project == nullptr) {
    *node = std::move(grouped);
    return true;
  }

  // Restore the original output: grouping columns from the merged GroupBy's
  // key prefix, then the PGQ's projection with its references shifted past
  // the grouping columns.
  const Schema& gschema = grouped->output_schema();
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (size_t i = 0; i < ngc; ++i) {
    exprs.push_back(Col(gschema, static_cast<int>(i)));
    names.push_back(gschema.column(i).name);
  }
  std::vector<int> shift(agg_out_width);
  for (size_t i = 0; i < agg_out_width; ++i) {
    shift[i] = static_cast<int>(ngc + i);
  }
  for (size_t i = 0; i < top_project->exprs().size(); ++i) {
    ASSIGN_OR_RETURN(ExprPtr e,
                     RemapExprTree(*top_project->exprs()[i], shift, {}));
    exprs.push_back(std::move(e));
    names.push_back(top_project->names()[i]);
  }
  *node = std::make_unique<LogicalProject>(std::move(grouped),
                                           std::move(exprs),
                                           std::move(names));
  return true;
}

}  // namespace gapply::core
