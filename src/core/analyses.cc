#include "src/core/analyses.h"

#include <map>
#include <utility>

namespace gapply::core {

namespace {

// ---------------------------------------------------------------------------
// Covering-range helpers. nullptr = TRUE (whole group); literal false =
// "reads no group tuples".
// ---------------------------------------------------------------------------

bool IsFalseLiteral(const ExprPtr& e) {
  if (e == nullptr || e->kind() != ExprKind::kLiteral) return false;
  const Value& v = static_cast<const LiteralExpr&>(*e).value();
  return v.type() == TypeId::kBool && !v.bool_val();
}

ExprPtr FalseRange() { return Lit(Value::Bool(false)); }

// OR of two ranges with TRUE/FALSE simplification.
ExprPtr OrRanges(ExprPtr a, ExprPtr b) {
  if (a == nullptr || b == nullptr) return nullptr;  // TRUE dominates
  if (IsFalseLiteral(a)) return b;
  if (IsFalseLiteral(b)) return a;
  return Or(std::move(a), std::move(b));
}

// AND of two ranges; nullptr = TRUE is the identity.
ExprPtr AndRanges(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  if (IsFalseLiteral(a)) return a;
  if (IsFalseLiteral(b)) return b;
  return And(std::move(a), std::move(b));
}

// Returns true iff the expression contains a correlated reference.
bool HasCorrelatedRef(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kCorrelatedColumnRef:
      return true;
    case ExprKind::kUnary:
      return HasCorrelatedRef(static_cast<const UnaryExpr&>(e).child());
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      return HasCorrelatedRef(bin.left()) || HasCorrelatedRef(bin.right());
    }
    default:
      return false;
  }
}

// Rewrites `e` (over a node's output columns) into an expression over the
// group schema, using `pure_source` (output col -> group col or -1).
// Returns nullptr if any referenced column is not a pure pass-through or a
// correlated reference is present.
ExprPtr TryRemapToGroup(const Expr& e, const std::vector<int>& pure_source) {
  switch (e.kind()) {
    case ExprKind::kLiteral:
      return e.Clone();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(e);
      const int idx = ref.index();
      if (idx < 0 || static_cast<size_t>(idx) >= pure_source.size()) {
        return nullptr;
      }
      const int src = pure_source[static_cast<size_t>(idx)];
      if (src < 0) return nullptr;
      return std::make_unique<ColumnRefExpr>(src, ref.type(), ref.name());
    }
    case ExprKind::kCorrelatedColumnRef:
      return nullptr;
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(e);
      ExprPtr child = TryRemapToGroup(un.child(), pure_source);
      if (child == nullptr) return nullptr;
      return Unary(un.op(), std::move(child));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      ExprPtr l = TryRemapToGroup(bin.left(), pure_source);
      if (l == nullptr) return nullptr;
      ExprPtr r = TryRemapToGroup(bin.right(), pure_source);
      if (r == nullptr) return nullptr;
      return Binary(bin.op(), std::move(l), std::move(r));
    }
  }
  return nullptr;
}

// Union of the provenance of every column `e` references.
void ExprProvenance(const Expr& e,
                    const std::vector<std::set<int>>& col_provenance,
                    const std::vector<const PgqInfo*>& outer_stack,
                    std::set<int>* out) {
  switch (e.kind()) {
    case ExprKind::kColumnRef: {
      const int idx = static_cast<const ColumnRefExpr&>(e).index();
      if (idx >= 0 && static_cast<size_t>(idx) < col_provenance.size()) {
        out->insert(col_provenance[static_cast<size_t>(idx)].begin(),
                    col_provenance[static_cast<size_t>(idx)].end());
      }
      return;
    }
    case ExprKind::kCorrelatedColumnRef: {
      const auto& ref = static_cast<const CorrelatedColumnRefExpr&>(e);
      const int d = ref.depth();
      if (d >= 0 && static_cast<size_t>(d) < outer_stack.size()) {
        const PgqInfo* outer =
            outer_stack[outer_stack.size() - 1 - static_cast<size_t>(d)];
        const int idx = ref.index();
        if (idx >= 0 &&
            static_cast<size_t>(idx) < outer->provenance.size()) {
          out->insert(outer->provenance[static_cast<size_t>(idx)].begin(),
                      outer->provenance[static_cast<size_t>(idx)].end());
        }
      }
      return;
    }
    case ExprKind::kUnary:
      ExprProvenance(static_cast<const UnaryExpr&>(e).child(), col_provenance,
                     outer_stack, out);
      return;
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      ExprProvenance(bin.left(), col_provenance, outer_stack, out);
      ExprProvenance(bin.right(), col_provenance, outer_stack, out);
      return;
    }
    default:
      return;
  }
}

Result<PgqInfo> Analyze(const LogicalOp& node, const std::string& var,
                        int group_width,
                        std::vector<const PgqInfo*>* outer_stack);

// Shared plumbing: analyze child 0 and start from its info.
Result<PgqInfo> AnalyzeChild(const LogicalOp& node, const std::string& var,
                             int group_width,
                             std::vector<const PgqInfo*>* outer_stack) {
  return Analyze(*node.child(0), var, group_width, outer_stack);
}

Result<PgqInfo> Analyze(const LogicalOp& node, const std::string& var,
                        int group_width,
                        std::vector<const PgqInfo*>* outer_stack) {
  switch (node.type()) {
    case LogicalOpType::kGroupScan: {
      const auto& scan = static_cast<const LogicalGroupScan&>(node);
      PgqInfo info;
      const size_t n = scan.output_schema().num_columns();
      if (scan.var() == var) {
        if (static_cast<int>(n) != group_width) {
          return Status::Internal(
              "GroupScan width does not match group schema");
        }
        info.covering_range = nullptr;  // TRUE: needs the whole group
        info.pure_source.resize(n);
        info.provenance.resize(n);
        for (size_t i = 0; i < n; ++i) {
          info.pure_source[i] = static_cast<int>(i);
          info.provenance[i] = {static_cast<int>(i)};
        }
        info.empty_on_empty = true;
        return info;
      }
      // A different group variable (nested GApply) or unrelated relation:
      // reads none of OUR group's tuples, and produces output regardless of
      // our group being empty.
      info.covering_range = FalseRange();
      info.empty_on_empty = false;
      info.pure_source.assign(n, -1);
      info.provenance.assign(n, {});
      return info;
    }
    case LogicalOpType::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      PgqInfo info;
      info.covering_range = FalseRange();
      info.empty_on_empty = false;
      const size_t n = scan.output_schema().num_columns();
      info.pure_source.assign(n, -1);
      info.provenance.assign(n, {});
      return info;
    }
    case LogicalOpType::kSelect: {
      const auto& sel = static_cast<const LogicalSelect&>(node);
      ASSIGN_OR_RETURN(PgqInfo info,
                       AnalyzeChild(node, var, group_width, outer_stack));
      std::set<int> cond_prov;
      ExprProvenance(sel.predicate(), info.provenance, *outer_stack,
                     &cond_prov);
      info.eval_columns.insert(cond_prov.begin(), cond_prov.end());
      info.used_columns.insert(cond_prov.begin(), cond_prov.end());
      // Covering range: AND the condition in only when the subtree has no
      // apply/groupby/aggregate and the condition is expressible over group
      // columns (§4.1).
      if (!info.blocking && !HasCorrelatedRef(sel.predicate())) {
        ExprPtr remapped =
            TryRemapToGroup(sel.predicate(), info.pure_source);
        if (remapped != nullptr) {
          info.covering_range = AndRanges(std::move(info.covering_range),
                                          std::move(remapped));
        }
      }
      return info;
    }
    case LogicalOpType::kProject: {
      const auto& proj = static_cast<const LogicalProject&>(node);
      ASSIGN_OR_RETURN(PgqInfo child,
                       AnalyzeChild(node, var, group_width, outer_stack));
      PgqInfo info = std::move(child);
      std::vector<int> pure;
      std::vector<std::set<int>> prov;
      for (const ExprPtr& e : proj.exprs()) {
        std::set<int> p;
        ExprProvenance(*e, info.provenance, *outer_stack, &p);
        info.used_columns.insert(p.begin(), p.end());
        prov.push_back(std::move(p));
        if (e->kind() == ExprKind::kColumnRef) {
          const int idx = static_cast<const ColumnRefExpr&>(*e).index();
          pure.push_back(info.pure_source[static_cast<size_t>(idx)]);
        } else {
          pure.push_back(-1);
        }
      }
      info.pure_source = std::move(pure);
      info.provenance = std::move(prov);
      return info;
    }
    case LogicalOpType::kDistinct: {
      ASSIGN_OR_RETURN(PgqInfo info,
                       AnalyzeChild(node, var, group_width, outer_stack));
      // Duplicate elimination inspects every output column: all of their
      // source columns are needed for evaluation, not just re-attachable.
      for (const std::set<int>& p : info.provenance) {
        info.eval_columns.insert(p.begin(), p.end());
        info.used_columns.insert(p.begin(), p.end());
      }
      return info;
    }
    case LogicalOpType::kOrderBy: {
      const auto& order = static_cast<const LogicalOrderBy&>(node);
      ASSIGN_OR_RETURN(PgqInfo info,
                       AnalyzeChild(node, var, group_width, outer_stack));
      for (const SortKey& k : order.keys()) {
        const std::set<int>& p =
            info.provenance[static_cast<size_t>(k.column)];
        info.eval_columns.insert(p.begin(), p.end());
        info.used_columns.insert(p.begin(), p.end());
      }
      return info;
    }
    case LogicalOpType::kGroupBy: {
      const auto& gb = static_cast<const LogicalGroupBy&>(node);
      ASSIGN_OR_RETURN(PgqInfo child,
                       AnalyzeChild(node, var, group_width, outer_stack));
      PgqInfo info;
      info.empty_on_empty = child.empty_on_empty;
      info.covering_range = std::move(child.covering_range);
      info.eval_columns = std::move(child.eval_columns);
      info.used_columns = std::move(child.used_columns);
      info.blocking = true;
      for (int k : gb.keys()) {
        const std::set<int>& p = child.provenance[static_cast<size_t>(k)];
        info.eval_columns.insert(p.begin(), p.end());
        info.used_columns.insert(p.begin(), p.end());
        info.pure_source.push_back(
            child.pure_source[static_cast<size_t>(k)]);
        info.provenance.push_back(p);
      }
      for (const AggregateDesc& a : gb.aggs()) {
        std::set<int> p;
        if (a.arg != nullptr) {
          ExprProvenance(*a.arg, child.provenance, *outer_stack, &p);
        }
        info.eval_columns.insert(p.begin(), p.end());
        info.used_columns.insert(p.begin(), p.end());
        info.pure_source.push_back(-1);
        info.provenance.push_back(std::move(p));
      }
      return info;
    }
    case LogicalOpType::kScalarAgg: {
      const auto& agg = static_cast<const LogicalScalarAgg&>(node);
      ASSIGN_OR_RETURN(PgqInfo child,
                       AnalyzeChild(node, var, group_width, outer_stack));
      PgqInfo info;
      info.empty_on_empty = false;  // aggregates emit a row on empty input
      info.covering_range = std::move(child.covering_range);
      info.eval_columns = std::move(child.eval_columns);
      info.used_columns = std::move(child.used_columns);
      info.blocking = true;
      for (const AggregateDesc& a : agg.aggs()) {
        std::set<int> p;
        if (a.arg != nullptr) {
          ExprProvenance(*a.arg, child.provenance, *outer_stack, &p);
        }
        info.eval_columns.insert(p.begin(), p.end());
        info.used_columns.insert(p.begin(), p.end());
        info.pure_source.push_back(-1);
        info.provenance.push_back(std::move(p));
      }
      return info;
    }
    case LogicalOpType::kExists: {
      ASSIGN_OR_RETURN(PgqInfo child,
                       AnalyzeChild(node, var, group_width, outer_stack));
      PgqInfo info;
      info.empty_on_empty = child.empty_on_empty;
      info.covering_range = std::move(child.covering_range);
      info.eval_columns = std::move(child.eval_columns);
      info.used_columns = std::move(child.used_columns);
      info.blocking = child.blocking;
      return info;  // null schema: no output columns
    }
    case LogicalOpType::kApply: {
      const auto& apply = static_cast<const LogicalApply&>(node);
      ASSIGN_OR_RETURN(PgqInfo outer,
                       Analyze(*apply.outer(), var, group_width, outer_stack));
      outer_stack->push_back(&outer);
      Result<PgqInfo> inner_r =
          Analyze(*apply.inner(), var, group_width, outer_stack);
      outer_stack->pop_back();
      RETURN_NOT_OK(inner_r.status());
      PgqInfo inner = std::move(inner_r).value();

      PgqInfo info;
      info.empty_on_empty = outer.empty_on_empty;  // paper: outer child's
      info.covering_range = OrRanges(std::move(outer.covering_range),
                                     std::move(inner.covering_range));
      info.eval_columns = outer.eval_columns;
      info.eval_columns.insert(inner.eval_columns.begin(),
                               inner.eval_columns.end());
      info.used_columns = outer.used_columns;
      info.used_columns.insert(inner.used_columns.begin(),
                               inner.used_columns.end());
      info.blocking = true;
      info.pure_source = outer.pure_source;
      info.pure_source.insert(info.pure_source.end(),
                              inner.pure_source.begin(),
                              inner.pure_source.end());
      info.provenance = outer.provenance;
      info.provenance.insert(info.provenance.end(), inner.provenance.begin(),
                             inner.provenance.end());
      return info;
    }
    case LogicalOpType::kUnionAll: {
      PgqInfo info;
      info.empty_on_empty = true;
      info.covering_range = FalseRange();
      bool first = true;
      for (size_t i = 0; i < node.num_children(); ++i) {
        ASSIGN_OR_RETURN(
            PgqInfo child,
            Analyze(*node.child(i), var, group_width, outer_stack));
        info.empty_on_empty = info.empty_on_empty && child.empty_on_empty;
        info.covering_range = OrRanges(std::move(info.covering_range),
                                       std::move(child.covering_range));
        info.eval_columns.insert(child.eval_columns.begin(),
                                 child.eval_columns.end());
        info.used_columns.insert(child.used_columns.begin(),
                                 child.used_columns.end());
        info.blocking = info.blocking || child.blocking;
        if (first) {
          info.pure_source = child.pure_source;
          info.provenance = child.provenance;
          first = false;
        } else {
          for (size_t c = 0; c < info.pure_source.size() &&
                             c < child.pure_source.size();
               ++c) {
            if (info.pure_source[c] != child.pure_source[c]) {
              info.pure_source[c] = -1;
            }
            info.provenance[c].insert(child.provenance[c].begin(),
                                      child.provenance[c].end());
          }
        }
      }
      return info;
    }
    case LogicalOpType::kGApply: {
      // Nested groupwise processing inside the per-group query.
      const auto& ga = static_cast<const LogicalGApply&>(node);
      ASSIGN_OR_RETURN(PgqInfo outer,
                       Analyze(*ga.outer(), var, group_width, outer_stack));
      // Analyze the nested PGQ against the *nested* group variable to learn
      // which nested-group columns it needs, then translate through the
      // nested outer's provenance.
      ASSIGN_OR_RETURN(
          PgqInfo nested,
          AnalyzePgq(*ga.pgq(), ga.var(),
                     static_cast<int>(ga.outer()->output_schema()
                                          .num_columns())));
      PgqInfo info;
      info.empty_on_empty = outer.empty_on_empty;
      info.covering_range = std::move(outer.covering_range);
      info.eval_columns = outer.eval_columns;
      info.used_columns = outer.used_columns;
      info.blocking = true;
      auto translate = [&outer](const std::set<int>& nested_cols,
                                std::set<int>* out) {
        for (int c : nested_cols) {
          const std::set<int>& p = outer.provenance[static_cast<size_t>(c)];
          out->insert(p.begin(), p.end());
        }
      };
      translate(nested.eval_columns, &info.eval_columns);
      translate(nested.used_columns, &info.used_columns);
      // Output: grouping columns then nested PGQ output.
      for (int g : ga.grouping_columns()) {
        info.pure_source.push_back(outer.pure_source[static_cast<size_t>(g)]);
        info.provenance.push_back(outer.provenance[static_cast<size_t>(g)]);
      }
      for (const std::set<int>& p : nested.provenance) {
        std::set<int> mapped;
        translate(p, &mapped);
        info.pure_source.push_back(-1);
        info.provenance.push_back(std::move(mapped));
      }
      return info;
    }
    case LogicalOpType::kJoin:
      return Status::NotImplemented(
          "join inside a per-group query is outside the paper's PGQ "
          "operator set");
  }
  return Status::Internal("unknown operator in PGQ analysis");
}

}  // namespace

Result<PgqInfo> AnalyzePgq(const LogicalOp& pgq, const std::string& var,
                           int group_width) {
  std::vector<const PgqInfo*> outer_stack;
  ASSIGN_OR_RETURN(PgqInfo info, Analyze(pgq, var, group_width, &outer_stack));
  // Pass-through output columns are "used" (they flow out of the PGQ).
  for (const std::set<int>& p : info.provenance) {
    info.used_columns.insert(p.begin(), p.end());
  }
  return info;
}

// ---------------------------------------------------------------------------
// RemapExprTree
// ---------------------------------------------------------------------------

Result<ExprPtr> RemapExprTree(
    const Expr& expr, const std::vector<int>& mapping,
    const std::vector<const std::vector<int>*>& outer_mappings) {
  switch (expr.kind()) {
    case ExprKind::kLiteral:
      return expr.Clone();
    case ExprKind::kColumnRef: {
      const auto& ref = static_cast<const ColumnRefExpr&>(expr);
      const int idx = ref.index();
      if (idx < 0 || static_cast<size_t>(idx) >= mapping.size() ||
          mapping[static_cast<size_t>(idx)] < 0) {
        return Status::InvalidArgument(
            "column " + ref.name() + " was pruned but is still referenced");
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>(
          mapping[static_cast<size_t>(idx)], ref.type(), ref.name()));
    }
    case ExprKind::kCorrelatedColumnRef: {
      const auto& ref = static_cast<const CorrelatedColumnRefExpr&>(expr);
      const int d = ref.depth();
      if (d < 0 || static_cast<size_t>(d) >= outer_mappings.size()) {
        return expr.Clone();  // refers outside the remapped region
      }
      const std::vector<int>* m =
          outer_mappings[outer_mappings.size() - 1 - static_cast<size_t>(d)];
      if (m == nullptr) return expr.Clone();
      const int idx = ref.index();
      if (idx < 0 || static_cast<size_t>(idx) >= m->size() ||
          (*m)[static_cast<size_t>(idx)] < 0) {
        return Status::InvalidArgument(
            "correlated column was pruned but is still referenced");
      }
      return ExprPtr(std::make_unique<CorrelatedColumnRefExpr>(
          d, (*m)[static_cast<size_t>(idx)], ref.type(), ref.name()));
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(expr);
      ASSIGN_OR_RETURN(ExprPtr child,
                       RemapExprTree(un.child(), mapping, outer_mappings));
      return ExprPtr(Unary(un.op(), std::move(child)));
    }
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(expr);
      ASSIGN_OR_RETURN(ExprPtr l,
                       RemapExprTree(bin.left(), mapping, outer_mappings));
      ASSIGN_OR_RETURN(ExprPtr r,
                       RemapExprTree(bin.right(), mapping, outer_mappings));
      return ExprPtr(Binary(bin.op(), std::move(l), std::move(r)));
    }
  }
  return Status::Internal("unknown expression kind in remap");
}

// ---------------------------------------------------------------------------
// RemapPgq
// ---------------------------------------------------------------------------

namespace {

struct NodeRemap {
  LogicalOpPtr plan;
  std::vector<int> mapping;         // old out col -> new out col, -1 dropped
  std::vector<int> pure_old;        // old out col -> OLD group col or -1
  std::vector<int> dropped_source;  // old out col -> OLD group col iff dropped
};

struct RemapEnv {
  // var -> (new group schema, old->new group mapping)
  std::map<std::string, std::pair<const Schema*, const std::vector<int>*>>
      vars;
  // Apply outer-output mappings for correlated references (innermost last).
  std::vector<const std::vector<int>*> outer_mappings;
};

std::vector<int> IdentityMapping(size_t n) {
  std::vector<int> m(n);
  for (size_t i = 0; i < n; ++i) m[i] = static_cast<int>(i);
  return m;
}

bool NoDrops(const std::vector<int>& mapping) {
  for (int m : mapping) {
    if (m < 0) return false;
  }
  return true;
}

Result<NodeRemap> Remap(const LogicalOp& node, RemapEnv* env,
                        bool allow_drop);

Result<std::vector<AggregateDesc>> RemapAggs(
    const std::vector<AggregateDesc>& aggs, const NodeRemap& child,
    const RemapEnv& env) {
  std::vector<AggregateDesc> out;
  out.reserve(aggs.size());
  for (const AggregateDesc& a : aggs) {
    AggregateDesc copy;
    copy.kind = a.kind;
    copy.distinct = a.distinct;
    copy.output_name = a.output_name;
    if (a.arg != nullptr) {
      ASSIGN_OR_RETURN(copy.arg, RemapExprTree(*a.arg, child.mapping,
                                               env.outer_mappings));
    }
    out.push_back(std::move(copy));
  }
  return out;
}

Result<NodeRemap> Remap(const LogicalOp& node, RemapEnv* env,
                        bool allow_drop) {
  switch (node.type()) {
    case LogicalOpType::kGroupScan: {
      const auto& scan = static_cast<const LogicalGroupScan&>(node);
      NodeRemap out;
      auto it = env->vars.find(scan.var());
      if (it == env->vars.end()) {
        out.plan = scan.Clone();
        out.mapping = IdentityMapping(scan.output_schema().num_columns());
        out.pure_old.assign(scan.output_schema().num_columns(), -1);
        out.dropped_source.assign(scan.output_schema().num_columns(), -1);
        return out;
      }
      const Schema* new_schema = it->second.first;
      const std::vector<int>* g_map = it->second.second;
      out.plan = std::make_unique<LogicalGroupScan>(scan.var(), *new_schema);
      out.mapping = *g_map;
      out.pure_old = IdentityMapping(g_map->size());
      out.dropped_source.assign(g_map->size(), -1);
      // A pruned group column simply no longer exists in the binding; it is
      // an error only if something downstream still references it (checked
      // where references are remapped).
      for (size_t i = 0; i < g_map->size(); ++i) {
        if ((*g_map)[i] < 0) out.dropped_source[i] = static_cast<int>(i);
      }
      return out;
    }
    case LogicalOpType::kScan: {
      NodeRemap out;
      out.plan = node.Clone();
      out.mapping = IdentityMapping(node.output_schema().num_columns());
      out.pure_old.assign(node.output_schema().num_columns(), -1);
      out.dropped_source.assign(node.output_schema().num_columns(), -1);
      return out;
    }
    case LogicalOpType::kSelect: {
      const auto& sel = static_cast<const LogicalSelect&>(node);
      ASSIGN_OR_RETURN(NodeRemap child, Remap(*node.child(0), env, allow_drop));
      ASSIGN_OR_RETURN(
          ExprPtr pred,
          RemapExprTree(sel.predicate(), child.mapping, env->outer_mappings));
      NodeRemap out;
      out.mapping = child.mapping;
      out.pure_old = child.pure_old;
      out.dropped_source = child.dropped_source;
      out.plan = std::make_unique<LogicalSelect>(std::move(child.plan),
                                                 std::move(pred));
      return out;
    }
    case LogicalOpType::kProject: {
      const auto& proj = static_cast<const LogicalProject&>(node);
      ASSIGN_OR_RETURN(NodeRemap child, Remap(*node.child(0), env, allow_drop));
      NodeRemap out;
      std::vector<ExprPtr> exprs;
      std::vector<std::string> names;
      int next = 0;
      for (size_t i = 0; i < proj.exprs().size(); ++i) {
        const Expr& e = *proj.exprs()[i];
        Result<ExprPtr> remapped =
            RemapExprTree(e, child.mapping, env->outer_mappings);
        if (remapped.ok()) {
          exprs.push_back(std::move(*remapped));
          names.push_back(proj.names()[i]);
          out.mapping.push_back(next++);
          out.pure_old.push_back(
              e.kind() == ExprKind::kColumnRef
                  ? child.pure_old[static_cast<size_t>(
                        static_cast<const ColumnRefExpr&>(e).index())]
                  : -1);
          out.dropped_source.push_back(-1);
          continue;
        }
        // Reference to a pruned column: droppable only for pure
        // pass-throughs of group columns (§4.3's adapted per-group query).
        if (allow_drop && e.kind() == ExprKind::kColumnRef) {
          const int idx = static_cast<const ColumnRefExpr&>(e).index();
          const int src = child.pure_old[static_cast<size_t>(idx)];
          if (src >= 0) {
            out.mapping.push_back(-1);
            out.pure_old.push_back(src);
            out.dropped_source.push_back(src);
            continue;
          }
        }
        return remapped.status();
      }
      out.plan = std::make_unique<LogicalProject>(
          std::move(child.plan), std::move(exprs), std::move(names));
      return out;
    }
    case LogicalOpType::kDistinct: {
      ASSIGN_OR_RETURN(NodeRemap child,
                       Remap(*node.child(0), env, /*allow_drop=*/false));
      if (!NoDrops(child.mapping)) {
        return Status::InvalidArgument(
            "cannot prune columns under Distinct (duplicate semantics "
            "would change)");
      }
      NodeRemap out;
      out.mapping = child.mapping;
      out.pure_old = child.pure_old;
      out.dropped_source = child.dropped_source;
      out.plan = std::make_unique<LogicalDistinct>(std::move(child.plan));
      return out;
    }
    case LogicalOpType::kOrderBy: {
      const auto& order = static_cast<const LogicalOrderBy&>(node);
      ASSIGN_OR_RETURN(NodeRemap child, Remap(*node.child(0), env, allow_drop));
      std::vector<SortKey> keys;
      for (const SortKey& k : order.keys()) {
        const int m = child.mapping[static_cast<size_t>(k.column)];
        if (m < 0) {
          return Status::InvalidArgument("ordering column was pruned");
        }
        keys.push_back({m, k.ascending});
      }
      NodeRemap out;
      out.mapping = child.mapping;
      out.pure_old = child.pure_old;
      out.dropped_source = child.dropped_source;
      out.plan = std::make_unique<LogicalOrderBy>(std::move(child.plan),
                                                  std::move(keys));
      return out;
    }
    case LogicalOpType::kGroupBy: {
      const auto& gb = static_cast<const LogicalGroupBy&>(node);
      ASSIGN_OR_RETURN(NodeRemap child, Remap(*node.child(0), env, allow_drop));
      std::vector<int> keys;
      NodeRemap out;
      for (int k : gb.keys()) {
        const int m = child.mapping[static_cast<size_t>(k)];
        if (m < 0) {
          return Status::InvalidArgument("grouping column was pruned");
        }
        keys.push_back(m);
        out.pure_old.push_back(child.pure_old[static_cast<size_t>(k)]);
      }
      ASSIGN_OR_RETURN(std::vector<AggregateDesc> aggs,
                       RemapAggs(gb.aggs(), child, *env));
      for (size_t i = 0; i < aggs.size(); ++i) out.pure_old.push_back(-1);
      out.mapping = IdentityMapping(keys.size() + aggs.size());
      out.dropped_source.assign(out.mapping.size(), -1);
      out.plan = std::make_unique<LogicalGroupBy>(std::move(child.plan),
                                                  std::move(keys),
                                                  std::move(aggs));
      return out;
    }
    case LogicalOpType::kScalarAgg: {
      const auto& agg = static_cast<const LogicalScalarAgg&>(node);
      ASSIGN_OR_RETURN(NodeRemap child, Remap(*node.child(0), env, allow_drop));
      ASSIGN_OR_RETURN(std::vector<AggregateDesc> aggs,
                       RemapAggs(agg.aggs(), child, *env));
      NodeRemap out;
      out.mapping = IdentityMapping(aggs.size());
      out.pure_old.assign(aggs.size(), -1);
      out.dropped_source.assign(aggs.size(), -1);
      out.plan = std::make_unique<LogicalScalarAgg>(std::move(child.plan),
                                                    std::move(aggs));
      return out;
    }
    case LogicalOpType::kExists: {
      const auto& ex = static_cast<const LogicalExists&>(node);
      ASSIGN_OR_RETURN(NodeRemap child, Remap(*node.child(0), env, allow_drop));
      NodeRemap out;
      out.plan = std::make_unique<LogicalExists>(std::move(child.plan),
                                                 ex.negated());
      return out;  // null schema
    }
    case LogicalOpType::kApply: {
      ASSIGN_OR_RETURN(NodeRemap outer, Remap(*node.child(0), env, allow_drop));
      env->outer_mappings.push_back(&outer.mapping);
      Result<NodeRemap> inner_r = Remap(*node.child(1), env, allow_drop);
      env->outer_mappings.pop_back();
      RETURN_NOT_OK(inner_r.status());
      NodeRemap inner = std::move(inner_r).value();

      const int new_outer_width = static_cast<int>(
          outer.plan->output_schema().num_columns());
      NodeRemap out;
      out.mapping = outer.mapping;
      for (int m : inner.mapping) {
        out.mapping.push_back(m < 0 ? -1 : new_outer_width + m);
      }
      out.pure_old = outer.pure_old;
      out.pure_old.insert(out.pure_old.end(), inner.pure_old.begin(),
                          inner.pure_old.end());
      out.dropped_source = outer.dropped_source;
      out.dropped_source.insert(out.dropped_source.end(),
                                inner.dropped_source.begin(),
                                inner.dropped_source.end());
      out.plan = std::make_unique<LogicalApply>(std::move(outer.plan),
                                                std::move(inner.plan));
      return out;
    }
    case LogicalOpType::kUnionAll: {
      std::vector<LogicalOpPtr> kids;
      NodeRemap out;
      bool first = true;
      for (size_t i = 0; i < node.num_children(); ++i) {
        ASSIGN_OR_RETURN(NodeRemap child,
                         Remap(*node.child(i), env, allow_drop));
        if (first) {
          out.mapping = child.mapping;
          out.pure_old = child.pure_old;
          out.dropped_source = child.dropped_source;
          first = false;
        } else if (out.mapping != child.mapping) {
          return Status::InvalidArgument(
              "union branches would prune different column positions");
        }
        kids.push_back(std::move(child.plan));
      }
      ASSIGN_OR_RETURN(LogicalOpPtr u, LogicalUnionAll::Make(std::move(kids)));
      out.plan = std::move(u);
      return out;
    }
    case LogicalOpType::kGApply: {
      const auto& ga = static_cast<const LogicalGApply&>(node);
      ASSIGN_OR_RETURN(NodeRemap outer, Remap(*node.child(0), env, allow_drop));
      std::vector<int> gcols;
      NodeRemap out;
      for (int g : ga.grouping_columns()) {
        const int m = outer.mapping[static_cast<size_t>(g)];
        if (m < 0) {
          return Status::InvalidArgument(
              "nested GApply grouping column was pruned");
        }
        gcols.push_back(m);
        out.pure_old.push_back(outer.pure_old[static_cast<size_t>(g)]);
      }
      // Rewrite the nested PGQ against the nested group's new schema.
      RemapEnv nested_env = *env;
      const Schema& nested_schema = outer.plan->output_schema();
      nested_env.vars[ga.var()] = {&nested_schema, &outer.mapping};
      ASSIGN_OR_RETURN(NodeRemap pgq, Remap(*ga.pgq(), &nested_env,
                                            /*allow_drop=*/false));
      if (!NoDrops(pgq.mapping)) {
        return Status::InvalidArgument(
            "nested GApply per-group query would lose columns");
      }
      for (size_t i = 0; i < pgq.mapping.size(); ++i) {
        out.pure_old.push_back(-1);
      }
      out.mapping = IdentityMapping(gcols.size() + pgq.mapping.size());
      out.dropped_source.assign(out.mapping.size(), -1);
      out.plan = std::make_unique<LogicalGApply>(
          std::move(outer.plan), std::move(gcols), ga.var(),
          std::move(pgq.plan), ga.mode());
      return out;
    }
    case LogicalOpType::kJoin:
      return Status::NotImplemented("join inside a per-group query");
  }
  return Status::Internal("unknown operator in PGQ remap");
}

}  // namespace

Result<RemappedPgq> RemapPgq(const LogicalOp& pgq, const std::string& var,
                             const Schema& new_group_schema,
                             const std::vector<int>& group_old_to_new,
                             bool allow_dropping_passthrough) {
  RemapEnv env;
  env.vars[var] = {&new_group_schema, &group_old_to_new};
  ASSIGN_OR_RETURN(NodeRemap node,
                   Remap(pgq, &env, allow_dropping_passthrough));
  RemappedPgq out;
  out.plan = std::move(node.plan);
  out.output_mapping = std::move(node.mapping);
  out.dropped_group_source = std::move(node.dropped_source);
  return out;
}

}  // namespace gapply::core
