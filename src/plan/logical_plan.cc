#include "src/plan/logical_plan.h"

#include "src/common/string_util.h"
#include "src/exec/apply_ops.h"  // UnifySchemas

namespace gapply {

namespace {

std::string ColumnList(const Schema& schema, const std::vector<int>& cols) {
  std::string out = "[";
  for (size_t i = 0; i < cols.size(); ++i) {
    if (i > 0) out += ",";
    out += schema.column(static_cast<size_t>(cols[i])).name;
  }
  out += "]";
  return out;
}

std::string AggList(const std::vector<AggregateDesc>& aggs) {
  std::string out;
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs[i].ToString();
  }
  return out;
}

std::vector<AggregateDesc> CloneAggs(const std::vector<AggregateDesc>& aggs) {
  std::vector<AggregateDesc> out;
  out.reserve(aggs.size());
  for (const AggregateDesc& a : aggs) out.push_back(a.Clone());
  return out;
}

Schema GroupByOutputSchema(const Schema& input, const std::vector<int>& keys,
                           const std::vector<AggregateDesc>& aggs) {
  Schema out;
  for (int k : keys) out.AddColumn(input.column(static_cast<size_t>(k)));
  for (const AggregateDesc& a : aggs) {
    out.AddColumn(Column(a.output_name, a.OutputType(), ""));
  }
  return out;
}

Schema GApplyOutputSchema(const Schema& outer, const std::vector<int>& gcols,
                          const Schema& pgq) {
  Schema out;
  for (int c : gcols) out.AddColumn(outer.column(static_cast<size_t>(c)));
  return Schema::Concat(out, pgq);
}

}  // namespace

const char* LogicalOpTypeName(LogicalOpType type) {
  switch (type) {
    case LogicalOpType::kScan:
      return "Scan";
    case LogicalOpType::kGroupScan:
      return "GroupScan";
    case LogicalOpType::kSelect:
      return "Select";
    case LogicalOpType::kProject:
      return "Project";
    case LogicalOpType::kJoin:
      return "Join";
    case LogicalOpType::kGroupBy:
      return "GroupBy";
    case LogicalOpType::kScalarAgg:
      return "ScalarAgg";
    case LogicalOpType::kDistinct:
      return "Distinct";
    case LogicalOpType::kUnionAll:
      return "UnionAll";
    case LogicalOpType::kApply:
      return "Apply";
    case LogicalOpType::kExists:
      return "Exists";
    case LogicalOpType::kOrderBy:
      return "OrderBy";
    case LogicalOpType::kGApply:
      return "GApply";
  }
  return "?";
}

std::string LogicalOp::DebugString(int indent) const {
  std::string out = Repeat("  ", indent) + DebugName() + "\n";
  if (type_ == LogicalOpType::kGApply) {
    const auto* ga = static_cast<const LogicalGApply*>(this);
    out += Repeat("  ", indent + 1) + "[outer]\n";
    out += ga->outer()->DebugString(indent + 2);
    out += Repeat("  ", indent + 1) + "[per-group query]\n";
    out += ga->pgq()->DebugString(indent + 2);
    return out;
  }
  for (const LogicalOpPtr& c : children_) {
    out += c->DebugString(indent + 1);
  }
  return out;
}

// ---------------------------------------------------------------------------
// LogicalScan
// ---------------------------------------------------------------------------

LogicalScan::LogicalScan(const Table* table, std::string alias)
    : LogicalOp(LogicalOpType::kScan,
                alias.empty() ? table->schema()
                              : table->schema().WithQualifier(alias)),
      table_(table),
      alias_(std::move(alias)) {}

LogicalOpPtr LogicalScan::Clone() const {
  return std::make_unique<LogicalScan>(table_, alias_);
}

std::string LogicalScan::DebugName() const {
  std::string out = "Scan(" + table_->name();
  if (!alias_.empty() && alias_ != table_->name()) out += " as " + alias_;
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// LogicalGroupScan
// ---------------------------------------------------------------------------

LogicalGroupScan::LogicalGroupScan(std::string var, Schema schema)
    : LogicalOp(LogicalOpType::kGroupScan, std::move(schema)),
      var_(std::move(var)) {}

LogicalOpPtr LogicalGroupScan::Clone() const {
  return std::make_unique<LogicalGroupScan>(var_, schema_);
}

std::string LogicalGroupScan::DebugName() const {
  return "GroupScan($" + var_ + ")";
}

// ---------------------------------------------------------------------------
// LogicalSelect
// ---------------------------------------------------------------------------

LogicalSelect::LogicalSelect(LogicalOpPtr child, ExprPtr predicate)
    : LogicalOp(LogicalOpType::kSelect, child->output_schema()),
      predicate_(std::move(predicate)) {
  children_.push_back(std::move(child));
}

LogicalOpPtr LogicalSelect::Clone() const {
  return std::make_unique<LogicalSelect>(child(0)->Clone(),
                                         predicate_->Clone());
}

std::string LogicalSelect::DebugName() const {
  return "Select(" + predicate_->ToString() + ")";
}

// ---------------------------------------------------------------------------
// LogicalProject
// ---------------------------------------------------------------------------

Schema LogicalProject::MakeSchema(const std::vector<ExprPtr>& exprs,
                                  const std::vector<std::string>& names) {
  Schema out;
  for (size_t i = 0; i < exprs.size(); ++i) {
    out.AddColumn(Column(names[i], exprs[i]->type(), ""));
  }
  return out;
}

LogicalProject::LogicalProject(LogicalOpPtr child, std::vector<ExprPtr> exprs,
                               std::vector<std::string> names)
    : LogicalOp(LogicalOpType::kProject, MakeSchema(exprs, names)),
      exprs_(std::move(exprs)),
      names_(std::move(names)) {
  children_.push_back(std::move(child));
}

void LogicalProject::ReplaceExprs(std::vector<ExprPtr> exprs,
                                  std::vector<std::string> names) {
  schema_ = MakeSchema(exprs, names);
  exprs_ = std::move(exprs);
  names_ = std::move(names);
}

LogicalOpPtr LogicalProject::Clone() const {
  std::vector<ExprPtr> exprs;
  exprs.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) exprs.push_back(e->Clone());
  return std::make_unique<LogicalProject>(child(0)->Clone(), std::move(exprs),
                                          names_);
}

std::string LogicalProject::DebugName() const {
  std::string out = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += exprs_[i]->ToString();
    if (!names_[i].empty() && names_[i] != exprs_[i]->ToString()) {
      out += " as " + names_[i];
    }
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// LogicalJoin
// ---------------------------------------------------------------------------

LogicalJoin::LogicalJoin(LogicalOpPtr left, LogicalOpPtr right,
                         std::vector<int> left_keys,
                         std::vector<int> right_keys, ExprPtr residual,
                         bool null_safe)
    : LogicalOp(
          LogicalOpType::kJoin,
          Schema::Concat(left->output_schema(), right->output_schema())),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      null_safe_(null_safe) {
  children_.push_back(std::move(left));
  children_.push_back(std::move(right));
}

LogicalOpPtr LogicalJoin::Clone() const {
  return std::make_unique<LogicalJoin>(
      child(0)->Clone(), child(1)->Clone(), left_keys_, right_keys_,
      residual_ == nullptr ? nullptr : residual_->Clone(), null_safe_);
}

std::string LogicalJoin::DebugName() const {
  std::string out =
      "Join(l=" + ColumnList(child(0)->output_schema(), left_keys_) +
      ", r=" + ColumnList(child(1)->output_schema(), right_keys_);
  if (residual_ != nullptr) out += ", residual=" + residual_->ToString();
  if (null_safe_) out += ", null-safe";
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// LogicalGroupBy / LogicalScalarAgg
// ---------------------------------------------------------------------------

LogicalGroupBy::LogicalGroupBy(LogicalOpPtr child, std::vector<int> keys,
                               std::vector<AggregateDesc> aggs)
    : LogicalOp(LogicalOpType::kGroupBy,
                GroupByOutputSchema(child->output_schema(), keys, aggs)),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)) {
  children_.push_back(std::move(child));
}

LogicalOpPtr LogicalGroupBy::Clone() const {
  return std::make_unique<LogicalGroupBy>(child(0)->Clone(), keys_,
                                          CloneAggs(aggs_));
}

std::string LogicalGroupBy::DebugName() const {
  return "GroupBy(keys=" + ColumnList(child(0)->output_schema(), keys_) +
         ", aggs=[" + AggList(aggs_) + "])";
}

LogicalScalarAgg::LogicalScalarAgg(LogicalOpPtr child,
                                   std::vector<AggregateDesc> aggs)
    : LogicalOp(LogicalOpType::kScalarAgg,
                GroupByOutputSchema(child->output_schema(), {}, aggs)),
      aggs_(std::move(aggs)) {
  children_.push_back(std::move(child));
}

LogicalOpPtr LogicalScalarAgg::Clone() const {
  return std::make_unique<LogicalScalarAgg>(child(0)->Clone(),
                                            CloneAggs(aggs_));
}

std::string LogicalScalarAgg::DebugName() const {
  return "ScalarAgg(" + AggList(aggs_) + ")";
}

// ---------------------------------------------------------------------------
// LogicalDistinct / LogicalUnionAll
// ---------------------------------------------------------------------------

LogicalDistinct::LogicalDistinct(LogicalOpPtr child)
    : LogicalOp(LogicalOpType::kDistinct, child->output_schema()) {
  children_.push_back(std::move(child));
}

LogicalOpPtr LogicalDistinct::Clone() const {
  return std::make_unique<LogicalDistinct>(child(0)->Clone());
}

std::string LogicalDistinct::DebugName() const { return "Distinct"; }

LogicalUnionAll::LogicalUnionAll(Schema schema,
                                 std::vector<LogicalOpPtr> children)
    : LogicalOp(LogicalOpType::kUnionAll, std::move(schema)) {
  children_ = std::move(children);
}

Result<LogicalOpPtr> LogicalUnionAll::Make(
    std::vector<LogicalOpPtr> children) {
  std::vector<const Schema*> schemas;
  schemas.reserve(children.size());
  for (const LogicalOpPtr& c : children) {
    schemas.push_back(&c->output_schema());
  }
  ASSIGN_OR_RETURN(Schema schema, UnifySchemas(schemas));
  return LogicalOpPtr(
      new LogicalUnionAll(std::move(schema), std::move(children)));
}

LogicalOpPtr LogicalUnionAll::Clone() const {
  std::vector<LogicalOpPtr> kids;
  kids.reserve(children_.size());
  for (const LogicalOpPtr& c : children_) kids.push_back(c->Clone());
  Result<LogicalOpPtr> r = Make(std::move(kids));
  // Cloning an already-validated union cannot fail.
  return std::move(r).value();
}

std::string LogicalUnionAll::DebugName() const {
  return "UnionAll(" + std::to_string(children_.size()) + " branches)";
}

// ---------------------------------------------------------------------------
// LogicalApply / LogicalExists / LogicalOrderBy
// ---------------------------------------------------------------------------

LogicalApply::LogicalApply(LogicalOpPtr outer, LogicalOpPtr inner)
    : LogicalOp(
          LogicalOpType::kApply,
          Schema::Concat(outer->output_schema(), inner->output_schema())) {
  children_.push_back(std::move(outer));
  children_.push_back(std::move(inner));
}

LogicalOpPtr LogicalApply::Clone() const {
  return std::make_unique<LogicalApply>(child(0)->Clone(), child(1)->Clone());
}

std::string LogicalApply::DebugName() const { return "Apply"; }

LogicalExists::LogicalExists(LogicalOpPtr child, bool negated)
    : LogicalOp(LogicalOpType::kExists, Schema()), negated_(negated) {
  children_.push_back(std::move(child));
}

LogicalOpPtr LogicalExists::Clone() const {
  return std::make_unique<LogicalExists>(child(0)->Clone(), negated_);
}

std::string LogicalExists::DebugName() const {
  return negated_ ? "NotExists" : "Exists";
}

LogicalOrderBy::LogicalOrderBy(LogicalOpPtr child, std::vector<SortKey> keys)
    : LogicalOp(LogicalOpType::kOrderBy, child->output_schema()),
      keys_(std::move(keys)) {
  children_.push_back(std::move(child));
}

LogicalOpPtr LogicalOrderBy::Clone() const {
  return std::make_unique<LogicalOrderBy>(child(0)->Clone(), keys_);
}

std::string LogicalOrderBy::DebugName() const {
  std::string out = "OrderBy(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema_.column(static_cast<size_t>(keys_[i].column)).name;
    if (!keys_[i].ascending) out += " desc";
  }
  out += ")";
  return out;
}

// ---------------------------------------------------------------------------
// LogicalGApply
// ---------------------------------------------------------------------------

LogicalGApply::LogicalGApply(LogicalOpPtr outer,
                             std::vector<int> grouping_columns,
                             std::string var, LogicalOpPtr pgq,
                             PartitionMode mode)
    : LogicalOp(LogicalOpType::kGApply,
                GApplyOutputSchema(outer->output_schema(), grouping_columns,
                                   pgq->output_schema())),
      grouping_columns_(std::move(grouping_columns)),
      var_(std::move(var)),
      pgq_(std::move(pgq)),
      mode_(mode) {
  children_.push_back(std::move(outer));
}

LogicalOpPtr LogicalGApply::Clone() const {
  return std::make_unique<LogicalGApply>(child(0)->Clone(),
                                         grouping_columns_, var_,
                                         pgq_->Clone(), mode_);
}

std::string LogicalGApply::DebugName() const {
  return "GApply(gcols=" +
         ColumnList(child(0)->output_schema(), grouping_columns_) +
         ", var=$" + var_ + ", partition=" + PartitionModeName(mode_) + ")";
}

}  // namespace gapply
