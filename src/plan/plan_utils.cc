#include "src/plan/plan_utils.h"

namespace gapply {

namespace {

// Does `e` contain a correlated reference with depth == `nesting` (i.e.
// one that resolves to the Apply whose inner subtree we started from)?
bool ExprRefersToDepth(const Expr& e, int nesting) {
  switch (e.kind()) {
    case ExprKind::kCorrelatedColumnRef:
      return static_cast<const CorrelatedColumnRefExpr&>(e).depth() ==
             nesting;
    case ExprKind::kUnary:
      return ExprRefersToDepth(static_cast<const UnaryExpr&>(e).child(),
                               nesting);
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(e);
      return ExprRefersToDepth(bin.left(), nesting) ||
             ExprRefersToDepth(bin.right(), nesting);
    }
    default:
      return false;
  }
}

bool NodeRefersToDepth(const LogicalOp& node, int nesting) {
  switch (node.type()) {
    case LogicalOpType::kSelect:
      if (ExprRefersToDepth(
              static_cast<const LogicalSelect&>(node).predicate(), nesting)) {
        return true;
      }
      break;
    case LogicalOpType::kProject:
      for (const ExprPtr& e :
           static_cast<const LogicalProject&>(node).exprs()) {
        if (ExprRefersToDepth(*e, nesting)) return true;
      }
      break;
    case LogicalOpType::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      if (join.residual() != nullptr &&
          ExprRefersToDepth(*join.residual(), nesting)) {
        return true;
      }
      break;
    }
    case LogicalOpType::kGroupBy:
      for (const AggregateDesc& a :
           static_cast<const LogicalGroupBy&>(node).aggs()) {
        if (a.arg != nullptr && ExprRefersToDepth(*a.arg, nesting)) {
          return true;
        }
      }
      break;
    case LogicalOpType::kScalarAgg:
      for (const AggregateDesc& a :
           static_cast<const LogicalScalarAgg&>(node).aggs()) {
        if (a.arg != nullptr && ExprRefersToDepth(*a.arg, nesting)) {
          return true;
        }
      }
      break;
    default:
      break;
  }

  if (node.type() == LogicalOpType::kApply) {
    // Inside the inner child of a nested Apply, a reference to *our* Apply
    // has depth nesting + 1.
    const auto& apply = static_cast<const LogicalApply&>(node);
    return NodeRefersToDepth(*apply.outer(), nesting) ||
           NodeRefersToDepth(*apply.inner(), nesting + 1);
  }
  for (size_t i = 0; i < node.num_children(); ++i) {
    if (NodeRefersToDepth(*node.child(i), nesting)) return true;
  }
  if (node.type() == LogicalOpType::kGApply) {
    // GApply binds a relation, not a row: correlation depths pass through.
    const auto& ga = static_cast<const LogicalGApply&>(node);
    if (NodeRefersToDepth(*ga.pgq(), nesting)) return true;
  }
  return false;
}

}  // namespace

bool ApplyInnerIsCorrelated(const LogicalOp& inner) {
  return NodeRefersToDepth(inner, 0);
}

}  // namespace gapply
