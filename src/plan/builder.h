#ifndef GAPPLY_PLAN_BUILDER_H_
#define GAPPLY_PLAN_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/plan/logical_plan.h"
#include "src/storage/catalog.h"

namespace gapply {

/// Aggregate specification by column *name*, resolved by the builder against
/// the current schema (use AggregateDesc directly for expression arguments).
struct AggSpec {
  AggKind kind = AggKind::kCountStar;
  std::string column;  // empty for count(*)
  std::string name;    // output column name
  bool distinct = false;
};

/// \brief Fluent construction of logical plans.
///
/// Errors (unknown columns/tables, incompatible unions) are latched: once a
/// step fails, subsequent steps are no-ops and `Build()` returns the first
/// error. This keeps call sites free of per-step error plumbing:
///
///   ASSIGN_OR_RETURN(auto plan,
///       PlanBuilder::Scan(catalog, "part")
///           .Select([](const Schema& s) {
///             return Gt(Col(s, "p_retailprice"), Lit(100.0)); })
///           .Project({"p_name"})
///           .Build());
class PlanBuilder {
 public:
  using ExprFn = std::function<ExprPtr(const Schema&)>;

  /// Starts from a base-table scan.
  static PlanBuilder Scan(const Catalog& catalog, const std::string& table,
                          const std::string& alias = "");

  /// Starts from a group-variable scan (per-group queries).
  static PlanBuilder GroupScan(const std::string& var, Schema schema);

  /// Wraps an existing plan.
  static PlanBuilder FromPlan(LogicalOpPtr plan);

  /// Current output schema (empty schema if the builder is failed).
  const Schema& schema() const;

  /// σ with an already-bound predicate.
  PlanBuilder Select(ExprPtr predicate) &&;
  /// σ with a predicate built against the current schema.
  PlanBuilder Select(const ExprFn& fn) &&;

  /// π keeping the named columns (in the given order).
  PlanBuilder Project(const std::vector<std::string>& columns) &&;
  /// π with computed expressions.
  PlanBuilder ProjectExprs(std::vector<ExprPtr> exprs,
                           std::vector<std::string> names) &&;
  /// π with expressions built against the current schema.
  PlanBuilder ProjectExprs(
      const std::function<std::vector<ExprPtr>(const Schema&)>& fn,
      std::vector<std::string> names) &&;

  /// Inner equi-join on name-resolved key columns.
  PlanBuilder Join(PlanBuilder right, const std::vector<std::string>& left_on,
                   const std::vector<std::string>& right_on) &&;

  PlanBuilder GroupBy(const std::vector<std::string>& keys,
                      const std::vector<AggSpec>& aggs) &&;
  PlanBuilder ScalarAgg(const std::vector<AggSpec>& aggs) &&;
  PlanBuilder Distinct() &&;
  PlanBuilder OrderBy(const std::vector<std::string>& columns,
                      bool ascending = true) &&;

  /// Apply with this plan as the outer input.
  PlanBuilder Apply(PlanBuilder inner) &&;
  /// Wraps this plan in Exists (for use as an Apply inner).
  PlanBuilder Exists(bool negated = false) &&;

  /// GApply with this plan as the outer query. `pgq` must scan `var` via
  /// PlanBuilder::GroupScan(var, this->schema()).
  PlanBuilder GApply(const std::vector<std::string>& grouping_columns,
                     const std::string& var, PlanBuilder pgq,
                     PartitionMode mode = PartitionMode::kHash) &&;

  static PlanBuilder UnionAll(std::vector<PlanBuilder> branches);

  /// Finishes construction, returning the plan or the first latched error.
  Result<LogicalOpPtr> Build() &&;

 private:
  PlanBuilder() = default;
  explicit PlanBuilder(Status error) : status_(std::move(error)) {}
  explicit PlanBuilder(LogicalOpPtr plan) : plan_(std::move(plan)) {}

  bool failed() const { return !status_.ok(); }
  Result<std::vector<int>> ResolveAll(const std::vector<std::string>& names);
  Result<std::vector<AggregateDesc>> ResolveAggs(
      const std::vector<AggSpec>& specs);

  Status status_;
  LogicalOpPtr plan_;
};

}  // namespace gapply

#endif  // GAPPLY_PLAN_BUILDER_H_
