#include "src/plan/builder.h"

namespace gapply {

namespace {

const Schema& EmptySchema() {
  static const Schema* schema = new Schema();
  return *schema;
}

}  // namespace

PlanBuilder PlanBuilder::Scan(const Catalog& catalog, const std::string& table,
                              const std::string& alias) {
  Result<Table*> t = catalog.GetTable(table);
  if (!t.ok()) return PlanBuilder(t.status());
  return PlanBuilder(std::make_unique<LogicalScan>(
      *t, alias.empty() ? table : alias));
}

PlanBuilder PlanBuilder::GroupScan(const std::string& var, Schema schema) {
  return PlanBuilder(
      std::make_unique<LogicalGroupScan>(var, std::move(schema)));
}

PlanBuilder PlanBuilder::FromPlan(LogicalOpPtr plan) {
  if (plan == nullptr) {
    return PlanBuilder(Status::InvalidArgument("FromPlan: null plan"));
  }
  return PlanBuilder(std::move(plan));
}

const Schema& PlanBuilder::schema() const {
  return plan_ == nullptr ? EmptySchema() : plan_->output_schema();
}

Result<std::vector<int>> PlanBuilder::ResolveAll(
    const std::vector<std::string>& names) {
  std::vector<int> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    // Accept "qualifier.name" references.
    const size_t dot = name.find('.');
    Result<int> idx =
        dot == std::string::npos
            ? schema().Resolve(name)
            : schema().Resolve(name.substr(dot + 1), name.substr(0, dot));
    RETURN_NOT_OK(idx.status());
    out.push_back(*idx);
  }
  return out;
}

Result<std::vector<AggregateDesc>> PlanBuilder::ResolveAggs(
    const std::vector<AggSpec>& specs) {
  std::vector<AggregateDesc> out;
  out.reserve(specs.size());
  for (const AggSpec& spec : specs) {
    if (spec.kind == AggKind::kCountStar) {
      out.emplace_back(AggKind::kCountStar, nullptr,
                       spec.name.empty() ? "count" : spec.name);
      continue;
    }
    ASSIGN_OR_RETURN(std::vector<int> idx, ResolveAll({spec.column}));
    out.emplace_back(spec.kind, Col(schema(), idx[0]),
                     spec.name.empty() ? spec.column : spec.name,
                     spec.distinct);
  }
  return out;
}

PlanBuilder PlanBuilder::Select(ExprPtr predicate) && {
  if (failed()) return std::move(*this);
  if (predicate == nullptr) {
    return PlanBuilder(Status::InvalidArgument("Select: null predicate"));
  }
  plan_ = std::make_unique<LogicalSelect>(std::move(plan_),
                                          std::move(predicate));
  return std::move(*this);
}

PlanBuilder PlanBuilder::Select(const ExprFn& fn) && {
  if (failed()) return std::move(*this);
  return std::move(*this).Select(fn(schema()));
}

PlanBuilder PlanBuilder::Project(const std::vector<std::string>& columns) && {
  if (failed()) return std::move(*this);
  Result<std::vector<int>> idx = ResolveAll(columns);
  if (!idx.ok()) return PlanBuilder(idx.status());
  std::vector<ExprPtr> exprs;
  std::vector<std::string> names;
  for (int i : *idx) {
    exprs.push_back(Col(schema(), i));
    names.push_back(schema().column(static_cast<size_t>(i)).name);
  }
  return std::move(*this).ProjectExprs(std::move(exprs), std::move(names));
}

PlanBuilder PlanBuilder::ProjectExprs(std::vector<ExprPtr> exprs,
                                      std::vector<std::string> names) && {
  if (failed()) return std::move(*this);
  if (exprs.size() != names.size()) {
    return PlanBuilder(
        Status::InvalidArgument("ProjectExprs: exprs/names size mismatch"));
  }
  plan_ = std::make_unique<LogicalProject>(std::move(plan_), std::move(exprs),
                                           std::move(names));
  return std::move(*this);
}

PlanBuilder PlanBuilder::ProjectExprs(
    const std::function<std::vector<ExprPtr>(const Schema&)>& fn,
    std::vector<std::string> names) && {
  if (failed()) return std::move(*this);
  return std::move(*this).ProjectExprs(fn(schema()), std::move(names));
}

PlanBuilder PlanBuilder::Join(PlanBuilder right,
                              const std::vector<std::string>& left_on,
                              const std::vector<std::string>& right_on) && {
  if (failed()) return std::move(*this);
  if (right.failed()) return PlanBuilder(right.status_);
  if (left_on.size() != right_on.size()) {
    return PlanBuilder(
        Status::InvalidArgument("Join: key lists of different length"));
  }
  Result<std::vector<int>> lk = ResolveAll(left_on);
  if (!lk.ok()) return PlanBuilder(lk.status());
  Result<std::vector<int>> rk = right.ResolveAll(right_on);
  if (!rk.ok()) return PlanBuilder(rk.status());
  plan_ = std::make_unique<LogicalJoin>(std::move(plan_),
                                        std::move(right.plan_), *lk, *rk);
  return std::move(*this);
}

PlanBuilder PlanBuilder::GroupBy(const std::vector<std::string>& keys,
                                 const std::vector<AggSpec>& aggs) && {
  if (failed()) return std::move(*this);
  Result<std::vector<int>> k = ResolveAll(keys);
  if (!k.ok()) return PlanBuilder(k.status());
  Result<std::vector<AggregateDesc>> a = ResolveAggs(aggs);
  if (!a.ok()) return PlanBuilder(a.status());
  plan_ = std::make_unique<LogicalGroupBy>(std::move(plan_), *k,
                                           std::move(*a));
  return std::move(*this);
}

PlanBuilder PlanBuilder::ScalarAgg(const std::vector<AggSpec>& aggs) && {
  if (failed()) return std::move(*this);
  Result<std::vector<AggregateDesc>> a = ResolveAggs(aggs);
  if (!a.ok()) return PlanBuilder(a.status());
  plan_ = std::make_unique<LogicalScalarAgg>(std::move(plan_), std::move(*a));
  return std::move(*this);
}

PlanBuilder PlanBuilder::Distinct() && {
  if (failed()) return std::move(*this);
  plan_ = std::make_unique<LogicalDistinct>(std::move(plan_));
  return std::move(*this);
}

PlanBuilder PlanBuilder::OrderBy(const std::vector<std::string>& columns,
                                 bool ascending) && {
  if (failed()) return std::move(*this);
  Result<std::vector<int>> idx = ResolveAll(columns);
  if (!idx.ok()) return PlanBuilder(idx.status());
  std::vector<SortKey> keys;
  for (int i : *idx) keys.push_back({i, ascending});
  plan_ = std::make_unique<LogicalOrderBy>(std::move(plan_), std::move(keys));
  return std::move(*this);
}

PlanBuilder PlanBuilder::Apply(PlanBuilder inner) && {
  if (failed()) return std::move(*this);
  if (inner.failed()) return PlanBuilder(inner.status_);
  plan_ = std::make_unique<LogicalApply>(std::move(plan_),
                                         std::move(inner.plan_));
  return std::move(*this);
}

PlanBuilder PlanBuilder::Exists(bool negated) && {
  if (failed()) return std::move(*this);
  plan_ = std::make_unique<LogicalExists>(std::move(plan_), negated);
  return std::move(*this);
}

PlanBuilder PlanBuilder::GApply(
    const std::vector<std::string>& grouping_columns, const std::string& var,
    PlanBuilder pgq, PartitionMode mode) && {
  if (failed()) return std::move(*this);
  if (pgq.failed()) return PlanBuilder(pgq.status_);
  Result<std::vector<int>> gcols = ResolveAll(grouping_columns);
  if (!gcols.ok()) return PlanBuilder(gcols.status());
  plan_ = std::make_unique<LogicalGApply>(std::move(plan_), *gcols, var,
                                          std::move(pgq.plan_), mode);
  return std::move(*this);
}

PlanBuilder PlanBuilder::UnionAll(std::vector<PlanBuilder> branches) {
  std::vector<LogicalOpPtr> plans;
  plans.reserve(branches.size());
  for (PlanBuilder& b : branches) {
    if (b.failed()) return PlanBuilder(b.status_);
    plans.push_back(std::move(b.plan_));
  }
  Result<LogicalOpPtr> u = LogicalUnionAll::Make(std::move(plans));
  if (!u.ok()) return PlanBuilder(u.status());
  return PlanBuilder(std::move(*u));
}

Result<LogicalOpPtr> PlanBuilder::Build() && {
  RETURN_NOT_OK(status_);
  if (plan_ == nullptr) {
    return Status::Internal("PlanBuilder: empty plan");
  }
  return std::move(plan_);
}

}  // namespace gapply
