#ifndef GAPPLY_PLAN_PLAN_UTILS_H_
#define GAPPLY_PLAN_PLAN_UTILS_H_

#include "src/plan/logical_plan.h"

namespace gapply {

/// True iff `inner`, used as the inner child of an Apply, actually depends
/// on that Apply's current outer row — i.e. some expression in the subtree
/// holds a correlated reference whose depth resolves to this Apply.
///
/// When false, the inner's result is identical for every outer row and a
/// single evaluation can be cached for the whole Apply execution (the
/// situation in the paper's group-selection queries, where the EXISTS probe
/// ranges over the group, not the row).
bool ApplyInnerIsCorrelated(const LogicalOp& inner);

}  // namespace gapply

#endif  // GAPPLY_PLAN_PLAN_UTILS_H_
