#ifndef GAPPLY_PLAN_LOGICAL_PLAN_H_
#define GAPPLY_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/filter_project_ops.h"  // SortKey
#include "src/exec/gapply_op.h"           // PartitionMode
#include "src/expr/aggregate.h"
#include "src/expr/expr.h"
#include "src/storage/table.h"

namespace gapply {

/// Logical operator kinds. The per-group-query operator set is exactly the
/// paper's (§3): scan, select, project, distinct, apply, exists, union all,
/// groupby, aggregate, orderby — plus GApply itself and Join for outer
/// queries.
enum class LogicalOpType {
  kScan,
  kGroupScan,
  kSelect,
  kProject,
  kJoin,
  kGroupBy,
  kScalarAgg,
  kDistinct,
  kUnionAll,
  kApply,
  kExists,
  kOrderBy,
  kGApply,
};

const char* LogicalOpTypeName(LogicalOpType type);

class LogicalOp;
using LogicalOpPtr = std::unique_ptr<LogicalOp>;

/// \brief Base class for logical plan nodes.
///
/// Children are owned and uniformly accessible so optimizer rules can
/// traverse and splice subtrees generically; subclasses add typed accessors
/// for their operator-specific state. Output schemas are computed at
/// construction and are immutable.
class LogicalOp {
 public:
  virtual ~LogicalOp() = default;

  LogicalOp(const LogicalOp&) = delete;
  LogicalOp& operator=(const LogicalOp&) = delete;

  LogicalOpType type() const { return type_; }
  const Schema& output_schema() const { return schema_; }

  size_t num_children() const { return children_.size(); }
  LogicalOp* child(size_t i) const { return children_[i].get(); }
  /// Detaches child i (caller re-attaches or discards).
  LogicalOpPtr TakeChild(size_t i) { return std::move(children_[i]); }
  void SetChild(size_t i, LogicalOpPtr op) { children_[i] = std::move(op); }

  virtual LogicalOpPtr Clone() const = 0;
  /// Node label with salient arguments for plan printing.
  virtual std::string DebugName() const = 0;
  /// Indented multi-line rendering of the subtree.
  std::string DebugString(int indent = 0) const;

 protected:
  LogicalOp(LogicalOpType type, Schema schema)
      : type_(type), schema_(std::move(schema)) {}

  LogicalOpType type_;
  Schema schema_;
  std::vector<LogicalOpPtr> children_;
};

/// Base-table scan. Holds the table pointer (for lowering) plus its alias.
class LogicalScan : public LogicalOp {
 public:
  explicit LogicalScan(const Table* table, std::string alias = "");

  const Table* table() const { return table_; }
  const std::string& table_name() const { return table_->name(); }
  const std::string& alias() const { return alias_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  const Table* table_;
  std::string alias_;
};

/// Scan of the relation-valued variable bound by an enclosing GApply.
class LogicalGroupScan : public LogicalOp {
 public:
  LogicalGroupScan(std::string var, Schema schema);

  const std::string& var() const { return var_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  std::string var_;
};

/// Selection (σ).
class LogicalSelect : public LogicalOp {
 public:
  LogicalSelect(LogicalOpPtr child, ExprPtr predicate);

  const Expr& predicate() const { return *predicate_; }
  ExprPtr TakePredicate() { return std::move(predicate_); }
  void SetPredicate(ExprPtr p) { predicate_ = std::move(p); }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  ExprPtr predicate_;
};

/// Projection (π) with computed expressions; multiset semantics (no
/// duplicate elimination).
class LogicalProject : public LogicalOp {
 public:
  LogicalProject(LogicalOpPtr child, std::vector<ExprPtr> exprs,
                 std::vector<std::string> names);

  const std::vector<ExprPtr>& exprs() const { return exprs_; }
  std::vector<ExprPtr>* mutable_exprs() { return &exprs_; }
  const std::vector<std::string>& names() const { return names_; }

  /// Rebuilds expressions and schema after an optimizer edit (used when
  /// adapting per-group queries for invariant grouping).
  void ReplaceExprs(std::vector<ExprPtr> exprs, std::vector<std::string> names);

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  static Schema MakeSchema(const std::vector<ExprPtr>& exprs,
                           const std::vector<std::string>& names);

  std::vector<ExprPtr> exprs_;
  std::vector<std::string> names_;
};

/// Inner equi-join annotated with key columns and an optional residual
/// predicate over the concatenated schema — the "annotated join tree"
/// representation the paper assumes for outer queries (§4).
class LogicalJoin : public LogicalOp {
 public:
  LogicalJoin(LogicalOpPtr left, LogicalOpPtr right,
              std::vector<int> left_keys, std::vector<int> right_keys,
              ExprPtr residual = nullptr, bool null_safe = false);

  const std::vector<int>& left_keys() const { return left_keys_; }
  const std::vector<int>& right_keys() const { return right_keys_; }
  const Expr* residual() const { return residual_.get(); }
  /// When true the key comparison is IS NOT DISTINCT FROM: NULL matches
  /// NULL. The group-selection rewrites need this — GApply partitions like
  /// GROUP BY, where NULL grouping keys form a real group, so
  /// reconstructing groups with a plain SQL equi-join would drop them.
  bool null_safe() const { return null_safe_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  std::vector<int> left_keys_;
  std::vector<int> right_keys_;
  ExprPtr residual_;
  bool null_safe_ = false;
};

/// GROUP BY with aggregates (key columns are input-column indexes).
class LogicalGroupBy : public LogicalOp {
 public:
  LogicalGroupBy(LogicalOpPtr child, std::vector<int> keys,
                 std::vector<AggregateDesc> aggs);

  const std::vector<int>& keys() const { return keys_; }
  const std::vector<AggregateDesc>& aggs() const { return aggs_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  std::vector<int> keys_;
  std::vector<AggregateDesc> aggs_;
};

/// Aggregation without grouping: exactly one output row (never empty on
/// empty input — central to the paper's emptyOnEmpty analysis).
class LogicalScalarAgg : public LogicalOp {
 public:
  LogicalScalarAgg(LogicalOpPtr child, std::vector<AggregateDesc> aggs);

  const std::vector<AggregateDesc>& aggs() const { return aggs_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  std::vector<AggregateDesc> aggs_;
};

class LogicalDistinct : public LogicalOp {
 public:
  explicit LogicalDistinct(LogicalOpPtr child);
  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;
};

class LogicalUnionAll : public LogicalOp {
 public:
  /// Fails when branch schemas are not union-compatible.
  static Result<LogicalOpPtr> Make(std::vector<LogicalOpPtr> children);

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  LogicalUnionAll(Schema schema, std::vector<LogicalOpPtr> children);
};

/// The paper's apply operator: for each outer row r, evaluate the inner
/// (parameterized) expression and emit {r} × inner(r).
class LogicalApply : public LogicalOp {
 public:
  LogicalApply(LogicalOpPtr outer, LogicalOpPtr inner);

  LogicalOp* outer() const { return child(0); }
  LogicalOp* inner() const { return child(1); }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;
};

/// The paper's exists operator: {φ} if input nonempty, φ otherwise. Only
/// valid as the inner child of Apply.
class LogicalExists : public LogicalOp {
 public:
  explicit LogicalExists(LogicalOpPtr child, bool negated = false);

  bool negated() const { return negated_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  bool negated_;
};

class LogicalOrderBy : public LogicalOp {
 public:
  LogicalOrderBy(LogicalOpPtr child, std::vector<SortKey> keys);

  const std::vector<SortKey>& keys() const { return keys_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  std::vector<SortKey> keys_;
};

/// \brief The paper's GApply(GCols, PGQ) logical operator.
///
/// child(0) is the outer query; `pgq` is the per-group query whose
/// LogicalGroupScan leaves reference `var`. Output schema: grouping columns
/// then PGQ output.
class LogicalGApply : public LogicalOp {
 public:
  LogicalGApply(LogicalOpPtr outer, std::vector<int> grouping_columns,
                std::string var, LogicalOpPtr pgq,
                PartitionMode mode = PartitionMode::kHash);

  LogicalOp* outer() const { return child(0); }
  LogicalOp* pgq() const { return pgq_.get(); }
  LogicalOpPtr TakePgq() { return std::move(pgq_); }
  void SetPgq(LogicalOpPtr pgq) { pgq_ = std::move(pgq); }

  const std::vector<int>& grouping_columns() const {
    return grouping_columns_;
  }
  const std::string& var() const { return var_; }
  PartitionMode mode() const { return mode_; }

  LogicalOpPtr Clone() const override;
  std::string DebugName() const override;

 private:
  // The PGQ is held separately from children_: generic child traversal walks
  // the *outer* data-flow tree; rules touch the PGQ deliberately via pgq().
  std::vector<int> grouping_columns_;
  std::string var_;
  LogicalOpPtr pgq_;
  PartitionMode mode_;
};

}  // namespace gapply

#endif  // GAPPLY_PLAN_LOGICAL_PLAN_H_
