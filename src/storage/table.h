#ifndef GAPPLY_STORAGE_TABLE_H_
#define GAPPLY_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/schema.h"

namespace gapply {

/// \brief An in-memory row-store base table.
///
/// Rows are stored in insertion order; the engine imposes no physical order
/// (the paper assumes an unordered model). Type checking happens on append.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends one row after checking arity and per-column type compatibility
  /// (NULL is compatible with every column type; int64 values are accepted
  /// into double columns and widened).
  Status Append(Row row);

  /// Bulk append; stops at the first bad row.
  Status AppendAll(std::vector<Row> rows);

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace gapply

#endif  // GAPPLY_STORAGE_TABLE_H_
