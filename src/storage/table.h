#ifndef GAPPLY_STORAGE_TABLE_H_
#define GAPPLY_STORAGE_TABLE_H_

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/columnar.h"
#include "src/storage/schema.h"

namespace gapply {

/// \brief An in-memory base table: insertion-ordered row store plus a
/// lazily materialized columnar view.
///
/// Rows are stored in insertion order; the engine imposes no physical order
/// (the paper assumes an unordered model). Type checking happens on append.
/// The columnar view (per-column typed arrays, dictionary-encoded strings,
/// per-morsel zone maps — DESIGN.md §13) is built on demand at the first
/// `columnar()` access and then kept by catching up to the row store on
/// each access, so append-heavy temporary tables that are never scanned
/// with pushed predicates pay nothing for it. `rows()` remains the
/// ingest-order row view both layouts must agree with bit for bit.
///
/// Thread safety matches the engine's table contract: appends must not
/// overlap query execution, but any number of readers may call `columnar()`
/// concurrently (Exchange workers do) — the catch-up is mutex-guarded with
/// a lock-free fast path once synced.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        columnar_(schema_) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Columnar view over the same rows, caught up to `rows()` on access.
  const ColumnarTable& columnar() const;

  /// Appends one row after checking arity and per-column type compatibility
  /// (NULL is compatible with every column type; int64 values are accepted
  /// into double columns and widened).
  Status Append(Row row);

  /// Bulk append with all-or-nothing semantics: every row is validated (and
  /// widened) first, and the table is mutated only when the whole batch is
  /// acceptable — a failed AppendAll leaves the table unchanged.
  Status AppendAll(std::vector<Row> rows);

 private:
  /// Arity/type check shared by Append and AppendAll; widens int64 values
  /// destined for double columns in place.
  Status CheckAndWiden(Row* row) const;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  /// Lazily synced mirror of `rows_`; `columnar_synced_` is the number of
  /// rows already mirrored (lock-free fast-path check), `columnar_mu_`
  /// serializes the catch-up between concurrent readers.
  mutable ColumnarTable columnar_;
  mutable std::atomic<size_t> columnar_synced_{0};
  mutable std::mutex columnar_mu_;
};

}  // namespace gapply

#endif  // GAPPLY_STORAGE_TABLE_H_
