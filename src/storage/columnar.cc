#include "src/storage/columnar.h"

#include <algorithm>

namespace gapply {

namespace {

using value_ops::CmpOp;

const char* CmpOpSpelling(CmpOp op) {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

/// Dispatches `op` to a concrete comparator once, so the per-row loops the
/// callback runs carry no per-element switch.
template <typename Fn>
void WithComparator(CmpOp op, const Fn& fn) {
  switch (op) {
    case CmpOp::kEq: fn([](auto a, auto b) { return a == b; }); return;
    case CmpOp::kNe: fn([](auto a, auto b) { return a != b; }); return;
    case CmpOp::kLt: fn([](auto a, auto b) { return a < b; }); return;
    case CmpOp::kLe: fn([](auto a, auto b) { return a <= b; }); return;
    case CmpOp::kGt: fn([](auto a, auto b) { return a > b; }); return;
    case CmpOp::kGe: fn([](auto a, auto b) { return a >= b; }); return;
  }
}

/// Single-row test of one compiled predicate (the loops below inline the
/// same logic with the dispatch hoisted).
bool TestOne(const ColumnVector& col, const CompiledPredicate& p, size_t i) {
  if (col.IsNull(i)) return false;
  bool pass = false;
  WithComparator(p.op, [&](auto cmp) {
    switch (p.kind) {
      case CompiledPredicate::Kind::kInt:
        pass = cmp(col.ints()[i], p.i64);
        break;
      case CompiledPredicate::Kind::kIntAsDouble:
        pass = cmp(static_cast<double>(col.ints()[i]), p.f64);
        break;
      case CompiledPredicate::Kind::kDouble:
        pass = cmp(col.doubles()[i], p.f64);
        break;
      case CompiledPredicate::Kind::kString:
        pass = p.dict_match[col.codes()[i]] != 0;
        break;
    }
  });
  return pass;
}

/// Zone-map refutation of one conjunct: true when no non-NULL value in
/// [min, max] can satisfy `value <op> literal`.
bool RangeRefutes(CmpOp op, const Value& min, const Value& max,
                  const Value& literal) {
  Result<int> lo = Value::Compare(min, literal);
  Result<int> hi = Value::Compare(max, literal);
  if (!lo.ok() || !hi.ok()) return false;  // incomparable: never prune
  switch (op) {
    case CmpOp::kEq: return *lo > 0 || *hi < 0;   // literal outside [min,max]
    case CmpOp::kNe: return *lo == 0 && *hi == 0; // every value == literal
    case CmpOp::kLt: return *lo >= 0;             // min >= literal
    case CmpOp::kLe: return *lo > 0;
    case CmpOp::kGt: return *hi <= 0;             // max <= literal
    case CmpOp::kGe: return *hi < 0;
  }
  return false;
}

}  // namespace

void ColumnVector::Append(const Value& v) {
  const bool null = v.is_null();
  nulls_.push_back(null ? 1 : 0);
  switch (type_) {
    case TypeId::kBool:
      ints_.push_back(null ? 0 : (v.bool_val() ? 1 : 0));
      break;
    case TypeId::kInt64:
      ints_.push_back(null ? 0 : v.int_val());
      break;
    case TypeId::kDouble:
      doubles_.push_back(null ? 0.0 : v.double_val());
      break;
    case TypeId::kString: {
      if (null) {
        codes_.push_back(0);
        break;
      }
      auto [it, inserted] = interned_.try_emplace(
          v.str_val(), static_cast<uint32_t>(dict_.size()));
      if (inserted) dict_.push_back(v.str_val());
      codes_.push_back(it->second);
      break;
    }
    case TypeId::kNull:
      // A column declared kNull only ever holds NULLs.
      break;
  }
}

int64_t ColumnVector::FindCode(const std::string& s) const {
  auto it = interned_.find(s);
  return it == interned_.end() ? -1 : static_cast<int64_t>(it->second);
}

Value ColumnVector::GetValue(size_t i) const {
  if (nulls_[i] != 0) return Value::Null();
  switch (type_) {
    case TypeId::kBool: return Value::Bool(ints_[i] != 0);
    case TypeId::kInt64: return Value::Int(ints_[i]);
    case TypeId::kDouble: return Value::Double(doubles_[i]);
    case TypeId::kString: return Value::Str(dict_[codes_[i]]);
    case TypeId::kNull: break;
  }
  return Value::Null();
}

std::string ScanPredicate::ToString(const Schema& schema) const {
  std::string lit = literal.type() == TypeId::kString
                        ? "'" + literal.ToString() + "'"
                        : literal.ToString();
  return schema.column(static_cast<size_t>(column)).name + " " +
         CmpOpSpelling(op) + " " + lit;
}

ColumnarTable::ColumnarTable(const Schema& schema) {
  columns_.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    columns_.emplace_back(schema.column(c).type);
  }
  zones_.resize(schema.num_columns());
}

void ColumnarTable::AppendRow(const Row& row) {
  const bool new_morsel = num_rows_ % kMorselRows == 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].Append(row[c]);
    std::vector<ZoneMap>& zones = zones_[c];
    if (new_morsel) zones.emplace_back();
    ZoneMap& zone = zones.back();
    const Value& v = row[c];
    if (v.is_null()) {
      ++zone.null_count;
      continue;
    }
    // Within one column all non-NULL values share a comparable type (the
    // Table widens ints into double columns on append), so Compare cannot
    // fail here.
    if (zone.min.is_null()) {
      zone.min = v;
      zone.max = v;
      continue;
    }
    Result<int> lo = Value::Compare(v, zone.min);
    if (lo.ok() && *lo < 0) zone.min = v;
    Result<int> hi = Value::Compare(v, zone.max);
    if (hi.ok() && *hi > 0) zone.max = v;
  }
  ++num_rows_;
}

bool ColumnarTable::CanPruneMorsel(
    size_t m, const std::vector<ScanPredicate>& preds) const {
  for (const ScanPredicate& p : preds) {
    const ZoneMap& zone = zones_[static_cast<size_t>(p.column)][m];
    // All-NULL morsel for a referenced column: every row fails the conjunct
    // (NULL comparisons are NULL, and WHERE rejects NULL).
    if (zone.min.is_null()) return true;
    if (RangeRefutes(p.op, zone.min, zone.max, p.literal)) return true;
  }
  return false;
}

std::vector<CompiledPredicate> ColumnarTable::CompilePredicates(
    const std::vector<ScanPredicate>& preds) const {
  std::vector<CompiledPredicate> out;
  out.reserve(preds.size());
  for (const ScanPredicate& p : preds) {
    CompiledPredicate c;
    c.op = p.op;
    c.column = p.column;
    const ColumnVector& col = columns_[static_cast<size_t>(p.column)];
    switch (col.type()) {
      case TypeId::kBool:
        c.kind = CompiledPredicate::Kind::kInt;
        c.i64 = p.literal.bool_val() ? 1 : 0;
        break;
      case TypeId::kInt64:
        if (p.literal.type() == TypeId::kInt64) {
          c.kind = CompiledPredicate::Kind::kInt;
          c.i64 = p.literal.int_val();
        } else {
          // Mirror Value::Compare: mixed numeric comparison widens both
          // sides to double.
          c.kind = CompiledPredicate::Kind::kIntAsDouble;
          c.f64 = p.literal.double_val();
        }
        break;
      case TypeId::kDouble:
        c.kind = CompiledPredicate::Kind::kDouble;
        c.f64 = p.literal.AsDouble();
        break;
      case TypeId::kString: {
        c.kind = CompiledPredicate::Kind::kString;
        c.dict_match.resize(col.dict_size());
        WithComparator(p.op, [&](auto cmp) {
          for (size_t j = 0; j < col.dict_size(); ++j) {
            const int rel = col.dict()[j].compare(p.literal.str_val());
            c.dict_match[j] = cmp(rel, 0) ? 1 : 0;
          }
        });
        break;
      }
      case TypeId::kNull:
        // Unreachable through lowering (a kNull column admits no type-sound
        // comparison literal); compile to "nothing matches".
        c.kind = CompiledPredicate::Kind::kString;
        break;
    }
    out.push_back(std::move(c));
  }
  return out;
}

void ColumnarTable::FilterRange(size_t begin, size_t end,
                                const std::vector<CompiledPredicate>& preds,
                                std::vector<uint32_t>* selection) const {
  end = std::min(end, num_rows_);
  if (begin >= end) return;
  if (preds.empty()) {
    for (size_t i = begin; i < end; ++i) {
      selection->push_back(static_cast<uint32_t>(i));
    }
    return;
  }

  // First conjunct appends matches from the dense range; later conjuncts
  // compact the selection in place.
  const size_t base = selection->size();
  {
    const CompiledPredicate& p = preds[0];
    const ColumnVector& col = columns_[static_cast<size_t>(p.column)];
    const uint8_t* nulls = col.nulls().data();
    WithComparator(p.op, [&](auto cmp) {
      switch (p.kind) {
        case CompiledPredicate::Kind::kInt: {
          const int64_t* vals = col.ints().data();
          for (size_t i = begin; i < end; ++i) {
            if (!nulls[i] && cmp(vals[i], p.i64)) {
              selection->push_back(static_cast<uint32_t>(i));
            }
          }
          break;
        }
        case CompiledPredicate::Kind::kIntAsDouble: {
          const int64_t* vals = col.ints().data();
          for (size_t i = begin; i < end; ++i) {
            if (!nulls[i] && cmp(static_cast<double>(vals[i]), p.f64)) {
              selection->push_back(static_cast<uint32_t>(i));
            }
          }
          break;
        }
        case CompiledPredicate::Kind::kDouble: {
          const double* vals = col.doubles().data();
          for (size_t i = begin; i < end; ++i) {
            if (!nulls[i] && cmp(vals[i], p.f64)) {
              selection->push_back(static_cast<uint32_t>(i));
            }
          }
          break;
        }
        case CompiledPredicate::Kind::kString: {
          const uint32_t* codes = col.codes().data();
          const uint8_t* match = p.dict_match.data();
          for (size_t i = begin; i < end; ++i) {
            if (!nulls[i] && match[codes[i]]) {
              selection->push_back(static_cast<uint32_t>(i));
            }
          }
          break;
        }
      }
    });
  }
  for (size_t k = 1; k < preds.size() && selection->size() > base; ++k) {
    const CompiledPredicate& p = preds[k];
    const ColumnVector& col = columns_[static_cast<size_t>(p.column)];
    size_t w = base;
    for (size_t r = base; r < selection->size(); ++r) {
      const uint32_t i = (*selection)[r];
      if (TestOne(col, p, i)) (*selection)[w++] = i;
    }
    selection->resize(w);
  }
}

bool ColumnarTable::RowMatches(
    size_t i, const std::vector<CompiledPredicate>& preds) const {
  for (const CompiledPredicate& p : preds) {
    if (!TestOne(columns_[static_cast<size_t>(p.column)], p, i)) return false;
  }
  return true;
}

void ColumnarTable::MaterializeRow(size_t i, Row* row) const {
  row->clear();
  row->reserve(columns_.size());
  for (const ColumnVector& col : columns_) {
    row->push_back(col.GetValue(i));
  }
}

}  // namespace gapply
