#include "src/storage/catalog.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace gapply {

namespace {

// Lowercased multiset of names, for order-insensitive column-set comparison.
std::vector<std::string> NormalizedSet(const std::vector<std::string>& names) {
  std::vector<std::string> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(ToLower(n));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Status Catalog::AddTable(std::unique_ptr<Table> table) {
  const std::string key = ToLower(table->name());
  if (tables_.count(key) > 0) {
    return Status::InvalidArgument("table already exists: " + table->name());
  }
  tables_[key] = std::move(table);
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) const {
  Table* t = FindTable(name);
  if (t == nullptr) return Status::NotFound("table not found: " + name);
  return t;
}

Table* Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

Status Catalog::SetPrimaryKey(const std::string& table,
                              std::vector<std::string> columns) {
  ASSIGN_OR_RETURN(Table * t, GetTable(table));
  if (columns.empty()) {
    return Status::InvalidArgument("primary key must have columns");
  }
  for (const std::string& c : columns) {
    RETURN_NOT_OK(t->schema().Resolve(c).status());
  }
  primary_keys_[ToLower(table)] = std::move(columns);
  return Status::OK();
}

std::vector<std::string> Catalog::PrimaryKey(const std::string& table) const {
  auto it = primary_keys_.find(ToLower(table));
  return it == primary_keys_.end() ? std::vector<std::string>{} : it->second;
}

Status Catalog::AddForeignKey(ForeignKey fk) {
  if (fk.child_columns.empty() ||
      fk.child_columns.size() != fk.parent_columns.size()) {
    return Status::InvalidArgument(
        "foreign key column lists must be nonempty and of equal length");
  }
  ASSIGN_OR_RETURN(Table * child, GetTable(fk.child_table));
  ASSIGN_OR_RETURN(Table * parent, GetTable(fk.parent_table));
  for (const std::string& c : fk.child_columns) {
    RETURN_NOT_OK(child->schema().Resolve(c).status());
  }
  for (const std::string& c : fk.parent_columns) {
    RETURN_NOT_OK(parent->schema().Resolve(c).status());
  }
  foreign_keys_.push_back(std::move(fk));
  return Status::OK();
}

bool Catalog::IsForeignKeyJoin(
    const std::string& child_table,
    const std::vector<std::string>& child_columns,
    const std::string& parent_table,
    const std::vector<std::string>& parent_columns) const {
  const std::vector<std::string> want_child = NormalizedSet(child_columns);
  const std::vector<std::string> want_parent = NormalizedSet(parent_columns);
  // The parent-side columns must be the parent's primary key: otherwise a
  // left row could match several right rows and groups would be inflated.
  const std::vector<std::string> pk =
      NormalizedSet(PrimaryKey(parent_table));
  if (pk.empty() || pk != want_parent) return false;
  for (const ForeignKey& fk : foreign_keys_) {
    if (!EqualsIgnoreCase(fk.child_table, child_table)) continue;
    if (!EqualsIgnoreCase(fk.parent_table, parent_table)) continue;
    if (NormalizedSet(fk.child_columns) == want_child &&
        NormalizedSet(fk.parent_columns) == want_parent) {
      return true;
    }
  }
  return false;
}

}  // namespace gapply
