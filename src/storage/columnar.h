#ifndef GAPPLY_STORAGE_COLUMNAR_H_
#define GAPPLY_STORAGE_COLUMNAR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/value.h"
#include "src/storage/schema.h"

namespace gapply {

/// \brief One column of a table as contiguous typed storage.
///
/// The dense representation per type (DESIGN.md §13):
///  - int64 and bool columns: `ints()` (bools stored as 0/1);
///  - double columns: `doubles()`;
///  - string columns: dictionary-encoded — `codes()` holds one uint32 code
///    per row indexing into `dict()`, the table-lifetime dictionary of
///    distinct strings in first-appearance order. Codes of NULL rows are 0
///    and meaningless.
/// NULLs are tracked in a parallel byte-per-row marker array (`nulls()`,
/// 1 = NULL); the dense slot of a NULL row holds an unspecified value and
/// must not be interpreted.
///
/// Appends must already be schema-checked (the owning Table validates and
/// widens before handing the value down).
class ColumnVector {
 public:
  explicit ColumnVector(TypeId type) : type_(type) {}

  TypeId type() const { return type_; }
  size_t size() const { return nulls_.size(); }

  void Append(const Value& v);

  bool IsNull(size_t i) const { return nulls_[i] != 0; }
  const std::vector<uint8_t>& nulls() const { return nulls_; }
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint32_t>& codes() const { return codes_; }
  const std::vector<std::string>& dict() const { return dict_; }

  /// Number of distinct non-NULL strings ever appended — the exact NDV of a
  /// string column (values are never deleted), which ANALYZE reads off
  /// instead of rescanning.
  size_t dict_size() const { return dict_.size(); }

  /// Dictionary code of `s`, or a negative value when `s` never appeared
  /// (no row of this column can equal it).
  int64_t FindCode(const std::string& s) const;

  /// Rematerializes row `i` as a Value (NULL-aware; strings copy out of the
  /// dictionary).
  Value GetValue(size_t i) const;

 private:
  TypeId type_;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;      // int64 + bool columns
  std::vector<double> doubles_;    // double columns
  std::vector<uint32_t> codes_;    // string columns: index into dict_
  std::vector<std::string> dict_;
  std::unordered_map<std::string, uint32_t> interned_;
};

/// Per-column, per-morsel statistics maintained incrementally on append.
/// `min`/`max` range over the morsel's non-NULL values and are NULL while
/// the morsel has none. Sound for pruning WHERE conjuncts because a NULL
/// operand makes any comparison NULL, which WHERE rejects — so NULL rows
/// can never satisfy a pushed predicate and need no min/max coverage.
struct ZoneMap {
  Value min;
  Value max;
  uint64_t null_count = 0;
};

/// A pushed-down scan conjunct `column <op> literal`. The literal is
/// non-NULL and type-compatible with the column under Value::Compare
/// (numeric with numeric, string with string, bool with bool) — lowering
/// only extracts conjuncts meeting that bar, so evaluating one can never
/// raise a type error.
struct ScanPredicate {
  int column = 0;
  value_ops::CmpOp op = value_ops::CmpOp::kEq;
  Value literal;

  /// SQL-ish rendering against `schema`, e.g. "v > 250".
  std::string ToString(const Schema& schema) const;
};

/// \brief A ScanPredicate lowered onto one column's dense representation,
/// built once per scan Open (CompilePredicates) so the per-row loop touches
/// no Value machinery.
///
/// String predicates are resolved against the dictionary up front: per
/// dictionary code, one pass/fail byte — the row loop then tests
/// `dict_match[code]` instead of comparing strings.
struct CompiledPredicate {
  enum class Kind {
    kInt,          // int64/bool column, exact integer comparison vs i64
    kIntAsDouble,  // int64 column vs a double literal (Value::Compare widens)
    kDouble,       // double column vs numeric literal, as double
    kString,       // string column via dict_match
  };
  Kind kind = Kind::kInt;
  value_ops::CmpOp op = value_ops::CmpOp::kEq;
  int column = 0;
  int64_t i64 = 0;
  double f64 = 0;
  std::vector<uint8_t> dict_match;
};

/// \brief Columnar view of a table: one ColumnVector per schema column plus
/// zone maps over fixed-size morsels of kMorselRows rows.
///
/// Morsel m covers rows [m * kMorselRows, (m+1) * kMorselRows); the last
/// morsel may be partial. Zone maps are built incrementally as rows arrive,
/// so the view is always consistent with the row count — there is no
/// separate "finalize" step.
class ColumnarTable {
 public:
  static constexpr size_t kMorselRows = 4096;

  explicit ColumnarTable(const Schema& schema);

  /// Appends one already-validated row (called under Table::Append).
  void AppendRow(const Row& row);

  size_t num_rows() const { return num_rows_; }
  size_t num_morsels() const {
    return (num_rows_ + kMorselRows - 1) / kMorselRows;
  }
  const ColumnVector& column(size_t c) const { return columns_[c]; }

  /// Zone map of column `c` over morsel `m`.
  const ZoneMap& zone(size_t c, size_t m) const {
    return zones_[c][m];
  }

  /// True when the zone maps prove no row of morsel `m` can satisfy every
  /// predicate in `preds` — i.e. some conjunct is statically false over the
  /// morsel's value range (or the referenced column is entirely NULL there).
  /// A morsel that cannot be pruned may still contain zero matching rows.
  bool CanPruneMorsel(size_t m, const std::vector<ScanPredicate>& preds) const;

  /// Lowers `preds` onto this table's dense representation (dictionary
  /// lookups resolved, literals widened). Call once per scan Open; the
  /// compiled form stays valid as long as the table is not appended to.
  std::vector<CompiledPredicate> CompilePredicates(
      const std::vector<ScanPredicate>& preds) const;

  /// Evaluates compiled `preds` (ANDed, SQL WHERE semantics: NULL rejects)
  /// over rows [begin, end) against the dense arrays and appends the
  /// indexes of passing rows to `*selection` (not cleared). `preds` may be
  /// empty, which selects every row in range.
  void FilterRange(size_t begin, size_t end,
                   const std::vector<CompiledPredicate>& preds,
                   std::vector<uint32_t>* selection) const;

  /// True iff row `i` satisfies every compiled predicate; NULL rejects.
  /// Row-at-a-time twin of FilterRange.
  bool RowMatches(size_t i,
                  const std::vector<CompiledPredicate>& preds) const;

  /// Rematerializes row `i` into `*row` (cleared first) from the dense
  /// arrays.
  void MaterializeRow(size_t i, Row* row) const;

 private:
  size_t num_rows_ = 0;
  std::vector<ColumnVector> columns_;
  std::vector<std::vector<ZoneMap>> zones_;  // [column][morsel]
};

}  // namespace gapply

#endif  // GAPPLY_STORAGE_COLUMNAR_H_
