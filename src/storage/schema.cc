#include "src/storage/schema.h"

#include "src/common/string_util.h"

namespace gapply {

std::string Column::FullName() const {
  if (qualifier.empty()) return name;
  return qualifier + "." + name;
}

Result<int> Schema::Resolve(const std::string& name,
                            const std::string& qualifier) const {
  int found = -1;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (!EqualsIgnoreCase(c.name, name)) continue;
    if (!qualifier.empty() && !EqualsIgnoreCase(c.qualifier, qualifier)) {
      continue;
    }
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference: " +
                                     (qualifier.empty()
                                          ? name
                                          : qualifier + "." + name));
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound("column not found: " +
                            (qualifier.empty() ? name
                                               : qualifier + "." + name));
  }
  return found;
}

int Schema::TryResolve(const std::string& name,
                       const std::string& qualifier) const {
  Result<int> r = Resolve(name, qualifier);
  return r.ok() ? r.value() : -1;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& qualifier) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.qualifier = qualifier;
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].FullName();
    out += ":";
    out += TypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

bool Schema::EquivalentTo(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name)) {
      return false;
    }
    if (columns_[i].type != other.columns_[i].type) return false;
  }
  return true;
}

}  // namespace gapply
