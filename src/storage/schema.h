#ifndef GAPPLY_STORAGE_SCHEMA_H_
#define GAPPLY_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/value.h"

namespace gapply {

/// \brief A named, typed output column.
///
/// `qualifier` is the table alias (or derived-relation name) the column came
/// from; it participates in name resolution (`t.col` vs `col`) and in column
/// provenance tracking for the invariant-grouping rule.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  std::string qualifier;

  Column() = default;
  Column(std::string name_in, TypeId type_in, std::string qualifier_in = "")
      : name(std::move(name_in)),
        type(type_in),
        qualifier(std::move(qualifier_in)) {}

  /// "qualifier.name" or just "name" when unqualified.
  std::string FullName() const;
};

/// \brief An ordered list of columns describing rows flowing between
/// operators.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column column) { columns_.push_back(std::move(column)); }

  /// Resolves a (possibly qualified) column name to its index.
  /// Name matching is case-insensitive. Errors: NotFound if no match,
  /// InvalidArgument if the reference is ambiguous.
  Result<int> Resolve(const std::string& name,
                      const std::string& qualifier = "") const;

  /// Like Resolve but returns -1 instead of an error (no-throw probing).
  int TryResolve(const std::string& name,
                 const std::string& qualifier = "") const;

  /// Concatenation (join output schema: left columns then right columns).
  static Schema Concat(const Schema& left, const Schema& right);

  /// Copy with every column's qualifier replaced (derived-table aliasing).
  Schema WithQualifier(const std::string& qualifier) const;

  /// "(q1.name1:type1, name2:type2, ...)"
  std::string ToString() const;

  /// Same column names and types in the same order (qualifiers ignored).
  bool EquivalentTo(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace gapply

#endif  // GAPPLY_STORAGE_SCHEMA_H_
