#include "src/storage/table.h"

namespace gapply {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        name_ + " arity " + std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    Value& v = row[i];
    if (v.is_null()) continue;
    const TypeId want = schema_.column(i).type;
    if (v.type() == want) continue;
    if (want == TypeId::kDouble && v.type() == TypeId::kInt64) {
      v = Value::Double(static_cast<double>(v.int_val()));
      continue;
    }
    return Status::TypeError("column " + schema_.column(i).name +
                             " expects " + TypeName(want) + ", got " +
                             TypeName(v.type()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::AppendAll(std::vector<Row> rows) {
  for (Row& row : rows) {
    RETURN_NOT_OK(Append(std::move(row)));
  }
  return Status::OK();
}

}  // namespace gapply
