#include "src/storage/table.h"

namespace gapply {

Status Table::CheckAndWiden(Row* row) const {
  if (row->size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row->size()) + " does not match table " +
        name_ + " arity " + std::to_string(schema_.num_columns()));
  }
  for (size_t i = 0; i < row->size(); ++i) {
    Value& v = (*row)[i];
    if (v.is_null()) continue;
    const TypeId want = schema_.column(i).type;
    if (v.type() == want) continue;
    if (want == TypeId::kDouble && v.type() == TypeId::kInt64) {
      v = Value::Double(static_cast<double>(v.int_val()));
      continue;
    }
    return Status::TypeError("column " + schema_.column(i).name +
                             " expects " + TypeName(want) + ", got " +
                             TypeName(v.type()));
  }
  return Status::OK();
}

Status Table::Append(Row row) {
  RETURN_NOT_OK(CheckAndWiden(&row));
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::AppendAll(std::vector<Row> rows) {
  // Validate (and widen) every row before mutating anything, so a bad row
  // anywhere in the batch leaves the table untouched.
  for (Row& row : rows) {
    RETURN_NOT_OK(CheckAndWiden(&row));
  }
  rows_.reserve(rows_.size() + rows.size());
  for (Row& row : rows) {
    rows_.push_back(std::move(row));
  }
  return Status::OK();
}

const ColumnarTable& Table::columnar() const {
  // Fast path: already mirrored up to the current row count. Appends never
  // overlap execution, so `rows_.size()` is stable while readers race here.
  if (columnar_synced_.load(std::memory_order_acquire) != rows_.size()) {
    std::lock_guard<std::mutex> lock(columnar_mu_);
    for (size_t i = columnar_.num_rows(); i < rows_.size(); ++i) {
      columnar_.AppendRow(rows_[i]);
    }
    columnar_synced_.store(rows_.size(), std::memory_order_release);
  }
  return columnar_;
}

}  // namespace gapply
