#ifndef GAPPLY_STORAGE_CATALOG_H_
#define GAPPLY_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/storage/table.h"

namespace gapply {

/// \brief Declared key/foreign-key constraint between two base tables.
///
/// The invariant-grouping rule (paper §4.3, Definition 2) may only move a
/// GApply below joins that are *foreign-key joins*: the join condition
/// equates a foreign key on the outer (left) side with the referenced key of
/// the inner (right) side, so each left row matches exactly one right row and
/// group contents are preserved under multiset semantics.
struct ForeignKey {
  std::string child_table;                 // referencing table
  std::vector<std::string> child_columns;  // FK columns, in order
  std::string parent_table;                // referenced table
  std::vector<std::string> parent_columns; // referenced key columns, in order
};

/// \brief Name → table registry plus key constraint metadata and statistics
/// hooks.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a table. Fails if the name is taken.
  Status AddTable(std::unique_ptr<Table> table);

  /// Mutable lookup; NotFound if absent. Lookup is case-insensitive.
  Result<Table*> GetTable(const std::string& name) const;

  /// Nullptr if absent (no-error probing).
  Table* FindTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Declares the primary key of `table` (columns must exist).
  Status SetPrimaryKey(const std::string& table,
                       std::vector<std::string> columns);

  /// Returns the declared primary key of `table`, or an empty list.
  std::vector<std::string> PrimaryKey(const std::string& table) const;

  /// Declares a foreign key (tables and columns must exist; child and parent
  /// column lists must have equal, nonzero length).
  Status AddForeignKey(ForeignKey fk);

  const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }

  /// True iff a declared FK equates exactly `child_columns` of `child_table`
  /// (as a set) with the corresponding columns of `parent_table`, and the
  /// parent columns are the parent's primary key. Used to certify
  /// foreign-key joins for invariant grouping.
  bool IsForeignKeyJoin(const std::string& child_table,
                        const std::vector<std::string>& child_columns,
                        const std::string& parent_table,
                        const std::vector<std::string>& parent_columns) const;

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;  // key: lowercase
  std::map<std::string, std::vector<std::string>> primary_keys_;
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace gapply

#endif  // GAPPLY_STORAGE_CATALOG_H_
