#include "src/expr/expr.h"

#include <cassert>
#include <cstdlib>

namespace gapply {

namespace {

using value_ops::CmpOp;

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Static result type of a binary operator given operand types.
TypeId InferBinaryType(BinaryOp op, TypeId left, TypeId right) {
  if (IsComparison(op) || op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    return TypeId::kBool;
  }
  if (op == BinaryOp::kModulo) return TypeId::kInt64;
  if (left == TypeId::kDouble || right == TypeId::kDouble) {
    return TypeId::kDouble;
  }
  if (left == TypeId::kInt64 && right == TypeId::kInt64) {
    return TypeId::kInt64;
  }
  // NULL-typed operand: stay permissive; the value evaluator rechecks.
  return left == TypeId::kNull ? right : left;
}

TypeId InferUnaryType(UnaryOp op, TypeId child) {
  switch (op) {
    case UnaryOp::kNot:
    case UnaryOp::kIsNull:
    case UnaryOp::kIsNotNull:
      return TypeId::kBool;
    case UnaryOp::kNegate:
      return child;
  }
  return child;
}

// Applies a binary operator to two already-evaluated operands. Shared by
// the recursive Eval and the batch fast paths.
Result<Value> ApplyBinaryOp(BinaryOp op, const Value& l, const Value& r) {
  switch (op) {
    case BinaryOp::kAdd:
      return value_ops::Add(l, r);
    case BinaryOp::kSubtract:
      return value_ops::Subtract(l, r);
    case BinaryOp::kMultiply:
      return value_ops::Multiply(l, r);
    case BinaryOp::kDivide:
      return value_ops::Divide(l, r);
    case BinaryOp::kModulo:
      return value_ops::Modulo(l, r);
    case BinaryOp::kEq:
      return value_ops::CompareOp(CmpOp::kEq, l, r);
    case BinaryOp::kNe:
      return value_ops::CompareOp(CmpOp::kNe, l, r);
    case BinaryOp::kLt:
      return value_ops::CompareOp(CmpOp::kLt, l, r);
    case BinaryOp::kLe:
      return value_ops::CompareOp(CmpOp::kLe, l, r);
    case BinaryOp::kGt:
      return value_ops::CompareOp(CmpOp::kGt, l, r);
    case BinaryOp::kGe:
      return value_ops::CompareOp(CmpOp::kGe, l, r);
    case BinaryOp::kAnd:
      return value_ops::And(l, r);
    case BinaryOp::kOr:
      return value_ops::Or(l, r);
  }
  return Status::Internal("bad BinaryOp");
}

// A "leaf" operand can be read per row without recursion: a literal reads
// its constant, a column ref indexes the row. Anything else is nullptr.
bool IsLeafOperand(const Expr& e) {
  return e.kind() == ExprKind::kLiteral || e.kind() == ExprKind::kColumnRef;
}

// Pointer to the leaf operand's value for `row`; sets *error on a bad
// column index. Only call for IsLeafOperand expressions.
const Value* LeafOperandValue(const Expr& e, const Row& row, Status* error) {
  if (e.kind() == ExprKind::kLiteral) {
    return &static_cast<const LiteralExpr&>(e).value();
  }
  const int index = static_cast<const ColumnRefExpr&>(e).index();
  if (index < 0 || static_cast<size_t>(index) >= row.size()) {
    *error = Status::Internal("column index " + std::to_string(index) +
                              " out of range for row of arity " +
                              std::to_string(row.size()));
    return nullptr;
  }
  return &row[static_cast<size_t>(index)];
}

}  // namespace

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "not";
    case UnaryOp::kNegate:
      return "-";
    case UnaryOp::kIsNull:
      return "is null";
    case UnaryOp::kIsNotNull:
      return "is not null";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSubtract:
      return "-";
    case BinaryOp::kMultiply:
      return "*";
    case BinaryOp::kDivide:
      return "/";
    case BinaryOp::kModulo:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "and";
    case BinaryOp::kOr:
      return "or";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Expr (batch default)
// ---------------------------------------------------------------------------

Status Expr::EvalBatch(const RowBatch& batch, const EvalContext& ctx,
                       std::vector<Value>* out) const {
  out->clear();
  out->reserve(batch.size());
  for (const Row& row : batch.rows()) {
    ASSIGN_OR_RETURN(Value v, Eval(row, ctx));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// LiteralExpr
// ---------------------------------------------------------------------------

Result<Value> LiteralExpr::Eval(const Row&, const EvalContext&) const {
  return value_;
}

Status LiteralExpr::EvalBatch(const RowBatch& batch, const EvalContext&,
                              std::vector<Value>* out) const {
  out->assign(batch.size(), value_);
  return Status::OK();
}

ExprPtr LiteralExpr::Clone() const {
  return std::make_unique<LiteralExpr>(value_);
}

std::string LiteralExpr::ToString() const {
  if (value_.type() == TypeId::kString) return "'" + value_.str_val() + "'";
  return value_.ToString();
}

bool LiteralExpr::StructurallyEquals(const Expr& other) const {
  if (other.kind() != ExprKind::kLiteral) return false;
  return value_.Equals(static_cast<const LiteralExpr&>(other).value());
}

// ---------------------------------------------------------------------------
// ColumnRefExpr
// ---------------------------------------------------------------------------

Result<Value> ColumnRefExpr::Eval(const Row& row, const EvalContext&) const {
  if (index_ < 0 || static_cast<size_t>(index_) >= row.size()) {
    return Status::Internal("column index " + std::to_string(index_) +
                            " out of range for row of arity " +
                            std::to_string(row.size()));
  }
  return row[static_cast<size_t>(index_)];
}

Status ColumnRefExpr::EvalBatch(const RowBatch& batch, const EvalContext&,
                                std::vector<Value>* out) const {
  out->clear();
  out->reserve(batch.size());
  for (const Row& row : batch.rows()) {
    if (index_ < 0 || static_cast<size_t>(index_) >= row.size()) {
      return Status::Internal("column index " + std::to_string(index_) +
                              " out of range for row of arity " +
                              std::to_string(row.size()));
    }
    out->push_back(row[static_cast<size_t>(index_)]);
  }
  return Status::OK();
}

ExprPtr ColumnRefExpr::Clone() const {
  return std::make_unique<ColumnRefExpr>(index_, type_, name_);
}

std::string ColumnRefExpr::ToString() const {
  return name_.empty() ? "$" + std::to_string(index_) : name_;
}

bool ColumnRefExpr::StructurallyEquals(const Expr& other) const {
  if (other.kind() != ExprKind::kColumnRef) return false;
  return index_ == static_cast<const ColumnRefExpr&>(other).index();
}

Status ColumnRefExpr::RemapColumns(const std::vector<int>& old_to_new) {
  if (index_ < 0 || static_cast<size_t>(index_) >= old_to_new.size() ||
      old_to_new[static_cast<size_t>(index_)] < 0) {
    return Status::Internal("no remapping for column index " +
                            std::to_string(index_));
  }
  index_ = old_to_new[static_cast<size_t>(index_)];
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CorrelatedColumnRefExpr
// ---------------------------------------------------------------------------

Result<Value> CorrelatedColumnRefExpr::Eval(const Row&,
                                            const EvalContext& ctx) const {
  if (depth_ < 0 || static_cast<size_t>(depth_) >= ctx.outer_rows.size()) {
    return Status::Internal("correlated reference depth " +
                            std::to_string(depth_) +
                            " exceeds outer-row stack of size " +
                            std::to_string(ctx.outer_rows.size()));
  }
  const Row* outer = ctx.outer_rows[ctx.outer_rows.size() - 1 -
                                    static_cast<size_t>(depth_)];
  if (index_ < 0 || static_cast<size_t>(index_) >= outer->size()) {
    return Status::Internal("correlated column index out of range");
  }
  return (*outer)[static_cast<size_t>(index_)];
}

Status CorrelatedColumnRefExpr::EvalBatch(const RowBatch& batch,
                                          const EvalContext& ctx,
                                          std::vector<Value>* out) const {
  // The referenced value lives on the outer-row stack and is independent of
  // the batch rows: resolve it once and broadcast.
  static const Row kEmptyRow;
  ASSIGN_OR_RETURN(Value v, Eval(kEmptyRow, ctx));
  out->assign(batch.size(), std::move(v));
  return Status::OK();
}

ExprPtr CorrelatedColumnRefExpr::Clone() const {
  return std::make_unique<CorrelatedColumnRefExpr>(depth_, index_, type_,
                                                   name_);
}

std::string CorrelatedColumnRefExpr::ToString() const {
  return "outer(" + std::to_string(depth_) + ")." +
         (name_.empty() ? "$" + std::to_string(index_) : name_);
}

bool CorrelatedColumnRefExpr::StructurallyEquals(const Expr& other) const {
  if (other.kind() != ExprKind::kCorrelatedColumnRef) return false;
  const auto& o = static_cast<const CorrelatedColumnRefExpr&>(other);
  return depth_ == o.depth_ && index_ == o.index_;
}

// ---------------------------------------------------------------------------
// UnaryExpr
// ---------------------------------------------------------------------------

UnaryExpr::UnaryExpr(UnaryOp op, ExprPtr child)
    : Expr(ExprKind::kUnary, InferUnaryType(op, child->type())),
      op_(op),
      child_(std::move(child)) {}

Result<Value> UnaryExpr::Eval(const Row& row, const EvalContext& ctx) const {
  ASSIGN_OR_RETURN(Value v, child_->Eval(row, ctx));
  switch (op_) {
    case UnaryOp::kNot:
      return value_ops::Not(v);
    case UnaryOp::kNegate:
      return value_ops::Negate(v);
    case UnaryOp::kIsNull:
      return Value::Bool(v.is_null());
    case UnaryOp::kIsNotNull:
      return Value::Bool(!v.is_null());
  }
  return Status::Internal("bad UnaryOp");
}

ExprPtr UnaryExpr::Clone() const {
  return std::make_unique<UnaryExpr>(op_, child_->Clone());
}

std::string UnaryExpr::ToString() const {
  if (op_ == UnaryOp::kIsNull || op_ == UnaryOp::kIsNotNull) {
    return "(" + child_->ToString() + " " + UnaryOpName(op_) + ")";
  }
  return std::string(UnaryOpName(op_)) + "(" + child_->ToString() + ")";
}

bool UnaryExpr::StructurallyEquals(const Expr& other) const {
  if (other.kind() != ExprKind::kUnary) return false;
  const auto& o = static_cast<const UnaryExpr&>(other);
  return op_ == o.op_ && child_->StructurallyEquals(*o.child_);
}

// ---------------------------------------------------------------------------
// BinaryExpr
// ---------------------------------------------------------------------------

BinaryExpr::BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
    : Expr(ExprKind::kBinary,
           InferBinaryType(op, left->type(), right->type())),
      op_(op),
      left_(std::move(left)),
      right_(std::move(right)) {}

Result<Value> BinaryExpr::Eval(const Row& row, const EvalContext& ctx) const {
  // Short-circuit-free: SQL three-valued logic needs both sides anyway for
  // NULL handling, and our expressions have no side effects.
  ASSIGN_OR_RETURN(Value l, left_->Eval(row, ctx));
  ASSIGN_OR_RETURN(Value r, right_->Eval(row, ctx));
  return ApplyBinaryOp(op_, l, r);
}

Status BinaryExpr::EvalBatch(const RowBatch& batch, const EvalContext& ctx,
                             std::vector<Value>* out) const {
  out->clear();
  out->reserve(batch.size());
  if (IsLeafOperand(*left_) && IsLeafOperand(*right_)) {
    // Fast path: both operands are literals or column refs, so each row is
    // two pointer fetches plus one value_ops call — no tree recursion, no
    // operand materialization.
    Status error;
    for (const Row& row : batch.rows()) {
      const Value* l = LeafOperandValue(*left_, row, &error);
      if (l == nullptr) return error;
      const Value* r = LeafOperandValue(*right_, row, &error);
      if (r == nullptr) return error;
      ASSIGN_OR_RETURN(Value v, ApplyBinaryOp(op_, *l, *r));
      out->push_back(std::move(v));
    }
    return Status::OK();
  }
  // General tree: evaluate each side as a batch (recursively hitting fast
  // paths where available), then combine element-wise.
  std::vector<Value> lhs;
  std::vector<Value> rhs;
  RETURN_NOT_OK(left_->EvalBatch(batch, ctx, &lhs));
  RETURN_NOT_OK(right_->EvalBatch(batch, ctx, &rhs));
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSIGN_OR_RETURN(Value v, ApplyBinaryOp(op_, lhs[i], rhs[i]));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

ExprPtr BinaryExpr::Clone() const {
  return std::make_unique<BinaryExpr>(op_, left_->Clone(), right_->Clone());
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

bool BinaryExpr::StructurallyEquals(const Expr& other) const {
  if (other.kind() != ExprKind::kBinary) return false;
  const auto& o = static_cast<const BinaryExpr&>(other);
  return op_ == o.op_ && left_->StructurallyEquals(*o.left_) &&
         right_->StructurallyEquals(*o.right_);
}

// ---------------------------------------------------------------------------
// Construction helpers
// ---------------------------------------------------------------------------

ExprPtr Lit(Value v) { return std::make_unique<LiteralExpr>(std::move(v)); }
ExprPtr Lit(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr Lit(double v) { return Lit(Value::Double(v)); }
ExprPtr Lit(const char* v) { return Lit(Value::Str(v)); }

ExprPtr Col(const Schema& schema, int index) {
  const Column& c = schema.column(static_cast<size_t>(index));
  return std::make_unique<ColumnRefExpr>(index, c.type, c.name);
}

ExprPtr Col(const Schema& schema, const std::string& name) {
  Result<ExprPtr> r = ResolveColumn(schema, name);
  if (!r.ok()) {
    // Test/bench convenience path; a miss is a programming error.
    std::fprintf(stderr, "Col(%s): %s\n", name.c_str(),
                 r.status().ToString().c_str());
    std::abort();
  }
  return std::move(r).value();
}

Result<ExprPtr> ResolveColumn(const Schema& schema, const std::string& name,
                              const std::string& qualifier) {
  ASSIGN_OR_RETURN(int idx, schema.Resolve(name, qualifier));
  return Col(schema, idx);
}

ExprPtr Unary(UnaryOp op, ExprPtr child) {
  return std::make_unique<UnaryExpr>(op, std::move(child));
}

ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
}

ExprPtr Eq(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kEq, std::move(l), std::move(r));
}
ExprPtr Lt(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kLt, std::move(l), std::move(r));
}
ExprPtr Le(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kLe, std::move(l), std::move(r));
}
ExprPtr Gt(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kGt, std::move(l), std::move(r));
}
ExprPtr Ge(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kGe, std::move(l), std::move(r));
}
ExprPtr And(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kAnd, std::move(l), std::move(r));
}
ExprPtr Or(ExprPtr l, ExprPtr r) {
  return Binary(BinaryOp::kOr, std::move(l), std::move(r));
}

Result<bool> EvalPredicate(const Expr& pred, const Row& row,
                           const EvalContext& ctx) {
  ASSIGN_OR_RETURN(Value v, pred.Eval(row, ctx));
  if (v.is_null()) return false;  // SQL WHERE: UNKNOWN rejects
  if (v.type() != TypeId::kBool) {
    return Status::TypeError("predicate evaluated to " + v.ToString() +
                             " (" + TypeName(v.type()) + "), expected bool");
  }
  return v.bool_val();
}

Status EvalPredicateBatch(const Expr& pred, const RowBatch& batch,
                          const EvalContext& ctx, std::vector<char>* keep) {
  std::vector<Value> values;
  RETURN_NOT_OK(pred.EvalBatch(batch, ctx, &values));
  keep->clear();
  keep->reserve(values.size());
  for (const Value& v : values) {
    if (v.is_null()) {  // SQL WHERE: UNKNOWN rejects
      keep->push_back(0);
      continue;
    }
    if (v.type() != TypeId::kBool) {
      return Status::TypeError("predicate evaluated to " + v.ToString() +
                               " (" + TypeName(v.type()) +
                               "), expected bool");
    }
    keep->push_back(v.bool_val() ? 1 : 0);
  }
  return Status::OK();
}

std::vector<ExprPtr> SplitConjuncts(ExprPtr pred) {
  std::vector<ExprPtr> out;
  if (pred == nullptr) return out;
  if (pred->kind() == ExprKind::kBinary) {
    auto* bin = static_cast<BinaryExpr*>(pred.get());
    if (bin->op() == BinaryOp::kAnd) {
      // Clone the children out of the AND node (simple and safe; predicate
      // trees are tiny).
      std::vector<ExprPtr> left = SplitConjuncts(bin->left().Clone());
      std::vector<ExprPtr> right = SplitConjuncts(bin->right().Clone());
      for (ExprPtr& e : left) out.push_back(std::move(e));
      for (ExprPtr& e : right) out.push_back(std::move(e));
      return out;
    }
  }
  out.push_back(std::move(pred));
  return out;
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr out;
  for (ExprPtr& c : conjuncts) {
    if (out == nullptr) {
      out = std::move(c);
    } else {
      out = And(std::move(out), std::move(c));
    }
  }
  return out;
}

}  // namespace gapply
