#ifndef GAPPLY_EXPR_EXPR_H_
#define GAPPLY_EXPR_EXPR_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/row_batch.h"
#include "src/common/value.h"
#include "src/storage/schema.h"

namespace gapply {

/// \brief Runtime context available to expression evaluation.
///
/// Correlated column references (created when the binder turns a correlated
/// subquery into an Apply operator) read from `outer_rows`, a stack of the
/// rows currently bound by enclosing Apply operators. `outer_rows.back()` is
/// the innermost enclosing Apply's current row (depth 0).
struct EvalContext {
  std::vector<const Row*> outer_rows;
};

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kCorrelatedColumnRef,
  kUnary,
  kBinary,
};

enum class UnaryOp { kNot, kNegate, kIsNull, kIsNotNull };

enum class BinaryOp {
  kAdd,
  kSubtract,
  kMultiply,
  kDivide,
  kModulo,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// Returns the SQL spelling of an operator ("+", ">=", "and", ...).
const char* UnaryOpName(UnaryOp op);
const char* BinaryOpName(BinaryOp op);

/// \brief A *bound* scalar expression: column references are positional
/// indexes into the input row (or into an enclosing Apply's row).
///
/// Expressions are immutable after construction; the optimizer copies via
/// Clone and rewrites column indexes with RemapColumns.
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }
  /// Static result type, fixed at construction/binding time.
  TypeId type() const { return type_; }

  /// Evaluates against `row` (the current input tuple).
  virtual Result<Value> Eval(const Row& row, const EvalContext& ctx) const = 0;

  /// Evaluates against every row of `batch`, filling `*out` (cleared first)
  /// with one value per row. The base implementation loops `Eval`;
  /// literals, column references, and binary operators over them override
  /// it with non-recursive fast paths, which is where vectorized Filter /
  /// Project get their speedup. Semantics are identical to per-row Eval.
  virtual Status EvalBatch(const RowBatch& batch, const EvalContext& ctx,
                           std::vector<Value>* out) const;

  virtual std::unique_ptr<Expr> Clone() const = 0;
  virtual std::string ToString() const = 0;

  /// Structural equality (same tree, same indexes, same literals). Used to
  /// detect selections that duplicate a pushed covering range.
  virtual bool StructurallyEquals(const Expr& other) const = 0;

  /// Adds the input-row column indexes referenced anywhere in this tree
  /// (correlated references are *not* included; they name outer columns).
  virtual void CollectColumns(std::set<int>* indexes) const = 0;

  /// Rewrites every input-row column index i to old_to_new[i]. Every
  /// referenced index must be mapped (>= 0); returns an Internal error
  /// otherwise. Correlated references are left untouched.
  virtual Status RemapColumns(const std::vector<int>& old_to_new) = 0;

 protected:
  Expr(ExprKind kind, TypeId type) : kind_(kind), type_(type) {}

  ExprKind kind_;
  TypeId type_;
};

using ExprPtr = std::unique_ptr<Expr>;

/// A constant.
class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral, value.type()), value_(std::move(value)) {}

  const Value& value() const { return value_; }

  Result<Value> Eval(const Row& row, const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const EvalContext& ctx,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  bool StructurallyEquals(const Expr& other) const override;
  void CollectColumns(std::set<int>*) const override {}
  Status RemapColumns(const std::vector<int>&) override { return Status::OK(); }

 private:
  Value value_;
};

/// A positional reference into the input row.
class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(int index, TypeId type, std::string name)
      : Expr(ExprKind::kColumnRef, type),
        index_(index),
        name_(std::move(name)) {}

  int index() const { return index_; }
  const std::string& name() const { return name_; }

  Result<Value> Eval(const Row& row, const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const EvalContext& ctx,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  bool StructurallyEquals(const Expr& other) const override;
  void CollectColumns(std::set<int>* indexes) const override {
    indexes->insert(index_);
  }
  Status RemapColumns(const std::vector<int>& old_to_new) override;

 private:
  int index_;
  std::string name_;
};

/// A reference to a column of an enclosing Apply's current outer row.
/// depth 0 = innermost enclosing Apply.
class CorrelatedColumnRefExpr : public Expr {
 public:
  CorrelatedColumnRefExpr(int depth, int index, TypeId type, std::string name)
      : Expr(ExprKind::kCorrelatedColumnRef, type),
        depth_(depth),
        index_(index),
        name_(std::move(name)) {}

  int depth() const { return depth_; }
  int index() const { return index_; }
  const std::string& name() const { return name_; }

  Result<Value> Eval(const Row& row, const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const EvalContext& ctx,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  bool StructurallyEquals(const Expr& other) const override;
  void CollectColumns(std::set<int>*) const override {}
  Status RemapColumns(const std::vector<int>&) override { return Status::OK(); }

 private:
  int depth_;
  int index_;
  std::string name_;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr child);

  UnaryOp op() const { return op_; }
  const Expr& child() const { return *child_; }

  Result<Value> Eval(const Row& row, const EvalContext& ctx) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  bool StructurallyEquals(const Expr& other) const override;
  void CollectColumns(std::set<int>* indexes) const override {
    child_->CollectColumns(indexes);
  }
  Status RemapColumns(const std::vector<int>& old_to_new) override {
    return child_->RemapColumns(old_to_new);
  }

 private:
  UnaryOp op_;
  ExprPtr child_;
};

class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right);

  BinaryOp op() const { return op_; }
  const Expr& left() const { return *left_; }
  const Expr& right() const { return *right_; }

  Result<Value> Eval(const Row& row, const EvalContext& ctx) const override;
  Status EvalBatch(const RowBatch& batch, const EvalContext& ctx,
                   std::vector<Value>* out) const override;
  ExprPtr Clone() const override;
  std::string ToString() const override;
  bool StructurallyEquals(const Expr& other) const override;
  void CollectColumns(std::set<int>* indexes) const override {
    left_->CollectColumns(indexes);
    right_->CollectColumns(indexes);
  }
  Status RemapColumns(const std::vector<int>& old_to_new) override {
    RETURN_NOT_OK(left_->RemapColumns(old_to_new));
    return right_->RemapColumns(old_to_new);
  }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

// ---------------------------------------------------------------------------
// Construction helpers (used by the plan-builder API and tests).
// ---------------------------------------------------------------------------

ExprPtr Lit(Value v);
ExprPtr Lit(int64_t v);
ExprPtr Lit(double v);
ExprPtr Lit(const char* v);

/// Bound column reference by position (type/name looked up in `schema`).
ExprPtr Col(const Schema& schema, int index);

/// Bound column reference by (possibly qualified) name; aborts on failure —
/// intended for tests and benches where the schema is known. Prefer
/// `ResolveColumn` in production paths.
ExprPtr Col(const Schema& schema, const std::string& name);

/// Fallible bound column reference.
Result<ExprPtr> ResolveColumn(const Schema& schema, const std::string& name,
                              const std::string& qualifier = "");

ExprPtr Unary(UnaryOp op, ExprPtr child);
ExprPtr Binary(BinaryOp op, ExprPtr left, ExprPtr right);
ExprPtr Eq(ExprPtr l, ExprPtr r);
ExprPtr Lt(ExprPtr l, ExprPtr r);
ExprPtr Le(ExprPtr l, ExprPtr r);
ExprPtr Gt(ExprPtr l, ExprPtr r);
ExprPtr Ge(ExprPtr l, ExprPtr r);
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);

/// Evaluates a predicate for operator filtering: NULL and false both reject
/// (SQL WHERE semantics).
Result<bool> EvalPredicate(const Expr& pred, const Row& row,
                           const EvalContext& ctx);

/// Batch form of EvalPredicate: fills `*keep` (cleared first) with one 0/1
/// flag per batch row. Uses EvalBatch, so comparison predicates over
/// literals/column refs run the non-recursive fast path.
Status EvalPredicateBatch(const Expr& pred, const RowBatch& batch,
                          const EvalContext& ctx, std::vector<char>* keep);

/// Splits a predicate on AND into its conjuncts (ownership transferred).
std::vector<ExprPtr> SplitConjuncts(ExprPtr pred);

/// Combines conjuncts with AND (returns nullptr for an empty list).
ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts);

}  // namespace gapply

#endif  // GAPPLY_EXPR_EXPR_H_
