#include "src/expr/aggregate.h"

#include <unordered_set>

namespace gapply {

namespace {

struct ValueHashFn {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEqFn {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

class CountStarAccumulator : public AggAccumulator {
 public:
  Status Add(const Value&) override {
    ++count_;
    return Status::OK();
  }
  Value Finish() const override { return Value::Int(count_); }
  Status Merge(const AggAccumulator& other) override {
    count_ += static_cast<const CountStarAccumulator&>(other).count_;
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

class CountAccumulator : public AggAccumulator {
 public:
  Status Add(const Value& v) override {
    if (!v.is_null()) ++count_;
    return Status::OK();
  }
  Value Finish() const override { return Value::Int(count_); }
  Status Merge(const AggAccumulator& other) override {
    count_ += static_cast<const CountAccumulator&>(other).count_;
    return Status::OK();
  }

 private:
  int64_t count_ = 0;
};

class SumAccumulator : public AggAccumulator {
 public:
  Status Add(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (!IsNumeric(v.type())) {
      return Status::TypeError("sum over non-numeric value");
    }
    if (v.type() == TypeId::kDouble) all_ints_ = false;
    sum_ += v.AsDouble();
    int_sum_ += v.type() == TypeId::kInt64 ? v.int_val() : 0;
    seen_ = true;
    return Status::OK();
  }
  Value Finish() const override {
    if (!seen_) return Value::Null();
    return all_ints_ ? Value::Int(int_sum_) : Value::Double(sum_);
  }
  Status Merge(const AggAccumulator& other) override {
    const auto& o = static_cast<const SumAccumulator&>(other);
    sum_ += o.sum_;
    int_sum_ += o.int_sum_;
    all_ints_ = all_ints_ && o.all_ints_;
    seen_ = seen_ || o.seen_;
    return Status::OK();
  }

 private:
  double sum_ = 0;
  int64_t int_sum_ = 0;
  bool all_ints_ = true;
  bool seen_ = false;
};

class AvgAccumulator : public AggAccumulator {
 public:
  Status Add(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (!IsNumeric(v.type())) {
      return Status::TypeError("avg over non-numeric value");
    }
    sum_ += v.AsDouble();
    ++count_;
    return Status::OK();
  }
  Value Finish() const override {
    if (count_ == 0) return Value::Null();
    return Value::Double(sum_ / static_cast<double>(count_));
  }

 private:
  double sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxAccumulator : public AggAccumulator {
 public:
  explicit MinMaxAccumulator(bool is_min) : is_min_(is_min) {}

  Status Add(const Value& v) override {
    if (v.is_null()) return Status::OK();
    if (best_.is_null()) {
      best_ = v;
      return Status::OK();
    }
    ASSIGN_OR_RETURN(int c, Value::Compare(v, best_));
    if ((is_min_ && c < 0) || (!is_min_ && c > 0)) best_ = v;
    return Status::OK();
  }
  Value Finish() const override { return best_; }
  Status Merge(const AggAccumulator& other) override {
    return Add(static_cast<const MinMaxAccumulator&>(other).best_);
  }

 private:
  bool is_min_;
  Value best_;  // NULL until first non-NULL input
};

/// Forwards only the first occurrence of each distinct value.
class DistinctAccumulator : public AggAccumulator {
 public:
  explicit DistinctAccumulator(std::unique_ptr<AggAccumulator> inner)
      : inner_(std::move(inner)) {}

  Status Add(const Value& v) override {
    if (!seen_.insert(v).second) return Status::OK();
    return inner_->Add(v);
  }
  Value Finish() const override { return inner_->Finish(); }

 private:
  std::unique_ptr<AggAccumulator> inner_;
  std::unordered_set<Value, ValueHashFn, ValueEqFn> seen_;
};

}  // namespace

Status AggAccumulator::Merge(const AggAccumulator&) {
  return Status::Internal(
      "accumulator kind does not support exact partial-aggregate merge");
}

bool AggregateMergeIsExact(const std::vector<AggregateDesc>& aggs) {
  for (const AggregateDesc& a : aggs) {
    if (a.distinct) return false;
    switch (a.kind) {
      case AggKind::kCountStar:
      case AggKind::kCount:
      case AggKind::kMin:
      case AggKind::kMax:
        break;
      case AggKind::kSum:
        if (a.arg == nullptr || a.arg->type() != TypeId::kInt64) return false;
        break;
      case AggKind::kAvg:
        return false;
    }
  }
  return true;
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

AggregateDesc AggregateDesc::Clone() const {
  AggregateDesc out;
  out.kind = kind;
  out.arg = arg == nullptr ? nullptr : arg->Clone();
  out.distinct = distinct;
  out.output_name = output_name;
  return out;
}

std::vector<AggregateDesc> CloneAggregates(
    const std::vector<AggregateDesc>& aggs) {
  std::vector<AggregateDesc> out;
  out.reserve(aggs.size());
  for (const AggregateDesc& a : aggs) out.push_back(a.Clone());
  return out;
}

TypeId AggregateDesc::OutputType() const {
  switch (kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      return TypeId::kInt64;
    case AggKind::kAvg:
      return TypeId::kDouble;
    case AggKind::kSum:
    case AggKind::kMin:
    case AggKind::kMax:
      return arg == nullptr ? TypeId::kNull : arg->type();
  }
  return TypeId::kNull;
}

std::string AggregateDesc::ToString() const {
  if (kind == AggKind::kCountStar) return "count(*)";
  std::string out = AggKindName(kind);
  out += "(";
  if (distinct) out += "distinct ";
  out += arg == nullptr ? "?" : arg->ToString();
  out += ")";
  return out;
}

std::unique_ptr<AggAccumulator> CreateAccumulator(AggKind kind,
                                                  bool distinct) {
  std::unique_ptr<AggAccumulator> acc;
  switch (kind) {
    case AggKind::kCountStar:
      acc = std::make_unique<CountStarAccumulator>();
      break;
    case AggKind::kCount:
      acc = std::make_unique<CountAccumulator>();
      break;
    case AggKind::kSum:
      acc = std::make_unique<SumAccumulator>();
      break;
    case AggKind::kAvg:
      acc = std::make_unique<AvgAccumulator>();
      break;
    case AggKind::kMin:
      acc = std::make_unique<MinMaxAccumulator>(/*is_min=*/true);
      break;
    case AggKind::kMax:
      acc = std::make_unique<MinMaxAccumulator>(/*is_min=*/false);
      break;
  }
  if (distinct && kind != AggKind::kCountStar) {
    acc = std::make_unique<DistinctAccumulator>(std::move(acc));
  }
  return acc;
}

AggregateDesc CountStar(std::string name) {
  return AggregateDesc(AggKind::kCountStar, nullptr, std::move(name));
}
AggregateDesc Count(ExprPtr arg, std::string name, bool distinct) {
  return AggregateDesc(AggKind::kCount, std::move(arg), std::move(name),
                       distinct);
}
AggregateDesc Sum(ExprPtr arg, std::string name) {
  return AggregateDesc(AggKind::kSum, std::move(arg), std::move(name));
}
AggregateDesc Avg(ExprPtr arg, std::string name) {
  return AggregateDesc(AggKind::kAvg, std::move(arg), std::move(name));
}
AggregateDesc Min(ExprPtr arg, std::string name) {
  return AggregateDesc(AggKind::kMin, std::move(arg), std::move(name));
}
AggregateDesc Max(ExprPtr arg, std::string name) {
  return AggregateDesc(AggKind::kMax, std::move(arg), std::move(name));
}

Result<Row> ComputeAggregates(const std::vector<AggregateDesc>& aggs,
                              const std::vector<Row>& rows,
                              const EvalContext& ctx) {
  std::vector<std::unique_ptr<AggAccumulator>> accs;
  accs.reserve(aggs.size());
  for (const AggregateDesc& a : aggs) {
    accs.push_back(CreateAccumulator(a.kind, a.distinct));
  }
  for (const Row& row : rows) {
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (aggs[i].kind == AggKind::kCountStar) {
        RETURN_NOT_OK(accs[i]->Add(Value::Bool(true)));
      } else {
        ASSIGN_OR_RETURN(Value v, aggs[i].arg->Eval(row, ctx));
        RETURN_NOT_OK(accs[i]->Add(v));
      }
    }
  }
  Row out;
  out.reserve(aggs.size());
  for (const auto& acc : accs) out.push_back(acc->Finish());
  return out;
}

}  // namespace gapply
