#ifndef GAPPLY_EXPR_AGGREGATE_H_
#define GAPPLY_EXPR_AGGREGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/value.h"
#include "src/expr/expr.h"

namespace gapply {

/// SQL aggregate functions supported by groupby / scalar aggregation.
enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind kind);

/// \brief One aggregate computed by a GroupBy or ScalarAggregate operator.
struct AggregateDesc {
  AggKind kind = AggKind::kCountStar;
  ExprPtr arg;  // nullptr for count(*)
  bool distinct = false;
  std::string output_name;

  AggregateDesc() = default;
  AggregateDesc(AggKind kind_in, ExprPtr arg_in, std::string output_name_in,
                bool distinct_in = false)
      : kind(kind_in),
        arg(std::move(arg_in)),
        distinct(distinct_in),
        output_name(std::move(output_name_in)) {}

  AggregateDesc Clone() const;

  /// Output column type. COUNT → int64; AVG → double; SUM/MIN/MAX → the
  /// argument's type (SUM of int64 stays int64).
  TypeId OutputType() const;

  /// "sum(distinct x)" style rendering for plan printing.
  std::string ToString() const;
};

/// Element-wise AggregateDesc::Clone over a descriptor list (operator and
/// lowering code copy aggregate lists when duplicating plans).
std::vector<AggregateDesc> CloneAggregates(
    const std::vector<AggregateDesc>& aggs);

/// \brief Streaming accumulator for one aggregate over one group.
///
/// SQL semantics: NULL inputs are ignored (except count(*)); on empty input
/// COUNT yields 0 and the others yield NULL — the reason scalar aggregation
/// never has emptyOnEmpty in the paper's analysis (§4.1).
class AggAccumulator {
 public:
  virtual ~AggAccumulator() = default;
  virtual Status Add(const Value& v) = 0;
  virtual Value Finish() const = 0;

  /// Folds `other` (an accumulator of the same dynamic type, fed a disjoint
  /// row partition) into this one. Only the kinds for which the merge is
  /// *exact* — bit-for-bit equal to feeding all rows into one accumulator in
  /// any order — implement it: count(*), count, min, max, and sum over
  /// integer inputs. The default errors; callers gate parallel partial
  /// aggregation on `AggregateMergeIsExact` so it is never reached.
  virtual Status Merge(const AggAccumulator& other);
};

/// True iff every descriptor can be computed by merging per-partition
/// partial accumulators with results bit-for-bit identical to a single
/// serial pass: no DISTINCT (partitions may share values), no AVG and no
/// SUM over doubles (floating-point addition is not associative, so
/// re-associating partial sums changes low bits).
bool AggregateMergeIsExact(const std::vector<AggregateDesc>& aggs);

/// Creates an accumulator; `distinct` wraps it so duplicate inputs (grouping
/// equality) are counted once.
std::unique_ptr<AggAccumulator> CreateAccumulator(AggKind kind, bool distinct);

/// Convenience helpers for building descriptors.
AggregateDesc CountStar(std::string name = "count");
AggregateDesc Count(ExprPtr arg, std::string name = "count",
                    bool distinct = false);
AggregateDesc Sum(ExprPtr arg, std::string name = "sum");
AggregateDesc Avg(ExprPtr arg, std::string name = "avg");
AggregateDesc Min(ExprPtr arg, std::string name = "min");
AggregateDesc Max(ExprPtr arg, std::string name = "max");

/// Evaluates `aggs` over `rows` (one group) in one pass; returns one output
/// value per descriptor. Used by the executor and as the reference
/// implementation in property tests.
Result<Row> ComputeAggregates(const std::vector<AggregateDesc>& aggs,
                              const std::vector<Row>& rows,
                              const EvalContext& ctx);

}  // namespace gapply

#endif  // GAPPLY_EXPR_AGGREGATE_H_
