#include "src/stats/stats.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/string_util.h"
#include "src/exec/filter_project_ops.h"
#include "src/storage/columnar.h"

namespace gapply {

double ColumnStats::FractionBelow(double v) const {
  if (min.is_null() || max.is_null()) return 0.0;
  const double lo = min.AsDouble();
  const double hi = max.AsDouble();
  if (v <= lo) return 0.0;
  if (v > hi) return 1.0;
  if (!histogram_bounds.empty()) {
    // Count full buckets below v; interpolate within the straddling bucket.
    const double per_bucket = 1.0 / static_cast<double>(
                                        histogram_bounds.size());
    double fraction = 0.0;
    double prev = lo;
    for (double bound : histogram_bounds) {
      if (v > bound) {
        fraction += per_bucket;
        prev = bound;
        continue;
      }
      if (bound > prev) {
        fraction += per_bucket * (v - prev) / (bound - prev);
      }
      return std::min(1.0, fraction);
    }
    return 1.0;
  }
  if (hi == lo) return 0.0;
  return (v - lo) / (hi - lo);
}

double ColumnStats::EqualitySelectivity() const {
  if (ndv <= 0) return 1.0;
  return 1.0 / static_cast<double>(ndv);
}

Status StatsManager::AnalyzeAll(const Catalog& catalog) {
  for (const std::string& name : catalog.TableNames()) {
    ASSIGN_OR_RETURN(Table * table, catalog.GetTable(name));
    RETURN_NOT_OK(Analyze(*table));
  }
  return Status::OK();
}

Status StatsManager::Analyze(const Table& table) {
  TableStats stats;
  stats.row_count = static_cast<int64_t>(table.num_rows());
  const size_t num_cols = table.schema().num_columns();
  stats.columns.resize(num_cols);

  // ANALYZE reads the columnar view instead of rescanning rows: min/max and
  // null counts fold straight out of the per-morsel zone maps, string NDV
  // is the dictionary size (exact — values are never deleted), and numeric
  // distincts/histograms gather from the dense arrays.
  const ColumnarTable& ct = table.columnar();
  const size_t num_morsels = ct.num_morsels();
  for (size_t c = 0; c < num_cols; ++c) {
    ColumnStats& col = stats.columns[c];
    const ColumnVector& cv = ct.column(c);
    for (size_t m = 0; m < num_morsels; ++m) {
      const ZoneMap& zone = ct.zone(c, m);
      col.null_count += static_cast<int64_t>(zone.null_count);
      if (zone.min.is_null()) continue;  // morsel has no non-NULL values
      if (col.min.is_null() || CompareForSort(zone.min, col.min) < 0) {
        col.min = zone.min;
      }
      if (col.max.is_null() || CompareForSort(zone.max, col.max) > 0) {
        col.max = zone.max;
      }
    }

    const size_t nrows = cv.size();
    std::vector<double> numeric_values;
    bool numeric = false;
    switch (cv.type()) {
      case TypeId::kString:
        col.ndv = static_cast<int64_t>(cv.dict_size());
        break;
      case TypeId::kBool: {
        bool seen[2] = {false, false};
        for (size_t i = 0; i < nrows; ++i) {
          if (!cv.IsNull(i)) seen[cv.ints()[i] != 0] = true;
        }
        col.ndv = static_cast<int64_t>(seen[0]) + static_cast<int64_t>(seen[1]);
        break;
      }
      case TypeId::kInt64: {
        numeric = true;
        std::unordered_set<int64_t> distinct;
        numeric_values.reserve(nrows);
        for (size_t i = 0; i < nrows; ++i) {
          if (cv.IsNull(i)) continue;
          distinct.insert(cv.ints()[i]);
          numeric_values.push_back(static_cast<double>(cv.ints()[i]));
        }
        col.ndv = static_cast<int64_t>(distinct.size());
        break;
      }
      case TypeId::kDouble: {
        numeric = true;
        std::unordered_set<double> distinct;
        numeric_values.reserve(nrows);
        for (size_t i = 0; i < nrows; ++i) {
          if (cv.IsNull(i)) continue;
          distinct.insert(cv.doubles()[i]);
          numeric_values.push_back(cv.doubles()[i]);
        }
        col.ndv = static_cast<int64_t>(distinct.size());
        break;
      }
      case TypeId::kNull:
        col.ndv = 0;
        break;
    }
    if (numeric && !numeric_values.empty() && histogram_buckets_ > 1) {
      std::sort(numeric_values.begin(), numeric_values.end());
      col.histogram_bounds.clear();
      const size_t n = numeric_values.size();
      for (int b = 1; b <= histogram_buckets_; ++b) {
        size_t idx = n * static_cast<size_t>(b) /
                         static_cast<size_t>(histogram_buckets_);
        if (idx == 0) idx = 1;
        col.histogram_bounds.push_back(numeric_values[idx - 1]);
      }
    }
  }
  stats_[ToLower(table.name())] = std::move(stats);
  return Status::OK();
}

const TableStats* StatsManager::Get(const std::string& table) const {
  auto it = stats_.find(ToLower(table));
  return it == stats_.end() ? nullptr : &it->second;
}

}  // namespace gapply
