#include "src/stats/stats.h"

#include <algorithm>
#include <unordered_set>

#include "src/common/string_util.h"
#include "src/exec/filter_project_ops.h"

namespace gapply {

namespace {

struct ValueHashFn {
  size_t operator()(const Value& v) const { return v.Hash(); }
};
struct ValueEqFn {
  bool operator()(const Value& a, const Value& b) const { return a.Equals(b); }
};

}  // namespace

double ColumnStats::FractionBelow(double v) const {
  if (min.is_null() || max.is_null()) return 0.0;
  const double lo = min.AsDouble();
  const double hi = max.AsDouble();
  if (v <= lo) return 0.0;
  if (v > hi) return 1.0;
  if (!histogram_bounds.empty()) {
    // Count full buckets below v; interpolate within the straddling bucket.
    const double per_bucket = 1.0 / static_cast<double>(
                                        histogram_bounds.size());
    double fraction = 0.0;
    double prev = lo;
    for (double bound : histogram_bounds) {
      if (v > bound) {
        fraction += per_bucket;
        prev = bound;
        continue;
      }
      if (bound > prev) {
        fraction += per_bucket * (v - prev) / (bound - prev);
      }
      return std::min(1.0, fraction);
    }
    return 1.0;
  }
  if (hi == lo) return 0.0;
  return (v - lo) / (hi - lo);
}

double ColumnStats::EqualitySelectivity() const {
  if (ndv <= 0) return 1.0;
  return 1.0 / static_cast<double>(ndv);
}

Status StatsManager::AnalyzeAll(const Catalog& catalog) {
  for (const std::string& name : catalog.TableNames()) {
    ASSIGN_OR_RETURN(Table * table, catalog.GetTable(name));
    RETURN_NOT_OK(Analyze(*table));
  }
  return Status::OK();
}

Status StatsManager::Analyze(const Table& table) {
  TableStats stats;
  stats.row_count = static_cast<int64_t>(table.num_rows());
  const size_t num_cols = table.schema().num_columns();
  stats.columns.resize(num_cols);

  for (size_t c = 0; c < num_cols; ++c) {
    ColumnStats& col = stats.columns[c];
    std::unordered_set<Value, ValueHashFn, ValueEqFn> distinct;
    std::vector<double> numeric_values;
    const bool numeric = IsNumeric(table.schema().column(c).type);
    for (const Row& row : table.rows()) {
      const Value& v = row[c];
      if (v.is_null()) {
        ++col.null_count;
        continue;
      }
      distinct.insert(v);
      if (col.min.is_null() || CompareForSort(v, col.min) < 0) {
        col.min = v;
      }
      if (col.max.is_null() || CompareForSort(v, col.max) > 0) {
        col.max = v;
      }
      if (numeric) numeric_values.push_back(v.AsDouble());
    }
    col.ndv = static_cast<int64_t>(distinct.size());
    if (numeric && !numeric_values.empty() && histogram_buckets_ > 1) {
      std::sort(numeric_values.begin(), numeric_values.end());
      col.histogram_bounds.clear();
      const size_t n = numeric_values.size();
      for (int b = 1; b <= histogram_buckets_; ++b) {
        size_t idx = n * static_cast<size_t>(b) /
                         static_cast<size_t>(histogram_buckets_);
        if (idx == 0) idx = 1;
        col.histogram_bounds.push_back(numeric_values[idx - 1]);
      }
    }
  }
  stats_[ToLower(table.name())] = std::move(stats);
  return Status::OK();
}

const TableStats* StatsManager::Get(const std::string& table) const {
  auto it = stats_.find(ToLower(table));
  return it == stats_.end() ? nullptr : &it->second;
}

}  // namespace gapply
