#ifndef GAPPLY_STATS_STATS_H_
#define GAPPLY_STATS_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/value.h"
#include "src/storage/catalog.h"

namespace gapply {

/// \brief Per-column statistics gathered by ANALYZE.
struct ColumnStats {
  int64_t ndv = 0;         ///< number of distinct non-NULL values
  int64_t null_count = 0;
  Value min;               ///< NULL when the column has no non-NULL values
  Value max;

  /// Equi-depth histogram bucket upper bounds (numeric columns only; empty
  /// otherwise). With k bounds, bucket i holds ~1/k of the rows and spans
  /// (bounds[i-1], bounds[i]].
  std::vector<double> histogram_bounds;

  /// Fraction of non-NULL values strictly less than `v` (numeric only),
  /// estimated from the histogram, falling back to min/max interpolation.
  double FractionBelow(double v) const;

  /// Estimated selectivity of `col = literal`.
  double EqualitySelectivity() const;
};

/// \brief Statistics for one table.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;  // parallel to the table schema
};

/// \brief Registry of per-table statistics (the paper's §4.4 assumes the
/// optimizer has "statistics on a single group" derivable from ordinary
/// table statistics plus a uniformity assumption).
class StatsManager {
 public:
  StatsManager() = default;

  /// Scans every table in `catalog` and (re)builds its statistics.
  Status AnalyzeAll(const Catalog& catalog);

  /// Scans a single table.
  Status Analyze(const Table& table);

  /// Stats for `table`, or nullptr if never analyzed.
  const TableStats* Get(const std::string& table) const;

  /// Number of histogram buckets built per numeric column (default 32).
  void set_histogram_buckets(int n) { histogram_buckets_ = n; }

 private:
  std::map<std::string, TableStats> stats_;  // key: lowercase table name
  int histogram_buckets_ = 32;
};

}  // namespace gapply

#endif  // GAPPLY_STATS_STATS_H_
