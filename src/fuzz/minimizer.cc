#include "src/fuzz/minimizer.h"

#include <memory>
#include <utility>
#include <vector>

#include "src/sql/binder.h"
#include "src/sql/parser.h"
#include "src/sql/printer.h"

namespace gapply::fuzz {

namespace {

using sql::Query;
using sql::SelectStmt;
using sql::SqlExpr;
using sql::SqlExprKind;
using sql::SqlExprPtr;

SqlExprPtr LitExpr(Value v) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

/// Walks a query enumerating (or applying) structural shrink edits. Sites
/// are numbered globally in visitation order; `target < 0` only counts.
/// Exactly one edit is applied per walk, after which the walk unwinds.
class EditWalker {
 public:
  explicit EditWalker(int target) : target_(target) {}

  int count() const { return count_; }
  bool applied() const { return applied_; }

  void WalkQuery(Query* q, SelectStmt* owner) {
    // Drop one UNION ALL branch (keeping at least one).
    if (q->branches.size() > 1) {
      for (size_t i = 0; i < q->branches.size(); ++i) {
        if (At()) {
          q->branches.erase(q->branches.begin() + static_cast<long>(i));
          return;
        }
      }
    }
    if (!q->order_by.empty() && At()) {
      q->order_by.clear();
      return;
    }
    // Drop one output column from every branch in lockstep (union
    // compatibility), fixing the owning gapply's rename list.
    const size_t arity = q->branches.front()->items.size();
    bool droppable = arity > 1;
    for (const auto& b : q->branches) {
      droppable = droppable && !b->select_star && b->gapply_pgq == nullptr &&
                  b->items.size() == arity;
    }
    if (droppable) {
      for (size_t col = 0; col < arity; ++col) {
        if (At()) {
          for (auto& b : q->branches) {
            b->items.erase(b->items.begin() + static_cast<long>(col));
          }
          if (owner != nullptr && owner->gapply_names.size() == arity) {
            owner->gapply_names.erase(owner->gapply_names.begin() +
                                      static_cast<long>(col));
          }
          return;
        }
      }
    }
    for (auto& b : q->branches) {
      WalkSelect(b.get());
      if (applied_) return;
    }
  }

 private:
  /// True iff this visitation is the targeted site.
  bool At() {
    if (count_++ == target_) {
      applied_ = true;
      return true;
    }
    return false;
  }

  void WalkSelect(SelectStmt* s) {
    if (s->where != nullptr) {
      if (At()) {
        s->where = nullptr;
        return;
      }
      if (s->where->kind == SqlExprKind::kBinary &&
          s->where->binary_op == BinaryOp::kAnd) {
        if (At()) {
          s->where = std::move(s->where->left);
          return;
        }
        if (At()) {
          s->where = std::move(s->where->right);
          return;
        }
      }
      WalkExpr(&s->where);
      if (applied_) return;
    }
    if (s->having != nullptr && At()) {
      s->having = nullptr;
      return;
    }
    if (s->group_by.size() > 1) {
      for (size_t i = 0; i < s->group_by.size(); ++i) {
        if (At()) {
          s->group_by.erase(s->group_by.begin() + static_cast<long>(i));
          return;
        }
      }
    }
    // Drop the joined table (candidates that still reference its columns
    // simply fail to bind and are rejected). The join predicate usually
    // has to go with it, so clear WHERE too.
    if (s->from.size() > 1 && At()) {
      s->from.pop_back();
      s->where = nullptr;
      return;
    }
    if (!s->gapply_names.empty() && At()) {
      s->gapply_names.clear();
      return;
    }
    if (s->gapply_pgq != nullptr) {
      WalkQuery(s->gapply_pgq.get(), s);
      if (applied_) return;
    }
  }

  /// Replaces subqueries with literals and descends into them.
  void WalkExpr(SqlExprPtr* e) {
    if (*e == nullptr || applied_) return;
    switch ((*e)->kind) {
      case SqlExprKind::kScalarSubquery:
        if (At()) {
          *e = LitExpr(Value::Int(1));
          return;
        }
        WalkQuery((*e)->subquery.get(), nullptr);
        return;
      case SqlExprKind::kExists:
        if (At()) {
          *e = LitExpr(Value::Bool(true));
          return;
        }
        WalkQuery((*e)->subquery.get(), nullptr);
        return;
      case SqlExprKind::kUnary:
        WalkExpr(&(*e)->left);
        return;
      case SqlExprKind::kBinary:
        WalkExpr(&(*e)->left);
        if (!applied_) WalkExpr(&(*e)->right);
        return;
      case SqlExprKind::kFuncCall:
        for (auto& arg : (*e)->args) {
          WalkExpr(&arg);
          if (applied_) return;
        }
        return;
      default:
        return;
    }
  }

  int target_;
  int count_ = 0;
  bool applied_ = false;
};

int CountEditSites(const std::string& sql) {
  Result<sql::QueryPtr> q = sql::Parse(sql);
  if (!q.ok()) return 0;
  EditWalker walker(-1);
  walker.WalkQuery(q->get(), nullptr);
  return walker.count();
}

/// Applies edit site `i`; returns the edited SQL or "" if unapplied.
std::string ApplyEdit(const std::string& sql, int i) {
  Result<sql::QueryPtr> q = sql::Parse(sql);
  if (!q.ok()) return "";
  EditWalker walker(i);
  walker.WalkQuery(q->get(), nullptr);
  if (!walker.applied()) return "";
  return sql::ToSql(**q);
}

}  // namespace

Result<MinimizeResult> MinimizeCase(const FuzzDataset& data,
                                    const std::string& sql,
                                    const OraclePair& failing,
                                    int max_evaluations) {
  MinimizeResult best;
  best.sql = sql;
  best.data = data;

  // Evaluates a candidate: still-binding AND still-mismatching.
  auto still_fails = [&](const std::string& cand_sql,
                         const FuzzDataset& cand_data,
                         Mismatch* out) -> bool {
    ++best.evaluations;
    Catalog catalog;
    StatsManager stats;
    if (!InstallDataset(cand_data, &catalog, &stats).ok()) return false;
    Result<LogicalOpPtr> plan = sql::ParseAndBind(catalog, cand_sql);
    if (!plan.ok()) return false;
    Result<std::vector<Mismatch>> mm =
        RunOracles(**plan, catalog, stats, {failing});
    if (!mm.ok() || mm->empty()) return false;
    if (out != nullptr) *out = mm->front();
    return true;
  };

  if (!still_fails(best.sql, best.data, &best.mismatch)) {
    return Status::InvalidArgument(
        "MinimizeCase: input does not reproduce the mismatch");
  }

  bool progressed = true;
  while (progressed && best.evaluations < max_evaluations) {
    progressed = false;

    // Phase 1: structural AST shrinking, first accepted edit wins.
    bool ast_progress = true;
    while (ast_progress && best.evaluations < max_evaluations) {
      ast_progress = false;
      const int sites = CountEditSites(best.sql);
      for (int i = 0; i < sites && best.evaluations < max_evaluations; ++i) {
        const std::string cand = ApplyEdit(best.sql, i);
        if (cand.empty() || cand == best.sql) continue;
        Mismatch mismatch;
        if (still_fails(cand, best.data, &mismatch)) {
          best.sql = cand;
          best.mismatch = mismatch;
          ast_progress = true;
          progressed = true;
          break;
        }
      }
    }

    // Phase 2: data shrinking — halve tables, then pluck single rows.
    // (Tables are addressed by role, not pointer: accepting a candidate
    // replaces best.data wholesale.)
    auto get_table = [](FuzzDataset* ds, bool is_fact) -> FuzzTable* {
      return is_fact ? &ds->fact : &*ds->dim;
    };
    auto shrink_table = [&](bool is_fact) {
      bool any = false;
      bool halved = true;
      while (halved && get_table(&best.data, is_fact)->rows.size() > 1 &&
             best.evaluations < max_evaluations) {
        halved = false;
        for (const bool front : {false, true}) {
          FuzzDataset cand = best.data;
          FuzzTable* t = get_table(&cand, is_fact);
          const size_t half = t->rows.size() / 2;
          if (half == 0) break;
          if (front) {
            t->rows.erase(t->rows.begin(),
                          t->rows.begin() + static_cast<long>(half));
          } else {
            t->rows.resize(t->rows.size() - half);
          }
          Mismatch mismatch;
          if (still_fails(best.sql, cand, &mismatch)) {
            best.data = std::move(cand);
            best.mismatch = mismatch;
            halved = true;
            any = true;
            break;
          }
        }
      }
      // Single-row plucking once the table is small.
      if (get_table(&best.data, is_fact)->rows.size() <= 12) {
        for (size_t i = 0;
             i < get_table(&best.data, is_fact)->rows.size() &&
             best.evaluations < max_evaluations;) {
          FuzzDataset cand = best.data;
          FuzzTable* t = get_table(&cand, is_fact);
          t->rows.erase(t->rows.begin() + static_cast<long>(i));
          Mismatch mismatch;
          if (still_fails(best.sql, cand, &mismatch)) {
            best.data = std::move(cand);
            best.mismatch = mismatch;
            any = true;
          } else {
            ++i;
          }
        }
      }
      return any;
    };

    // Note: dim rows are NOT shrunk below what the fact's FK references —
    // shrinking that breaks FK consistency simply stops reproducing or
    // fails Append, and gets rejected like any other candidate.
    if (shrink_table(/*is_fact=*/true)) progressed = true;
    if (best.data.dim.has_value() && shrink_table(/*is_fact=*/false)) {
      progressed = true;
    }
  }

  // Final size metric over the minimized bound plan.
  {
    Catalog catalog;
    StatsManager stats;
    RETURN_NOT_OK(InstallDataset(best.data, &catalog, &stats));
    ASSIGN_OR_RETURN(LogicalOpPtr plan,
                     sql::ParseAndBind(catalog, best.sql));
    best.plan_ops = CountPlanOps(*plan);
  }
  return best;
}

}  // namespace gapply::fuzz
