#ifndef GAPPLY_FUZZ_DIFFERENTIAL_H_
#define GAPPLY_FUZZ_DIFFERENTIAL_H_

#include <string>
#include <utility>
#include <vector>

#include "src/exec/lowering.h"
#include "src/exec/physical_op.h"
#include "src/optimizer/optimizer.h"
#include "src/plan/logical_plan.h"
#include "src/stats/stats.h"
#include "src/storage/catalog.h"

namespace gapply::fuzz {

/// One execution configuration: optimizer settings + lowering knobs +
/// batch size + which executor loop drives the root.
struct ExecSpec {
  std::string name;
  /// Run the optimizer over a clone of the plan first.
  bool optimize = false;
  Optimizer::Options opt;
  LoweringOptions lowering;
  size_t batch_size = 1024;
  /// Drive the root through ExecuteToVectorRows instead of ExecuteToVector.
  bool row_path = false;
  /// Execute with per-operator profiling on and assert the profile counter
  /// invariants (ValidateProfile) after a successful run: rows_in must
  /// equal the children's rows_out, cumulative time must cover self time.
  /// An invariant violation turns the run into an error, which the oracle
  /// comparison then reports as a one-sided mismatch.
  bool profile = false;

  /// Cache key: two specs with equal keys produce identical results by
  /// definition, so the oracle runner executes each distinct key once.
  std::string Key() const;
};

/// How a pair of results must agree.
///  - kSequence: element-by-element (the engine's bit-for-bit determinism
///    bar — e.g. changing DOP must not change anything).
///  - kMultiset: equal as multisets (the bar for cross-plan rewrites and
///    physical-strategy swaps, where row order is unspecified).
enum class CompareMode { kSequence, kMultiset };

/// One differential oracle: run both specs over the same logical plan and
/// compare.
struct OraclePair {
  std::string name;
  ExecSpec baseline;
  ExecSpec candidate;
  CompareMode mode = CompareMode::kMultiset;
};

struct OracleMatrixOptions {
  /// DOP values exercised against the serial baseline (sequence compare).
  std::vector<size_t> dops = {2, 8};
  /// Batch sizes crossed with the DOPs, and compared against the default
  /// batch on the serial plan.
  std::vector<size_t> batch_sizes = {1, 1024};
  /// Adds the deliberately unsound SelectionBeforeGApply variant
  /// (unsafe_skip_rule_preconditions) — the fuzzer's self-test that a bad
  /// rewrite is caught and minimized.
  bool inject_precondition_bug = false;
};

/// The full oracle matrix: per-rule opt-vs-unopt, full optimizer (gated
/// and ungated), batch-vs-row, batch-size sweep, DOP×batch, sort-vs-hash
/// GApply partitioning, hash-vs-stream aggregation.
std::vector<OraclePair> BuildOracleMatrix(const OracleMatrixOptions& options);

/// One oracle disagreement, with enough context to read the failure
/// without re-running anything.
struct Mismatch {
  std::string oracle;
  std::string detail;
};

/// Lowers + executes `plan` under `spec` (cloning first; `plan` is not
/// consumed).
Result<QueryResult> RunSpec(const LogicalOp& plan, const Catalog& catalog,
                            const StatsManager& stats, const ExecSpec& spec);

/// Runs every oracle over `plan`, deduplicating identical specs, and
/// returns all disagreements (empty = every oracle passed). An execution
/// error on one side of a pair is a mismatch; an error on both sides with
/// the same message is agreement.
Result<std::vector<Mismatch>> RunOracles(const LogicalOp& plan,
                                         const Catalog& catalog,
                                         const StatsManager& stats,
                                         const std::vector<OraclePair>& oracles);

/// Counts non-leaf logical operators (everything except Scan/GroupScan),
/// descending into GApply per-group plans — the minimizer's size metric.
int CountPlanOps(const LogicalOp& plan);

}  // namespace gapply::fuzz

#endif  // GAPPLY_FUZZ_DIFFERENTIAL_H_
