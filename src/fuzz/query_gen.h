#ifndef GAPPLY_FUZZ_QUERY_GEN_H_
#define GAPPLY_FUZZ_QUERY_GEN_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fuzz/data_gen.h"
#include "src/sql/ast.h"

namespace gapply::fuzz {

/// One randomly generated query: the AST, its printed SQL (the replayable
/// artifact — the fuzzer re-parses and binds this text, so the SQL is the
/// single source of truth), and feature tags for coverage accounting.
struct GeneratedQuery {
  sql::QueryPtr ast;
  std::string sql;
  std::vector<std::string> features;
};

/// Draws a random GApply-centric query against the dataset's schema.
///
/// Generator invariants (the binder's contract, see DESIGN.md §11):
///  - grouping and ORDER BY expressions are bare column references;
///  - column names are globally unique, so references never need
///    qualifiers and never bind ambiguously (gapply output renames are
///    forced whenever a PGQ star would re-expose an outer grouping name);
///  - EXISTS appears only as a top-level WHERE conjunct; scalar subqueries
///    only in non-aggregated WHERE clauses;
///  - comparisons are type-matched (numeric↔numeric, string↔string) and
///    expressions avoid divide/modulo, so evaluation is total — rewrites
///    may legitimately reorder error surfacing, which would drown the
///    oracles in false mismatches;
///  - joins are always the declared fact.fk = dim.pk foreign-key equi-join
///    (data is FK-consistent), keeping InvariantGrouping sound;
///  - sum/avg arguments are numeric; HAVING only under aggregation.
///
/// A query that fails to bind anyway is a generator bug; the fuzzer
/// treats it as fatal for the case and reports the seed.
GeneratedQuery GenerateQuery(const FuzzDataset& dataset, Rng* rng);

}  // namespace gapply::fuzz

#endif  // GAPPLY_FUZZ_QUERY_GEN_H_
