#ifndef GAPPLY_FUZZ_MINIMIZER_H_
#define GAPPLY_FUZZ_MINIMIZER_H_

#include <string>

#include "src/fuzz/data_gen.h"
#include "src/fuzz/differential.h"

namespace gapply::fuzz {

/// Outcome of shrinking a failing case: the smallest SQL + dataset found
/// that still trips the failing oracle.
struct MinimizeResult {
  std::string sql;
  FuzzDataset data;
  /// Non-leaf logical operators in the minimized bound plan
  /// (CountPlanOps) — the headline size metric.
  int plan_ops = 0;
  /// Total candidate evaluations spent.
  int evaluations = 0;
  /// The surviving mismatch on the minimized case.
  Mismatch mismatch;
};

/// Delta-debugging-style greedy minimization. Alternates structural AST
/// edits (drop a union branch, clear WHERE/HAVING/ORDER BY, keep one side
/// of a conjunction, drop select-list columns / grouping columns / the
/// joined table, replace subqueries with literals) with data shrinking
/// (halve tables, then drop single rows). Every candidate is re-printed,
/// re-parsed, re-bound, and re-run against only the failing oracle — a
/// candidate that no longer binds or no longer mismatches is rejected.
Result<MinimizeResult> MinimizeCase(const FuzzDataset& data,
                                    const std::string& sql,
                                    const OraclePair& failing,
                                    int max_evaluations = 600);

}  // namespace gapply::fuzz

#endif  // GAPPLY_FUZZ_MINIMIZER_H_
