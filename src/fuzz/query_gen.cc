#include "src/fuzz/query_gen.h"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "src/sql/parser.h"
#include "src/sql/printer.h"

namespace gapply::fuzz {

namespace {

using sql::Query;
using sql::QueryPtr;
using sql::SelectItem;
using sql::SelectStmt;
using sql::SqlExpr;
using sql::SqlExprKind;
using sql::SqlExprPtr;
using sql::TableRef;

// --- AST construction helpers ---------------------------------------------

SqlExprPtr RawLit(Value v) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

SqlExprPtr Col(const std::string& name) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kColumnRef;
  e->name = name;
  return e;
}

SqlExprPtr Un(UnaryOp op, SqlExprPtr child) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(child);
  return e;
}

// Negative numeric constants are emitted as unary minus over the positive
// literal: the parser has no negative-literal token (a minus sign always
// parses as UnaryOp::kNegate), so printing "-3.7" directly would break the
// print→parse→print fixpoint the fuzzer's replay story depends on.
SqlExprPtr SLit(Value v) {
  if (v.is_null()) return RawLit(std::move(v));
  if (v.type() == TypeId::kInt64 && v.int_val() < 0) {
    return Un(UnaryOp::kNegate, RawLit(Value::Int(-v.int_val())));
  }
  if (v.type() == TypeId::kDouble && v.double_val() < 0) {
    return Un(UnaryOp::kNegate, RawLit(Value::Double(-v.double_val())));
  }
  return RawLit(std::move(v));
}

SqlExprPtr Bin(BinaryOp op, SqlExprPtr l, SqlExprPtr r) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

SqlExprPtr Agg(const std::string& func, SqlExprPtr arg, bool star,
               bool distinct) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = SqlExprKind::kFuncCall;
  e->func = func;
  e->star_arg = star;
  e->distinct_arg = distinct;
  if (arg != nullptr) e->args.push_back(std::move(arg));
  return e;
}

SqlExprPtr Subquery(QueryPtr q, bool exists, bool negated) {
  auto e = std::make_unique<SqlExpr>();
  e->kind = exists ? SqlExprKind::kExists : SqlExprKind::kScalarSubquery;
  e->subquery = std::move(q);
  e->negated = negated;
  return e;
}

QueryPtr Wrap(std::unique_ptr<SelectStmt> stmt) {
  auto q = std::make_unique<Query>();
  q->branches.push_back(std::move(stmt));
  return q;
}

/// Deep copy by round-tripping through the printer and parser — the
/// printer guarantees `Parse(ToSql(s))` reconstructs the statement, and
/// the AST has no native Clone.
std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& s) {
  Result<QueryPtr> parsed = sql::Parse(sql::ToSql(s));
  if (!parsed.ok() || (*parsed)->branches.size() != 1) return nullptr;
  return std::move((*parsed)->branches[0]);
}

// --- generator -------------------------------------------------------------

using Scope = std::vector<const FuzzColumn*>;

/// A generated SELECT plus its output column names. `raw_names` means some
/// outputs carry source column names (star expansion / grouping
/// passthrough) instead of fresh aliases, so they can collide with outer
/// names — callers must rename before exposing them next to grouping
/// columns. `extra_branch` (PGQ unions) is a second, union-compatible
/// branch the caller should append to the wrapping Query.
struct GenSelect {
  std::unique_ptr<SelectStmt> stmt;
  std::vector<std::string> out_names;
  bool raw_names = false;
  std::unique_ptr<SelectStmt> extra_branch;
};

class QueryGen {
 public:
  QueryGen(const FuzzDataset& ds, Rng* rng) : ds_(ds), rng_(rng) {}

  GeneratedQuery Generate() {
    GeneratedQuery out;
    out.ast = GenTop();
    out.sql = sql::ToSql(*out.ast);
    out.features.assign(features_.begin(), features_.end());
    return out;
  }

 private:
  void Tag(const char* feature) { features_.insert(feature); }

  // --- scopes and literals ---

  Scope FactScope() const {
    Scope s;
    for (const FuzzColumn& c : ds_.fact.columns) s.push_back(&c);
    return s;
  }

  Scope JoinScope() const {
    Scope s = FactScope();
    for (const FuzzColumn& c : ds_.dim->columns) s.push_back(&c);
    return s;
  }

  const FuzzColumn* Pick(const Scope& scope) {
    return scope[static_cast<size_t>(
        rng_->UniformInt(0, static_cast<int64_t>(scope.size()) - 1))];
  }

  Scope Filter(const Scope& scope, bool (*pred)(const FuzzColumn&)) {
    Scope out;
    for (const FuzzColumn* c : scope) {
      if (pred(*c)) out.push_back(c);
    }
    return out;
  }

  Scope NumericCols(const Scope& s) {
    return Filter(s, [](const FuzzColumn& c) { return IsNumeric(c.type); });
  }
  Scope StringCols(const Scope& s) {
    return Filter(s, [](const FuzzColumn& c) {
      return c.type == TypeId::kString;
    });
  }
  Scope KeyCols(const Scope& s) {
    return Filter(s, [](const FuzzColumn& c) { return c.group_key; });
  }

  std::string FreshAlias() { return "c" + std::to_string(alias_counter_++); }

  /// Literal aimed at the column's populated domain: usually inside it,
  /// sometimes at or past the edge (selecting nothing — the empty-group
  /// path), rarely NULL.
  Value LiteralFor(const FuzzColumn& col) {
    if (rng_->Bernoulli(0.04)) return Value::Null();
    switch (col.type) {
      case TypeId::kInt64: {
        const int roll = static_cast<int>(rng_->UniformInt(0, 9));
        if (roll < 6) return Value::Int(rng_->UniformInt(col.int_min, col.int_max));
        if (roll == 6) return Value::Int(col.int_min);
        if (roll == 7) return Value::Int(col.int_max);
        if (roll == 8) return Value::Int(col.int_max + 1);
        return Value::Int(col.int_min - 1);
      }
      case TypeId::kDouble: {
        if (rng_->Bernoulli(0.2)) return Value::Double(col.dbl_max + 1.0);
        return Value::Double(
            static_cast<double>(rng_->UniformInt(
                static_cast<int64_t>(col.dbl_min * 10),
                static_cast<int64_t>(col.dbl_max * 10))) /
            10.0);
      }
      case TypeId::kString: {
        if (!ds_.words.empty() && rng_->Bernoulli(0.8)) {
          return Value::Str(ds_.words[static_cast<size_t>(rng_->UniformInt(
              0, static_cast<int64_t>(ds_.words.size()) - 1))]);
        }
        return Value::Str("zzzz");  // outside the pool: selects nothing
      }
      default:
        return Value::Null();
    }
  }

  // --- expressions ---

  /// Numeric scalar: a column, or simple arithmetic over columns and small
  /// literals. Divide/modulo are excluded so evaluation is total.
  SqlExprPtr NumExpr(const Scope& scope) {
    Scope nums = NumericCols(scope);
    if (nums.empty()) return SLit(Value::Int(1));
    const FuzzColumn* a = Pick(nums);
    const int roll = static_cast<int>(rng_->UniformInt(0, 9));
    if (roll < 6) return Col(a->name);
    static const BinaryOp kArith[] = {BinaryOp::kAdd, BinaryOp::kSubtract,
                                      BinaryOp::kMultiply};
    const BinaryOp op = kArith[rng_->UniformInt(0, 2)];
    if (roll < 8) {
      return Bin(op, Col(a->name), SLit(Value::Int(rng_->UniformInt(-3, 3))));
    }
    const FuzzColumn* b = Pick(nums);
    if (roll == 8) return Bin(op, Col(a->name), Col(b->name));
    return Un(UnaryOp::kNegate, Col(a->name));
  }

  BinaryOp Cmp() {
    static const BinaryOp kCmps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                     BinaryOp::kLt, BinaryOp::kLe,
                                     BinaryOp::kGt, BinaryOp::kGe};
    return kCmps[rng_->UniformInt(0, 5)];
  }

  SqlExprPtr PredAtom(const Scope& scope) {
    const FuzzColumn* col = Pick(scope);
    const int roll = static_cast<int>(rng_->UniformInt(0, 9));
    if (roll < 2) {
      return Un(rng_->Bernoulli(0.5) ? UnaryOp::kIsNull : UnaryOp::kIsNotNull,
                Col(col->name));
    }
    if (roll < 4) {
      // Column vs column, type-matched so Compare cannot fail.
      Scope family = IsNumeric(col->type) ? NumericCols(scope)
                     : col->type == TypeId::kString ? StringCols(scope)
                                                    : Scope{};
      if (family.size() >= 2) {
        const FuzzColumn* other = Pick(family);
        return Bin(Cmp(), Col(col->name), Col(other->name));
      }
    }
    if (roll < 6 && IsNumeric(col->type)) {
      return Bin(Cmp(), NumExpr(scope), SLit(LiteralFor(*col)));
    }
    return Bin(Cmp(), Col(col->name), SLit(LiteralFor(*col)));
  }

  SqlExprPtr Pred(const Scope& scope, int depth = 0) {
    if (depth >= 2 || rng_->Bernoulli(0.55)) {
      SqlExprPtr atom = PredAtom(scope);
      if (rng_->Bernoulli(0.12)) atom = Un(UnaryOp::kNot, std::move(atom));
      return atom;
    }
    const BinaryOp op =
        rng_->Bernoulli(0.6) ? BinaryOp::kAnd : BinaryOp::kOr;
    return Bin(op, Pred(scope, depth + 1), Pred(scope, depth + 1));
  }

  /// One aggregate call over the scope, e.g. sum(v0), count(distinct s1).
  SqlExprPtr AggCall(const Scope& scope) {
    const int roll = static_cast<int>(rng_->UniformInt(0, 9));
    if (roll < 3) return Agg("count", nullptr, /*star=*/true, false);
    Scope nums = NumericCols(scope);
    if (roll < 5 && !nums.empty()) {
      const bool distinct = rng_->Bernoulli(0.15);
      if (distinct) Tag("distinct-agg");
      return Agg("sum", Col(Pick(nums)->name), false, distinct);
    }
    if (roll < 6 && !nums.empty()) {
      return Agg("avg", Col(Pick(nums)->name), false, false);
    }
    if (roll < 8) {
      const bool distinct = rng_->Bernoulli(0.15);
      if (distinct) Tag("distinct-agg");
      return Agg("count", Col(Pick(scope)->name), false, distinct);
    }
    const FuzzColumn* c = Pick(scope);
    return Agg(rng_->Bernoulli(0.5) ? "min" : "max", Col(c->name), false,
               false);
  }

  // --- select statement shapes ---

  static std::vector<TableRef> FromTables(
      const std::vector<std::string>& names) {
    std::vector<TableRef> refs;
    for (const std::string& n : names) refs.push_back({n, n});
    return refs;
  }

  /// Picks 1–2 distinct grouping columns. `must_include` (may be empty)
  /// forces a column into the list (the join column for invariant
  /// grouping).
  std::vector<std::string> PickGroupCols(const Scope& scope,
                                         const std::string& must_include) {
    Scope keys = KeyCols(scope);
    if (keys.empty()) keys = scope;
    std::vector<std::string> out;
    if (!must_include.empty()) out.push_back(must_include);
    const int want = rng_->Bernoulli(0.35) ? 2 : 1;
    int guard = 0;
    while (static_cast<int>(out.size()) < want && guard++ < 8) {
      const std::string name = Pick(keys)->name;
      if (std::find(out.begin(), out.end(), name) == out.end()) {
        out.push_back(name);
      }
    }
    if (out.empty()) out.push_back(scope.front()->name);
    return out;
  }

  /// Plain (non-gapply) select: filter/project, scalar aggregate, or
  /// grouped aggregate, optionally over the FK join.
  GenSelect GenPlainSelect(bool allow_join) {
    GenSelect g;
    g.stmt = std::make_unique<SelectStmt>();
    const bool join =
        allow_join && ds_.dim.has_value() && rng_->Bernoulli(0.3);
    Scope scope = join ? JoinScope() : FactScope();
    g.stmt->from = FromTables(join ? std::vector<std::string>{"t0", "d0"}
                                   : std::vector<std::string>{"t0"});
    if (join) Tag("join");

    SqlExprPtr where;
    if (join) where = Bin(BinaryOp::kEq, Col("fk"), Col("pk"));
    if (rng_->Bernoulli(join ? 0.5 : 0.55)) {
      SqlExprPtr pred = Pred(scope);
      where = where == nullptr
                  ? std::move(pred)
                  : Bin(BinaryOp::kAnd, std::move(where), std::move(pred));
    }
    g.stmt->where = std::move(where);

    const int roll = static_cast<int>(rng_->UniformInt(0, 9));
    if (roll < 4) {
      // Grouped aggregate.
      Tag("plain-groupby");
      std::vector<std::string> gcols = PickGroupCols(scope, "");
      for (const std::string& c : gcols) {
        g.stmt->group_by.push_back(Col(c));
        std::string alias = FreshAlias();
        g.stmt->items.push_back({Col(c), alias});
        g.out_names.push_back(alias);
      }
      const int aggs = static_cast<int>(rng_->UniformInt(1, 2));
      for (int i = 0; i < aggs; ++i) {
        std::string alias = FreshAlias();
        g.stmt->items.push_back({AggCall(scope), alias});
        g.out_names.push_back(alias);
      }
      if (rng_->Bernoulli(0.3)) {
        Tag("having");
        g.stmt->having =
            Bin(Cmp(), AggCall(scope), SLit(Value::Int(rng_->UniformInt(0, 5))));
      }
    } else if (roll < 7) {
      // Scalar aggregate (always exactly one output row).
      Tag("plain-agg");
      const int aggs = static_cast<int>(rng_->UniformInt(1, 3));
      for (int i = 0; i < aggs; ++i) {
        std::string alias = FreshAlias();
        g.stmt->items.push_back({AggCall(scope), alias});
        g.out_names.push_back(alias);
      }
    } else {
      // Filter/project.
      const int items = static_cast<int>(rng_->UniformInt(1, 3));
      for (int i = 0; i < items; ++i) {
        std::string alias = FreshAlias();
        SqlExprPtr e = rng_->Bernoulli(0.6) ? Col(Pick(scope)->name)
                                            : NumExpr(scope);
        g.stmt->items.push_back({std::move(e), alias});
        g.out_names.push_back(alias);
      }
    }
    return g;
  }

  /// The per-group query over group variable `var` whose rows have the
  /// group's schema (`scope`).
  GenSelect GenPgq(const std::string& var, const Scope& scope, int depth) {
    const int roll = static_cast<int>(rng_->UniformInt(0, 99));
    // Deep recursion collapses to the three simple shapes.
    if (depth <= 2) {
      if (roll < 11) return GenPgqScalarSubquery(var, scope);
      if (roll < 22) return GenPgqExists(var, scope);
      if (roll < 29) return GenPgqAggExists(var, scope);
      if (roll < 38) return GenPgqUnion(var, scope);
      if (roll < 43 && depth <= 1) return GenPgqNestedGApply(var, scope, depth);
    }
    if (roll < 60) return GenPgqPassthrough(var, scope);
    if (roll < 80) return GenPgqScalarAgg(var, scope);
    return GenPgqGroupBy(var, scope);
  }

  GenSelect GenPgqPassthrough(const std::string& var, const Scope& scope) {
    GenSelect g;
    g.stmt = std::make_unique<SelectStmt>();
    g.stmt->from = FromTables({var});
    if (rng_->Bernoulli(0.3)) {
      Tag("pgq-star");
      g.stmt->select_star = true;
      g.raw_names = true;
      for (const FuzzColumn* c : scope) g.out_names.push_back(c->name);
    } else {
      const int items = static_cast<int>(rng_->UniformInt(1, 3));
      for (int i = 0; i < items; ++i) {
        std::string alias = FreshAlias();
        SqlExprPtr e = rng_->Bernoulli(0.65) ? Col(Pick(scope)->name)
                                             : NumExpr(scope);
        g.stmt->items.push_back({std::move(e), alias});
        g.out_names.push_back(alias);
      }
    }
    if (rng_->Bernoulli(0.55)) g.stmt->where = Pred(scope);
    return g;
  }

  GenSelect GenPgqScalarAgg(const std::string& var, const Scope& scope) {
    Tag("pgq-agg");
    GenSelect g;
    g.stmt = std::make_unique<SelectStmt>();
    g.stmt->from = FromTables({var});
    const int aggs = static_cast<int>(rng_->UniformInt(1, 3));
    for (int i = 0; i < aggs; ++i) {
      std::string alias = FreshAlias();
      g.stmt->items.push_back({AggCall(scope), alias});
      g.out_names.push_back(alias);
    }
    if (rng_->Bernoulli(0.5)) g.stmt->where = Pred(scope);
    return g;
  }

  GenSelect GenPgqGroupBy(const std::string& var, const Scope& scope) {
    Tag("pgq-groupby");
    GenSelect g;
    g.stmt = std::make_unique<SelectStmt>();
    g.stmt->from = FromTables({var});
    std::vector<std::string> gcols = PickGroupCols(scope, "");
    for (const std::string& c : gcols) {
      g.stmt->group_by.push_back(Col(c));
      std::string alias = FreshAlias();
      g.stmt->items.push_back({Col(c), alias});
      g.out_names.push_back(alias);
    }
    const int aggs = static_cast<int>(rng_->UniformInt(1, 2));
    for (int i = 0; i < aggs; ++i) {
      std::string alias = FreshAlias();
      g.stmt->items.push_back({AggCall(scope), alias});
      g.out_names.push_back(alias);
    }
    if (rng_->Bernoulli(0.5)) g.stmt->where = Pred(scope);
    if (rng_->Bernoulli(0.35)) {
      Tag("having");
      g.stmt->having =
          Bin(Cmp(), AggCall(scope), SLit(Value::Int(rng_->UniformInt(0, 4))));
    }
    return g;
  }

  GenSelect GenPgqScalarSubquery(const std::string& var, const Scope& scope) {
    Tag("pgq-subquery");
    GenSelect g = GenPgqPassthrough(var, scope);
    // where <numeric> CMP (select agg from var [where ...]):
    // the classic correlated-aggregate comparison (paper Fig. 3).
    auto sub = std::make_unique<SelectStmt>();
    sub->from = FromTables({var});
    sub->items.push_back({AggCall(scope), FreshAlias()});
    if (rng_->Bernoulli(0.35)) sub->where = Pred(scope);
    SqlExprPtr cmp = Bin(Cmp(), NumExpr(scope),
                         Subquery(Wrap(std::move(sub)), false, false));
    g.stmt->where = g.stmt->where == nullptr
                        ? std::move(cmp)
                        : Bin(BinaryOp::kAnd, std::move(g.stmt->where),
                              std::move(cmp));
    return g;
  }

  GenSelect GenPgqExists(const std::string& var, const Scope& scope) {
    Tag("pgq-exists");
    GenSelect g = GenPgqPassthrough(var, scope);
    auto sub = std::make_unique<SelectStmt>();
    sub->from = FromTables({var});
    sub->items.push_back({Col(Pick(scope)->name), FreshAlias()});
    sub->where = Pred(scope);
    SqlExprPtr ex =
        Subquery(Wrap(std::move(sub)), true, rng_->Bernoulli(0.4));
    // EXISTS must stay a top-level conjunct for the binder.
    g.stmt->where = g.stmt->where == nullptr
                        ? std::move(ex)
                        : Bin(BinaryOp::kAnd, std::move(ex),
                              std::move(g.stmt->where));
    return g;
  }

  /// `where exists (select agg from var having agg CMP k)` — the
  /// GroupSelectionAggregate shape (paper §4.2).
  GenSelect GenPgqAggExists(const std::string& var, const Scope& scope) {
    Tag("pgq-agg-exists");
    GenSelect g;
    g.stmt = std::make_unique<SelectStmt>();
    g.stmt->from = FromTables({var});
    g.stmt->select_star = true;
    g.raw_names = true;
    for (const FuzzColumn* c : scope) g.out_names.push_back(c->name);

    auto sub = std::make_unique<SelectStmt>();
    sub->from = FromTables({var});
    sub->items.push_back({AggCall(scope), FreshAlias()});
    sub->having =
        Bin(Cmp(), AggCall(scope), SLit(Value::Int(rng_->UniformInt(0, 5))));
    g.stmt->where =
        Subquery(Wrap(std::move(sub)), true, rng_->Bernoulli(0.3));
    return g;
  }

  GenSelect GenPgqUnion(const std::string& var, const Scope& scope) {
    Tag("pgq-union");
    GenSelect base = rng_->Bernoulli(0.5) ? GenPgqPassthrough(var, scope)
                                          : GenPgqScalarAgg(var, scope);
    std::unique_ptr<SelectStmt> other = CloneSelect(*base.stmt);
    if (other == nullptr) return base;  // printer failed: degrade gracefully
    // Vary the clone's filter; the output schema (and thus union
    // compatibility) is untouched.
    if (rng_->Bernoulli(0.75)) {
      other->where = Pred(scope);
    } else {
      other->where = nullptr;
    }
    GenSelect g;
    g.stmt = std::move(base.stmt);
    g.out_names = std::move(base.out_names);
    g.raw_names = base.raw_names;
    g.extra_branch = std::move(other);
    return g;
  }

  GenSelect GenPgqNestedGApply(const std::string& var, const Scope& scope,
                               int depth) {
    Tag("nested-gapply");
    return GenGApplySelect({var}, scope, depth);
  }

  /// `select gapply(PGQ) [as (...)] from ... group by cols : v`.
  /// `from` is either base tables or an enclosing group variable.
  GenSelect GenGApplySelect(const std::vector<std::string>& from,
                            const Scope& scope, int depth) {
    Tag("gapply");
    GenSelect g;
    g.stmt = std::make_unique<SelectStmt>();
    g.stmt->from = FromTables(from);

    const bool join = from.size() == 2;
    std::string must;
    if (join && rng_->Bernoulli(0.75)) must = "fk";
    std::vector<std::string> gcols = PickGroupCols(scope, must);
    for (const std::string& c : gcols) g.stmt->group_by.push_back(Col(c));
    g.stmt->group_var = depth == 0 ? "g" : "h" + std::to_string(depth);

    SqlExprPtr where;
    if (join) where = Bin(BinaryOp::kEq, Col("fk"), Col("pk"));
    if (rng_->Bernoulli(0.45)) {
      SqlExprPtr pred = Pred(scope);
      where = where == nullptr
                  ? std::move(pred)
                  : Bin(BinaryOp::kAnd, std::move(where), std::move(pred));
    }
    g.stmt->where = std::move(where);

    GenSelect pgq = GenPgq(g.stmt->group_var, scope, depth + 1);
    auto pgq_query = Wrap(std::move(pgq.stmt));
    if (pgq.extra_branch != nullptr) {
      pgq_query->branches.push_back(std::move(pgq.extra_branch));
    }
    g.stmt->gapply_pgq = std::move(pgq_query);

    // The GApply output is grouping columns followed by PGQ output. If the
    // PGQ re-exposes source column names (star shapes) they can collide
    // with the grouping columns, so renaming is mandatory there and
    // optional otherwise.
    const bool need_names = pgq.raw_names;
    if (need_names || rng_->Bernoulli(0.5)) {
      for (size_t i = 0; i < pgq.out_names.size(); ++i) {
        g.stmt->gapply_names.push_back(FreshAlias());
      }
      g.out_names = gcols;
      g.out_names.insert(g.out_names.end(), g.stmt->gapply_names.begin(),
                         g.stmt->gapply_names.end());
    } else {
      g.out_names = gcols;
      g.out_names.insert(g.out_names.end(), pgq.out_names.begin(),
                         pgq.out_names.end());
    }
    return g;
  }

  /// Top-level query: gapply select, plain select, or a UNION ALL pair,
  /// with an optional ORDER BY over uniquely named outputs.
  QueryPtr GenTop() {
    const int roll = static_cast<int>(rng_->UniformInt(0, 99));
    GenSelect head;
    if (roll < 60) {
      const bool join = ds_.dim.has_value() && rng_->Bernoulli(0.45);
      if (join) Tag("join");
      head = GenGApplySelect(
          join ? std::vector<std::string>{"t0", "d0"}
               : std::vector<std::string>{"t0"},
          join ? JoinScope() : FactScope(), 0);
    } else {
      head = GenPlainSelect(/*allow_join=*/true);
    }

    auto q = std::make_unique<Query>();
    const bool union_top = roll >= 85 || (roll < 60 && rng_->Bernoulli(0.12));
    if (union_top) {
      std::unique_ptr<SelectStmt> other = CloneSelect(*head.stmt);
      if (other != nullptr) {
        Tag("union-top");
        if (rng_->Bernoulli(0.7)) {
          // New filter over the same scope; schema unchanged.
          Scope scope = other->from.size() == 2 ? JoinScope() : FactScope();
          SqlExprPtr pred = Pred(scope);
          if (other->from.size() == 2) {
            pred = Bin(BinaryOp::kAnd,
                       Bin(BinaryOp::kEq, Col("fk"), Col("pk")),
                       std::move(pred));
          }
          other->where = std::move(pred);
        }
        q->branches.push_back(std::move(other));
      }
    }
    q->branches.insert(q->branches.begin(), std::move(head.stmt));

    // ORDER BY only when every output name is unique (else the bind is
    // legitimately ambiguous).
    std::set<std::string> uniq(head.out_names.begin(), head.out_names.end());
    if (uniq.size() == head.out_names.size() && !head.out_names.empty() &&
        rng_->Bernoulli(0.45)) {
      Tag("order-by");
      const int n = std::min<int>(static_cast<int>(head.out_names.size()),
                                  rng_->Bernoulli(0.4) ? 2 : 1);
      std::set<std::string> used;
      for (int i = 0; i < n; ++i) {
        const std::string& name = head.out_names[static_cast<size_t>(
            rng_->UniformInt(0, static_cast<int64_t>(head.out_names.size()) -
                                    1))];
        if (!used.insert(name).second) continue;
        q->order_by.push_back({Col(name), rng_->Bernoulli(0.7)});
      }
    }
    return q;
  }

  const FuzzDataset& ds_;
  Rng* rng_;
  std::set<std::string> features_;
  int alias_counter_ = 0;
};

}  // namespace

GeneratedQuery GenerateQuery(const FuzzDataset& dataset, Rng* rng) {
  return QueryGen(dataset, rng).Generate();
}

}  // namespace gapply::fuzz
