#ifndef GAPPLY_FUZZ_FUZZER_H_
#define GAPPLY_FUZZ_FUZZER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "src/fuzz/differential.h"
#include "src/fuzz/minimizer.h"
#include "src/fuzz/query_gen.h"

namespace gapply::fuzz {

struct FuzzOptions {
  /// Case i runs with seed `base_seed + i`; `--seed=N --cases=1` replays
  /// case N exactly.
  uint64_t base_seed = 1;
  int cases = 1000;
  /// Wall-clock budget; 0 = unlimited. The run stops early but reports
  /// how many cases it completed.
  double time_budget_s = 0;
  OracleMatrixOptions matrix;
  /// Shrink failing cases before reporting.
  bool minimize = true;
  /// Keep running after a failure instead of stopping at the first.
  bool keep_going = false;
  bool verbose = false;
};

/// Everything known about one executed case.
struct CaseResult {
  uint64_t seed = 0;
  std::string sql;
  std::vector<std::string> features;
  std::vector<Mismatch> mismatches;
  /// Set when the generator produced SQL that failed to parse or bind —
  /// always a bug in the generator/printer, reported fatally.
  std::string generator_error;
};

struct CaseFailure {
  CaseResult result;
  std::optional<MinimizeResult> minimized;
  std::string dataset_dump;
};

struct FuzzReport {
  int cases_run = 0;
  int failures = 0;
  int generator_errors = 0;
  bool hit_time_budget = false;
  std::map<std::string, int> feature_counts;
  std::vector<CaseFailure> failure_details;

  bool ok() const { return failures == 0 && generator_errors == 0; }
};

/// Generates dataset + query for `seed`, runs the full oracle matrix, and
/// returns the outcome. Deterministic: the same seed and matrix options
/// always produce the same case and verdict.
CaseResult RunOneCase(uint64_t seed, const OracleMatrixOptions& matrix);

/// The fuzzing loop: cases [base_seed, base_seed + cases), minimizing and
/// logging failures to `log` (repro banner with seed, SQL, dataset, and a
/// one-line replay command).
FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* log);

}  // namespace gapply::fuzz

#endif  // GAPPLY_FUZZ_FUZZER_H_
