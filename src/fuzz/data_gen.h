#ifndef GAPPLY_FUZZ_DATA_GEN_H_
#define GAPPLY_FUZZ_DATA_GEN_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/value.h"
#include "src/stats/stats.h"
#include "src/storage/catalog.h"

namespace gapply::fuzz {

/// Column descriptor the query generator consumes: the declared type plus
/// the domain the data was drawn from, so predicates can aim inside, at the
/// edge of, or outside the populated range (the latter makes every group
/// empty — the paper's Theorem 1 edge case).
struct FuzzColumn {
  std::string name;
  TypeId type = TypeId::kInt64;
  /// Small-domain column suitable for GROUP BY / GApply grouping.
  bool group_key = false;
  /// Fraction of rows whose value is NULL (0 for key-like columns unless
  /// the dataset deliberately degrades them; 1 for the all-NULL-key case).
  double null_fraction = 0.0;
  /// Populated value range for numeric columns (inclusive).
  int64_t int_min = 0;
  int64_t int_max = 0;
  double dbl_min = 0.0;
  double dbl_max = 0.0;
};

struct FuzzTable {
  std::string name;
  std::vector<FuzzColumn> columns;
  std::vector<Row> rows;
};

/// A generated schema + data instance: one fact table ("t0"), optionally a
/// dimension ("d0") with fact.fk → d0.pk declared as a foreign key and the
/// data kept FK-consistent (so InvariantGrouping's certificate is sound).
/// Column names are globally unique across tables, which keeps every
/// generated column reference unambiguous without qualifiers.
struct FuzzDataset {
  FuzzTable fact;
  std::optional<FuzzTable> dim;
  /// Shared pool of string values; string predicates draw literals from it.
  std::vector<std::string> words;
  /// Feature tags describing deliberate edge cases ("empty-fact",
  /// "all-null-key", "dup-rows", ...). Merged into the case's feature list.
  std::vector<std::string> features;
};

/// Draws a dataset. Deliberately skews toward edge cases: empty and
/// single-row tables, skewed low-cardinality group keys, NULL-heavy and
/// all-NULL key columns, duplicated rows.
FuzzDataset GenerateDataset(Rng* rng);

/// Installs the dataset's tables plus PK/FK metadata into `catalog` and
/// computes statistics. The catalog must not already contain the tables.
Status InstallDataset(const FuzzDataset& dataset, Catalog* catalog,
                      StatsManager* stats);

/// Human-readable schema + full data listing for failure repro dumps.
std::string DescribeDataset(const FuzzDataset& dataset);

}  // namespace gapply::fuzz

#endif  // GAPPLY_FUZZ_DATA_GEN_H_
