#include "src/fuzz/fuzzer.h"

#include <chrono>
#include <utility>

#include "src/sql/binder.h"

namespace gapply::fuzz {

namespace {

/// Generates the dataset and a bindable query for `seed`. The generator is
/// constructed to satisfy the binder's invariants; as a safety margin it
/// retries a few times off the same deterministic stream, so one bad draw
/// does not kill the case. A seed where every attempt fails is a
/// generator bug worth a report.
struct GeneratedCase {
  FuzzDataset data;
  GeneratedQuery query;
  LogicalOpPtr plan;
  Catalog catalog;
  StatsManager stats;
  std::string error;  // non-empty = generation failed
};

void GenerateCase(uint64_t seed, GeneratedCase* out) {
  Rng rng(seed);
  out->data = GenerateDataset(&rng);
  Status install = InstallDataset(out->data, &out->catalog, &out->stats);
  if (!install.ok()) {
    out->error = "InstallDataset: " + install.ToString();
    return;
  }
  std::string last_error;
  for (int attempt = 0; attempt < 8; ++attempt) {
    GeneratedQuery q = GenerateQuery(out->data, &rng);
    Result<LogicalOpPtr> plan = sql::ParseAndBind(out->catalog, q.sql);
    if (plan.ok()) {
      out->query = std::move(q);
      out->plan = std::move(*plan);
      return;
    }
    last_error = plan.status().ToString() + " for: " + q.sql;
  }
  out->error = "query failed to bind after 8 attempts; last: " + last_error;
}

}  // namespace

CaseResult RunOneCase(uint64_t seed, const OracleMatrixOptions& matrix) {
  CaseResult result;
  result.seed = seed;

  GeneratedCase gen;
  GenerateCase(seed, &gen);
  if (!gen.error.empty()) {
    result.generator_error = gen.error;
    return result;
  }
  result.sql = gen.query.sql;
  result.features = gen.query.features;
  for (const std::string& f : gen.data.features) {
    result.features.push_back(f);
  }

  Result<std::vector<Mismatch>> mismatches =
      RunOracles(*gen.plan, gen.catalog, gen.stats, BuildOracleMatrix(matrix));
  if (!mismatches.ok()) {
    // RunOracles itself failing (not an execution error inside a spec —
    // those are mismatches) means a plan could not even be cloned/lowered:
    // engine bug, report as a failure of every oracle.
    result.mismatches.push_back(
        {"harness", mismatches.status().ToString()});
    return result;
  }
  result.mismatches = std::move(*mismatches);
  return result;
}

FuzzReport RunFuzz(const FuzzOptions& options, std::ostream* log) {
  const auto start = std::chrono::steady_clock::now();
  auto elapsed_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  FuzzReport report;
  for (int i = 0; i < options.cases; ++i) {
    if (options.time_budget_s > 0 && elapsed_s() > options.time_budget_s) {
      report.hit_time_budget = true;
      break;
    }
    const uint64_t seed = options.base_seed + static_cast<uint64_t>(i);
    CaseResult result = RunOneCase(seed, options.matrix);
    ++report.cases_run;
    for (const std::string& f : result.features) {
      report.feature_counts[f]++;
    }

    if (!result.generator_error.empty()) {
      ++report.generator_errors;
      if (log != nullptr) {
        *log << "=== GENERATOR ERROR (seed " << seed << ") ===\n"
             << result.generator_error << "\n";
      }
      if (!options.keep_going) break;
      continue;
    }

    if (options.verbose && log != nullptr) {
      *log << "seed " << seed << " ok: " << result.sql << "\n";
    }
    if (result.mismatches.empty()) continue;

    ++report.failures;
    CaseFailure failure;
    failure.result = result;

    // Regenerate the dataset for the failure banner and the minimizer
    // (RunOneCase's copy is deterministic from the seed).
    Rng rng(seed);
    FuzzDataset data = GenerateDataset(&rng);
    failure.dataset_dump = DescribeDataset(data);

    if (options.minimize) {
      // Rebuild the failing oracle pair by name to shrink against it.
      for (const OraclePair& oracle : BuildOracleMatrix(options.matrix)) {
        if (oracle.name != result.mismatches.front().oracle) continue;
        Result<MinimizeResult> minimized =
            MinimizeCase(data, result.sql, oracle);
        if (minimized.ok()) failure.minimized = std::move(*minimized);
        break;
      }
    }

    if (log != nullptr) {
      *log << "=== MISMATCH (seed " << seed << ") ===\n";
      for (const Mismatch& m : failure.result.mismatches) {
        *log << "oracle " << m.oracle << ": " << m.detail << "\n";
      }
      *log << "sql: " << result.sql << "\n";
      if (failure.minimized.has_value()) {
        const MinimizeResult& m = *failure.minimized;
        *log << "minimized sql (" << m.plan_ops << " plan ops, "
             << m.evaluations << " evals): " << m.sql << "\n"
             << "minimized oracle " << m.mismatch.oracle << ": "
             << m.mismatch.detail << "\n"
             << "minimized dataset:\n"
             << DescribeDataset(m.data);
      } else {
        *log << "dataset:\n" << failure.dataset_dump;
      }
      *log << "replay: gapply_fuzz --seed=" << seed << " --cases=1\n";
    }
    report.failure_details.push_back(std::move(failure));
    if (!options.keep_going) break;
  }

  if (log != nullptr) {
    *log << "fuzz: " << report.cases_run << " cases, " << report.failures
         << " mismatches, " << report.generator_errors
         << " generator errors";
    if (report.hit_time_budget) *log << " (time budget hit)";
    *log << "\nfeature coverage:";
    for (const auto& [feature, count] : report.feature_counts) {
      *log << " " << feature << "=" << count;
    }
    *log << "\n";
  }
  return report;
}

}  // namespace gapply::fuzz
