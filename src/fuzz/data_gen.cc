#include "src/fuzz/data_gen.h"

#include <memory>
#include <utility>

#include "src/storage/schema.h"
#include "src/storage/table.h"

namespace gapply::fuzz {

namespace {

/// Picks a row-count class. Small sizes are over-represented on purpose:
/// empty inputs, single rows, and single groups are where groupwise
/// rewrites historically go wrong.
size_t PickFactRows(Rng* rng, std::vector<std::string>* features) {
  const int cls = static_cast<int>(rng->UniformInt(0, 9));
  switch (cls) {
    case 0:
      features->push_back("empty-fact");
      return 0;
    case 1:
      features->push_back("single-row-fact");
      return 1;
    case 2:
      return 2;
    case 3:
      return static_cast<size_t>(rng->UniformInt(3, 17));
    default:
      return static_cast<size_t>(rng->UniformInt(40, 260));
  }
}

Value DrawValue(const FuzzColumn& col, const std::vector<std::string>& words,
                Rng* rng) {
  if (col.null_fraction > 0 && rng->Bernoulli(col.null_fraction)) {
    return Value::Null();
  }
  switch (col.type) {
    case TypeId::kInt64:
      return Value::Int(rng->UniformInt(col.int_min, col.int_max));
    case TypeId::kDouble:
      // One decimal place keeps sums well-conditioned without sacrificing
      // the inexact-arithmetic coverage doubles exist to provide.
      return Value::Double(
          static_cast<double>(rng->UniformInt(
              static_cast<int64_t>(col.dbl_min * 10),
              static_cast<int64_t>(col.dbl_max * 10))) /
          10.0);
    case TypeId::kString:
      return Value::Str(words[static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(words.size()) - 1))]);
    default:
      return Value::Null();
  }
}

void FillRows(FuzzTable* table, size_t n, const std::vector<std::string>& words,
              Rng* rng) {
  table->rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Row row;
    row.reserve(table->columns.size());
    for (const FuzzColumn& col : table->columns) {
      row.push_back(DrawValue(col, words, rng));
    }
    table->rows.push_back(std::move(row));
  }
}

Schema ToSchema(const FuzzTable& table) {
  std::vector<Column> cols;
  cols.reserve(table.columns.size());
  for (const FuzzColumn& c : table.columns) {
    cols.emplace_back(c.name, c.type, table.name);
  }
  return Schema(std::move(cols));
}

}  // namespace

FuzzDataset GenerateDataset(Rng* rng) {
  FuzzDataset ds;

  // Shared string pool: small so string group keys collide and string
  // predicates actually select something.
  const int pool = static_cast<int>(rng->UniformInt(3, 6));
  for (int i = 0; i < pool; ++i) {
    ds.words.push_back(rng->RandomWord(static_cast<int>(rng->UniformInt(2, 6))));
  }

  // Optional dimension table first, so the fact's FK domain is known.
  size_t dim_rows = 0;
  if (rng->Bernoulli(0.5)) {
    FuzzTable dim;
    dim.name = "d0";
    static const int64_t kDimSizes[] = {1, 5, 20};
    dim_rows = static_cast<size_t>(kDimSizes[rng->UniformInt(0, 2)]);
    dim.columns.push_back({.name = "pk",
                           .type = TypeId::kInt64,
                           .group_key = true,
                           .int_min = 0,
                           .int_max = static_cast<int64_t>(dim_rows) - 1});
    dim.columns.push_back({.name = "dv0",
                           .type = TypeId::kInt64,
                           .group_key = true,
                           .null_fraction = rng->Bernoulli(0.3) ? 0.2 : 0.0,
                           .int_min = 0,
                           .int_max = 4});
    dim.columns.push_back({.name = "ds0",
                           .type = TypeId::kString,
                           .null_fraction = rng->Bernoulli(0.3) ? 0.2 : 0.0});
    // pk must be unique and dense: fill it by position, draw the rest.
    for (size_t i = 0; i < dim_rows; ++i) {
      Row row;
      row.push_back(Value::Int(static_cast<int64_t>(i)));
      for (size_t c = 1; c < dim.columns.size(); ++c) {
        row.push_back(DrawValue(dim.columns[c], ds.words, rng));
      }
      dim.rows.push_back(std::move(row));
    }
    ds.dim = std::move(dim);
    ds.features.push_back("dim-table");
  }

  FuzzTable& fact = ds.fact;
  fact.name = "t0";

  // k0: the canonical skewed group key. Tiny domains make heavy groups;
  // occasionally every key is NULL (grouping treats NULL = NULL, so that
  // is one big group).
  static const int64_t kKeyDomains[] = {1, 2, 5, 20};
  FuzzColumn k0{.name = "k0",
                .type = TypeId::kInt64,
                .group_key = true,
                .int_min = 0,
                .int_max = kKeyDomains[rng->UniformInt(0, 3)] - 1};
  if (rng->Bernoulli(0.08)) {
    k0.null_fraction = 1.0;
    ds.features.push_back("all-null-key");
  } else if (rng->Bernoulli(0.3)) {
    k0.null_fraction = 0.15;
    ds.features.push_back("null-keys");
  }
  fact.columns.push_back(k0);

  // k1: secondary key, int or string.
  if (rng->Bernoulli(0.5)) {
    fact.columns.push_back({.name = "k1",
                            .type = TypeId::kInt64,
                            .group_key = true,
                            .null_fraction = rng->Bernoulli(0.2) ? 0.15 : 0.0,
                            .int_min = 0,
                            .int_max = rng->UniformInt(0, 3)});
  } else {
    fact.columns.push_back({.name = "k1",
                            .type = TypeId::kString,
                            .group_key = true,
                            .null_fraction = rng->Bernoulli(0.2) ? 0.15 : 0.0});
  }

  if (ds.dim.has_value()) {
    // FK into d0.pk; never NULL so the declared FK is honest and the
    // invariant-grouping certificate (every fact row joins exactly one
    // dim row) holds on the data, not just the metadata.
    fact.columns.push_back({.name = "fk",
                            .type = TypeId::kInt64,
                            .group_key = true,
                            .int_min = 0,
                            .int_max = static_cast<int64_t>(dim_rows) - 1});
  }

  // 1–3 payload columns of mixed type.
  const int payloads = static_cast<int>(rng->UniformInt(1, 3));
  for (int i = 0; i < payloads; ++i) {
    const int kind = static_cast<int>(rng->UniformInt(0, 2));
    const double nullf = rng->Bernoulli(0.4) ? 0.2 : 0.0;
    if (kind == 0) {
      fact.columns.push_back({.name = "v" + std::to_string(i),
                              .type = TypeId::kInt64,
                              .null_fraction = nullf,
                              .int_min = -50,
                              .int_max = 50});
    } else if (kind == 1) {
      fact.columns.push_back({.name = "f" + std::to_string(i),
                              .type = TypeId::kDouble,
                              .null_fraction = nullf,
                              .dbl_min = -20.0,
                              .dbl_max = 20.0});
    } else {
      fact.columns.push_back({.name = "s" + std::to_string(i),
                              .type = TypeId::kString,
                              .null_fraction = nullf});
    }
  }

  FillRows(&fact, PickFactRows(rng, &ds.features), ds.words, rng);

  // Duplicate-row injection: exact duplicates stress multiset semantics
  // (DISTINCT, duplicate-preserving rewrites, hash partitioning).
  if (!fact.rows.empty() && rng->Bernoulli(0.35)) {
    const size_t dups = 1 + fact.rows.size() / 5;
    for (size_t i = 0; i < dups; ++i) {
      fact.rows.push_back(fact.rows[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(fact.rows.size()) - 1))]);
    }
    ds.features.push_back("dup-rows");
  }

  return ds;
}

namespace {

Status InstallTable(const FuzzTable& t, Catalog* catalog) {
  auto table = std::make_unique<Table>(t.name, ToSchema(t));
  RETURN_NOT_OK(table->AppendAll(t.rows));
  return catalog->AddTable(std::move(table));
}

}  // namespace

Status InstallDataset(const FuzzDataset& dataset, Catalog* catalog,
                      StatsManager* stats) {
  RETURN_NOT_OK(InstallTable(dataset.fact, catalog));
  if (dataset.dim.has_value()) {
    RETURN_NOT_OK(InstallTable(*dataset.dim, catalog));
    RETURN_NOT_OK(catalog->SetPrimaryKey(dataset.dim->name, {"pk"}));
    RETURN_NOT_OK(catalog->AddForeignKey({.child_table = dataset.fact.name,
                                          .child_columns = {"fk"},
                                          .parent_table = dataset.dim->name,
                                          .parent_columns = {"pk"}}));
  }
  return stats->AnalyzeAll(*catalog);
}

std::string DescribeDataset(const FuzzDataset& dataset) {
  std::string out;
  auto describe = [&out](const FuzzTable& t) {
    out += t.name + "(";
    for (size_t i = 0; i < t.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += t.columns[i].name;
      out += ":";
      out += TypeName(t.columns[i].type);
    }
    out += ") " + std::to_string(t.rows.size()) + " rows\n";
    for (const Row& row : t.rows) {
      out += "  (";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i > 0) out += ", ";
        out += row[i].ToString();
      }
      out += ")\n";
    }
  };
  describe(dataset.fact);
  if (dataset.dim.has_value()) describe(*dataset.dim);
  return out;
}

}  // namespace gapply::fuzz
