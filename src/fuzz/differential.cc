#include "src/fuzz/differential.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "src/exec/exec_context.h"
#include "src/exec/gapply_op.h"
#include "src/exec/profile.h"

namespace gapply::fuzz {

namespace {

/// Renders the first divergence between two row collections. For multiset
/// mode both sides are canonically sorted first so equal multisets align.
std::string DescribeDivergence(std::vector<Row> a, std::vector<Row> b,
                               CompareMode mode) {
  std::string out = "baseline " + std::to_string(a.size()) +
                    " rows, candidate " + std::to_string(b.size()) + " rows";
  if (mode == CompareMode::kMultiset) {
    SortRowsCanonical(&a);
    SortRowsCanonical(&b);
    out += " (canonically sorted)";
  }
  const size_t n = std::max(a.size(), b.size());
  size_t shown = 0;
  for (size_t i = 0; i < n && shown < 3; ++i) {
    const bool have_a = i < a.size();
    const bool have_b = i < b.size();
    if (have_a && have_b && RowsEqual(a[i], b[i])) continue;
    out += "\n  row " + std::to_string(i) + ": baseline=" +
           (have_a ? RowToString(a[i]) : "<missing>") + " candidate=" +
           (have_b ? RowToString(b[i]) : "<missing>");
    ++shown;
  }
  return out;
}

}  // namespace

std::string ExecSpec::Key() const {
  std::string key = optimize ? "opt:" : "raw:";
  if (optimize) {
    for (const auto& toggle : Optimizer::Options::RuleToggles()) {
      key += opt.*(toggle.flag) ? '1' : '0';
    }
    key += opt.cost_gate ? 'g' : 'u';
    key += opt.unsafe_skip_rule_preconditions ? '!' : '.';
  }
  key += ";pm=";
  key += !lowering.force_partition_mode.has_value() ? "d"
         : *lowering.force_partition_mode == PartitionMode::kSort ? "s"
                                                                  : "h";
  key += lowering.stream_group_by ? ";sg" : "";
  key += ";dop=" + std::to_string(lowering.gapply_parallelism) + "," +
         std::to_string(lowering.exchange_parallelism);
  key += ";xmin=" + std::to_string(lowering.exchange_min_rows);
  key += ";morsel=" + std::to_string(lowering.exchange_morsel_rows);
  key += ";st=";
  key += !lowering.columnar_storage.has_value() ? "d"
         : *lowering.columnar_storage          ? "c"
                                               : "r";
  key += ";b=" + std::to_string(batch_size);
  key += row_path ? ";rows" : ";vec";
  if (profile) key += ";prof";
  return key;
}

std::vector<OraclePair> BuildOracleMatrix(const OracleMatrixOptions& options) {
  ExecSpec base;
  base.name = "baseline";

  auto with_rule = [&](const char* name, bool Optimizer::Options::* flag) {
    ExecSpec s = base;
    s.name = std::string("rule:") + name;
    s.optimize = true;
    s.opt = Optimizer::Options::AllDisabled();
    s.opt.*flag = true;
    s.opt.cost_gate = false;  // exercise the rewrite even when costed out
    return s;
  };

  std::vector<OraclePair> oracles;
  for (const auto& toggle : Optimizer::Options::RuleToggles()) {
    oracles.push_back({"rule:" + std::string(toggle.name), base,
                       with_rule(toggle.name, toggle.flag),
                       CompareMode::kMultiset});
  }

  ExecSpec full = base;
  full.name = "optimizer:full";
  full.optimize = true;
  oracles.push_back({"optimizer:full", base, full, CompareMode::kMultiset});

  ExecSpec ungated = full;
  ungated.name = "optimizer:full-ungated";
  ungated.opt.cost_gate = false;
  oracles.push_back(
      {"optimizer:full-ungated", base, ungated, CompareMode::kMultiset});

  if (options.inject_precondition_bug) {
    ExecSpec injected =
        with_rule("SelectionBeforeGApply",
                  &Optimizer::Options::selection_before_gapply);
    injected.name += "[injected]";
    injected.opt.unsafe_skip_rule_preconditions = true;
    oracles.push_back({"rule:SelectionBeforeGApply[injected]", base, injected,
                       CompareMode::kMultiset});
  }

  ExecSpec rows = base;
  rows.name = "exec:row-path";
  rows.row_path = true;
  oracles.push_back({"exec:batch-vs-row", base, rows, CompareMode::kMultiset});

  ExecSpec full_rows = full;
  full_rows.name = "optimizer:full,row-path";
  full_rows.row_path = true;
  oracles.push_back({"exec:batch-vs-row-optimized", full, full_rows,
                     CompareMode::kMultiset});

  for (size_t b : {size_t{1}, size_t{3}}) {
    ExecSpec s = base;
    s.name = "exec:batch=" + std::to_string(b);
    s.batch_size = b;
    oracles.push_back({s.name, base, s, CompareMode::kMultiset});
  }

  // DOP sweep: the engine promises bit-for-bit identity with the serial
  // run at any DOP, so this one is a sequence comparison.
  auto parallel_spec = [](size_t dop, size_t batch) {
    ExecSpec s;
    s.name = "exec:dop=" + std::to_string(dop) +
             ",batch=" + std::to_string(batch);
    s.batch_size = batch;
    s.lowering.gapply_parallelism = dop;
    s.lowering.exchange_parallelism = dop;
    // Tiny gates so even the fuzzer's small tables actually fan out.
    s.lowering.exchange_min_rows = 16;
    s.lowering.exchange_morsel_rows = 64;
    return s;
  };
  for (size_t b : options.batch_sizes) {
    for (size_t dop : options.dops) {
      oracles.push_back({"exec:dop=" + std::to_string(dop) +
                             ",batch=" + std::to_string(b),
                         parallel_spec(1, b), parallel_spec(dop, b),
                         CompareMode::kSequence});
    }
  }

  for (PartitionMode mode : {PartitionMode::kSort, PartitionMode::kHash}) {
    ExecSpec s = base;
    s.name = std::string("exec:partition=") + PartitionModeName(mode);
    s.lowering.force_partition_mode = mode;
    oracles.push_back({s.name, base, s, CompareMode::kMultiset});
  }

  ExecSpec stream = base;
  stream.name = "exec:stream-groupby";
  stream.lowering.stream_group_by = true;
  oracles.push_back(
      {"exec:hash-vs-stream-groupby", base, stream, CompareMode::kMultiset});

  // Storage oracle: columnar scans (dense arrays, predicate pushdown,
  // zone-map pruning) must reproduce the row-store stream bit for bit —
  // both layouts preserve insertion order, so this is a sequence compare.
  // Run serial, optimized (pushdown fires on optimizer-produced
  // Filter-over-Scan shapes too), and parallel (pruning inside ExchangeOp's
  // morsel driver).
  ExecSpec row_storage = base;
  row_storage.name = "exec:storage=row";
  row_storage.lowering.columnar_storage = false;
  oracles.push_back({"exec:columnar-vs-row-storage", base, row_storage,
                     CompareMode::kSequence});

  ExecSpec full_row_storage = full;
  full_row_storage.name = "optimizer:full,storage=row";
  full_row_storage.lowering.columnar_storage = false;
  oracles.push_back({"exec:columnar-vs-row-storage-optimized", full,
                     full_row_storage, CompareMode::kMultiset});

  ExecSpec par_row_storage = parallel_spec(8, 1024);
  par_row_storage.name += ",storage=row";
  par_row_storage.lowering.columnar_storage = false;
  oracles.push_back({"exec:columnar-vs-row-storage-parallel",
                     parallel_spec(8, 1024), par_row_storage,
                     CompareMode::kSequence});

  // Profiler oracle: profiling must be invisible to results (sequence
  // compare against the identical unprofiled spec) and the profile itself
  // must satisfy the counter invariants — RunSpec validates it and turns a
  // violation into an execution error. Run serial and parallel (the merged
  // worker-clone path has its own invariant rules).
  ExecSpec profiled = base;
  profiled.name = "exec:profile=on";
  profiled.profile = true;
  oracles.push_back(
      {"exec:profile-differential", base, profiled, CompareMode::kSequence});

  ExecSpec par_plain = parallel_spec(4, 1024);
  ExecSpec par_profiled = par_plain;
  par_profiled.name += ",profile=on";
  par_profiled.profile = true;
  oracles.push_back({"exec:profile-differential-parallel", par_plain,
                     par_profiled, CompareMode::kSequence});

  return oracles;
}

Result<QueryResult> RunSpec(const LogicalOp& plan, const Catalog& catalog,
                            const StatsManager& stats, const ExecSpec& spec) {
  LogicalOpPtr working = plan.Clone();
  if (spec.optimize) {
    Optimizer optimizer(&catalog, &stats, spec.opt);
    ASSIGN_OR_RETURN(working, optimizer.Optimize(std::move(working)));
  }
  ASSIGN_OR_RETURN(PhysOpPtr phys, LowerPlan(*working, spec.lowering));
  // No shared thread pool: parallel operators fall back to transient
  // pools, which keeps specs fully independent of each other.
  ExecContext ctx;
  ctx.set_batch_size(spec.batch_size);
  ctx.set_profiling(spec.profile);
  Result<QueryResult> result = spec.row_path
                                   ? ExecuteToVectorRows(phys.get(), &ctx)
                                   : ExecuteToVector(phys.get(), &ctx);
  if (result.ok() && spec.profile) {
    RETURN_NOT_OK(ValidateProfile(CollectProfile(*phys)));
  }
  return result;
}

Result<std::vector<Mismatch>> RunOracles(
    const LogicalOp& plan, const Catalog& catalog, const StatsManager& stats,
    const std::vector<OraclePair>& oracles) {
  // Dedup cache: specs with the same key execute once. A node-based map,
  // NOT a vector — callers hold references across later insertions.
  std::map<std::string, Result<QueryResult>> cache;
  auto run = [&](const ExecSpec& spec) -> const Result<QueryResult>& {
    const std::string key = spec.Key();
    auto it = cache.find(key);
    if (it == cache.end()) {
      it = cache.emplace(key, RunSpec(plan, catalog, stats, spec)).first;
    }
    return it->second;
  };

  std::vector<Mismatch> mismatches;
  for (const OraclePair& oracle : oracles) {
    const Result<QueryResult>& base = run(oracle.baseline);
    const Result<QueryResult>& cand = run(oracle.candidate);
    if (!base.ok() || !cand.ok()) {
      if (!base.ok() && !cand.ok() &&
          base.status().ToString() == cand.status().ToString()) {
        continue;  // both sides agree the query errors identically
      }
      mismatches.push_back(
          {oracle.name,
           "baseline(" + oracle.baseline.name + "): " +
               (base.ok() ? std::to_string(base->rows.size()) + " rows"
                          : base.status().ToString()) +
               "; candidate(" + oracle.candidate.name + "): " +
               (cand.ok() ? std::to_string(cand->rows.size()) + " rows"
                          : cand.status().ToString())});
      continue;
    }
    const bool same = oracle.mode == CompareMode::kSequence
                          ? SameRowSequence(base->rows, cand->rows)
                          : SameRowMultiset(base->rows, cand->rows);
    if (!same) {
      mismatches.push_back(
          {oracle.name, "baseline(" + oracle.baseline.name + ") vs candidate(" +
                            oracle.candidate.name + "): " +
                            DescribeDivergence(base->rows, cand->rows,
                                               oracle.mode)});
    }
  }
  return mismatches;
}

int CountPlanOps(const LogicalOp& plan) {
  if (plan.type() == LogicalOpType::kScan ||
      plan.type() == LogicalOpType::kGroupScan) {
    return 0;
  }
  int count = 1;
  for (size_t i = 0; i < plan.num_children(); ++i) {
    count += CountPlanOps(*plan.child(i));
  }
  if (plan.type() == LogicalOpType::kGApply) {
    count += CountPlanOps(
        *static_cast<const LogicalGApply&>(plan).pgq());
  }
  return count;
}

}  // namespace gapply::fuzz
