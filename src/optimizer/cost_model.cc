#include "src/optimizer/cost_model.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "src/plan/plan_utils.h"

namespace gapply {

namespace {

double SortCost(double rows) {
  return rows <= 1 ? rows : rows * std::log2(rows + 1);
}

// Caps every column NDV at the row count.
void CapNdv(PlanEstimate* est) {
  for (double& ndv : est->column_ndv) ndv = std::min(ndv, est->rows);
}

// Scales an estimate to a subset of `fraction` rows (selection output,
// average group): NDVs shrink but never below 1 when rows remain.
PlanEstimate ScaleRows(const PlanEstimate& in, double fraction) {
  PlanEstimate out = in;
  out.rows = in.rows * fraction;
  for (double& ndv : out.column_ndv) {
    ndv = std::max(out.rows > 0 ? 1.0 : 0.0, ndv * fraction);
    ndv = std::min(ndv, out.rows);
  }
  return out;
}

}  // namespace

double CostModel::Selectivity(const Expr& pred,
                              const PlanEstimate& input) const {
  switch (pred.kind()) {
    case ExprKind::kBinary: {
      const auto& bin = static_cast<const BinaryExpr&>(pred);
      switch (bin.op()) {
        case BinaryOp::kAnd:
          return Selectivity(bin.left(), input) *
                 Selectivity(bin.right(), input);
        case BinaryOp::kOr: {
          const double a = Selectivity(bin.left(), input);
          const double b = Selectivity(bin.right(), input);
          return std::min(1.0, a + b - a * b);
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: {
          // column <op> literal: use NDV / histogram when available.
          const Expr* col_side = &bin.left();
          const Expr* lit_side = &bin.right();
          bool flipped = false;
          if (col_side->kind() != ExprKind::kColumnRef &&
              lit_side->kind() == ExprKind::kColumnRef) {
            std::swap(col_side, lit_side);
            flipped = true;
          }
          if (col_side->kind() != ExprKind::kColumnRef) {
            return kDefaultSelectivity;
          }
          const int idx = static_cast<const ColumnRefExpr*>(col_side)->index();
          if (idx < 0 ||
              static_cast<size_t>(idx) >= input.column_ndv.size()) {
            return kDefaultSelectivity;
          }
          // column = column (join-ish predicate).
          if (lit_side->kind() == ExprKind::kColumnRef) {
            const int ridx =
                static_cast<const ColumnRefExpr*>(lit_side)->index();
            if (bin.op() == BinaryOp::kEq && ridx >= 0 &&
                static_cast<size_t>(ridx) < input.column_ndv.size()) {
              const double ndv = std::max(
                  {1.0, input.column_ndv[static_cast<size_t>(idx)],
                   input.column_ndv[static_cast<size_t>(ridx)]});
              return 1.0 / ndv;
            }
            return kDefaultSelectivity;
          }
          if (lit_side->kind() != ExprKind::kLiteral) {
            return kDefaultSelectivity;
          }
          const Value& lit =
              static_cast<const LiteralExpr*>(lit_side)->value();
          const double ndv =
              std::max(1.0, input.column_ndv[static_cast<size_t>(idx)]);
          if (bin.op() == BinaryOp::kEq) return 1.0 / ndv;
          if (bin.op() == BinaryOp::kNe) return 1.0 - 1.0 / ndv;
          // Range comparison: use the base column's histogram when present.
          const ColumnStats* cstats =
              input.column_stats[static_cast<size_t>(idx)];
          if (cstats == nullptr || lit.is_null() || !IsNumeric(lit.type())) {
            return kDefaultSelectivity;
          }
          const double below = cstats->FractionBelow(lit.AsDouble());
          BinaryOp op = bin.op();
          if (flipped) {
            // literal <op> column  ≡  column <flipped-op> literal.
            switch (op) {
              case BinaryOp::kLt:
                op = BinaryOp::kGt;
                break;
              case BinaryOp::kLe:
                op = BinaryOp::kGe;
                break;
              case BinaryOp::kGt:
                op = BinaryOp::kLt;
                break;
              case BinaryOp::kGe:
                op = BinaryOp::kLe;
                break;
              default:
                break;
            }
          }
          switch (op) {
            case BinaryOp::kLt:
            case BinaryOp::kLe:
              return std::clamp(below, 0.0, 1.0);
            case BinaryOp::kGt:
            case BinaryOp::kGe:
              return std::clamp(1.0 - below, 0.0, 1.0);
            default:
              return kDefaultSelectivity;
          }
        }
        default:
          return kDefaultSelectivity;
      }
    }
    case ExprKind::kUnary: {
      const auto& un = static_cast<const UnaryExpr&>(pred);
      if (un.op() == UnaryOp::kNot) {
        return 1.0 - Selectivity(un.child(), input);
      }
      return kDefaultSelectivity;
    }
    case ExprKind::kLiteral: {
      const Value& v = static_cast<const LiteralExpr&>(pred).value();
      if (v.type() == TypeId::kBool) return v.bool_val() ? 1.0 : 0.0;
      return kDefaultSelectivity;
    }
    default:
      return kDefaultSelectivity;
  }
}

Result<PlanEstimate> CostModel::EstimateNode(const LogicalOp& node,
                                             GroupEnv* env) const {
  const size_t out_cols = node.output_schema().num_columns();
  PlanEstimate est;
  est.column_ndv.assign(out_cols, 0);
  est.column_stats.assign(out_cols, nullptr);

  switch (node.type()) {
    case LogicalOpType::kScan: {
      const auto& scan = static_cast<const LogicalScan&>(node);
      const TableStats* ts =
          stats_ == nullptr ? nullptr : stats_->Get(scan.table_name());
      if (ts == nullptr) {
        // No stats: fall back to actual row count with NDV = rows.
        est.rows = static_cast<double>(scan.table()->num_rows());
        est.column_ndv.assign(out_cols, est.rows);
      } else {
        est.rows = static_cast<double>(ts->row_count);
        for (size_t c = 0; c < out_cols && c < ts->columns.size(); ++c) {
          est.column_ndv[c] = static_cast<double>(ts->columns[c].ndv);
          est.column_stats[c] = &ts->columns[c];
        }
      }
      est.cost = est.rows;
      return est;
    }
    case LogicalOpType::kGroupScan: {
      const auto& scan = static_cast<const LogicalGroupScan&>(node);
      auto it = env->find(scan.var());
      if (it != env->end()) {
        est = it->second;
        est.cost = est.rows;
        return est;
      }
      // Unbound: assume a modest group.
      est.rows = 100;
      est.column_ndv.assign(out_cols, est.rows);
      est.cost = est.rows;
      return est;
    }
    case LogicalOpType::kSelect: {
      const auto& sel = static_cast<const LogicalSelect&>(node);
      ASSIGN_OR_RETURN(PlanEstimate child, EstimateNode(*sel.child(0), env));
      const double s = Selectivity(sel.predicate(), child);
      est = ScaleRows(child, s);
      est.cost = child.cost + child.rows;
      return est;
    }
    case LogicalOpType::kProject: {
      const auto& proj = static_cast<const LogicalProject&>(node);
      ASSIGN_OR_RETURN(PlanEstimate child, EstimateNode(*proj.child(0), env));
      est.rows = child.rows;
      est.cost = child.cost + child.rows;
      for (size_t i = 0; i < proj.exprs().size(); ++i) {
        const Expr& e = *proj.exprs()[i];
        if (e.kind() == ExprKind::kColumnRef) {
          const int idx = static_cast<const ColumnRefExpr&>(e).index();
          est.column_ndv[i] = child.column_ndv[static_cast<size_t>(idx)];
          est.column_stats[i] = child.column_stats[static_cast<size_t>(idx)];
        } else {
          est.column_ndv[i] = child.rows;
        }
      }
      return est;
    }
    case LogicalOpType::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      ASSIGN_OR_RETURN(PlanEstimate left, EstimateNode(*join.child(0), env));
      ASSIGN_OR_RETURN(PlanEstimate right, EstimateNode(*join.child(1), env));
      double rows = left.rows * right.rows;
      for (size_t k = 0; k < join.left_keys().size(); ++k) {
        const double lndv = std::max(
            1.0, left.column_ndv[static_cast<size_t>(join.left_keys()[k])]);
        const double rndv = std::max(
            1.0,
            right.column_ndv[static_cast<size_t>(join.right_keys()[k])]);
        rows /= std::max(lndv, rndv);
      }
      est.rows = rows;
      est.cost = left.cost + right.cost + left.rows + right.rows + rows;
      for (size_t c = 0; c < left.column_ndv.size(); ++c) {
        est.column_ndv[c] = left.column_ndv[c];
        est.column_stats[c] = left.column_stats[c];
      }
      for (size_t c = 0; c < right.column_ndv.size(); ++c) {
        est.column_ndv[left.column_ndv.size() + c] = right.column_ndv[c];
        est.column_stats[left.column_ndv.size() + c] = right.column_stats[c];
      }
      CapNdv(&est);
      return est;
    }
    case LogicalOpType::kGroupBy: {
      const auto& gb = static_cast<const LogicalGroupBy&>(node);
      ASSIGN_OR_RETURN(PlanEstimate child, EstimateNode(*gb.child(0), env));
      double groups = 1;
      for (int k : gb.keys()) {
        groups *= std::max(1.0, child.column_ndv[static_cast<size_t>(k)]);
      }
      groups = std::min(groups, std::max(child.rows, 0.0));
      est.rows = groups;
      est.cost = child.cost + child.rows;
      for (size_t i = 0; i < gb.keys().size(); ++i) {
        est.column_ndv[i] =
            child.column_ndv[static_cast<size_t>(gb.keys()[i])];
        est.column_stats[i] =
            child.column_stats[static_cast<size_t>(gb.keys()[i])];
      }
      for (size_t i = gb.keys().size(); i < out_cols; ++i) {
        est.column_ndv[i] = groups;
      }
      CapNdv(&est);
      return est;
    }
    case LogicalOpType::kScalarAgg: {
      ASSIGN_OR_RETURN(PlanEstimate child, EstimateNode(*node.child(0), env));
      est.rows = 1;
      est.cost = child.cost + child.rows;
      est.column_ndv.assign(out_cols, 1);
      return est;
    }
    case LogicalOpType::kDistinct: {
      ASSIGN_OR_RETURN(PlanEstimate child, EstimateNode(*node.child(0), env));
      double distinct = 1;
      for (double ndv : child.column_ndv) distinct *= std::max(1.0, ndv);
      est = child;
      est.rows = std::min(child.rows, distinct);
      est.cost = child.cost + child.rows;
      CapNdv(&est);
      return est;
    }
    case LogicalOpType::kUnionAll: {
      est.rows = 0;
      est.cost = 0;
      for (size_t i = 0; i < node.num_children(); ++i) {
        ASSIGN_OR_RETURN(PlanEstimate child,
                         EstimateNode(*node.child(i), env));
        est.rows += child.rows;
        est.cost += child.cost;
        for (size_t c = 0; c < out_cols && c < child.column_ndv.size(); ++c) {
          est.column_ndv[c] += child.column_ndv[c];
        }
      }
      CapNdv(&est);
      return est;
    }
    case LogicalOpType::kApply: {
      const auto& apply = static_cast<const LogicalApply&>(node);
      ASSIGN_OR_RETURN(PlanEstimate outer,
                       EstimateNode(*apply.outer(), env));
      ASSIGN_OR_RETURN(PlanEstimate inner,
                       EstimateNode(*apply.inner(), env));
      est.rows = outer.rows * std::max(inner.rows, 0.0);
      if (ApplyInnerIsCorrelated(*apply.inner())) {
        // The inner subplan re-executes once per outer row.
        est.cost = outer.cost + std::max(1.0, outer.rows) * inner.cost;
      } else {
        // Uncorrelated inner: evaluated once and replayed (see ApplyOp).
        est.cost = outer.cost + inner.cost + est.rows;
      }
      for (size_t c = 0; c < outer.column_ndv.size(); ++c) {
        est.column_ndv[c] = outer.column_ndv[c];
        est.column_stats[c] = outer.column_stats[c];
      }
      for (size_t c = 0; c < inner.column_ndv.size(); ++c) {
        est.column_ndv[outer.column_ndv.size() + c] = inner.column_ndv[c];
      }
      CapNdv(&est);
      return est;
    }
    case LogicalOpType::kExists: {
      ASSIGN_OR_RETURN(PlanEstimate child, EstimateNode(*node.child(0), env));
      est.rows = std::min(1.0, child.rows);
      // Early exit after the first row: charge half the child's cost.
      est.cost = child.cost * 0.5;
      return est;
    }
    case LogicalOpType::kOrderBy: {
      ASSIGN_OR_RETURN(PlanEstimate child, EstimateNode(*node.child(0), env));
      est = child;
      est.cost = child.cost + SortCost(child.rows);
      return est;
    }
    case LogicalOpType::kGApply: {
      const auto& ga = static_cast<const LogicalGApply&>(node);
      ASSIGN_OR_RETURN(PlanEstimate outer, EstimateNode(*ga.outer(), env));
      double groups = 1;
      for (int c : ga.grouping_columns()) {
        groups *= std::max(1.0, outer.column_ndv[static_cast<size_t>(c)]);
      }
      groups = std::min(groups, std::max(outer.rows, 1.0));
      const double partition = ga.mode() == PartitionMode::kSort
                                   ? SortCost(outer.rows)
                                   : outer.rows;
      // One average group, with NDVs scaled under the uniformity assumption.
      PlanEstimate group =
          ScaleRows(outer, groups > 0 ? 1.0 / groups : 1.0);
      // Save/restore any shadowed binding (nested GApply over the same var).
      std::optional<PlanEstimate> saved;
      if (auto it = env->find(ga.var()); it != env->end()) saved = it->second;
      (*env)[ga.var()] = std::move(group);
      ASSIGN_OR_RETURN(PlanEstimate pgq, EstimateNode(*ga.pgq(), env));
      if (saved.has_value()) {
        (*env)[ga.var()] = std::move(*saved);
      } else {
        env->erase(ga.var());
      }

      est.rows = groups * pgq.rows;
      est.cost = outer.cost + partition + groups * pgq.cost;
      size_t c = 0;
      for (int g : ga.grouping_columns()) {
        est.column_ndv[c] = outer.column_ndv[static_cast<size_t>(g)];
        est.column_stats[c] = outer.column_stats[static_cast<size_t>(g)];
        ++c;
      }
      for (size_t p = 0; p < pgq.column_ndv.size(); ++p, ++c) {
        est.column_ndv[c] = std::min(est.rows, pgq.column_ndv[p] * groups);
      }
      CapNdv(&est);
      return est;
    }
  }
  return Status::Internal("unknown logical operator in cost model");
}

Result<PlanEstimate> CostModel::Estimate(const LogicalOp& plan) const {
  GroupEnv env;
  return EstimateNode(plan, &env);
}

}  // namespace gapply
