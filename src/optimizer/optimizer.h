#ifndef GAPPLY_OPTIMIZER_OPTIMIZER_H_
#define GAPPLY_OPTIMIZER_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/optimizer/cost_model.h"
#include "src/plan/logical_plan.h"
#include "src/stats/stats.h"
#include "src/storage/catalog.h"

namespace gapply {

/// Shared state handed to every rule invocation.
struct OptimizerContext {
  const Catalog* catalog = nullptr;
  const StatsManager* stats = nullptr;
  const CostModel* cost_model = nullptr;
  /// When true, rules that can hurt (the group-selection pair, §4.2) fire
  /// only if the cost model says the rewrite is cheaper. When false they
  /// fire unconditionally (benches use this to measure both sides).
  bool cost_gate = true;
  /// True while the driver is rewriting a per-group query (the subtree a
  /// GApply holds). The paper's PGQ operator set has no Join, so rules
  /// whose rewrite introduces one (the §4.2 group-selection pair) must not
  /// fire there — the plan would fail to lower. Maintained by
  /// Optimizer::Pass; rules only read it.
  bool in_pgq = false;
  /// TESTING ONLY. When true, rules skip their static-analysis safety
  /// preconditions (currently SelectionBeforeGApply's empty-on-empty check
  /// from Theorem 1) and fire anyway. The fuzzer injects this deliberate
  /// bug (`gapply_fuzz --inject-precondition-bug`) to prove its oracles
  /// catch an unsound rewrite and minimize it. Never set in production.
  bool unsafe_skip_rule_preconditions = false;
};

/// \brief A transformation rule over logical plans.
///
/// `Apply` inspects the subtree rooted at `*node` and either rewrites it in
/// place (returning true) or leaves it untouched (returning false). Rules
/// must strictly make progress — the paper's termination argument (§4.4) is
/// that every rule either pushes GApply down, eliminates it, or adds
/// new σ/π to the outer tree, none of which another rule undoes.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual Result<bool> Apply(LogicalOpPtr* node, OptimizerContext* ctx) = 0;
};

/// \brief Heuristic rewrite driver applying the paper's rule set to
/// fixpoint (bounded by max_passes).
class Optimizer {
 public:
  struct Options {
    // §4: rules that do not traverse the per-group query.
    bool push_select_into_pgq = true;
    bool push_project_into_pgq = true;
    // §4.1: pushing computation into the outer query.
    bool projection_before_gapply = true;
    bool selection_before_gapply = true;
    bool gapply_to_groupby = true;
    // §4.2: group selection.
    bool group_selection_exists = true;
    bool group_selection_aggregate = true;
    // §4.3: pushing GApply below joins.
    bool invariant_grouping = true;
    // Classic relational rewrites (σ pushdown below joins etc.).
    bool classic_pushdown = true;
    // Cost-gate the two group-selection rules.
    bool cost_gate = true;

    int max_passes = 8;

    /// See OptimizerContext::unsafe_skip_rule_preconditions. TESTING ONLY.
    bool unsafe_skip_rule_preconditions = false;

    /// All rules off (benches build baselines from this).
    static Options AllDisabled();

    /// One independently toggleable rule set: display name + the Options
    /// member that enables it. ClassicPushdown covers the three classic
    /// rewrites behind the single `classic_pushdown` flag; every other
    /// entry is one paper rule.
    struct Toggle {
      const char* name;
      bool Options::* flag;
    };

    /// Every toggle, in registration order. Drives the fuzzer's
    /// per-rule differential oracles and the pairwise composition tests:
    /// `AllDisabled()` plus exactly one toggle yields an optimizer that
    /// applies that rule set alone.
    static const std::vector<Toggle>& RuleToggles();
  };

  /// One rule firing, in order, with the cost model's cardinality estimate
  /// for the rewritten subtree before and after the rewrite (-1 when the
  /// estimator could not price the subtree, e.g. a GroupScan outside its
  /// group environment). EXPLAIN ANALYZE pairs these estimates with the
  /// actual per-operator row counts.
  struct RuleFiring {
    std::string rule;
    double rows_before = -1;
    double rows_after = -1;
  };

  Optimizer(const Catalog* catalog, const StatsManager* stats,
            Options options);
  ~Optimizer();

  /// Rewrites `plan`; on success the returned plan is semantically
  /// equivalent. The input is consumed.
  Result<LogicalOpPtr> Optimize(LogicalOpPtr plan);

  /// Names of rules fired during the last Optimize call, in firing order.
  const std::vector<std::string>& fired_rules() const { return fired_; }

  /// Per-firing trace of the last Optimize call (parallel to fired_rules,
  /// plus before/after cardinality estimates at each rewrite site).
  const std::vector<RuleFiring>& rule_trace() const { return trace_; }

 private:
  Result<bool> ApplyAt(LogicalOpPtr* node);
  Result<bool> Pass(LogicalOpPtr* node);

  /// Estimated output rows of `node`, -1 when the estimator fails.
  double EstimateRowsOrUnknown(const LogicalOp& node) const;

  Options options_;
  CostModel cost_model_;
  OptimizerContext ctx_;
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::string> fired_;
  std::vector<RuleFiring> trace_;
};

}  // namespace gapply

#endif  // GAPPLY_OPTIMIZER_OPTIMIZER_H_
